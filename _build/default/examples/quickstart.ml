(* Quickstart: test a (simulated) CPU against a speculation contract.

   This is the 20-line version of the whole framework: pick a target
   (CPU model x ISA subset x threat model), pick a contract, fuzz, and
   inspect the counterexample Revizor finds.

   Run with:  dune exec examples/quickstart.exe *)

open Revizor

let () =
  (* Target 5 of the paper: Skylake (V4 patch on), AR+MEM+CB instructions,
     Prime+Probe on the L1D cache. *)
  let target = Target.target5 in
  (* CT-SEQ: the constant-time observation clause with sequential-only
     execution — "speculation must expose nothing". *)
  let contract = Contract.ct_seq in
  Format.printf "Testing %a@.against %s...@.@." Target.pp target
    (Contract.name contract);

  let config = Target.fuzzer_config ~seed:1L contract target in
  match Fuzzer.fuzz config ~budget:(Fuzzer.Test_cases 500) with
  | Fuzzer.No_violation, stats ->
      Format.printf "No violation found.@.%a@." Fuzzer.pp_stats stats
  | Fuzzer.Violation v, stats ->
      Format.printf "Counterexample found after %d test cases!@.@.%a@.@."
        stats.Fuzzer.test_cases Violation.pp v;
      (* Minimize it, as the paper's postprocessor does (§5.7): fewer
         inputs, fewer instructions, LFENCEs delimiting the leak. *)
      let cpu = Revizor_uarch.Cpu.create config.Fuzzer.uarch in
      let executor = Executor.create cpu config.Fuzzer.executor in
      let m = Postprocessor.minimize config executor v in
      Format.printf "Minimized test case (cf. Fig. 4):@.%a@.@."
        Revizor_isa.Program.pp m.Postprocessor.program;
      Format.printf "With leak-localizing fences:@.%a@." Revizor_isa.Program.pp
        m.Postprocessor.fenced
