(* Spectre hunt: the paper's §6.2 methodology end-to-end.

   Walk a target up the contract ladder — from the most restrictive
   contract (CT-SEQ: speculation exposes nothing) to the most permissive
   (CT-COND-BPAS) — letting each detected violation *identify* the kind of
   speculative leak, exactly how Table 3 narrows V4 vs V1 vs MDS.

   Run with:  dune exec examples/spectre_hunt.exe -- [target-number] *)

open Revizor

let hunt target =
  Format.printf "=== Hunting on %a ===@.@." Target.pp target;
  let found =
    List.filter_map
      (fun contract ->
        Format.printf "  %-14s ... %!" (Contract.name contract);
        let config = Target.fuzzer_config ~seed:7L contract target in
        match Fuzzer.fuzz config ~budget:(Fuzzer.Test_cases 400) with
        | Fuzzer.Violation v, stats ->
            Format.printf "VIOLATED (%s, %d test cases, %.1fs)@."
              v.Violation.label stats.Fuzzer.test_cases stats.Fuzzer.elapsed_s;
            Some (Contract.name contract, v.Violation.label)
        | Fuzzer.No_violation, stats ->
            Format.printf "ok (%d test cases, %.1fs)@." stats.Fuzzer.test_cases
              stats.Fuzzer.elapsed_s;
            None)
      Contract.standard_ladder
  in
  Format.printf "@.Diagnosis for %s:@." target.Target.name;
  (match found with
  | [] ->
      Format.printf
        "  no violations — the CPU complies with every contract tested@."
  | _ ->
      List.iter
        (fun (c, label) -> Format.printf "  violates %-14s -> %s@." c label)
        found);
  Format.printf "@."

let () =
  let target =
    match Sys.argv with
    | [| _; n |] -> (
        match Target.find ("target " ^ n) with
        | Some t -> t
        | None ->
            Format.eprintf "unknown target %s; using Target 5@." n;
            Target.target5)
    | _ -> Target.target5
  in
  hunt target;
  (* Bonus: the same hunt on Target 2 (V4-vulnerable Skylake) shows how the
     ladder separates leak types: CT-SEQ and CT-COND are violated by V4,
     while CT-BPAS — which permits store bypass — is satisfied. *)
  if Array.length Sys.argv < 2 then hunt Target.target2
