(* Contract sensitivity (§6.6): choosing the right contract for the
   defence you want to validate.

   STT-style hardware defences protect *speculatively loaded* data but
   deliberately do not protect data that was already architecturally
   loaded. CT-SEQ cannot express that distinction — it forbids both —
   while ARCH-SEQ permits exposure of non-speculative data and forbids
   only speculative-data leaks.

   This example also shows loading a hand-written test case from assembly
   text, the format in which the CLI saves counterexamples.

   Run with:  dune exec examples/contract_sensitivity.exe *)

open Revizor

(* Fig. 6a as assembly text: the leaked value is loaded architecturally
   BEFORE the branch. An STT-protected CPU is allowed to leak it. *)
let fig6a_asm =
  {|
.main:
  AND RAX, 0b111111000000
  MOV RBX, qword ptr [R14 + RAX]   # architectural load: value v
  AND RBX, 0b111111000000
  MOV RSI, qword ptr [R14]         # slow flag source
  ADD RSI, 1
  CMP RSI, 65
  JA .exit
.leak:
  MOV RCX, qword ptr [R14 + RBX]   # transiently exposes v
.exit:
|}

let verdict = function true -> "VIOLATED" | false -> "compliant"

let run_one name program contract =
  let target = Target.target5 in
  let config = Target.fuzzer_config ~seed:4L contract target in
  let cpu = Revizor_uarch.Cpu.create config.Fuzzer.uarch in
  let executor = Executor.create cpu config.Fuzzer.executor in
  let prng = Prng.create ~seed:7L in
  let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
  match Fuzzer.check_test_case config executor program inputs with
  | Ok v -> Format.printf "  %-22s vs %-9s %s@." name (Contract.name contract) (verdict (v <> None))
  | Error e -> Format.printf "  %-22s faulted: %s@." name e

let () =
  Format.printf "Contract sensitivity on %a@.@." Target.pp Target.target5;
  let fig6a =
    match Revizor_isa.Asm_parser.parse_program fig6a_asm with
    | Ok p -> p
    | Error e -> failwith ("fig6a parse error: " ^ e)
  in
  let fig6b = Gadgets.stt_speculative.Gadgets.program in
  Format.printf "Fig. 6a — NON-speculatively loaded value leaks:@.";
  run_one "fig6a (from asm)" fig6a Contract.ct_seq;
  run_one "fig6a (from asm)" fig6a Contract.arch_seq;
  Format.printf "@.Fig. 6b — speculatively loaded value leaks (classic V1):@.";
  run_one "fig6b" fig6b Contract.ct_seq;
  run_one "fig6b" fig6b Contract.arch_seq;
  Format.printf
    "@.Reading (as in the paper): an STT-like defence should be tested@.against \
     ARCH-SEQ — CT-SEQ would reject it for the 6a leak it does not@.even try \
     to prevent, while ARCH-SEQ isolates exactly the 6b leak.@."
