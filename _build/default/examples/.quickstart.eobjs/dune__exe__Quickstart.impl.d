examples/quickstart.ml: Contract Executor Format Fuzzer Postprocessor Revizor Revizor_isa Revizor_uarch Target Violation
