examples/assumption_check.mli:
