examples/contract_sensitivity.ml: Contract Executor Format Fuzzer Gadgets Input Prng Revizor Revizor_isa Revizor_uarch Target
