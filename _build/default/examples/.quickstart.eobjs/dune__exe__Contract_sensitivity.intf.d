examples/contract_sensitivity.mli:
