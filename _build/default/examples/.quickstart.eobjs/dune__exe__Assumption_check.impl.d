examples/assumption_check.ml: Attack Contract Cpu Executor Format Fuzzer Gadgets Input Prng Revizor Revizor_isa Revizor_uarch Target Uarch_config Violation
