examples/spectre_hunt.ml: Array Contract Format Fuzzer List Revizor Sys Target Violation
