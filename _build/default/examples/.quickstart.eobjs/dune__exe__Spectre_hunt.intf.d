examples/spectre_hunt.mli:
