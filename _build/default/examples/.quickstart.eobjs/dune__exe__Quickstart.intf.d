examples/quickstart.mli:
