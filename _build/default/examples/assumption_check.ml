(* Assumption check (§6.4): "stores do not modify the cache state until
   they retire" — an assumption made by the STT and KLEESpectre defence
   proposals. Revizor encodes it as a contract (CT-COND without exposure
   of speculative-path stores) and tests CPUs against it.

   The paper's finding, reproduced here: Skylake complies, Coffee Lake
   does NOT — speculative stores leave cache traces.

   Run with:  dune exec examples/assumption_check.exe *)

open Revizor
open Revizor_uarch

let check_cpu name uarch =
  let target =
    {
      Target.name;
      uarch;
      subsets = Revizor_isa.Catalog.[ AR; MEM; CB ];
      threat = Attack.prime_probe;
      mem_pages = 1;
    }
  in
  let contract = Contract.ct_cond_no_spec_store in
  Format.printf "%-36s vs %s: %!" uarch.Uarch_config.name
    (Contract.name contract);
  (* First, the targeted check on the §6.4 gadget... *)
  let config = Target.fuzzer_config ~seed:3L contract target in
  let cpu = Cpu.create config.Fuzzer.uarch in
  let executor = Executor.create cpu config.Fuzzer.executor in
  let prng = Prng.create ~seed:3L in
  let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
  let gadget = Gadgets.spec_store_eviction in
  (match Fuzzer.check_test_case config executor gadget.Gadgets.program inputs with
  | Ok (Some v) -> Format.printf "VIOLATED by the gadget (%s)@." v.Violation.label
  | Ok None -> Format.printf "gadget leaves no trace@."
  | Error e -> Format.printf "gadget faulted (%s)@." e);
  (* ... then a short random-fuzzing confirmation, as the paper did. *)
  Format.printf "%-36s random fuzzing: %!" "";
  match Fuzzer.fuzz config ~budget:(Fuzzer.Test_cases 400) with
  | Fuzzer.Violation v, stats ->
      Format.printf "violation after %d test cases (%s)@.@."
        stats.Fuzzer.test_cases v.Violation.label
  | Fuzzer.No_violation, stats ->
      Format.printf "no violation in %d test cases@.@." stats.Fuzzer.test_cases

let () =
  Format.printf
    "Validating the STT/KLEESpectre assumption: do speculative stores@.modify \
     the cache before retiring? (paper §6.4)@.@.";
  check_cpu "Skylake" (Uarch_config.skylake ~v4_patch:true);
  check_cpu "Coffee Lake" Uarch_config.coffee_lake;
  Format.printf
    "Conclusion (as in the paper): the assumption holds on Skylake but is@.wrong \
     on Coffee Lake — defences relying on it are unsound there.@."
