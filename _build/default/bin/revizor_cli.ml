(* Command-line interface to the Revizor reproduction: fuzz targets
   against contracts, reproduce the paper's experiments, inspect gadgets
   and the instruction catalog, and minimize counterexamples. *)

open Revizor
open Cmdliner

(* --- shared argument parsers --------------------------------------- *)

let contract_conv =
  let parse s =
    match Contract.of_name s with Ok c -> Ok c | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Contract.pp)

let target_conv =
  let parse s =
    let s' = if String.length s <= 2 then "target " ^ s else s in
    match Target.find s' with
    | Some t -> Ok t
    | None -> Error (`Msg (Printf.sprintf "unknown target %S (use 1..8)" s))
  in
  Arg.conv (parse, Target.pp)

let contract_arg =
  Arg.(
    value
    & opt contract_conv Contract.ct_seq
    & info [ "c"; "contract" ] ~docv:"CONTRACT"
        ~doc:"Contract to test against (e.g. CT-SEQ, MEM-COND, ARCH-SEQ).")

let target_arg =
  Arg.(
    value
    & opt target_conv Target.target5
    & info [ "t"; "target" ] ~docv:"TARGET" ~doc:"Table 2 target (1..8).")

let seed_arg =
  Arg.(value & opt int64 1L & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let budget_arg =
  Arg.(
    value & opt int 1000
    & info [ "n"; "test-cases" ] ~docv:"N" ~doc:"Test-case budget.")

let inputs_arg =
  Arg.(
    value & opt int 50
    & info [ "i"; "inputs" ] ~docv:"N" ~doc:"Inputs per test case.")

(* --- fuzz ----------------------------------------------------------- *)

let do_fuzz contract target seed budget inputs minimize save_dir jobs =
  Printf.printf "Testing %s against %s (seed %Ld, budget %d test cases)\n%!"
    (Format.asprintf "%a" Target.pp target)
    (Contract.name contract) seed budget;
  let cfg = Target.fuzzer_config ~seed ~n_inputs:inputs contract target in
  let on_progress (s : Fuzzer.stats) =
    if s.Fuzzer.test_cases mod 100 = 0 then
      Printf.printf "  ... %d test cases, %d inputs\n%!" s.Fuzzer.test_cases
        s.Fuzzer.inputs_tested
  in
  let run () =
    if jobs > 1 then begin
      let outcome, per_domain =
        Fuzzer.fuzz_parallel ~domains:jobs cfg ~budget:(Fuzzer.Test_cases budget)
      in
      let total =
        List.fold_left (fun acc (s : Fuzzer.stats) -> acc + s.Fuzzer.test_cases) 0 per_domain
      in
      Printf.printf "(%d domains, %d test cases total)\n%!" jobs total;
      (outcome, List.hd per_domain)
    end
    else Fuzzer.fuzz ~on_progress cfg ~budget:(Fuzzer.Test_cases budget)
  in
  match run () with
  | Fuzzer.No_violation, stats ->
      Format.printf "No violation detected.@.%a@." Fuzzer.pp_stats stats;
      0
  | Fuzzer.Violation v, stats ->
      Format.printf "%a@.@.%a@." Violation.pp v Fuzzer.pp_stats stats;
      (match save_dir with
      | Some dir ->
          Results.save_violation ~dir v;
          Format.printf "@.Saved to %s/{violation.asm,inputs.txt,report.txt}@." dir
      | None -> ());
      if minimize then begin
        let cpu = Revizor_uarch.Cpu.create cfg.Fuzzer.uarch in
        let executor = Executor.create cpu cfg.Fuzzer.executor in
        let m = Postprocessor.minimize cfg executor v in
        Format.printf "@.Minimized test case (%d inputs):@.%a@."
          (List.length m.Postprocessor.inputs)
          Revizor_isa.Program.pp m.Postprocessor.program;
        Format.printf "@.With localizing fences:@.%a@." Revizor_isa.Program.pp
          m.Postprocessor.fenced
      end;
      1

let fuzz_cmd =
  let minimize =
    Arg.(value & flag & info [ "m"; "minimize" ] ~doc:"Minimize the violation.")
  in
  let save_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"DIR"
          ~doc:"Save the counterexample (asm + input seeds + report) to DIR.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Run N parallel fuzzing campaigns on separate domains.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc:"Fuzz a target against a contract (Fig. 2 pipeline).")
    Term.(
      const do_fuzz $ contract_arg $ target_arg $ seed_arg $ budget_arg
      $ inputs_arg $ minimize $ save_dir $ jobs)

(* --- check: re-verify a saved counterexample -------------------------- *)

let do_check dir contract target =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Printf.eprintf "%s\n" e; 2 in
  let* program = Results.load_program (Filename.concat dir "violation.asm") in
  let* inputs = Results.load_inputs (Filename.concat dir "inputs.txt") in
  let cfg = Target.fuzzer_config contract target in
  let cpu = Revizor_uarch.Cpu.create cfg.Fuzzer.uarch in
  let executor = Executor.create cpu cfg.Fuzzer.executor in
  match Fuzzer.check_test_case cfg executor program inputs with
  | Ok (Some v) ->
      Format.printf "still a violation: %s@." (Violation.summary v);
      1
  | Ok None ->
      Format.printf "no violation with this target/contract@.";
      0
  | Error e ->
      Printf.eprintf "test case faulted: %s\n" e;
      2

let check_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"Directory produced by fuzz --save.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Re-verify a saved counterexample directory.")
    Term.(const do_check $ dir $ contract_arg $ target_arg)

(* --- gadget ---------------------------------------------------------- *)

let do_gadget name list_them contract target seed =
  if list_them then begin
    List.iter
      (fun (g : Gadgets.t) ->
        Printf.printf "%-22s %-10s %s\n" g.Gadgets.name g.Gadgets.reference
          g.Gadgets.description)
      Gadgets.all;
    0
  end
  else
    match Gadgets.find name with
    | None ->
        Printf.eprintf "unknown gadget %S (try --list)\n" name;
        2
    | Some g -> (
        Format.printf "%s (%s)@.%s@.@.%a@.@." g.Gadgets.name g.Gadgets.reference
          g.Gadgets.description Revizor_isa.Program.pp g.Gadgets.program;
        let cfg = Target.fuzzer_config ~seed contract target in
        let cpu = Revizor_uarch.Cpu.create cfg.Fuzzer.uarch in
        let executor = Executor.create cpu cfg.Fuzzer.executor in
        let prng = Prng.create ~seed in
        let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
        match Fuzzer.check_test_case cfg executor g.Gadgets.program inputs with
        | Ok (Some v) ->
            Format.printf "%s vs %s: VIOLATION %s@."
              (Format.asprintf "%a" Target.pp target)
              (Contract.name contract) (Violation.summary v);
            1
        | Ok None ->
            Format.printf "%s vs %s: no violation@."
              (Format.asprintf "%a" Target.pp target)
              (Contract.name contract);
            0
        | Error e ->
            Printf.eprintf "gadget faulted: %s\n" e;
            2)

let gadget_cmd =
  let gadget_name =
    Arg.(
      value & pos 0 string "spectre-v1"
      & info [] ~docv:"NAME" ~doc:"Gadget name (see --list).")
  in
  let list_them = Arg.(value & flag & info [ "list" ] ~doc:"List gadgets.") in
  Cmd.v
    (Cmd.info "gadget" ~doc:"Check a hand-written gadget against a contract.")
    Term.(
      const do_gadget $ gadget_name $ list_them $ contract_arg $ target_arg
      $ seed_arg)

(* --- reproduce -------------------------------------------------------- *)

let do_reproduce what budget runs seed =
  let section title body =
    Printf.printf "\n=== %s ===\n%s\n%!" title body
  in
  let all = what = "all" in
  if all || what = "table3" then
    section "Table 3: contract violations per target"
      (Report.table3 (Experiments.table3 ~budget ~seed ()));
  if all || what = "table4" then
    section "Table 4: detection time"
      (Report.table4 ~runs (Experiments.table4 ~runs ~seed ()));
  if all || what = "table5" then
    section "Table 5: inputs to violation on hand-written gadgets"
      (Report.table5 (Experiments.table5 ~runs:(max runs 20) ~seed ()));
  if all || what = "store-eviction" then
    section "Section 6.4: speculative store eviction"
      (Report.store_eviction (Experiments.store_eviction_check ~seed ()));
  if all || what = "sensitivity" then
    section "Section 6.6: contract sensitivity (STT)"
      (Report.sensitivity (Experiments.contract_sensitivity ~seed ()));
  if all || what = "throughput" then
    section "Appendix A.5.3: fuzzing throughput"
      (Report.throughput (Experiments.throughput ~seed ()));
  if all || what = "ports" then
    section "Extension: port-contention channel"
      (String.concat "\n"
         (List.map
            (fun (g, channel, violated) ->
              Printf.sprintf "%-18s via %-16s %s" g channel
                (if violated then "VIOLATION" else "compliant"))
            (Experiments.port_channel_demo ~seed ())));
  if all || what = "ablations" then begin
    section "Ablation: priming" (Report.ablation (Experiments.ablation_priming ~seed ()));
    section "Ablation: input entropy"
      (Report.entropy_sweep (Experiments.ablation_entropy ~seed ()));
    section "Ablation: noise filtering"
      (Report.ablation (Experiments.ablation_noise_filtering ~seed ()));
    section "Ablation: trace equivalence"
      (Report.ablation (Experiments.ablation_equivalence ~seed ()));
    section "Ablation: swap check"
      (Report.ablation (Experiments.ablation_swap_check ~seed ()));
    section "Ablation: coverage feedback"
      (Report.ablation (Experiments.ablation_feedback ~seed ()))
  end;
  0

let reproduce_cmd =
  let what =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "One of: table3, table4, table5, store-eviction, sensitivity, \
             throughput, ports, ablations, all.")
  in
  let budget =
    Arg.(
      value & opt int 400
      & info [ "budget" ] ~docv:"N" ~doc:"Test-case budget per Table 3 cell.")
  in
  let runs =
    Arg.(
      value & opt int 10
      & info [ "runs" ] ~docv:"N" ~doc:"Repetitions for Tables 4 and 5.")
  in
  Cmd.v
    (Cmd.info "reproduce" ~doc:"Re-run the paper's experiments and print the tables.")
    Term.(const do_reproduce $ what $ budget $ runs $ seed_arg)

(* --- isa --------------------------------------------------------------- *)

let do_isa () =
  let open Revizor_isa in
  let show name subsets =
    Printf.printf "%-18s %4d unique instruction variants\n" name
      (Catalog.count subsets)
  in
  show "AR" [ Catalog.AR ];
  show "AR+MEM" [ Catalog.AR; Catalog.MEM ];
  show "AR+MEM+VAR" [ Catalog.AR; Catalog.MEM; Catalog.VAR ];
  show "AR+CB" [ Catalog.AR; Catalog.CB ];
  show "AR+MEM+CB" [ Catalog.AR; Catalog.MEM; Catalog.CB ];
  show "AR+MEM+CB+VAR" [ Catalog.AR; Catalog.MEM; Catalog.CB; Catalog.VAR ];
  show "+IND (extension)"
    [ Catalog.AR; Catalog.MEM; Catalog.CB; Catalog.VAR; Catalog.IND ];
  0

let isa_cmd =
  Cmd.v
    (Cmd.info "isa" ~doc:"Report the instruction-catalog sizes (cf. §6.1).")
    Term.(const do_isa $ const ())

let main =
  Cmd.group
    (Cmd.info "revizor" ~version:"1.0.0"
       ~doc:
         "Model-based Relational Testing of (simulated) black-box CPUs \
          against speculation contracts.")
    [ fuzz_cmd; check_cmd; gadget_cmd; reproduce_cmd; isa_cmd ]

let () = exit (Cmd.eval' main)
