lib/uarch/cpu.mli: Cache Format Page_table Program Revizor_emu Revizor_isa State Uarch_config
