lib/uarch/page_table.mli:
