lib/uarch/htrace.mli: Format
