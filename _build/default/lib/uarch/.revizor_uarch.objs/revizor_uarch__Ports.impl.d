lib/uarch/ports.ml: Instruction Opcode Revizor_isa
