lib/uarch/predictors.ml: Array List
