lib/uarch/attack.mli: Cpu Htrace
