lib/uarch/page_table.ml: Array Layout Revizor_emu
