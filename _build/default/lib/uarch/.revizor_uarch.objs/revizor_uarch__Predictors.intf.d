lib/uarch/predictors.mli:
