lib/uarch/ports.mli: Instruction Revizor_isa
