lib/uarch/cache.mli:
