lib/uarch/cache.ml: Array Int64 Layout Revizor_emu
