lib/uarch/htrace.ml: Format Int Set
