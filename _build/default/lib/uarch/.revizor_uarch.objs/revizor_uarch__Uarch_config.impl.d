lib/uarch/uarch_config.ml: Format Instruction Int64 Opcode Revizor_isa
