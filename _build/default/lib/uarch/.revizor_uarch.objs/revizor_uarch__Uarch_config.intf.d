lib/uarch/uarch_config.mli: Format Instruction Revizor_isa
