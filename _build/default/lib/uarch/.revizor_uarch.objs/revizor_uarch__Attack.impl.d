lib/uarch/attack.ml: Array Cache Cpu Htrace Int64 Layout Page_table Ports Revizor_emu
