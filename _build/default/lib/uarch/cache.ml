open Revizor_emu

type t = {
  n_sets : int;
  ways : int;
  (* [lines.(set).(way)] is a line tag; [lru.(set).(way)] is the recency
     rank (0 = most recent). Empty ways hold [empty_tag]. *)
  lines : int64 array array;
  lru : int array array;
}

let empty_tag = Int64.min_int
let attacker_tag way = Int64.of_int (-1 - way)

let create ?(sets = Layout.l1d_sets) ?(ways = Layout.l1d_ways) () =
  {
    n_sets = sets;
    ways;
    lines = Array.init sets (fun _ -> Array.make ways empty_tag);
    lru = Array.init sets (fun _ -> Array.init ways (fun w -> w));
  }

let sets t = t.n_sets

let line_of_addr addr = Int64.div addr (Int64.of_int Layout.cache_line)

let set_of_addr t addr =
  Int64.to_int (Int64.rem (line_of_addr addr) (Int64.of_int t.n_sets))
  land (t.n_sets - 1)

let find_way t set tag =
  let rec go w =
    if w >= t.ways then None
    else if t.lines.(set).(w) = tag then Some w
    else go (w + 1)
  in
  go 0

let promote t set way =
  let old_rank = t.lru.(set).(way) in
  for w = 0 to t.ways - 1 do
    if t.lru.(set).(w) < old_rank then t.lru.(set).(w) <- t.lru.(set).(w) + 1
  done;
  t.lru.(set).(way) <- 0

let victim_way t set =
  let worst = ref 0 in
  for w = 1 to t.ways - 1 do
    if t.lru.(set).(w) > t.lru.(set).(!worst) then worst := w
  done;
  !worst

let touch_tag t set tag =
  match find_way t set tag with
  | Some w ->
      promote t set w;
      `Hit
  | None ->
      let w = victim_way t set in
      t.lines.(set).(w) <- tag;
      promote t set w;
      `Miss

let touch t addr =
  let tag = line_of_addr addr in
  touch_tag t (set_of_addr t addr) tag

let contains t addr =
  find_way t (set_of_addr t addr) (line_of_addr addr) <> None

let flush_line t addr =
  match find_way t (set_of_addr t addr) (line_of_addr addr) with
  | Some w -> t.lines.(set_of_addr t addr).(w) <- empty_tag
  | None -> ()

let flush_all t =
  Array.iter (fun set -> Array.fill set 0 t.ways empty_tag) t.lines

let prime t =
  for set = 0 to t.n_sets - 1 do
    for w = 0 to t.ways - 1 do
      ignore (touch_tag t set (attacker_tag w))
    done
  done

let probe t set =
  let evicted = ref false in
  for w = 0 to t.ways - 1 do
    match touch_tag t set (attacker_tag w) with
    | `Miss -> evicted := true
    | `Hit -> ()
  done;
  !evicted

let copy t =
  {
    t with
    lines = Array.map Array.copy t.lines;
    lru = Array.map Array.copy t.lru;
  }
