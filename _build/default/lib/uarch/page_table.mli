(** Accessed bits of the sandbox data pages, for the microcode-assist
    executor mode (§5.3, " *+Assist"). The executor clears the Accessed bit
    of one page before a measurement; the first load or store touching that
    page then triggers a microcode assist. *)

type t

val create : unit -> t
(** All pages start with the Accessed bit set (no assists). *)

val clear_accessed : t -> page:int -> unit

val set_all : t -> unit

val access : t -> page:int -> bool
(** [access t ~page] is [true] iff this access triggers an assist; the
    Accessed bit is set as a side effect (assists fire once per clearing). *)

val accessed : t -> page:int -> bool
val copy : t -> t
