open Revizor_emu

type t = { bits : bool array }

let create () = { bits = Array.make Layout.data_pages true }

let clear_accessed t ~page =
  if page >= 0 && page < Array.length t.bits then t.bits.(page) <- false

let set_all t = Array.fill t.bits 0 (Array.length t.bits) true

let access t ~page =
  if page < 0 || page >= Array.length t.bits then false
  else if t.bits.(page) then false
  else begin
    t.bits.(page) <- true;
    true
  end

let accessed t ~page =
  page < 0 || page >= Array.length t.bits || t.bits.(page)

let copy t = { bits = Array.copy t.bits }
