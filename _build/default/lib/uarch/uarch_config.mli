open Revizor_isa

(** Microarchitecture configuration: the knobs that distinguish the CPUs of
    Table 2 and their patches, plus the latency model that drives the
    dataflow-timing engine. *)

type latencies = {
  alu : int;
  mul : int;
  load_hit : int;
  load_miss : int;
  agu : int;  (** address generation *)
  branch_resolve : int;  (** added to flag readiness *)
  div_base : int;
  div_per_nibble : int;
      (** the operand-dependent part: cycles per significant nibble of the
          dividend — the variable-latency property exploited by the
          V1-var/V4-var leaks of §6.3 *)
  assist : int;  (** microcode-assist resolution latency *)
}

type t = {
  name : string;
  rob_size : int;  (** bounds the transient window, in instructions *)
  fetch_width : int;  (** instructions fetched per cycle *)
  max_nesting : int;  (** speculation-inside-speculation depth bound *)
  pht_size : int;
  btb_size : int;
  rsb_depth : int;
  v4_patch : bool;  (** SSBD microcode patch: no speculative store bypass *)
  mds_patch : bool;  (** fill buffers cleared: assisted loads forward zeros *)
  assist_forwarding_leak : bool;
      (** whether an assisted store breaks store-to-load forwarding so that
          younger same-address loads transiently observe stale memory (the
          LVI-class leak surfaced on MDS-patched parts) *)
  speculative_store_eviction : bool;
      (** whether stores modify the cache before retiring (§6.4: holds on
          Coffee Lake, not on Skylake) *)
  lat : latencies;
}

val default_latencies : latencies

val skylake : v4_patch:bool -> t
(** Intel Core i7-6700 model: vulnerable to MDS; stores modify the cache
    only at retirement. *)

val coffee_lake : t
(** Intel Core i7-9700 model: hardware MDS patch (with the LVI-Null
    forwarding leak), V4 patch on, and speculative store eviction. *)

val div_latency : t -> dividend:int64 -> int
(** Operand-dependent division latency. *)

val mem_latency : t -> hit:bool -> int

val inst_latency : t -> Instruction.t -> int
(** Base execution latency of an instruction, excluding memory and
    division variability. *)

val pp : Format.formatter -> t -> unit
