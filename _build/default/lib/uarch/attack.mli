(** Simulated side-channel measurement (§5.3).

    Each observation wraps one execution of the test case in the
    prepare/probe phases of a cache attack on the simulated L1D:

    - {b Prime+Probe}: fill every set with attacker lines, run, report the
      sets where an attacker line was evicted (granularity: 64 sets);
    - {b Flush+Reload}: flush the monitored sandbox lines, run, report the
      lines now present (granularity: 128 lines over two data pages);
    - {b Evict+Reload}: like Flush+Reload but eviction-based preparation.

    The [*+Assist] threat models additionally clear the Accessed bit of a
    sandbox page before the run, so the first access to it triggers a
    microcode assist (§5.3). *)

type mode =
  | Prime_probe
  | Flush_reload
  | Evict_reload
  | Port_contention
      (** extension (§7 future work): observe bucketized per-port µop
          counts, like an SMT sibling measuring its own slowdown — sees
          transient execution even when it makes no memory access *)

type threat = {
  mode : mode;
  assist_page : int option;  (** page whose Accessed bit is cleared *)
}

val prime_probe : threat
val prime_probe_assist : threat
(** Assist on page 0, where generated single-page test cases access. *)

val flush_reload : threat
val evict_reload : threat
val port_contention : threat

val mode_to_string : mode -> string
val threat_to_string : threat -> string

val observe : Cpu.t -> threat -> (unit -> unit) -> Htrace.t
(** [observe cpu threat run] prepares the channel, invokes [run] (which
    must execute the test case on [cpu]), and probes. Exceptions from
    [run] propagate after the microarchitectural state is left as-is. *)

val trace_domain : mode -> int
(** Number of distinct observation indices (64 or 128). *)
