open Revizor_isa

type latencies = {
  alu : int;
  mul : int;
  load_hit : int;
  load_miss : int;
  agu : int;
  branch_resolve : int;
  div_base : int;
  div_per_nibble : int;
  assist : int;
}

type t = {
  name : string;
  rob_size : int;
  fetch_width : int;
  max_nesting : int;
  pht_size : int;
  btb_size : int;
  rsb_depth : int;
  v4_patch : bool;
  mds_patch : bool;
  assist_forwarding_leak : bool;
  speculative_store_eviction : bool;
  lat : latencies;
}

let default_latencies =
  {
    alu = 1;
    mul = 3;
    load_hit = 4;
    load_miss = 50;
    agu = 1;
    branch_resolve = 1;
    div_base = 10;
    div_per_nibble = 4;
    assist = 30;
  }

let skylake ~v4_patch =
  {
    name = (if v4_patch then "Skylake (V4 patch on)" else "Skylake (V4 patch off)");
    rob_size = 224;
    fetch_width = 4;
    max_nesting = 4;
    pht_size = 512;
    btb_size = 256;
    rsb_depth = 16;
    v4_patch;
    mds_patch = false;
    assist_forwarding_leak = false;
    speculative_store_eviction = false;
    lat = default_latencies;
  }

let coffee_lake =
  {
    name = "Coffee Lake (MDS patch, V4 patch on)";
    rob_size = 224;
    fetch_width = 4;
    max_nesting = 4;
    pht_size = 512;
    btb_size = 256;
    rsb_depth = 16;
    v4_patch = true;
    mds_patch = true;
    assist_forwarding_leak = true;
    speculative_store_eviction = true;
    lat = default_latencies;
  }

let significant_nibbles v =
  let rec go v acc = if v = 0L then acc else go (Int64.shift_right_logical v 4) (acc + 1) in
  go v 0

let div_latency t ~dividend =
  t.lat.div_base + (t.lat.div_per_nibble * significant_nibbles dividend)

let mem_latency t ~hit = if hit then t.lat.load_hit else t.lat.load_miss

let inst_latency t (i : Instruction.t) =
  match i.Instruction.opcode with
  | Opcode.Imul -> t.lat.mul
  | Opcode.Div | Opcode.Idiv -> t.lat.div_base
  | Opcode.Jcc _ | Opcode.Jmp | Opcode.JmpInd | Opcode.Call | Opcode.Ret ->
      t.lat.branch_resolve
  | _ -> t.lat.alu

let pp fmt t =
  Format.fprintf fmt
    "%s [ROB=%d fetch=%d v4_patch=%b mds_patch=%b spec_store_evict=%b]" t.name
    t.rob_size t.fetch_width t.v4_patch t.mds_patch t.speculative_store_eviction
