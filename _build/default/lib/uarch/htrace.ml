module S = Set.Make (Int)

type t = S.t

let empty = S.empty
let singleton = S.singleton
let of_list = S.of_list
let add = S.add
let union = S.union
let inter = S.inter
let subset = S.subset
let equal = S.equal
let compare = S.compare
let is_empty = S.is_empty
let cardinal = S.cardinal
let elements = S.elements
let mem = S.mem
let diff = S.diff
let comparable a b = subset a b || subset b a

let pp_wide ~width fmt t =
  for i = 0 to width - 1 do
    Format.pp_print_char fmt (if S.mem i t then '1' else '0')
  done

let pp fmt t =
  let width = match S.max_elt_opt t with Some m when m >= 64 -> 128 | _ -> 64 in
  pp_wide ~width fmt t
