module Pht = struct
  type t = { counters : int array }

  let create ?(size = 512) () = { counters = Array.make size 1 }
  let slot t pc = pc land (Array.length t.counters - 1)
  let predict t ~pc = t.counters.(slot t pc) >= 2

  let update t ~pc ~taken =
    let i = slot t pc in
    let c = t.counters.(i) in
    t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1))

  let reset t = Array.fill t.counters 0 (Array.length t.counters) 1
  let copy t = { counters = Array.copy t.counters }
end

module Btb = struct
  type t = { targets : int array (* -1 = no entry *) }

  let create ?(size = 256) () = { targets = Array.make size (-1) }
  let slot t pc = pc land (Array.length t.targets - 1)

  let predict t ~pc =
    let v = t.targets.(slot t pc) in
    if v < 0 then None else Some v

  let update t ~pc ~target = t.targets.(slot t pc) <- target
  let reset t = Array.fill t.targets 0 (Array.length t.targets) (-1)
  let copy t = { targets = Array.copy t.targets }
end

module Rsb = struct
  type t = { depth : int; mutable entries : int list }

  let create ?(depth = 16) () = { depth; entries = [] }

  let push t v =
    let cut l = if List.length l > t.depth then List.filteri (fun i _ -> i < t.depth) l else l in
    t.entries <- cut (v :: t.entries)

  let pop t =
    match t.entries with
    | [] -> None
    | v :: rest ->
        t.entries <- rest;
        Some v

  let reset t = t.entries <- []
  let copy t = { t with entries = t.entries }
end
