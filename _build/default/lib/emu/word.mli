open Revizor_isa

(** 64-bit machine words manipulated at x86 operand widths. *)

type t = int64

val zext : Width.t -> t -> t
(** Truncate to the width (zero-extension when read back as 64-bit). *)

val sext : Width.t -> t -> t
(** Truncate to the width, then sign-extend to 64 bits. *)

val sign_set : Width.t -> t -> bool
(** Whether the top bit of the width is set. *)

val parity_even : t -> bool
(** x86 PF: even number of set bits in the low byte. *)

val merge : Width.t -> old:t -> t -> t
(** x86 sub-register write semantics applied to a 64-bit container: a 32-bit
    write zeroes the upper half; 8/16-bit writes preserve upper bits. *)

val ult : t -> t -> bool
(** Unsigned less-than. *)

val ule : t -> t -> bool