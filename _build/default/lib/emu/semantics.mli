open Revizor_isa

(** Architectural execution of the modelled ISA.

    {!step} executes the instruction at [state.pc] of a flattened program,
    mutates the state (registers, flags, memory, pc) and reports the
    instruction's externally relevant effects: memory accesses in program
    order and the branch decision, if any. Both the contract model and the
    hardware simulator are built on this single semantics, so they can
    never disagree on architectural behaviour. *)

exception Division_fault
(** Division by zero or quotient overflow (#DE). Generated test cases are
    instrumented to never raise it. *)

type access = {
  kind : [ `Load | `Store ];
  addr : int64;
  width : Width.t;
  value : int64;  (** value loaded / stored *)
}

type outcome = {
  inst : Instruction.t;
  pc : int;  (** index of the executed instruction *)
  accesses : access list;
  taken : bool option;  (** [Some b] for conditional jumps *)
  next : int;  (** next pc; equals the code length on fall-off-the-end *)
}

val mem_addr : State.t -> Operand.mem -> int64
(** Effective address of a memory operand in the given state. *)

val mask_code_index : code_len:int -> int64 -> int
(** Confine a dynamic control-flow target (RET / indirect jump) to
    [\[0, code_len\]] — the control-flow analogue of sandbox masking. *)

val step : Program.flat -> State.t -> outcome
(** @raise Division_fault on #DE
    @raise Memory.Fault on an access outside the sandbox
    @raise Invalid_argument if [state.pc] is out of range or the
    instruction's operand shape is unsupported. *)

val run : ?max_steps:int -> Program.flat -> State.t -> outcome list
(** Execute from [state.pc] until the program ends, in program order.
    [max_steps] (default 4096) bounds dynamic control flow (RET and
    indirect-jump targets are data-dependent and could loop). *)
