(** Memory layout constants of the test-case sandbox.

    The sandbox mirrors the paper's setup (§5.1): one or two 4 KiB data
    pages, all generated accesses masked to cache-line granularity within
    them. A small guard tail keeps wide accesses at the last in-page offset
    in bounds, and the top of the last page doubles as the simulated stack
    for CALL/RET. *)

val page_size : int (* 4096 *)
val data_pages : int (* 2 *)
val guard : int (* 64: allows an 8-byte access at offset page_end-1+63 *)
val sandbox_size : int (* data_pages * page_size + guard *)

val sandbox_base : int64
(** Virtual base address loaded into R14. *)

val stack_top : int64
(** Initial RSP: [sandbox_base + data_pages * page_size]; CALL pushes
    downwards into the second data page. *)

val cache_line : int (* 64 *)
val l1d_sets : int (* 64 *)
val l1d_ways : int (* 8 *)

val line_mask_one_page : int64
(** [0b111111000000]: the AND mask confining an access to page 0, aligned to
    a cache line (Fig. 3 of the paper). *)

val line_mask_two_pages : int64
(** Same, but spanning both data pages. *)

val page_of_offset : int -> int
(** Data page index of a sandbox offset. *)

val set_of_addr : int64 -> int
(** L1D cache set index of a virtual address. *)

val in_sandbox : int64 -> bool
(** Whether a virtual address falls inside the sandbox (incl. guard). *)

val offset_of_addr : int64 -> int
(** Sandbox offset of a virtual address; meaningful when {!in_sandbox}. *)
