open Revizor_isa

(** The x86 status flags and their update rules.

    Update rules follow the Intel SDM. Where the SDM leaves a flag
    undefined (AF after logic ops and shifts, all flags after DIV), we pick
    a fixed deterministic value so that the contract model and the hardware
    simulator can never diverge on "undefined" state. *)

type t = {
  cf : bool;  (** carry *)
  pf : bool;  (** parity (of the low result byte) *)
  af : bool;  (** auxiliary carry (nibble) *)
  zf : bool;  (** zero *)
  sf : bool;  (** sign *)
  o_f : bool;  (** overflow ([of] is a keyword) *)
}

val empty : t

val eval_cond : t -> Cond.t -> bool

val to_word : t -> int64
(** Pack into RFLAGS bit positions (CF=0, PF=2, AF=4, ZF=6, SF=7, OF=11). *)

val of_word : int64 -> t

(** {1 Update rules}

    [a] and [b] are the operand values truncated to the width; [r] is the
    truncated result. *)

val after_add : Width.t -> a:int64 -> b:int64 -> carry_in:bool -> r:int64 -> t
val after_sub : Width.t -> a:int64 -> b:int64 -> borrow_in:bool -> r:int64 -> t

val after_logic : Width.t -> r:int64 -> t
(** AND/OR/XOR/TEST: CF = OF = AF = 0. *)

val after_inc : Width.t -> t -> a:int64 -> r:int64 -> t
(** INC/DEC preserve CF. [a] is the pre-increment value. *)

val after_dec : Width.t -> t -> a:int64 -> r:int64 -> t

val after_neg : Width.t -> a:int64 -> r:int64 -> t

val after_imul : Width.t -> full_overflow:bool -> r:int64 -> t
(** CF = OF = whether the full product did not fit the destination. *)

val after_shift :
  Width.t -> t -> op:[ `Shl | `Shr | `Sar ] -> a:int64 -> count:int -> r:int64 -> t
(** Shifts with a zero (masked) count leave flags untouched. *)

val after_rotate :
  Width.t -> t -> op:[ `Rol | `Ror ] -> count:int -> r:int64 -> t
(** Rotates update only CF and OF; a zero (masked) count leaves flags
    untouched. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
