open Revizor_isa

type t = { cf : bool; pf : bool; af : bool; zf : bool; sf : bool; o_f : bool }

let empty = { cf = false; pf = false; af = false; zf = false; sf = false; o_f = false }

let eval_cond t = function
  | Cond.O -> t.o_f
  | Cond.NO -> not t.o_f
  | Cond.B -> t.cf
  | Cond.AE -> not t.cf
  | Cond.Z -> t.zf
  | Cond.NZ -> not t.zf
  | Cond.BE -> t.cf || t.zf
  | Cond.A -> not (t.cf || t.zf)
  | Cond.S -> t.sf
  | Cond.NS -> not t.sf
  | Cond.P -> t.pf
  | Cond.NP -> not t.pf
  | Cond.L -> t.sf <> t.o_f
  | Cond.GE -> t.sf = t.o_f
  | Cond.LE -> t.zf || t.sf <> t.o_f
  | Cond.G -> not (t.zf || t.sf <> t.o_f)

let bit b pos = if b then Int64.shift_left 1L pos else 0L

let to_word t =
  List.fold_left Int64.logor 0L
    [ bit t.cf 0; bit t.pf 2; bit t.af 4; bit t.zf 6; bit t.sf 7; bit t.o_f 11 ]

let of_word w =
  let b pos = Int64.logand (Int64.shift_right_logical w pos) 1L = 1L in
  { cf = b 0; pf = b 2; af = b 4; zf = b 6; sf = b 7; o_f = b 11 }

let result_flags w r =
  { empty with
    zf = Word.zext w r = 0L;
    sf = Word.sign_set w r;
    pf = Word.parity_even r }

let after_add w ~a ~b ~carry_in ~r =
  let open Word in
  let base = result_flags w r in
  let a = zext w a and b = zext w b and r = zext w r in
  let cf =
    match w with
    | Width.W64 -> if carry_in then ule r a else ult r a
    | _ ->
        let full = Int64.add (Int64.add a b) (if carry_in then 1L else 0L) in
        full <> r
  in
  let o_f =
    Int64.logand
      (Int64.logand (Int64.logxor a r) (Int64.logxor b r))
      (Width.sign_bit w)
    <> 0L
  in
  let af = Int64.logand (Int64.logxor (Int64.logxor a b) r) 0x10L <> 0L in
  { base with cf; o_f; af }

let after_sub w ~a ~b ~borrow_in ~r =
  let open Word in
  let base = result_flags w r in
  let a = zext w a and b = zext w b in
  let cf = if borrow_in then ule a b else ult a b in
  let r = zext w r in
  let o_f =
    Int64.logand
      (Int64.logand (Int64.logxor a b) (Int64.logxor a r))
      (Width.sign_bit w)
    <> 0L
  in
  let af = Int64.logand (Int64.logxor (Int64.logxor a b) r) 0x10L <> 0L in
  { base with cf; o_f; af }

let after_logic w ~r = result_flags w r

let after_inc w t ~a ~r =
  let f = after_add w ~a ~b:1L ~carry_in:false ~r in
  { f with cf = t.cf }

let after_dec w t ~a ~r =
  let f = after_sub w ~a ~b:1L ~borrow_in:false ~r in
  { f with cf = t.cf }

let after_neg w ~a ~r =
  let f = after_sub w ~a:0L ~b:a ~borrow_in:false ~r in
  { f with cf = Word.zext w a <> 0L }

let after_imul w ~full_overflow ~r =
  let base = result_flags w r in
  (* x86 leaves SF defined, ZF/PF/AF undefined after IMUL; we keep the
     deterministic result-derived values. *)
  { base with cf = full_overflow; o_f = full_overflow }

let after_shift w t ~op ~a ~count ~r =
  if count = 0 then t
  else
    let base = result_flags w r in
    let bits = Width.bits w in
    let a = Word.zext w a in
    let cf =
      match op with
      | `Shl ->
          if count > bits then false
          else Int64.logand (Int64.shift_right_logical a (bits - count)) 1L = 1L
      | `Shr | `Sar ->
          if count > bits then op = `Sar && Word.sign_set w a
          else Int64.logand (Int64.shift_right_logical a (count - 1)) 1L = 1L
    in
    let o_f =
      match op with
      | `Shl -> Word.sign_set w r <> cf
      | `Shr -> Word.sign_set w a
      | `Sar -> false
    in
    { base with cf; o_f; af = false }

let after_rotate w t ~op ~count ~r =
  if count = 0 then t
  else
    let bit n = Int64.logand (Int64.shift_right_logical r n) 1L = 1L in
    let msb = Word.sign_set w r in
    let cf = match op with `Rol -> bit 0 | `Ror -> msb in
    let o_f =
      match op with
      | `Rol -> msb <> cf
      | `Ror -> msb <> bit (Width.bits w - 2)
    in
    { t with cf; o_f }

let pp fmt t =
  let f name b = if b then name else "-" in
  Format.fprintf fmt "[%s%s%s%s%s%s]" (f "C" t.cf) (f "P" t.pf) (f "A" t.af)
    (f "Z" t.zf) (f "S" t.sf) (f "O" t.o_f)

let equal (a : t) (b : t) = a = b
