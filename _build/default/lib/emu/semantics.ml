open Revizor_isa

exception Division_fault

type access = {
  kind : [ `Load | `Store ];
  addr : int64;
  width : Width.t;
  value : int64;
}

type outcome = {
  inst : Instruction.t;
  pc : int;
  accesses : access list;
  taken : bool option;
  next : int;
}

let mem_addr (state : State.t) (m : Operand.mem) =
  let base = match m.base with Some r -> State.get_reg state r Width.W64 | None -> 0L in
  let index =
    match m.index with
    | Some r -> Int64.mul (State.get_reg state r Width.W64) (Int64.of_int m.scale)
    | None -> 0L
  in
  Int64.add (Int64.add base index) (Int64.of_int m.disp)

let mask_code_index ~code_len v =
  let n = code_len + 1 in
  ((Int64.to_int v land max_int) mod n + n) mod n

(* Accesses are accumulated in reverse program order in a mutable list. *)
type ctx = { state : State.t; mutable accesses : access list }

let load ctx addr width =
  let value = Memory.read ctx.state.State.mem ~addr width in
  ctx.accesses <- { kind = `Load; addr; width; value } :: ctx.accesses;
  value

let store ctx addr width value =
  Memory.write ctx.state.State.mem ~addr width value;
  ctx.accesses <- { kind = `Store; addr; width; value } :: ctx.accesses

let operand_width (i : Instruction.t) =
  let from_list =
    List.find_map (fun op -> Operand.width op) i.Instruction.operands
  in
  match from_list with Some w -> w | None -> Width.W64

(* Read the value of a source operand (zero-extended to 64 bits). *)
let read_src ctx w (op : Operand.t) =
  match op with
  | Operand.Reg (r, w') -> State.get_reg ctx.state r w'
  | Operand.Imm v -> Word.zext w v
  | Operand.Mem (m, w') -> load ctx (mem_addr ctx.state m) w'

(* Read a destination for a read-modify-write operation. *)
let read_dst ctx (op : Operand.t) =
  match op with
  | Operand.Reg (r, w) -> State.get_reg ctx.state r w
  | Operand.Mem (m, w) -> load ctx (mem_addr ctx.state m) w
  | Operand.Imm _ -> invalid_arg "Semantics: immediate destination"

let write_dst ctx (op : Operand.t) v =
  match op with
  | Operand.Reg (r, w) -> State.set_reg ctx.state r w v
  | Operand.Mem (m, w) -> store ctx (mem_addr ctx.state m) w (Word.zext w v)
  | Operand.Imm _ -> invalid_arg "Semantics: immediate destination"

let set_flags ctx f = ctx.state.State.flags <- f

let exec_binop ctx (i : Instruction.t) dst src =
  let w = operand_width i in
  let flags = ctx.state.State.flags in
  match i.Instruction.opcode with
  | Opcode.Mov ->
      let b = read_src ctx w src in
      write_dst ctx dst b
  | Opcode.Add ->
      let a = read_dst ctx dst and b = read_src ctx w src in
      let r = Word.zext w (Int64.add a b) in
      set_flags ctx (Flags.after_add w ~a ~b ~carry_in:false ~r);
      write_dst ctx dst r
  | Opcode.Adc ->
      let a = read_dst ctx dst and b = read_src ctx w src in
      let c = if flags.Flags.cf then 1L else 0L in
      let r = Word.zext w (Int64.add (Int64.add a b) c) in
      set_flags ctx (Flags.after_add w ~a ~b ~carry_in:flags.Flags.cf ~r);
      write_dst ctx dst r
  | Opcode.Sub ->
      let a = read_dst ctx dst and b = read_src ctx w src in
      let r = Word.zext w (Int64.sub a b) in
      set_flags ctx (Flags.after_sub w ~a ~b ~borrow_in:false ~r);
      write_dst ctx dst r
  | Opcode.Sbb ->
      let a = read_dst ctx dst and b = read_src ctx w src in
      let c = if flags.Flags.cf then 1L else 0L in
      let r = Word.zext w (Int64.sub (Int64.sub a b) c) in
      set_flags ctx (Flags.after_sub w ~a ~b ~borrow_in:flags.Flags.cf ~r);
      write_dst ctx dst r
  | Opcode.Cmp ->
      let a = read_dst ctx dst and b = read_src ctx w src in
      let r = Word.zext w (Int64.sub a b) in
      set_flags ctx (Flags.after_sub w ~a ~b ~borrow_in:false ~r)
  | Opcode.And ->
      let a = read_dst ctx dst and b = read_src ctx w src in
      let r = Word.zext w (Int64.logand a b) in
      set_flags ctx (Flags.after_logic w ~r);
      write_dst ctx dst r
  | Opcode.Or ->
      let a = read_dst ctx dst and b = read_src ctx w src in
      let r = Word.zext w (Int64.logor a b) in
      set_flags ctx (Flags.after_logic w ~r);
      write_dst ctx dst r
  | Opcode.Xor ->
      let a = read_dst ctx dst and b = read_src ctx w src in
      let r = Word.zext w (Int64.logxor a b) in
      set_flags ctx (Flags.after_logic w ~r);
      write_dst ctx dst r
  | Opcode.Test ->
      let a = read_dst ctx dst and b = read_src ctx w src in
      let r = Word.zext w (Int64.logand a b) in
      set_flags ctx (Flags.after_logic w ~r)
  | Opcode.Imul ->
      let a = read_dst ctx dst and b = read_src ctx w src in
      let sa = Word.sext w a and sb = Word.sext w b in
      let full = Int64.mul sa sb in
      let r = Word.zext w full in
      let full_overflow =
        match w with
        | Width.W64 ->
            sa <> 0L && (Int64.div full sa <> sb || (sa = -1L && sb = Int64.min_int))
        | Width.W8 | Width.W16 | Width.W32 -> Word.sext w full <> full
      in
      set_flags ctx (Flags.after_imul w ~full_overflow ~r);
      write_dst ctx dst r
  | Opcode.Cmov c ->
      (* x86: the destination is always written (a 32-bit CMOV zeroes the
         upper half even when the condition is false). *)
      let b = read_src ctx w src in
      let old = match dst with
        | Operand.Reg (r, w') -> State.get_reg ctx.state r w'
        | Operand.Mem _ | Operand.Imm _ -> invalid_arg "CMOV destination"
      in
      let v = if Flags.eval_cond flags c then b else old in
      write_dst ctx dst v
  | Opcode.Movzx ->
      let v = read_src ctx w src in
      write_dst ctx dst v
  | Opcode.Movsx ->
      let ws = match Operand.width src with Some w' -> w' | None -> w in
      let v = read_src ctx w src in
      write_dst ctx dst (Word.sext ws v)
  | Opcode.Xchg -> (
      match (dst, src) with
      | Operand.Reg (ra, wa), Operand.Reg (rb, _) ->
          let va = State.get_reg ctx.state ra wa
          and vb = State.get_reg ctx.state rb wa in
          State.set_reg ctx.state ra wa vb;
          State.set_reg ctx.state rb wa va
      | (Operand.Mem _ as m), Operand.Reg (r, wr)
      | Operand.Reg (r, wr), (Operand.Mem _ as m) ->
          let vm = read_dst ctx m in
          let vr = State.get_reg ctx.state r wr in
          write_dst ctx m vr;
          State.set_reg ctx.state r wr vm
      | _ -> invalid_arg "XCHG operands")
  | Opcode.Rol | Opcode.Ror ->
      let op = if i.Instruction.opcode = Opcode.Rol then `Rol else `Ror in
      let a = read_dst ctx dst in
      let raw_count = read_src ctx w src in
      let count_mask = if Width.equal w Width.W64 then 63L else 31L in
      let count = Int64.to_int (Int64.logand raw_count count_mask) in
      let bits = Width.bits w in
      let eff = count mod bits in
      let a' = Word.zext w a in
      let r =
        if eff = 0 then a'
        else
          match op with
          | `Rol ->
              Word.zext w
                (Int64.logor (Int64.shift_left a' eff)
                   (Int64.shift_right_logical a' (bits - eff)))
          | `Ror ->
              Word.zext w
                (Int64.logor
                   (Int64.shift_right_logical a' eff)
                   (Int64.shift_left a' (bits - eff)))
      in
      set_flags ctx (Flags.after_rotate w flags ~op ~count ~r);
      if count <> 0 then write_dst ctx dst r
  | Opcode.Shl | Opcode.Shr | Opcode.Sar ->
      let op =
        match i.Instruction.opcode with
        | Opcode.Shl -> `Shl
        | Opcode.Shr -> `Shr
        | _ -> `Sar
      in
      let a = read_dst ctx dst in
      let raw_count = read_src ctx w src in
      let count_mask = if Width.equal w Width.W64 then 63L else 31L in
      let count = Int64.to_int (Int64.logand raw_count count_mask) in
      let bits = Width.bits w in
      let r =
        if count = 0 then Word.zext w a
        else
          match op with
          | `Shl ->
              if count >= bits then 0L
              else Word.zext w (Int64.shift_left (Word.zext w a) count)
          | `Shr ->
              if count >= bits then 0L
              else Int64.shift_right_logical (Word.zext w a) count
          | `Sar ->
              let sa = Word.sext w a in
              let c = min count 63 in
              Word.zext w (Int64.shift_right sa c)
      in
      set_flags ctx (Flags.after_shift w flags ~op ~a ~count ~r);
      if count <> 0 then write_dst ctx dst r
  | _ -> invalid_arg "Semantics.exec_binop"

let exec_unop ctx (i : Instruction.t) dst =
  let w = operand_width i in
  let flags = ctx.state.State.flags in
  match i.Instruction.opcode with
  | Opcode.Inc ->
      let a = read_dst ctx dst in
      let r = Word.zext w (Int64.add a 1L) in
      set_flags ctx (Flags.after_inc w flags ~a ~r);
      write_dst ctx dst r
  | Opcode.Dec ->
      let a = read_dst ctx dst in
      let r = Word.zext w (Int64.sub a 1L) in
      set_flags ctx (Flags.after_dec w flags ~a ~r);
      write_dst ctx dst r
  | Opcode.Neg ->
      let a = read_dst ctx dst in
      let r = Word.zext w (Int64.neg a) in
      set_flags ctx (Flags.after_neg w ~a ~r);
      write_dst ctx dst r
  | Opcode.Not ->
      let a = read_dst ctx dst in
      write_dst ctx dst (Word.zext w (Int64.lognot a))
  | Opcode.Setcc c ->
      write_dst ctx dst (if Flags.eval_cond flags c then 1L else 0L)
  | _ -> invalid_arg "Semantics.exec_unop"

let exec_div ctx (i : Instruction.t) src =
  let w = operand_width i in
  let divisor = read_src ctx w src in
  let rax = State.get_reg ctx.state Reg.RAX w in
  let rdx = State.get_reg ctx.state Reg.RDX w in
  let signed = i.Instruction.opcode = Opcode.Idiv in
  if Word.zext w divisor = 0L then raise Division_fault;
  let quotient, remainder =
    if not signed then
      match w with
      | Width.W64 ->
          (* Model restriction: 128-bit dividends are not supported; the
             instrumentation zeroes RDX. A nonzero high part overflows
             whenever rdx >= divisor, and is unsupported otherwise. *)
          if rdx <> 0L then raise Division_fault
          else (Int64.unsigned_div rax divisor, Int64.unsigned_rem rax divisor)
      | Width.W8 | Width.W16 | Width.W32 ->
          let bits = Width.bits w in
          let dividend = Int64.logor (Int64.shift_left rdx bits) rax in
          let q = Int64.unsigned_div dividend divisor in
          if Int64.unsigned_compare q (Width.mask w) > 0 then raise Division_fault;
          (q, Int64.unsigned_rem dividend divisor)
    else
      let sd = Word.sext w divisor in
      match w with
      | Width.W64 ->
          let high_ok = rdx = Int64.shift_right rax 63 in
          if not high_ok then raise Division_fault;
          if rax = Int64.min_int && sd = -1L then raise Division_fault;
          (Int64.div rax sd, Int64.rem rax sd)
      | Width.W8 | Width.W16 | Width.W32 ->
          let bits = Width.bits w in
          let dividend = Int64.logor (Int64.shift_left rdx bits) rax in
          let q = Int64.div dividend sd in
          let half = Int64.shift_left 1L (bits - 1) in
          if Int64.compare q (Int64.neg half) < 0 || Int64.compare q half >= 0
          then raise Division_fault;
          (q, Int64.rem dividend sd)
  in
  State.set_reg ctx.state Reg.RAX w quotient;
  State.set_reg ctx.state Reg.RDX w remainder

let step (flat : Program.flat) (state : State.t) : outcome =
  let code_len = Array.length flat.Program.code in
  if state.State.pc < 0 || state.State.pc >= code_len then
    invalid_arg "Semantics.step: pc out of range";
  let pc = state.State.pc in
  let i = flat.Program.code.(pc) in
  let ctx = { state; accesses = [] } in
  let fall = pc + 1 in
  let next = ref fall in
  let taken = ref None in
  (match (i.Instruction.opcode, i.Instruction.operands) with
  | (Opcode.Lfence | Opcode.Mfence | Opcode.Nop), _ -> ()
  | Opcode.Jmp, _ -> next := flat.Program.target.(pc)
  | Opcode.Jcc c, _ ->
      let b = Flags.eval_cond state.State.flags c in
      taken := Some b;
      if b then next := flat.Program.target.(pc)
  | Opcode.JmpInd, [ Operand.Reg (r, _) ] ->
      let v = State.get_reg state r Width.W64 in
      next := mask_code_index ~code_len v
  | Opcode.Call, _ ->
      let rsp = Int64.sub (State.get_reg state Reg.stack_pointer Width.W64) 8L in
      State.set_reg state Reg.stack_pointer Width.W64 rsp;
      store ctx rsp Width.W64 (Int64.of_int fall);
      next := flat.Program.target.(pc)
  | Opcode.Ret, _ ->
      let rsp = State.get_reg state Reg.stack_pointer Width.W64 in
      let v = load ctx rsp Width.W64 in
      State.set_reg state Reg.stack_pointer Width.W64 (Int64.add rsp 8L);
      next := mask_code_index ~code_len v
  | (Opcode.Div | Opcode.Idiv), [ src ] -> exec_div ctx i src
  | ( ( Opcode.Add | Opcode.Adc | Opcode.Sub | Opcode.Sbb | Opcode.And
      | Opcode.Or | Opcode.Xor | Opcode.Cmp | Opcode.Test | Opcode.Mov
      | Opcode.Imul | Opcode.Cmov _ | Opcode.Shl | Opcode.Shr | Opcode.Sar
      | Opcode.Rol | Opcode.Ror | Opcode.Movzx | Opcode.Movsx | Opcode.Xchg ),
      [ dst; src ] ) ->
      exec_binop ctx i dst src
  | (Opcode.Inc | Opcode.Dec | Opcode.Neg | Opcode.Not | Opcode.Setcc _), [ dst ]
    ->
      exec_unop ctx i dst
  | op, _ ->
      invalid_arg
        (Printf.sprintf "Semantics.step: unsupported %s form" (Opcode.mnemonic op)));
  state.State.pc <- !next;
  { inst = i; pc; accesses = List.rev ctx.accesses; taken = !taken; next = !next }

let run ?(max_steps = 4096) flat state =
  let code_len = Array.length flat.Program.code in
  let rec go acc steps =
    if state.State.pc >= code_len || state.State.pc < 0 || steps >= max_steps then
      List.rev acc
    else
      let o = step flat state in
      go (o :: acc) (steps + 1)
  in
  go [] 0
