open Revizor_isa

type t = { data : bytes }

exception Fault of int64

let create () = { data = Bytes.make Layout.sandbox_size '\000' }

let check t addr width =
  let off = Int64.sub addr Layout.sandbox_base in
  if
    Int64.compare off 0L < 0
    || Int64.compare
         (Int64.add off (Int64.of_int (Width.bytes width)))
         (Int64.of_int (Bytes.length t.data))
       > 0
  then raise (Fault addr);
  Int64.to_int off

let read t ~addr width =
  let off = check t addr width in
  let v = ref 0L in
  for k = Width.bytes width - 1 downto 0 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get t.data (off + k))))
  done;
  !v

let write t ~addr width v =
  let off = check t addr width in
  for k = 0 to Width.bytes width - 1 do
    let byte =
      Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL)
    in
    Bytes.set t.data (off + k) (Char.chr byte)
  done

let read_byte t off = Char.code (Bytes.get t.data off)
let write_byte t off v = Bytes.set t.data off (Char.chr (v land 0xFF))

let fill t ~f =
  for off = 0 to Bytes.length t.data - 1 do
    let v = if off < Layout.data_pages * Layout.page_size then f off land 0xFF else 0 in
    Bytes.set t.data off (Char.chr v)
  done

let snapshot t = Bytes.copy t.data
let restore t snap = Bytes.blit snap 0 t.data 0 (Bytes.length t.data)
let copy t = { data = Bytes.copy t.data }
let equal a b = Bytes.equal a.data b.data
