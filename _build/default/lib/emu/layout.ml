let page_size = 4096
let data_pages = 2
let guard = 64
let sandbox_size = (data_pages * page_size) + guard
let sandbox_base = 0x10000L
let stack_top = Int64.add sandbox_base (Int64.of_int (data_pages * page_size))
let cache_line = 64
let l1d_sets = 64
let l1d_ways = 8
let line_mask_one_page = 0b111111000000L
let line_mask_two_pages = 0b1111111000000L
let page_of_offset off = off / page_size

let set_of_addr addr =
  Int64.to_int (Int64.rem (Int64.div addr (Int64.of_int cache_line))
                  (Int64.of_int l1d_sets))
  land (l1d_sets - 1)

let in_sandbox addr =
  addr >= sandbox_base
  && Int64.compare addr (Int64.add sandbox_base (Int64.of_int sandbox_size)) < 0

let offset_of_addr addr = Int64.to_int (Int64.sub addr sandbox_base)
