open Revizor_isa

type t = int64

let zext w v = Int64.logand v (Width.mask w)

let sext w v =
  let shift = 64 - Width.bits w in
  Int64.shift_right (Int64.shift_left v shift) shift

let sign_set w v = Int64.logand v (Width.sign_bit w) <> 0L

let parity_even v =
  let b = Int64.to_int (Int64.logand v 0xFFL) in
  let rec count n acc = if n = 0 then acc else count (n lsr 1) (acc + (n land 1)) in
  count b 0 mod 2 = 0

let merge w ~old v =
  match w with
  | Width.W64 -> v
  | Width.W32 -> zext Width.W32 v
  | Width.W16 | Width.W8 ->
      Int64.logor (Int64.logand old (Int64.lognot (Width.mask w))) (zext w v)

let ult a b = Int64.unsigned_compare a b < 0
let ule a b = Int64.unsigned_compare a b <= 0