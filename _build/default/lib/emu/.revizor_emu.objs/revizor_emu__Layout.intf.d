lib/emu/layout.mli:
