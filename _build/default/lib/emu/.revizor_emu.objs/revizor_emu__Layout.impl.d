lib/emu/layout.ml: Int64
