lib/emu/semantics.mli: Instruction Operand Program Revizor_isa State Width
