lib/emu/state.ml: Array Flags Format Layout List Memory Reg Revizor_isa Width Word
