lib/emu/word.mli: Revizor_isa Width
