lib/emu/flags.ml: Cond Format Int64 List Revizor_isa Width Word
