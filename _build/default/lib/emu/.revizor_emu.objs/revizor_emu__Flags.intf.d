lib/emu/flags.mli: Cond Format Revizor_isa Width
