lib/emu/word.ml: Int64 Revizor_isa Width
