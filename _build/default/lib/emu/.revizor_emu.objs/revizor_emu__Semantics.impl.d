lib/emu/semantics.ml: Array Flags Instruction Int64 List Memory Opcode Operand Printf Program Reg Revizor_isa State Width Word
