lib/emu/memory.mli: Revizor_isa Width
