lib/emu/memory.ml: Bytes Char Int64 Layout Revizor_isa Width
