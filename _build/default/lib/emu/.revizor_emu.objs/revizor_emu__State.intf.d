lib/emu/state.mli: Flags Format Memory Reg Revizor_isa Width
