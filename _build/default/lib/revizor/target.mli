open Revizor_isa
open Revizor_uarch

(** The experimental setups of Table 2: CPU model × ISA subset × executor
    (threat) mode, plus the generator settings each needs. *)

type t = {
  name : string;  (** "Target 1" ... "Target 8" *)
  uarch : Uarch_config.t;
  subsets : Catalog.subset list;
  threat : Attack.threat;
  mem_pages : int;
}

val target1 : t  (** Skylake, V4 off, AR, Prime+Probe *)

val target2 : t  (** + MEM *)

val target3 : t  (** + VAR *)

val target4 : t  (** as Target 3, V4 patch on *)

val target5 : t  (** Skylake, V4 on, AR+MEM+CB *)

val target6 : t  (** + VAR *)

val target7 : t  (** Skylake, V4 on, AR+MEM, Prime+Probe+Assist *)

val target8 : t  (** Coffee Lake, AR+MEM, Prime+Probe+Assist *)

val all : t list
val find : string -> t option

val fuzzer_config :
  ?seed:int64 -> ?n_inputs:int -> ?reps:int -> Contract.t -> t -> Fuzzer.config
(** Assemble a fuzzing configuration for a target-contract pair with the
    paper's §6.1 generation parameters. *)

val pp : Format.formatter -> t -> unit
