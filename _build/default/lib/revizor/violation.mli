open Revizor_isa
open Revizor_uarch

(** Contract counterexamples: the evidence of a violation, plus a
    post-hoc vulnerability label that mirrors the paper's manual
    inspection (Table 3's "V1", "V4", "MDS", "LVI-Null" and the "-var"
    novel variants). Labelling uses the simulator's speculation-event log;
    detection itself never does. *)

type t = {
  program : Program.t;
  inputs : Input.t list;  (** the full priming sequence *)
  index_a : int;
  index_b : int;
  ctrace : Ctrace.t;
  htrace_a : Htrace.t;
  htrace_b : Htrace.t;
  mechanisms : Cpu.speculation_kind list;
      (** mechanisms active on the violating inputs *)
  label : string;
}

val label_of :
  Contract.t -> Cpu.speculation_kind list -> mds_patch:bool -> string
(** Pick the paper's name for the leak: prefers the mechanism that the
    contract does {e not} permit; a mechanism whose speculation type is
    permitted yields the "-var" (latency-race) variant name. *)

val make :
  contract:Contract.t ->
  mds_patch:bool ->
  program:Program.t ->
  inputs:Input.t list ->
  Analyzer.candidate ->
  mechanisms:Cpu.speculation_kind list ->
  t

val pp : Format.formatter -> t -> unit
val summary : t -> string
