(** Contract traces: the sequence of observations a contract permits a
    program execution to expose (§2.2). *)

type obs =
  | Addr of int64  (** address of a load or store (MEM clause) *)
  | Pc of int  (** control-flow target (CT clause) *)
  | Value of int64  (** loaded value (ARCH clause) *)

type t = obs list

val equal : t -> t -> bool
val hash : t -> int
val length : t -> int
val pp_obs : Format.formatter -> obs -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
