open Revizor_emu

(** Test-case inputs: the architectural state a measurement starts from —
    registers, FLAGS and the memory sandbox (§5.2).

    An input is represented by its PRNG seed plus the entropy mask width;
    the concrete state is derived deterministically. Low entropy
    (2–4 bits) is the paper's lever for input effectiveness (CH2): fewer
    distinct values make colliding contract traces likelier. Derived
    values are shifted into the cache-line-index bits so that masked
    addressing maps different values to different cache lines. *)

type t = { seed : int64; entropy : int }

val generate : Prng.t -> entropy:int -> t
val generate_many : Prng.t -> entropy:int -> n:int -> t list

val apply : t -> State.t -> unit
(** Overwrite registers (generator pool), FLAGS and sandbox memory. *)

val to_state : t -> State.t
(** Fresh architectural state initialized from the input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
