open Revizor_isa
open Revizor_emu

type t = {
  name : string;
  description : string;
  program : Program.t;
  needs_assist : bool;
  reference : string;
}

(* --- small assembly DSL ------------------------------------------- *)

let r ?w x = Operand.reg ?w x
let i n = Operand.imm n
let mem_d ?w disp = Operand.mem ?w ~base:Reg.sandbox_base ~disp ()
let mem_ri ?w ?(disp = 0) x = Operand.sandbox ?w ~disp x
let mov = Instruction.mov
let binop = Instruction.binop
let mask_line x = binop Opcode.And (r x) (Operand.imm64 Layout.line_mask_one_page)
let page1 = Layout.page_size

(* Flag source with a slow (cache-missing) dependency: gives the branch a
   wide resolution window, like the LOCK SUB of Fig. 4. Sets the branch
   direction from the first sandbox word. *)
let slow_flags scratch =
  [ mov (r scratch) (mem_d 0); binop Opcode.Cmp (r scratch) (i 64) ]

(* An extra ALU step on the flag chain, when the transient code needs a
   couple more cycles before the squash. *)
let slower_flags scratch =
  [
    mov (r scratch) (mem_d 0);
    binop Opcode.Add (r scratch) (i 1);
    binop Opcode.Cmp (r scratch) (i 65);
  ]

(* A division whose latency depends on the value of [src]: the dividend is
   scaled into the high bits so that the operand-dependent part of the
   divider latency dominates. Leaves a zero-valued token in [token] whose
   readiness equals the division's completion time. *)
let latency_token ~src ~token =
  [
    mov (r Reg.RAX) (r src);
    binop Opcode.Shl (r Reg.RAX) (i 48);
    mov (r Reg.RDX) (i 0);
    mov (r token) (i 7);
    Instruction.div (r token);
    mov (r token) (r Reg.RAX);
    binop Opcode.And (r token) (i 0);
  ]

(* A pure ALU delay chain: [token] becomes zero-valued and ready after
   roughly [n] cycles. *)
let delay_token ~token n =
  mov (r token) (i 1)
  :: List.init n (fun _ -> binop Opcode.Add (r token) (r token))
  @ [ binop Opcode.And (r token) (i 0) ]

(* Flags from a pure ALU chain on an input register: the branch direction
   still depends on the input, but the resolution time is independent of
   the cache state (needed by channels that do not prime the cache). *)
let alu_flag_chain reg n =
  List.init n (fun _ -> binop Opcode.Add (r reg) (r reg))
  @ [ binop Opcode.Cmp (r reg) (i 64) ]

let prog blocks = Program.make blocks
let bb = Program.block

let check name program =
  match Program.validate program with
  | Ok () -> program
  | Error msg -> invalid_arg (Printf.sprintf "gadget %s: %s" name msg)

let make name ~description ?(needs_assist = false) ~reference blocks =
  { name; description; program = check name (prog blocks); needs_assist; reference }

(* --- Spectre V1 family -------------------------------------------- *)

let spectre_v1 =
  make "spectre-v1" ~reference:"[23]"
    ~description:
      "Bounds-check bypass: a mispredicted branch transiently executes an \
       input-addressed load (Fig. 1)."
    [
      bb "main"
        ([ mask_line Reg.RAX ] @ slow_flags Reg.RSI
        @ [ Instruction.jcc Cond.A "exit" ]);
      bb "leak" [ mov (r Reg.RCX) (mem_ri Reg.RAX) ];
      bb "exit" [];
    ]

let spectre_v1_taken =
  make "spectre-v1-taken" ~reference:"[23]"
    ~description:
      "V1 with the leaking load on the TAKEN side of the branch: a cold \
       (statically not-taken) predictor never speculates into it, so the \
       leak is only visible when earlier inputs prime the PHT."
    [
      bb "main" (slow_flags Reg.RSI @ [ Instruction.jcc Cond.A "leak" ]);
      bb "cont" [ Instruction.jmp "exit" ];
      bb "leak" [ mask_line Reg.RAX; mov (r Reg.RCX) (mem_ri Reg.RAX) ];
      bb "exit" [];
    ]

let spectre_v1_1 =
  make "spectre-v1.1" ~reference:"[22]"
    ~description:
      "Speculative buffer overflow: the transient path stores to an \
       input-controlled address, exposed by a same-address load."
    [
      bb "main"
        ([ mask_line Reg.RAX ] @ slow_flags Reg.RSI
        @ [ Instruction.jcc Cond.A "exit" ]);
      bb "leak"
        [ mov (mem_ri Reg.RAX) (i 42); mov (r Reg.RCX) (mem_ri Reg.RAX) ];
      bb "exit" [];
    ]

let spectre_v1_masked =
  make "spectre-v1-masked" ~reference:"[23]"
    ~description:
      "V1 through an extra masking AND: leaks only two address bits."
    [
      bb "main"
        ([ binop Opcode.And (r Reg.RAX) (Operand.imm64 0b0011000000L) ]
        @ slow_flags Reg.RSI
        @ [ Instruction.jcc Cond.A "exit" ]);
      bb "leak" [ mov (r Reg.RCX) (mem_ri Reg.RAX) ];
      bb "exit" [];
    ]

(* --- Spectre V4 ---------------------------------------------------- *)

let spectre_v4 =
  make "spectre-v4" ~reference:"[14]"
    ~description:
      "Speculative store bypass: a sanitizing store with a slow address is \
       bypassed by a younger load, which transiently transmits the stale \
       secret."
    [
      bb "main"
        [
          mask_line Reg.RAX;
          mov (r Reg.RBX) (mem_ri Reg.RAX) (* cache miss: slow chain *);
          binop Opcode.And (r Reg.RBX) (i 0);
          mov (mem_ri ~disp:128 Reg.RBX) (i 0) (* sanitize mem[128], late *);
          mov (r Reg.RCX) (mem_d 128) (* fast load: bypasses the store *);
          mask_line Reg.RCX;
          mov (r Reg.RDX) (mem_ri Reg.RCX) (* transmit stale value *);
        ];
    ]

(* --- §6.3 latency-race variants ------------------------------------ *)

let spectre_v1_var =
  make "spectre-v1-var" ~reference:"§6.3"
    ~description:
      "Fig. 5: two division-gated transient loads race the branch squash; \
       the cache state exposes the operand-dependent division latencies \
       even under CT-COND."
    [
      bb "main"
        (latency_token ~src:Reg.RAX ~token:Reg.RSI
        @ latency_token ~src:Reg.RCX ~token:Reg.RDI
        @ slow_flags Reg.RBX
        @ [ Instruction.jcc Cond.A "exit" ]);
      bb "leak"
        [
          mov (r Reg.RBX) (mem_ri ~disp:(5 * 64) Reg.RSI);
          mov (r Reg.RBX) (mem_ri ~disp:(21 * 64) Reg.RDI);
        ];
      bb "exit" [];
    ]

let spectre_v4_var =
  make "spectre-v4-var" ~reference:"§6.3"
    ~description:
      "Store-bypass latency race: whether each of two sanitizing stores is \
       bypassed depends on a division latency; violates CT-BPAS."
    [
      bb "main"
        (latency_token ~src:Reg.RAX ~token:Reg.RSI
        @ latency_token ~src:Reg.RCX ~token:Reg.RDI
        @ [
            mov (mem_ri ~disp:192 Reg.RSI) (i 1) (* store 1, div-delayed *);
            mov (mem_ri ~disp:256 Reg.RDI) (i 1) (* store 2, div-delayed *);
          ]
        @ delay_token ~token:Reg.R8 22
        @ [
            mov (r Reg.RBX) (mem_ri ~disp:192 Reg.R8) (* bypass iff div1 slow *);
            mask_line Reg.RBX;
            mov (r Reg.RDX) (mem_ri ~disp:2048 Reg.RBX);
            mov (r Reg.R10) (mem_ri ~disp:256 Reg.R8) (* bypass iff div2 slow *);
            mask_line Reg.R10;
            mov (r Reg.RDX) (mem_ri ~disp:2560 Reg.R10);
          ]);
    ]

(* --- ret2spec ------------------------------------------------------- *)

let ret2spec =
  make "ret2spec" ~reference:"[24,27]"
    ~description:
      "The callee redirects its return through memory; the RSB still \
       predicts the call site, transiently executing the skipped load."
    [
      bb "main" [ Instruction.call "f" ];
      bb "leak" [ mask_line Reg.RAX; mov (r Reg.RBX) (mem_ri Reg.RAX) ];
      bb "rest" [ Instruction.jmp "exit" ];
      bb "f"
        [
          binop Opcode.Add
            (Operand.mem ~base:Reg.stack_pointer ())
            (i 2) (* skip the two leak instructions *);
          Instruction.ret;
        ];
      bb "exit" [];
    ]

(* --- Spectre V2 (extension: indirect jumps / BTB) -------------------- *)

(* The indirect-jump target alternates between the leak block and the exit
   depending on an input-dependent flag; the BTB predicts the previous
   input's target, so inputs that architecturally skip the leak still
   execute it transiently. Concrete instruction indices are resolved by a
   first flattening pass. *)
let spectre_v2 =
  let build ~leak_idx ~exit_idx =
    prog
      [
        bb "main"
          ([
             mov (r Reg.RSI) (i leak_idx);
             mov (r Reg.RDI) (i exit_idx);
           ]
          @ slow_flags Reg.RDX
          @ [
              Instruction.cmov Cond.A (r Reg.RSI) (r Reg.RDI);
              Instruction.jmp_ind Reg.RSI;
            ]);
        bb "leak" [ mask_line Reg.RAX; mov (r Reg.RBX) (mem_ri Reg.RAX) ];
        bb "exit" [];
      ]
  in
  (* two-pass: flatten a skeleton to learn the label indices, then rebuild
     with the real immediate targets *)
  let skeleton = build ~leak_idx:0 ~exit_idx:0 in
  let flat = Program.flatten_exn skeleton in
  let idx label = List.assoc label flat.Program.block_starts in
  let program = check "spectre-v2" (build ~leak_idx:(idx "leak") ~exit_idx:(idx "exit")) in
  {
    name = "spectre-v2";
    description =
      "Branch target injection (extension): the BTB predicts a previously \
       trained indirect-jump target, transiently executing the leak block \
       for inputs that architecturally skip it.";
    program;
    needs_assist = false;
    reference = "[23] (V2)";
  }

(* A V1 whose transient path makes NO memory access at all: a
   division-gated multiply chain. How many transient multiplies beat the
   squash depends on the division operand, so the per-port µop counts
   leak the operand — invisible to every cache channel, visible to the
   port-contention channel. The architectural multiplies after the branch
   give both class members a nonzero port-1 baseline, making the
   bucketized counts incomparable rather than subset-related. *)
let spectre_v1_ports =
  let transient_muls =
    List.init 8 (fun _ -> binop Opcode.Imul (r Reg.RBX) (r Reg.RBX))
  in
  make "spectre-v1-ports" ~reference:"§7 (ext)"
    ~description:
      "V1 leaking only through execution-port pressure: the mispredicted \
       path contains a division-gated multiply chain and no memory access; \
       detectable with the port-contention channel, invisible to cache \
       attacks."
    [
      bb "main"
        ((* copy the branch input out of RDX before the division clobbers
            it with the remainder *)
         mov (r Reg.R9) (r Reg.RBX)
         :: latency_token ~src:Reg.RAX ~token:Reg.RSI
        @ alu_flag_chain Reg.R9 28
        @ [ Instruction.jcc Cond.A "exit" ]);
      bb "leak"
        (binop Opcode.Add (r Reg.RBX) (r Reg.RSI) (* gate on the division *)
         :: transient_muls);
      bb "exit"
        [
          binop Opcode.Imul (r Reg.RCX) (r Reg.RCX) (* arch port-1 baseline *);
          binop Opcode.Imul (r Reg.RCX) (r Reg.RCX);
        ];
    ]

(* --- MDS / LVI ------------------------------------------------------ *)

let mds_lfb =
  make "mds-lfb" ~reference:"[7]" ~needs_assist:true
    ~description:
      "RIDL/LFB-style: a page-1 load places the input's data in the fill \
       buffer; an assisted page-0 load transiently forwards it."
    [
      bb "main"
        [
          mov (r Reg.RBX) (mem_d page1) (* fill buffer := own data *);
          mov (r Reg.RCX) (mem_d 64) (* assisted: transient = fill buffer *);
          mask_line Reg.RCX;
          mov (r Reg.RDX) (mem_ri Reg.RCX) (* transmit *);
        ];
    ]

let mds_sb =
  make "mds-sb" ~reference:"[40,44]" ~needs_assist:true
    ~description:
      "Fallout/store-buffer-style: the leaked fill-buffer data comes from \
       the program's own store."
    [
      bb "main"
        [
          mov (mem_d page1) (r Reg.RBX) (* fill buffer := RBX *);
          mov (r Reg.RCX) (mem_d 64) (* assisted load *);
          mask_line Reg.RCX;
          mov (r Reg.RDX) (mem_ri Reg.RCX);
        ];
    ]

let lvi_null =
  make "lvi-null" ~reference:"[43]" ~needs_assist:true
    ~description:
      "An assisted store breaks store-to-load forwarding: the younger \
       same-address load transiently reads the stale memory value."
    [
      bb "main"
        [
          mov (mem_d 64) (i 42) (* assisted store: resolves late *);
          mov (r Reg.RCX) (mem_d 64) (* forwarding fails: stale data *);
          mask_line Reg.RCX;
          mov (r Reg.RDX) (mem_ri Reg.RCX);
        ];
    ]

(* --- §6.6 contract sensitivity (STT) -------------------------------- *)

let stt_nonspeculative =
  make "stt-nonspeculative" ~reference:"Fig. 6a"
    ~description:
      "A NON-speculatively loaded value leaks on a transient path: CT-SEQ \
       violation, but ARCH-SEQ compliant (STT does not protect it)."
    [
      bb "main"
        ([
           mask_line Reg.RAX;
           mov (r Reg.RBX) (mem_ri Reg.RAX) (* architectural load *);
           mask_line Reg.RBX;
         ]
        @ slower_flags Reg.RSI
        @ [ Instruction.jcc Cond.A "exit" ]);
      bb "leak" [ mov (r Reg.RCX) (mem_ri Reg.RBX) ];
      bb "exit" [];
    ]

let stt_speculative =
  make "stt-speculative" ~reference:"Fig. 6b"
    ~description:
      "A speculatively loaded value leaks: violates both CT-SEQ and \
       ARCH-SEQ (the classic V1 gadget STT protects)."
    [
      bb "main" (slow_flags Reg.RSI @ [ Instruction.jcc Cond.A "exit" ]);
      bb "leak"
        [
          mask_line Reg.RAX;
          mov (r Reg.RBX) (mem_ri Reg.RAX);
          mask_line Reg.RBX;
          mov (r Reg.RCX) (mem_ri Reg.RBX);
        ];
      bb "exit" [];
    ]

(* --- §6.4 speculative store eviction -------------------------------- *)

let spec_store_eviction =
  make "spec-store-eviction" ~reference:"§6.4"
    ~description:
      "A transient store on a mispredicted path: leaves a cache trace only \
       on CPUs where stores modify the cache before retiring."
    [
      bb "main" (slow_flags Reg.RSI @ [ Instruction.jcc Cond.A "exit" ]);
      bb "leak" [ mask_line Reg.RAX; mov (mem_ri ~disp:2048 Reg.RAX) (i 7) ];
      bb "exit" [];
    ]

let table5 =
  [
    spectre_v1;
    spectre_v1_1;
    spectre_v1_masked;
    spectre_v4;
    ret2spec;
    mds_sb;
    mds_lfb;
  ]

let all =
  table5
  @ [
      spectre_v1_taken;
      spectre_v2;
      spectre_v1_ports;
      spectre_v1_var;
      spectre_v4_var;
      lvi_null;
      stt_nonspeculative;
      stt_speculative;
      spec_store_eviction;
    ]

let find name = List.find_opt (fun g -> g.name = name) all
