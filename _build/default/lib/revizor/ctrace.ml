type obs = Addr of int64 | Pc of int | Value of int64
type t = obs list

let equal (a : t) (b : t) = a = b
let hash (t : t) = Hashtbl.hash t
let length = List.length

let pp_obs fmt = function
  | Addr a -> Format.fprintf fmt "A:0x%Lx" a
  | Pc p -> Format.fprintf fmt "PC:%d" p
  | Value v -> Format.fprintf fmt "V:0x%Lx" v

let pp fmt t =
  Format.fprintf fmt "[@[<hov>%a@]]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ") pp_obs)
    t

let to_string t = Format.asprintf "%a" pp t
