open Revizor_isa

(** Hand-written test cases: the known-vulnerability gadgets used for
    Table 5 ("detection of known vulnerabilities on manually-written test
    cases"), the paper's figures, and the §6.6 contract-sensitivity
    experiment. Each is a valid {!Program.t} that exercises one leak
    mechanism of the simulated CPU. *)

type t = {
  name : string;
  description : string;
  program : Program.t;
  needs_assist : bool;  (** requires the [*+Assist] threat model *)
  reference : string;  (** the paper's citation tag, e.g. "[23]" *)
}

val spectre_v1 : t
(** Figure 1 / classic bounds-check bypass: a mispredicted conditional
    branch transiently executes an input-addressed load. *)

val spectre_v1_taken : t
(** V1 with the leak on the taken side: invisible to a cold predictor,
    exposed only by priming (used by the priming ablation). *)

val spectre_v1_1 : t
(** Speculative buffer overflow (Kiriansky & Waldspurger): the transient
    path contains a store whose address leaks via a subsequent load. *)

val spectre_v1_masked : t
(** V1 with the leaking load behind an additional masking AND — leaks
    fewer address bits; still a CT-SEQ violation. *)

val spectre_v2 : t
(** Branch target injection (extension beyond the paper's evaluation):
    indirect-jump target misprediction through the BTB. *)

val spectre_v1_ports : t
(** V1 with a memory-free transient path (a multiply chain): invisible to
    cache channels, detectable through port contention (extension). *)

val spectre_v4 : t
(** Speculative store bypass: a store with a slowly-resolving address is
    bypassed by a younger same-address load, exposing the stale value. *)

val spectre_v1_var : t
(** §6.3 (Fig 5): two division-gated transient loads race the branch
    resolution; the hardware trace exposes the operand-dependent division
    latencies — a violation even of CT-COND. *)

val spectre_v4_var : t
(** §6.3: the store-bypass analogue of the latency race — two store/load
    pairs whose bypass occurrence depends on division latency; violates
    CT-BPAS. *)

val ret2spec : t
(** Return-address misprediction: the return address is overwritten in
    memory, so the RSB-predicted return target executes transiently. *)

val mds_lfb : t
(** MDS / RIDL-style: a load fills the fill buffer with the input's data;
    an assisted load in another page transiently forwards it. *)

val mds_sb : t
(** MDS / Fallout-style: the fill-buffer data comes from a store. *)

val lvi_null : t
(** LVI-class: an assisted store breaks store-to-load forwarding, so a
    younger same-address load transiently reads stale memory. *)

val stt_nonspeculative : t
(** Figure 6a: a {e non}-speculatively loaded value leaks on a transient
    path. Violates CT-SEQ but complies with ARCH-SEQ. *)

val stt_speculative : t
(** Figure 6b: a {e speculatively} loaded value leaks. Violates both
    CT-SEQ and ARCH-SEQ. *)

val spec_store_eviction : t
(** §6.4: a transient store on a mispredicted path; leaks only on CPUs
    where speculative stores modify the cache (Coffee Lake). *)

val table5 : t list
(** The gadget set of Table 5, in the paper's column order. *)

val all : t list
val find : string -> t option
