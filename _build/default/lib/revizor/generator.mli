open Revizor_isa

(** The randomized test-case generator (§5.1).

    Programs are built as a DAG of basic blocks (no loops), populated with
    random instructions from the configured ISA subsets, then instrumented
    so they can never fault:
    - memory operands take the sandboxed form [\[R14 + reg + offset\]]
      with an [AND reg, mask] inserted before the access, confining it to
      the configured number of 4 KiB pages at cache-line alignment; the
      offset is a per-test-case random value in [\[0, 64)];
    - division operands are rewritten (RDX zeroed, divisor ORed with 1,
      signed dividends halved) so #DE cannot occur.

    When the [IND] subset is enabled, the generator additionally emits
    leaf functions that are entered with CALL and left with RET. *)

type cfg = {
  n_insts : int;  (** body instructions before instrumentation *)
  n_blocks : int;  (** basic blocks of the main routine *)
  n_functions : int;  (** callable leaf functions (IND subset only) *)
  max_mem_accesses : int;  (** cap on memory-operand instructions *)
  subsets : Catalog.subset list;
  mem_pages : int;  (** sandbox pages addressable by the masking (1 or 2) *)
}

val default_cfg : cfg
(** The paper's starting configuration: 8 instructions, 2 blocks,
    2 memory accesses, 1 page, AR+MEM+CB. *)

val grow : cfg -> cfg
(** The diversity-feedback step (§5.6): increase instructions and blocks
    by constant factors. *)

val generate : Prng.t -> cfg -> Program.t
(** Generate and instrument one test case. The result always passes
    {!Program.validate}. *)

val generate_raw : Prng.t -> cfg -> Program.t
(** Without the instrumentation pass (for testing the passes). *)

val instrument : cfg -> Program.t -> Program.t
(** The fault-avoidance instrumentation pass alone. *)
