open Revizor_isa
open Revizor_uarch

type t = {
  name : string;
  uarch : Uarch_config.t;
  subsets : Catalog.subset list;
  threat : Attack.threat;
  mem_pages : int;
}

let skylake_unpatched = Uarch_config.skylake ~v4_patch:false
let skylake_patched = Uarch_config.skylake ~v4_patch:true

let target1 =
  {
    name = "Target 1";
    uarch = skylake_unpatched;
    subsets = [ Catalog.AR ];
    threat = Attack.prime_probe;
    mem_pages = 1;
  }

let target2 = { target1 with name = "Target 2"; subsets = [ Catalog.AR; Catalog.MEM ] }

let target3 =
  { target2 with name = "Target 3"; subsets = [ Catalog.AR; Catalog.MEM; Catalog.VAR ] }

let target4 = { target3 with name = "Target 4"; uarch = skylake_patched }

let target5 =
  {
    name = "Target 5";
    uarch = skylake_patched;
    subsets = [ Catalog.AR; Catalog.MEM; Catalog.CB ];
    threat = Attack.prime_probe;
    mem_pages = 1;
  }

let target6 =
  {
    target5 with
    name = "Target 6";
    subsets = [ Catalog.AR; Catalog.MEM; Catalog.CB; Catalog.VAR ];
  }

let target7 =
  {
    name = "Target 7";
    uarch = skylake_patched;
    subsets = [ Catalog.AR; Catalog.MEM ];
    threat = Attack.prime_probe_assist;
    mem_pages = 2;
  }

let target8 = { target7 with name = "Target 8"; uarch = Uarch_config.coffee_lake }

let all =
  [ target1; target2; target3; target4; target5; target6; target7; target8 ]

let find name =
  List.find_opt (fun t -> String.lowercase_ascii t.name = String.lowercase_ascii name) all

let fuzzer_config ?seed ?(n_inputs = 50) ?(reps = 3) contract target =
  let executor =
    { (Executor.default_config ~threat:target.threat ()) with
      Executor.measurement_reps = reps }
  in
  let base = Fuzzer.default_config ?seed contract target.uarch executor in
  {
    base with
    Fuzzer.gen_cfg =
      {
        Generator.default_cfg with
        Generator.subsets = target.subsets;
        mem_pages = target.mem_pages;
      };
    n_inputs;
  }

let pp fmt t =
  Format.fprintf fmt "%s: %s, ISA=%s, %s" t.name t.uarch.Uarch_config.name
    (String.concat "+" (List.map Catalog.subset_to_string t.subsets))
    (Attack.threat_to_string t.threat)
