(** Speculation contracts (§2): an observation clause (what each
    instruction may expose) combined with an execution clause (what
    speculative control/data flow the CPU may exhibit). *)

type observation_clause =
  | Mem  (** addresses of loads and stores *)
  | Ct  (** MEM + control-flow targets (constant-time model) *)
  | Arch  (** CT + loaded values (architectural observer) *)

type execution_clause =
  | Seq  (** observations only along the sequential path *)
  | Cond  (** + mispredicted paths of conditional branches *)
  | Bpas  (** + store-bypass paths (stores speculatively skipped) *)
  | Cond_bpas  (** both *)

type t = {
  obs : observation_clause;
  exec : execution_clause;
  expose_speculative_stores : bool;
      (** [false] encodes the §6.4 variant of CT-COND: speculative-path
          stores are assumed not to modify the cache, so their addresses
          are not exposed *)
  speculation_window : int;  (** instructions per speculative exploration *)
  nesting : bool;  (** explore nested speculation (§5.4; off by default) *)
}

val make :
  ?expose_speculative_stores:bool ->
  ?speculation_window:int ->
  ?nesting:bool ->
  observation_clause ->
  execution_clause ->
  t
(** Defaults: speculative stores exposed, window 250, nesting off. *)

val with_nesting : t -> t

val mem_seq : t
val mem_cond : t
val ct_seq : t
val ct_bpas : t
val ct_cond : t
val ct_cond_bpas : t
val arch_seq : t

val ct_cond_no_spec_store : t
(** The §6.4 contract: CT-COND minus speculative store exposure. *)

val standard_ladder : t list
(** The four contracts of Table 3, most restrictive first:
    CT-SEQ, CT-BPAS, CT-COND, CT-COND-BPAS. *)

val has_cond : t -> bool
val has_bpas : t -> bool

val name : t -> string
(** e.g. ["CT-COND-BPAS"], ["CT-COND(noSpecStore)"]. *)

val of_name : string -> (t, string) result
(** Parse names like ["MEM-SEQ"], ["ct-cond-bpas"], ["ARCH-SEQ"]. *)

val pp : Format.formatter -> t -> unit

val permits_at_least : t -> t -> bool
(** [permits_at_least a b]: [a] exposes everything [b] exposes (i.e. [a]
    is more liberal than or equal to [b]); used to order the testing
    ladder. *)
