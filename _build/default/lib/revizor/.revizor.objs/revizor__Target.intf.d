lib/revizor/target.mli: Attack Catalog Contract Format Fuzzer Revizor_isa Revizor_uarch Uarch_config
