lib/revizor/ctrace.mli: Format
