lib/revizor/results.mli: Input Program Revizor_isa Violation
