lib/revizor/executor.ml: Array Attack Cpu Float Htrace Input Int64 List Prng Revizor_emu Revizor_isa Revizor_uarch Stdlib
