lib/revizor/violation.mli: Analyzer Contract Cpu Ctrace Format Htrace Input Program Revizor_isa Revizor_uarch
