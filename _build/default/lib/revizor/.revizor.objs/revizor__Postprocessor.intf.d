lib/revizor/postprocessor.mli: Executor Fuzzer Input Program Revizor_isa Violation
