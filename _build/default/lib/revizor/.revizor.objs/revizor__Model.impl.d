lib/revizor/model.ml: Array Contract Ctrace Flags Input Instruction List Memory Opcode Program Revizor_emu Revizor_isa Semantics State
