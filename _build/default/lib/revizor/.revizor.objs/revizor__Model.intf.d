lib/revizor/model.mli: Contract Ctrace Input Instruction Program Revizor_emu Revizor_isa Semantics
