lib/revizor/results.ml: Asm_parser Filename Format Fun Input Int64 List Printf Program Revizor_isa String Sys Unix Violation
