lib/revizor/analyzer.mli: Ctrace Format Htrace Revizor_uarch
