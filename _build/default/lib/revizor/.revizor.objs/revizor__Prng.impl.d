lib/revizor/prng.ml: Int64 List
