lib/revizor/prng.mli:
