lib/revizor/coverage.mli: Format Model
