lib/revizor/report.ml: Contract Experiments Gadgets Hashtbl List Option Printf String Target
