lib/revizor/gadgets.ml: Cond Instruction Layout List Opcode Operand Printf Program Reg Revizor_emu Revizor_isa
