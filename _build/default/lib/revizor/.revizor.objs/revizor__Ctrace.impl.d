lib/revizor/ctrace.ml: Format Hashtbl List
