lib/revizor/report.mli: Experiments
