lib/revizor/contract.mli: Format
