lib/revizor/fuzzer.mli: Contract Executor Format Generator Input Revizor_isa Revizor_uarch Uarch_config Violation
