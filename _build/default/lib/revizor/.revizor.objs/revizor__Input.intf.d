lib/revizor/input.mli: Format Prng Revizor_emu State
