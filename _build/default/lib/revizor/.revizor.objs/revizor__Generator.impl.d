lib/revizor/generator.ml: Array Catalog Cond Instruction Int64 Layout List Opcode Operand Printf Prng Program Reg Revizor_emu Revizor_isa Width
