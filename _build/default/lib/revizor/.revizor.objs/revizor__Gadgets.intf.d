lib/revizor/gadgets.mli: Program Revizor_isa
