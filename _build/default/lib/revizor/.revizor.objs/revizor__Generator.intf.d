lib/revizor/generator.mli: Catalog Prng Program Revizor_isa
