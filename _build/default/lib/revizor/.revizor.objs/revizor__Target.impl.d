lib/revizor/target.ml: Attack Catalog Executor Format Fuzzer Generator List Revizor_isa Revizor_uarch String Uarch_config
