lib/revizor/experiments.mli: Contract Gadgets Target Violation
