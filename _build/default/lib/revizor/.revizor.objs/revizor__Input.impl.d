lib/revizor/input.ml: Flags Format Int64 Layout List Memory Prng Reg Revizor_emu Revizor_isa State Width
