lib/revizor/violation.ml: Analyzer Contract Cpu Ctrace Format Htrace Input List Printf Program Revizor_isa Revizor_uarch String
