lib/revizor/contract.ml: Format Printf String
