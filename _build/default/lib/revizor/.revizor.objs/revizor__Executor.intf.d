lib/revizor/executor.mli: Attack Cpu Htrace Input Prng Program Revizor_isa Revizor_uarch
