lib/revizor/postprocessor.ml: Fuzzer Input Instruction List Program Revizor_isa Violation
