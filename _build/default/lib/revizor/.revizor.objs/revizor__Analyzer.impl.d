lib/revizor/analyzer.ml: Array Ctrace Format Hashtbl Htrace List Revizor_uarch
