lib/revizor/coverage.ml: Format Instruction Int64 Layout List Model Opcode Revizor_emu Revizor_isa Semantics Set Stdlib String
