open Revizor_isa

(** Persistence of detected violations, mirroring the artifact's results
    directories (§A.5): each violation is stored as an assembly listing of
    the test case, the input seeds of the priming sequence, and a
    human-readable report. Saved test cases can be reloaded and re-checked
    with {!Fuzzer.check_test_case}. *)

val save_violation : dir:string -> Violation.t -> unit
(** Writes [dir/violation.asm], [dir/inputs.txt] and [dir/report.txt]
    (creating [dir] if needed). *)

val load_program : string -> (Program.t, string) result
(** Parse a saved [*.asm] file. *)

val save_inputs : string -> Input.t list -> unit
val load_inputs : string -> (Input.t list, string) result

val input_to_line : Input.t -> string
(** ["seed=0x... entropy=N"]. *)

val input_of_line : string -> (Input.t, string) result
