open Revizor_isa
open Revizor_uarch

type t = {
  program : Program.t;
  inputs : Input.t list;
  index_a : int;
  index_b : int;
  ctrace : Ctrace.t;
  htrace_a : Htrace.t;
  htrace_b : Htrace.t;
  mechanisms : Cpu.speculation_kind list;
  label : string;
}

let label_of contract mechanisms ~mds_patch =
  let has k = List.mem k mechanisms in
  (* Assist-driven leaks are never contract-permitted. *)
  if has Cpu.Assist_store_forward then "LVI-Null"
  else if has Cpu.Assist_load_forward then if mds_patch then "LVI-Null" else "MDS"
  else if has Cpu.Store_bypass then
    if Contract.has_bpas contract then "V4-var" else "V4"
  else if has Cpu.Branch_mispredict then
    if
      Contract.has_cond contract
      && not contract.Contract.expose_speculative_stores
    then (* §6.4: the diverging touch must come from a transient store *)
      "spec-store-eviction"
    else if Contract.has_cond contract then "V1-var"
    else "V1"
  else if has Cpu.Return_mispredict then "ret2spec"
  else if has Cpu.Indirect_mispredict then "V2"
  else "unknown"

let make ~contract ~mds_patch ~program ~inputs (c : Analyzer.candidate)
    ~mechanisms =
  {
    program;
    inputs;
    index_a = c.Analyzer.index_a;
    index_b = c.Analyzer.index_b;
    ctrace = c.Analyzer.cls.Analyzer.ctrace;
    htrace_a = c.Analyzer.htrace_a;
    htrace_b = c.Analyzer.htrace_b;
    mechanisms;
    label = label_of contract mechanisms ~mds_patch;
  }

let pp fmt v =
  Format.fprintf fmt
    "@[<v>VIOLATION (%s)@,mechanisms: %s@,inputs #%d vs #%d@,htrace A: \
     %a@,htrace B: %a@,test case:@,%a@]"
    v.label
    (String.concat ", " (List.map Cpu.kind_to_string v.mechanisms))
    v.index_a v.index_b Htrace.pp v.htrace_a Htrace.pp v.htrace_b Program.pp
    v.program

let summary v =
  Printf.sprintf "%s (inputs #%d/#%d, mechanisms: %s)" v.label v.index_a
    v.index_b
    (String.concat "," (List.map Cpu.kind_to_string v.mechanisms))
