type observation_clause = Mem | Ct | Arch
type execution_clause = Seq | Cond | Bpas | Cond_bpas

type t = {
  obs : observation_clause;
  exec : execution_clause;
  expose_speculative_stores : bool;
  speculation_window : int;
  nesting : bool;
}

let make ?(expose_speculative_stores = true) ?(speculation_window = 250)
    ?(nesting = false) obs exec =
  { obs; exec; expose_speculative_stores; speculation_window; nesting }

let with_nesting t = { t with nesting = true }
let mem_seq = make Mem Seq
let mem_cond = make Mem Cond
let ct_seq = make Ct Seq
let ct_bpas = make Ct Bpas
let ct_cond = make Ct Cond
let ct_cond_bpas = make Ct Cond_bpas
let arch_seq = make Arch Seq
let ct_cond_no_spec_store = make ~expose_speculative_stores:false Ct Cond
let standard_ladder = [ ct_seq; ct_bpas; ct_cond; ct_cond_bpas ]
let has_cond t = match t.exec with Cond | Cond_bpas -> true | Seq | Bpas -> false
let has_bpas t = match t.exec with Bpas | Cond_bpas -> true | Seq | Cond -> false

let obs_name = function Mem -> "MEM" | Ct -> "CT" | Arch -> "ARCH"

let exec_name = function
  | Seq -> "SEQ"
  | Cond -> "COND"
  | Bpas -> "BPAS"
  | Cond_bpas -> "COND-BPAS"

let name t =
  let base = obs_name t.obs ^ "-" ^ exec_name t.exec in
  if t.expose_speculative_stores then base else base ^ "(noSpecStore)"

let of_name s =
  let s = String.uppercase_ascii (String.trim s) in
  match String.index_opt s '-' with
  | None -> Error (Printf.sprintf "malformed contract name %S" s)
  | Some i ->
      let obs_s = String.sub s 0 i in
      let exec_s = String.sub s (i + 1) (String.length s - i - 1) in
      let obs =
        match obs_s with
        | "MEM" -> Ok Mem
        | "CT" -> Ok Ct
        | "ARCH" -> Ok Arch
        | other -> Error (Printf.sprintf "unknown observation clause %S" other)
      in
      let exec =
        match exec_s with
        | "SEQ" -> Ok Seq
        | "COND" -> Ok Cond
        | "BPAS" -> Ok Bpas
        | "COND-BPAS" -> Ok Cond_bpas
        | other -> Error (Printf.sprintf "unknown execution clause %S" other)
      in
      (match (obs, exec) with
      | Ok o, Ok e -> Ok (make o e)
      | Error e, _ | _, Error e -> Error e)

let pp fmt t = Format.pp_print_string fmt (name t)

let obs_rank = function Mem -> 0 | Ct -> 1 | Arch -> 2

let exec_includes a b =
  match (a, b) with
  | Cond_bpas, _ -> true
  | _, Seq -> true
  | Cond, Cond -> true
  | Bpas, Bpas -> true
  | (Seq | Cond | Bpas), _ -> false

let permits_at_least a b =
  obs_rank a.obs >= obs_rank b.obs
  && exec_includes a.exec b.exec
  && (a.expose_speculative_stores || not b.expose_speculative_stores)
