open Revizor_uarch
type noise = { flip_probability : float; rng : Prng.t }

type config = {
  threat : Attack.threat;
  warmup_rounds : int;
  measurement_reps : int;
  outlier_min : int;
  noise : noise option;
  max_steps : int;
  reset_between_inputs : bool;
}

let default_config ?(threat = Attack.prime_probe) () =
  {
    threat;
    warmup_rounds = 1;
    measurement_reps = 3;
    outlier_min = 2;
    noise = None;
    max_steps = 20000;
    reset_between_inputs = false;
  }

type t = { cpu : Cpu.t; cfg : config }

let create cpu cfg = { cpu; cfg }
let cpu t = t.cpu
let config t = t.cfg

type measurement = {
  htrace : Htrace.t;
  kinds : Cpu.speculation_kind list;
  events : (Cpu.speculation_kind * Htrace.t) list;
}

let apply_noise cfg trace =
  match cfg.noise with
  | None -> trace
  | Some n ->
      let domain = Attack.trace_domain cfg.threat.Attack.mode in
      let trace = ref trace in
      (* Possibly add one spurious observation... *)
      if Float.of_int (Prng.int n.rng 1_000_000) /. 1_000_000. < n.flip_probability
      then trace := Htrace.add (Prng.int n.rng domain) !trace;
      (* ... and possibly drop one real one. *)
      if
        (not (Htrace.is_empty !trace))
        && Float.of_int (Prng.int n.rng 1_000_000) /. 1_000_000.
           < n.flip_probability
      then begin
        let elems = Htrace.elements !trace in
        let victim = List.nth elems (Prng.int n.rng (List.length elems)) in
        trace := Htrace.diff !trace (Htrace.singleton victim)
      end;
      !trace

(* One pass over the input sequence; the CPU session is NOT reset, so
   predictors carry over from input to input (priming). *)
let run_sequence t flat inputs ~record =
  List.iteri
    (fun idx input ->
      if t.cfg.reset_between_inputs then Cpu.reset_session t.cpu;
      let state = Input.to_state input in
      (* Loading the input into the sandbox moves the input's own data
         through the memory system: the fill buffers hold it afterwards. *)
      let last_word =
        Int64.add Revizor_emu.Layout.sandbox_base
          (Int64.of_int ((Revizor_emu.Layout.data_pages * Revizor_emu.Layout.page_size) - 8))
      in
      Cpu.set_fill_buffer t.cpu
        (Revizor_emu.Memory.read state.Revizor_emu.State.mem ~addr:last_word
           Revizor_isa.Width.W64);
      let trace =
        Attack.observe t.cpu t.cfg.threat (fun () ->
            Cpu.run ~max_steps:t.cfg.max_steps t.cpu flat state)
      in
      let trace = apply_noise t.cfg trace in
      let events =
        (* keep every episode for mechanism labelling; episodes without
           cache touches carry an empty set and are never selected by the
           trace-difference attribution *)
        List.map
          (fun (e : Cpu.event) ->
            (e.Cpu.kind, Htrace.of_list e.Cpu.touched_sets))
          (Cpu.events t.cpu)
      in
      record idx trace events)
    inputs

let measure t flat inputs =
  let n = List.length inputs in
  Cpu.reset_session t.cpu;
  for _ = 1 to t.cfg.warmup_rounds do
    run_sequence t flat inputs ~record:(fun _ _ _ -> ())
  done;
  let counts = Array.make n [] (* (observation, count) assoc *) in
  let events = Array.make n [] in
  for _ = 1 to max 1 t.cfg.measurement_reps do
    run_sequence t flat inputs ~record:(fun idx trace evs ->
        let bump assoc o =
          let c = try List.assoc o assoc with Not_found -> 0 in
          (o, c + 1) :: List.remove_assoc o assoc
        in
        counts.(idx) <- List.fold_left bump counts.(idx) (Htrace.elements trace);
        events.(idx) <- evs @ events.(idx))
  done;
  let threshold =
    if t.cfg.measurement_reps >= 3 then t.cfg.outlier_min else 1
  in
  Array.init n (fun idx ->
      let htrace =
        List.fold_left
          (fun acc (o, c) -> if c >= threshold then Htrace.add o acc else acc)
          Htrace.empty counts.(idx)
      in
      let evs = List.sort_uniq Stdlib.compare events.(idx) in
      let ks = List.sort_uniq Stdlib.compare (List.map fst evs) in
      { htrace; kinds = ks; events = evs })

let htraces t flat inputs =
  Array.map (fun m -> m.htrace) (measure t flat inputs)

let replace l idx v = List.mapi (fun i x -> if i = idx then v else x) l

let swap_check t flat inputs a b =
  let arr = Array.of_list inputs in
  let input_a = arr.(a) and input_b = arr.(b) in
  (* i_b measured in i_a's context slot... *)
  let seq_b_at_a = replace inputs a input_b in
  (* ... and i_a measured in i_b's context slot. *)
  let seq_a_at_b = replace inputs b input_a in
  let base = htraces t flat inputs in
  let m1 = htraces t flat seq_b_at_a in
  let m2 = htraces t flat seq_a_at_b in
  (* Artifact iff swapping contexts makes the traces agree both ways. *)
  let artifact =
    Htrace.comparable m1.(a) base.(a) && Htrace.comparable m2.(b) base.(b)
  in
  not artifact
