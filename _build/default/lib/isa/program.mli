(** Test-case programs: a sequence of labelled basic blocks whose control
    flow forms a DAG (the generator never creates loops, §5.1).

    A block falls through to the next block unless its last instruction is
    an unconditional control transfer. The {!flatten} form — a flat
    instruction array with resolved branch targets — is what both the
    contract model and the hardware simulator execute. *)

type block = { label : string; insts : Instruction.t list }
type t = { blocks : block list }

val make : block list -> t
val block : string -> Instruction.t list -> block

val of_insts : Instruction.t list -> t
(** Single-block program labelled ["bb0"]. *)

val num_insts : t -> int
val num_blocks : t -> int

val instructions : t -> Instruction.t list
(** All instructions in layout order. *)

val map_insts : (Instruction.t -> Instruction.t list) -> t -> t
(** Rewrite every instruction into zero or more instructions, preserving
    block structure (used by instrumentation and minimization passes). *)

(** {1 Flat form} *)

type flat = {
  code : Instruction.t array;  (** instructions in layout order *)
  target : int array;
      (** [target.(i)] is the resolved index of instruction [i]'s label
          target, or [-1] *)
  block_starts : (string * int) list;  (** label -> first instruction index *)
}

val flatten : t -> (flat, string) result
(** Resolve labels. Fails on duplicate or undefined labels. A branch to the
    end of the program is represented by the index [Array.length code]. *)

val flatten_exn : t -> flat

(** {1 Validation} *)

val validate : t -> (unit, string) result
(** Labels resolve, every instruction's operand shape is accepted, and the
    control flow of label targets is forward-only (DAG). Indirect jumps and
    RET are exempt from the DAG check (their targets are dynamic). *)

val pp : Format.formatter -> t -> unit
(** Assembly listing with [.label:] markers. *)

val to_string : t -> string
val equal : t -> t -> bool
