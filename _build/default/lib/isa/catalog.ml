type okind = KReg | KImm | KMem | KCl

type spec = {
  opcode : Opcode.t;
  width : Width.t;
  src_width : Width.t option;
  shape : okind list;
  lock_ok : bool;
  terminator : bool;
}

type subset = AR | MEM | VAR | CB | IND

let subset_to_string = function
  | AR -> "AR"
  | MEM -> "MEM"
  | VAR -> "VAR"
  | CB -> "CB"
  | IND -> "IND"

let subset_of_string s =
  match String.uppercase_ascii s with
  | "AR" -> Ok AR
  | "MEM" -> Ok MEM
  | "VAR" -> Ok VAR
  | "CB" -> Ok CB
  | "IND" -> Ok IND
  | other -> Error (Printf.sprintf "unknown ISA subset %S" other)

let plain opcode width shape =
  { opcode; width; src_width = None; shape; lock_ok = false; terminator = false }

let rmw opcode width shape = { (plain opcode width shape) with lock_ok = true }

let term opcode =
  {
    opcode;
    width = Width.W64;
    src_width = None;
    shape = [];
    lock_ok = false;
    terminator = true;
  }

(* widening conversions: (dst, src) pairs with dst strictly wider *)
let conversion_pairs =
  [
    (Width.W16, Width.W8);
    (Width.W32, Width.W8);
    (Width.W32, Width.W16);
    (Width.W64, Width.W8);
    (Width.W64, Width.W16);
    (Width.W64, Width.W32);
  ]

let widths_all = Width.all
let widths_no8 = [ Width.W16; Width.W32; Width.W64 ]

let alu_binops : Opcode.t list =
  [ Add; Adc; Sub; Sbb; And; Or; Xor; Cmp; Test; Mov ]

(* AR: register/immediate forms only. *)
let ar_specs =
  let binop_forms =
    List.concat_map
      (fun op ->
        List.concat_map
          (fun w -> [ plain op w [ KReg; KReg ]; plain op w [ KReg; KImm ] ])
          widths_all)
      alu_binops
  in
  let imul_forms =
    List.concat_map
      (fun w -> [ plain Opcode.Imul w [ KReg; KReg ]; plain Opcode.Imul w [ KReg; KImm ] ])
      widths_no8
  in
  let unary_forms =
    List.concat_map
      (fun op -> List.map (fun w -> plain op w [ KReg ]) widths_all)
      [ Opcode.Inc; Opcode.Dec; Opcode.Neg; Opcode.Not ]
  in
  let shift_forms =
    List.concat_map
      (fun op ->
        List.concat_map
          (fun w -> [ plain op w [ KReg; KImm ]; plain op w [ KReg; KCl ] ])
          widths_all)
      [ Opcode.Shl; Opcode.Shr; Opcode.Sar; Opcode.Rol; Opcode.Ror ]
  in
  let conversion_forms =
    List.concat_map
      (fun op ->
        List.map
          (fun (wd, ws) ->
            { (plain op wd [ KReg; KReg ]) with src_width = Some ws })
          conversion_pairs)
      [ Opcode.Movzx; Opcode.Movsx ]
  in
  let xchg_forms = List.map (fun w -> plain Opcode.Xchg w [ KReg; KReg ]) widths_all in
  let cmov_forms =
    List.concat_map
      (fun c -> List.map (fun w -> plain (Opcode.Cmov c) w [ KReg; KReg ]) widths_no8)
      Cond.all
  in
  let setcc_forms =
    List.map (fun c -> plain (Opcode.Setcc c) Width.W8 [ KReg ]) Cond.all
  in
  binop_forms @ imul_forms @ unary_forms @ shift_forms @ conversion_forms
  @ xchg_forms @ cmov_forms @ setcc_forms

(* MEM: the additional memory-operand forms. *)
let mem_specs =
  let binop_mem_forms =
    List.concat_map
      (fun op ->
        let dst_mem_ok = op <> Opcode.Test && op <> Opcode.Cmp in
        List.concat_map
          (fun w ->
            plain op w [ KReg; KMem ]
            ::
            (if dst_mem_ok then [ rmw op w [ KMem; KReg ]; rmw op w [ KMem; KImm ] ]
             else [ plain op w [ KMem; KReg ]; plain op w [ KMem; KImm ] ]))
          widths_all)
      alu_binops
  in
  let imul_mem = List.map (fun w -> plain Opcode.Imul w [ KReg; KMem ]) widths_no8 in
  let unary_mem =
    List.concat_map
      (fun op -> List.map (fun w -> rmw op w [ KMem ]) widths_all)
      [ Opcode.Inc; Opcode.Dec; Opcode.Neg; Opcode.Not ]
  in
  let shift_mem =
    List.concat_map
      (fun op ->
        List.concat_map
          (fun w -> [ rmw op w [ KMem; KImm ]; rmw op w [ KMem; KCl ] ])
          widths_all)
      [ Opcode.Shl; Opcode.Shr; Opcode.Sar; Opcode.Rol; Opcode.Ror ]
  in
  let conversion_mem =
    List.concat_map
      (fun op ->
        List.map
          (fun (wd, ws) ->
            { (plain op wd [ KReg; KMem ]) with src_width = Some ws })
          conversion_pairs)
      [ Opcode.Movzx; Opcode.Movsx ]
  in
  let xchg_mem = List.map (fun w -> rmw Opcode.Xchg w [ KMem; KReg ]) widths_all in
  let cmov_mem =
    List.concat_map
      (fun c -> List.map (fun w -> plain (Opcode.Cmov c) w [ KReg; KMem ]) widths_no8)
      Cond.all
  in
  let setcc_mem = List.map (fun c -> plain (Opcode.Setcc c) Width.W8 [ KMem ]) Cond.all in
  binop_mem_forms @ imul_mem @ unary_mem @ shift_mem @ conversion_mem
  @ xchg_mem @ cmov_mem @ setcc_mem

let var_specs =
  List.concat_map
    (fun op ->
      List.concat_map (fun w -> [ plain op w [ KReg ]; plain op w [ KMem ] ]) widths_no8)
    [ Opcode.Div; Opcode.Idiv ]

let cb_specs = List.map (fun c -> term (Opcode.Jcc c)) Cond.all @ [ term Opcode.Jmp ]

let ind_specs =
  [
    { (term Opcode.JmpInd) with shape = [ KReg ] };
    term Opcode.Call;
    term Opcode.Ret;
  ]

let of_subset = function
  | AR -> ar_specs
  | MEM -> mem_specs
  | VAR -> var_specs
  | CB -> cb_specs
  | IND -> ind_specs

let specs subsets =
  let subsets = List.sort_uniq Stdlib.compare subsets in
  List.concat_map of_subset subsets

let body_specs subsets = List.filter (fun s -> not s.terminator) (specs subsets)
let count subsets = List.length (specs subsets)

let okind_name w = function
  | KReg -> Printf.sprintf "r%d" (Width.bits w)
  | KImm -> "i"
  | KMem -> Printf.sprintf "m%d" (Width.bits w)
  | KCl -> "cl"

let spec_name s =
  match s.shape with
  | [] -> Opcode.mnemonic s.opcode
  | shape ->
      let parts =
        match (s.src_width, shape) with
        | Some ws, [ k1; k2 ] -> [ okind_name s.width k1; okind_name ws k2 ]
        | _ -> List.map (okind_name s.width) shape
      in
      Opcode.mnemonic s.opcode ^ "_" ^ String.concat "_" parts

let pp_spec fmt s = Format.pp_print_string fmt (spec_name s)
