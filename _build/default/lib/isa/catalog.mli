(** Instruction-spec catalog and ISA subsets.

    The catalog plays the role of the nanoBench ISA description used by the
    paper: it enumerates the unique instruction variants (opcode × operand
    shape × width) the generator may sample. Subsets mirror Table 2:
    - {b AR}: in-register arithmetic, logic and bitwise operations;
    - {b MEM}: memory-operand forms and loads/stores;
    - {b VAR}: variable-latency operations (division);
    - {b CB}: conditional branches (used as block terminators);
    - {b IND}: extension — indirect jumps, CALL and RET. *)

(** Operand kind in an instruction shape. *)
type okind =
  | KReg  (** a general-purpose register from the generator pool *)
  | KImm  (** a random immediate *)
  | KMem  (** a sandboxed memory operand [\[R14 + reg\]] *)
  | KCl  (** the CL register (shift counts) *)

type spec = {
  opcode : Opcode.t;
  width : Width.t;  (** operand width of the variant *)
  src_width : Width.t option;
      (** source width for width-converting forms (MOVZX/MOVSX) *)
  shape : okind list;
  lock_ok : bool;  (** whether a LOCK prefix may be attached (RMW forms) *)
  terminator : bool;  (** control-flow instructions placed by the DAG pass *)
}

type subset = AR | MEM | VAR | CB | IND

val subset_of_string : string -> (subset, string) result
val subset_to_string : subset -> string

val specs : subset list -> spec list
(** All specs of the union of the given subsets. The list for
    [\[AR; MEM; VAR; CB\]] matches the paper's largest evaluated set. *)

val body_specs : subset list -> spec list
(** {!specs} without terminators — what the generator samples for block
    bodies. *)

val count : subset list -> int
(** Number of unique instruction variants, reported like the paper's
    "AR—325; AR+MEM—678; ..." figures. *)

val spec_name : spec -> string
(** Human-readable variant name, e.g. ["ADD_r32_m32"]. *)

val pp_spec : Format.formatter -> spec -> unit
