(** Operand widths of the modelled x86-64 subset. *)

type t = W8 | W16 | W32 | W64

val bits : t -> int
(** Number of bits: 8, 16, 32 or 64. *)

val bytes : t -> int
(** Number of bytes: 1, 2, 4 or 8. *)

val mask : t -> int64
(** All-ones mask of the width, e.g. [0xFFL] for {!W8}. *)

val sign_bit : t -> int64
(** Mask with only the top bit of the width set. *)

val all : t list
(** All widths, narrowest first. *)

val to_string : t -> string
(** ["byte"], ["word"], ["dword"] or ["qword"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
val compare : t -> t -> int
