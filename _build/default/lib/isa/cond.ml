type t = O | NO | B | AE | Z | NZ | BE | A | S | NS | P | NP | L | GE | LE | G

let all = [ O; NO; B; AE; Z; NZ; BE; A; S; NS; P; NP; L; GE; LE; G ]

let negate = function
  | O -> NO
  | NO -> O
  | B -> AE
  | AE -> B
  | Z -> NZ
  | NZ -> Z
  | BE -> A
  | A -> BE
  | S -> NS
  | NS -> S
  | P -> NP
  | NP -> P
  | L -> GE
  | GE -> L
  | LE -> G
  | G -> LE

let suffix = function
  | O -> "O"
  | NO -> "NO"
  | B -> "B"
  | AE -> "AE"
  | Z -> "Z"
  | NZ -> "NZ"
  | BE -> "BE"
  | A -> "A"
  | S -> "S"
  | NS -> "NS"
  | P -> "P"
  | NP -> "NP"
  | L -> "L"
  | GE -> "GE"
  | LE -> "LE"
  | G -> "G"

let of_suffix s =
  match String.uppercase_ascii s with
  | "O" -> Some O
  | "NO" -> Some NO
  | "B" | "C" | "NAE" -> Some B
  | "AE" | "NC" | "NB" -> Some AE
  | "Z" | "E" -> Some Z
  | "NZ" | "NE" -> Some NZ
  | "BE" | "NA" -> Some BE
  | "A" | "NBE" -> Some A
  | "S" -> Some S
  | "NS" -> Some NS
  | "P" | "PE" -> Some P
  | "NP" | "PO" -> Some NP
  | "L" | "NGE" -> Some L
  | "GE" | "NL" -> Some GE
  | "LE" | "NG" -> Some LE
  | "G" | "NLE" -> Some G
  | _ -> None

let pp fmt c = Format.pp_print_string fmt (suffix c)
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
