type block = { label : string; insts : Instruction.t list }
type t = { blocks : block list }

let make blocks = { blocks }
let block label insts = { label; insts }
let of_insts insts = { blocks = [ { label = "bb0"; insts } ] }

let num_insts t =
  List.fold_left (fun acc b -> acc + List.length b.insts) 0 t.blocks

let num_blocks t = List.length t.blocks
let instructions t = List.concat_map (fun b -> b.insts) t.blocks

let map_insts f t =
  { blocks = List.map (fun b -> { b with insts = List.concat_map f b.insts }) t.blocks }

type flat = {
  code : Instruction.t array;
  target : int array;
  block_starts : (string * int) list;
}

let flatten t : (flat, string) result =
  let exception Flatten_error of string in
  try
    let starts = Hashtbl.create 16 in
    let n = ref 0 in
    let block_starts =
      List.map
        (fun b ->
          if Hashtbl.mem starts b.label then
            raise (Flatten_error ("duplicate label " ^ b.label));
          Hashtbl.replace starts b.label !n;
          n := !n + List.length b.insts;
          (b.label, Hashtbl.find starts b.label))
        t.blocks
    in
    let code = Array.make !n Instruction.nop in
    let target = Array.make !n (-1) in
    let i = ref 0 in
    List.iter
      (fun b ->
        List.iter
          (fun inst ->
            code.(!i) <- inst;
            (match inst.Instruction.target with
            | Some lbl -> (
                match Hashtbl.find_opt starts lbl with
                | Some idx -> target.(!i) <- idx
                | None -> raise (Flatten_error ("undefined label " ^ lbl)))
            | None -> ());
            incr i)
          b.insts)
      t.blocks;
    Ok { code; target; block_starts }
  with Flatten_error msg -> Error msg

let flatten_exn t =
  match flatten t with Ok f -> f | Error msg -> invalid_arg ("Program.flatten: " ^ msg)

let validate t : (unit, string) result =
  match flatten t with
  | Error msg -> Error msg
  | Ok f ->
      let problem = ref None in
      Array.iteri
        (fun i inst ->
          if !problem = None then begin
            (match Instruction.validate inst with
            | Ok () -> ()
            | Error msg ->
                problem :=
                  Some (Printf.sprintf "instruction %d (%s): %s" i
                          (Instruction.to_string inst) msg));
            if !problem = None && f.target.(i) >= 0 && f.target.(i) <= i then
              problem :=
                Some (Printf.sprintf "instruction %d: backward branch (loop)" i)
          end)
        f.code;
      (match !problem with Some msg -> Error msg | None -> Ok ())

let pp fmt t =
  let first = ref true in
  List.iter
    (fun b ->
      if not !first then Format.pp_print_cut fmt ();
      first := false;
      Format.fprintf fmt ".%s:" b.label;
      List.iter
        (fun i -> Format.fprintf fmt "@,  %a" Instruction.pp i)
        b.insts)
    t.blocks

let pp fmt t = Format.fprintf fmt "@[<v>%a@]" pp t
let to_string t = Format.asprintf "%a" pp t
let equal (a : t) (b : t) = a = b
