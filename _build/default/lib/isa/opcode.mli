(** Opcodes of the modelled x86-64 subset.

    The subset mirrors the paper's test universe: in-register arithmetic
    (AR), memory operands (MEM), variable-latency division (VAR),
    conditional branches (CB); plus the extensions discussed in §5.6 and
    §8 — CALL/RET and indirect jumps — needed for the ret2spec row of
    Table 5 and Spectre-V2-style experiments. *)

type t =
  (* two-operand integer ALU *)
  | Add
  | Adc
  | Sub
  | Sbb
  | And
  | Or
  | Xor
  | Cmp
  | Test
  | Mov
  | Imul  (** two-operand form: dst = dst * src *)
  (* one-operand ALU *)
  | Inc
  | Dec
  | Neg
  | Not
  (* shifts (extension; the paper excluded them due to Unicorn bugs,
     our emulator implements them correctly) *)
  | Shl
  | Shr
  | Sar
  | Rol
  | Ror
  (* width conversions *)
  | Movzx
  | Movsx
  (* exchange (RMW, implicitly locked on memory) *)
  | Xchg
  (* conditional data movement *)
  | Cmov of Cond.t
  | Setcc of Cond.t
  (* variable latency *)
  | Div
  | Idiv
  (* control flow *)
  | Jcc of Cond.t
  | Jmp
  | JmpInd  (** indirect jump through a register *)
  | Call
  | Ret
  (* barriers / misc *)
  | Lfence
  | Mfence
  | Nop

val mnemonic : t -> string
val of_mnemonic : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

val writes_flags : t -> bool
(** Whether the opcode (fully or partially) overwrites RFLAGS. *)

val reads_flags : t -> bool
(** Whether execution depends on RFLAGS (Adc, Sbb, Cmov, Setcc, Jcc). *)

val is_serializing : t -> bool
(** LFENCE/MFENCE: stops speculation in both the model and the simulator. *)

val is_control_flow : t -> bool
