let strip_comment line =
  let cut c s = match String.index_opt s c with Some i -> String.sub s 0 i | None -> s in
  cut '#' (cut ';' line)

let parse_int64 s =
  let s = String.trim s in
  let neg, s =
    if String.length s > 0 && s.[0] = '-' then (true, String.sub s 1 (String.length s - 1))
    else (false, s)
  in
  let value =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      Int64.of_string_opt ("0x" ^ String.sub s 2 (String.length s - 2))
    else if String.length s > 2 && s.[0] = '0' && (s.[1] = 'b' || s.[1] = 'B') then
      Int64.of_string_opt ("0b" ^ String.sub s 2 (String.length s - 2))
    else Int64.of_string_opt s
  in
  Option.map (fun v -> if neg then Int64.neg v else v) value

let width_of_keyword = function
  | "byte" -> Some Width.W8
  | "word" -> Some Width.W16
  | "dword" -> Some Width.W32
  | "qword" -> Some Width.W64
  | _ -> None

(* Memory reference body: terms separated by + or -, each REG, REG*scale,
   or a displacement constant. *)
let parse_mem_body body w =
  let base = ref None and index = ref None and scale = ref 1 and disp = ref 0 in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  (* split into signed terms *)
  let terms = ref [] in
  let buf = Buffer.create 8 in
  let sign = ref 1 in
  String.iter
    (fun c ->
      match c with
      | '+' | '-' ->
          if Buffer.length buf > 0 then terms := (!sign, Buffer.contents buf) :: !terms;
          Buffer.clear buf;
          sign := if c = '-' then -1 else 1
      | ' ' | '\t' -> ()
      | c -> Buffer.add_char buf c)
    body;
  if Buffer.length buf > 0 then terms := (!sign, Buffer.contents buf) :: !terms;
  List.iter
    (fun (sign, term) ->
      match String.index_opt term '*' with
      | Some i -> (
          let reg_s = String.sub term 0 i in
          let scale_s = String.sub term (i + 1) (String.length term - i - 1) in
          match (Reg.of_name reg_s, int_of_string_opt scale_s) with
          | Some (r, Width.W64), Some sc when sign = 1 ->
              if !index = None then begin index := Some r; scale := sc end
              else fail "two index registers"
          | _ -> fail (Printf.sprintf "bad scaled term %S" term))
      | None -> (
          match Reg.of_name term with
          | Some (r, Width.W64) when sign = 1 ->
              if !base = None then base := Some r
              else if !index = None then index := Some r
              else fail "too many registers in memory operand"
          | Some _ -> fail "memory operand registers must be 64-bit"
          | None -> (
              match parse_int64 term with
              | Some v -> disp := !disp + (sign * Int64.to_int v)
              | None -> fail (Printf.sprintf "bad term %S" term))))
    (List.rev !terms);
  match !err with
  | Some msg -> Error msg
  | None -> (
      try Ok (Operand.mem ~w ?base:!base ?index:!index ~scale:!scale ~disp:!disp ())
      with Invalid_argument msg -> Error msg)

let parse_operand s : (Operand.t, string) result =
  let s = String.trim s in
  let lower = String.lowercase_ascii s in
  (* memory reference: "<width> ptr [ ... ]" *)
  match String.index_opt s '[' with
  | Some open_b when String.length lower >= 4 -> (
      let close_b =
        match String.rindex_opt s ']' with Some i -> i | None -> -1 in
      if close_b <= open_b then Error "unterminated memory operand"
      else
        let header = String.trim (String.sub s 0 open_b) in
        let body = String.sub s (open_b + 1) (close_b - open_b - 1) in
        let header_words =
          List.filter (fun w -> w <> "")
            (String.split_on_char ' ' (String.lowercase_ascii header))
        in
        match header_words with
        | [ wkw; "ptr" ] | [ wkw ] -> (
            match width_of_keyword wkw with
            | Some w -> parse_mem_body body w
            | None -> Error (Printf.sprintf "bad width keyword %S" wkw))
        | [] -> parse_mem_body body Width.W64
        | _ -> Error (Printf.sprintf "bad memory operand header %S" header))
  | _ -> (
      match Reg.of_name s with
      | Some (r, w) -> Ok (Operand.Reg (r, w))
      | None -> (
          match parse_int64 s with
          | Some v -> Ok (Operand.Imm v)
          | None -> Error (Printf.sprintf "bad operand %S" s)))

let split_operands s =
  (* split on commas that are not inside brackets *)
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '[' -> incr depth; Buffer.add_char buf c
      | ']' -> decr depth; Buffer.add_char buf c
      | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  if String.trim (Buffer.contents buf) <> "" || !parts <> [] then
    parts := Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts

let parse_instruction line : (Instruction.t, string) result =
  let line = String.trim (strip_comment line) in
  if line = "" then Error "empty line"
  else
    let lock, line =
      let up = String.uppercase_ascii line in
      if String.length up > 5 && String.sub up 0 5 = "LOCK " then
        (true, String.trim (String.sub line 5 (String.length line - 5)))
      else (false, line)
    in
    let mnemonic, rest =
      match String.index_opt line ' ' with
      | Some i ->
          (String.sub line 0 i, String.trim (String.sub line (i + 1) (String.length line - i - 1)))
      | None -> (line, "")
    in
    match Opcode.of_mnemonic mnemonic with
    | None -> Error (Printf.sprintf "unknown mnemonic %S" mnemonic)
    | Some opcode -> (
        let parts = if rest = "" then [] else split_operands rest in
        (* branch targets: a trailing ".label" operand *)
        let target, operand_parts =
          match List.rev parts with
          | last :: before when String.length last > 0 && last.[0] = '.' ->
              (Some (String.sub last 1 (String.length last - 1)), List.rev before)
          | _ -> (None, parts)
        in
        let rec parse_all acc = function
          | [] -> Ok (List.rev acc)
          | p :: rest -> (
              match parse_operand p with
              | Ok op -> parse_all (op :: acc) rest
              | Error e -> Error e)
        in
        match parse_all [] operand_parts with
        | Error e -> Error e
        | Ok operands -> (
            let inst = Instruction.make ~operands ?target ~lock opcode in
            match Instruction.validate inst with
            | Ok () -> Ok inst
            | Error e -> Error e))

let parse_program text : (Program.t, string) result =
  let lines = String.split_on_char '\n' text in
  let blocks = ref [] in
  let current_label = ref None in
  let current = ref [] in
  let error = ref None in
  let flush () =
    match (!current_label, !current) with
    | None, [] -> ()
    | label, insts ->
        let label = Option.value label ~default:"bb0" in
        blocks := Program.block label (List.rev insts) :: !blocks;
        current_label := None;
        current := []
  in
  List.iteri
    (fun lineno raw ->
      if !error = None then
        let line = String.trim (strip_comment raw) in
        if line = "" then ()
        else if line.[0] = '.' && line.[String.length line - 1] = ':' then begin
          flush ();
          current_label := Some (String.sub line 1 (String.length line - 2))
        end
        else
          match parse_instruction line with
          | Ok inst -> current := inst :: !current
          | Error e -> error := Some (Printf.sprintf "line %d: %s" (lineno + 1) e))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
      flush ();
      let prog = Program.make (List.rev !blocks) in
      (match Program.flatten prog with
      | Ok _ -> Ok prog
      | Error e -> Error e)
