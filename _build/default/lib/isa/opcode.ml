type t =
  | Add
  | Adc
  | Sub
  | Sbb
  | And
  | Or
  | Xor
  | Cmp
  | Test
  | Mov
  | Imul
  | Inc
  | Dec
  | Neg
  | Not
  | Shl
  | Shr
  | Sar
  | Rol
  | Ror
  | Movzx
  | Movsx
  | Xchg
  | Cmov of Cond.t
  | Setcc of Cond.t
  | Div
  | Idiv
  | Jcc of Cond.t
  | Jmp
  | JmpInd
  | Call
  | Ret
  | Lfence
  | Mfence
  | Nop

let mnemonic = function
  | Add -> "ADD"
  | Adc -> "ADC"
  | Sub -> "SUB"
  | Sbb -> "SBB"
  | And -> "AND"
  | Or -> "OR"
  | Xor -> "XOR"
  | Cmp -> "CMP"
  | Test -> "TEST"
  | Mov -> "MOV"
  | Imul -> "IMUL"
  | Inc -> "INC"
  | Dec -> "DEC"
  | Neg -> "NEG"
  | Not -> "NOT"
  | Shl -> "SHL"
  | Shr -> "SHR"
  | Sar -> "SAR"
  | Rol -> "ROL"
  | Ror -> "ROR"
  | Movzx -> "MOVZX"
  | Movsx -> "MOVSX"
  | Xchg -> "XCHG"
  | Cmov c -> "CMOV" ^ Cond.suffix c
  | Setcc c -> "SET" ^ Cond.suffix c
  | Div -> "DIV"
  | Idiv -> "IDIV"
  | Jcc c -> "J" ^ Cond.suffix c
  | Jmp -> "JMP"
  | JmpInd -> "JMPI"
  | Call -> "CALL"
  | Ret -> "RET"
  | Lfence -> "LFENCE"
  | Mfence -> "MFENCE"
  | Nop -> "NOP"

let of_mnemonic s =
  let s = String.uppercase_ascii s in
  let prefixed p =
    if String.length s > String.length p && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match s with
  | "ADD" -> Some Add
  | "ADC" -> Some Adc
  | "SUB" -> Some Sub
  | "SBB" -> Some Sbb
  | "AND" -> Some And
  | "OR" -> Some Or
  | "XOR" -> Some Xor
  | "CMP" -> Some Cmp
  | "TEST" -> Some Test
  | "MOV" -> Some Mov
  | "IMUL" -> Some Imul
  | "INC" -> Some Inc
  | "DEC" -> Some Dec
  | "NEG" -> Some Neg
  | "NOT" -> Some Not
  | "SHL" -> Some Shl
  | "SHR" -> Some Shr
  | "SAR" -> Some Sar
  | "ROL" -> Some Rol
  | "ROR" -> Some Ror
  | "MOVZX" -> Some Movzx
  | "MOVSX" -> Some Movsx
  | "XCHG" -> Some Xchg
  | "DIV" -> Some Div
  | "IDIV" -> Some Idiv
  | "JMP" -> Some Jmp
  | "JMPI" -> Some JmpInd
  | "CALL" -> Some Call
  | "RET" -> Some Ret
  | "LFENCE" -> Some Lfence
  | "MFENCE" -> Some Mfence
  | "NOP" -> Some Nop
  | _ -> (
      let ( >>= ) = Option.bind in
      let try_cond p f = prefixed p >>= Cond.of_suffix >>= fun c -> Some (f c) in
      match try_cond "CMOV" (fun c -> Cmov c) with
      | Some _ as r -> r
      | None -> (
          match try_cond "SET" (fun c -> Setcc c) with
          | Some _ as r -> r
          | None -> try_cond "J" (fun c -> Jcc c)))

let pp fmt op = Format.pp_print_string fmt (mnemonic op)
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let writes_flags = function
  | Add | Adc | Sub | Sbb | And | Or | Xor | Cmp | Test | Imul | Inc | Dec | Neg
  | Shl | Shr | Sar | Rol | Ror | Div | Idiv ->
      true
  | Mov | Not | Movzx | Movsx | Xchg | Cmov _ | Setcc _ | Jcc _ | Jmp | JmpInd
  | Call | Ret | Lfence | Mfence | Nop ->
      false

let reads_flags = function
  | Adc | Sbb | Cmov _ | Setcc _ | Jcc _ -> true
  | Add | Sub | And | Or | Xor | Cmp | Test | Mov | Imul | Inc | Dec | Neg | Not
  | Shl | Shr | Sar | Rol | Ror | Movzx | Movsx | Xchg | Div | Idiv | Jmp
  | JmpInd | Call | Ret | Lfence | Mfence | Nop ->
      false

let is_serializing = function
  | Lfence | Mfence -> true
  | Add | Adc | Sub | Sbb | And | Or | Xor | Cmp | Test | Mov | Imul | Inc | Dec
  | Neg | Not | Shl | Shr | Sar | Rol | Ror | Movzx | Movsx | Xchg | Cmov _
  | Setcc _ | Div | Idiv | Jcc _ | Jmp | JmpInd | Call | Ret | Nop ->
      false

let is_control_flow = function
  | Jcc _ | Jmp | JmpInd | Call | Ret -> true
  | Add | Adc | Sub | Sbb | And | Or | Xor | Cmp | Test | Mov | Imul | Inc | Dec
  | Neg | Not | Shl | Shr | Sar | Rol | Ror | Movzx | Movsx | Xchg | Cmov _
  | Setcc _ | Div | Idiv | Lfence | Mfence | Nop ->
      false
