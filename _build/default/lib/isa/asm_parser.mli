(** Parser for the Intel-syntax assembly listings printed by
    {!Program.pp} — used to load saved test cases (the format of the
    paper artifact's [*.asm] counterexamples) and to round-trip programs
    in tests.

    Accepted syntax, line by line:
    - [.label:] starts a new basic block;
    - [\[LOCK\] MNEMONIC op1, op2] with operands being register names,
      immediates (decimal, [0x...], [0b...], negative), memory references
      [(byte|word|dword|qword) ptr \[R14 + RAX*2 + 8\]], or branch targets
      [.label];
    - [#] and [;] start comments; blank lines are ignored. *)

val parse_program : string -> (Program.t, string) result
(** Errors carry the 1-based line number. *)

val parse_instruction : string -> (Instruction.t, string) result
(** A single instruction line (no labels). *)
