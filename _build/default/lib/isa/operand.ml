type mem = {
  base : Reg.t option;
  index : Reg.t option;
  scale : int;
  disp : int;
}

type t = Reg of Reg.t * Width.t | Imm of int64 | Mem of mem * Width.t

let reg ?(w = Width.W64) r = Reg (r, w)
let imm i = Imm (Int64.of_int i)
let imm64 i = Imm i

let mem ?(w = Width.W64) ?base ?index ?(scale = 1) ?(disp = 0) () =
  if scale <> 1 && scale <> 2 && scale <> 4 && scale <> 8 then
    invalid_arg (Printf.sprintf "Operand.mem: scale %d" scale);
  Mem ({ base; index; scale; disp }, w)

let sandbox ?(w = Width.W64) ?(disp = 0) idx =
  mem ~w ~base:Reg.sandbox_base ~index:idx ~disp ()

let width = function
  | Reg (_, w) | Mem (_, w) -> Some w
  | Imm _ -> None

let is_mem = function Mem _ -> true | Reg _ | Imm _ -> false

let regs_read = function
  | Reg (r, _) -> [ r ]
  | Imm _ -> []
  | Mem (m, _) ->
      (match m.base with Some b -> [ b ] | None -> [])
      @ (match m.index with Some i -> [ i ] | None -> [])

let pp_mem fmt (m : mem) w =
  let buf = Buffer.create 24 in
  let add s = Buffer.add_string buf s in
  (match m.base with Some b -> add (Reg.name b Width.W64) | None -> ());
  (match m.index with
  | Some i ->
      if Buffer.length buf > 0 then add " + ";
      add (Reg.name i Width.W64);
      if m.scale <> 1 then add (Printf.sprintf "*%d" m.scale)
  | None -> ());
  if m.disp <> 0 || Buffer.length buf = 0 then begin
    if Buffer.length buf > 0 then add (if m.disp >= 0 then " + " else " - ");
    add (string_of_int (abs m.disp))
  end;
  Format.fprintf fmt "%s ptr [%s]" (Width.to_string w) (Buffer.contents buf)

let pp fmt = function
  | Reg (r, w) -> Format.pp_print_string fmt (Reg.name r w)
  | Imm i ->
      if i >= 0L && i < 0x1_0000_0000L then Format.fprintf fmt "%Ld" i
      else Format.fprintf fmt "0x%Lx" i
  | Mem (m, w) -> pp_mem fmt m w

let equal (a : t) (b : t) = a = b
