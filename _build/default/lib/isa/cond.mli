(** x86 condition codes, used by Jcc, CMOVcc and SETcc. *)

type t =
  | O  (** overflow *)
  | NO
  | B  (** below (CF) *)
  | AE
  | Z  (** zero *)
  | NZ
  | BE  (** below or equal (CF or ZF) *)
  | A
  | S  (** sign *)
  | NS
  | P  (** parity *)
  | NP
  | L  (** less (SF <> OF) *)
  | GE
  | LE
  | G

val all : t list

val negate : t -> t
(** The complementary condition, e.g. [negate Z = NZ]. *)

val suffix : t -> string
(** Mnemonic suffix, e.g. ["NBE"] is not produced: canonical forms only
    (["O"], ["NO"], ["B"], ["AE"], ...). *)

val of_suffix : string -> t option
(** Parse a mnemonic suffix, accepting the common aliases
    (C/NC, NAE/NB, E/NE, NA/NBE, PE/PO, NGE/NL, NG/NLE). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
