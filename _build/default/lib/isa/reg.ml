type t =
  | RAX
  | RBX
  | RCX
  | RDX
  | RSI
  | RDI
  | RBP
  | RSP
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

let all =
  [ RAX; RBX; RCX; RDX; RSI; RDI; RBP; RSP; R8; R9; R10; R11; R12; R13; R14; R15 ]

let gen_pool = [ RAX; RBX; RCX; RDX ]
let sandbox_base = R14
let stack_pointer = RSP

let index = function
  | RAX -> 0
  | RBX -> 1
  | RCX -> 2
  | RDX -> 3
  | RSI -> 4
  | RDI -> 5
  | RBP -> 6
  | RSP -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let of_index = function
  | 0 -> RAX
  | 1 -> RBX
  | 2 -> RCX
  | 3 -> RDX
  | 4 -> RSI
  | 5 -> RDI
  | 6 -> RBP
  | 7 -> RSP
  | 8 -> R8
  | 9 -> R9
  | 10 -> R10
  | 11 -> R11
  | 12 -> R12
  | 13 -> R13
  | 14 -> R14
  | 15 -> R15
  | n -> invalid_arg (Printf.sprintf "Reg.of_index: %d" n)

(* Names of the legacy registers at each width; numbered registers follow the
   regular R<n>[BWD] scheme. *)
let legacy_names = function
  | RAX -> ("AL", "AX", "EAX", "RAX")
  | RBX -> ("BL", "BX", "EBX", "RBX")
  | RCX -> ("CL", "CX", "ECX", "RCX")
  | RDX -> ("DL", "DX", "EDX", "RDX")
  | RSI -> ("SIL", "SI", "ESI", "RSI")
  | RDI -> ("DIL", "DI", "EDI", "RDI")
  | RBP -> ("BPL", "BP", "EBP", "RBP")
  | RSP -> ("SPL", "SP", "ESP", "RSP")
  | r ->
      let n = index r in
      ( Printf.sprintf "R%dB" n,
        Printf.sprintf "R%dW" n,
        Printf.sprintf "R%dD" n,
        Printf.sprintf "R%d" n )

let name r (w : Width.t) =
  let b, wd, d, q = legacy_names r in
  match w with W8 -> b | W16 -> wd | W32 -> d | W64 -> q

let name_table =
  lazy
    (let tbl = Hashtbl.create 64 in
     List.iter
       (fun r ->
         List.iter (fun w -> Hashtbl.replace tbl (name r w) (r, w)) Width.all)
       all;
     tbl)

let of_name s = Hashtbl.find_opt (Lazy.force name_table) (String.uppercase_ascii s)
let pp fmt r = Format.pp_print_string fmt (name r Width.W64)
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
