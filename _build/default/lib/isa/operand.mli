(** Instruction operands.

    Memory operands follow the x86 [base + index*scale + disp] addressing
    form. Generated test cases use the sandboxed form
    [\[R14 + reg\]] exclusively (the instrumentation pass guarantees the
    index register is masked beforehand), but hand-written gadgets may use
    the full form. *)

type mem = {
  base : Reg.t option;
  index : Reg.t option;
  scale : int;  (** 1, 2, 4 or 8 *)
  disp : int;
}

type t =
  | Reg of Reg.t * Width.t
  | Imm of int64
  | Mem of mem * Width.t  (** the width is the width of the access *)

val reg : ?w:Width.t -> Reg.t -> t
(** Register operand, 64-bit by default. *)

val imm : int -> t
val imm64 : int64 -> t

val mem :
  ?w:Width.t -> ?base:Reg.t -> ?index:Reg.t -> ?scale:int -> ?disp:int -> unit -> t
(** Memory operand, 64-bit access by default.
    @raise Invalid_argument on a scale other than 1, 2, 4 or 8. *)

val sandbox : ?w:Width.t -> ?disp:int -> Reg.t -> t
(** [sandbox idx] is [\[R14 + idx (+ disp)\]], the canonical generated form. *)

val width : t -> Width.t option
(** Access width of a register or memory operand; [None] for immediates. *)

val is_mem : t -> bool

val regs_read : t -> Reg.t list
(** Registers whose values this operand reads when used as a source
    (includes address registers of memory operands). *)

val pp : Format.formatter -> t -> unit
(** Intel syntax, e.g. [qword ptr \[R14 + RAX*2 + 8\]]. *)

val equal : t -> t -> bool
