lib/isa/operand.ml: Buffer Format Int64 Printf Reg Width
