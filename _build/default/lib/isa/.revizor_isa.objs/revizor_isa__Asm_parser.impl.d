lib/isa/asm_parser.ml: Buffer Instruction Int64 List Opcode Operand Option Printf Program Reg String Width
