lib/isa/opcode.mli: Cond Format
