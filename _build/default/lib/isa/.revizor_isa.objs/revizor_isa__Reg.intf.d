lib/isa/reg.mli: Format Width
