lib/isa/width.ml: Format Int64 Stdlib
