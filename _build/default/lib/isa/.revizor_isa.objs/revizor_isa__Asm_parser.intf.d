lib/isa/asm_parser.mli: Instruction Program
