lib/isa/cond.ml: Format Stdlib String
