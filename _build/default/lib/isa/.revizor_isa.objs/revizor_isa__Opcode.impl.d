lib/isa/opcode.ml: Cond Format Option Stdlib String
