lib/isa/catalog.mli: Format Opcode Width
