lib/isa/instruction.ml: Format List Opcode Operand Printf Reg Width
