lib/isa/program.mli: Format Instruction
