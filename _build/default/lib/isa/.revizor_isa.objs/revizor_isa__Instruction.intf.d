lib/isa/instruction.mli: Cond Format Opcode Operand Reg Width
