lib/isa/catalog.ml: Cond Format List Opcode Printf Stdlib String Width
