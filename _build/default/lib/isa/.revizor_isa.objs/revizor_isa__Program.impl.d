lib/isa/program.ml: Array Format Hashtbl Instruction List Printf
