lib/isa/reg.ml: Format Hashtbl Lazy List Printf Stdlib String Width
