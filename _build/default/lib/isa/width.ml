type t = W8 | W16 | W32 | W64

let bits = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64

let bytes w = bits w / 8

let mask = function
  | W8 -> 0xFFL
  | W16 -> 0xFFFFL
  | W32 -> 0xFFFF_FFFFL
  | W64 -> -1L

let sign_bit = function
  | W8 -> 0x80L
  | W16 -> 0x8000L
  | W32 -> 0x8000_0000L
  | W64 -> Int64.min_int

let all = [ W8; W16; W32; W64 ]

let to_string = function
  | W8 -> "byte"
  | W16 -> "word"
  | W32 -> "dword"
  | W64 -> "qword"

let pp fmt w = Format.pp_print_string fmt (to_string w)
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
