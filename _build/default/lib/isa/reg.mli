(** General-purpose registers of the modelled x86-64 subset.

    Registers are identified independently of access width; the width of an
    access is carried by the operand (see {!Operand}). Test-case generation
    uses only {!gen_pool} (four registers, as in the paper, to keep input
    effectiveness high); [R14] holds the sandbox base and [RSP] the simulated
    stack pointer. *)

type t =
  | RAX
  | RBX
  | RCX
  | RDX
  | RSI
  | RDI
  | RBP
  | RSP
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

val all : t list
(** All sixteen registers, in encoding order. *)

val gen_pool : t list
(** Registers the test-case generator draws from: RAX, RBX, RCX, RDX. *)

val sandbox_base : t
(** Register holding the sandbox base address (R14, as in the paper). *)

val stack_pointer : t
(** Register used as stack pointer by CALL/RET (RSP). *)

val index : t -> int
(** Stable index in [0, 15], suitable for array-backed register files. *)

val of_index : int -> t
(** Inverse of {!index}. @raise Invalid_argument if out of range. *)

val name : t -> Width.t -> string
(** Assembly name at a given access width, e.g. [name RAX W32 = "EAX"],
    [name R8 W16 = "R8W"]. *)

val of_name : string -> (t * Width.t) option
(** Parse an assembly register name (any case); inverse of {!name}. *)

val pp : Format.formatter -> t -> unit
(** Prints the 64-bit name. *)

val equal : t -> t -> bool
val compare : t -> t -> int
