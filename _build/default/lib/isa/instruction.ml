type t = {
  opcode : Opcode.t;
  operands : Operand.t list;
  target : string option;
  lock : bool;
}

let make ?(operands = []) ?target ?(lock = false) opcode =
  { opcode; operands; target; lock }

let binop opcode dst src = make ~operands:[ dst; src ] opcode
let unop opcode dst = make ~operands:[ dst ] opcode
let mov dst src = binop Opcode.Mov dst src
let jcc c lbl = make ~target:lbl (Opcode.Jcc c)
let jmp lbl = make ~target:lbl Opcode.Jmp
let jmp_ind r = make ~operands:[ Operand.reg r ] Opcode.JmpInd
let call lbl = make ~target:lbl Opcode.Call
let ret = make Opcode.Ret
let lfence = make Opcode.Lfence
let mfence = make Opcode.Mfence
let nop = make Opcode.Nop
let div src = unop Opcode.Div src
let idiv src = unop Opcode.Idiv src
let cmov c dst src = binop (Opcode.Cmov c) dst src
let setcc c dst = unop (Opcode.Setcc c) dst

let same_width (a : Operand.t) (b : Operand.t) =
  match (Operand.width a, Operand.width b) with
  | Some wa, Some wb -> Width.equal wa wb
  | _, None | None, _ -> true

let validate (i : t) : (unit, string) result =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let reject_two_mems a b =
    if Operand.is_mem a && Operand.is_mem b then
      err "%s: two memory operands" (Opcode.mnemonic i.opcode)
    else Ok ()
  in
  match (i.opcode, i.operands) with
  | (Add | Adc | Sub | Sbb | And | Or | Xor | Cmp | Test | Mov), [ dst; src ] -> (
      match dst with
      | Operand.Imm _ -> err "destination is an immediate"
      | Operand.Reg _ | Operand.Mem _ ->
          if not (same_width dst src) then err "operand width mismatch"
          else reject_two_mems dst src)
  | Imul, [ dst; src ] -> (
      match (dst, src) with
      | Operand.Reg (_, w), (Operand.Reg (_, w') | Operand.Mem (_, w'))
        when Width.equal w w' && not (Width.equal w Width.W8) ->
          Ok ()
      | Operand.Reg (_, w), Operand.Imm _ when not (Width.equal w Width.W8) ->
          Ok ()
      | _ -> err "IMUL: needs a 16/32/64-bit register destination")
  | (Inc | Dec | Neg | Not), [ (Operand.Reg _ | Operand.Mem _) ] -> Ok ()
  | (Shl | Shr | Sar | Rol | Ror), [ dst; src ] -> (
      match (dst, src) with
      | (Operand.Reg _ | Operand.Mem _), Operand.Imm _ -> Ok ()
      | (Operand.Reg _ | Operand.Mem _), Operand.Reg (Reg.RCX, Width.W8) -> Ok ()
      | _ -> err "shift/rotate: source must be an immediate or CL")
  | (Movzx | Movsx), [ dst; src ] -> (
      match (dst, src) with
      | Operand.Reg (_, wd), (Operand.Reg (_, ws) | Operand.Mem (_, ws))
        when Width.bits wd > Width.bits ws ->
          Ok ()
      | _ -> err "%s: needs a wider register destination" (Opcode.mnemonic i.opcode))
  | Xchg, [ a; b ] -> (
      match (a, b) with
      | Operand.Reg (_, wa), Operand.Reg (_, wb) when Width.equal wa wb -> Ok ()
      | Operand.Mem (_, wa), Operand.Reg (_, wb)
      | Operand.Reg (_, wa), Operand.Mem (_, wb)
        when Width.equal wa wb ->
          Ok ()
      | _ -> err "XCHG: operands must be same-width reg/reg or reg/mem")
  | Cmov _, [ Operand.Reg (_, w); (Operand.Reg (_, w') | Operand.Mem (_, w')) ]
    when Width.equal w w' && not (Width.equal w Width.W8) ->
      Ok ()
  | Cmov _, _ -> err "CMOVcc: needs 16/32/64-bit register destination"
  | Setcc _, [ (Operand.Reg (_, Width.W8) | Operand.Mem (_, Width.W8)) ] -> Ok ()
  | Setcc _, _ -> err "SETcc: needs an 8-bit destination"
  | (Div | Idiv), [ (Operand.Reg (_, w) | Operand.Mem (_, w)) ] ->
      if Width.equal w Width.W8 then err "8-bit division is not modelled"
      else Ok ()
  | (Jcc _ | Jmp | Call), [] ->
      if i.target = None then err "%s: missing target" (Opcode.mnemonic i.opcode)
      else Ok ()
  | JmpInd, [ Operand.Reg (_, Width.W64) ] -> Ok ()
  | (Ret | Lfence | Mfence | Nop), [] -> Ok ()
  | op, ops ->
      err "%s: unsupported operand shape (%d operands)" (Opcode.mnemonic op)
        (List.length ops)

let has_mem_operand i = List.exists Operand.is_mem i.operands

let loads i =
  match i.opcode with
  | Ret -> true
  | Mov | Movzx | Movsx -> (
      match i.operands with [ _; src ] -> Operand.is_mem src | _ -> false)
  | Setcc _ -> false (* write-only destination *)
  | _ -> has_mem_operand i

let stores i =
  match i.opcode with
  | Call -> true
  | Cmp | Test -> false (* read-only "destinations" *)
  | Mov | Setcc _ -> (
      match i.operands with dst :: _ -> Operand.is_mem dst | [] -> false)
  | Add | Adc | Sub | Sbb | And | Or | Xor | Inc | Dec | Neg | Not | Shl | Shr
  | Sar | Rol | Ror -> (
      match i.operands with dst :: _ -> Operand.is_mem dst | [] -> false)
  | Xchg -> has_mem_operand i
  | Imul | Movzx | Movsx | Cmov _ | Div | Idiv | Jcc _ | Jmp | JmpInd | Ret
  | Lfence | Mfence | Nop ->
      false

let mem_operand i =
  List.find_map
    (function Operand.Mem (m, w) -> Some (m, w) | Operand.Reg _ | Operand.Imm _ -> None)
    i.operands

let dedup rs = List.sort_uniq Reg.compare rs

let regs_read i =
  let explicit =
    match (i.opcode, i.operands) with
    | (Mov | Movzx | Movsx | Cmov _), [ dst; src ] ->
        (* MOV/CMOV do not read a register destination, but a memory
           destination's address registers are read. *)
        (if Operand.is_mem dst then Operand.regs_read dst else [])
        @ Operand.regs_read src
    | Setcc _, [ dst ] -> if Operand.is_mem dst then Operand.regs_read dst else []
    | _, ops -> List.concat_map Operand.regs_read ops
  in
  let implicit =
    match i.opcode with
    | Div | Idiv -> [ Reg.RAX; Reg.RDX ]
    | Call | Ret -> [ Reg.stack_pointer ]
    | _ -> []
  in
  dedup (explicit @ implicit)

let regs_written i =
  let explicit =
    match (i.opcode, i.operands) with
    | ( ( Cmp | Test | Div | Idiv | Jcc _ | Jmp | JmpInd | Call | Ret | Lfence
        | Mfence | Nop ),
        _ ) ->
        []
    | Xchg, ops ->
        List.filter_map
          (function Operand.Reg (r, _) -> Some r | Operand.Mem _ | Operand.Imm _ -> None)
          ops
    | _, Operand.Reg (r, _) :: _ -> [ r ]
    | _, _ -> []
  in
  let implicit =
    match i.opcode with
    | Div | Idiv -> [ Reg.RAX; Reg.RDX ]
    | Call | Ret -> [ Reg.stack_pointer ]
    | _ -> []
  in
  dedup (explicit @ implicit)

let pp fmt i =
  if i.lock then Format.pp_print_string fmt "LOCK ";
  Format.pp_print_string fmt (Opcode.mnemonic i.opcode);
  (match (i.operands, i.target) with
  | [], None -> ()
  | [], Some lbl -> Format.fprintf fmt " .%s" lbl
  | ops, _ ->
      Format.pp_print_string fmt " ";
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
        Operand.pp fmt ops);
  match (i.operands, i.target) with
  | _ :: _, Some lbl -> Format.fprintf fmt ", .%s" lbl
  | _ -> ()

let to_string i = Format.asprintf "%a" pp i
let equal (a : t) (b : t) = a = b
