(** Instructions: an opcode, its operands, an optional control-flow target
    label and an optional LOCK prefix.

    Smart constructors enforce the operand shapes accepted by the emulator;
    {!validate} re-checks a hand-built instruction. *)

type t = {
  opcode : Opcode.t;
  operands : Operand.t list;
  target : string option;  (** label, for Jcc / JMP / CALL *)
  lock : bool;
}

(** {1 Constructors} *)

val make :
  ?operands:Operand.t list -> ?target:string -> ?lock:bool -> Opcode.t -> t

val binop : Opcode.t -> Operand.t -> Operand.t -> t
(** Two-operand instruction [OP dst, src]. *)

val unop : Opcode.t -> Operand.t -> t
(** One-operand instruction [OP dst]. *)

val mov : Operand.t -> Operand.t -> t
val jcc : Cond.t -> string -> t
val jmp : string -> t
val jmp_ind : Reg.t -> t
val call : string -> t
val ret : t
val lfence : t
val mfence : t
val nop : t
val div : Operand.t -> t
val idiv : Operand.t -> t
val cmov : Cond.t -> Operand.t -> Operand.t -> t
val setcc : Cond.t -> Operand.t -> t

(** {1 Queries} *)

val validate : t -> (unit, string) result
(** Check the operand shape against what the emulator implements. *)

val loads : t -> bool
(** Whether executing the instruction reads memory (incl. RMW, RET). *)

val stores : t -> bool
(** Whether executing the instruction writes memory (incl. RMW, CALL). *)

val mem_operand : t -> (Operand.mem * Width.t) option
(** The explicit memory operand, if any. *)

val regs_read : t -> Reg.t list
(** Registers read by the instruction (dataflow sources, including address
    registers and implicit operands of DIV/CALL/RET). *)

val regs_written : t -> Reg.t list
(** Registers written (dataflow destinations, including implicit ones). *)

val pp : Format.formatter -> t -> unit
(** Intel syntax, e.g. [LOCK SUB byte ptr \[R14 + RAX\], 35]. *)

val to_string : t -> string
val equal : t -> t -> bool
