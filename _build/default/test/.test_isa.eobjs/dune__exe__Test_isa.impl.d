test/test_isa.ml: Alcotest Array Asm_parser Catalog Cond Format Instruction List Opcode Operand Program Reg Result Revizor_isa String Width
