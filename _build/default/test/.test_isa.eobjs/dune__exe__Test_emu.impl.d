test/test_emu.ml: Alcotest Cond Flags Instruction Int64 Layout List Memory Opcode Operand Printf Program Reg Revizor_emu Revizor_isa Semantics State Width Word
