(* Unit tests for the ISA layer: registers, conditions, operands,
   instructions, programs, the catalog and the assembly parser. *)

open Revizor_isa

let check = Alcotest.check
let tc = Alcotest.test_case

(* Alcotest testable shorthands *)
let bool = Alcotest.bool
let int = Alcotest.int
let int64 = Alcotest.int64
let string = Alcotest.string
let _ = (bool, int, int64, string)

(* --- Reg ------------------------------------------------------------ *)

let reg_tests =
  [
    tc "index/of_index roundtrip" `Quick (fun () ->
        List.iter
          (fun r -> check bool "roundtrip" true (Reg.equal r (Reg.of_index (Reg.index r))))
          Reg.all);
    tc "names at widths" `Quick (fun () ->
        check string "rax64" "RAX" (Reg.name Reg.RAX Width.W64);
        check string "rax32" "EAX" (Reg.name Reg.RAX Width.W32);
        check string "rax16" "AX" (Reg.name Reg.RAX Width.W16);
        check string "rax8" "AL" (Reg.name Reg.RAX Width.W8);
        check string "r8w" "R8W" (Reg.name Reg.R8 Width.W16);
        check string "sil" "SIL" (Reg.name Reg.RSI Width.W8));
    tc "of_name parses all names" `Quick (fun () ->
        List.iter
          (fun r ->
            List.iter
              (fun w ->
                match Reg.of_name (Reg.name r w) with
                | Some (r', w') ->
                    check bool "reg" true (Reg.equal r r');
                    check bool "width" true (Width.equal w w')
                | None -> Alcotest.failf "unparsed %s" (Reg.name r w))
              Width.all)
          Reg.all);
    tc "of_name case-insensitive and rejects junk" `Quick (fun () ->
        check bool "lowercase" true (Reg.of_name "rbx" = Some (Reg.RBX, Width.W64));
        check bool "junk" true (Reg.of_name "RXX" = None));
    tc "special registers" `Quick (fun () ->
        check bool "sandbox" true (Reg.equal Reg.sandbox_base Reg.R14);
        check bool "stack" true (Reg.equal Reg.stack_pointer Reg.RSP);
        check int "pool size" 4 (List.length Reg.gen_pool));
  ]

(* --- Cond ------------------------------------------------------------ *)

let cond_tests =
  [
    tc "negate is an involution" `Quick (fun () ->
        List.iter
          (fun c -> check bool "double negate" true (Cond.equal c (Cond.negate (Cond.negate c))))
          Cond.all);
    tc "negate differs" `Quick (fun () ->
        List.iter
          (fun c -> check bool "differs" false (Cond.equal c (Cond.negate c)))
          Cond.all);
    tc "suffix roundtrip" `Quick (fun () ->
        List.iter
          (fun c ->
            match Cond.of_suffix (Cond.suffix c) with
            | Some c' -> check bool "roundtrip" true (Cond.equal c c')
            | None -> Alcotest.failf "unparsed %s" (Cond.suffix c))
          Cond.all);
    tc "aliases" `Quick (fun () ->
        check bool "E=Z" true (Cond.of_suffix "E" = Some Cond.Z);
        check bool "NAE=B" true (Cond.of_suffix "nae" = Some Cond.B);
        check bool "junk" true (Cond.of_suffix "QQ" = None));
    tc "sixteen conditions" `Quick (fun () ->
        check int "count" 16 (List.length Cond.all));
  ]

(* --- Operand ---------------------------------------------------------- *)

let operand_tests =
  [
    tc "printing" `Quick (fun () ->
        let p op = Format.asprintf "%a" Operand.pp op in
        check string "reg" "EBX" (p (Operand.reg ~w:Width.W32 Reg.RBX));
        check string "imm" "42" (p (Operand.imm 42));
        check string "mem"
          "qword ptr [R14 + RAX]"
          (p (Operand.sandbox Reg.RAX));
        check string "mem disp"
          "byte ptr [R14 + RCX + 35]"
          (p (Operand.sandbox ~w:Width.W8 ~disp:35 Reg.RCX));
        check string "scaled"
          "qword ptr [RAX + RBX*4 + 8]"
          (p (Operand.mem ~base:Reg.RAX ~index:Reg.RBX ~scale:4 ~disp:8 ())));
    tc "bad scale rejected" `Quick (fun () ->
        Alcotest.check_raises "scale 3" (Invalid_argument "Operand.mem: scale 3")
          (fun () -> ignore (Operand.mem ~scale:3 ())));
    tc "regs_read" `Quick (fun () ->
        check int "mem regs" 2
          (List.length (Operand.regs_read (Operand.sandbox Reg.RAX)));
        check int "imm regs" 0 (List.length (Operand.regs_read (Operand.imm 1))));
    tc "width" `Quick (fun () ->
        check bool "imm none" true (Operand.width (Operand.imm 3) = None);
        check bool "mem w8" true
          (Operand.width (Operand.sandbox ~w:Width.W8 Reg.RAX) = Some Width.W8));
  ]

(* --- Instruction ------------------------------------------------------- *)

let i_add = Instruction.binop Opcode.Add (Operand.reg Reg.RAX) (Operand.imm 1)

let instruction_tests =
  [
    tc "validate accepts common shapes" `Quick (fun () ->
        let ok i =
          match Instruction.validate i with
          | Ok () -> ()
          | Error e -> Alcotest.failf "rejected %s: %s" (Instruction.to_string i) e
        in
        ok i_add;
        ok (Instruction.mov (Operand.sandbox Reg.RBX) (Operand.reg Reg.RCX));
        ok (Instruction.jcc Cond.Z "somewhere");
        ok (Instruction.div (Operand.reg ~w:Width.W32 Reg.RCX));
        ok (Instruction.cmov Cond.A (Operand.reg Reg.RAX) (Operand.reg Reg.RBX));
        ok (Instruction.setcc Cond.S (Operand.reg ~w:Width.W8 Reg.RAX));
        ok Instruction.ret;
        ok Instruction.lfence);
    tc "validate rejects bad shapes" `Quick (fun () ->
        let bad i = check bool (Instruction.to_string i) true (Result.is_error (Instruction.validate i)) in
        bad (Instruction.binop Opcode.Add (Operand.imm 1) (Operand.imm 2));
        bad (Instruction.binop Opcode.Add (Operand.sandbox Reg.RAX) (Operand.sandbox Reg.RBX));
        bad (Instruction.binop Opcode.Mov (Operand.reg ~w:Width.W32 Reg.RAX) (Operand.reg ~w:Width.W64 Reg.RBX));
        bad (Instruction.div (Operand.reg ~w:Width.W8 Reg.RCX));
        bad (Instruction.setcc Cond.Z (Operand.reg Reg.RAX));
        bad (Instruction.make (Opcode.Jcc Cond.Z)));
    tc "loads/stores classification" `Quick (fun () ->
        let l i = Instruction.loads i and s i = Instruction.stores i in
        let rmw = Instruction.binop Opcode.Sub (Operand.sandbox Reg.RAX) (Operand.imm 1) in
        check bool "rmw loads" true (l rmw);
        check bool "rmw stores" true (s rmw);
        let load = Instruction.mov (Operand.reg Reg.RBX) (Operand.sandbox Reg.RAX) in
        check bool "load loads" true (l load);
        check bool "load !stores" false (s load);
        let store = Instruction.mov (Operand.sandbox Reg.RAX) (Operand.reg Reg.RBX) in
        check bool "store !loads" false (l store);
        check bool "store stores" true (s store);
        let cmp_mem = Instruction.binop Opcode.Cmp (Operand.sandbox Reg.RAX) (Operand.imm 0) in
        check bool "cmp loads" true (l cmp_mem);
        check bool "cmp !stores" false (s cmp_mem);
        check bool "ret loads" true (l Instruction.ret);
        check bool "call stores" true (s (Instruction.call "f"));
        check bool "add r,r neither" false (l i_add || s i_add));
    tc "regs_read/written" `Quick (fun () ->
        let store = Instruction.mov (Operand.sandbox Reg.RAX) (Operand.reg Reg.RBX) in
        check bool "store reads RAX(addr) RBX(data) R14(base)" true
          (List.sort compare (Instruction.regs_read store)
          = List.sort compare [ Reg.RAX; Reg.RBX; Reg.R14 ]);
        check int "store writes none" 0 (List.length (Instruction.regs_written store));
        let div = Instruction.div (Operand.reg Reg.RCX) in
        check bool "div reads rax rdx rcx" true (List.length (Instruction.regs_read div) = 3);
        check bool "div writes rax rdx" true (List.length (Instruction.regs_written div) = 2);
        let cmov = Instruction.cmov Cond.Z (Operand.reg Reg.RAX) (Operand.reg Reg.RBX) in
        check bool "cmov does not read dst reg" true
          (not (List.mem Reg.RAX (Instruction.regs_read cmov))));
    tc "printing with lock and labels" `Quick (fun () ->
        let locked =
          Instruction.make ~lock:true
            ~operands:[ Operand.sandbox ~w:Width.W8 Reg.RAX; Operand.imm 35 ]
            Opcode.Sub
        in
        check string "lock sub" "LOCK SUB byte ptr [R14 + RAX], 35"
          (Instruction.to_string locked);
        check string "jns" "JNS .bb1" (Instruction.to_string (Instruction.jcc Cond.NS "bb1")));
  ]

(* --- Program ------------------------------------------------------------ *)

let sample_program =
  Program.make
    [
      Program.block "bb0" [ i_add; Instruction.jcc Cond.NS "bb2" ];
      Program.block "bb1" [ Instruction.nop ];
      Program.block "bb2" [ Instruction.nop ];
    ]

let program_tests =
  [
    tc "flatten resolves labels" `Quick (fun () ->
        let f = Program.flatten_exn sample_program in
        check int "length" 4 (Array.length f.Program.code);
        check int "jcc target" 3 f.Program.target.(1);
        check int "no target" (-1) f.Program.target.(0));
    tc "flatten rejects bad labels" `Quick (fun () ->
        let dup = Program.make [ Program.block "a" []; Program.block "a" [] ] in
        check bool "duplicate" true (Result.is_error (Program.flatten dup));
        let undef = Program.make [ Program.block "a" [ Instruction.jmp "nope" ] ] in
        check bool "undefined" true (Result.is_error (Program.flatten undef)));
    tc "validate rejects backward branches" `Quick (fun () ->
        let loop =
          Program.make
            [
              Program.block "a" [ Instruction.nop ];
              Program.block "b" [ Instruction.jmp "a" ];
            ]
        in
        check bool "loop rejected" true (Result.is_error (Program.validate loop));
        check bool "dag ok" true (Result.is_ok (Program.validate sample_program)));
    tc "map_insts and counters" `Quick (fun () ->
        check int "insts" 4 (Program.num_insts sample_program);
        check int "blocks" 3 (Program.num_blocks sample_program);
        let doubled = Program.map_insts (fun i -> [ i; i ]) sample_program in
        check int "doubled" 8 (Program.num_insts doubled);
        let erased = Program.map_insts (fun _ -> []) sample_program in
        check int "erased" 0 (Program.num_insts erased));
  ]

(* --- Catalog -------------------------------------------------------------- *)

let catalog_tests =
  [
    tc "subset sizes are plausible and ordered" `Quick (fun () ->
        let ar = Catalog.count [ Catalog.AR ] in
        let ar_mem = Catalog.count [ Catalog.AR; Catalog.MEM ] in
        let ar_mem_var = Catalog.count [ Catalog.AR; Catalog.MEM; Catalog.VAR ] in
        let with_cb = Catalog.count [ Catalog.AR; Catalog.CB ] in
        check bool "AR large" true (ar > 150);
        check bool "MEM adds" true (ar_mem > ar + 100);
        check int "VAR adds 12" (ar_mem + 12) ar_mem_var;
        check int "CB adds 17" (ar + 17) with_cb);
    tc "subsets are idempotent unions" `Quick (fun () ->
        check int "dup subset" (Catalog.count [ Catalog.AR ])
          (Catalog.count [ Catalog.AR; Catalog.AR ]));
    tc "body specs exclude terminators" `Quick (fun () ->
        let body = Catalog.body_specs [ Catalog.AR; Catalog.CB ] in
        check bool "no terminators" true
          (List.for_all (fun s -> not s.Catalog.terminator) body));
    tc "all specs validate when instantiated plainly" `Quick (fun () ->
        (* every non-terminator spec must describe a shape the emulator
           accepts *)
        let instantiate (s : Catalog.spec) =
          let operand pos kind =
            let w =
              match (pos, s.Catalog.src_width) with
              | 1, Some ws -> ws
              | _ -> s.Catalog.width
            in
            match kind with
            | Catalog.KReg -> Operand.reg ~w Reg.RAX
            | Catalog.KImm -> Operand.imm 1
            | Catalog.KMem -> Operand.sandbox ~w Reg.RBX
            | Catalog.KCl -> Operand.Reg (Reg.RCX, Width.W8)
          in
          Instruction.make ~operands:(List.mapi operand s.Catalog.shape) s.Catalog.opcode
        in
        List.iter
          (fun s ->
            match Instruction.validate (instantiate s) with
            | Ok () -> ()
            | Error e -> Alcotest.failf "spec %s: %s" (Catalog.spec_name s) e)
          (Catalog.body_specs [ Catalog.AR; Catalog.MEM; Catalog.VAR ]));
    tc "spec names are unique within the full catalog" `Quick (fun () ->
        let names =
          List.map Catalog.spec_name
            (Catalog.specs
               [ Catalog.AR; Catalog.MEM; Catalog.VAR; Catalog.CB; Catalog.IND ])
        in
        let dups =
          List.filter
            (fun n -> List.length (List.filter (String.equal n) names) > 1)
            (List.sort_uniq compare names)
        in
        if dups <> [] then
          Alcotest.failf "duplicate spec names: %s" (String.concat ", " dups));
    tc "subset_of_string" `Quick (fun () ->
        check bool "ar" true (Catalog.subset_of_string "ar" = Ok Catalog.AR);
        check bool "bad" true (Result.is_error (Catalog.subset_of_string "xyz")));
  ]

(* --- Asm parser -------------------------------------------------------------- *)

let parser_tests =
  [
    tc "single instructions" `Quick (fun () ->
        let ok s =
          match Asm_parser.parse_instruction s with
          | Ok i -> i
          | Error e -> Alcotest.failf "parse %S: %s" s e
        in
        check string "add" "ADD RAX, 1" (Instruction.to_string (ok "ADD RAX, 1"));
        check string "lock sub"
          "LOCK SUB byte ptr [R14 + RAX], 35"
          (Instruction.to_string (ok "LOCK SUB byte ptr [R14 + RAX], 35"));
        check string "binary imm" "AND RAX, 4032"
          (Instruction.to_string (ok "AND RAX, 0b111111000000"));
        check string "jns" "JNS .bb1" (Instruction.to_string (ok "JNS .bb1"));
        check string "cmov mem"
          "CMOVBE RCX, qword ptr [R14 + RDX]"
          (Instruction.to_string (ok "CMOVBE RCX, qword ptr [R14 + RDX]")));
    tc "rejects garbage" `Quick (fun () ->
        check bool "mnemonic" true (Result.is_error (Asm_parser.parse_instruction "FROB RAX"));
        check bool "operand" true (Result.is_error (Asm_parser.parse_instruction "ADD RAX, @"));
        check bool "shape" true (Result.is_error (Asm_parser.parse_instruction "ADD 1, RAX")));
    tc "program with labels and comments" `Quick (fun () ->
        let text =
          "# a comment\n.bb0:\n  AND RAX, 4032\n  JNS .bb1\n  JMP .bb2\n.bb1:  ; \
           tail\n  NOP\n.bb2:\n  NOP\n"
        in
        match Asm_parser.parse_program text with
        | Error e -> Alcotest.fail e
        | Ok p ->
            check int "blocks" 3 (Program.num_blocks p);
            check int "insts" 5 (Program.num_insts p);
            check bool "valid" true (Result.is_ok (Program.validate p)));
    tc "roundtrip printed programs" `Quick (fun () ->
        let roundtrip p =
          match Asm_parser.parse_program (Program.to_string p) with
          | Ok p' -> check string "text equal" (Program.to_string p) (Program.to_string p')
          | Error e -> Alcotest.failf "roundtrip: %s" e
        in
        roundtrip sample_program);
  ]

let () =
  Alcotest.run "isa"
    [
      ("reg", reg_tests);
      ("cond", cond_tests);
      ("operand", operand_tests);
      ("instruction", instruction_tests);
      ("program", program_tests);
      ("catalog", catalog_tests);
      ("asm_parser", parser_tests);
    ]
