(* Unit tests for the architectural emulator: word ops, flag semantics
   (checked against Intel SDM vectors), memory, state and instruction
   semantics. *)

open Revizor_isa
open Revizor_emu

let check = Alcotest.check
let tc = Alcotest.test_case

(* Alcotest testable shorthands *)
let bool = Alcotest.bool
let int = Alcotest.int
let int64 = Alcotest.int64
let string = Alcotest.string
let _ = (bool, int, int64, string)

(* --- Word ----------------------------------------------------------- *)

let word_tests =
  [
    tc "zext" `Quick (fun () ->
        check int64 "w8" 0xFFL (Word.zext Width.W8 0x1FFL);
        check int64 "w32" 0xFFFF_FFFFL (Word.zext Width.W32 (-1L));
        check int64 "w64" (-1L) (Word.zext Width.W64 (-1L)));
    tc "sext" `Quick (fun () ->
        check int64 "w8 neg" (-1L) (Word.sext Width.W8 0xFFL);
        check int64 "w8 pos" 0x7FL (Word.sext Width.W8 0x7FL);
        check int64 "w32 neg" (-2L) (Word.sext Width.W32 0xFFFF_FFFEL));
    tc "sign_set" `Quick (fun () ->
        check bool "w8" true (Word.sign_set Width.W8 0x80L);
        check bool "w8 clear" false (Word.sign_set Width.W8 0x7FL);
        check bool "w64" true (Word.sign_set Width.W64 Int64.min_int));
    tc "parity of low byte" `Quick (fun () ->
        check bool "0x00" true (Word.parity_even 0L);
        check bool "0x03" true (Word.parity_even 3L);
        check bool "0x01" false (Word.parity_even 1L);
        check bool "ignores high byte" false (Word.parity_even 0x301L));
    tc "merge" `Quick (fun () ->
        let old = 0x1122_3344_5566_7788L in
        check int64 "w8" 0x1122_3344_5566_77FFL (Word.merge Width.W8 ~old 0xFFL);
        check int64 "w16" 0x1122_3344_5566_FFFFL (Word.merge Width.W16 ~old 0xFFFFL);
        check int64 "w32 zeroes upper" 0xFFFF_FFFFL
          (Word.merge Width.W32 ~old 0xFFFF_FFFFL);
        check int64 "w64" (-1L) (Word.merge Width.W64 ~old (-1L)));
    tc "unsigned comparisons" `Quick (fun () ->
        check bool "ult" true (Word.ult 1L 2L);
        check bool "ult wrap" true (Word.ult 1L (-1L));
        check bool "ule eq" true (Word.ule 5L 5L));
  ]

(* --- Flags ------------------------------------------------------------ *)

let flag_vec name (got : Flags.t) ~cf ~zf ~sf ~o_f ~af ~pf =
  check bool (name ^ " cf") cf got.Flags.cf;
  check bool (name ^ " zf") zf got.Flags.zf;
  check bool (name ^ " sf") sf got.Flags.sf;
  check bool (name ^ " of") o_f got.Flags.o_f;
  check bool (name ^ " af") af got.Flags.af;
  check bool (name ^ " pf") pf got.Flags.pf

let flags_tests =
  [
    tc "ADD vectors (SDM)" `Quick (fun () ->
        flag_vec "0xFF+1"
          (Flags.after_add Width.W8 ~a:0xFFL ~b:1L ~carry_in:false ~r:0L)
          ~cf:true ~zf:true ~sf:false ~o_f:false ~af:true ~pf:true;
        flag_vec "0x7F+1"
          (Flags.after_add Width.W8 ~a:0x7FL ~b:1L ~carry_in:false ~r:0x80L)
          ~cf:false ~zf:false ~sf:true ~o_f:true ~af:true ~pf:false;
        flag_vec "5+3"
          (Flags.after_add Width.W8 ~a:5L ~b:3L ~carry_in:false ~r:8L)
          ~cf:false ~zf:false ~sf:false ~o_f:false ~af:false ~pf:false;
        flag_vec "max64+1"
          (Flags.after_add Width.W64 ~a:(-1L) ~b:1L ~carry_in:false ~r:0L)
          ~cf:true ~zf:true ~sf:false ~o_f:false ~af:true ~pf:true);
    tc "ADC carry chains" `Quick (fun () ->
        flag_vec "0xFF+0+c"
          (Flags.after_add Width.W8 ~a:0xFFL ~b:0L ~carry_in:true ~r:0L)
          ~cf:true ~zf:true ~sf:false ~o_f:false ~af:true ~pf:true;
        let f = Flags.after_add Width.W64 ~a:5L ~b:0L ~carry_in:true ~r:6L in
        check bool "no spurious carry" false f.Flags.cf);
    tc "SUB vectors (SDM)" `Quick (fun () ->
        flag_vec "0-1"
          (Flags.after_sub Width.W8 ~a:0L ~b:1L ~borrow_in:false ~r:0xFFL)
          ~cf:true ~zf:false ~sf:true ~o_f:false ~af:true ~pf:true;
        flag_vec "0x80-1"
          (Flags.after_sub Width.W8 ~a:0x80L ~b:1L ~borrow_in:false ~r:0x7FL)
          ~cf:false ~zf:false ~sf:false ~o_f:true ~af:true ~pf:false;
        flag_vec "5-5-borrow"
          (Flags.after_sub Width.W64 ~a:5L ~b:5L ~borrow_in:true ~r:(-1L))
          ~cf:true ~zf:false ~sf:true ~o_f:false ~af:true ~pf:true);
    tc "logic clears CF/OF/AF" `Quick (fun () ->
        flag_vec "and"
          (Flags.after_logic Width.W8 ~r:0x80L)
          ~cf:false ~zf:false ~sf:true ~o_f:false ~af:false ~pf:false);
    tc "INC/DEC preserve CF" `Quick (fun () ->
        let carry = { Flags.empty with Flags.cf = true } in
        let f = Flags.after_inc Width.W8 carry ~a:0xFFL ~r:0L in
        check bool "inc keeps cf" true f.Flags.cf;
        check bool "inc zf" true f.Flags.zf;
        check bool "inc of" false f.Flags.o_f;
        let f = Flags.after_dec Width.W8 Flags.empty ~a:0L ~r:0xFFL in
        check bool "dec keeps cf clear" false f.Flags.cf;
        check bool "dec sf" true f.Flags.sf);
    tc "NEG" `Quick (fun () ->
        let f = Flags.after_neg Width.W8 ~a:0L ~r:0L in
        check bool "neg 0 cf" false f.Flags.cf;
        check bool "neg 0 zf" true f.Flags.zf;
        let f = Flags.after_neg Width.W8 ~a:1L ~r:0xFFL in
        check bool "neg 1 cf" true f.Flags.cf);
    tc "IMUL overflow flag" `Quick (fun () ->
        let f = Flags.after_imul Width.W16 ~full_overflow:true ~r:0L in
        check bool "cf" true f.Flags.cf;
        check bool "of" true f.Flags.o_f);
    tc "shift vectors" `Quick (fun () ->
        let f =
          Flags.after_shift Width.W8 Flags.empty ~op:`Shl ~a:0x81L ~count:1 ~r:0x02L
        in
        check bool "shl cf = bit out" true f.Flags.cf;
        check bool "shl of" true f.Flags.o_f;
        let f =
          Flags.after_shift Width.W8 Flags.empty ~op:`Shr ~a:0x01L ~count:1 ~r:0L
        in
        check bool "shr cf" true f.Flags.cf;
        check bool "shr zf" true f.Flags.zf;
        check bool "shr of = msb(a)" false f.Flags.o_f;
        let f =
          Flags.after_shift Width.W8 Flags.empty ~op:`Sar ~a:0x80L ~count:1 ~r:0xC0L
        in
        check bool "sar cf" false f.Flags.cf;
        check bool "sar of" false f.Flags.o_f;
        let before = { Flags.empty with Flags.cf = true; zf = true } in
        let f = Flags.after_shift Width.W8 before ~op:`Shl ~a:1L ~count:0 ~r:1L in
        check bool "count 0 untouched" true (Flags.equal before f));
    tc "eval_cond coherence" `Quick (fun () ->
        let f = { Flags.empty with Flags.zf = true; cf = true } in
        check bool "Z" true (Flags.eval_cond f Cond.Z);
        check bool "BE" true (Flags.eval_cond f Cond.BE);
        check bool "A" false (Flags.eval_cond f Cond.A);
        List.iter
          (fun c ->
            check bool "negation" true
              (Flags.eval_cond f c = not (Flags.eval_cond f (Cond.negate c))))
          Cond.all);
    tc "to_word/of_word roundtrip" `Quick (fun () ->
        let f = { Flags.cf = true; pf = false; af = true; zf = false; sf = true; o_f = true } in
        check bool "roundtrip" true (Flags.equal f (Flags.of_word (Flags.to_word f)));
        check int64 "bit positions (CF=0, OF=11)" 0x801L
          (Flags.to_word { f with Flags.af = false; sf = false }));
  ]

let flat_of insts = Program.flatten_exn (Program.of_insts insts)

let run_insts ?before insts =
  let s = State.create () in
  (match before with Some f -> f s | None -> ());
  let outcomes = Semantics.run (flat_of insts) s in
  (s, outcomes)

let r64 = Operand.reg
let imm = Operand.imm

(* --- Table-driven SDM vectors ------------------------------------------- *)

(* Each row: width, a, b, expected result and full flag set, checked
   against the Intel SDM's worked examples. This complements the
   hand-picked cases above with systematic coverage across widths. *)

let add_vectors =
  (* (width, a, b, result, cf, zf, sf, of, af, pf) *)
  [
    (Width.W8, 0x00L, 0x00L, 0x00L, false, true, false, false, false, true);
    (Width.W8, 0x0FL, 0x01L, 0x10L, false, false, false, false, true, false);
    (Width.W8, 0xF0L, 0x20L, 0x10L, true, false, false, false, false, false);
    (Width.W8, 0x80L, 0x80L, 0x00L, true, true, false, true, false, true);
    (Width.W16, 0x7FFFL, 0x0001L, 0x8000L, false, false, true, true, true, true);
    (Width.W16, 0xFFFFL, 0x0001L, 0x0000L, true, true, false, false, true, true);
    (Width.W32, 0x7FFF_FFFFL, 0x7FFF_FFFFL, 0xFFFF_FFFEL, false, false, true, true, true, false);
    (Width.W32, 0xFFFF_FFFFL, 0xFFFF_FFFFL, 0xFFFF_FFFEL, true, false, true, false, true, false);
    (Width.W64, 0x7FFF_FFFF_FFFF_FFFFL, 1L, 0x8000_0000_0000_0000L, false, false, true, true, true, true);
    (Width.W64, -1L, -1L, -2L, true, false, true, false, true, false);
  ]

let sub_vectors =
  [
    (Width.W8, 0x10L, 0x01L, 0x0FL, false, false, false, false, true, true);
    (Width.W8, 0x00L, 0x80L, 0x80L, true, false, true, true, false, false);
    (Width.W8, 0x7FL, 0xFFL, 0x80L, true, false, true, true, false, false);
    (Width.W16, 0x8000L, 0x0001L, 0x7FFFL, false, false, false, true, true, true);
    (Width.W32, 0x0000_0001L, 0x0000_0002L, 0xFFFF_FFFFL, true, false, true, false, true, true);
    (Width.W64, 5L, 5L, 0L, false, true, false, false, false, true);
  ]

let vector_tests =
  let run_add (w, a, b, r_exp, cf, zf, sf, o_f, af, pf) =
    let r = Word.zext w (Int64.add a b) in
    check int64
      (Printf.sprintf "add %s result" (Width.to_string w))
      r_exp r;
    flag_vec
      (Printf.sprintf "add %s 0x%Lx+0x%Lx" (Width.to_string w) a b)
      (Flags.after_add w ~a ~b ~carry_in:false ~r)
      ~cf ~zf ~sf ~o_f ~af ~pf
  in
  let run_sub (w, a, b, r_exp, cf, zf, sf, o_f, af, pf) =
    let r = Word.zext w (Int64.sub a b) in
    check int64
      (Printf.sprintf "sub %s result" (Width.to_string w))
      r_exp r;
    flag_vec
      (Printf.sprintf "sub %s 0x%Lx-0x%Lx" (Width.to_string w) a b)
      (Flags.after_sub w ~a ~b ~borrow_in:false ~r)
      ~cf ~zf ~sf ~o_f ~af ~pf
  in
  [
    tc "ADD vector table" `Quick (fun () -> List.iter run_add add_vectors);
    tc "SUB vector table" `Quick (fun () -> List.iter run_sub sub_vectors);
    tc "shift vector table" `Quick (fun () ->
        (* (op, w, a, count, result, cf) *)
        let rows =
          [
            (`Shl, Width.W8, 0x40L, 1, 0x80L, false);
            (`Shl, Width.W8, 0x40L, 2, 0x00L, true);
            (`Shl, Width.W16, 0x8000L, 1, 0x0000L, true);
            (`Shr, Width.W8, 0x80L, 7, 0x01L, false);
            (`Shr, Width.W8, 0x80L, 8, 0x00L, true);
            (`Sar, Width.W8, 0x80L, 7, 0xFFL, false);
            (`Sar, Width.W8, 0xFFL, 4, 0xFFL, true);
            (`Shl, Width.W64, 1L, 63, Int64.min_int, false);
            (`Shr, Width.W64, Int64.min_int, 63, 1L, false);
          ]
        in
        List.iter
          (fun (op, w, a, count, r_exp, cf) ->
            let bits = Width.bits w in
            let r =
              match op with
              | `Shl -> if count >= bits then 0L else Word.zext w (Int64.shift_left (Word.zext w a) count)
              | `Shr -> if count >= bits then 0L else Int64.shift_right_logical (Word.zext w a) count
              | `Sar -> Word.zext w (Int64.shift_right (Word.sext w a) (min count 63))
            in
            check int64 "shift result" r_exp r;
            let f = Flags.after_shift w Flags.empty ~op ~a ~count ~r in
            check bool
              (Printf.sprintf "shift cf (count %d)" count)
              cf f.Flags.cf)
          rows);
    tc "division vector table" `Quick (fun () ->
        (* unsigned: (w, rdx, rax, divisor, quotient, remainder) *)
        let rows =
          [
            (Width.W16, 0L, 100L, 7L, 14L, 2L);
            (Width.W32, 0L, 0xFFFF_FFFFL, 0x10L, 0x0FFF_FFFFL, 0xFL);
            (Width.W32, 2L, 0L, 4L, 0x8000_0000L, 0L);
            (Width.W64, 0L, 1_000_000L, 997L, 1003L, 9L);
          ]
        in
        List.iter
          (fun (w, rdx, rax, divisor, q, rem) ->
            let s, _ =
              run_insts
                ~before:(fun s ->
                  State.set_reg s Reg.RDX Width.W64 rdx;
                  State.set_reg s Reg.RAX Width.W64 rax;
                  State.set_reg s Reg.RCX Width.W64 divisor)
                [ Instruction.div (Operand.reg ~w Reg.RCX) ]
            in
            check int64 "quotient" q (State.get_reg s Reg.RAX w);
            check int64 "remainder" rem (State.get_reg s Reg.RDX w))
          rows);
    tc "signed division vector table" `Quick (fun () ->
        (* (w, dividend (sign-extended into rdx:rax), divisor, q, rem) *)
        let rows =
          [
            (Width.W32, -100L, 7L, -14L, -2L);
            (Width.W32, 100L, -7L, -14L, 2L);
            (Width.W32, -100L, -7L, 14L, -2L);
            (Width.W64, -1_000_000L, 997L, -1003L, -9L);
          ]
        in
        List.iter
          (fun (w, dividend, divisor, q, rem) ->
            let bits = Width.bits w in
            let s, _ =
              run_insts
                ~before:(fun s ->
                  let low = Word.zext w dividend in
                  let high =
                    if bits = 64 then Int64.shift_right dividend 63
                    else Word.zext w (Int64.shift_right dividend bits)
                  in
                  State.set_reg s Reg.RAX Width.W64 low;
                  State.set_reg s Reg.RDX Width.W64 high;
                  State.set_reg s Reg.RCX Width.W64 (Word.zext w divisor))
                [ Instruction.idiv (Operand.reg ~w Reg.RCX) ]
            in
            check int64 "quotient" (Word.zext w q) (State.get_reg s Reg.RAX w);
            check int64 "remainder" (Word.zext w rem) (State.get_reg s Reg.RDX w))
          rows);
  ]

(* --- Memory ------------------------------------------------------------ *)

let memory_tests =
  [
    tc "little endian" `Quick (fun () ->
        let m = Memory.create () in
        Memory.write m ~addr:Layout.sandbox_base Width.W32 0x11223344L;
        check int "byte 0" 0x44 (Memory.read_byte m 0);
        check int "byte 3" 0x11 (Memory.read_byte m 3);
        check int64 "read w16" 0x3344L (Memory.read m ~addr:Layout.sandbox_base Width.W16));
    tc "faults outside sandbox" `Quick (fun () ->
        let m = Memory.create () in
        let boom addr w =
          match Memory.read m ~addr w with
          | exception Memory.Fault _ -> ()
          | _ -> Alcotest.failf "no fault at 0x%Lx" addr
        in
        boom 0L Width.W8;
        boom (Int64.sub Layout.sandbox_base 1L) Width.W8;
        boom (Int64.add Layout.sandbox_base (Int64.of_int Layout.sandbox_size)) Width.W8;
        (* last valid byte is fine; an 8-byte access straddling the end faults *)
        let last = Int64.add Layout.sandbox_base (Int64.of_int (Layout.sandbox_size - 1)) in
        check int64 "last byte" 0L (Memory.read m ~addr:last Width.W8);
        boom last Width.W64);
    tc "guard absorbs wide accesses at page end" `Quick (fun () ->
        let m = Memory.create () in
        let addr =
          Int64.add Layout.sandbox_base
            (Int64.of_int ((Layout.data_pages * Layout.page_size) - 1 + 63))
        in
        check int64 "read ok" 0L (Memory.read m ~addr Width.W8));
    tc "snapshot/restore" `Quick (fun () ->
        let m = Memory.create () in
        Memory.write m ~addr:Layout.sandbox_base Width.W64 42L;
        let snap = Memory.snapshot m in
        Memory.write m ~addr:Layout.sandbox_base Width.W64 7L;
        Memory.restore m snap;
        check int64 "restored" 42L (Memory.read m ~addr:Layout.sandbox_base Width.W64));
    tc "fill initializes data pages only" `Quick (fun () ->
        let m = Memory.create () in
        Memory.fill m ~f:(fun off -> off);
        check int "data byte" 255 (Memory.read_byte m 255);
        check int "guard byte" 0
          (Memory.read_byte m (Layout.data_pages * Layout.page_size)));
  ]

(* --- State ------------------------------------------------------------- *)

let state_tests =
  [
    tc "initial registers" `Quick (fun () ->
        let s = State.create () in
        check int64 "r14" Layout.sandbox_base (State.get_reg s Reg.R14 Width.W64);
        check int64 "rsp" Layout.stack_top (State.get_reg s Reg.RSP Width.W64);
        check int64 "rax" 0L (State.get_reg s Reg.RAX Width.W64));
    tc "sub-register writes" `Quick (fun () ->
        let s = State.create () in
        State.set_reg s Reg.RAX Width.W64 0x1122_3344_5566_7788L;
        State.set_reg s Reg.RAX Width.W8 0xFFL;
        check int64 "w8 merge" 0x1122_3344_5566_77FFL (State.get_reg s Reg.RAX Width.W64);
        State.set_reg s Reg.RAX Width.W32 1L;
        check int64 "w32 zeroes" 1L (State.get_reg s Reg.RAX Width.W64));
    tc "snapshot/restore full state" `Quick (fun () ->
        let s = State.create () in
        State.set_reg s Reg.RBX Width.W64 9L;
        s.State.flags <- { Flags.empty with Flags.zf = true };
        let snap = State.snapshot s in
        State.set_reg s Reg.RBX Width.W64 1L;
        s.State.flags <- Flags.empty;
        s.State.pc <- 7;
        Memory.write s.State.mem ~addr:Layout.sandbox_base Width.W8 5L;
        State.restore s snap;
        check int64 "reg" 9L (State.get_reg s Reg.RBX Width.W64);
        check bool "flags" true s.State.flags.Flags.zf;
        check int "pc" 0 s.State.pc;
        check int64 "mem" 0L (Memory.read s.State.mem ~addr:Layout.sandbox_base Width.W8));
  ]

(* --- Semantics ----------------------------------------------------------- *)

let semantics_tests =
  [
    tc "mov and arithmetic" `Quick (fun () ->
        let s, _ =
          run_insts
            [
              Instruction.mov (r64 Reg.RAX) (imm 40);
              Instruction.binop Opcode.Add (r64 Reg.RAX) (imm 2);
            ]
        in
        check int64 "rax" 42L (State.get_reg s Reg.RAX Width.W64);
        check bool "no zf" false s.State.flags.Flags.zf);
    tc "adc uses carry" `Quick (fun () ->
        let s, _ =
          run_insts
            [
              Instruction.mov (Operand.reg ~w:Width.W8 Reg.RAX) (imm 0xFF);
              Instruction.binop Opcode.Add (Operand.reg ~w:Width.W8 Reg.RAX) (imm 1);
              (* CF now set *)
              Instruction.binop Opcode.Adc (r64 Reg.RBX) (imm 0);
            ]
        in
        check int64 "rbx = carry" 1L (State.get_reg s Reg.RBX Width.W64));
    tc "memory RMW with lock prefix" `Quick (fun () ->
        let s, outcomes =
          run_insts
            [
              Instruction.make ~lock:true
                ~operands:[ Operand.sandbox ~w:Width.W8 Reg.RAX; imm 35 ]
                Opcode.Sub;
            ]
        in
        check int64 "mem" (Int64.of_int ((0 - 35) land 0xFF))
          (Memory.read s.State.mem ~addr:Layout.sandbox_base Width.W8);
        match outcomes with
        | [ o ] ->
            check int "two accesses" 2 (List.length o.Semantics.accesses);
            check bool "load then store" true
              (match o.Semantics.accesses with
              | [ { Semantics.kind = `Load; _ }; { Semantics.kind = `Store; _ } ] -> true
              | _ -> false)
        | _ -> Alcotest.fail "one outcome expected");
    tc "cmov always writes at 32 bits" `Quick (fun () ->
        let s, _ =
          run_insts
            ~before:(fun s -> State.set_reg s Reg.RAX Width.W64 (-1L))
            [
              Instruction.binop Opcode.Cmp (r64 Reg.RBX) (imm 1);
              (* RBX=0 < 1: B set, so BE true, A false *)
              Instruction.cmov Cond.A
                (Operand.reg ~w:Width.W32 Reg.RAX)
                (Operand.reg ~w:Width.W32 Reg.RCX);
            ]
        in
        (* condition false, but the 32-bit destination write still zeroes
           the upper half *)
        check int64 "upper zeroed" 0xFFFF_FFFFL (State.get_reg s Reg.RAX Width.W64));
    tc "setcc" `Quick (fun () ->
        let s, _ =
          run_insts
            [
              Instruction.binop Opcode.Cmp (r64 Reg.RAX) (imm 0);
              Instruction.setcc Cond.Z (Operand.reg ~w:Width.W8 Reg.RBX);
            ]
        in
        check int64 "rbx" 1L (State.get_reg s Reg.RBX Width.W64));
    tc "division by zero faults" `Quick (fun () ->
        match
          run_insts
            ~before:(fun s -> State.set_reg s Reg.RAX Width.W64 1L)
            [ Instruction.div (Operand.reg ~w:Width.W32 Reg.RCX) ]
        with
        | exception Semantics.Division_fault -> ()
        | _ -> Alcotest.fail "expected Division_fault (divisor 0)");
    tc "unsigned division ok" `Quick (fun () ->
        let s, _ =
          run_insts
            ~before:(fun s ->
              State.set_reg s Reg.RDX Width.W64 1L;
              State.set_reg s Reg.RAX Width.W64 4L;
              State.set_reg s Reg.RCX Width.W64 2L)
            [ Instruction.div (Operand.reg ~w:Width.W32 Reg.RCX) ]
        in
        (* dividend = (1 << 32) + 4 = 0x100000004; /2 = 0x80000002 rem 0 *)
        check int64 "quotient" 0x80000002L (State.get_reg s Reg.RAX Width.W32);
        check int64 "remainder" 0L (State.get_reg s Reg.RDX Width.W32));
    tc "division overflow faults" `Quick (fun () ->
        match
          run_insts
            ~before:(fun s ->
              State.set_reg s Reg.RDX Width.W64 1L;
              State.set_reg s Reg.RCX Width.W64 1L)
            [ Instruction.div (Operand.reg ~w:Width.W16 Reg.RCX) ]
        with
        | exception Semantics.Division_fault -> ()
        | _ -> Alcotest.fail "expected fault");
    tc "signed division" `Quick (fun () ->
        let s, _ =
          run_insts
            ~before:(fun s ->
              State.set_reg s Reg.RAX Width.W32 (Int64.of_int (-7));
              State.set_reg s Reg.RDX Width.W32 (-1L) (* sign extension *);
              State.set_reg s Reg.RCX Width.W64 2L)
            [ Instruction.idiv (Operand.reg ~w:Width.W32 Reg.RCX) ]
        in
        check int64 "quotient -3" (Word.zext Width.W32 (-3L))
          (State.get_reg s Reg.RAX Width.W32);
        check int64 "remainder -1" (Word.zext Width.W32 (-1L))
          (State.get_reg s Reg.RDX Width.W32));
    tc "conditional jumps" `Quick (fun () ->
        let prog =
          Program.make
            [
              Program.block "a"
                [
                  Instruction.binop Opcode.Cmp (r64 Reg.RAX) (imm 0);
                  Instruction.jcc Cond.Z "c";
                ];
              Program.block "b" [ Instruction.mov (r64 Reg.RBX) (imm 1) ];
              Program.block "c" [ Instruction.mov (r64 Reg.RCX) (imm 2) ];
            ]
        in
        let flat = Program.flatten_exn prog in
        let s = State.create () in
        let outcomes = Semantics.run flat s in
        check int64 "skipped b" 0L (State.get_reg s Reg.RBX Width.W64);
        check int64 "ran c" 2L (State.get_reg s Reg.RCX Width.W64);
        check bool "taken recorded" true
          (List.exists (fun o -> o.Semantics.taken = Some true) outcomes));
    tc "call and ret through the stack" `Quick (fun () ->
        let prog =
          Program.make
            [
              Program.block "main" [ Instruction.call "f" ];
              Program.block "after"
                [ Instruction.mov (r64 Reg.RBX) (imm 1); Instruction.jmp "exit" ];
              Program.block "f"
                [ Instruction.mov (r64 Reg.RCX) (imm 2); Instruction.ret ];
              Program.block "exit" [];
            ]
        in
        let flat = Program.flatten_exn prog in
        let s = State.create () in
        ignore (Semantics.run flat s);
        check int64 "callee ran" 2L (State.get_reg s Reg.RCX Width.W64);
        check int64 "returned" 1L (State.get_reg s Reg.RBX Width.W64);
        check int64 "rsp restored" Layout.stack_top (State.get_reg s Reg.RSP Width.W64));
    tc "ret target is masked into code range" `Quick (fun () ->
        check int "mask wraps" 2 (Semantics.mask_code_index ~code_len:4 7L);
        check int "mask end" 4 (Semantics.mask_code_index ~code_len:4 4L);
        List.iter
          (fun v ->
            let idx = Semantics.mask_code_index ~code_len:4 v in
            check bool "in range" true (idx >= 0 && idx <= 4))
          [ -7L; -1L; Int64.min_int; Int64.max_int; 0L ]);
    tc "indirect jump" `Quick (fun () ->
        let s, _ =
          run_insts
            ~before:(fun s -> State.set_reg s Reg.RAX Width.W64 3L)
            [
              Instruction.jmp_ind Reg.RAX;
              Instruction.mov (r64 Reg.RBX) (imm 1);
              Instruction.mov (r64 Reg.RCX) (imm 2);
              Instruction.mov (r64 Reg.RDX) (imm 3);
            ]
        in
        check int64 "skipped rbx" 0L (State.get_reg s Reg.RBX Width.W64);
        check int64 "ran rdx" 3L (State.get_reg s Reg.RDX Width.W64));
    tc "run bounds dynamic loops" `Quick (fun () ->
        (* JMPI to self-index loops forever architecturally; max_steps
           bounds it *)
        let s = State.create () in
        State.set_reg s Reg.RAX Width.W64 0L;
        let flat = flat_of [ Instruction.jmp_ind Reg.RAX ] in
        let outcomes = Semantics.run ~max_steps:17 flat s in
        check int "bounded" 17 (List.length outcomes));
    tc "rotates" `Quick (fun () ->
        let s, _ =
          run_insts
            ~before:(fun s -> State.set_reg s Reg.RAX Width.W64 0x81L)
            [ Instruction.binop Opcode.Rol (Operand.reg ~w:Width.W8 Reg.RAX) (imm 1) ]
        in
        check int64 "rol 0x81,1" 0x03L (State.get_reg s Reg.RAX Width.W8);
        check bool "cf = rotated-in bit" true s.State.flags.Flags.cf;
        let s, _ =
          run_insts
            ~before:(fun s -> State.set_reg s Reg.RAX Width.W64 0x01L)
            [ Instruction.binop Opcode.Ror (Operand.reg ~w:Width.W8 Reg.RAX) (imm 1) ]
        in
        check int64 "ror 0x01,1" 0x80L (State.get_reg s Reg.RAX Width.W8);
        check bool "cf = msb" true s.State.flags.Flags.cf;
        (* rotates do not change ZF *)
        check bool "zf untouched" false s.State.flags.Flags.zf);
    tc "rotate by full width is identity" `Quick (fun () ->
        let s, _ =
          run_insts
            ~before:(fun s -> State.set_reg s Reg.RAX Width.W64 0xA5L)
            [ Instruction.binop Opcode.Rol (Operand.reg ~w:Width.W8 Reg.RAX) (imm 8) ]
        in
        check int64 "unchanged" 0xA5L (State.get_reg s Reg.RAX Width.W8));
    tc "movzx and movsx" `Quick (fun () ->
        let s, _ =
          run_insts
            ~before:(fun s -> State.set_reg s Reg.RBX Width.W64 0xFFL)
            [
              Instruction.binop Opcode.Movzx (r64 Reg.RAX)
                (Operand.reg ~w:Width.W8 Reg.RBX);
              Instruction.binop Opcode.Movsx (r64 Reg.RCX)
                (Operand.reg ~w:Width.W8 Reg.RBX);
            ]
        in
        check int64 "zx" 0xFFL (State.get_reg s Reg.RAX Width.W64);
        check int64 "sx" (-1L) (State.get_reg s Reg.RCX Width.W64));
    tc "movsx from memory" `Quick (fun () ->
        let s, _ =
          run_insts
            ~before:(fun s ->
              Memory.write s.State.mem ~addr:Layout.sandbox_base Width.W16 0x8000L)
            [
              Instruction.binop Opcode.Movsx
                (Operand.reg ~w:Width.W32 Reg.RAX)
                (Operand.mem ~w:Width.W16 ~base:Reg.R14 ());
            ]
        in
        (* 32-bit write zero-extends into the 64-bit container *)
        check int64 "sx16->32" 0xFFFF8000L (State.get_reg s Reg.RAX Width.W64));
    tc "xchg registers and memory" `Quick (fun () ->
        let s, outcomes =
          run_insts
            ~before:(fun s ->
              State.set_reg s Reg.RAX Width.W64 1L;
              State.set_reg s Reg.RBX Width.W64 2L;
              Memory.write s.State.mem ~addr:Layout.sandbox_base Width.W64 9L)
            [
              Instruction.binop Opcode.Xchg (r64 Reg.RAX) (r64 Reg.RBX);
              Instruction.binop Opcode.Xchg
                (Operand.mem ~base:Reg.R14 ())
                (r64 Reg.RBX);
            ]
        in
        check int64 "rax" 2L (State.get_reg s Reg.RAX Width.W64);
        check int64 "rbx <- mem" 9L (State.get_reg s Reg.RBX Width.W64);
        check int64 "mem <- old rbx" 1L
          (Memory.read s.State.mem ~addr:Layout.sandbox_base Width.W64);
        (* the memory form is a load + store *)
        match outcomes with
        | [ _; o ] -> check int "accesses" 2 (List.length o.Semantics.accesses)
        | _ -> Alcotest.fail "two outcomes");
    tc "shift by cl" `Quick (fun () ->
        let s, _ =
          run_insts
            ~before:(fun s ->
              State.set_reg s Reg.RAX Width.W64 1L;
              State.set_reg s Reg.RCX Width.W64 4L)
            [
              Instruction.binop Opcode.Shl (r64 Reg.RAX) (Operand.Reg (Reg.RCX, Width.W8));
            ]
        in
        check int64 "1<<4" 16L (State.get_reg s Reg.RAX Width.W64));
    tc "fences and nop do nothing" `Quick (fun () ->
        let s, outcomes =
          run_insts [ Instruction.lfence; Instruction.mfence; Instruction.nop ]
        in
        check int "three outcomes" 3 (List.length outcomes);
        check bool "state unchanged" true
          (State.equal_arch s (State.create ())));
  ]

let () =
  Alcotest.run "emu"
    [
      ("word", word_tests);
      ("flags", flags_tests);
      ("vectors", vector_tests);
      ("memory", memory_tests);
      ("state", state_tests);
      ("semantics", semantics_tests);
    ]
