#!/bin/sh
# Usage: check_regression.sh BASELINE.json CURRENT.json
#
# Guards the perf-smoke CI job: fails (exit 1) when the spectre-v1
# full-pipeline bechamel row of CURRENT is more than 25% slower than the
# same row in BASELINE (the checked-in BENCH_PR10.json). The 25% headroom
# absorbs shared-runner noise while still catching real regressions of
# the execution engine.
#
# Pure sh + awk so it runs anywhere CI does. The row's key appears in
# several blocks of the file (hardcoded "baseline", measured "current",
# derived "speedup"); only the value inside the "current" block — the
# one measured by that file's own run — is compared.
set -eu

if [ $# -ne 2 ]; then
  echo "usage: $0 BASELINE.json CURRENT.json" >&2
  exit 2
fi

key='full pipeline, spectre-v1'

extract() {
  awk -v key="$key" -F': ' '
    /"current": \{/ { incur = 1 }
    /"stages": \{/ { incur = 0 }
    incur && index($0, key) { v = $NF; gsub(/[," ]/, "", v); found = v }
    END { if (found == "") exit 1; print found }
  ' "$1"
}

base=$(extract "$1") || { echo "no spectre-v1 row in $1" >&2; exit 2; }
cur=$(extract "$2") || { echo "no spectre-v1 row in $2" >&2; exit 2; }

awk -v b="$base" -v c="$cur" 'BEGIN {
  limit = b * 1.25
  printf "spectre-v1 full pipeline: baseline %.3f ms, current %.3f ms, limit %.3f ms\n", b, c, limit
  if (c > limit) {
    printf "FAIL: regression > 25%% vs checked-in baseline\n"
    exit 1
  }
  printf "OK\n"
}'
