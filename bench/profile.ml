(* Component-level profiler for the per-test-case pipeline: wall-clock
   per iteration of each hot-path piece (state materialization/restore,
   CPU run, prime/probe, model run, measurement, full check). Used to
   find the PR 1 bottlenecks (DESIGN.md §6); keep it for future perf
   work — Bechamel only times whole workloads.

   PR 2 adds compiled-vs-interpreted rows: every consumer now takes a
   [Compiled.t], so the engine choice is made here by compiling the same
   flat program with [Compiled.of_flat] (decode-once closures) or
   [Compiled.interpreted] (every step through [Semantics.step]).

   PR 4: [--metrics] skips the micro-timing loops and instead runs a
   short non-detecting fuzz (Target 1 x CT-SEQ) with the metrics
   registry live, then prints the per-stage wall-time breakdown and the
   full registry — the same tables `revizor_cli fuzz --metrics-out`
   derives its JSON from. *)
open Revizor
open Revizor_uarch
module Metrics = Revizor_obs.Metrics

let time label n f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do f () done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-40s %8.3f us/iter (%d iters)\n%!" label (dt /. float n *. 1e6) n

let metrics_profile () =
  let seed = 1L in
  let budget = 200 in
  Printf.printf
    "Per-stage metrics profile: %d test cases, Target 1 x CT-SEQ (seed %Ld)\n%!"
    budget seed;
  let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target1 in
  Metrics.reset ();
  let t0 = Unix.gettimeofday () in
  let _, stats = Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases budget) in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let summary = Metrics.snapshot () in
  Printf.printf "\n%d test cases, %d inputs in %.2fs\n\n" stats.Fuzzer.test_cases
    stats.Fuzzer.inputs_tested elapsed_s;
  print_endline (Report.stage_table summary ~elapsed_s);
  print_newline ();
  print_endline (Report.metrics_table summary)

let () =
  if Array.exists (( = ) "--metrics") Sys.argv then (
    metrics_profile ();
    exit 0);
  let seed = 1L in
  let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target5 in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let prng = Prng.create ~seed in
  let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
  let g = Gadgets.spectre_v1 in
  let flat = Revizor_isa.Program.flatten_exn g.Gadgets.program in
  let compiled = Revizor_emu.Compiled.of_flat flat in
  let interp = Revizor_emu.Compiled.interpreted flat in
  let templates = Input.templates inputs in
  let scratch = Revizor_emu.State.create () in
  let input0 = List.hd inputs in
  time "Input.to_state" 2000 (fun () -> ignore (Input.to_state input0));
  time "State.copy_into" 20000 (fun () ->
      Revizor_emu.State.copy_into templates.(0) ~dst:scratch);
  time "Compiled.of_flat (decode once)" 2000 (fun () ->
      ignore (Revizor_emu.Compiled.of_flat flat));
  time "Cpu.run compiled (after restore)" 2000 (fun () ->
      Revizor_emu.State.copy_into templates.(0) ~dst:scratch;
      Cpu.run cpu compiled scratch);
  time "Cpu.run interpreted (after restore)" 2000 (fun () ->
      Revizor_emu.State.copy_into templates.(0) ~dst:scratch;
      Cpu.run cpu interp scratch);
  time "Cache.prime" 2000 (fun () -> Cache.prime (Cpu.cache cpu));
  time "prime+probe observe" 2000 (fun () ->
      ignore
        (Attack.observe cpu cfg.Fuzzer.executor.Executor.threat (fun () -> ())));
  time "observe+run" 2000 (fun () ->
      ignore
        (Attack.observe cpu cfg.Fuzzer.executor.Executor.threat (fun () ->
             Revizor_emu.State.copy_into templates.(0) ~dst:scratch;
             Cpu.run cpu compiled scratch)));
  time "Model.run compiled" 2000 (fun () ->
      ignore (Model.run Contract.ct_seq compiled input0));
  time "Model.run interpreted" 2000 (fun () ->
      ignore (Model.run Contract.ct_seq interp input0));
  let executor = Executor.create cpu cfg.Fuzzer.executor in
  time "Executor.measure 50 compiled" 20 (fun () ->
      ignore (Executor.measure ~templates executor compiled inputs));
  time "Executor.measure 50 interpreted" 20 (fun () ->
      ignore (Executor.measure ~templates executor interp inputs));
  time "check_test_case (compiled)" 20 (fun () ->
      ignore (Fuzzer.check_test_case cfg executor g.Gadgets.program inputs));
  let icfg = { cfg with Fuzzer.engine = Fuzzer.Interpreted } in
  time "check_test_case (interpreted)" 20 (fun () ->
      ignore (Fuzzer.check_test_case icfg executor g.Gadgets.program inputs))
