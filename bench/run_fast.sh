#!/bin/sh
# Smoke-mode benchmark run: skips the slow Tables 3-5, shortens the
# Bechamel quota and the throughput window, and writes the machine-
# readable before/after artifact (BENCH_PR10.json by default; override
# with REVIZOR_BENCH_JSON). Suitable for CI.
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
REVIZOR_BENCH_FAST=1 dune exec bench/main.exe "$@"
