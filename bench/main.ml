(* Benchmark harness: regenerates every table and evaluation result of the
   paper (Tables 2-5, §6.3-§6.6, §A.5.3, §A.6) with paper-vs-measured
   output, runs the design-choice ablations from DESIGN.md, and finishes
   with a Bechamel micro-benchmark suite measuring the unit cost of each
   table's workload.

   Environment:
     REVIZOR_BENCH_BUDGET   test cases per Table 3 cell   (default 300)
     REVIZOR_BENCH_RUNS     repetitions for Table 4       (default 5)
     REVIZOR_BENCH_SEED     master seed                   (default 1)
     REVIZOR_BENCH_FAST     set to skip the slow tables (smoke mode) *)

open Revizor
module Metrics = Revizor_obs.Metrics
module Telemetry = Revizor_obs.Telemetry

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let budget = env_int "REVIZOR_BENCH_BUDGET" 400
let runs = env_int "REVIZOR_BENCH_RUNS" 5
let seed = Int64.of_int (env_int "REVIZOR_BENCH_SEED" 1)
let fast = Sys.getenv_opt "REVIZOR_BENCH_FAST" <> None

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let timed label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%s took %.1fs]\n%!" label (Unix.gettimeofday () -. t0);
  r

(* --- Table 2: experimental setups ------------------------------------- *)

let print_table2 () =
  section "Table 2: experimental setups";
  List.iter (fun t -> Format.printf "%a@." Target.pp t) Target.all;
  Printf.printf "\nInstruction-set sizes (paper: AR=325, AR+MEM=678, AR+MEM+VAR=687,\nAR+CB=359, AR+MEM+CB=710, AR+MEM+CB+VAR=719):\n";
  let open Revizor_isa in
  List.iter
    (fun (name, subsets) ->
      Printf.printf "  %-16s %4d unique instruction variants\n" name
        (Catalog.count subsets))
    [
      ("AR", [ Catalog.AR ]);
      ("AR+MEM", [ Catalog.AR; Catalog.MEM ]);
      ("AR+MEM+VAR", [ Catalog.AR; Catalog.MEM; Catalog.VAR ]);
      ("AR+CB", [ Catalog.AR; Catalog.CB ]);
      ("AR+MEM+CB", [ Catalog.AR; Catalog.MEM; Catalog.CB ]);
      ("AR+MEM+CB+VAR", [ Catalog.AR; Catalog.MEM; Catalog.CB; Catalog.VAR ]);
    ]

(* --- Table 3 ------------------------------------------------------------ *)

let print_table3 () =
  section
    (Printf.sprintf "Table 3: contract violations (budget %d test cases/cell)"
       budget);
  let cells = timed "table 3" (fun () -> Experiments.table3 ~budget ~seed ()) in
  print_endline (Report.table3 cells);
  print_endline
    "\nLegend: V = violation detected (label, test cases to detection);\n\
     x = no violation within the budget; x* = skipped, a stronger contract\n\
     was already satisfied; 'gadget' = the -var leaks need a rare double\n\
     latency race, demonstrated on the section 6.3 gadget instead (the\n\
     paper's artifact notes the same irreproducibility)."

(* --- Table 4 ------------------------------------------------------------ *)

let print_table4 () =
  section (Printf.sprintf "Table 4: detection time (%d runs per cell)" runs);
  let cells = timed "table 4" (fun () -> Experiments.table4 ~runs ~seed ()) in
  print_endline (Report.table4 ~runs cells);
  print_endline
    "\nPaper (mean detection time over 10 runs): row None: V4 73m25s,\n\
     V1 4m51s, MDS 5m35s, LVI 7m40s; row V4-permitted: V1 3m48s, MDS\n\
     6m37s, LVI 3m06s; row V1-permitted: V4 140m42s, MDS 7m03s, LVI\n\
     3m22s. Shape to reproduce: V4-type detection is an order of magnitude\n\
     slower than the others, and contract-permitted leakage types do not\n\
     prevent detection of the unpermitted one."

(* --- Table 5 ------------------------------------------------------------ *)

let print_table5 () =
  let t5_runs = max 20 (runs * 6) in
  section
    (Printf.sprintf
       "Table 5: inputs to violation on hand-written gadgets (%d runs)" t5_runs);
  let rows = timed "table 5" (fun () -> Experiments.table5 ~runs:t5_runs ~seed ()) in
  print_endline (Report.table5 rows);
  print_endline
    "\nPaper (avg # inputs over 100 seeds): V1 6, V1.1 6, V1-masked 4,\n\
     V4 62, ret2spec 2, MDS-SB 2, MDS-LFB 12. Shape: every gadget is\n\
     detected with few inputs; V4 needs the most, ret2spec/MDS-SB the\n\
     fewest."

(* --- §6.3 novel variants -------------------------------------------------- *)

let gadget_check (g : Gadgets.t) contract target =
  match Experiments.check_gadget ~seed contract target g with
  | Some v ->
      Printf.printf "%-18s vs %-14s on %-28s VIOLATION (%s)\n" g.Gadgets.name
        (Contract.name contract)
        target.Target.uarch.Revizor_uarch.Uarch_config.name v.Violation.label
  | None ->
      Printf.printf "%-18s vs %-14s on %-28s compliant\n" g.Gadgets.name
        (Contract.name contract)
        target.Target.uarch.Revizor_uarch.Uarch_config.name

let print_variants () =
  section "Section 6.3: novel latency-race variants (Fig. 5)";
  gadget_check Gadgets.spectre_v1_var Contract.ct_cond Target.target6;
  gadget_check Gadgets.spectre_v1_var Contract.ct_cond_bpas Target.target6;
  gadget_check Gadgets.spectre_v4_var Contract.ct_bpas Target.target3;
  gadget_check Gadgets.spectre_v4_var Contract.ct_cond_bpas Target.target3;
  gadget_check Gadgets.spectre_v4_var Contract.ct_bpas Target.target4;
  print_endline
    "\nPaper: both variants violate contracts that permit their base\n\
     speculation type (the leaked signal is the operand-dependent division\n\
     latency); the V4 microcode patch also stops the V4 variant (Target 4)."

(* --- §6.4 / §6.6 ------------------------------------------------------------ *)

let print_assumption () =
  section "Section 6.4: do speculative stores modify the cache?";
  print_endline (Report.store_eviction (Experiments.store_eviction_check ~seed ()));
  print_endline
    "\nPaper: Skylake complies (stores modify the cache only at retire);\n\
     Coffee Lake violates — speculative stores DO modify the cache,\n\
     invalidating the STT/KLEESpectre assumption (predicted by CheckMate)."

let print_sensitivity () =
  section "Section 6.6: contract sensitivity (STT, Fig. 6)";
  print_endline (Report.sensitivity (Experiments.contract_sensitivity ~seed ()));
  print_endline
    "\nPaper: CT-SEQ flags both gadgets; ARCH-SEQ flags only Fig. 6b\n\
     (speculatively loaded data), matching what STT-style defences protect."

(* --- §A.5.3 throughput -------------------------------------------------------- *)

let print_throughput () =
  section "Appendix A.5.3: fuzzing throughput (non-detecting configuration)";
  (* Reset the registry so the stage breakdown below covers exactly this
     run, then snapshot it for the BENCH_PR7.json artifact. *)
  Metrics.reset ();
  let t0 = Unix.gettimeofday () in
  let t = Experiments.throughput ~seconds:(if fast then 2. else 10.) ~seed () in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let summary = Metrics.snapshot () in
  print_endline (Report.throughput t);
  Printf.printf "\nPer-stage breakdown (metrics registry):\n";
  print_endline (Report.stage_table summary ~elapsed_s);
  print_endline
    "\nPaper: >200 test cases/hour on real hardware (with 50 inputs x 50\n\
     measurement repetitions each); the simulated CPU is faster, the\n\
     relevant reproduction target is that the pipeline sustains a steady\n\
     test-case rate without detecting violations on the compliant target.";
  (t, summary, elapsed_s)

(* Domain scaling of the pipelined whole-pipeline loop (PR 7): the same
   non-detecting configuration across executor-domain counts. Results are
   bit-identical for every count (asserted by the resilience suite), so
   this table reports throughput only. On a single-core host the curve
   declines with domain count (domain spawn/DLS overhead, no extra cores
   to absorb it) — the parallel engine is a scaling surface for
   multi-core runs, not a single-thread win; the single-thread gains come
   from measurement memoization and the sparse input fill. *)
let print_domain_scaling () =
  section "PR 7: executor-domain scaling (same results at every count)";
  List.map
    (fun d ->
      let t = Experiments.throughput ~seconds:2.0 ~seed ~executor_domains:d () in
      Printf.printf "  %d domain(s): %5d test cases in %.1fs -> %9.0f tc/h\n%!"
        d t.Experiments.test_cases t.Experiments.seconds
        t.Experiments.cases_per_hour;
      (d, t))
    [ 1; 2; 4; 8 ]

(* --- Telemetry overhead (PR 4) ----------------------------------------- *)

(* Times the same full-pipeline workload with the telemetry sink disabled
   (the default: probes still count, spans are a single atomic load and
   skipped) and with a live buffer sink (every stage span rendered to
   JSONL). The PR 2 bechamel baselines above were measured before any
   instrumentation existed, so pipeline speedups of ~1.0x against them
   bound the disabled-mode counter overhead; this A/B bounds the
   additional cost of an enabled sink. *)
let telemetry_overhead () =
  section "Telemetry overhead (sink disabled vs enabled)";
  let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target5 in
  let cpu = Revizor_uarch.Cpu.create cfg.Fuzzer.uarch in
  let executor = Executor.create cpu cfg.Fuzzer.executor in
  let prng = Prng.create ~seed in
  let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
  let g = Gadgets.spectre_v1 in
  let iters = if fast then 30 else 100 in
  let run () =
    ignore (Fuzzer.check_test_case cfg executor g.Gadgets.program inputs)
  in
  let time_iters () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      run ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e3
  in
  (* Alternate the two modes over several rounds and keep the per-mode
     minimum: a single A-then-B pass confounds the comparison with
     warm-up and scheduling noise larger than the effect measured. *)
  let buf = Buffer.create 65536 in
  for _ = 1 to 5 do
    run ()
  done;
  let disabled_ms = ref infinity and enabled_ms = ref infinity in
  for _ = 1 to 3 do
    Telemetry.disable ();
    run ();
    disabled_ms := Float.min !disabled_ms (time_iters ());
    Telemetry.enable_buffer buf;
    Buffer.clear buf;
    run ();
    enabled_ms := Float.min !enabled_ms (time_iters ())
  done;
  Telemetry.disable ();
  let disabled_ms = !disabled_ms and enabled_ms = !enabled_ms in
  let overhead =
    if disabled_ms > 0. then (enabled_ms -. disabled_ms) /. disabled_ms else 0.
  in
  Printf.printf
    "full pipeline, spectre-v1 x CT-SEQ (%d iters):\n\
    \  sink disabled: %.3f ms/iter\n\
    \  sink enabled:  %.3f ms/iter (JSONL to buffer)\n\
    \  sink overhead: %+.1f%%\n"
    iters disabled_ms enabled_ms (100. *. overhead);
  (disabled_ms, enabled_ms, overhead)

(* --- Checkpoint overhead (PR 5) ---------------------------------------- *)

(* Runs a campaign with periodic checkpointing at the CLI's default
   cadence (a full state snapshot + atomic JSON write every 50 test
   cases, plus the final boundary checkpoint) and reports the wall-time
   share of the [stage.checkpoint] span, which brackets exactly the
   snapshot + serialization + write path. The span share is the right
   instrument here: the effect is ~1ms per checkpoint against a
   multi-second campaign, below the run-to-run noise an A/B timing of
   whole campaigns would have to overcome. The acceptance bar is <1%. *)
let checkpoint_overhead () =
  section "Checkpoint overhead (default cadence, span share)";
  let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target1 in
  let n_cases = if fast then 150 else 400 in
  let path = Filename.temp_file "revizor_bench_ckpt" ".json" in
  Metrics.reset ();
  let t0 = Unix.gettimeofday () in
  ignore
    (Fuzzer.fuzz cfg ~checkpoint_every:50
       ~on_checkpoint:(fun snap -> Campaign.save ~path cfg snap)
       ~budget:(Fuzzer.Test_cases n_cases));
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  (try Sys.remove path with Sys_error _ -> ());
  let calls, ckpt_ms =
    match
      List.find_opt
        (fun (st : Metrics.stage) -> st.Metrics.st_name = "checkpoint")
        (Metrics.stage_breakdown (Metrics.snapshot ()))
    with
    | Some st -> (st.Metrics.st_calls, float_of_int st.Metrics.st_total_ns /. 1e6)
    | None -> (0, 0.)
  in
  let overhead = if wall_ms > 0. then ckpt_ms /. wall_ms else 0. in
  Printf.printf
    "full campaign, %d test cases, checkpoint every 50:\n\
    \  campaign wall time:  %.1f ms\n\
    \  checkpoints written: %d (%.2f ms each, snapshot + atomic JSON write)\n\
    \  checkpoint share:    %.2f%%\n"
    n_cases wall_ms calls
    (if calls > 0 then ckpt_ms /. float_of_int calls else 0.)
    (100. *. overhead);
  (wall_ms, ckpt_ms, overhead)

(* --- Ablations ------------------------------------------------------------------ *)

let print_ablations () =
  section "Ablations (DESIGN.md section 5)";
  List.iter
    (fun a ->
      print_endline (Report.ablation a);
      print_newline ())
    [
      Experiments.ablation_priming ~seed ();
      Experiments.ablation_noise_filtering ~seed ();
      Experiments.ablation_equivalence ~seed ();
      Experiments.ablation_swap_check ~seed ();
      Experiments.ablation_feedback ~seed ();
    ];
  print_endline "input-entropy sweep (CH2):";
  print_endline (Report.entropy_sweep (Experiments.ablation_entropy ~seed ()));
  print_endline
    "\nspeculation-window sweep (V1 gadget vs CT-COND; paper footnote 3\n\
     sizes the window to the ROB):";
  List.iter
    (fun (w, violated) ->
      Printf.printf "  window %3d: %s\n" w
        (if violated then
           "VIOLATED (model explores less than the hardware speculates)"
         else "compliant"))
    (Experiments.ablation_speculation_window ~seed ())

(* --- Port-contention channel (extension) -------------------------------------------- *)

let print_port_channel () =
  section "Extension: port-contention side channel (paper §7 future work)";
  List.iter
    (fun (g, channel, violated) ->
      Printf.printf "%-18s via %-16s %s\n" g channel
        (if violated then "VIOLATION of CT-SEQ" else "compliant"))
    (Experiments.port_channel_demo ~seed ());
  print_endline
    "\nThe memory-free V1 gadget (a division-gated multiply chain on the\n\
     mispredicted path) is invisible to every cache attack but leaks\n\
     through per-port uop counts — demonstrating the executor's\n\
     extensibility to further channels, as the paper anticipates."

(* --- §A.6 note -------------------------------------------------------------------- *)

let print_a6 () =
  section "Appendix A.6: asymmetric store-bypass variant";
  print_endline
    "The A.6 counterexample needs two same-address loads to observe\n\
     DIFFERENT values inside one transient window (one bypassing the\n\
     store, the other receiving forwarded data). Our store-buffer model\n\
     resolves forwarding uniformly per transient episode, so both loads\n\
     observe the same stale value and the asymmetry cannot occur; this is\n\
     a documented substitution limit (DESIGN.md). The underlying\n\
     mechanism — a load bypassing a pending store — is reproduced by the\n\
     spectre-v4 gadget and Table 3's Target 2/3 rows."

(* --- Bechamel micro-benchmarks ------------------------------------------------------ *)

let bechamel_suite () =
  section "Bechamel: unit cost of each table's workload";
  let open Bechamel in
  let open Toolkit in
  let mk_pipeline_test name contract target (g : Gadgets.t) =
    let cfg = Target.fuzzer_config ~seed contract target in
    let cpu = Revizor_uarch.Cpu.create cfg.Fuzzer.uarch in
    let executor = Executor.create cpu cfg.Fuzzer.executor in
    let prng = Prng.create ~seed in
    let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Fuzzer.check_test_case cfg executor g.Gadgets.program inputs)))
  in
  let gen_test =
    let prng = Prng.create ~seed in
    Test.make ~name:"table3: generate+instrument one test case"
      (Staged.stage (fun () ->
           ignore (Generator.generate prng Generator.default_cfg)))
  in
  let model_test =
    let prng = Prng.create ~seed in
    let prog = Generator.generate prng Generator.default_cfg in
    let compiled = Revizor_emu.Compiled.of_program_exn prog in
    let input = Input.generate prng ~entropy:2 in
    Test.make ~name:"table3: one contract trace (model)"
      (Staged.stage (fun () ->
           ignore (Model.run Contract.ct_cond compiled input)))
  in
  let tests =
    Test.make_grouped ~name:"revizor"
      [
        gen_test;
        model_test;
        mk_pipeline_test "table3/4: full pipeline, spectre-v1 x CT-SEQ"
          Contract.ct_seq Target.target5 Gadgets.spectre_v1;
        mk_pipeline_test "table5: full pipeline, spectre-v4 x CT-SEQ"
          Contract.ct_seq Target.target2 Gadgets.spectre_v4;
        mk_pipeline_test "sec 6.4: full pipeline, spec-store-eviction"
          Contract.ct_cond_no_spec_store Target.target8
          Gadgets.spec_store_eviction;
        mk_pipeline_test "sec 6.6: full pipeline, stt-speculative x ARCH-SEQ"
          Contract.arch_seq Target.target5 Gadgets.stt_speculative;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if fast then 0.2 else 1.0))
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ t ] -> rows := (name, t /. 1e6) :: !rows
      | _ -> ())
    results;
  let rows = List.sort compare !rows in
  List.iter
    (fun (name, ms) -> Printf.printf "%-55s %10.3f ms/run\n" name ms)
    rows;
  rows

(* --- Monitor overhead (PR 8) ------------------------------------------- *)

(* The monitor's campaign cost is one [Monitor.poll] per test case —
   with no client connected, a single non-blocking [accept] (a few µs).
   As with the checkpoint measurement above, the effect is far below
   the run-to-run noise an A/B timing of whole campaigns would have to
   overcome (order-controlled A/B experiments showed ±20% swings on a
   ~0.3% effect), so this measures the added work directly: the
   per-poll cost over a large idle-poll loop, against the per-test-case
   wall time of a monitored campaign. The acceptance bar is <1%. *)
let monitor_overhead () =
  section "Monitor overhead (endpoint attached, no client)";
  let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target1 in
  let n_cases = if fast then 150 else 400 in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rvz-bench-%d.sock" (Unix.getpid ()))
  in
  let mon = Revizor_obs.Monitor.create ~path:sock in
  (* Per-poll cost on an idle endpoint (the campaign steady state). *)
  let polls = 200_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to polls do
    Revizor_obs.Monitor.poll mon
  done;
  let poll_us = (Unix.gettimeofday () -. t0) /. float_of_int polls *. 1e6 in
  (* Wall time of a monitored campaign (one poll per test case). *)
  let campaign () =
    let t0 = Unix.gettimeofday () in
    ignore
      (Fuzzer.fuzz ~monitor:mon ~heartbeat_every:0 cfg
         ~budget:(Fuzzer.Test_cases n_cases));
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  ignore (campaign ());
  let campaign_ms = ref infinity in
  for _ = 1 to 3 do
    campaign_ms := Float.min !campaign_ms (campaign ())
  done;
  Revizor_obs.Monitor.close mon;
  let campaign_ms = !campaign_ms in
  let poll_total_ms = poll_us *. float_of_int n_cases /. 1e3 in
  let overhead = if campaign_ms > 0. then poll_total_ms /. campaign_ms else 0. in
  Printf.printf
    "full campaign, %d test cases, poll every test case:\n\
    \  idle poll:      %.2f us each (non-blocking accept, no client)\n\
    \  campaign wall:  %.1f ms -> %d polls cost %.2f ms\n\
    \  monitor share:  %.3f%%\n"
    n_cases poll_us campaign_ms n_cases poll_total_ms (100. *. overhead);
  (campaign_ms, poll_us, overhead)

(* --- Coverage-atlas overhead (PR 9) ------------------------------------- *)

(* A/B of the same campaign with atlas collection on (features harvested
   from every measurement, registered into the accumulator at each
   commit) vs forced off via the global switch (the executor's event
   collection is unconditional either way; the switch gates only the
   harvest). A speculation-heavy compliant pair — target 5 vs CT-COND,
   where every test case mispredicts branches — so the harvest path runs
   on essentially every measurement. Alternating min-of-rounds, as for
   the telemetry sink. The acceptance bar is <1%. *)
let ucoverage_overhead () =
  section "Coverage-atlas overhead (collection on vs off)";
  let cfg = Target.fuzzer_config ~seed Contract.ct_cond Target.target5 in
  let n_cases = if fast then 100 else 250 in
  let campaign ~atlas () =
    let t0 = Unix.gettimeofday () in
    (if atlas then
       ignore
         (Fuzzer.fuzz ~ucoverage:(Ucoverage.create ()) cfg
            ~budget:(Fuzzer.Test_cases n_cases))
     else begin
       Ucoverage.set_enabled false;
       Fun.protect
         ~finally:(fun () -> Ucoverage.set_enabled true)
         (fun () -> ignore (Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases n_cases)))
     end);
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  ignore (campaign ~atlas:true ());
  let on_ms = ref infinity and off_ms = ref infinity in
  for _ = 1 to 4 do
    off_ms := Float.min !off_ms (campaign ~atlas:false ());
    on_ms := Float.min !on_ms (campaign ~atlas:true ())
  done;
  let on_ms = !on_ms and off_ms = !off_ms in
  let overhead = if off_ms > 0. then (on_ms -. off_ms) /. off_ms else 0. in
  Printf.printf
    "full campaign, %d test cases, speculation-heavy target x CT-COND:\n\
    \  collection off: %.1f ms\n\
    \  collection on:  %.1f ms (harvest + atlas registration)\n\
    \  atlas overhead: %+.2f%%\n"
    n_cases off_ms on_ms (100. *. overhead);
  (off_ms, on_ms, overhead)

(* --- Fleet orchestration overhead (PR 10) -------------------------------- *)

(* What a campaign pays for running through the fleet stack (forked
   1-worker fleet: ledger, leases, heartbeats, shard result, central
   merge) instead of the plain in-process fuzz loop. Target 1 x CT-SEQ
   never violates, so a shard burns its whole budget and both sides do
   identical fuzzing work.

   The cost is per-shard FIXED — one fork plus its copy-on-write
   faults, the child's cold start, one result write, one merge commit —
   and independent of the shard budget (the orchestrator sleeps in
   select between heartbeats; its per-tick work is microseconds). A
   direct A/B of realistic multi-second campaigns cannot resolve a <2%
   bar on this host: CPU seconds inflate with the host's frequency
   phases, which flap by ~10% on second timescales, swamping the
   signal (readings swung from -5% to +6% run to run). So the estimate
   is two-scale: (1) the fixed cost is the median of paired
   back-to-back A/B differences at a SMALL budget, where many pairs
   fit in a short window and pairing cancels the phase; (2) the
   denominator is a realistically sized shard's plain CPU time, where
   phase noise only perturbs the ratio by its own few percent.
   Measured in CPU time via [Unix.times], which folds the reaped
   worker into [tms_cutime]/[tms_cstime]. The acceptance bar is <2%. *)
let fleet_overhead () =
  section "Fleet orchestration overhead (1-worker fleet vs plain fuzz loop)";
  let module Fl = Revizor_fleet.Ledger in
  let module Fo = Revizor_fleet.Orchestrator in
  let cpu_ms () =
    let t = Unix.times () in
    1e3
    *. (t.Unix.tms_utime +. t.Unix.tms_stime +. t.Unix.tms_cutime
      +. t.Unix.tms_cstime)
  in
  let seed = 21L and n_inputs = 30 in
  let small_budget = 500 and shard_budget = 2500 in
  let spec_of budget =
    {
      (Fl.default_spec ~target:"Target 1" ~contract:"CT-SEQ" ~seeds:[ seed ]) with
      Fl.sp_budget = budget;
      sp_n_inputs = n_inputs;
      sp_workers = 1;
      sp_checkpoint_every = 0;
    }
  in
  let plain budget =
    (* Compact before each timed run (both sides): the fleet side forks,
       and copy-on-write faults against a large benchmark heap would
       bill the parent's garbage to the fleet. *)
    Gc.compact ();
    let t0 = cpu_ms () in
    let cfg =
      Target.fuzzer_config ~seed ~n_inputs Contract.ct_seq Target.target1
    in
    ignore
      (Fuzzer.fuzz ~ucoverage:(Ucoverage.create ()) cfg
         ~budget:(Fuzzer.Test_cases budget));
    cpu_ms () -. t0
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "revizor-bench-fleet-%d" (Unix.getpid ()))
  in
  let fleet budget =
    rm_rf dir;
    Gc.compact ();
    let t0 = cpu_ms () in
    (match Fo.run ~dir (spec_of budget) with
    | Ok Fo.Completed -> ()
    | Ok Fo.Interrupted -> failwith "fleet bench: interrupted"
    | Error e -> failwith ("fleet bench: " ^ e));
    cpu_ms () -. t0
  in
  ignore (plain small_budget);
  ignore (fleet small_budget);
  let pairs =
    List.init 12 (fun i ->
        if i mod 2 = 0 then (
          let p = plain small_budget in
          let f = fleet small_budget in
          f -. p)
        else
          let f = fleet small_budget in
          let p = plain small_budget in
          f -. p)
  in
  let median xs =
    let a = List.sort compare xs in
    List.nth a (List.length a / 2)
  in
  let fixed_ms = median pairs in
  let p1 = plain shard_budget in
  let p2 = plain shard_budget in
  let plain_ms = Float.min p1 p2 in
  rm_rf dir;
  let fleet_ms = plain_ms +. fixed_ms in
  let overhead = if plain_ms > 0. then fixed_ms /. plain_ms else 0. in
  Printf.printf
    "per-shard fixed cost (median of 12 paired %d-tc A/B runs; fork +\n\
     COW + child cold-start + result write + merge): %+.1f ms\n\
     plain fuzz loop, one %d-tc shard: %.1f ms (CPU time, worker\n\
     folded into the fleet side via times())\n\
    \  fleet overhead:   %+.2f%%\n"
    small_budget fixed_ms shard_budget plain_ms (100. *. overhead);
  (plain_ms, fleet_ms, overhead)

(* --- BENCH_PR10.json machine-readable artifact --------------------------- *)

(* PR 7 numbers, measured on this machine at the PR 7 commit with the
   same Bechamel configuration (seed 1, FAST-mode quota 0.2s) and a
   FAST-mode (2s) throughput run (the "current" section of
   BENCH_PR7.json). Kept hardcoded so every later run reports its
   speedup against the same fixed reference — PR 8 (monitor endpoint,
   heartbeats, GC gauges) and PR 9 (coverage atlas) both add
   observability and must hold these numbers rather than improve them:
   the acceptance bar is <1% overhead for each new collector and ~1.0x
   on every bechamel row. *)
let pr7_baseline_ms =
  [
    ("revizor/table3: generate+instrument one test case", 0.063);
    ("revizor/table3: one contract trace (model)", 0.011);
    ("revizor/table3/4: full pipeline, spectre-v1 x CT-SEQ", 1.219);
    ("revizor/table5: full pipeline, spectre-v4 x CT-SEQ", 1.006);
    ("revizor/sec 6.4: full pipeline, spec-store-eviction", 1.918);
    ("revizor/sec 6.6: full pipeline, stt-speculative x ARCH-SEQ", 1.608);
  ]

(* (seconds, test_cases, cases_per_hour) of the PR 7 throughput run *)
let pr7_baseline_throughput = (2.0, 672, 1208852.)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_bench_json ~rows ~(throughput : Experiments.throughput)
    ~(stage_summary : Metrics.summary) ~stage_elapsed_s ~domain_scaling
    ~(telemetry : float * float * float) ~(checkpoint : float * float * float)
    ~(monitor : float * float * float) ~(ucoverage : float * float * float)
    ~(fleet : float * float * float) =
  let path =
    Option.value
      (Sys.getenv_opt "REVIZOR_BENCH_JSON")
      ~default:"BENCH_PR10.json"
  in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let add_ms_table indent kvs =
    List.iteri
      (fun i (name, ms) ->
        add "%s\"%s\": %.3f%s\n" indent (json_escape name) ms
          (if i = List.length kvs - 1 then "" else ","))
      kvs
  in
  let bl_sec, bl_tc, bl_cph = pr7_baseline_throughput in
  add "{\n";
  add "  \"pr\": 10,\n";
  add "  \"seed\": %Ld,\n" seed;
  add "  \"fast\": %b,\n" fast;
  add "  \"baseline\": {\n";
  add "    \"bechamel_ms_per_run\": {\n";
  add_ms_table "      " pr7_baseline_ms;
  add "    },\n";
  add
    "    \"throughput\": { \"seconds\": %.1f, \"test_cases\": %d, \
     \"cases_per_hour\": %.0f }\n"
    bl_sec bl_tc bl_cph;
  add "  },\n";
  add "  \"current\": {\n";
  add "    \"bechamel_ms_per_run\": {\n";
  add_ms_table "      " rows;
  add "    },\n";
  add
    "    \"throughput\": { \"seconds\": %.1f, \"test_cases\": %d, \
     \"inputs\": %d, \"cases_per_hour\": %.0f }\n"
    throughput.Experiments.seconds throughput.Experiments.test_cases
    throughput.Experiments.inputs throughput.Experiments.cases_per_hour;
  add "  },\n";
  (* Per-stage wall-time breakdown of the throughput run, from the
     metrics registry (PR 4). *)
  let stages = Metrics.stage_breakdown stage_summary in
  let wall_ns = stage_elapsed_s *. 1e9 in
  let accounted_ns =
    List.fold_left (fun acc st -> acc + st.Metrics.st_total_ns) 0 stages
  in
  add "  \"stages\": {\n";
  List.iteri
    (fun i (st : Metrics.stage) ->
      add
        "    \"%s\": { \"calls\": %d, \"total_ns\": %d, \"share\": %.4f }%s\n"
        (json_escape st.Metrics.st_name)
        st.Metrics.st_calls st.Metrics.st_total_ns
        (if wall_ns > 0. then float_of_int st.Metrics.st_total_ns /. wall_ns
         else 0.)
        (if i = List.length stages - 1 then "" else ","))
    stages;
  add "  },\n";
  add "  \"accounted_share\": %.4f,\n"
    (if wall_ns > 0. then float_of_int accounted_ns /. wall_ns else 0.);
  add "  \"domain_scaling\": [\n";
  List.iteri
    (fun i (d, (t : Experiments.throughput)) ->
      add
        "    { \"domains\": %d, \"test_cases\": %d, \"cases_per_hour\": %.0f \
         }%s\n"
        d t.Experiments.test_cases t.Experiments.cases_per_hour
        (if i = List.length domain_scaling - 1 then "" else ","))
    domain_scaling;
  add "  ],\n";
  let tel_disabled, tel_enabled, tel_overhead = telemetry in
  add
    "  \"telemetry\": { \"sink_disabled_ms\": %.3f, \"sink_enabled_ms\": \
     %.3f, \"sink_overhead\": %.4f },\n"
    tel_disabled tel_enabled tel_overhead;
  let ck_wall, ck_ms, ck_overhead = checkpoint in
  add
    "  \"checkpoint\": { \"campaign_ms\": %.3f, \"checkpoint_ms\": %.3f, \
     \"overhead\": %.4f },\n"
    ck_wall ck_ms ck_overhead;
  let mon_campaign, mon_poll_us, mon_overhead = monitor in
  add
    "  \"monitor\": { \"campaign_ms\": %.3f, \"poll_us\": %.3f, \
     \"overhead\": %.4f },\n"
    mon_campaign mon_poll_us mon_overhead;
  let uc_off, uc_on, uc_overhead = ucoverage in
  add
    "  \"ucoverage\": { \"collection_off_ms\": %.3f, \"collection_on_ms\": \
     %.3f, \"overhead\": %.4f },\n"
    uc_off uc_on uc_overhead;
  let fl_plain, fl_fleet, fl_overhead = fleet in
  add
    "  \"fleet\": { \"plain_cpu_ms\": %.3f, \"fleet_cpu_ms\": %.3f, \
     \"overhead\": %.4f },\n"
    fl_plain fl_fleet fl_overhead;
  add "  \"speedup\": {\n";
  let speedups =
    List.filter_map
      (fun (name, ms) ->
        match List.assoc_opt name pr7_baseline_ms with
        | Some base when ms > 0. -> Some (name, base /. ms)
        | _ -> None)
      rows
  in
  List.iteri
    (fun i (name, x) ->
      add "    \"%s\": %.2f%s\n" (json_escape name) x
        (if i = List.length speedups - 1 then "" else ","))
    speedups;
  add "  }\n";
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\n[wrote %s]\n%!" path

let () =
  Printf.printf "Revizor reproduction benchmark harness (seed %Ld%s)\n%!" seed
    (if fast then ", FAST mode" else "");
  (* Must run before any section that spawns domains: OCaml 5 forbids
     Unix.fork once another domain has ever been created in the
     process, and the fleet forks its workers. *)
  let fleet = fleet_overhead () in
  print_table2 ();
  if not fast then begin
    print_table3 ();
    print_table4 ();
    print_table5 ()
  end
  else print_endline "\n[REVIZOR_BENCH_FAST: skipping Tables 3-5]";
  print_variants ();
  print_assumption ();
  print_sensitivity ();
  let throughput, stage_summary, stage_elapsed_s = print_throughput () in
  let domain_scaling = print_domain_scaling () in
  print_port_channel ();
  print_ablations ();
  print_a6 ();
  let telemetry = telemetry_overhead () in
  let checkpoint = checkpoint_overhead () in
  let monitor = monitor_overhead () in
  let ucoverage = ucoverage_overhead () in
  let rows = bechamel_suite () in
  write_bench_json ~rows ~throughput ~stage_summary ~stage_elapsed_s
    ~domain_scaling ~telemetry ~checkpoint ~monitor ~ucoverage ~fleet;
  print_endline "\nDone."
