(* End-to-end tests: the full MRT pipeline against the paper's expected
   outcomes — gadget × contract × target (Table 3 shape), §6.4, §6.6,
   fuzzing detection, the false-positive filters and the postprocessor. *)

open Revizor_isa
open Revizor_uarch
open Revizor

let check = Alcotest.check
let tc = Alcotest.test_case

(* Alcotest testable shorthands *)
let bool = Alcotest.bool
let int = Alcotest.int
let int64 = Alcotest.int64
let string = Alcotest.string
let _ = (bool, int, int64, string)

let pipeline ?(seed = 42L) ?(n_inputs = 50) contract target (g : Gadgets.t) =
  let cfg = Target.fuzzer_config ~seed contract target in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let executor = Executor.create cpu cfg.Fuzzer.executor in
  let prng = Prng.create ~seed:7L in
  let inputs = Input.generate_many prng ~entropy:2 ~n:n_inputs in
  match Fuzzer.check_test_case cfg executor g.Gadgets.program inputs with
  | Ok v -> v
  | Error e -> Alcotest.failf "%s faulted: %s" g.Gadgets.name e

let expect_violation ?seed ?n_inputs ~label contract target g =
  match pipeline ?seed ?n_inputs contract target g with
  | Some v ->
      check string
        (Printf.sprintf "%s vs %s label" g.Gadgets.name (Contract.name contract))
        label v.Violation.label
  | None ->
      Alcotest.failf "%s vs %s: expected a violation" g.Gadgets.name
        (Contract.name contract)

let expect_compliant ?seed ?n_inputs contract target g =
  match pipeline ?seed ?n_inputs contract target g with
  | None -> ()
  | Some v ->
      Alcotest.failf "%s vs %s: unexpected violation %s" g.Gadgets.name
        (Contract.name contract) (Violation.summary v)

(* --- Table 3 shape on gadgets ------------------------------------------ *)

let table3_shape_tests =
  [
    tc "V1 violates CT-SEQ, complies with CT-COND" `Quick (fun () ->
        expect_violation ~label:"V1" Contract.ct_seq Target.target5 Gadgets.spectre_v1;
        expect_violation ~label:"V1" Contract.ct_bpas Target.target5 Gadgets.spectre_v1;
        expect_compliant Contract.ct_cond Target.target5 Gadgets.spectre_v1;
        expect_compliant Contract.ct_cond_bpas Target.target5 Gadgets.spectre_v1);
    tc "V1.1 violates CT-SEQ" `Quick (fun () ->
        expect_violation ~label:"V1" Contract.ct_seq Target.target5 Gadgets.spectre_v1_1);
    tc "V4 violates CT-SEQ, complies with CT-BPAS and under the patch" `Quick
      (fun () ->
        expect_violation ~label:"V4" Contract.ct_seq Target.target2 Gadgets.spectre_v4;
        expect_compliant Contract.ct_bpas Target.target2 Gadgets.spectre_v4;
        (* Target 4 = V4 patch on *)
        expect_compliant Contract.ct_seq Target.target4 Gadgets.spectre_v4);
    tc "V1-var violates even CT-COND (latency race, §6.3)" `Quick (fun () ->
        expect_violation ~label:"V1-var" Contract.ct_cond Target.target6
          Gadgets.spectre_v1_var;
        expect_violation ~label:"V1-var" Contract.ct_cond_bpas Target.target6
          Gadgets.spectre_v1_var);
    tc "V4-var violates even CT-BPAS (latency race, §6.3)" `Quick (fun () ->
        expect_violation ~label:"V4-var" Contract.ct_bpas Target.target3
          Gadgets.spectre_v4_var);
    tc "ret2spec violates CT-SEQ with very few inputs" `Quick (fun () ->
        expect_violation ~label:"ret2spec" ~n_inputs:4 Contract.ct_seq Target.target5
          Gadgets.ret2spec);
    tc "V2 (BTB injection, extension) violates CT-SEQ" `Quick (fun () ->
        expect_violation ~label:"V2" Contract.ct_seq Target.target5
          Gadgets.spectre_v2);
    tc "port channel sees the memory-free V1 (extension)" `Quick (fun () ->
        match Experiments.port_channel_demo () with
        | [ (_, _, pp_blind); (_, _, port_sees); (_, _, pp_v1) ] ->
            check bool "prime+probe blind to v1-ports" false pp_blind;
            check bool "port channel detects v1-ports" true port_sees;
            check bool "prime+probe still sees plain v1" true pp_v1
        | _ -> Alcotest.fail "three results expected");
    tc "MDS on Skylake with assists (Target 7)" `Quick (fun () ->
        expect_violation ~label:"MDS" Contract.ct_seq Target.target7 Gadgets.mds_lfb;
        expect_violation ~label:"MDS" Contract.ct_seq Target.target7 Gadgets.mds_sb;
        expect_violation ~label:"MDS" Contract.ct_cond_bpas Target.target7
          Gadgets.mds_lfb);
    tc "MDS patch stops fill-buffer leaks (Target 8)" `Quick (fun () ->
        expect_compliant Contract.ct_seq Target.target8 Gadgets.mds_lfb;
        expect_compliant Contract.ct_seq Target.target8 Gadgets.mds_sb);
    tc "LVI-Null on the MDS-patched part only" `Quick (fun () ->
        expect_violation ~label:"LVI-Null" Contract.ct_seq Target.target8
          Gadgets.lvi_null;
        expect_compliant Contract.ct_seq Target.target7 Gadgets.lvi_null);
    tc "AR-only target is compliant (Target 1 baseline)" `Quick (fun () ->
        let cfg = Target.fuzzer_config ~seed:3L Contract.ct_seq Target.target1 in
        match Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 40) with
        | Fuzzer.No_violation, stats ->
            check int "no candidates survive" 0
              (stats.Fuzzer.candidates - stats.Fuzzer.dismissed_by_swap
             - stats.Fuzzer.dismissed_by_nesting)
        | Fuzzer.Violation v, _ ->
            Alcotest.failf "false positive on Target 1: %s" (Violation.summary v));
  ]

(* --- §6.4 / §6.6 ---------------------------------------------------------- *)

let coffee_pp =
  {
    Target.target8 with
    Target.threat = Attack.prime_probe;
    subsets = [ Catalog.AR; Catalog.MEM; Catalog.CB ];
    mem_pages = 1;
  }

let assumption_tests =
  [
    tc "§6.4: speculative store eviction on Coffee Lake only" `Quick (fun () ->
        expect_violation ~label:"spec-store-eviction"
          Contract.ct_cond_no_spec_store coffee_pp Gadgets.spec_store_eviction;
        expect_compliant Contract.ct_cond_no_spec_store Target.target5
          Gadgets.spec_store_eviction;
        (* plain CT-COND permits the exposure, so no violation anywhere *)
        expect_compliant Contract.ct_cond coffee_pp Gadgets.spec_store_eviction);
    tc "§6.6: ARCH-SEQ distinguishes the STT gadgets" `Quick (fun () ->
        expect_violation ~label:"V1" Contract.ct_seq Target.target5
          Gadgets.stt_nonspeculative;
        expect_compliant Contract.arch_seq Target.target5 Gadgets.stt_nonspeculative;
        expect_violation ~label:"V1" Contract.ct_seq Target.target5
          Gadgets.stt_speculative;
        expect_violation ~label:"V1" Contract.arch_seq Target.target5
          Gadgets.stt_speculative);
    tc "experiments driver agrees (§6.4)" `Quick (fun () ->
        match Experiments.store_eviction_check () with
        | [ sky; cl ] ->
            check bool "skylake compliant" false sky.Experiments.violated;
            check bool "coffee lake violated" true cl.Experiments.violated
        | _ -> Alcotest.fail "two results expected");
    tc "experiments driver agrees (§6.6)" `Quick (fun () ->
        let r = Experiments.contract_sensitivity () in
        let find g c = List.exists (fun (g', c', v) -> g' = g && c' = c && v) r in
        check bool "6a ct-seq" true (find "stt-nonspeculative" "CT-SEQ");
        check bool "6a arch-seq" false (find "stt-nonspeculative" "ARCH-SEQ");
        check bool "6b ct-seq" true (find "stt-speculative" "CT-SEQ");
        check bool "6b arch-seq" true (find "stt-speculative" "ARCH-SEQ"));
  ]

(* --- Fuzzing ------------------------------------------------------------------ *)

let fuzz_tests =
  [
    tc "random fuzzing finds V1 on Target 5" `Slow (fun () ->
        let cfg = Target.fuzzer_config ~seed:1L Contract.ct_seq Target.target5 in
        match Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 300) with
        | Fuzzer.Violation v, stats ->
            check string "label" "V1" v.Violation.label;
            check bool "within budget" true (stats.Fuzzer.test_cases <= 300)
        | Fuzzer.No_violation, _ -> Alcotest.fail "V1 not found in 300 test cases");
    tc "fuzzing is deterministic per seed" `Slow (fun () ->
        let run () =
          let cfg = Target.fuzzer_config ~seed:11L Contract.ct_seq Target.target5 in
          match Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 150) with
          | Fuzzer.Violation v, stats ->
              (Some v.Violation.label, stats.Fuzzer.test_cases)
          | Fuzzer.No_violation, stats -> (None, stats.Fuzzer.test_cases)
        in
        let a = run () and b = run () in
        check bool "same outcome" true (a = b));
    tc "minimal inputs to violation are small (Table 5 shape)" `Quick (fun () ->
        match
          Experiments.minimal_inputs ~seed:21L Contract.ct_seq Target.target5
            Gadgets.ret2spec
        with
        | Some n -> check bool "tiny" true (n <= 4)
        | None -> Alcotest.fail "ret2spec not detected");
  ]

(* --- Parallel model stage: pool size must not change results ------------------- *)

let parallel_tests =
  [
    tc "ctraces_par pool sizes 1/2/4 match the sequential path" `Quick (fun () ->
        let prng = Prng.create ~seed:33L in
        let prog = Generator.generate prng Generator.default_cfg in
        let flat = Revizor_emu.Compiled.of_program_exn prog in
        let inputs = Input.generate_many prng ~entropy:2 ~n:40 in
        let templates = Input.templates inputs in
        let reference = Model.ctraces Contract.ct_cond flat inputs in
        let agree a b =
          List.length a = List.length b
          && List.for_all2
               (fun (x : Model.result) (y : Model.result) ->
                 Ctrace.equal x.Model.ctrace y.Model.ctrace
                 && x.Model.faulted = y.Model.faulted)
               a b
        in
        List.iter
          (fun n ->
            let pool = Pool.create n in
            Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
            check bool
              (Printf.sprintf "pool %d (per-input states)" n)
              true
              (agree reference (Model.ctraces_par pool Contract.ct_cond flat inputs));
            check bool
              (Printf.sprintf "pool %d (cached templates)" n)
              true
              (agree reference
                 (Model.ctraces_par ~templates pool Contract.ct_cond flat inputs)))
          [ 1; 2; 4 ]);
    tc "fuzz outcome is identical for model_domains 1/2/4" `Slow (fun () ->
        let run domains =
          let cfg =
            {
              (Target.fuzzer_config ~seed:4L Contract.ct_seq Target.target5) with
              Fuzzer.model_domains = domains;
            }
          in
          match Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 80) with
          | Fuzzer.Violation v, stats ->
              (Some v.Violation.label, stats.Fuzzer.test_cases,
               stats.Fuzzer.candidates)
          | Fuzzer.No_violation, stats ->
              (None, stats.Fuzzer.test_cases, stats.Fuzzer.candidates)
        in
        let reference = run 1 in
        check bool "model_domains 2" true (run 2 = reference);
        check bool "model_domains 4" true (run 4 = reference));
  ]

(* --- Postprocessor ------------------------------------------------------------- *)

let postprocessor_tests =
  [
    tc "minimization preserves the violation and shrinks the test case" `Slow
      (fun () ->
        (* pad the V1 gadget with junk, then minimize *)
        let junk =
          [
            Instruction.binop Opcode.Add (Operand.reg Reg.RDX) (Operand.imm 17);
            Instruction.binop Opcode.Xor (Operand.reg Reg.RDX) (Operand.imm 3);
            Instruction.nop;
          ]
        in
        let padded =
          Program.make
            (List.map
               (fun (b : Program.block) ->
                 if b.Program.label = "main" then
                   { b with Program.insts = junk @ b.Program.insts }
                 else b)
               Gadgets.spectre_v1.Gadgets.program.Program.blocks)
        in
        let cfg = Target.fuzzer_config ~seed:5L Contract.ct_seq Target.target5 in
        let cpu = Cpu.create cfg.Fuzzer.uarch in
        let executor = Executor.create cpu cfg.Fuzzer.executor in
        let prng = Prng.create ~seed:7L in
        let inputs = Input.generate_many prng ~entropy:2 ~n:40 in
        match Fuzzer.check_test_case cfg executor padded inputs with
        | Error e -> Alcotest.fail e
        | Ok None -> Alcotest.fail "padded gadget must violate"
        | Ok (Some v) ->
            let m = Postprocessor.minimize cfg executor v in
            check bool "fewer instructions" true
              (Program.num_insts m.Postprocessor.program < Program.num_insts padded);
            check bool "fewer inputs" true
              (List.length m.Postprocessor.inputs < List.length inputs);
            check bool "still violates" true
              (Postprocessor.still_violates cfg executor m.Postprocessor.program
                 m.Postprocessor.inputs);
            (* the fenced variant keeps the violation and contains fences *)
            check bool "fences inserted" true
              (List.exists
                 (fun i -> i.Instruction.opcode = Opcode.Lfence)
                 (Program.instructions m.Postprocessor.fenced)));
    tc "a fence in the leak region kills the violation" `Quick (fun () ->
        let fenced =
          Program.make
            (List.map
               (fun (b : Program.block) ->
                 if b.Program.label = "leak" then
                   { b with Program.insts = Instruction.lfence :: b.Program.insts }
                 else b)
               Gadgets.spectre_v1.Gadgets.program.Program.blocks)
        in
        let cfg = Target.fuzzer_config ~seed:5L Contract.ct_seq Target.target5 in
        let cpu = Cpu.create cfg.Fuzzer.uarch in
        let executor = Executor.create cpu cfg.Fuzzer.executor in
        let prng = Prng.create ~seed:7L in
        let inputs = Input.generate_many prng ~entropy:2 ~n:40 in
        match Fuzzer.check_test_case cfg executor fenced inputs with
        | Ok None -> ()
        | Ok (Some _) -> Alcotest.fail "fence should stop the leak"
        | Error e -> Alcotest.fail e);
  ]

(* --- Filters ---------------------------------------------------------------------- *)

let filter_tests =
  [
    tc "ablation: priming is required for taken-side leaks" `Quick (fun () ->
        let a = Experiments.ablation_priming () in
        check bool "with priming detects" true
          (String.length a.Experiments.with_feature > 0
          && String.sub a.Experiments.with_feature 0 9 = "violation");
        check string "without priming silent" "no violation"
          a.Experiments.without_feature);
    tc "ablation: subset equivalence avoids false positives" `Quick (fun () ->
        let a = Experiments.ablation_equivalence () in
        check string "subset" "no violation" a.Experiments.with_feature;
        check string "equality" "false violation" a.Experiments.without_feature);
    tc "ablation: noise filtering" `Quick (fun () ->
        let a = Experiments.ablation_noise_filtering () in
        check string "filtered" "0/30 false divergences" a.Experiments.with_feature;
        check bool "unfiltered sees noise" true
          (a.Experiments.without_feature <> "0/30 false divergences"));
    tc "entropy sweep: effectiveness collapses at high entropy" `Quick (fun () ->
        let sweep = Experiments.ablation_entropy () in
        let eff e = List.assoc e sweep in
        check bool "low entropy effective" true (eff 1 > 0.5);
        check bool "high entropy ineffective" true (eff 16 < eff 2));
  ]

let () =
  Alcotest.run "integration"
    [
      ("table3_shape", table3_shape_tests);
      ("assumptions", assumption_tests);
      ("fuzzing", fuzz_tests);
      ("parallel_model", parallel_tests);
      ("postprocessor", postprocessor_tests);
      ("filters", filter_tests);
    ]
