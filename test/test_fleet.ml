(* Fleet orchestration (PR 10): deterministic backoff, ledger codec and
   state machine, atlas-merge algebra, idempotent corpus commits, and
   the headline recovery invariant — a fleet run under any seeded fault
   schedule (worker crashes, hangs, lost spawns/heartbeats, failing
   control-plane writes, SIGKILLed orchestrator) merges to the same
   bytes as an uninterrupted in-process sequential run of the same
   shards. *)

open Revizor
module Json = Revizor_obs.Json
module Metrics = Revizor_obs.Metrics
module Monitor = Revizor_obs.Monitor
module Backoff = Revizor_obs.Backoff
module Faultpoint = Revizor_obs.Faultpoint
module Ledger = Revizor_fleet.Ledger
module Worker = Revizor_fleet.Worker
module Merge = Revizor_fleet.Merge
module Orchestrator = Revizor_fleet.Orchestrator

let check = Alcotest.check
let tc = Alcotest.test_case
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let counter name =
  Option.value ~default:0
    (List.assoc_opt name (Metrics.snapshot ()).Metrics.counters)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let with_tmpdir name f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "revizor-fleet-%s-%d" name (Unix.getpid ()))
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Small, fast campaign spec. Seeds 5..8 include seeds whose campaigns
   hit a Spectre violation inside the budget (6 and 8) and seeds that
   stay compliant — so the merge carries both kinds of shard result. *)
let mk_spec ?(seeds = [ 5L; 6L; 7L; 8L ]) ?(budget = 60) ?(inputs = 50)
    ?(workers = 2) ?(lease = 5.) ?(max_attempts = 8) ?(ckpt = 5) () =
  {
    (Ledger.default_spec ~target:"Target 5" ~contract:"CT-SEQ" ~seeds) with
    Ledger.sp_budget = budget;
    sp_n_inputs = inputs;
    sp_workers = workers;
    sp_lease_s = lease;
    sp_max_attempts = max_attempts;
    sp_checkpoint_every = ckpt;
    sp_backoff = { Backoff.base_ms = 10.; cap_ms = 150. };
  }

(* --- backoff ----------------------------------------------------------- *)

let test_backoff () =
  let policy = { Backoff.base_ms = 50.; cap_ms = 2000. } in
  let key = Backoff.key_of_string "some-shard" in
  (* Pure function of (key, attempt). *)
  for attempt = 0 to 12 do
    let a = Backoff.delay_ms policy ~key ~attempt in
    let b = Backoff.delay_ms policy ~key ~attempt in
    check (Alcotest.float 0.) (Printf.sprintf "deterministic @%d" attempt) a b;
    check bool "non-negative" true (a >= 0.);
    (* Full jitter: bounded by the capped exponential ceiling. *)
    let ceiling = Float.min 2000. (50. *. Float.of_int (1 lsl attempt)) in
    check bool "within ceiling" true (a <= ceiling)
  done;
  (* Past the cap the ceiling stops growing but stays jittered. *)
  let deep = Backoff.delay_ms policy ~key ~attempt:50 in
  check bool "capped far out" true (deep >= 0. && deep <= 2000.);
  let huge = Backoff.delay_ms policy ~key ~attempt:200 in
  check bool "no overflow at huge attempts" true (huge >= 0. && huge <= 2000.);
  (* Different keys see different jitter (with overwhelming probability
     across 13 attempts). *)
  let other = Backoff.key_of_string "other-shard" in
  check bool "keys decorrelate" true
    (List.exists
       (fun attempt ->
         Backoff.delay_ms policy ~key ~attempt
         <> Backoff.delay_ms policy ~key:other ~attempt)
       [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ])

let test_atomic_file_backoff () =
  with_tmpdir "atomic" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "out.json" in
  Faultpoint.enable ~seed:9L
    [ ("writer.io", { Faultpoint.rate = 1.; after = 0; max_fires = 2 }) ];
  Fun.protect ~finally:Faultpoint.disable @@ fun () ->
  let fp = Faultpoint.point "writer.io" in
  Revizor_obs.Atomic_file.write path "payload";
  check string "write survived two injected failures" "payload" (read_file path);
  check int "exactly the injected failures fired" 2 (Faultpoint.fired fp)

(* --- ledger ------------------------------------------------------------ *)

let test_ledger_roundtrip () =
  with_tmpdir "ledger" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let spec = mk_spec () in
  let t = Ledger.create ~dir spec in
  let now = 1000. in
  Ledger.lease t.Ledger.shards.(0) ~pid:4242 ~now ~lease_s:5.;
  Ledger.mark_done t.Ledger.shards.(1);
  Ledger.mark_failed t t.Ledger.shards.(2) ~now;
  Ledger.save t;
  match Ledger.load ~dir with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok t' ->
      check string "codec round-trip"
        (Json.to_string (Ledger.to_json t))
        (Json.to_string (Ledger.to_json t'));
      (match t'.Ledger.shards.(0).Ledger.sh_state with
      | Ledger.Leased { pid; expires; _ } ->
          check int "lease pid survives" 4242 pid;
          check bool "absolute expiry survives" true (expires = now +. 5.)
      | _ -> Alcotest.fail "shard 0 should be leased");
      check bool "failed shard gated behind backoff" true
        (t'.Ledger.shards.(2).Ledger.sh_not_before > now);
      let p, l, d, q = Ledger.counts t' in
      check (Alcotest.list int) "counts" [ 2; 1; 1; 0 ] [ p; l; d; q ]

let test_ledger_quarantine () =
  with_tmpdir "quarantine" @@ fun dir ->
  let spec = mk_spec ~max_attempts:3 () in
  let t = Ledger.create ~dir spec in
  let sh = t.Ledger.shards.(0) in
  Ledger.mark_failed t sh ~now:0.;
  check bool "still pending after 1 failure" true (sh.Ledger.sh_state = Ledger.Pending);
  Ledger.mark_failed t sh ~now:0.;
  Ledger.mark_failed t sh ~now:0.;
  check bool "quarantined at max attempts" true
    (sh.Ledger.sh_state = Ledger.Quarantined);
  (* Escalation gates are deterministic and monotone in ceiling. *)
  let d1 = Ledger.backoff_delay_s spec ~shard_id:0 ~attempt:1 in
  check bool "gate deterministic" true
    (d1 = Ledger.backoff_delay_s spec ~shard_id:0 ~attempt:1);
  (* Revocation (orchestrator death) does not escalate. *)
  let sh1 = t.Ledger.shards.(1) in
  Ledger.lease sh1 ~pid:1 ~now:0. ~lease_s:1.;
  Ledger.mark_revoked sh1;
  check bool "revoke keeps attempts" true
    (sh1.Ledger.sh_state = Ledger.Pending && sh1.Ledger.sh_attempts = 0);
  check bool "not finished" false (Ledger.finished t)

let test_fingerprint_guard () =
  with_tmpdir "fpguard" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let spec = mk_spec ~seeds:[ 1L ] ~budget:5 ~inputs:5 () in
  let t = Ledger.create ~dir spec in
  Ledger.save t;
  let other = { spec with Ledger.sp_budget = spec.Ledger.sp_budget + 1 } in
  (match Orchestrator.run ~dir other with
  | Error e ->
      check bool "refusal names the fingerprints" true
        (String.length e > 0
        && String.length (Ledger.fingerprint other) = 16)
  | Ok _ -> Alcotest.fail "mismatched spec must be refused");
  (* Orchestration knobs are not part of the identity. *)
  check string "workers/lease do not change the fingerprint"
    (Ledger.fingerprint spec)
    (Ledger.fingerprint { spec with Ledger.sp_workers = 9; sp_lease_s = 99. })

(* --- atlas merge algebra ----------------------------------------------- *)

let atlas_of tcs_features =
  let u = Ucoverage.create () in
  List.iter (fun (tc, fs) -> Ucoverage.register u ~tc fs) tcs_features;
  u

let merged_bytes u = Json.to_string (Ucoverage.to_json u)

let test_ucoverage_merge () =
  let f1 = [ Ucoverage.Depth 1 ] in
  let f2 = [ Ucoverage.Depth 2 ] in
  let f3 = [ Ucoverage.Depth 1; Ucoverage.Depth 3 ] in
  let a = atlas_of [ (3, f1); (7, f2) ] in
  let b = atlas_of [ (1, f1); (9, f3) ] in
  let c = atlas_of [ (2, f2) ] in
  check string "commutative"
    (merged_bytes (Ucoverage.merge a b))
    (merged_bytes (Ucoverage.merge b a));
  check string "associative"
    (merged_bytes (Ucoverage.merge (Ucoverage.merge a b) c))
    (merged_bytes (Ucoverage.merge a (Ucoverage.merge b c)));
  check string "idempotent"
    (merged_bytes (Ucoverage.merge a b))
    (merged_bytes (Ucoverage.merge (Ucoverage.merge a b) b));
  (* Union takes the earliest first hit. *)
  let m = Ucoverage.merge a b in
  check
    (Alcotest.list (Alcotest.pair string int))
    "min first-hit union"
    [ ("depth:1", 1); ("depth:2", 7); ("depth:3", 9) ]
    (List.map
       (fun (f, tc) -> (Ucoverage.feature_to_string f, tc))
       (Ucoverage.first_hits m))

(* --- merge commits ----------------------------------------------------- *)

let run_one_shard ~dir spec id =
  let sh = (Ledger.create ~dir spec).Ledger.shards.(id) in
  match
    Worker.run_shard ~dir ~spec ~shard_id:id ~seed:sh.Ledger.sh_seed ~attempt:0
      ()
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "run_shard: %s" e

let test_merge_idempotent () =
  with_tmpdir "merge" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let spec = mk_spec ~seeds:[ 6L ] ~budget:60 () in
  let r = run_one_shard ~dir spec 0 in
  check bool "seed 6 finds the violation" true (r.Worker.r_violation <> None);
  let m = Merge.create ~spec in
  check bool "first commit lands" true (Merge.commit m r);
  let once = Merge.render m in
  check bool "re-commit is a no-op" false (Merge.commit m r);
  check string "re-commit changes nothing" once (Merge.render m);
  (* Round-trips through disk to the same bytes. *)
  Merge.save ~dir ~spec m;
  (match Merge.load ~dir ~spec with
  | Ok m' -> check string "disk round-trip" once (Merge.render m')
  | Error e -> Alcotest.failf "merge load: %s" e);
  (* Shard results re-serialize byte-identically too. *)
  match Worker.of_json (Worker.to_json r) with
  | Ok r' ->
      check string "shard result codec round-trip"
        (Json.to_string (Worker.to_json r))
        (Json.to_string (Worker.to_json r'))
  | Error e -> Alcotest.failf "result codec: %s" e

(* --- fleet vs sequential reference ------------------------------------- *)

let reference_bytes ~dir spec =
  (match Orchestrator.reference ~dir spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reference: %s" e);
  read_file (Ledger.merged_path dir)

let test_fleet_matches_reference () =
  with_tmpdir "nofault" @@ fun root ->
  Unix.mkdir root 0o755;
  let spec = mk_spec () in
  let ref_bytes = reference_bytes ~dir:(Filename.concat root "ref") spec in
  let dir = Filename.concat root "fleet" in
  (match Orchestrator.run ~dir spec with
  | Ok Orchestrator.Completed -> ()
  | Ok Orchestrator.Interrupted -> Alcotest.fail "unexpected interruption"
  | Error e -> Alcotest.failf "fleet run: %s" e);
  check string "2-worker fleet == sequential reference (bytes)" ref_bytes
    (read_file (Ledger.merged_path dir));
  (* The merged corpus really carries the violations. *)
  match Merge.load ~dir ~spec with
  | Error e -> Alcotest.failf "merged: %s" e
  | Ok m ->
      check bool "violations present" true (Merge.violations m <> []);
      check (Alcotest.list int) "every shard committed exactly once"
        [ 0; 1; 2; 3 ] (Merge.shards m)

(* The deterministic chaos matrix: seeded schedules of worker crashes,
   hangs, lost spawns and heartbeats, and failing ledger/merge writes,
   at varied rates. Every schedule must merge to the reference bytes —
   no lost shard, no duplicated violation, identical atlas. *)
let chaos_schedules =
  [
    ( 7L,
      [
        ("fleet.worker_crash", { Faultpoint.rate = 0.03; after = 0; max_fires = 0 });
        ("fleet.worker_hang", { Faultpoint.rate = 0.004; after = 0; max_fires = 1 });
        ("fleet.spawn", { Faultpoint.rate = 0.25; after = 0; max_fires = 1 });
        ("fleet.ledger_write", { Faultpoint.rate = 0.2; after = 0; max_fires = 2 });
      ] );
    ( 1337L,
      [
        (* Kept cool enough that, with checkpoints every 5 test cases,
           an adoption advances at least one segment with ~0.9
           probability — monotone progress, quarantine practically
           unreachable at the attempt cap. *)
        ("fleet.worker_crash", { Faultpoint.rate = 0.02; after = 0; max_fires = 0 });
        ("fleet.heartbeat", { Faultpoint.rate = 0.5; after = 0; max_fires = 0 });
        ("fleet.merge", { Faultpoint.rate = 1.0; after = 0; max_fires = 1 });
      ] );
  ]

let test_chaos_matrix () =
  with_tmpdir "chaos" @@ fun root ->
  Unix.mkdir root 0o755;
  let spec = mk_spec ~lease:0.6 ~max_attempts:12 () in
  let ref_bytes = reference_bytes ~dir:(Filename.concat root "ref") spec in
  List.iteri
    (fun i (fault_seed, points) ->
      let dir = Filename.concat root (Printf.sprintf "chaos%d" i) in
      Faultpoint.enable ~seed:fault_seed points;
      let outcome =
        Fun.protect ~finally:Faultpoint.disable (fun () ->
            Orchestrator.run ~dir spec)
      in
      (match outcome with
      | Ok Orchestrator.Completed -> ()
      | Ok Orchestrator.Interrupted -> Alcotest.fail "unexpected interruption"
      | Error e -> Alcotest.failf "chaos fleet %d: %s" i e);
      check string
        (Printf.sprintf "chaos schedule %d == reference (bytes)" i)
        ref_bytes
        (read_file (Ledger.merged_path dir));
      match Ledger.load ~dir with
      | Error e -> Alcotest.failf "chaos ledger %d: %s" i e
      | Ok l ->
          let _, _, d, q = Ledger.counts l in
          check int (Printf.sprintf "chaos %d: all shards done" i) 4 d;
          check int (Printf.sprintf "chaos %d: none quarantined" i) 0 q)
    chaos_schedules

(* A crash rate of 1 fires at the first test-case boundary of every
   adoption: the shard can never progress and must escalate through the
   backoff gates into quarantine — and the fleet must still terminate
   and report it, with the sound shards merged. *)
let test_quarantine_escalation () =
  with_tmpdir "escalate" @@ fun root ->
  Unix.mkdir root 0o755;
  let spec = mk_spec ~seeds:[ 5L; 6L ] ~workers:2 ~max_attempts:3 () in
  Faultpoint.enable ~seed:3L
    [ ("fleet.worker_crash", { Faultpoint.rate = 1.0; after = 0; max_fires = 0 }) ];
  let dir = Filename.concat root "fleet" in
  let outcome =
    Fun.protect ~finally:Faultpoint.disable (fun () ->
        Orchestrator.run ~dir spec)
  in
  (match outcome with
  | Ok Orchestrator.Completed -> ()
  | Ok Orchestrator.Interrupted -> Alcotest.fail "unexpected interruption"
  | Error e -> Alcotest.failf "fleet: %s" e);
  match Ledger.load ~dir with
  | Error e -> Alcotest.failf "ledger: %s" e
  | Ok l ->
      let _, _, d, q = Ledger.counts l in
      check int "both shards quarantined" 2 q;
      check int "none done" 0 d;
      Array.iter
        (fun sh ->
          check int
            (Printf.sprintf "shard %d exhausted its attempts" sh.Ledger.sh_id)
            3 sh.Ledger.sh_attempts)
        l.Ledger.shards

(* --- interruption and resume ------------------------------------------- *)

let test_interrupt_resume () =
  with_tmpdir "interrupt" @@ fun root ->
  Unix.mkdir root 0o755;
  let spec = mk_spec ~lease:5. () in
  let ref_bytes = reference_bytes ~dir:(Filename.concat root "ref") spec in
  let dir = Filename.concat root "fleet" in
  (* Stop the orchestrator after a few ticks, mid-campaign. *)
  let ticks = ref 0 in
  let should_stop () =
    incr ticks;
    !ticks > 6
  in
  (match Orchestrator.run ~dir ~should_stop spec with
  | Ok Orchestrator.Interrupted -> ()
  | Ok Orchestrator.Completed ->
      (* So fast every shard finished before the stop: still a valid
         run; the resume below is then a no-op completion. *)
      ()
  | Error e -> Alcotest.failf "fleet run: %s" e);
  (match Orchestrator.resume ~dir () with
  | Ok Orchestrator.Completed -> ()
  | Ok Orchestrator.Interrupted -> Alcotest.fail "resume interrupted"
  | Error e -> Alcotest.failf "resume: %s" e);
  check string "interrupted+resumed == reference (bytes)" ref_bytes
    (read_file (Ledger.merged_path dir))

(* Satellite 3: SIGKILL the orchestrator process mid-campaign; the
   ledger and the shard checkpoints alone must reconstruct the fleet,
   and the resumed campaign's merged corpus must be byte-identical to
   an uninterrupted run's. *)
let test_sigkill_orchestrator_resume () =
  with_tmpdir "sigkill" @@ fun root ->
  Unix.mkdir root 0o755;
  (* Seeds without early violations so the campaign is still in flight
     ~0.5s in, whatever the machine speed. *)
  let spec =
    mk_spec ~seeds:[ 11L; 12L; 13L ] ~budget:400 ~inputs:30 ~ckpt:10
      ~lease:5. ()
  in
  let ref_bytes = reference_bytes ~dir:(Filename.concat root "ref") spec in
  let dir = Filename.concat root "fleet" in
  flush stdout;
  flush stderr;
  (match Unix.fork () with
  | 0 ->
      (* The orchestrator process about to be murdered. *)
      (try ignore (Orchestrator.run ~dir spec) with _ -> ());
      Unix._exit 0
  | orch ->
      (* Let it spawn workers and make progress, then SIGKILL it. *)
      Unix.sleepf 0.6;
      (try Unix.kill orch Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] orch));
  check bool "ledger survives the kill" true (Ledger.exists ~dir);
  (match Orchestrator.resume ~dir () with
  | Ok Orchestrator.Completed -> ()
  | Ok Orchestrator.Interrupted -> Alcotest.fail "resume interrupted"
  | Error e -> Alcotest.failf "resume: %s" e);
  check string "SIGKILLed orchestrator + resume == reference (bytes)"
    ref_bytes
    (read_file (Ledger.merged_path dir))

(* --- monitor client loss (satellite 1) --------------------------------- *)

let test_monitor_client_lost () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "revizor-lost-%d.sock" (Unix.getpid ()))
  in
  let m = Monitor.create ~path in
  Fun.protect ~finally:(fun () -> Monitor.close m) @@ fun () ->
  let before = counter "monitor.client_lost" in
  (* Connect, fire a request, vanish before the reply: the server's
     write hits a closed peer. Before the SIGPIPE guard this killed the
     whole campaign process. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  ignore (Unix.write_substring fd "prom\n" 0 5);
  Unix.close fd;
  for _ = 1 to 10 do
    Monitor.poll m;
    ignore (Unix.select [] [] [] 0.005)
  done;
  Monitor.drain ~timeout:0.05 m;
  check bool "campaign survived the vanished client" true true;
  check bool "loss was counted" true (counter "monitor.client_lost" > before)

let test_monitor_drain_bounded () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "revizor-drain-%d.sock" (Unix.getpid ()))
  in
  let m = Monitor.create ~path in
  Fun.protect ~finally:(fun () -> Monitor.close m) @@ fun () ->
  (* No clients: the drain returns immediately, not after the timeout. *)
  let t0 = Unix.gettimeofday () in
  Monitor.drain ~timeout:5. m;
  check bool "idle drain is immediate" true (Unix.gettimeofday () -. t0 < 1.);
  (* A connected-but-silent client cannot hold shutdown past the bound. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let t0 = Unix.gettimeofday () in
  Monitor.drain ~timeout:0.15 m;
  let elapsed = Unix.gettimeofday () -. t0 in
  Unix.close fd;
  check bool "stuck client bounded by timeout" true (elapsed < 2.)

let () =
  Alcotest.run "fleet"
    [
      ( "backoff",
        [
          tc "deterministic capped full-jitter backoff" `Quick test_backoff;
          tc "atomic_file retries under the backoff policy" `Quick
            test_atomic_file_backoff;
        ] );
      ( "ledger",
        [
          tc "codec round-trip and lease persistence" `Quick
            test_ledger_roundtrip;
          tc "quarantine escalation and revocation" `Quick
            test_ledger_quarantine;
          tc "spec fingerprint guards the directory" `Quick
            test_fingerprint_guard;
        ] );
      ( "merge",
        [
          tc "atlas merge is commutative/associative/idempotent" `Quick
            test_ucoverage_merge;
          tc "corpus commits are idempotent and crash-safe" `Quick
            test_merge_idempotent;
        ] );
      ( "recovery",
        [
          tc "fleet == sequential reference, byte-identical" `Slow
            test_fleet_matches_reference;
          tc "chaos matrix == reference, nothing lost or duplicated" `Slow
            test_chaos_matrix;
          tc "poisoned shards escalate into quarantine" `Slow
            test_quarantine_escalation;
          tc "interrupt + resume == reference" `Slow test_interrupt_resume;
          tc "SIGKILLed orchestrator + resume == reference" `Slow
            test_sigkill_orchestrator_resume;
        ] );
      ( "monitor",
        [
          tc "client loss is swallowed and counted" `Quick
            test_monitor_client_lost;
          tc "post-campaign drain is time-bounded" `Quick
            test_monitor_drain_bounded;
        ] );
    ]
