(* Property-based tests (QCheck): algebraic invariants of the word/flags
   layer, cache, traces, analyzer, generator, parser — and the central
   soundness property that the speculative CPU simulator is architecturally
   equivalent to the pure emulator on arbitrary generated programs. *)

open Revizor_isa
open Revizor_emu
open Revizor_uarch
open Revizor

let count = 200

let test ?(count = count) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let width_gen = QCheck.oneofl Width.all

let full_int64_gen =
  QCheck.(
    map
      (fun (a, b) -> Int64.logxor (Int64.of_int a) (Int64.shift_left (Int64.of_int b) 31))
      (pair int int))

(* --- Word / Flags ------------------------------------------------------ *)

let word_props =
  [
    test "zext is idempotent" QCheck.(pair width_gen full_int64_gen)
      (fun (w, v) -> Word.zext w (Word.zext w v) = Word.zext w v);
    test "sext agrees with zext on the low bits"
      QCheck.(pair width_gen full_int64_gen)
      (fun (w, v) -> Word.zext w (Word.sext w v) = Word.zext w v);
    test "sext sign" QCheck.(pair width_gen full_int64_gen) (fun (w, v) ->
        let s = Word.sext w v in
        if Word.sign_set w v then Int64.compare s 0L < 0
        else Int64.compare s 0L >= 0);
    test "merge keeps untouched bits"
      QCheck.(triple width_gen full_int64_gen full_int64_gen)
      (fun (w, old, v) ->
        let m = Word.merge w ~old v in
        match w with
        | Width.W64 | Width.W32 -> Word.zext w m = Word.zext w v
        | Width.W8 | Width.W16 ->
            Word.zext w m = Word.zext w v
            && Int64.shift_right_logical m (Width.bits w)
               = Int64.shift_right_logical old (Width.bits w));
    test "eval_cond respects negation"
      QCheck.(pair (oneofl Cond.all) full_int64_gen)
      (fun (c, bits) ->
        let f = Flags.of_word bits in
        Flags.eval_cond f c = not (Flags.eval_cond f (Cond.negate c)));
    test "flags roundtrip through RFLAGS word" full_int64_gen (fun bits ->
        let f = Flags.of_word bits in
        Flags.equal f (Flags.of_word (Flags.to_word f)));
    test "add carry matches wide arithmetic (w <= 32)"
      QCheck.(triple (oneofl [ Width.W8; Width.W16; Width.W32 ]) full_int64_gen full_int64_gen)
      (fun (w, a, b) ->
        let a = Word.zext w a and b = Word.zext w b in
        let r = Word.zext w (Int64.add a b) in
        let f = Flags.after_add w ~a ~b ~carry_in:false ~r in
        f.Flags.cf = (Int64.unsigned_compare (Int64.add a b) (Width.mask w) > 0)
        && f.Flags.zf = (r = 0L)
        && f.Flags.sf = Word.sign_set w r);
    test "sub borrow matches unsigned comparison"
      QCheck.(triple width_gen full_int64_gen full_int64_gen)
      (fun (w, a, b) ->
        let a = Word.zext w a and b = Word.zext w b in
        let r = Word.zext w (Int64.sub a b) in
        let f = Flags.after_sub w ~a ~b ~borrow_in:false ~r in
        f.Flags.cf = (Int64.unsigned_compare a b < 0)
        && f.Flags.zf = (a = b));
  ]

(* --- Memory -------------------------------------------------------------- *)

let offset_gen = QCheck.int_range 0 (Layout.sandbox_size - 9)

let memory_props =
  [
    test "write/read roundtrip" QCheck.(triple width_gen offset_gen full_int64_gen)
      (fun (w, off, v) ->
        let m = Memory.create () in
        let addr = Int64.add Layout.sandbox_base (Int64.of_int off) in
        Memory.write m ~addr w v;
        Memory.read m ~addr w = Word.zext w v);
    test "disjoint writes do not interfere"
      QCheck.(pair offset_gen full_int64_gen)
      (fun (off, v) ->
        QCheck.assume (off + 16 < Layout.sandbox_size);
        let m = Memory.create () in
        let addr = Int64.add Layout.sandbox_base (Int64.of_int off) in
        Memory.write m ~addr Width.W64 v;
        Memory.write m ~addr:(Int64.add addr 8L) Width.W64 (Int64.lognot v);
        Memory.read m ~addr Width.W64 = v);
    test "snapshot/restore is exact" QCheck.(pair offset_gen full_int64_gen)
      (fun (off, v) ->
        let m = Memory.create () in
        let snap = Memory.snapshot m in
        let addr = Int64.add Layout.sandbox_base (Int64.of_int off) in
        Memory.write m ~addr Width.W64 v;
        Memory.restore m snap;
        Memory.read m ~addr Width.W64 = 0L);
  ]

(* --- Cache / Htrace -------------------------------------------------------- *)

let cache_set_arb = QCheck.int_range 0 63

let cache_props =
  [
    test "touch implies contains" QCheck.(small_list cache_set_arb) (fun lines ->
        let c = Cache.create () in
        List.iter
          (fun l ->
            ignore (Cache.touch c (Int64.of_int (l * Layout.cache_line))))
          lines;
        match List.rev lines with
        | [] -> true
        | last :: _ -> Cache.contains c (Int64.of_int (last * Layout.cache_line)));
    test "probe detects exactly the touched sets" QCheck.(small_list cache_set_arb)
      (fun sets ->
        let c = Cache.create () in
        Cache.prime c;
        List.iter
          (fun s ->
            ignore
              (Cache.touch c
                 (Int64.add Layout.sandbox_base (Int64.of_int (s * Layout.cache_line)))))
          sets;
        (* sandbox_base is line 1024, which is set 0: offset s*64 lands in
           set s *)
        let touched s = List.mem s sets in
        List.for_all
          (fun set -> Cache.probe c set = touched set)
          (List.init 64 Fun.id));
    test "htrace union is an upper bound" QCheck.(pair (small_list cache_set_arb) (small_list cache_set_arb))
      (fun (a, b) ->
        let ha = Htrace.of_list a and hb = Htrace.of_list b in
        let u = Htrace.union ha hb in
        Htrace.subset ha u && Htrace.subset hb u);
    test "comparable is symmetric" QCheck.(pair (small_list cache_set_arb) (small_list cache_set_arb))
      (fun (a, b) ->
        let ha = Htrace.of_list a and hb = Htrace.of_list b in
        Htrace.comparable ha hb = Htrace.comparable hb ha);
    test "equal traces are comparable" QCheck.(small_list cache_set_arb) (fun a ->
        let h = Htrace.of_list a in
        Htrace.comparable h h);
  ]

(* --- Analyzer ---------------------------------------------------------------- *)

let analyzer_props =
  [
    test "classes partition the effective inputs" QCheck.(list_of_size (Gen.return 30) (int_range 0 3))
      (fun tags ->
        let ctraces =
          Array.of_list (List.map (fun t -> [ Ctrace.Addr (Int64.of_int t) ]) tags)
        in
        let classes = Analyzer.input_classes ctraces in
        let all = List.concat_map (fun c -> c.Analyzer.members) classes in
        List.length all = List.length (List.sort_uniq compare all)
        && List.for_all
             (fun c ->
               List.for_all
                 (fun i -> Ctrace.equal ctraces.(i) c.Analyzer.ctrace)
                 c.Analyzer.members)
             classes);
    test "no violation within identical traces" QCheck.(int_range 2 10) (fun n ->
        let cls = { Analyzer.ctrace = []; members = List.init n Fun.id } in
        let htraces = Array.make n (Htrace.of_list [ 1; 2 ]) in
        Analyzer.check_class cls htraces = None);
  ]

(* --- Generator / Parser --------------------------------------------------------- *)

let seed_gen = QCheck.(map Int64.of_int small_int)

let subsets_gen =
  QCheck.oneofl
    [
      [ Catalog.AR ];
      [ Catalog.AR; Catalog.MEM ];
      [ Catalog.AR; Catalog.MEM; Catalog.VAR ];
      [ Catalog.AR; Catalog.MEM; Catalog.CB ];
      [ Catalog.AR; Catalog.MEM; Catalog.CB; Catalog.VAR ];
    ]

let gen_program seed subsets =
  let prng = Prng.create ~seed in
  Generator.generate prng { Generator.default_cfg with Generator.subsets }

let generator_props =
  [
    test ~count:100 "generated programs always validate" QCheck.(pair seed_gen subsets_gen)
      (fun (seed, subsets) ->
        Result.is_ok (Program.validate (gen_program seed subsets)));
    test ~count:50 "generated programs never fault architecturally"
      QCheck.(pair seed_gen subsets_gen)
      (fun (seed, subsets) ->
        let p = gen_program seed subsets in
        let flat = Compiled.of_program_exn p in
        let prng = Prng.create ~seed:(Int64.add seed 99L) in
        List.for_all
          (fun input ->
            let r = Model.run Contract.ct_seq flat input in
            not r.Model.faulted)
          (Input.generate_many prng ~entropy:8 ~n:3));
    test ~count:50 "printer/parser roundtrip" QCheck.(pair seed_gen subsets_gen)
      (fun (seed, subsets) ->
        let p = gen_program seed subsets in
        match Asm_parser.parse_program (Program.to_string p) with
        | Ok p' -> Program.to_string p = Program.to_string p'
        | Error _ -> false);
    test ~count:50 "model is deterministic" QCheck.(pair seed_gen seed_gen)
      (fun (pseed, iseed) ->
        let p = gen_program pseed [ Catalog.AR; Catalog.MEM; Catalog.CB ] in
        let flat = Compiled.of_program_exn p in
        let input = { Input.seed = iseed; entropy = 2 } in
        let a = Model.run Contract.ct_cond_bpas flat input in
        let b = Model.run Contract.ct_cond_bpas flat input in
        Ctrace.equal a.Model.ctrace b.Model.ctrace);
  ]

(* --- The central soundness property ---------------------------------------------- *)

let cpu_props =
  [
    test ~count:60
      "speculative CPU is architecturally equivalent to the pure emulator"
      QCheck.(triple seed_gen seed_gen (oneofl [ false; true ]))
      (fun (pseed, iseed, v4_patch) ->
        let p = gen_program pseed [ Catalog.AR; Catalog.MEM; Catalog.CB; Catalog.VAR ] in
        let flat = Program.flatten_exn p in
        let prog = Compiled.of_flat flat in
        let input = { Input.seed = iseed; entropy = 3 } in
        let s_cpu = Input.to_state input in
        let s_emu = Input.to_state input in
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch) in
        (* train predictors with a couple of other inputs first, to give
           the run real speculation to roll back *)
        let prng = Prng.create ~seed:(Int64.add iseed 7L) in
        List.iter
          (fun i -> Cpu.run cpu prog (Input.to_state i))
          (Input.generate_many prng ~entropy:3 ~n:3);
        Cpu.run cpu prog s_cpu;
        ignore (Semantics.run flat s_emu);
        State.equal_arch s_cpu s_emu);
    test ~count:40 "assists never change architectural results"
      QCheck.(pair seed_gen seed_gen)
      (fun (pseed, iseed) ->
        let p = gen_program pseed [ Catalog.AR; Catalog.MEM ] in
        let flat = Program.flatten_exn p in
        let prog = Compiled.of_flat flat in
        let input = { Input.seed = iseed; entropy = 3 } in
        let s_cpu = Input.to_state input in
        let s_emu = Input.to_state input in
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        Page_table.clear_accessed (Cpu.pages cpu) ~page:0;
        Cpu.run cpu prog s_cpu;
        ignore (Semantics.run flat s_emu);
        State.equal_arch s_cpu s_emu);
    test ~count:40 "ret target masking stays in range"
      QCheck.(pair full_int64_gen (int_range 1 50))
      (fun (v, len) ->
        let idx = Semantics.mask_code_index ~code_len:len v in
        idx >= 0 && idx <= len);
  ]

(* --- Executor reproducibility ------------------------------------------------------- *)

let executor_props =
  [
    test ~count:10 "hardware traces are reproducible across CPU sessions"
      QCheck.(pair seed_gen seed_gen)
      (fun (pseed, iseed) ->
        let p = gen_program pseed [ Catalog.AR; Catalog.MEM; Catalog.CB ] in
        let flat = Compiled.of_program_exn p in
        let inputs =
          Input.generate_many (Prng.create ~seed:iseed) ~entropy:2 ~n:10
        in
        let measure () =
          let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
          let ex = Executor.create cpu (Executor.default_config ()) in
          Executor.htraces ex flat inputs
        in
        Array.for_all2 Htrace.equal (measure ()) (measure ()));
  ]

(* --- Rotation identity ------------------------------------------------------------ *)

let rotation_props =
  [
    test ~count:100 "rol then ror by the same count is the identity"
      QCheck.(triple (oneofl Width.all) full_int64_gen (int_range 0 31))
      (fun (w, v, count) ->
        let s = State.create () in
        State.set_reg s Reg.RAX Width.W64 v;
        let flat =
          Program.flatten_exn
            (Program.of_insts
               [
                 Instruction.binop Opcode.Rol (Operand.reg ~w Reg.RAX)
                   (Operand.imm count);
                 Instruction.binop Opcode.Ror (Operand.reg ~w Reg.RAX)
                   (Operand.imm count);
               ])
        in
        ignore (Semantics.run flat s);
        State.get_reg s Reg.RAX w = Word.zext w v);
    test ~count:100 "movzx then downcast is the identity on the low bits"
      QCheck.(pair full_int64_gen (oneofl [ Width.W8; Width.W16; Width.W32 ]))
      (fun (v, ws) ->
        let s = State.create () in
        State.set_reg s Reg.RBX Width.W64 v;
        let flat =
          Program.flatten_exn
            (Program.of_insts
               [
                 Instruction.binop Opcode.Movzx (Operand.reg Reg.RAX)
                   (Operand.reg ~w:ws Reg.RBX);
               ])
        in
        ignore (Semantics.run flat s);
        State.get_reg s Reg.RAX Width.W64 = Word.zext ws v);
  ]

(* --- Htrace bitset vs the reference Set.Make(Int) --------------------------------- *)

module IntSet = Set.Make (Int)

let obs_gen = QCheck.int_range 0 (Htrace.width - 1)
let obs_list_gen = QCheck.(list_of_size (Gen.int_range 0 40) obs_gen)

let htrace_bitset_props =
  [
    test "of_list/elements agree with the reference set" obs_list_gen (fun l ->
        Htrace.elements (Htrace.of_list l) = IntSet.elements (IntSet.of_list l));
    test "union/inter/diff agree with the reference set"
      QCheck.(pair obs_list_gen obs_list_gen)
      (fun (a, b) ->
        let ha = Htrace.of_list a and hb = Htrace.of_list b in
        let sa = IntSet.of_list a and sb = IntSet.of_list b in
        Htrace.elements (Htrace.union ha hb)
        = IntSet.elements (IntSet.union sa sb)
        && Htrace.elements (Htrace.inter ha hb)
           = IntSet.elements (IntSet.inter sa sb)
        && Htrace.elements (Htrace.diff ha hb)
           = IntSet.elements (IntSet.diff sa sb));
    test "subset/equal/mem/cardinal agree with the reference set"
      QCheck.(triple obs_list_gen obs_list_gen obs_gen)
      (fun (a, b, x) ->
        let ha = Htrace.of_list a and hb = Htrace.of_list b in
        let sa = IntSet.of_list a and sb = IntSet.of_list b in
        Htrace.subset ha hb = IntSet.subset sa sb
        && Htrace.equal ha hb = IntSet.equal sa sb
        && Htrace.mem x ha = IntSet.mem x sa
        && Htrace.cardinal ha = IntSet.cardinal sa
        && Htrace.is_empty ha = IntSet.is_empty sa);
    test "add/iter/fold agree with the reference set"
      QCheck.(pair obs_list_gen obs_gen)
      (fun (l, x) ->
        let h = Htrace.add x (Htrace.of_list l) in
        let s = IntSet.add x (IntSet.of_list l) in
        Htrace.elements h = IntSet.elements s
        && Htrace.fold List.cons h [] = IntSet.fold List.cons s []
        &&
        let acc = ref [] in
        Htrace.iter (fun i -> acc := i :: !acc) h;
        !acc = IntSet.fold List.cons s []);
    test "compare is antisymmetric and consistent with equal"
      QCheck.(pair obs_list_gen obs_list_gen)
      (fun (a, b) ->
        let ha = Htrace.of_list a and hb = Htrace.of_list b in
        compare (Htrace.compare ha hb) 0 = -compare (Htrace.compare hb ha) 0
        && Htrace.equal ha hb = (Htrace.compare ha hb = 0));
    test ~count:20 "out-of-range observations raise"
      QCheck.(oneofl [ -1; -63; Htrace.width; Htrace.width + 5; max_int ])
      (fun i ->
        let raises f =
          match f () with
          | exception Invalid_argument _ -> true
          | (_ : Htrace.t) -> false
        in
        raises (fun () -> Htrace.singleton i)
        && raises (fun () -> Htrace.add i Htrace.empty)
        && raises (fun () -> Htrace.of_list [ 0; i ]));
  ]

(* --- Input-state templates: copy_into restores exactly ----------------------------- *)

let template_props =
  [
    test ~count:100 "copy_into-restored scratch equals a fresh to_state"
      QCheck.(triple seed_gen seed_gen (int_range 1 6))
      (fun (seed_a, seed_b, entropy) ->
        let input = { Input.seed = seed_a; entropy } in
        let tpl = Input.to_state input in
        (* dirty the scratch with a different input's state first *)
        let scratch = Input.to_state { Input.seed = seed_b; entropy } in
        State.copy_into tpl ~dst:scratch;
        let fresh = Input.to_state input in
        State.equal_arch scratch fresh && scratch.State.pc = fresh.State.pc);
    test ~count:30 "restoring does not disturb the template itself"
      QCheck.(pair seed_gen seed_gen)
      (fun (seed_a, seed_b) ->
        let input = { Input.seed = seed_a; entropy = 3 } in
        let tpl = Input.to_state input in
        let scratch = Input.to_state { Input.seed = seed_b; entropy = 3 } in
        State.copy_into tpl ~dst:scratch;
        (* run a program on the scratch; the template must stay pristine *)
        State.set_reg scratch Reg.RAX Width.W64 0x4242L;
        Memory.write scratch.State.mem ~addr:Layout.sandbox_base Width.W64 99L;
        State.equal_arch tpl (Input.to_state input));
    test ~count:30 "Input.templates matches per-input to_state"
      QCheck.(pair seed_gen (int_range 1 8))
      (fun (seed, n) ->
        let inputs =
          Input.generate_many (Prng.create ~seed) ~entropy:2 ~n
        in
        let tpls = Input.templates inputs in
        List.for_all2
          (fun i tpl -> State.equal_arch tpl (Input.to_state i))
          inputs (Array.to_list tpls));
  ]

(* --- Input ---------------------------------------------------------------------- *)

let input_props =
  [
    test "inputs are reproducible from their seed" seed_gen (fun seed ->
        let i = { Input.seed; entropy = 2 } in
        State.equal_arch (Input.to_state i) (Input.to_state i));
    test "entropy bound holds" QCheck.(pair seed_gen (int_range 1 6))
      (fun (seed, entropy) ->
        let s = Input.to_state { Input.seed; entropy } in
        List.for_all
          (fun r ->
            let v = State.get_reg s r Width.W64 in
            Int64.unsigned_compare v (Int64.of_int ((1 lsl entropy) * 64)) < 0)
          Reg.gen_pool);
  ]

let () =
  Alcotest.run "properties"
    [
      ("word_flags", word_props);
      ("memory", memory_props);
      ("cache_htrace", cache_props);
      ("htrace_bitset", htrace_bitset_props);
      ("templates", template_props);
      ("analyzer", analyzer_props);
      ("generator", generator_props);
      ("cpu_soundness", cpu_props);
      ("input", input_props);
      ("rotation", rotation_props);
      ("executor", executor_props);
    ]
