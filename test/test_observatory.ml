(* Campaign observatory (PR 8): trace analytics (span trees, nesting
   validation, gap hunting, Chrome export, run diffing), the live
   monitor endpoint (request/response round-trip against a real
   campaign, Prometheus exposition, bit-identity with the monitor on or
   off), heartbeat/GC telemetry satellites, and the violation flight
   recorder's artifact schema. *)

open Revizor
module Json = Revizor_obs.Json
module Metrics = Revizor_obs.Metrics
module Telemetry = Revizor_obs.Telemetry
module Monitor = Revizor_obs.Monitor
module TA = Revizor_obs.Trace_analysis

let check = Alcotest.check
let tc = Alcotest.test_case
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let sp ?(dom = 0) ?tc name start dur =
  { TA.sp_name = name; sp_start = start; sp_dur = dur; sp_dom = dom; sp_tc = tc }

(* --- span trees ------------------------------------------------------ *)

let test_span_forest () =
  (* parent [0,100] containing two children, then a disjoint sibling. *)
  let spans =
    [ sp "child1" 10 20; sp "child2" 40 30; sp "parent" 0 100; sp "next" 120 50 ]
  in
  let forest = TA.span_forest spans in
  check int "two roots" 2 (List.length forest);
  let parent = List.hd forest in
  check string "first root is parent" "parent" parent.TA.n_span.TA.sp_name;
  check int "parent has two children" 2 (List.length parent.TA.n_children);
  check int "depth of parent tree" 2 (TA.depth parent);
  check int "depth of leaf" 1 (TA.depth (List.nth forest 1));
  (* Nested three deep. *)
  let deep = [ sp "a" 0 100; sp "b" 10 50; sp "c" 20 10 ] in
  match TA.span_forest deep with
  | [ root ] -> check int "depth 3" 3 (TA.depth root)
  | _ -> Alcotest.fail "expected a single root"

let test_by_domain () =
  let spans = [ sp ~dom:1 "x" 0 10; sp ~dom:0 "y" 0 10; sp ~dom:1 "z" 20 10 ] in
  match TA.by_domain spans with
  | [ (0, g0); (1, g1) ] ->
      check int "dom 0 size" 1 (List.length g0);
      check int "dom 1 size" 2 (List.length g1)
  | _ -> Alcotest.fail "expected domains 0 and 1"

(* --- nesting validation ---------------------------------------------- *)

let test_nesting_valid () =
  let n = TA.check_nesting [ sp "a" 0 100; sp "b" 10 20; sp "c" 50 20 ] in
  check int "spans" 3 n.TA.nst_spans;
  check int "max depth" 2 n.TA.nst_max_depth;
  check bool "no orphans" true (n.TA.nst_orphans = [])

let test_nesting_orphan () =
  (* b starts inside a but ends outside it: a partial overlap. *)
  let n = TA.check_nesting [ sp "a" 0 50; sp "b" 30 40 ] in
  check bool "orphan detected" true (n.TA.nst_orphans <> []);
  let outer, inner = List.hd n.TA.nst_orphans in
  check string "outer" "a" outer.TA.sp_name;
  check string "inner" "b" inner.TA.sp_name

(* --- gap analysis ----------------------------------------------------- *)

let test_deepest_gap () =
  check bool "no gap on empty" true (TA.deepest_gap [] = None);
  check bool "no gap on contiguous" true
    (TA.deepest_gap [ sp "a" 0 10; sp "b" 10 10 ] = None);
  match
    TA.deepest_gap [ sp "a" 0 10; sp "b" 15 10; sp "c" 100 10; sp "d" 40 10 ]
  with
  | Some g ->
      (* gaps: 10..15 (5), 25..40 (15), 50..100 (50). *)
      check int "gap start" 50 g.TA.g_start;
      check int "gap duration" 50 g.TA.g_dur;
      check string "after" "d" g.TA.g_after;
      check string "before" "c" g.TA.g_before
  | None -> Alcotest.fail "expected a gap"

let test_gap_nested_spans () =
  (* A child ending before its parent must not open a phantom gap. *)
  check bool "nested spans, no gap" true
    (TA.deepest_gap [ sp "p" 0 100; sp "c" 10 20 ] = None)

(* --- stage and domain summaries --------------------------------------- *)

let test_stage_stats () =
  let stats =
    TA.stage_stats [ sp "m" 0 10; sp "m" 20 30; sp "x" 100 5 ]
  in
  match stats with
  | [ m; x ] ->
      check string "biggest first" "m" m.TA.st_stage;
      check int "calls" 2 m.TA.st_calls;
      check int "total" 40 m.TA.st_total_ns;
      check int "max" 30 m.TA.st_max_ns;
      check int "x total" 5 x.TA.st_total_ns
  | _ -> Alcotest.fail "expected two stages"

let test_domain_stats () =
  let spans =
    [
      sp ~dom:0 "gen" 0 40;
      sp ~dom:0 "gen" 60 40;  (* busy 80 of wall 100 *)
      sp ~dom:1 "exec" 0 100;  (* busy 100 of wall 100 *)
    ]
  in
  match TA.domain_stats spans with
  | [ d0; d1 ] ->
      check int "dom0 busy" 80 d0.TA.d_busy_ns;
      check int "dom0 stall" 20 d0.TA.d_stall_ns;
      check string "dom0 top" "gen" d0.TA.d_top_stage;
      check int "dom1 busy" 100 d1.TA.d_busy_ns;
      check int "dom1 stall" 0 d1.TA.d_stall_ns
  | _ -> Alcotest.fail "expected two domains"

(* --- JSONL loading, truncated tail ------------------------------------ *)

let write_tmp contents =
  let path = Filename.temp_file "revizor_trace" ".jsonl" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let test_load_file_truncated () =
  let good =
    String.concat "\n"
      [
        {|{"ts":1,"kind":"span","name":"stage.model","start":0,"dur_ns":50,"dom":0}|};
        {|{"ts":2,"kind":"event","name":"fuzz.round","round":1}|};
        {|{"ts":3,"kind":"span","name":"stage.execute","start":60,"dur_ns":40,"dom":0}|};
      ]
  in
  (* A run killed mid-write leaves one torn final line. *)
  let path = write_tmp (good ^ "\n" ^ {|{"ts":4,"kind":"sp|}) in
  (match TA.load_file path with
  | Error e -> Alcotest.fail e
  | Ok (lines, scan) ->
      check bool "truncated tail reported" true scan.Telemetry.sc_truncated_tail;
      check int "spans counted" 2 scan.Telemetry.sc_spans;
      check int "events counted" 1 scan.Telemetry.sc_events;
      let spans = TA.spans_of_lines lines in
      check int "spans extracted" 2 (List.length spans);
      check string "first span name" "stage.model" (List.hd spans).TA.sp_name);
  Sys.remove path;
  (* Corruption anywhere else is an error. *)
  let path = write_tmp ({|{"bad|} ^ "\n" ^ good ^ "\n") in
  (match TA.load_file path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mid-file corruption must be an error");
  Sys.remove path

(* --- Chrome trace-event export ---------------------------------------- *)

let test_chrome_export () =
  let lines =
    List.filter_map
      (fun s -> Result.to_option (Telemetry.parse_line s))
      [
        {|{"ts":1000,"kind":"span","name":"stage.model","tc":3,"start":0,"dur_ns":5000,"dom":2}|};
        {|{"ts":2000,"kind":"event","name":"fuzz.round","round":1}|};
      ]
  in
  match TA.to_chrome lines with
  | Json.Obj kvs -> (
      match List.assoc "traceEvents" kvs with
      | Json.List [ span_ev; inst_ev ] ->
          let get name j = Option.get (Json.member name j) in
          check string "complete event phase" "X"
            (Option.get (Json.to_str (get "ph" span_ev)));
          check bool "µs duration" true
            (Json.to_float (get "dur" span_ev) = Some 5.0);
          check bool "tid is the domain" true
            (Json.to_int (get "tid" span_ev) = Some 2);
          check bool "tc survives in args" true
            (Option.bind (Json.member "args" span_ev) (Json.member "tc")
            <> None);
          check string "instant event phase" "i"
            (Option.get (Json.to_str (get "ph" inst_ev)))
      | _ -> Alcotest.fail "expected two trace events")
  | _ -> Alcotest.fail "expected an object"

(* --- diff on two recorded runs ----------------------------------------- *)

let spans_of_buffer buf =
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter_map (fun l ->
         if String.trim l = "" then None
         else Result.to_option (Telemetry.parse_line l))
  |> TA.spans_of_lines

let record_run ~seed ~budget =
  let buf = Buffer.create 65536 in
  Telemetry.enable_buffer buf;
  let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target1 in
  let _ = Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases budget) in
  Telemetry.disable ();
  spans_of_buffer buf

let test_trace_diff_runs () =
  let a = record_run ~seed:5L ~budget:12 in
  let b = record_run ~seed:5L ~budget:24 in
  check bool "run A recorded spans" true (a <> []);
  let rows = TA.diff a b in
  check bool "diff has rows" true (rows <> []);
  let execute =
    List.find (fun r -> r.TA.dr_stage = "stage.execute") rows
  in
  check bool "twice the budget, more calls" true
    (execute.TA.dr_calls_b > execute.TA.dr_calls_a);
  check bool "mean ratio is finite" true
    (Float.is_finite execute.TA.dr_mean_ratio);
  (* A stage present on only one side keeps zero calls on the other. *)
  let one_sided = TA.diff a [] in
  List.iter
    (fun r ->
      check int "absent side has zero calls" 0 r.TA.dr_calls_b;
      check bool "absent mean is nan" true (Float.is_nan r.TA.dr_mean_b_ns))
    one_sided

(* --- Prometheus exposition --------------------------------------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else at (i + 1)
  in
  nn = 0 || at 0

let test_prometheus () =
  Metrics.reset ();
  let c = Metrics.counter "obsv.prom.counter" in
  Metrics.add c 7;
  Metrics.set_gauge (Metrics.gauge "obsv.prom-gauge") 2.5;
  let h = Metrics.histogram "obsv.prom.hist" in
  List.iter (Metrics.observe h) [ 0; 1; 3; 3 ];
  let text = Monitor.prometheus (Metrics.snapshot ()) in
  let has needle = contains text needle in
  check bool "counter line" true (has "revizor_obsv_prom_counter 7");
  check bool "sanitized gauge" true (has "revizor_obsv_prom_gauge 2.5");
  check bool "gauge type" true (has "# TYPE revizor_obsv_prom_gauge gauge");
  (* buckets are cumulative: 0 -> 1, le=1 -> 2, le=3 -> 4, +Inf -> 4 *)
  check bool "bucket 0" true (has {|revizor_obsv_prom_hist_bucket{le="0"} 1|});
  check bool "bucket 1" true (has {|revizor_obsv_prom_hist_bucket{le="1"} 2|});
  check bool "bucket 3" true (has {|revizor_obsv_prom_hist_bucket{le="3"} 4|});
  check bool "+Inf bucket" true
    (has {|revizor_obsv_prom_hist_bucket{le="+Inf"} 4|});
  check bool "sum" true (has "revizor_obsv_prom_hist_sum 7");
  check bool "count" true (has "revizor_obsv_prom_hist_count 4")

(* --- monitor round-trip against a live campaign ------------------------ *)

let sock_path name =
  (* Unix-domain socket paths are length-limited (~104 bytes); keep them
     short and unique per test run. *)
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "rvz-%d-%s.sock" (Unix.getpid ()) name)

(* Blocking client, run on its own domain: connect (with retry, the
   server may not have polled yet), send every command in one write,
   read until the responses arrive. *)
let monitor_client path cmds =
  let rec connect tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Some fd
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if tries = 0 then None
        else begin
          ignore (Unix.select [] [] [] 0.05);
          connect (tries - 1)
        end
  in
  match connect 100 with
  | None -> Error "could not connect"
  | Some fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.;
      let msg = String.concat "\n" cmds ^ "\n" in
      let rec send off =
        if off < String.length msg then
          send
            (off + Unix.write_substring fd msg off (String.length msg - off))
      in
      send 0;
      let want = List.length cmds in
      let buf = Buffer.create 1024 in
      let bytes = Bytes.create 4096 in
      let count_lines s =
        String.fold_left (fun n ch -> if ch = '\n' then n + 1 else n) 0 s
      in
      let rec recv () =
        if count_lines (Buffer.contents buf) >= want then
          Ok
            (String.split_on_char '\n' (Buffer.contents buf)
            |> List.filter (fun l -> String.trim l <> ""))
        else
          match Unix.read fd bytes 0 (Bytes.length bytes) with
          | 0 -> Error "server closed early"
          | n ->
              Buffer.add_subbytes buf bytes 0 n;
              recv ()
          | exception Unix.Unix_error _ -> Error "read failed"
      in
      recv ()

(* Keep serving the socket from the test's own domain until the client
   signals it is done (it may connect or finish after [fuzz] returned). *)
let serve_until_done mon done_flag =
  let deadline = Unix.gettimeofday () +. 30. in
  while (not (Atomic.get done_flag)) && Unix.gettimeofday () < deadline do
    Monitor.poll mon;
    ignore (Unix.select [] [] [] 0.005)
  done

let test_monitor_roundtrip () =
  let path = sock_path "live" in
  let mon = Monitor.create ~path in
  Fun.protect ~finally:(fun () -> Monitor.close mon) @@ fun () ->
  let done_flag = Atomic.make false in
  let client =
    Domain.spawn (fun () ->
        let r = monitor_client path [ "status"; "health"; "metrics"; "bogus" ] in
        Atomic.set done_flag true;
        r)
  in
  (* A real 200-test-case campaign serves the client at its test-case
     boundaries. *)
  let cfg = Target.fuzzer_config ~seed:11L Contract.ct_seq Target.target1 in
  let _ = Fuzzer.fuzz ~monitor:mon cfg ~budget:(Fuzzer.Test_cases 200) in
  serve_until_done mon done_flag;
  let lines =
    match Domain.join client with
    | Ok lines -> lines
    | Error e -> Alcotest.fail e
  in
  check int "four responses" 4 (List.length lines);
  let parse l =
    match Json.parse l with Ok j -> j | Error e -> Alcotest.fail e
  in
  let status = parse (List.nth lines 0) in
  check bool "status schema" true
    (Option.bind (Json.member "schema" status) Json.to_str
    = Some "revizor.monitor.v1");
  check bool "status has test_cases" true
    (Option.bind (Json.member "test_cases" status) Json.to_int <> None);
  check bool "status throughput positive" true
    (match Option.bind (Json.member "throughput_per_hour" status) Json.to_float with
    | Some t -> t > 0.
    | None -> false);
  let health = parse (List.nth lines 1) in
  check bool "health has pool_degraded" true
    (Json.member "pool_degraded" health <> None);
  check bool "health has watchdog_trips" true
    (Json.member "watchdog_trips" health <> None);
  let metrics = parse (List.nth lines 2) in
  check bool "metrics carries registry" true
    (Option.bind (Json.member "metrics" metrics) (Json.member "counters")
    <> None);
  let err = parse (List.nth lines 3) in
  check bool "unknown command errors" true (Json.member "error" err <> None)

let test_monitor_idle () =
  let path = sock_path "idle" in
  let mon = Monitor.create ~path in
  Fun.protect ~finally:(fun () -> Monitor.close mon) @@ fun () ->
  let done_flag = Atomic.make false in
  let client =
    Domain.spawn (fun () ->
        let r = monitor_client path [ "status" ] in
        Atomic.set done_flag true;
        r)
  in
  serve_until_done mon done_flag;
  let lines =
    match Domain.join client with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  match Json.parse (List.hd lines) with
  | Ok j ->
      check bool "provider-less status answers idle" true
        (Option.bind (Json.member "state" j) Json.to_str = Some "idle")
  | Error e -> Alcotest.fail e

(* --- monitor on/off bit-identity --------------------------------------- *)

let stats_fingerprint (s : Fuzzer.stats) =
  match Fuzzer.stats_to_json s with
  | Json.Obj fields ->
      Json.to_string (Json.Obj (List.remove_assoc "elapsed_s" fields))
  | j -> Json.to_string j

let outcome_fingerprint = function
  | Fuzzer.No_violation -> "no-violation"
  | Fuzzer.Violation v -> Format.asprintf "%a" Violation.pp v

let deterministic_counters (s : Metrics.summary) =
  List.filter
    (fun (name, _) ->
      (not (String.ends_with ~suffix:"ns" name))
      && (not (String.starts_with ~prefix:"pool." name))
      && not (String.starts_with ~prefix:"monitor." name))
    s.Metrics.counters

let counters_t = Alcotest.(list (pair string int))

let run_campaign ?monitor ~seed ~budget () =
  Metrics.reset ();
  let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target1 in
  let outcome, stats =
    Fuzzer.fuzz ?monitor cfg ~budget:(Fuzzer.Test_cases budget)
  in
  ( outcome_fingerprint outcome,
    stats_fingerprint stats,
    deterministic_counters (Metrics.snapshot ()) )

let test_monitor_transparent () =
  let off_o, off_s, off_c = run_campaign ~seed:21L ~budget:30 () in
  let path = sock_path "ab" in
  let mon = Monitor.create ~path in
  let on_o, on_s, on_c =
    Fun.protect
      ~finally:(fun () -> Monitor.close mon)
      (fun () -> run_campaign ~monitor:mon ~seed:21L ~budget:30 ())
  in
  check string "outcome identical" off_o on_o;
  check string "stats identical" off_s on_s;
  check counters_t "counters identical" off_c on_c

(* --- heartbeat + GC gauges satellites ----------------------------------- *)

let test_heartbeat_events () =
  let buf = Buffer.create 16384 in
  Telemetry.enable_buffer buf;
  let cfg = Target.fuzzer_config ~seed:7L Contract.ct_seq Target.target1 in
  let _ =
    Fuzzer.fuzz ~heartbeat_every:5 cfg ~budget:(Fuzzer.Test_cases 17)
  in
  Telemetry.disable ();
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter_map (fun l ->
           if String.trim l = "" then None
           else Result.to_option (Telemetry.parse_line l))
  in
  let beats =
    List.filter (fun (l : Telemetry.line) -> l.Telemetry.l_name = "fuzz.heartbeat") lines
  in
  (* 17 test cases, every 5th: tc 5, 10, 15. *)
  check int "heartbeat count" 3 (List.length beats);
  let beat = List.hd beats in
  check bool "heartbeat has test_cases" true
    (Option.bind
       (List.assoc_opt "test_cases" beat.Telemetry.l_fields)
       Json.to_int
    = Some 5);
  check bool "heartbeat has throughput" true
    (List.mem_assoc "throughput_per_hour" beat.Telemetry.l_fields);
  check bool "heartbeat has coverage" true
    (List.mem_assoc "coverage_combinations" beat.Telemetry.l_fields)

let test_gc_gauges () =
  Metrics.reset ();
  let cfg = Target.fuzzer_config ~seed:3L Contract.ct_seq Target.target1 in
  let _ = Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 10) in
  let s = Metrics.snapshot () in
  let gauge name = List.assoc_opt name s.Metrics.gauges in
  check bool "heap words sampled" true
    (match gauge "gc.heap_words" with Some v -> v > 0. | None -> false);
  check bool "minor words sampled" true
    (match gauge "gc.minor_words" with Some v -> v > 0. | None -> false);
  check bool "minor collections sampled" true
    (gauge "gc.minor_collections" <> None);
  check bool "major collections sampled" true
    (gauge "gc.major_collections" <> None);
  check bool "domain count sampled" true
    (match gauge "runtime.domain_count" with Some v -> v >= 1. | None -> false)

(* --- violation flight recorder ----------------------------------------- *)

let find_violation () =
  let cfg = Target.fuzzer_config ~seed:1L Contract.ct_seq Target.target5 in
  match Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 4000) with
  | Fuzzer.Violation v, _ -> (cfg, v)
  | Fuzzer.No_violation, _ -> Alcotest.fail "expected a spectre violation"

let test_forensics_artifact () =
  let cfg, v = find_violation () in
  let f = Forensics.capture cfg v in
  (* The divergence fields mirror the violation. *)
  check bool "diverging traces differ" true (f.Forensics.f_htrace_a <> f.Forensics.f_htrace_b);
  check bool "symmetric difference nonempty" true
    (f.Forensics.f_only_a <> [] || f.Forensics.f_only_b <> []);
  (* Both violating inputs got a speculation timeline, and a Spectre
     violation must show at least one transient episode. *)
  check int "two timelines" 2 (List.length f.Forensics.f_timelines);
  check bool "transient episodes recorded" true
    (List.exists
       (fun t -> t.Forensics.tl_events <> [])
       f.Forensics.f_timelines);
  check bool "leak region recovered" true (f.Forensics.f_leak_region <> None);
  (match f.Forensics.f_leak_region with
  | Some (first, last) ->
      check bool "leak region ordered" true (first <= last);
      check bool "leak region within program" true
        (first >= 0
        && last
           < Revizor_isa.Program.num_insts v.Violation.program)
  | None -> ());
  (* Schema round-trip: to_json |> of_json is the identity. *)
  let j = Forensics.to_json f in
  check bool "schema tag" true
    (Option.bind (Json.member "schema" j) Json.to_str
    = Some "revizor.forensics.v1");
  (match Forensics.of_json j with
  | Error e -> Alcotest.fail e
  | Ok f' ->
      check string "codec round-trip" (Json.to_string j)
        (Json.to_string (Forensics.to_json f')));
  (* Disk round-trip via save/load. *)
  let dir = Filename.temp_file "revizor_forensics" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists (Forensics.file ~dir) then
        Sys.remove (Forensics.file ~dir);
      if Sys.file_exists dir then Sys.rmdir dir)
  @@ fun () ->
  Forensics.save ~dir f;
  (match Forensics.load (Forensics.file ~dir) with
  | Error e -> Alcotest.fail e
  | Ok f' ->
      check string "disk round-trip" (Json.to_string j)
        (Json.to_string (Forensics.to_json f')));
  (* The renderer covers every section. *)
  let rendered = Forensics.render f in
  List.iter
    (fun needle ->
      check bool (Printf.sprintf "render mentions %s" needle) true
        (contains rendered needle))
    [
      "Program"; "Violating inputs"; "Contract trace";
      "Hardware trace divergence"; "Speculation timeline";
      "Leak localization"; "LFENCE";
    ]

let test_forensics_deterministic () =
  let cfg, v = find_violation () in
  let a = Json.to_string (Forensics.to_json (Forensics.capture cfg v)) in
  let b = Json.to_string (Forensics.to_json (Forensics.capture cfg v)) in
  check string "capture is deterministic" a b

let () =
  Alcotest.run "observatory"
    [
      ( "trace-analysis",
        [
          tc "span forest" `Quick test_span_forest;
          tc "by domain" `Quick test_by_domain;
          tc "nesting valid" `Quick test_nesting_valid;
          tc "nesting orphan" `Quick test_nesting_orphan;
          tc "deepest gap" `Quick test_deepest_gap;
          tc "gap with nesting" `Quick test_gap_nested_spans;
          tc "stage stats" `Quick test_stage_stats;
          tc "domain stats" `Quick test_domain_stats;
          tc "load file truncated tail" `Quick test_load_file_truncated;
          tc "chrome export" `Quick test_chrome_export;
          tc "diff two runs" `Slow test_trace_diff_runs;
        ] );
      ( "monitor",
        [
          tc "prometheus exposition" `Quick test_prometheus;
          tc "live round-trip" `Slow test_monitor_roundtrip;
          tc "provider-less idle" `Quick test_monitor_idle;
          tc "bit-identical on/off" `Slow test_monitor_transparent;
        ] );
      ( "satellites",
        [
          tc "heartbeat events" `Slow test_heartbeat_events;
          tc "gc gauges" `Slow test_gc_gauges;
        ] );
      ( "forensics",
        [
          tc "artifact schema and render" `Slow test_forensics_artifact;
          tc "capture deterministic" `Slow test_forensics_deterministic;
        ] );
    ]
