(* Resilient campaign runtime (PR 5): checkpoint/resume bit-identity
   across seeds and pool sizes, config-fingerprint rejection, supervised
   pool crash recovery and degradation, watchdog skips, deterministic
   fault injection (model stage, executor noise storms, artifact
   writers), and the tolerant telemetry tail scanner. *)

open Revizor
module Json = Revizor_obs.Json
module Metrics = Revizor_obs.Metrics
module Telemetry = Revizor_obs.Telemetry
module Faultpoint = Revizor_obs.Faultpoint
module Atomic_file = Revizor_obs.Atomic_file

let check = Alcotest.check
let tc = Alcotest.test_case
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* Every fault-injection test disarms the global schedule on the way out,
   pass or fail: armed points leaking into later tests would make the
   whole binary order-dependent. *)
let with_faults ~seed points f =
  Faultpoint.enable ~seed points;
  Fun.protect ~finally:Faultpoint.disable f

let always = { Faultpoint.rate = 1.0; after = 0; max_fires = 0 }

(* --- PRNG state round-trip ------------------------------------------- *)

let test_prng_state_roundtrip () =
  let p = Prng.create ~seed:123L in
  for _ = 1 to 10 do
    ignore (Prng.int p 1000)
  done;
  let st = Prng.state p in
  let expected = List.init 20 (fun _ -> Prng.int p 1_000_000) in
  let q = Prng.of_state st in
  let got = List.init 20 (fun _ -> Prng.int q 1_000_000) in
  check (Alcotest.list int) "draw stream continues identically" expected got;
  (* set_state mid-life behaves like of_state *)
  Prng.set_state p st;
  let again = List.init 20 (fun _ -> Prng.int p 1_000_000) in
  check (Alcotest.list int) "set_state rewinds" expected again

(* --- checkpoint/resume bit-identity ---------------------------------- *)

let outcome_summary = function
  | Fuzzer.No_violation -> "none"
  | Fuzzer.Violation v -> Violation.summary v

let stats_fingerprint (s : Fuzzer.stats) =
  (* elapsed_s is wall time, the one field excluded from bit-identity *)
  let s = { s with Fuzzer.elapsed_s = 0. } in
  Json.to_string (Fuzzer.stats_to_json s)

(* Run the campaign uninterrupted, then as two segments joined by a
   checkpoint that round-trips through the Campaign JSON codec; every
   outcome and statistic must agree. *)
let split_run_identical ~seed ~domains ~total ~split =
  let cfg =
    {
      (Target.fuzzer_config ~seed Contract.ct_seq Target.target5) with
      Fuzzer.model_domains = domains;
    }
  in
  let base_o, base_s = Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases total) in
  let last = ref None in
  let seg1_o, _ =
    Fuzzer.fuzz
      ~on_checkpoint:(fun s -> last := Some s)
      ~checkpoint_every:7 cfg
      ~budget:(Fuzzer.Test_cases split)
  in
  let label = Printf.sprintf "seed=%Ld domains=%d" seed domains in
  match seg1_o with
  | Fuzzer.Violation _ ->
      (* The violation landed inside the first segment; the full run must
         have found the same one. *)
      check string (label ^ ": early violation matches")
        (outcome_summary base_o) (outcome_summary seg1_o)
  | Fuzzer.No_violation -> (
      match !last with
      | None -> Alcotest.failf "%s: no checkpoint emitted" label
      | Some snap -> (
          match Campaign.of_json cfg (Campaign.to_json cfg snap) with
          | Error e -> Alcotest.failf "%s: codec round-trip: %s" label e
          | Ok snap ->
              let res_o, res_s =
                Fuzzer.fuzz ~resume:snap cfg ~budget:(Fuzzer.Test_cases total)
              in
              check string (label ^ ": outcome identical")
                (outcome_summary base_o) (outcome_summary res_o);
              check string (label ^ ": stats identical")
                (stats_fingerprint base_s) (stats_fingerprint res_s)))

let test_resume_bit_identical () =
  List.iter
    (fun seed ->
      List.iter
        (fun domains -> split_run_identical ~seed ~domains ~total:80 ~split:30)
        [ 1; 2; 4 ])
    [ 1L; 2L; 3L; 4L; 5L ]

let test_checkpoint_file_roundtrip () =
  let cfg = Target.fuzzer_config ~seed:3L Contract.ct_seq Target.target5 in
  let last = ref None in
  let _ =
    Fuzzer.fuzz
      ~on_checkpoint:(fun s -> last := Some s)
      cfg ~budget:(Fuzzer.Test_cases 10)
  in
  let snap = Option.get !last in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "revizor_ckpt_%d.json" (Unix.getpid ()))
  in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Campaign.save ~path cfg snap;
  (match Campaign.load ~path cfg with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok snap' ->
      check string "file round-trip"
        (Json.to_string (Campaign.to_json cfg snap))
        (Json.to_string (Campaign.to_json cfg snap')));
  (* A different configuration must be rejected, not silently resumed. *)
  let other = { cfg with Fuzzer.seed = 99L } in
  match Campaign.load ~path other with
  | Ok _ -> Alcotest.fail "fingerprint mismatch accepted"
  | Error e ->
      let has_sub sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      check bool "mismatch error names the fingerprint" true
        (has_sub "fingerprint" e)

let test_fingerprint_sensitivity () =
  let cfg = Target.fuzzer_config ~seed:1L Contract.ct_seq Target.target5 in
  let fp = Campaign.fingerprint cfg in
  check bool "seed changes fingerprint" true
    (fp <> Campaign.fingerprint { cfg with Fuzzer.seed = 2L });
  check bool "entropy changes fingerprint" true
    (fp <> Campaign.fingerprint { cfg with Fuzzer.entropy = 3 });
  check bool "watchdog changes fingerprint" true
    (fp
    <> Campaign.fingerprint
         {
           cfg with
           Fuzzer.watchdog =
             { Watchdog.max_model_steps = 1234; max_input_millis = None };
         });
  (* pool size is result-neutral and deliberately outside the digest *)
  check string "model_domains does not change fingerprint" fp
    (Campaign.fingerprint { cfg with Fuzzer.model_domains = 4 })

(* --- coverage serialization ------------------------------------------ *)

let test_coverage_json_roundtrip () =
  let cov = Coverage.create () in
  Coverage.register cov
    ~patterns:[ Coverage.Store_after_store; Coverage.Load_after_load ]
    ~effective:true;
  Coverage.register cov ~patterns:[ Coverage.Reg_dependency ] ~effective:true;
  Coverage.register cov ~patterns:[ Coverage.Cond_dependency ] ~effective:false;
  let j = Coverage.to_json cov in
  match Coverage.of_json j with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok cov' ->
      check string "json round-trip" (Json.to_string j)
        (Json.to_string (Coverage.to_json cov'));
      check int "combinations preserved"
        (Coverage.total_combinations cov)
        (Coverage.total_combinations cov');
      check bool "ineffective pattern not covered" false
        (Coverage.covered cov' Coverage.Cond_dependency)

(* --- supervised pool -------------------------------------------------- *)

let test_pool_crash_recovery () =
  (* Crash roughly half the index claims: every map must still return the
     sequential result, courtesy of the supervisor retry. *)
  with_faults ~seed:5L
    [ ("pool.worker", { Faultpoint.rate = 0.5; after = 0; max_fires = 0 }) ]
  @@ fun () ->
  let p = Pool.create ~max_failures:6 4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let arr = Array.init 64 Fun.id in
  let expected = Array.map (fun i -> i * i) arr in
  let rounds = ref 0 in
  while (not (Pool.is_degraded p)) && !rounds < 50 do
    incr rounds;
    let got = Pool.map_array p (fun i -> i * i) arr in
    check (Alcotest.array int)
      (Printf.sprintf "round %d results intact" !rounds)
      expected got
  done;
  check bool "pool degraded after bounded failures" true (Pool.is_degraded p);
  check bool "failures counted" true (Pool.failures p >= 6);
  (* Degraded pool keeps working — sequentially, off the fault point. *)
  let got = Pool.map_array p (fun i -> i * i) arr in
  check (Alcotest.array int) "degraded pool still correct" expected got

let test_pool_task_exception_propagates () =
  (* User-function exceptions are not crashes: they re-raise on the
     submitting domain after the barrier, and do not degrade the pool. *)
  let p = Pool.create 3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  (match
     Pool.map_array p
       (fun i -> if i = 5 then failwith "task boom" else i)
       (Array.init 16 Fun.id)
   with
  | _ -> Alcotest.fail "expected the task exception to propagate"
  | exception Failure msg -> check string "original exception" "task boom" msg);
  check bool "no degradation from task exceptions" false (Pool.is_degraded p)

(* --- watchdog --------------------------------------------------------- *)

let test_watchdog_fuel () =
  let w = { Watchdog.max_model_steps = 5; max_input_millis = None } in
  let fuel = Watchdog.start w in
  for _ = 1 to 5 do
    Watchdog.tick fuel
  done;
  match Watchdog.tick fuel with
  | () -> Alcotest.fail "expected Pathological on exhausted fuel"
  | exception Watchdog.Pathological _ -> ()

let test_watchdog_skips_pathological () =
  (* A starvation-level step budget trips on every test case; the
     campaign must absorb the skips and still complete its budget. *)
  let cfg =
    {
      (Target.fuzzer_config ~seed:1L Contract.ct_seq Target.target5) with
      Fuzzer.watchdog = { Watchdog.max_model_steps = 10; max_input_millis = None };
    }
  in
  let outcome, stats = Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 15) in
  check string "no violation possible" "none" (outcome_summary outcome);
  check int "budget consumed" 15 stats.Fuzzer.test_cases;
  (* a rare tiny test case can finish under even this budget *)
  check bool "most test cases skipped" true
    (stats.Fuzzer.skipped_pathological >= 10)

let test_default_watchdog_transparent () =
  (* The default ceiling must not perturb results: same campaign with the
     ceiling at default vs effectively infinite. *)
  let base = Target.fuzzer_config ~seed:2L Contract.ct_seq Target.target5 in
  let huge =
    {
      base with
      Fuzzer.watchdog =
        { Watchdog.max_model_steps = max_int; max_input_millis = None };
    }
  in
  let o1, s1 = Fuzzer.fuzz base ~budget:(Fuzzer.Test_cases 40) in
  let o2, s2 = Fuzzer.fuzz huge ~budget:(Fuzzer.Test_cases 40) in
  check string "outcome identical" (outcome_summary o1) (outcome_summary o2);
  check string "stats identical" (stats_fingerprint s1) (stats_fingerprint s2);
  check int "nothing skipped" 0 s1.Fuzzer.skipped_pathological

(* --- fault injection: model stage ------------------------------------ *)

let test_model_fault_absorbed () =
  (* Three injected model blowups: each aborts one test case, counted as
     faulted+absorbed; the campaign completes its budget regardless. *)
  Metrics.reset ();
  with_faults ~seed:1L
    [ ("model.ctrace", { Faultpoint.rate = 1.0; after = 5; max_fires = 3 }) ]
  @@ fun () ->
  let cfg = Target.fuzzer_config ~seed:1L Contract.ct_seq Target.target1 in
  let _, stats = Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 10) in
  check int "budget consumed" 10 stats.Fuzzer.test_cases;
  check int "three test cases absorbed the faults" 3
    stats.Fuzzer.faulted_test_cases;
  let snap = Metrics.snapshot () in
  check int "fault.absorbed counter" 3
    (Option.value
       (List.assoc_opt "fault.absorbed" snap.Metrics.counters)
       ~default:0)

let test_fault_schedule_deterministic () =
  let pattern () =
    with_faults ~seed:77L
      [ ("model.ctrace", { Faultpoint.rate = 0.3; after = 2; max_fires = 0 }) ]
    @@ fun () ->
    let p = Faultpoint.point "model.ctrace" in
    List.init 200 (fun _ -> Faultpoint.should_fire p)
  in
  check (Alcotest.list bool) "same seed, same schedule" (pattern ()) (pattern ())

let test_faultpoint_disabled_is_inert () =
  Faultpoint.disable ();
  let p = Faultpoint.point "model.ctrace" in
  check bool "disabled" false (Faultpoint.enabled ());
  (* [fired] is a lifetime count (earlier tests armed this point), so the
     assertion is on the delta. *)
  let before = Faultpoint.fired p in
  for _ = 1 to 100 do
    Faultpoint.fire p
  done;
  check int "no fires when disarmed" before (Faultpoint.fired p)

(* --- fault injection: executor noise storms + adaptive reps ----------- *)

let test_noise_storm_triggers_adaptive () =
  Metrics.reset ();
  let measure () =
    with_faults ~seed:7L
      [ ("executor.noise_storm", { Faultpoint.rate = 0.8; after = 0; max_fires = 0 }) ]
    @@ fun () ->
    let cfg = Target.fuzzer_config ~seed:3L Contract.ct_seq Target.target5 in
    let ex_cfg =
      {
        cfg.Fuzzer.executor with
        Executor.adaptive =
          Some { Executor.reject_ratio = 0.2; max_total_reps = 24 };
      }
    in
    let cpu = Revizor_uarch.Cpu.create cfg.Fuzzer.uarch in
    let executor = Executor.create cpu ex_cfg in
    let prng = Prng.create ~seed:3L in
    let program = Generator.generate prng Generator.default_cfg in
    let inputs = Input.generate_many prng ~entropy:2 ~n:10 in
    match Revizor_isa.Program.flatten program with
    | Error e -> Alcotest.failf "flatten: %s" e
    | Ok flat ->
        let prog = Revizor_emu.Compiled.of_flat flat in
        Array.to_list
          (Array.map Revizor_uarch.Htrace.elements
             (Executor.htraces executor prog inputs))
  in
  let a = measure () in
  let snap = Metrics.snapshot () in
  check bool "storms observed" true
    (Option.value
       (List.assoc_opt "executor.noise.storms" snap.Metrics.counters)
       ~default:0
    > 0);
  check bool "adaptive escalation fired" true
    (Option.value
       (List.assoc_opt "executor.adaptive_escalations" snap.Metrics.counters)
       ~default:0
    > 0);
  (* The whole storm + escalation is a pure function of the fault seed. *)
  let b = measure () in
  check
    (Alcotest.list (Alcotest.list int))
    "deterministic under the fault seed" a b

let test_adaptive_off_bit_identical () =
  (* adaptive = None must reduce exactly to the fixed-repetition
     executor: same htraces with and without the field. *)
  let cfg = Target.fuzzer_config ~seed:9L Contract.ct_seq Target.target5 in
  let run adaptive =
    let ex_cfg = { cfg.Fuzzer.executor with Executor.adaptive } in
    let cpu = Revizor_uarch.Cpu.create cfg.Fuzzer.uarch in
    let executor = Executor.create cpu ex_cfg in
    let prng = Prng.create ~seed:9L in
    let program = Generator.generate prng Generator.default_cfg in
    let inputs = Input.generate_many prng ~entropy:2 ~n:10 in
    match Revizor_isa.Program.flatten program with
    | Error e -> Alcotest.failf "flatten: %s" e
    | Ok flat ->
        let prog = Revizor_emu.Compiled.of_flat flat in
        Array.to_list
          (Array.map Revizor_uarch.Htrace.elements
             (Executor.htraces executor prog inputs))
  in
  check
    (Alcotest.list (Alcotest.list int))
    "clean measurements identical"
    (run None)
    (run (Some { Executor.reject_ratio = 0.2; max_total_reps = 24 }))

(* --- fault injection: artifact writers -------------------------------- *)

let test_atomic_write_retry () =
  Metrics.reset ();
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "revizor_aw_%d.txt" (Unix.getpid ()))
  in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (* Two injected failures, then success on the third attempt. *)
  with_faults ~seed:1L
    [ ("writer.io", { Faultpoint.rate = 1.0; after = 0; max_fires = 2 }) ]
    (fun () -> Atomic_file.write path "payload one");
  check string "published after retries" "payload one"
    (In_channel.with_open_bin path In_channel.input_all);
  let snap = Metrics.snapshot () in
  check int "retries counted" 2
    (Option.value
       (List.assoc_opt "obs.atomic_write_retries" snap.Metrics.counters)
       ~default:0);
  (* Permanent failure: the exception surfaces after bounded retries and
     the previous artifact survives untouched. *)
  (with_faults ~seed:1L [ ("writer.io", always) ] @@ fun () ->
   match Atomic_file.write path "payload two" with
   | () -> Alcotest.fail "expected Injected after exhausted retries"
   | exception Faultpoint.Injected _ -> ());
  check string "previous artifact intact" "payload one"
    (In_channel.with_open_bin path In_channel.input_all)

(* --- fault injection: end-to-end campaign under a pool crash storm ----- *)

let test_campaign_survives_worker_crashes () =
  Metrics.reset ();
  let run () =
    with_faults ~seed:13L
      [ ("pool.worker", { Faultpoint.rate = 0.2; after = 0; max_fires = 0 }) ]
    @@ fun () ->
    let cfg =
      {
        (Target.fuzzer_config ~seed:3L Contract.ct_seq Target.target5) with
        Fuzzer.model_domains = 4;
      }
    in
    Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 40)
  in
  let o1, s1 = run () in
  (* Crashes recovered index-by-index: the campaign result equals the
     crash-free sequential one. *)
  let clean =
    Fuzzer.fuzz
      (Target.fuzzer_config ~seed:3L Contract.ct_seq Target.target5)
      ~budget:(Fuzzer.Test_cases 40)
  in
  check string "outcome equals crash-free run"
    (outcome_summary (fst clean))
    (outcome_summary o1);
  check string "stats equal crash-free run"
    (stats_fingerprint (snd clean))
    (stats_fingerprint s1);
  let snap = Metrics.snapshot () in
  check bool "crashes actually happened" true
    (Option.value
       (List.assoc_opt "pool.worker_crashes" snap.Metrics.counters)
       ~default:0
    > 0)

(* --- parallel execute/materialize (PR 7) ------------------------------ *)

(* Full-campaign fingerprints must be invariant under the executor pool
   size and the pipeline overlap depth: the pipelined loop commits in
   generation order, workers replicate all scratch state, and noise and
   fault draws are keyed on the test-case index. *)
let run_campaign ?(mutate = Fun.id) ~seed ~domains ~depth ~total target =
  let cfg = Target.fuzzer_config ~seed Contract.ct_seq target in
  let cfg =
    mutate
      { cfg with Fuzzer.executor_domains = domains; pipeline_depth = depth }
  in
  let o, s = Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases total) in
  (outcome_summary o, stats_fingerprint s)

let assert_domains_invariant ?mutate ~label target =
  List.iter
    (fun seed ->
      let base =
        run_campaign ?mutate ~seed ~domains:1 ~depth:1 ~total:40 target
      in
      List.iter
        (fun (domains, depth) ->
          let got =
            run_campaign ?mutate ~seed ~domains ~depth ~total:40 target
          in
          let l =
            Printf.sprintf "%s seed=%Ld domains=%d depth=%d" label seed
              domains depth
          in
          check string (l ^ ": outcome") (fst base) (fst got);
          check string (l ^ ": stats") (snd base) (snd got))
        [ (2, 0); (2, 2); (4, 1) ])
    [ 1L; 2L; 3L; 4L; 5L ]

let test_exec_domains_bit_identical () =
  assert_domains_invariant ~label:"plain" Target.target5

let test_exec_domains_noise () =
  (* Keyed noise: the flip schedule is a pure function of (noise seed,
     test-case coordinates), so a noisy campaign shards identically. *)
  let mutate cfg =
    {
      cfg with
      Fuzzer.executor =
        {
          cfg.Fuzzer.executor with
          Executor.noise =
            Some { Executor.flip_probability = 0.3; seed = 41L };
        };
    }
  in
  assert_domains_invariant ~mutate ~label:"noise" Target.target5

let test_exec_domains_faults () =
  (* Per-test-case fault contexts: with an unlimited-fires schedule the
     firing pattern inside test case [k] depends only on (fault seed, k),
     not on which domain runs it or in what order. (A global [max_fires]
     cap would reintroduce cross-domain ordering, so none is set.) *)
  with_faults ~seed:11L
    [ ("model.ctrace", { Faultpoint.rate = 0.1; after = 0; max_fires = 0 }) ]
  @@ fun () -> assert_domains_invariant ~label:"faults" Target.target5

let test_parallel_resume_bit_identical () =
  (* Checkpoints are pool-size-invariant in both directions: a snapshot
     taken by the pipelined loop round-trips through the codec under the
     sequential config (same fingerprint) and resumes — in parallel mode
     — to the exact outcome of the uninterrupted sequential run. *)
  List.iter
    (fun seed ->
      let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target5 in
      let par =
        { cfg with Fuzzer.executor_domains = 2; pipeline_depth = 2 }
      in
      let base_o, base_s = Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 80) in
      let last = ref None in
      let seg1_o, _ =
        Fuzzer.fuzz
          ~on_checkpoint:(fun s -> last := Some s)
          ~checkpoint_every:7 par
          ~budget:(Fuzzer.Test_cases 30)
      in
      let label = Printf.sprintf "par-resume seed=%Ld" seed in
      match seg1_o with
      | Fuzzer.Violation _ ->
          check string (label ^ ": early violation matches")
            (outcome_summary base_o) (outcome_summary seg1_o)
      | Fuzzer.No_violation -> (
          match !last with
          | None -> Alcotest.failf "%s: no checkpoint emitted" label
          | Some snap -> (
              match Campaign.of_json cfg (Campaign.to_json par snap) with
              | Error e -> Alcotest.failf "%s: codec round-trip: %s" label e
              | Ok snap ->
                  let res_o, res_s =
                    Fuzzer.fuzz ~resume:snap par
                      ~budget:(Fuzzer.Test_cases 80)
                  in
                  check string (label ^ ": outcome identical")
                    (outcome_summary base_o) (outcome_summary res_o);
                  check string (label ^ ": stats identical")
                    (stats_fingerprint base_s) (stats_fingerprint res_s))))
    [ 1L; 2L; 3L ]

let test_parallel_fingerprint_invariant () =
  let cfg = Target.fuzzer_config ~seed:1L Contract.ct_seq Target.target5 in
  let fp = Campaign.fingerprint cfg in
  check string "executor_domains does not change fingerprint" fp
    (Campaign.fingerprint { cfg with Fuzzer.executor_domains = 4 });
  check string "pipeline_depth does not change fingerprint" fp
    (Campaign.fingerprint { cfg with Fuzzer.pipeline_depth = 8 });
  (* The noise seed keys the flip schedule, so it IS part of the result
     stream and must be digested. *)
  let with_noise seed =
    Campaign.fingerprint
      {
        cfg with
        Fuzzer.executor =
          {
            cfg.Fuzzer.executor with
            Executor.noise =
              Some { Executor.flip_probability = 0.3; seed };
          };
      }
  in
  check bool "noise seed changes fingerprint" true
    (with_noise 41L <> with_noise 42L)

let test_memo_off_bit_identical () =
  (* The measurement memo must be a pure optimization: campaigns with it
     disabled produce identical outcomes and statistics, on both a
     branch-free and a branch-heavy (speculative) target. *)
  let run target memo =
    Executor.set_memo memo;
    Fun.protect ~finally:(fun () -> Executor.set_memo true) @@ fun () ->
    let o, s =
      Fuzzer.fuzz
        (Target.fuzzer_config ~seed:4L Contract.ct_seq target)
        ~budget:(Fuzzer.Test_cases 40)
    in
    (outcome_summary o, stats_fingerprint s)
  in
  List.iter
    (fun (name, target) ->
      let on = run target true and off = run target false in
      check string (name ^ ": outcome") (fst off) (fst on);
      check string (name ^ ": stats") (snd off) (snd on))
    [ ("target1", Target.target1); ("target5", Target.target5) ]

(* --- telemetry tail tolerance ----------------------------------------- *)

let test_truncated_tail_tolerated () =
  let buf = Buffer.create 256 in
  Telemetry.enable_buffer buf;
  Telemetry.event "unit.a" [ ("k", Json.Int 1) ];
  Telemetry.event "unit.b" [];
  Telemetry.disable ();
  let good = Buffer.contents buf in
  let truncated = good ^ "{\"ts\":123,\"kind\":\"ev" in
  let scan s = Telemetry.scan_lines (String.split_on_char '\n' s) in
  let sc = scan truncated in
  check bool "no hard error" true (sc.Telemetry.sc_error = None);
  check bool "truncation reported" true sc.Telemetry.sc_truncated_tail;
  check int "intact lines still counted" 2 sc.Telemetry.sc_events;
  (* The same garbage in the middle is NOT tolerated. *)
  let corrupt = "{\"ts\":123,\"kind\":\"ev\n" ^ good in
  let sc = scan corrupt in
  check bool "mid-file corruption is an error" true
    (sc.Telemetry.sc_error <> None);
  (* And a fully well-formed file reports neither. *)
  let sc = scan good in
  check bool "clean file: no error" true (sc.Telemetry.sc_error = None);
  check bool "clean file: no truncation" false sc.Telemetry.sc_truncated_tail

let () =
  Alcotest.run "resilience"
    [
      ( "checkpoint",
        [
          tc "prng state round-trip" `Quick test_prng_state_roundtrip;
          tc "resume bit-identical (seeds x pool sizes)" `Slow
            test_resume_bit_identical;
          tc "checkpoint file round-trip + rejection" `Quick
            test_checkpoint_file_roundtrip;
          tc "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
          tc "coverage json round-trip" `Quick test_coverage_json_roundtrip;
        ] );
      ( "pool",
        [
          tc "crash recovery + degradation" `Quick test_pool_crash_recovery;
          tc "task exceptions propagate" `Quick
            test_pool_task_exception_propagates;
          tc "campaign survives crash storm" `Slow
            test_campaign_survives_worker_crashes;
        ] );
      ( "watchdog",
        [
          tc "fuel exhaustion raises" `Quick test_watchdog_fuel;
          tc "pathological test cases skipped" `Quick
            test_watchdog_skips_pathological;
          tc "default ceiling transparent" `Slow
            test_default_watchdog_transparent;
        ] );
      ( "faults",
        [
          tc "model fault absorbed" `Quick test_model_fault_absorbed;
          tc "schedule deterministic" `Quick test_fault_schedule_deterministic;
          tc "disabled points inert" `Quick test_faultpoint_disabled_is_inert;
          tc "noise storm triggers adaptive reps" `Quick
            test_noise_storm_triggers_adaptive;
          tc "adaptive off is bit-identical" `Quick
            test_adaptive_off_bit_identical;
          tc "atomic writes retry injected faults" `Quick
            test_atomic_write_retry;
        ] );
      ( "parallel",
        [
          tc "executor domains bit-identical" `Slow
            test_exec_domains_bit_identical;
          tc "executor domains with noise" `Slow test_exec_domains_noise;
          tc "executor domains with fault injection" `Slow
            test_exec_domains_faults;
          tc "parallel checkpoint/resume bit-identical" `Slow
            test_parallel_resume_bit_identical;
          tc "pool knobs outside fingerprint" `Quick
            test_parallel_fingerprint_invariant;
          tc "memo off is bit-identical" `Slow test_memo_off_bit_identical;
        ] );
      ( "telemetry",
        [ tc "truncated tail tolerated" `Quick test_truncated_tail_tolerated ] );
    ]
