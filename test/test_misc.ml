(* Additional coverage: results persistence, target presets, report
   rendering, the swap check driven directly, nested-speculation modelling
   and the experiments drivers. *)

open Revizor_isa
open Revizor_uarch
open Revizor

let check = Alcotest.check
let tc = Alcotest.test_case
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string
let _ = (bool, int, string)

(* --- Results persistence -------------------------------------------- *)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "revizor_test_%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let find_violation_for g contract target =
  let cfg = Target.fuzzer_config ~seed:42L contract target in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let executor = Executor.create cpu cfg.Fuzzer.executor in
  let prng = Prng.create ~seed:7L in
  let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
  match Fuzzer.check_test_case cfg executor g.Gadgets.program inputs with
  | Ok (Some v) -> (cfg, executor, v)
  | Ok None -> Alcotest.fail "expected a violation to persist"
  | Error e -> Alcotest.fail e

let results_tests =
  [
    tc "input line roundtrip" `Quick (fun () ->
        let i = { Input.seed = 0x1234_5678_9ABCL; entropy = 3 } in
        match Results.input_of_line (Results.input_to_line i) with
        | Ok i' -> check bool "equal" true (Input.equal i i')
        | Error e -> Alcotest.fail e);
    tc "input line rejects junk" `Quick (fun () ->
        check bool "junk" true (Result.is_error (Results.input_of_line "nonsense"));
        check bool "partial" true
          (Result.is_error (Results.input_of_line "seed=xx entropy=2")));
    tc "saved violations reload and still violate" `Quick (fun () ->
        with_tmpdir (fun dir ->
            let cfg, executor, v =
              find_violation_for Gadgets.spectre_v1 Contract.ct_seq Target.target5
            in
            Results.save_violation ~dir v;
            check bool "asm exists" true
              (Sys.file_exists (Filename.concat dir "violation.asm"));
            let program =
              match Results.load_program (Filename.concat dir "violation.asm") with
              | Ok p -> p
              | Error e -> Alcotest.fail e
            in
            let inputs =
              match Results.load_inputs (Filename.concat dir "inputs.txt") with
              | Ok l -> l
              | Error e -> Alcotest.fail e
            in
            check int "same number of inputs" (List.length v.Violation.inputs)
              (List.length inputs);
            match Fuzzer.check_test_case cfg executor program inputs with
            | Ok (Some v') ->
                check string "same label" v.Violation.label v'.Violation.label
            | Ok None -> Alcotest.fail "reloaded case no longer violates"
            | Error e -> Alcotest.fail e));
  ]

(* --- Target presets ---------------------------------------------------- *)

let target_tests =
  [
    tc "Table 2 structure" `Quick (fun () ->
        check int "eight targets" 8 (List.length Target.all);
        let v4_off t = not t.Target.uarch.Uarch_config.v4_patch in
        check bool "targets 1-3 unpatched" true
          (List.for_all v4_off [ Target.target1; Target.target2; Target.target3 ]);
        check bool "targets 4-8 patched" true
          (List.for_all
             (fun t -> t.Target.uarch.Uarch_config.v4_patch)
             [ Target.target4; Target.target5; Target.target6; Target.target7; Target.target8 ]);
        check bool "assist mode on 7 and 8" true
          (Target.target7.Target.threat.Attack.assist_page <> None
          && Target.target8.Target.threat.Attack.assist_page <> None);
        check bool "coffee lake only on 8" true
          Target.target8.Target.uarch.Uarch_config.mds_patch);
    tc "find by name" `Quick (fun () ->
        check bool "found" true (Target.find "Target 3" = Some Target.target3);
        check bool "case insensitive" true (Target.find "target 3" = Some Target.target3);
        check bool "missing" true (Target.find "Target 9" = None));
  ]

(* --- Report rendering ---------------------------------------------------- *)

let report_tests =
  [
    tc "render_table aligns columns" `Quick (fun () ->
        let t =
          Report.render_table ~header:[ "a"; "bb" ]
            [ [ "xxx"; "y" ]; [ "z"; "wwww" ] ]
        in
        let lines = String.split_on_char '\n' t in
        check int "four lines" 4 (List.length lines);
        check bool "all same width" true
          (match lines with
          | first :: rest ->
              List.for_all (fun l -> String.length l = String.length first) rest
          | [] -> false));
    tc "t3 outcome strings" `Quick (fun () ->
        check string "detected" "V (V1, 10 tcs)"
          (Report.t3_outcome_to_string
             (Experiments.Detected { label = "V1"; test_cases = 10 }));
        check string "skipped" "x*" (Report.t3_outcome_to_string Experiments.Skipped);
        check string "gadget" "V (V4-var, gadget)"
          (Report.t3_outcome_to_string (Experiments.Gadget_demo { label = "V4-var" })));
  ]

(* --- Analyzer pair exclusion ------------------------------------------------ *)

let exclusion_tests =
  [
    tc "excluded pairs are skipped, later pairs still found" `Quick (fun () ->
        let cls = { Analyzer.ctrace = []; members = [ 0; 1; 2 ] } in
        let h = Htrace.of_list in
        (* 0-1 incomparable, 0-2 incomparable, 1-2 comparable (subset) *)
        let traces = [| h [ 1 ]; h [ 2 ]; h [ 2; 3 ] |] in
        (match Analyzer.check_class cls traces with
        | Some (0, 1) -> ()
        | _ -> Alcotest.fail "expected (0,1) first");
        (match Analyzer.check_class ~excluding:[ (0, 1) ] cls traces with
        | Some (0, 2) -> ()
        | _ -> Alcotest.fail "expected (0,2) after exclusion");
        (* exclusion is order-insensitive *)
        (match Analyzer.check_class ~excluding:[ (1, 0); (2, 0) ] cls traces with
        | Some (1, 2) -> Alcotest.fail "1-2 are comparable"
        | Some _ -> Alcotest.fail "unexpected pair"
        | None -> ()));
  ]

(* --- Postprocessor stages individually --------------------------------------- *)

let postprocessor_stage_tests =
  [
    tc "input minimization keeps a violating subsequence" `Quick (fun () ->
        let cfg, executor, v =
          find_violation_for Gadgets.spectre_v1 Contract.ct_seq Target.target5
        in
        let m = Postprocessor.minimize cfg executor v in
        check bool "non-trivial shrink" true
          (List.length m.Postprocessor.inputs < List.length v.Violation.inputs);
        check bool "at least a pair" true (List.length m.Postprocessor.inputs >= 2));
    tc "minimized gadget keeps the leak instructions" `Quick (fun () ->
        (* the V1 gadget is already near-minimal: minimization must not
           destroy the branch or the transient load *)
        let cfg, executor, v =
          find_violation_for Gadgets.spectre_v1 Contract.ct_seq Target.target5
        in
        let m = Postprocessor.minimize cfg executor v in
        let ops =
          List.map (fun i -> i.Instruction.opcode)
            (Program.instructions m.Postprocessor.program)
        in
        check bool "keeps a conditional branch" true
          (List.exists (function Opcode.Jcc _ -> true | _ -> false) ops);
        check bool "keeps a load" true
          (List.exists Instruction.loads (Program.instructions m.Postprocessor.program)));
  ]

(* --- Parser edges -------------------------------------------------------------- *)

let parser_edge_tests =
  [
    tc "call/ret programs roundtrip" `Quick (fun () ->
        let p = Gadgets.ret2spec.Gadgets.program in
        match Asm_parser.parse_program (Program.to_string p) with
        | Ok p' -> check string "same text" (Program.to_string p) (Program.to_string p')
        | Error e -> Alcotest.fail e);
    tc "all gadget programs roundtrip through the parser" `Quick (fun () ->
        List.iter
          (fun (g : Gadgets.t) ->
            match Asm_parser.parse_program (Program.to_string g.Gadgets.program) with
            | Ok p' ->
                check string g.Gadgets.name
                  (Program.to_string g.Gadgets.program)
                  (Program.to_string p')
            | Error e -> Alcotest.failf "%s: %s" g.Gadgets.name e)
          Gadgets.all);
    tc "negative displacement and rsp-relative operands" `Quick (fun () ->
        match Asm_parser.parse_instruction "ADD qword ptr [RSP - 8], 2" with
        | Ok i ->
            check string "printed" "ADD qword ptr [RSP - 8], 2"
              (Instruction.to_string i)
        | Error e -> Alcotest.fail e);
  ]

(* --- ARCH observation on speculative paths -------------------------------------- *)

let arch_cond_tests =
  [
    tc "ARCH-COND exposes speculatively loaded values" `Quick (fun () ->
        let arch_cond = Contract.make Contract.Arch Contract.Cond in
        let g = Gadgets.stt_speculative in
        let flat = Revizor_emu.Compiled.of_program_exn g.Gadgets.program in
        let prng = Prng.create ~seed:31L in
        (* an input that architecturally skips the leak block *)
        let input =
          List.find
            (fun i ->
              let s = Input.to_state i in
              Revizor_emu.Word.ult 64L
                (Revizor_emu.Memory.read s.Revizor_emu.State.mem
                   ~addr:Revizor_emu.Layout.sandbox_base Width.W64))
            (Input.generate_many prng ~entropy:2 ~n:60)
        in
        let seq = Model.run Contract.arch_seq flat input in
        let cond = Model.run arch_cond flat input in
        let values t =
          List.length
            (List.filter (function Ctrace.Value _ -> true | _ -> false) t)
        in
        (* the architectural flag load contributes one value; only the
           COND exploration adds the speculative ones *)
        check int "arch-seq sees only the architectural value" 1
          (values seq.Model.ctrace);
        check bool "arch-cond sees the speculative loads too" true
          (values cond.Model.ctrace > values seq.Model.ctrace));
  ]

(* --- Swap check, driven directly ------------------------------------------- *)

let swap_tests =
  [
    tc "a real violation survives the swap check" `Quick (fun () ->
        let _, executor, v =
          find_violation_for Gadgets.spectre_v1 Contract.ct_seq Target.target5
        in
        let flat = Revizor_emu.Compiled.of_program_exn v.Violation.program in
        check bool "survives" true
          (Executor.swap_check executor flat v.Violation.inputs
             v.Violation.index_a v.Violation.index_b));
  ]

(* --- Channel equivalence (§6.1 note) -------------------------------------------- *)

let run_with_threat target contract g =
  let cfg = Target.fuzzer_config ~seed:42L contract target in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let executor = Executor.create cpu cfg.Fuzzer.executor in
  let prng = Prng.create ~seed:7L in
  let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
  match Fuzzer.check_test_case cfg executor g.Gadgets.program inputs with
  | Ok v -> v
  | Error e -> Alcotest.fail e

let channel_tests =
  [
    tc "flush+reload and evict+reload detect what prime+probe does" `Quick
      (fun () ->
        (* the paper notes F+R/E+R produce equivalent traces for a 4KB
           sandbox: 64 sets map 1:1 onto the monitored lines *)
        List.iter
          (fun threat ->
            let target = { Target.target5 with Target.threat } in
            match
              run_with_threat target Contract.ct_seq Gadgets.spectre_v1
            with
            | Some v -> check string (Attack.threat_to_string threat) "V1" v.Violation.label
            | None ->
                Alcotest.failf "%s missed the V1 leak"
                  (Attack.threat_to_string threat))
          [ Attack.prime_probe; Attack.flush_reload; Attack.evict_reload ]);
  ]

(* --- Executor determinism under assists -------------------------------------------- *)

let assist_determinism_tests =
  [
    tc "assist-mode measurements are reproducible across sessions" `Quick
      (fun () ->
        let flat = Revizor_emu.Compiled.of_program_exn Gadgets.mds_lfb.Gadgets.program in
        let measure () =
          let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
          let ex =
            Executor.create cpu
              (Executor.default_config ~threat:Attack.prime_probe_assist ())
          in
          let prng = Prng.create ~seed:77L in
          Executor.htraces ex flat (Input.generate_many prng ~entropy:2 ~n:20)
        in
        let a = measure () and b = measure () in
        check bool "identical traces" true (Array.for_all2 Htrace.equal a b));
  ]

(* --- Nested speculation in the model ------------------------------------------ *)

(* Two nested mispredictable branches; the innermost load is only reachable
   when both explorations nest. *)
let nested_program =
  let open Instruction in
  Program.make
    [
      Program.block "main"
        [
          binop Opcode.Cmp (Operand.reg Reg.RBX) (Operand.imm 10);
          jcc Cond.AE "exit";
        ];
      Program.block "mid"
        [
          binop Opcode.Cmp (Operand.reg Reg.RCX) (Operand.imm 10);
          jcc Cond.AE "exit";
        ];
      Program.block "inner"
        [ mov (Operand.reg Reg.RDX) (Operand.sandbox ~disp:0x300 Reg.RAX) ];
      Program.block "exit" [];
    ]

let nesting_tests =
  [
    tc "nesting explores deeper speculative paths" `Quick (fun () ->
        let flat = Revizor_emu.Compiled.of_program_exn nested_program in
        let prng = Prng.create ~seed:17L in
        (* an input where both branches are architecturally taken (both
           registers >= 10), so the inner load is two mispredictions deep *)
        let input =
          List.find
            (fun i ->
              let s = Revizor_emu.State.create () in
              Input.apply i s;
              Revizor_emu.State.get_reg s Reg.RBX Width.W64 >= 10L
              && Revizor_emu.State.get_reg s Reg.RCX Width.W64 >= 10L)
            (Input.generate_many prng ~entropy:2 ~n:60)
        in
        let flat_obs contract =
          List.length (Model.run contract flat input).Model.ctrace
        in
        let plain = flat_obs Contract.mem_cond in
        let nested = flat_obs (Contract.with_nesting Contract.mem_cond) in
        check int "flat exploration sees no load" 0 plain;
        check bool "nested exploration reaches the inner load" true (nested > plain));
  ]

(* --- Experiments drivers (smoke) ------------------------------------------------ *)

let experiment_tests =
  [
    tc "throughput driver reports a steady rate" `Quick (fun () ->
        let t = Experiments.throughput ~seconds:1.0 ~seed:2L () in
        check bool "ran some cases" true (t.Experiments.test_cases > 3);
        check bool "rate positive" true (t.Experiments.cases_per_hour > 0.));
    tc "minimal_inputs finds ret2spec at 2" `Quick (fun () ->
        match
          Experiments.minimal_inputs ~seed:5L Contract.ct_seq Target.target5
            Gadgets.ret2spec
        with
        | Some n -> check bool "small" true (n <= 3)
        | None -> Alcotest.fail "not found");
    tc "table5 row shape for ret2spec" `Quick (fun () ->
        let rows = Experiments.table5 ~runs:5 ~max_inputs:16 ~seed:3L () in
        let r2s =
          List.find
            (fun (r : Experiments.t5_row) ->
              r.Experiments.gadget.Gadgets.name = "ret2spec")
            rows
        in
        check int "all found" 5 r2s.Experiments.found;
        check bool "tiny input counts" true (r2s.Experiments.mean_inputs <= 4.));
    tc "parallel fuzzing finds the same class of violation" `Slow (fun () ->
        let cfg = Target.fuzzer_config ~seed:1L Contract.ct_seq Target.target5 in
        match Fuzzer.fuzz_parallel ~domains:2 cfg ~budget:(Fuzzer.Test_cases 400) with
        | Fuzzer.Violation v, per_domain ->
            check string "label" "V1" v.Violation.label;
            check int "two domains reported" 2 (List.length per_domain)
        | Fuzzer.No_violation, _ -> Alcotest.fail "parallel fuzz found nothing");
    tc "speculation-window sweep shape" `Quick (fun () ->
        let sweep = Experiments.ablation_speculation_window () in
        check bool "window 0 behaves like SEQ (violated)" true
          (List.assoc 0 sweep);
        check bool "full window compliant" false (List.assoc 250 sweep));
    tc "table3 skip logic follows the contract ordering" `Quick (fun () ->
        (* with a 1-test-case budget nothing is detected, so for every
           target the CT-SEQ cell is fuzzed and the more liberal contracts
           are skipped (the paper's x* convention) *)
        let cells = Experiments.table3 ~budget:1 ~seed:99L () in
        check int "32 cells" 32 (List.length cells);
        List.iter
          (fun (c : Experiments.t3_cell) ->
            match (Contract.name c.Experiments.contract, c.Experiments.outcome) with
            | "CT-SEQ", Experiments.Not_detected _ -> ()
            | "CT-SEQ", o ->
                Alcotest.failf "CT-SEQ cell should be fuzzed, got %s"
                  (Report.t3_outcome_to_string o)
            | _, (Experiments.Skipped | Experiments.Gadget_demo _ | Experiments.Not_detected _) -> ()
            | name, Experiments.Detected _ ->
                Alcotest.failf "unexpected detection for %s at budget 1" name)
          cells);
    tc "gadget catalog is well-formed" `Quick (fun () ->
        List.iter
          (fun (g : Gadgets.t) ->
            match Program.validate g.Gadgets.program with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: %s" g.Gadgets.name e)
          Gadgets.all;
        check bool "find works" true (Gadgets.find "spectre-v1" <> None);
        check bool "find missing" true (Gadgets.find "nope" = None);
        check int "table 5 has seven gadgets" 7 (List.length Gadgets.table5));
  ]

let () =
  Alcotest.run "misc"
    [
      ("results", results_tests);
      ("targets", target_tests);
      ("report", report_tests);
      ("swap_check", swap_tests);
      ("exclusion", exclusion_tests);
      ("postprocessor_stages", postprocessor_stage_tests);
      ("parser_edges", parser_edge_tests);
      ("arch_cond", arch_cond_tests);
      ("channels", channel_tests);
      ("assist_determinism", assist_determinism_tests);
      ("nesting", nesting_tests);
      ("experiments", experiment_tests);
    ]
