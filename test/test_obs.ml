(* Observability layer (PR 4): histogram bucketing edges, snapshot
   determinism across model-pool sizes, telemetry-off bit-identical
   fuzzing outcomes, JSONL round-trips, and stats.json persistence. *)

open Revizor
module Json = Revizor_obs.Json
module Metrics = Revizor_obs.Metrics
module Telemetry = Revizor_obs.Telemetry
module Probe = Revizor_obs.Probe

let check = Alcotest.check
let tc = Alcotest.test_case
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* --- histogram bucketing -------------------------------------------- *)

let test_bucket_edges () =
  check int "bucket of 0" 0 (Metrics.bucket_of 0);
  check int "bucket of negative" 0 (Metrics.bucket_of (-17));
  check int "bucket of 1" 1 (Metrics.bucket_of 1);
  check int "bucket of 2" 2 (Metrics.bucket_of 2);
  check int "bucket of 3" 2 (Metrics.bucket_of 3);
  check int "bucket of 4" 3 (Metrics.bucket_of 4);
  check int "bucket of 1023" 10 (Metrics.bucket_of 1023);
  check int "bucket of 1024" 11 (Metrics.bucket_of 1024);
  check int "bucket of max_int" 62 (Metrics.bucket_of max_int);
  check int "lower of bucket 0" 0 (Metrics.bucket_lower 0);
  check int "lower of bucket 1" 1 (Metrics.bucket_lower 1);
  check int "lower of bucket 62" (1 lsl 61) (Metrics.bucket_lower 62);
  (* Every bucket's lower bound maps back to that bucket, and each
     bucket's last value still belongs to it. *)
  for b = 0 to 62 do
    check int
      (Printf.sprintf "bucket_of (bucket_lower %d)" b)
      b
      (Metrics.bucket_of (Metrics.bucket_lower b));
    if b >= 1 && b < 62 then
      check int
        (Printf.sprintf "last value of bucket %d" b)
        b
        (Metrics.bucket_of ((Metrics.bucket_lower (b + 1)) - 1))
  done

let test_histogram_summary () =
  Metrics.reset ();
  let h = Metrics.histogram "test.obs.hist" in
  List.iter (Metrics.observe h) [ 0; 1; 1; 3; 1024; max_int ];
  let s = Metrics.snapshot () in
  let hs = List.assoc "test.obs.hist" s.Metrics.histograms in
  check int "count" 6 hs.Metrics.h_count;
  check bool "sum overflowed is still a sum" true
    (hs.Metrics.h_sum = 0 + 1 + 1 + 3 + 1024 + max_int);
  check
    (Alcotest.list (Alcotest.pair int int))
    "non-zero buckets, ascending"
    [ (0, 1); (1, 2); (2, 1); (1024, 1); (1 lsl 61, 1) ]
    hs.Metrics.h_buckets

(* --- snapshot determinism ------------------------------------------- *)

(* Time metrics (suffix "ns"), per-domain pool counters (prefix "pool.")
   and gauges are nondeterministic by design; everything else must be a
   pure function of the seed, whatever the model-pool size. *)
let deterministic_counters (s : Metrics.summary) =
  List.filter
    (fun (name, _) ->
      (not (String.ends_with ~suffix:"ns" name))
      && not (String.starts_with ~prefix:"pool." name))
    s.Metrics.counters

let fuzz_counters ~model_domains ~seed ~budget =
  Metrics.reset ();
  let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target1 in
  let cfg = { cfg with Fuzzer.model_domains } in
  let _ = Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases budget) in
  deterministic_counters (Metrics.snapshot ())

let counters_t = Alcotest.(list (pair string int))

let test_snapshot_determinism () =
  let base = fuzz_counters ~model_domains:1 ~seed:3L ~budget:30 in
  check bool "some deterministic counters" true (List.length base > 10);
  check counters_t "same seed, same counters"
    base
    (fuzz_counters ~model_domains:1 ~seed:3L ~budget:30);
  List.iter
    (fun d ->
      check counters_t
        (Printf.sprintf "model_domains=%d matches serial" d)
        base
        (fuzz_counters ~model_domains:d ~seed:3L ~budget:30))
    [ 2; 4 ]

(* --- telemetry on/off leaves outcomes bit-identical ------------------ *)

let stats_fingerprint (s : Fuzzer.stats) =
  (* elapsed_s is wall-clock, everything else must match exactly. *)
  match Fuzzer.stats_to_json s with
  | Json.Obj fields ->
      Json.to_string
        (Json.Obj (List.remove_assoc "elapsed_s" fields))
  | j -> Json.to_string j

let outcome_fingerprint = function
  | Fuzzer.No_violation -> "no-violation"
  | Fuzzer.Violation v -> Format.asprintf "%a" Violation.pp v

let run_fuzz ~seed ~budget =
  let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target1 in
  let outcome, stats = Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases budget) in
  (outcome_fingerprint outcome, stats_fingerprint stats)

let test_telemetry_transparent () =
  List.iter
    (fun seed ->
      Telemetry.disable ();
      let off = run_fuzz ~seed ~budget:15 in
      let buf = Buffer.create 4096 in
      Telemetry.enable_buffer buf;
      let on =
        Fun.protect ~finally:Telemetry.disable (fun () ->
            run_fuzz ~seed ~budget:15)
      in
      check bool
        (Printf.sprintf "seed %Ld: sink captured lines" seed)
        true
        (Buffer.length buf > 0);
      check
        (Alcotest.pair string string)
        (Printf.sprintf "seed %Ld: identical outcome and stats" seed)
        off on)
    [ 1L; 2L; 3L; 4L; 5L ]

(* --- JSONL round-trips ----------------------------------------------- *)

let test_jsonl_roundtrip () =
  let buf = Buffer.create 4096 in
  Telemetry.enable_buffer buf;
  Fun.protect ~finally:Telemetry.disable (fun () ->
      Telemetry.set_context [ ("tc", Json.Int 7) ];
      Telemetry.event "unit.event"
        [
          ("n", Json.Int 42);
          ("label", Json.String "a \"quoted\" value\n");
          ("ratio", Json.Float 0.25);
          ("flag", Json.Bool true);
          ("nothing", Json.Null);
        ];
      let p = Probe.create "unit_probe" in
      Probe.with_span p (fun () -> ignore (Sys.opaque_identity (1 + 1))));
  let lines =
    Buffer.contents buf |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  check bool "at least event + span" true (List.length lines >= 2);
  List.iter
    (fun line ->
      match Telemetry.parse_line line with
      | Error e -> Alcotest.failf "unparseable line %S: %s" line e
      | Ok l ->
          check string "render/parse round-trip" line (Telemetry.render_line l);
          check bool "context merged into every line" true
            (List.mem_assoc "tc" l.Telemetry.l_fields))
    lines;
  (* Kind sanity: the probe span is tagged as such. *)
  let kinds =
    List.filter_map
      (fun l ->
        match Telemetry.parse_line l with
        | Ok p -> Some (p.Telemetry.l_kind, p.Telemetry.l_name)
        | Error _ -> None)
      lines
  in
  check bool "has the event" true (List.mem ("event", "unit.event") kinds);
  check bool "has the span" true (List.mem ("span", "stage.unit_probe") kinds)

let test_json_value_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool false;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.1;
      Json.Float 1e18;
      Json.String "nested \\ \"chars\" \t\n";
      Json.List [ Json.Int 1; Json.List []; Json.Obj [] ];
      Json.Obj
        [ ("b", Json.Int 2); ("a", Json.Int 1); ("c", Json.List [ Json.Null ]) ];
    ]
  in
  List.iter
    (fun j ->
      let s = Json.to_string j in
      match Json.parse s with
      | Error e -> Alcotest.failf "parse %S failed: %s" s e
      | Ok j' -> check string "round-trip" s (Json.to_string j'))
    samples

(* --- stats.json persistence ------------------------------------------ *)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "revizor_obs_%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let test_stats_json_roundtrip () =
  (* Target 5 x CT-SEQ detects quickly (spectre-v1 is in reach). *)
  let cfg = Target.fuzzer_config ~seed:1L Contract.ct_seq Target.target5 in
  Metrics.reset ();
  match Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 500) with
  | Fuzzer.No_violation, _ -> Alcotest.fail "expected a violation on target 5"
  | Fuzzer.Violation v, stats ->
      with_tmpdir (fun dir ->
          Results.save_violation ~stats ~dir v;
          check bool "stats.json written" true
            (Sys.file_exists (Filename.concat dir "stats.json"));
          match Results.load_stats (Filename.concat dir "stats.json") with
          | Error e -> Alcotest.failf "load_stats: %s" e
          | Ok saved -> (
              (match saved.Results.stats with
              | None -> Alcotest.fail "stats missing"
              | Some s ->
                  check string "stats round-trip" (stats_fingerprint stats)
                    (stats_fingerprint s));
              match Json.member "counters" saved.Results.metrics with
              | Some (Json.Obj counters) ->
                  check bool "metrics snapshot captured" true
                    (List.mem_assoc "fuzzer.test_cases" counters)
              | _ -> Alcotest.fail "metrics.counters missing"))

(* --- probes record even on exceptions --------------------------------- *)

let test_probe_exception () =
  Metrics.reset ();
  let p = Probe.create "unit_raises" in
  (try Probe.with_span p (fun () -> failwith "boom") with Failure _ -> ());
  let s = Metrics.snapshot () in
  check int "call counted" 1 (List.assoc "stage.unit_raises.calls" s.Metrics.counters);
  check bool "time recorded" true
    (List.assoc "stage.unit_raises.ns" s.Metrics.counters >= 0)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          tc "bucketing edges" `Quick test_bucket_edges;
          tc "histogram summary" `Quick test_histogram_summary;
          tc "probe records on exception" `Quick test_probe_exception;
        ] );
      ( "determinism",
        [
          tc "snapshot deterministic across pool sizes" `Slow
            test_snapshot_determinism;
          tc "telemetry on/off transparent" `Slow test_telemetry_transparent;
        ] );
      ( "serialization",
        [
          tc "JSONL round-trip" `Quick test_jsonl_roundtrip;
          tc "Json value round-trip" `Quick test_json_value_roundtrip;
          tc "stats.json round-trip" `Slow test_stats_json_roundtrip;
        ] );
    ]
