(* Unit tests for the microarchitectural simulator: cache, predictors,
   page table, configuration, attacks, and the speculative engine. *)

open Revizor_isa
open Revizor_emu
open Revizor_uarch

let check = Alcotest.check
let tc = Alcotest.test_case

(* Alcotest testable shorthands *)
let bool = Alcotest.bool
let int = Alcotest.int
let int64 = Alcotest.int64
let string = Alcotest.string
let _ = (bool, int, int64, string)
let char = Alcotest.char
let base = Layout.sandbox_base
let addr_of_line line = Int64.add base (Int64.of_int (line * Layout.cache_line))

(* --- Cache ------------------------------------------------------------ *)

let cache_tests =
  [
    tc "miss then hit" `Quick (fun () ->
        let c = Cache.create () in
        check bool "cold miss" true (Cache.touch c base = `Miss);
        check bool "warm hit" true (Cache.touch c base = `Hit);
        check bool "contains" true (Cache.contains c base));
    tc "same line same set" `Quick (fun () ->
        let c = Cache.create () in
        ignore (Cache.touch c base);
        check bool "same line offset" true
          (Cache.touch c (Int64.add base 63L) = `Hit);
        check bool "next line" true (Cache.touch c (Int64.add base 64L) = `Miss));
    tc "LRU evicts the oldest way" `Quick (fun () ->
        let c = Cache.create ~sets:1 ~ways:2 () in
        ignore (Cache.touch c (addr_of_line 0));
        ignore (Cache.touch c (addr_of_line 1));
        (* touch line 0 again: line 1 becomes LRU *)
        ignore (Cache.touch c (addr_of_line 0));
        ignore (Cache.touch c (addr_of_line 2));
        check bool "line0 kept" true (Cache.contains c (addr_of_line 0));
        check bool "line1 evicted" false (Cache.contains c (addr_of_line 1)));
    tc "flush" `Quick (fun () ->
        let c = Cache.create () in
        ignore (Cache.touch c base);
        Cache.flush_line c base;
        check bool "flushed" false (Cache.contains c base);
        ignore (Cache.touch c base);
        Cache.flush_all c;
        check bool "flushed all" false (Cache.contains c base));
    tc "prime and probe detect victim accesses" `Quick (fun () ->
        let c = Cache.create () in
        Cache.prime c;
        ignore (Cache.touch c (addr_of_line 5));
        check bool "touched set evicted attacker line" true (Cache.probe c 5);
        check bool "untouched set intact" false (Cache.probe c 6);
        (* probing re-primes *)
        check bool "re-primed" false (Cache.probe c 5));
    tc "copy is independent" `Quick (fun () ->
        let c = Cache.create () in
        ignore (Cache.touch c base);
        let c' = Cache.copy c in
        Cache.flush_all c';
        check bool "original intact" true (Cache.contains c base));
  ]

(* --- Predictors --------------------------------------------------------- *)

let predictor_tests =
  [
    tc "pht starts not-taken and trains with hysteresis" `Quick (fun () ->
        let p = Predictors.Pht.create () in
        check bool "cold (weakly not-taken)" false (Predictors.Pht.predict p ~pc:10);
        Predictors.Pht.update p ~pc:10 ~taken:true;
        check bool "weak counter flips on one update" true
          (Predictors.Pht.predict p ~pc:10);
        (* saturate at strongly-taken, then check the 2-bit hysteresis *)
        Predictors.Pht.update p ~pc:10 ~taken:true;
        Predictors.Pht.update p ~pc:10 ~taken:true;
        Predictors.Pht.update p ~pc:10 ~taken:false;
        check bool "hysteresis" true (Predictors.Pht.predict p ~pc:10);
        Predictors.Pht.update p ~pc:10 ~taken:false;
        check bool "untrained" false (Predictors.Pht.predict p ~pc:10));
    tc "pht entries are per address" `Quick (fun () ->
        let p = Predictors.Pht.create () in
        Predictors.Pht.update p ~pc:1 ~taken:true;
        Predictors.Pht.update p ~pc:1 ~taken:true;
        check bool "other pc unaffected" false (Predictors.Pht.predict p ~pc:2));
    tc "pht reset" `Quick (fun () ->
        let p = Predictors.Pht.create () in
        Predictors.Pht.update p ~pc:1 ~taken:true;
        Predictors.Pht.update p ~pc:1 ~taken:true;
        Predictors.Pht.reset p;
        check bool "reset" false (Predictors.Pht.predict p ~pc:1));
    tc "rsb is LIFO with underflow" `Quick (fun () ->
        let r = Predictors.Rsb.create ~depth:2 () in
        check bool "underflow" true (Predictors.Rsb.pop r = None);
        Predictors.Rsb.push r 1;
        Predictors.Rsb.push r 2;
        check bool "lifo" true (Predictors.Rsb.pop r = Some 2);
        check bool "lifo2" true (Predictors.Rsb.pop r = Some 1);
        check bool "empty again" true (Predictors.Rsb.pop r = None));
    tc "rsb overflow drops the oldest" `Quick (fun () ->
        let r = Predictors.Rsb.create ~depth:2 () in
        Predictors.Rsb.push r 1;
        Predictors.Rsb.push r 2;
        Predictors.Rsb.push r 3;
        check bool "top" true (Predictors.Rsb.pop r = Some 3);
        check bool "second" true (Predictors.Rsb.pop r = Some 2);
        check bool "oldest gone" true (Predictors.Rsb.pop r = None));
    tc "btb remembers the last target" `Quick (fun () ->
        let b = Predictors.Btb.create () in
        check bool "cold" true (Predictors.Btb.predict b ~pc:3 = None);
        Predictors.Btb.update b ~pc:3 ~target:7;
        check bool "warm" true (Predictors.Btb.predict b ~pc:3 = Some 7);
        Predictors.Btb.update b ~pc:3 ~target:9;
        check bool "updated" true (Predictors.Btb.predict b ~pc:3 = Some 9));
  ]

(* --- Page table ----------------------------------------------------------- *)

let page_tests =
  [
    tc "assist fires once per clearing" `Quick (fun () ->
        let p = Page_table.create () in
        check bool "set by default" false (Page_table.access p ~page:0);
        Page_table.clear_accessed p ~page:0;
        check bool "assist" true (Page_table.access p ~page:0);
        check bool "only once" false (Page_table.access p ~page:0);
        Page_table.clear_accessed p ~page:0;
        check bool "again after clearing" true (Page_table.access p ~page:0));
    tc "out of range pages are ignored" `Quick (fun () ->
        let p = Page_table.create () in
        Page_table.clear_accessed p ~page:99;
        check bool "no assist" false (Page_table.access p ~page:99));
  ]

(* --- Config ------------------------------------------------------------------ *)

let config_tests =
  [
    tc "division latency grows with operand size" `Quick (fun () ->
        let cfg = Uarch_config.skylake ~v4_patch:false in
        let l v = Uarch_config.div_latency cfg ~dividend:v in
        check bool "zero fastest" true (l 0L < l 0xFFL);
        check bool "monotone" true (l 0xFFL < l 0xFFFF_FFFFL);
        check bool "wide slowest" true (l 0xFFFF_FFFFL < l (-1L)));
    tc "presets" `Quick (fun () ->
        let sky = Uarch_config.skylake ~v4_patch:false in
        check bool "sky no v4 patch" false sky.Uarch_config.v4_patch;
        check bool "sky no mds patch" false sky.Uarch_config.mds_patch;
        check bool "sky stores at retire" false
          sky.Uarch_config.speculative_store_eviction;
        let cl = Uarch_config.coffee_lake in
        check bool "cl mds patch" true cl.Uarch_config.mds_patch;
        check bool "cl v4 patch" true cl.Uarch_config.v4_patch;
        check bool "cl spec store eviction" true
          cl.Uarch_config.speculative_store_eviction);
  ]

(* --- Attack ---------------------------------------------------------------- *)

let attack_tests =
  [
    tc "prime+probe observes the victim's sets" `Quick (fun () ->
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        let trace =
          Attack.observe cpu Attack.prime_probe (fun () ->
              ignore (Cache.touch (Cpu.cache cpu) (addr_of_line 9)))
        in
        check bool "set 9" true (Htrace.mem 9 trace);
        check int "only set 9" 1 (Htrace.cardinal trace));
    tc "flush+reload observes lines over two pages" `Quick (fun () ->
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        let line = 64 + 3 (* page 1 *) in
        let trace =
          Attack.observe cpu Attack.flush_reload (fun () ->
              ignore (Cache.touch (Cpu.cache cpu) (addr_of_line line)))
        in
        check bool "line present" true (Htrace.mem line trace));
    tc "assist threat clears the page bit" `Quick (fun () ->
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        let _ = Attack.observe cpu Attack.prime_probe_assist (fun () -> ()) in
        check bool "page 0 cleared" false
          (Page_table.accessed (Cpu.pages cpu) ~page:0));
    tc "trace domains" `Quick (fun () ->
        check int "pp" 64 (Attack.trace_domain Attack.Prime_probe);
        check int "fr" 128 (Attack.trace_domain Attack.Flush_reload));
  ]

(* --- Htrace -------------------------------------------------------------------- *)

let htrace_tests =
  [
    tc "subset and comparable" `Quick (fun () ->
        let a = Htrace.of_list [ 1; 2 ] and b = Htrace.of_list [ 1; 2; 3 ] in
        check bool "subset" true (Htrace.subset a b);
        check bool "not superset" false (Htrace.subset b a);
        check bool "comparable" true (Htrace.comparable a b);
        let c = Htrace.of_list [ 1; 4 ] in
        check bool "incomparable" false (Htrace.comparable b c));
    tc "printing" `Quick (fun () ->
        let t = Htrace.of_list [ 0; 5 ] in
        let s = Format.asprintf "%a" Htrace.pp t in
        check int "64 wide" 64 (String.length s);
        check char "bit 0" '1' s.[0];
        check char "bit 5" '1' s.[5];
        check char "bit 6" '0' s.[6]);
  ]

(* --- Cpu engine ----------------------------------------------------------------- *)

(* A little harness: build a state with given pool-register values and a
   memory filler. *)
let make_state ?(regs = []) ?(mem = fun _ -> 0) () =
  let s = State.create () in
  List.iter (fun (r, v) -> State.set_reg s r Width.W64 v) regs;
  Memory.fill s.State.mem ~f:mem;
  s

let compile p = Compiled.of_flat (Program.flatten_exn p)
let v1_flat = compile Revizor.Gadgets.spectre_v1.Revizor.Gadgets.program
let v4_flat = compile Revizor.Gadgets.spectre_v4.Revizor.Gadgets.program

let has_kind kind cpu =
  List.exists (fun (e : Cpu.event) -> e.Cpu.kind = kind) (Cpu.events cpu)

let transient_sets cpu =
  List.concat_map (fun (e : Cpu.event) -> e.Cpu.touched_sets) (Cpu.events cpu)

(* Drive the V1 gadget: train the branch not-taken (mem[0] <= 64), then run
   a taken input (mem[0] > 64) — predicted not-taken, it mispredicts, and
   the wrong path is the fall-through leak block. *)
let taken_mem off = if off < 8 then 0xFF else 0

let run_v1 cpu ~leak_line =
  for _ = 1 to 3 do
    let s = make_state ~mem:(fun _ -> 0) () in
    Cpu.run cpu v1_flat s
  done;
  let s =
    make_state
      ~regs:[ (Reg.RAX, Int64.of_int (leak_line * 64)) ]
      ~mem:taken_mem ()
  in
  Cpu.run cpu v1_flat s

let cpu_tests =
  [
    tc "architectural state matches the pure emulator" `Quick (fun () ->
        List.iter
          (fun (g : Revizor.Gadgets.t) ->
            let flat = Program.flatten_exn g.Revizor.Gadgets.program in
            let mem off = (off * 7) land 0xFF in
            let regs = [ (Reg.RAX, 64L); (Reg.RBX, 128L); (Reg.RCX, 192L) ] in
            let s_cpu = make_state ~regs ~mem () in
            let s_emu = make_state ~regs ~mem () in
            let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:false) in
            Cpu.run cpu (Compiled.of_flat flat) s_cpu;
            ignore (Semantics.run flat s_emu);
            check bool (g.Revizor.Gadgets.name ^ " arch state equal") true
              (State.equal_arch s_cpu s_emu))
          (List.filter
             (fun (g : Revizor.Gadgets.t) -> not g.Revizor.Gadgets.needs_assist)
             Revizor.Gadgets.all));
    tc "v1: trained branch mispredicts and leaks transiently" `Quick (fun () ->
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        run_v1 cpu ~leak_line:3;
        check bool "mispredict event" true (has_kind Cpu.Branch_mispredict cpu);
        check bool "leak line touched" true (List.mem 3 (transient_sets cpu)));
    tc "v1: cold predictor on a not-taken branch does not speculate" `Quick
      (fun () ->
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        let s = make_state ~mem:(fun _ -> 0) () in
        Cpu.run cpu v1_flat s;
        check bool "no mispredict" false (has_kind Cpu.Branch_mispredict cpu));
    tc "v4: bypass occurs without the patch" `Quick (fun () ->
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:false) in
        let s = make_state ~mem:(fun off -> if off = 128 then 0x80 else 0) () in
        Cpu.run cpu v4_flat s;
        check bool "bypass event" true (has_kind Cpu.Store_bypass cpu);
        (* the stale value mem[128] = 0x80 -> line 2 *)
        check bool "stale line touched" true (List.mem 2 (transient_sets cpu)));
    tc "v4: the SSBD patch suppresses the bypass" `Quick (fun () ->
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        let s = make_state ~mem:(fun off -> if off = 128 then 0x80 else 0) () in
        Cpu.run cpu v4_flat s;
        check bool "no bypass" false (has_kind Cpu.Store_bypass cpu));
    tc "lfence stops transient execution" `Quick (fun () ->
        (* fence the leak block of the V1 gadget *)
        let g = Revizor.Gadgets.spectre_v1.Revizor.Gadgets.program in
        let fenced =
          Program.make
            (List.map
               (fun (b : Program.block) ->
                 if b.Program.label = "leak" then
                   { b with Program.insts = Instruction.lfence :: b.Program.insts }
                 else b)
               g.Program.blocks)
        in
        let flat = compile fenced in
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        let s = make_state ~regs:[ (Reg.RAX, 192L) ] ~mem:taken_mem () in
        Cpu.run cpu flat s;
        let transient = transient_sets cpu in
        check bool "no transient leak" false (List.mem 3 transient));
    tc "assisted load forwards fill-buffer data (MDS)" `Quick (fun () ->
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        let flat =
          compile Revizor.Gadgets.mds_lfb.Revizor.Gadgets.program
        in
        Page_table.clear_accessed (Cpu.pages cpu) ~page:0;
        (* the page-1 word at offset 4096 holds the "secret" 0x100 -> line 4 *)
        let s =
          make_state ~mem:(fun off -> if off = 4097 then 0x01 else 0) ()
        in
        Cpu.run cpu flat s;
        check bool "assist event" true (has_kind Cpu.Assist_load_forward cpu);
        check bool "secret line touched" true (List.mem 4 (transient_sets cpu)));
    tc "MDS patch zeroes the forwarded value" `Quick (fun () ->
        let cpu = Cpu.create Uarch_config.coffee_lake in
        let flat =
          compile Revizor.Gadgets.mds_lfb.Revizor.Gadgets.program
        in
        Page_table.clear_accessed (Cpu.pages cpu) ~page:0;
        let s =
          make_state ~mem:(fun off -> if off = 4097 then 0x01 else 0) ()
        in
        Cpu.run cpu flat s;
        (* the transient transmit goes through line 0 (value zero), not 4 *)
        check bool "no secret line" false (List.mem 4 (transient_sets cpu)));
    tc "assisted store breaks forwarding (LVI) only with the leak flag" `Quick
      (fun () ->
        let flat =
          compile Revizor.Gadgets.lvi_null.Revizor.Gadgets.program
        in
        let run cfg =
          let cpu = Cpu.create cfg in
          Page_table.clear_accessed (Cpu.pages cpu) ~page:0;
          let s = make_state ~mem:(fun off -> if off = 65 then 0x01 else 0) () in
          Cpu.run cpu flat s;
          cpu
        in
        let coffee = run Uarch_config.coffee_lake in
        check bool "lvi event on coffee lake" true
          (has_kind Cpu.Assist_store_forward coffee);
        check bool "stale line leaked" true (List.mem 4 (transient_sets coffee));
        let sky = run (Uarch_config.skylake ~v4_patch:true) in
        check bool "no lvi on skylake" false
          (has_kind Cpu.Assist_store_forward sky));
    tc "speculative stores touch the cache only on Coffee Lake" `Quick
      (fun () ->
        let flat =
          compile Revizor.Gadgets.spec_store_eviction.Revizor.Gadgets.program
        in
        let run cfg =
          let cpu = Cpu.create cfg in
          (* a taken input on a cold (not-taken-predicting) PHT mispredicts
             into the fall-through leak block *)
          let s = make_state ~regs:[ (Reg.RAX, 64L) ] ~mem:taken_mem () in
          Cpu.run cpu flat s;
          cpu
        in
        (* transient store target: 2048 + 64 -> set 33 *)
        let coffee = run Uarch_config.coffee_lake in
        check bool "coffee lake leaks" true (List.mem 33 (transient_sets coffee));
        let sky = run (Uarch_config.skylake ~v4_patch:true) in
        check bool "skylake does not" false (List.mem 33 (transient_sets sky)));
    tc "ret2spec: RSB predicts the stale return target" `Quick (fun () ->
        let flat =
          compile Revizor.Gadgets.ret2spec.Revizor.Gadgets.program
        in
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        let s = make_state ~regs:[ (Reg.RAX, 128L) ] ~mem:(fun _ -> 0) () in
        Cpu.run cpu flat s;
        check bool "return mispredict" true (has_kind Cpu.Return_mispredict cpu);
        check bool "leak line" true (List.mem 2 (transient_sets cpu)));
    tc "reset_session clears microarchitectural state" `Quick (fun () ->
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        run_v1 cpu ~leak_line:3;
        Cpu.reset_session cpu;
        check bool "cache flushed" false (Cache.contains (Cpu.cache cpu) base);
        check bool "events cleared" true (Cpu.events cpu = []);
        let s = make_state ~mem:(fun _ -> 0) () in
        Cpu.run cpu v1_flat s;
        check bool "predictor reset" false (has_kind Cpu.Branch_mispredict cpu));
    tc "division latency gates transient loads (V1-var race)" `Quick (fun () ->
        let flat =
          compile Revizor.Gadgets.spectre_v1_var.Revizor.Gadgets.program
        in
        let run ~rax ~rcx =
          let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
          let s =
            make_state ~regs:[ (Reg.RAX, rax); (Reg.RCX, rcx) ] ~mem:taken_mem ()
          in
          Cpu.run cpu flat s;
          transient_sets cpu
        in
        (* fast div(RAX) executes load at line 5; slow div gates it;
           symmetric for RCX and line 21 *)
        let fast_slow = run ~rax:0L ~rcx:64L in
        check bool "load1 executed" true (List.mem 5 fast_slow);
        check bool "load2 gated" false (List.mem 21 fast_slow);
        let slow_fast = run ~rax:64L ~rcx:0L in
        check bool "load1 gated" false (List.mem 5 slow_fast);
        check bool "load2 executed" true (List.mem 21 slow_fast));
  ]

(* --- Ports / port-contention channel (extension) ----------------------- *)

let ports_tests =
  [
    tc "port map covers every opcode" `Quick (fun () ->
        List.iter
          (fun spec ->
            let i =
              Instruction.make
                ~operands:
                  (List.mapi
                     (fun pos kind ->
                       let w =
                         match (pos, spec.Revizor_isa.Catalog.src_width) with
                         | 1, Some ws -> ws
                         | _ -> spec.Revizor_isa.Catalog.width
                       in
                       match kind with
                       | Revizor_isa.Catalog.KReg -> Operand.reg ~w Reg.RAX
                       | Revizor_isa.Catalog.KImm -> Operand.imm 1
                       | Revizor_isa.Catalog.KMem -> Operand.sandbox ~w Reg.RBX
                       | Revizor_isa.Catalog.KCl -> Operand.Reg (Reg.RCX, Width.W8))
                     spec.Revizor_isa.Catalog.shape)
                spec.Revizor_isa.Catalog.opcode
            in
            List.iter
              (fun p -> check bool "port in range" true (p >= 0 && p < Ports.n_ports))
              (Ports.of_instruction i))
          (Revizor_isa.Catalog.body_specs
             [ Revizor_isa.Catalog.AR; Revizor_isa.Catalog.MEM; Revizor_isa.Catalog.VAR ]));
    tc "memory ops use load/store ports" `Quick (fun () ->
        let load = Instruction.mov (Operand.reg Reg.RBX) (Operand.sandbox Reg.RAX) in
        check bool "load port" true (List.mem 2 (Ports.of_instruction load));
        let store = Instruction.mov (Operand.sandbox Reg.RAX) (Operand.reg Reg.RBX) in
        check bool "store data port" true (List.mem 4 (Ports.of_instruction store));
        check bool "store addr port" true (List.mem 7 (Ports.of_instruction store)));
    tc "bucket encoding is monotone" `Quick (fun () ->
        check int "zero" 0 (Ports.bucket_of_count 0);
        let rec mono last c =
          if c > 4096 then ()
          else begin
            let b = Ports.bucket_of_count c in
            check bool "monotone" true (b >= last);
            check bool "bounded" true (b < Ports.buckets);
            mono b (c * 2)
          end
        in
        mono 0 1);
    tc "cpu counts ports per run" `Quick (fun () ->
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        let flat =
          compile
            (Program.of_insts
               [
                 Instruction.binop Opcode.Imul (Operand.reg Reg.RAX) (Operand.reg Reg.RAX);
                 Instruction.mov (Operand.reg Reg.RBX) (Operand.sandbox Reg.RAX);
               ])
        in
        Cpu.run cpu flat (make_state ());
        let counts = Cpu.port_counts cpu in
        check int "one mul" 1 counts.(1);
        check int "two loads... one" 1 counts.(2);
        (* a second run resets the counters *)
        Cpu.run cpu flat (make_state ());
        check int "reset between runs" 1 (Cpu.port_counts cpu).(1));
    tc "port-contention observation sees transient multiplies" `Quick (fun () ->
        let g = Revizor.Gadgets.spectre_v1_ports in
        let flat = compile g.Revizor.Gadgets.program in
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        let observe regs =
          Attack.observe cpu Attack.port_contention (fun () ->
              Cpu.run cpu flat (make_state ~regs ()))
        in
        (* taken branch (RBX nonzero); cold predictor mispredicts; fast
           division (RAX=0) lets the multiply chain issue *)
        let fast = observe [ (Reg.RBX, 64L); (Reg.RAX, 0L) ] in
        Cpu.reset_session cpu;
        let slow = observe [ (Reg.RBX, 64L); (Reg.RAX, 64L) ] in
        check bool "different port-1 buckets" false (Htrace.equal fast slow));
  ]

let () =
  Alcotest.run "uarch"
    [
      ("cache", cache_tests);
      ("predictors", predictor_tests);
      ("page_table", page_tests);
      ("config", config_tests);
      ("attack", attack_tests);
      ("htrace", htrace_tests);
      ("cpu", cpu_tests);
      ("ports", ports_tests);
    ]
