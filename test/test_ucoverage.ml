(* Microarchitectural coverage atlas (PR 9): feature codecs, harvesting
   from synthetic event records, JSON/checkpoint round-trips, atlas
   determinism across executor-pool sizes, kill-and-resume bit-identity,
   and outcome transparency with collection on or off. *)

open Revizor
open Revizor_uarch
module Json = Revizor_obs.Json
module Metrics = Revizor_obs.Metrics
module Telemetry = Revizor_obs.Telemetry

let check = Alcotest.check
let tc = Alcotest.test_case
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let ev ?(kind = Cpu.Branch_mispredict) ?(pc = 0) ?(loads = 0) ?(sets = [])
    () =
  {
    Cpu.kind;
    origin_pc = pc;
    transient_loads = loads;
    touched_sets = sets;
  }

let atlas_fingerprint u = Json.to_string (Ucoverage.to_json u)

let outcome_summary = function
  | Fuzzer.No_violation -> "none"
  | Fuzzer.Violation v -> Violation.summary v

let stats_fingerprint (s : Fuzzer.stats) =
  let s = { s with Fuzzer.elapsed_s = 0. } in
  Json.to_string (Fuzzer.stats_to_json s)

(* --- feature string codec ---------------------------------------------- *)

let all_test_features =
  List.concat_map
    (fun k ->
      [
        Ucoverage.Kind_origin (k, Ucoverage.O_cond_branch);
        Ucoverage.Kind_origin (k, Ucoverage.O_other);
        Ucoverage.Window (k, 0);
        Ucoverage.Window (k, 5);
        Ucoverage.Footprint (k, 3);
        Ucoverage.Transition (k, Cpu.Store_bypass);
      ])
    Cpu.all_kinds
  @ [ Ucoverage.Depth 0; Ucoverage.Depth 7 ]

let test_feature_string_roundtrip () =
  List.iter
    (fun f ->
      let s = Ucoverage.feature_to_string f in
      match Ucoverage.feature_of_string s with
      | Some f' ->
          check bool (Printf.sprintf "round-trip %s" s) true (f = f')
      | None -> Alcotest.fail (Printf.sprintf "unparsable %s" s))
    all_test_features;
  (* Malformed strings are rejected, not mis-parsed. *)
  List.iter
    (fun s ->
      check bool
        (Printf.sprintf "reject %S" s)
        true
        (Ucoverage.feature_of_string s = None))
    [
      ""; "window"; "window:"; "window:nope:2"; "window:store-bypass:x";
      "kind-origin:branch-mispredict"; "transition:branch-mispredict";
      "depth:x"; "bogus:1";
    ]

(* --- harvesting --------------------------------------------------------- *)

let test_features_of_runs () =
  (* With no descriptors every origin degrades to O_other. *)
  let descs = [||] in
  let run =
    [
      ev ~loads:1 ~sets:[ 3 ] ();
      ev ~kind:Cpu.Store_bypass ~loads:4 ~sets:[ 1; 2; 5 ] ();
    ]
  in
  let fs = Ucoverage.features_of_runs ~descs [ run ] in
  let has f = List.mem f fs in
  check bool "kind-origin harvested" true
    (has (Ucoverage.Kind_origin (Cpu.Branch_mispredict, Ucoverage.O_other)));
  (* 1 transient load -> bucket 1; 4 -> bucket 3 ([4,7]). *)
  check bool "window bucket of 1" true
    (has (Ucoverage.Window (Cpu.Branch_mispredict, Metrics.bucket_of 1)));
  check bool "window bucket of 4" true
    (has (Ucoverage.Window (Cpu.Store_bypass, Metrics.bucket_of 4)));
  (* footprints: 1 set -> bucket 1, 3 sets -> bucket 2. *)
  check bool "footprint of 1 set" true
    (has (Ucoverage.Footprint (Cpu.Branch_mispredict, Metrics.bucket_of 1)));
  check bool "footprint of 3 sets" true
    (has (Ucoverage.Footprint (Cpu.Store_bypass, Metrics.bucket_of 3)));
  (* consecutive pair -> one transition, in order. *)
  check bool "transition recorded" true
    (has (Ucoverage.Transition (Cpu.Branch_mispredict, Cpu.Store_bypass)));
  check bool "reverse transition absent" true
    (not (has (Ucoverage.Transition (Cpu.Store_bypass, Cpu.Branch_mispredict))));
  (* 2 episodes -> depth bucket of 2. *)
  check bool "depth bucket" true (has (Ucoverage.Depth (Metrics.bucket_of 2)));
  (* Empty runs contribute nothing (no Depth-of-zero noise). *)
  check int "empty runs harvest nothing" 0
    (List.length (Ucoverage.features_of_runs ~descs [ []; [] ]));
  (* Identical runs dedupe. *)
  check bool "sorted unique" true
    (Ucoverage.features_of_runs ~descs [ run; run ] = fs)

let test_origin_classification () =
  let open Revizor_isa in
  let program =
    Program.make
      [
        Program.block "bb0"
          [
            Instruction.jcc Cond.Z "skip";
            Instruction.mov (Operand.reg Reg.RAX) (Operand.imm 1);
          ];
        Program.block "skip" [ Instruction.make ~operands:[] Opcode.Ret ];
      ]
  in
  let flat = Program.flatten_exn program in
  let descs = (Revizor_emu.Compiled.of_flat flat).Revizor_emu.Compiled.descs in
  let origin_at pc =
    let fs =
      Ucoverage.features_of_runs ~descs [ [ ev ~pc ~loads:1 () ] ]
    in
    List.find_map
      (function Ucoverage.Kind_origin (_, o) -> Some o | _ -> None)
      fs
  in
  check bool "Jcc classifies as cond-branch" true
    (origin_at 0 = Some Ucoverage.O_cond_branch);
  check bool "plain ALU classifies as other" true
    (origin_at 1 = Some Ucoverage.O_other);
  check bool "out-of-range pc degrades to other" true
    (origin_at 99 = Some Ucoverage.O_other)

(* --- accumulator + JSON round-trip -------------------------------------- *)

let test_register_and_roundtrip () =
  let u = Ucoverage.create () in
  check int "empty atlas" 0 (Ucoverage.distinct u);
  let f1 = Ucoverage.Window (Cpu.Branch_mispredict, 1) in
  let f2 = Ucoverage.Depth 1 in
  Ucoverage.register u ~tc:3 [ f1; f2 ];
  Ucoverage.register u ~tc:7 [ f1 ];
  (* already covered: no frontier advance *)
  Ucoverage.register u ~tc:9 [ f2; Ucoverage.Depth 2 ];
  check int "three distinct" 3 (Ucoverage.distinct u);
  check bool "first hit kept" true
    (List.assoc f1 (Ucoverage.first_hits u) = 3);
  check bool "frontier strictly monotone" true
    (Ucoverage.frontier u = [ (3, 2); (9, 3) ]);
  check bool "kind first hit" true
    (Ucoverage.kind_first_hit u Cpu.Branch_mispredict = Some 3);
  check bool "uncovered kind" true
    (Ucoverage.kind_first_hit u Cpu.Store_bypass = None);
  check bool "rate per 1k" true
    (abs_float (Ucoverage.rate_per_1k u ~test_cases:100 -. 30.) < 1e-9);
  (* JSON round-trip is exact. *)
  (match Ucoverage.of_json (Ucoverage.to_json u) with
  | Ok u' ->
      check bool "json round-trip equal" true (Ucoverage.equal u u');
      check string "json round-trip fingerprint" (atlas_fingerprint u)
        (atlas_fingerprint u')
  | Error e -> Alcotest.fail e);
  (* Copy is independent. *)
  let c = Ucoverage.copy u in
  Ucoverage.register u ~tc:11 [ Ucoverage.Depth 3 ];
  check int "copy unaffected" 3 (Ucoverage.distinct c);
  check int "original advanced" 4 (Ucoverage.distinct u)

let test_collection_switch () =
  let u = Ucoverage.create () in
  Ucoverage.set_enabled false;
  Fun.protect ~finally:(fun () -> Ucoverage.set_enabled true) @@ fun () ->
  Ucoverage.register u ~tc:1 [ Ucoverage.Depth 1 ];
  check int "register is a no-op when off" 0 (Ucoverage.distinct u)

(* --- campaign integration ----------------------------------------------- *)

(* target5 vs CT-COND: branch mispredictions fire constantly but the
   contract exposes them, so short campaigns stay compliant — a
   non-empty atlas with no violation. *)
let campaign_cfg ?(domains = 1) ?(depth = 1) ~seed () =
  let cfg = Target.fuzzer_config ~seed Contract.ct_cond Target.target5 in
  { cfg with Fuzzer.executor_domains = domains; pipeline_depth = depth }

let run_with_atlas ?domains ?depth ~seed ~total () =
  let u = Ucoverage.create () in
  let o, s =
    Fuzzer.fuzz ~ucoverage:u
      (campaign_cfg ?domains ?depth ~seed ())
      ~budget:(Fuzzer.Test_cases total)
  in
  (outcome_summary o, stats_fingerprint s, u)

let test_atlas_nonempty () =
  let o, _, u = run_with_atlas ~seed:7L ~total:40 () in
  check string "compliant campaign" "none" o;
  check bool "atlas covered something" true (Ucoverage.distinct u > 0);
  check bool "branch mechanism covered" true
    (Ucoverage.kind_first_hit u Cpu.Branch_mispredict <> None);
  (* The frontier curve is strictly monotone in both coordinates. *)
  let rec mono = function
    | (t1, n1) :: ((t2, n2) :: _ as rest) ->
        t1 < t2 && n1 < n2 && mono rest
    | _ -> true
  in
  check bool "frontier monotone" true (mono (Ucoverage.frontier u))

let test_atlas_domains_invariant () =
  let base = run_with_atlas ~seed:3L ~total:40 () in
  List.iter
    (fun (domains, depth) ->
      let o, s, u = run_with_atlas ~domains ~depth ~seed:3L ~total:40 () in
      let l = Printf.sprintf "domains=%d depth=%d" domains depth in
      let bo, bs, bu = base in
      check string (l ^ ": outcome") bo o;
      check string (l ^ ": stats") bs s;
      check string (l ^ ": atlas") (atlas_fingerprint bu) (atlas_fingerprint u))
    [ (2, 0); (2, 2); (4, 1) ]

let test_atlas_kill_and_resume () =
  let cfg = campaign_cfg ~seed:5L () in
  let _, _, base_u = run_with_atlas ~seed:5L ~total:60 () in
  (* Segment 1: stop at 30 test cases; the final boundary checkpoint is
     always emitted. Route it through the Campaign codec like the CLI
     does, so the atlas section's serialization is on the tested path. *)
  let last = ref None in
  let _ =
    Fuzzer.fuzz
      ~on_checkpoint:(fun s -> last := Some s)
      cfg ~budget:(Fuzzer.Test_cases 30)
  in
  let snap =
    match !last with
    | None -> Alcotest.fail "no checkpoint emitted"
    | Some s -> (
        match Campaign.of_json cfg (Campaign.to_json cfg s) with
        | Ok s' -> s'
        | Error e -> Alcotest.fail e)
  in
  check bool "checkpoint atlas non-empty" true
    (Ucoverage.distinct snap.Fuzzer.sn_ucoverage > 0);
  let u2 = Ucoverage.create () in
  let _ =
    Fuzzer.fuzz ~resume:snap ~ucoverage:u2 cfg
      ~budget:(Fuzzer.Test_cases 60)
  in
  check string "resumed atlas bit-identical" (atlas_fingerprint base_u)
    (atlas_fingerprint u2)

let test_outcomes_invariant_without_collection () =
  let on_o, on_s, _ = run_with_atlas ~seed:9L ~total:40 () in
  Ucoverage.set_enabled false;
  let off_o, off_s, off_u =
    Fun.protect
      ~finally:(fun () -> Ucoverage.set_enabled true)
      (fun () -> run_with_atlas ~seed:9L ~total:40 ())
  in
  check string "outcome identical with collection off" on_o off_o;
  check string "stats identical with collection off" on_s off_s;
  check int "atlas empty with collection off" 0 (Ucoverage.distinct off_u);
  (* And across domain counts with collection off. *)
  Ucoverage.set_enabled false;
  let off4_o, off4_s, _ =
    Fun.protect
      ~finally:(fun () -> Ucoverage.set_enabled true)
      (fun () -> run_with_atlas ~domains:4 ~seed:9L ~total:40 ())
  in
  check string "outcome identical off, 4 domains" on_o off4_o;
  check string "stats identical off, 4 domains" on_s off4_s

let test_old_checkpoint_loads () =
  (* A checkpoint without the atlas section (pre-PR9) still loads, with
     an empty atlas. *)
  let cfg = campaign_cfg ~seed:5L () in
  let last = ref None in
  let _ =
    Fuzzer.fuzz
      ~on_checkpoint:(fun s -> last := Some s)
      cfg ~budget:(Fuzzer.Test_cases 10)
  in
  let snap = Option.get !last in
  let stripped =
    match Campaign.to_json cfg snap with
    | Json.Obj kvs ->
        Json.Obj (List.filter (fun (k, _) -> k <> "ucoverage") kvs)
    | j -> j
  in
  match Campaign.of_json cfg stripped with
  | Ok s ->
      check int "stripped checkpoint loads with empty atlas" 0
        (Ucoverage.distinct s.Fuzzer.sn_ucoverage)
  | Error e -> Alcotest.fail e

(* --- persistence + telemetry -------------------------------------------- *)

let test_stats_file_roundtrip () =
  let _, _, u = run_with_atlas ~seed:7L ~total:30 () in
  let path = Filename.temp_file "revizor-ucov" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Results.save_stats ~ucoverage:u ~path ();
  match Results.load_stats path with
  | Error e -> Alcotest.fail e
  | Ok { Results.ucoverage = Some u'; _ } ->
      check string "stats.json atlas round-trip" (atlas_fingerprint u)
        (atlas_fingerprint u')
  | Ok { Results.ucoverage = None; _ } ->
      Alcotest.fail "atlas missing from stats.json"

let test_frontier_telemetry_and_heartbeat () =
  let buf = Buffer.create 16384 in
  Telemetry.enable_buffer buf;
  let _ =
    Fuzzer.fuzz ~heartbeat_every:10
      (campaign_cfg ~seed:7L ())
      ~budget:(Fuzzer.Test_cases 30)
  in
  Telemetry.disable ();
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter_map (fun l ->
           if String.trim l = "" then None
           else Result.to_option (Telemetry.parse_line l))
  in
  let named n =
    List.filter (fun (l : Telemetry.line) -> l.Telemetry.l_name = n) lines
  in
  check bool "coverage.frontier events emitted" true
    (named "coverage.frontier" <> []);
  let beat = List.hd (named "fuzz.heartbeat") in
  check bool "heartbeat has ucov_features" true
    (List.mem_assoc "ucov_features" beat.Telemetry.l_fields);
  check bool "heartbeat has ucov_per_1k_tc" true
    (List.mem_assoc "ucov_per_1k_tc" beat.Telemetry.l_fields)

let test_saturation_event () =
  (* Drive note_round directly: three barren rounds emit exactly one
     saturation event, re-armed by a frontier advance. *)
  let buf = Buffer.create 1024 in
  Telemetry.enable_buffer buf;
  Fun.protect ~finally:Telemetry.disable @@ fun () ->
  let u = Ucoverage.create () in
  Ucoverage.register u ~tc:1 [ Ucoverage.Depth 1 ];
  for r = 1 to 5 do
    Ucoverage.note_round u ~round:r
  done;
  let count () =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l ->
           match Telemetry.parse_line l with
           | Ok p -> p.Telemetry.l_name = "coverage.saturation"
           | Error _ -> false)
    |> List.length
  in
  (* rounds 1..3 barren -> one event at round 4 (first round >= window
     after last advance at round 1's distinct snapshot); not re-emitted. *)
  check int "one saturation event" 1 (count ());
  (* A frontier advance re-arms the detector. *)
  Ucoverage.register u ~tc:200 [ Ucoverage.Depth 2 ];
  for r = 6 to 10 do
    Ucoverage.note_round u ~round:r
  done;
  check int "re-armed after advance" 2 (count ())

let () =
  Alcotest.run "ucoverage"
    [
      ( "features",
        [
          tc "string round-trip" `Quick test_feature_string_roundtrip;
          tc "harvest from runs" `Quick test_features_of_runs;
          tc "origin classification" `Quick test_origin_classification;
        ] );
      ( "accumulator",
        [
          tc "register + json round-trip" `Quick test_register_and_roundtrip;
          tc "collection switch" `Quick test_collection_switch;
          tc "saturation analytics" `Quick test_saturation_event;
        ] );
      ( "campaign",
        [
          tc "atlas non-empty and monotone" `Quick test_atlas_nonempty;
          tc "bit-identical across executor domains" `Slow
            test_atlas_domains_invariant;
          tc "kill-and-resume reproduces atlas" `Slow
            test_atlas_kill_and_resume;
          tc "outcomes invariant without collection" `Slow
            test_outcomes_invariant_without_collection;
          tc "pre-atlas checkpoints load" `Quick test_old_checkpoint_loads;
        ] );
      ( "persistence",
        [
          tc "stats.json round-trip" `Quick test_stats_file_roundtrip;
          tc "frontier + heartbeat telemetry" `Quick
            test_frontier_telemetry_and_heartbeat;
        ] );
    ]
