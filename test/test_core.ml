(* Unit tests for the core Revizor library: PRNG, inputs, contracts,
   model, analyzer, executor machinery, coverage and the generator. *)

open Revizor_isa
open Revizor_emu
open Revizor_uarch
open Revizor

let check = Alcotest.check
let tc = Alcotest.test_case

(* Alcotest testable shorthands *)
let bool = Alcotest.bool
let int = Alcotest.int
let int64 = Alcotest.int64
let string = Alcotest.string
let _ = (bool, int, int64, string)

(* --- Prng ------------------------------------------------------------- *)

let prng_tests =
  [
    tc "deterministic" `Quick (fun () ->
        let a = Prng.create ~seed:5L and b = Prng.create ~seed:5L in
        for _ = 1 to 100 do
          check int64 "same stream" (Prng.next a) (Prng.next b)
        done);
    tc "different seeds differ" `Quick (fun () ->
        let a = Prng.create ~seed:5L and b = Prng.create ~seed:6L in
        check bool "diverge" false (Prng.next a = Prng.next b));
    tc "int is in range" `Quick (fun () ->
        let p = Prng.create ~seed:1L in
        for _ = 1 to 1000 do
          let v = Prng.int p 7 in
          check bool "range" true (v >= 0 && v < 7)
        done);
    tc "bits masks entropy" `Quick (fun () ->
        let p = Prng.create ~seed:1L in
        for _ = 1 to 100 do
          check bool "2 bits" true (Prng.bits p 2 < 4L)
        done);
    tc "zero seed is remapped" `Quick (fun () ->
        let p = Prng.create ~seed:0L in
        check bool "produces values" true (Prng.next p <> 0L));
    tc "copy forks the stream" `Quick (fun () ->
        let a = Prng.create ~seed:9L in
        ignore (Prng.next a);
        let b = Prng.copy a in
        check int64 "same continuation" (Prng.next a) (Prng.next b));
    tc "xorshift_step is the state transition of next" `Quick (fun () ->
        let p = Prng.create ~seed:99L in
        for _ = 1 to 50 do
          let before = Prng.state p in
          ignore (Prng.next p);
          check int64 "transition" (Prng.state p) (Prng.xorshift_step before)
        done);
    tc "jump matches sequential stepping" `Quick (fun () ->
        let s0 = Prng.state (Prng.create ~seed:42L) in
        List.iter
          (fun k ->
            let seq = ref s0 in
            for _ = 1 to k do
              seq := Prng.xorshift_step !seq
            done;
            check int64 (Printf.sprintf "k=%d" k) !seq (Prng.jump s0 ~steps:k))
          [ 0; 1; 2; 7; 63; 64; 65; 100; 511; 1023; 1024; 2047 ]);
  ]

(* --- Input -------------------------------------------------------------- *)

let input_tests =
  [
    tc "application is deterministic" `Quick (fun () ->
        let i = { Input.seed = 77L; entropy = 2 } in
        let a = Input.to_state i and b = Input.to_state i in
        check bool "equal states" true (State.equal_arch a b));
    tc "different seeds give different memory" `Quick (fun () ->
        let a = Input.to_state { Input.seed = 1L; entropy = 2 } in
        let b = Input.to_state { Input.seed = 2L; entropy = 2 } in
        check bool "differ" false (State.equal_arch a b));
    tc "values land in the line-index bits" `Quick (fun () ->
        let s = Input.to_state { Input.seed = 3L; entropy = 2 } in
        List.iter
          (fun r ->
            let v = State.get_reg s r Width.W64 in
            check bool "multiple of 64" true (Int64.rem v 64L = 0L);
            check bool "within a page" true (v < 4096L))
          Reg.gen_pool);
    tc "entropy bounds the value range" `Quick (fun () ->
        let p = Prng.create ~seed:4L in
        List.iter
          (fun input ->
            let s = Input.to_state input in
            List.iter
              (fun r ->
                check bool "entropy 1: two values" true
                  (List.mem (State.get_reg s r Width.W64) [ 0L; 64L ]))
              Reg.gen_pool)
          (Input.generate_many p ~entropy:1 ~n:20));
    tc "sandbox base and stack pointer preserved" `Quick (fun () ->
        let s = Input.to_state { Input.seed = 5L; entropy = 2 } in
        check int64 "r14" Layout.sandbox_base (State.get_reg s Reg.R14 Width.W64);
        check int64 "rsp" Layout.stack_top (State.get_reg s Reg.RSP Width.W64));
  ]

(* --- Contract ------------------------------------------------------------ *)

let contract_tests =
  [
    tc "names" `Quick (fun () ->
        check string "ct-seq" "CT-SEQ" (Contract.name Contract.ct_seq);
        check string "cond-bpas" "CT-COND-BPAS" (Contract.name Contract.ct_cond_bpas);
        check string "arch" "ARCH-SEQ" (Contract.name Contract.arch_seq);
        check string "6.4" "CT-COND(noSpecStore)"
          (Contract.name Contract.ct_cond_no_spec_store));
    tc "of_name roundtrip" `Quick (fun () ->
        List.iter
          (fun c ->
            match Contract.of_name (Contract.name c) with
            | Ok c' -> check string "same" (Contract.name c) (Contract.name c')
            | Error e -> Alcotest.fail e)
          (Contract.standard_ladder @ [ Contract.mem_seq; Contract.arch_seq ]);
        check bool "junk" true (Result.is_error (Contract.of_name "FOO-BAR")));
    tc "permits_at_least ordering" `Quick (fun () ->
        let ge = Contract.permits_at_least in
        check bool "cond-bpas >= seq" true (ge Contract.ct_cond_bpas Contract.ct_seq);
        check bool "cond >= seq" true (ge Contract.ct_cond Contract.ct_seq);
        check bool "bpas vs cond incomparable" false (ge Contract.ct_bpas Contract.ct_cond);
        check bool "seq < cond" false (ge Contract.ct_seq Contract.ct_cond);
        check bool "arch >= ct at seq" true (ge Contract.arch_seq Contract.ct_seq);
        check bool "mem < ct" false (ge Contract.mem_seq Contract.ct_seq));
    tc "clause predicates" `Quick (fun () ->
        check bool "cond" true (Contract.has_cond Contract.ct_cond_bpas);
        check bool "bpas" true (Contract.has_bpas Contract.ct_cond_bpas);
        check bool "seq" false
          (Contract.has_cond Contract.ct_seq || Contract.has_bpas Contract.ct_seq));
  ]

(* --- Model ---------------------------------------------------------------- *)

(* The paper's Fig. 1 example: z = array1[x]; if (y < 10) z = array2[y].
   We encode it with array1 at offset 0x100 and array2 at 0x200. *)
let fig1_program =
  let open Instruction in
  Program.make
    [
      Program.block "main"
        [
          mov (Operand.reg Reg.RCX) (Operand.sandbox ~disp:0x100 Reg.RAX);
          binop Opcode.Cmp (Operand.reg Reg.RBX) (Operand.imm 10);
          jcc Cond.AE "exit";
        ];
      Program.block "then"
        [ mov (Operand.reg Reg.RCX) (Operand.sandbox ~disp:0x200 Reg.RBX) ];
      Program.block "exit" [];
    ]

let compile p = Compiled.of_flat (Program.flatten_exn p)
let fig1_flat = compile fig1_program

let mem_addrs (ct : Ctrace.t) =
  List.filter_map (function Ctrace.Addr a -> Some a | _ -> None) ct

let model_tests =
  [
    tc "MEM-COND exposes both paths of Fig. 1" `Quick (fun () ->
        (* find an input whose branch is taken (RBX < 10): with entropy-2
           inputs, RBX is in {0,64,128,192}; RBX=0 takes the branch *)
        let prng = Prng.create ~seed:1L in
        let inputs = Input.generate_many prng ~entropy:2 ~n:40 in
        let taken =
          List.find
            (fun i ->
              let s = Input.to_state i in
              State.get_reg s Reg.RBX Width.W64 = 0L)
          inputs
        and not_taken =
          List.find
            (fun i ->
              let s = Input.to_state i in
              State.get_reg s Reg.RBX Width.W64 = 128L)
            inputs
        in
        (* not-taken input: MEM-SEQ trace has 1 load; MEM-COND has 2 (the
           speculative one as well) *)
        let seq = Model.run Contract.mem_seq fig1_flat not_taken in
        let cond = Model.run Contract.mem_cond fig1_flat not_taken in
        check int "seq loads" 1 (List.length (mem_addrs seq.Model.ctrace));
        check int "cond loads" 2 (List.length (mem_addrs cond.Model.ctrace));
        (* taken input: both expose 2 loads architecturally *)
        let seq_t = Model.run Contract.mem_seq fig1_flat taken in
        check int "seq taken loads" 2 (List.length (mem_addrs seq_t.Model.ctrace)));
    tc "CT adds control-flow observations" `Quick (fun () ->
        let prng = Prng.create ~seed:2L in
        let input = Input.generate prng ~entropy:2 in
        let mem = Model.run Contract.mem_seq fig1_flat input in
        let ct = Model.run Contract.ct_seq fig1_flat input in
        let pcs t =
          List.filter (function Ctrace.Pc _ -> true | _ -> false) t
        in
        check int "mem has no pc" 0 (List.length (pcs mem.Model.ctrace));
        check bool "ct has pc" true (List.length (pcs ct.Model.ctrace) > 0));
    tc "ARCH exposes loaded values" `Quick (fun () ->
        let prng = Prng.create ~seed:3L in
        let input = Input.generate prng ~entropy:2 in
        let arch = Model.run Contract.arch_seq fig1_flat input in
        check bool "has value obs" true
          (List.exists
             (function Ctrace.Value _ -> true | _ -> false)
             arch.Model.ctrace));
    tc "speculation window bounds the exploration" `Quick (fun () ->
        let tight = Contract.make ~speculation_window:1 Contract.Mem Contract.Cond in
        let prng = Prng.create ~seed:4L in
        let input =
          List.find
            (fun i ->
              let s = Input.to_state i in
              State.get_reg s Reg.RBX Width.W64 > 10L)
            (Input.generate_many prng ~entropy:2 ~n:40)
        in
        let t = Model.run tight fig1_flat input in
        (* window=1 explores only the first speculative instruction, which
           is the load: it is still recorded *)
        check int "loads" 2 (List.length (mem_addrs t.Model.ctrace));
        let zero = Contract.make ~speculation_window:0 Contract.Mem Contract.Cond in
        let t0 = Model.run zero fig1_flat input in
        check int "no exploration" 1 (List.length (mem_addrs t0.Model.ctrace)));
    tc "lfence stops model speculation" `Quick (fun () ->
        let fenced =
          Program.make
            [
              Program.block "main"
                [
                  Instruction.binop Opcode.Cmp (Operand.reg Reg.RBX) (Operand.imm 10);
                  Instruction.jcc Cond.AE "exit";
                ];
              Program.block "then"
                [
                  Instruction.lfence;
                  Instruction.mov (Operand.reg Reg.RCX) (Operand.sandbox Reg.RBX);
                ];
              Program.block "exit" [];
            ]
        in
        let flat = compile fenced in
        let prng = Prng.create ~seed:5L in
        let input =
          List.find
            (fun i ->
              let s = Input.to_state i in
              State.get_reg s Reg.RBX Width.W64 > 10L)
            (Input.generate_many prng ~entropy:2 ~n:40)
        in
        let t = Model.run Contract.mem_cond flat input in
        check int "no speculative load" 0 (List.length (mem_addrs t.Model.ctrace)));
    tc "BPAS explores the store-skip path" `Quick (fun () ->
        (* store then load the same address: under BPAS the load's stale
           value changes the subsequent access *)
        let prog =
          Program.of_insts
            [
              Instruction.mov (Operand.sandbox ~disp:64 Reg.RBX) (Operand.imm 0);
              Instruction.mov (Operand.reg Reg.RCX) (Operand.sandbox ~disp:64 Reg.RBX);
              Instruction.binop Opcode.And (Operand.reg Reg.RCX)
                (Operand.imm64 Layout.line_mask_one_page);
              Instruction.mov (Operand.reg Reg.RDX) (Operand.sandbox Reg.RCX);
            ]
        in
        let flat = compile prog in
        let input = { Input.seed = 42L; entropy = 2 } in
        let seq = Model.run Contract.ct_seq flat input in
        let bpas = Model.run Contract.ct_bpas flat input in
        check bool "bpas records more" true
          (List.length bpas.Model.ctrace > List.length seq.Model.ctrace));
    tc "§6.4 contract hides speculative stores" `Quick (fun () ->
        let g = Gadgets.spec_store_eviction.Gadgets.program in
        let flat = compile g in
        let prng = Prng.create ~seed:6L in
        (* pick an input whose branch is taken, so the store is reached
           only on the explored (speculative) path *)
        let input =
          List.find
            (fun i ->
              let s = Input.to_state i in
              Word.ult 64L
                (Memory.read s.State.mem ~addr:Layout.sandbox_base Width.W64))
            (Input.generate_many prng ~entropy:2 ~n:60)
        in
        let full = Model.run Contract.ct_cond flat input in
        let hidden = Model.run Contract.ct_cond_no_spec_store flat input in
        check bool "fewer observations" true
          (List.length hidden.Model.ctrace < List.length full.Model.ctrace));
    tc "model is deterministic" `Quick (fun () ->
        let input = { Input.seed = 9L; entropy = 2 } in
        let a = Model.run Contract.ct_cond_bpas fig1_flat input in
        let b = Model.run Contract.ct_cond_bpas fig1_flat input in
        check bool "equal traces" true (Ctrace.equal a.Model.ctrace b.Model.ctrace));
    tc "architectural fault is reported" `Quick (fun () ->
        let prog =
          Program.of_insts [ Instruction.div (Operand.reg ~w:Width.W32 Reg.RBX) ]
        in
        let flat = compile prog in
        (* RBX = 0 for seeds that derive zero; force entropy 1 and find one *)
        let prng = Prng.create ~seed:7L in
        let input =
          List.find
            (fun i ->
              let s = Input.to_state i in
              State.get_reg s Reg.RBX Width.W64 = 0L)
            (Input.generate_many prng ~entropy:1 ~n:40)
        in
        let r = Model.run Contract.ct_seq flat input in
        check bool "faulted" true r.Model.faulted);
  ]

(* --- Analyzer ----------------------------------------------------------------- *)

let analyzer_tests =
  [
    tc "classes group equal ctraces and drop singletons" `Quick (fun () ->
        let ct a = [ Ctrace.Addr (Int64.of_int a) ] in
        let ctraces = [| ct 1; ct 2; ct 1; ct 3; ct 2; ct 1 |] in
        let classes = Analyzer.input_classes ctraces in
        check int "two classes" 2 (List.length classes);
        (match classes with
        | [ c1; c2 ] ->
            check (Alcotest.list Alcotest.int) "class 1" [ 0; 2; 5 ] c1.Analyzer.members;
            check (Alcotest.list Alcotest.int) "class 2" [ 1; 4 ] c2.Analyzer.members
        | _ -> Alcotest.fail "expected two classes");
        check int "effective" 5 (Analyzer.effective_inputs classes));
    tc "subset traces are equivalent; incomparable ones violate" `Quick (fun () ->
        let cls = { Analyzer.ctrace = []; members = [ 0; 1; 2 ] } in
        let h = Htrace.of_list in
        check bool "chain ok" true
          (Analyzer.check_class cls [| h [ 1 ]; h [ 1; 2 ]; h [ 1; 2; 3 ] |] = None);
        (match Analyzer.check_class cls [| h [ 1 ]; h [ 2 ]; h [ 1 ] |] with
        | Some (0, 1) -> ()
        | Some (a, b) -> Alcotest.failf "wrong pair %d %d" a b
        | None -> Alcotest.fail "missed violation"));
    tc "strict equality is stricter" `Quick (fun () ->
        let cls = { Analyzer.ctrace = []; members = [ 0; 1 ] } in
        let h = Htrace.of_list in
        let traces = [| h [ 1 ]; h [ 1; 2 ] |] in
        check bool "subset fine" true
          (Analyzer.check_class ~equivalence:`Subset cls traces = None);
        check bool "equality flags" true
          (Analyzer.check_class ~equivalence:`Equal cls traces <> None));
    tc "find_violation returns the first offending class" `Quick (fun () ->
        let ct a = [ Ctrace.Addr (Int64.of_int a) ] in
        let ctraces = [| ct 1; ct 1; ct 2; ct 2 |] in
        let h = Htrace.of_list in
        let htraces = [| h [ 1 ]; h [ 1 ]; h [ 2 ]; h [ 3 ] |] in
        match Analyzer.find_violation (Analyzer.input_classes ctraces) htraces with
        | Some c ->
            check int "a" 2 c.Analyzer.index_a;
            check int "b" 3 c.Analyzer.index_b
        | None -> Alcotest.fail "missed");
  ]

(* --- Executor ------------------------------------------------------------------- *)

let v1 = Gadgets.spectre_v1.Gadgets.program
let v1_flat = compile v1

let executor_tests =
  [
    tc "measurements are reproducible" `Quick (fun () ->
        let mk () =
          let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
          Executor.create cpu (Executor.default_config ())
        in
        let prng = Prng.create ~seed:8L in
        let inputs = Input.generate_many prng ~entropy:2 ~n:20 in
        let a = Executor.htraces (mk ()) v1_flat inputs in
        let b = Executor.htraces (mk ()) v1_flat inputs in
        check bool "equal" true
          (Array.for_all2 Htrace.equal a b));
    tc "priming makes traces depend on sequence position" `Quick (fun () ->
        (* the same input measured within different sequences can observe
           different speculation: reversing the sequence changes traces *)
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        let ex = Executor.create cpu (Executor.default_config ()) in
        let prng = Prng.create ~seed:9L in
        let inputs = Input.generate_many prng ~entropy:2 ~n:20 in
        let fwd = Executor.htraces ex v1_flat inputs in
        let bwd = Executor.htraces ex v1_flat (List.rev inputs) in
        let bwd_aligned = Array.of_list (List.rev (Array.to_list bwd)) in
        check bool "some position differs" true
          (not (Array.for_all2 Htrace.equal fwd bwd_aligned)));
    tc "outlier filtering drops one-off noise" `Quick (fun () ->
        (* moderate noise: spurious observations appear in few reps and are
           filtered; real observations survive most reps and are kept *)
        let noise = Some { Executor.flip_probability = 0.25; seed = 13L } in
        let cfg =
          { (Executor.default_config ()) with
            Executor.noise; measurement_reps = 12; outlier_min = 4 }
        in
        let mk noisecfg =
          let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
          Executor.create cpu noisecfg
        in
        let prng = Prng.create ~seed:10L in
        let inputs = Input.generate_many prng ~entropy:2 ~n:10 in
        let clean =
          Executor.htraces (mk (Executor.default_config ())) v1_flat inputs
        in
        let filtered = Executor.htraces (mk cfg) v1_flat inputs in
        (* flipped-in observations appear at most a few times out of 9 reps
           and are dropped; the filtered traces match the clean ones *)
        check bool "noise removed" true (Array.for_all2 Htrace.equal clean filtered));
    tc "assist mode touches the page bit each measurement" `Quick (fun () ->
        let cpu = Cpu.create (Uarch_config.skylake ~v4_patch:true) in
        let ex =
          Executor.create cpu
            (Executor.default_config ~threat:Attack.prime_probe_assist ())
        in
        let prng = Prng.create ~seed:11L in
        let inputs = Input.generate_many prng ~entropy:2 ~n:5 in
        let ms = Executor.measure ex v1_flat inputs in
        check int "five measurements" 5 (Array.length ms));
  ]

(* --- Coverage -------------------------------------------------------------------- *)

let coverage_tests =
  [
    tc "patterns of a crafted stream" `Quick (fun () ->
        let prog =
          Program.of_insts
            [
              Instruction.mov (Operand.sandbox ~disp:64 Reg.RBX) (Operand.imm 1);
              Instruction.mov (Operand.reg Reg.RCX) (Operand.sandbox ~disp:64 Reg.RBX);
              Instruction.binop Opcode.Add (Operand.reg Reg.RCX) (Operand.imm 1);
              Instruction.binop Opcode.Cmp (Operand.reg Reg.RCX) (Operand.imm 0);
              Instruction.jcc Cond.Z "exit";
            ]
        in
        let prog = Program.make (prog.Program.blocks @ [ Program.block "exit" [] ]) in
        let flat = compile prog in
        let r = Model.run Contract.ct_seq flat { Input.seed = 1L; entropy = 2 } in
        let ps = Coverage.patterns_of_stream r.Model.stream in
        check bool "load-after-store" true (List.mem Coverage.Load_after_store ps);
        check bool "reg dep" true (List.mem Coverage.Reg_dependency ps);
        check bool "flags dep" true (List.mem Coverage.Flags_dependency ps);
        check bool "no cond-dep (terminator last)" true
          (not (List.mem Coverage.Cond_dependency ps)));
    tc "register only counts effective test cases" `Quick (fun () ->
        let t = Coverage.create () in
        Coverage.register t ~patterns:[ Coverage.Reg_dependency ] ~effective:false;
        check bool "not covered" false (Coverage.covered t Coverage.Reg_dependency);
        Coverage.register t ~patterns:[ Coverage.Reg_dependency ] ~effective:true;
        check bool "covered" true (Coverage.covered t Coverage.Reg_dependency));
    tc "combination counting" `Quick (fun () ->
        let t = Coverage.create () in
        Coverage.register t
          ~patterns:[ Coverage.Reg_dependency; Coverage.Cond_dependency ]
          ~effective:true;
        check int "pairs" 1 (Coverage.combinations_covered t ~k:2);
        check int "singles inside" 2 (Coverage.combinations_covered t ~k:1);
        Coverage.register t ~patterns:[ Coverage.Flags_dependency ] ~effective:true;
        check int "combos total" 2 (Coverage.total_combinations t));
    tc "should_grow on low combination yield" `Quick (fun () ->
        let t = Coverage.create () in
        Coverage.register t ~patterns:[ Coverage.Reg_dependency ] ~effective:true;
        (* 1 new combo in a 4-test-case round: 25% yield, keep going *)
        check bool "productive round" false
          (Coverage.should_grow t ~previous_combinations:0 ~round_length:4);
        (* 1 new combo in a 25-test-case round: 4% yield, grow *)
        check bool "exhausted round" true
          (Coverage.should_grow t ~previous_combinations:0 ~round_length:25);
        check bool "stagnant" true
          (Coverage.should_grow t ~previous_combinations:1 ~round_length:4));
  ]

(* --- Generator -------------------------------------------------------------------- *)

let generator_tests =
  [
    tc "generated programs validate" `Quick (fun () ->
        let prng = Prng.create ~seed:12L in
        for _ = 1 to 50 do
          let p = Generator.generate prng Generator.default_cfg in
          match Program.validate p with
          | Ok () -> ()
          | Error e -> Alcotest.failf "invalid: %s\n%s" e (Program.to_string p)
        done);
    tc "generated programs never fault on random inputs" `Quick (fun () ->
        let prng = Prng.create ~seed:13L in
        let cfg =
          { Generator.default_cfg with
            Generator.subsets = [ Catalog.AR; Catalog.MEM; Catalog.VAR; Catalog.CB ] }
        in
        for _ = 1 to 40 do
          let p = Generator.generate prng cfg in
          let flat = compile p in
          List.iter
            (fun input ->
              let r = Model.run Contract.ct_seq flat input in
              if r.Model.faulted then
                Alcotest.failf "faulted:\n%s" (Program.to_string p))
            (Input.generate_many prng ~entropy:4 ~n:5)
        done);
    tc "memory accesses stay within the configured pages" `Quick (fun () ->
        let prng = Prng.create ~seed:14L in
        let cfg =
          { Generator.default_cfg with
            Generator.mem_pages = 1;
            subsets = [ Catalog.AR; Catalog.MEM ] }
        in
        for _ = 1 to 20 do
          let p = Generator.generate prng cfg in
          let flat = compile p in
          List.iter
            (fun input ->
              let r = Model.run Contract.ct_seq flat input in
              List.iter
                (fun (step : Model.step_record) ->
                  List.iter
                    (fun (a : Semantics.access) ->
                      let off = Layout.offset_of_addr a.Semantics.addr in
                      if off < 0 || off >= Layout.page_size + Layout.guard then
                        Alcotest.failf "access at offset %d escapes page" off)
                    step.Model.s_accesses)
                r.Model.stream)
            (Input.generate_many prng ~entropy:6 ~n:3)
        done);
    tc "instruction budget is respected approximately" `Quick (fun () ->
        let prng = Prng.create ~seed:15L in
        let cfg = { Generator.default_cfg with Generator.n_insts = 10 } in
        let p = Generator.generate_raw prng cfg in
        (* raw program: bodies + terminators *)
        check bool "at least the bodies" true (Program.num_insts p >= 10);
        check bool "not wildly more" true (Program.num_insts p <= 10 + cfg.Generator.n_blocks));
    tc "grow increases the configuration" `Quick (fun () ->
        let g = Generator.grow Generator.default_cfg in
        check bool "more insts" true (g.Generator.n_insts > Generator.default_cfg.Generator.n_insts);
        check bool "more blocks" true (g.Generator.n_blocks > Generator.default_cfg.Generator.n_blocks));
    tc "IND subset emits callable functions" `Quick (fun () ->
        let prng = Prng.create ~seed:16L in
        let cfg =
          { Generator.default_cfg with
            Generator.subsets = [ Catalog.AR; Catalog.CB; Catalog.IND ];
            n_functions = 2;
            n_insts = 12 }
        in
        let found = ref false in
        for _ = 1 to 20 do
          let p = Generator.generate prng cfg in
          let has_ret =
            List.exists
              (fun i -> i.Instruction.opcode = Opcode.Ret)
              (Program.instructions p)
          in
          if has_ret then found := true;
          match Program.validate p with
          | Ok () -> ()
          | Error e -> Alcotest.fail e
        done;
        check bool "functions generated" true !found);
  ]

(* --- Violation labels --------------------------------------------------------------- *)

let label_tests =
  [
    tc "labels mirror Table 3" `Quick (fun () ->
        let l = Violation.label_of in
        check string "v1" "V1" (l Contract.ct_seq [ Cpu.Branch_mispredict ] ~mds_patch:false);
        check string "v1-var" "V1-var"
          (l Contract.ct_cond [ Cpu.Branch_mispredict ] ~mds_patch:false);
        check string "v4" "V4" (l Contract.ct_seq [ Cpu.Store_bypass ] ~mds_patch:false);
        check string "v4-var" "V4-var"
          (l Contract.ct_bpas [ Cpu.Store_bypass ] ~mds_patch:false);
        check string "mds" "MDS"
          (l Contract.ct_seq [ Cpu.Assist_load_forward ] ~mds_patch:false);
        check string "lvi via patch" "LVI-Null"
          (l Contract.ct_seq [ Cpu.Assist_load_forward ] ~mds_patch:true);
        check string "lvi via store" "LVI-Null"
          (l Contract.ct_seq [ Cpu.Assist_store_forward ] ~mds_patch:true);
        check string "ret2spec" "ret2spec"
          (l Contract.ct_seq [ Cpu.Return_mispredict ] ~mds_patch:false);
        check string "spec-store" "spec-store-eviction"
          (l Contract.ct_cond_no_spec_store [ Cpu.Branch_mispredict ] ~mds_patch:true);
        check string "assists beat branches" "MDS"
          (l Contract.ct_seq
             [ Cpu.Branch_mispredict; Cpu.Assist_load_forward ]
             ~mds_patch:false));
  ]

let () =
  Alcotest.run "core"
    [
      ("prng", prng_tests);
      ("input", input_tests);
      ("contract", contract_tests);
      ("model", model_tests);
      ("analyzer", analyzer_tests);
      ("executor", executor_tests);
      ("coverage", coverage_tests);
      ("generator", generator_tests);
      ("labels", label_tests);
    ]
