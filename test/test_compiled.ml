(* Differential tests for the decode-once compiled execution engine
   (PR 2): every consumer of a program — the bare emulator, the contract
   model, the speculative CPU simulator, the executor and the whole
   fuzzer — must produce bit-identical results whether the program is
   compiled to closures ([Compiled.of_flat]) or routed step-by-step
   through the reference interpreter ([Compiled.interpreted], i.e.
   [Semantics.step]). Random programs are drawn at several generator
   growth levels across seeds 1-5, and the fuzzer comparison also sweeps
   the model-stage domain pool sizes. *)

open Revizor_isa
open Revizor_emu
open Revizor_uarch
open Revizor

let check = Alcotest.check
let tc = Alcotest.test_case
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string
let seeds = [ 1L; 2L; 3L; 4L; 5L ]

(* Generator configurations of increasing diversity, mirroring the
   feedback-driven growth of §5.6. *)
let levels =
  let open Catalog in
  [
    ("AR", [ AR ]);
    ("AR+MEM", [ AR; MEM ]);
    ("AR+MEM+VAR", [ AR; MEM; VAR ]);
    ("AR+MEM+CB", [ AR; MEM; CB ]);
    ("AR+MEM+CB+VAR", [ AR; MEM; CB; VAR ]);
  ]

let gen_program ~seed subsets =
  let prng = Prng.create ~seed in
  let cfg = { Generator.default_cfg with Generator.subsets } in
  Generator.generate prng cfg

(* Every (level, seed) pair, with both engines compiled from the same
   flat program. *)
let each_case f =
  List.iter
    (fun (level, subsets) ->
      List.iter
        (fun seed ->
          let p = gen_program ~seed subsets in
          let flat = Program.flatten_exn p in
          let label = Printf.sprintf "%s/seed %Ld" level seed in
          f ~label ~flat ~compiled:(Compiled.of_flat flat)
            ~interp:(Compiled.interpreted flat))
        seeds)
    levels

let input_for seed = Input.generate (Prng.create ~seed) ~entropy:2

(* --- descriptor metadata --------------------------------------------- *)

let desc_metadata () =
  each_case (fun ~label ~flat:_ ~compiled ~interp ->
      let code = Compiled.code compiled in
      Array.iteri
        (fun pc (inst : Instruction.t) ->
          let d = compiled.Compiled.descs.(pc) in
          let here fmt = Printf.sprintf ("%s pc %d: " ^^ fmt) label pc in
          check bool (here "inst") true
            (Instruction.equal d.Compiled.d_inst inst);
          check bool (here "serializing")
            (Opcode.is_serializing inst.Instruction.opcode)
            d.Compiled.d_serializing;
          check bool (here "control flow")
            (Opcode.is_control_flow inst.Instruction.opcode)
            d.Compiled.d_control_flow;
          check bool (here "loads") (Instruction.loads inst) d.Compiled.d_loads;
          check bool (here "stores") (Instruction.stores inst)
            d.Compiled.d_stores;
          check bool (here "reads flags")
            (Opcode.reads_flags inst.Instruction.opcode)
            d.Compiled.d_reads_flags;
          check bool (here "writes flags")
            (Opcode.writes_flags inst.Instruction.opcode)
            d.Compiled.d_writes_flags;
          check (Alcotest.list int) (here "srcs")
            (List.map Reg.index (Instruction.regs_read inst))
            (Array.to_list d.Compiled.d_srcs);
          check (Alcotest.list int) (here "dsts")
            (List.map Reg.index (Instruction.regs_written inst))
            (Array.to_list d.Compiled.d_dsts);
          check (Alcotest.list int) (here "ports")
            (Ports.of_instruction inst)
            (Array.to_list d.Compiled.d_ports);
          (* The interpreted engine shares the decoder: descriptors must
             be structurally identical ([mr_addr] is a closure, so the
             memory reference is compared field by field). *)
          let di = interp.Compiled.descs.(pc) in
          check bool (here "interp desc") true
            (Stdlib.compare
               { d with Compiled.d_mem = None }
               { di with Compiled.d_mem = None }
             = 0);
          check bool (here "interp mem ref") true
            (match (d.Compiled.d_mem, di.Compiled.d_mem) with
            | None, None -> true
            | Some a, Some b ->
                a.Compiled.mr_width = b.Compiled.mr_width
                && a.Compiled.mr_base = b.Compiled.mr_base
                && a.Compiled.mr_index = b.Compiled.mr_index
            | _ -> false))
        code)

(* --- bare emulation ---------------------------------------------------- *)

(* [Compiled.run] vs [Semantics.run]: same outcome stream (instruction,
   pc, access records in order, branch direction, next pc) and same
   final architectural state. *)
let emulation_identical () =
  each_case (fun ~label ~flat ~compiled ~interp:_ ->
      List.iter
        (fun seed ->
          let input = input_for seed in
          let s_ref = Input.to_state input in
          let s_cmp = Input.to_state input in
          let out_ref = Semantics.run flat s_ref in
          let out_cmp = Compiled.run compiled s_cmp in
          check bool
            (Printf.sprintf "%s input %Ld: outcome streams" label seed)
            true
            (Stdlib.compare out_ref out_cmp = 0);
          check bool
            (Printf.sprintf "%s input %Ld: final state" label seed)
            true
            (State.equal_arch s_ref s_cmp))
        seeds)

(* --- contract model ---------------------------------------------------- *)

let contracts =
  [ Contract.ct_seq; Contract.ct_cond; Contract.ct_bpas; Contract.arch_seq ]

let model_identical () =
  each_case (fun ~label ~flat:_ ~compiled ~interp ->
      List.iter
        (fun contract ->
          let input = input_for 11L in
          let rc = Model.run contract compiled input in
          let ri = Model.run contract interp input in
          let here s =
            Printf.sprintf "%s %s: %s" label (Contract.name contract) s
          in
          check bool (here "ctrace") true
            (Ctrace.equal rc.Model.ctrace ri.Model.ctrace);
          check bool (here "faulted") ri.Model.faulted rc.Model.faulted;
          check bool (here "stream") true
            (Stdlib.compare rc.Model.stream ri.Model.stream = 0))
        contracts)

(* --- speculative CPU simulator ---------------------------------------- *)

let run_on_cpu prog input =
  let cfg = Target.fuzzer_config ~seed:1L Contract.ct_seq Target.target5 in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let state = Input.to_state input in
  let htrace =
    Attack.observe cpu cfg.Fuzzer.executor.Executor.threat (fun () ->
        Cpu.run cpu prog state)
  in
  (state, Cpu.events cpu, Array.copy (Cpu.port_counts cpu), htrace)

let cpu_identical () =
  each_case (fun ~label ~flat:_ ~compiled ~interp ->
      let input = input_for 23L in
      let s_c, ev_c, pc_c, h_c = run_on_cpu compiled input in
      let s_i, ev_i, pc_i, h_i = run_on_cpu interp input in
      check bool (label ^ ": arch state") true (State.equal_arch s_c s_i);
      check bool (label ^ ": speculation events") true
        (Stdlib.compare ev_c ev_i = 0);
      check (Alcotest.array int) (label ^ ": port counts") pc_i pc_c;
      check bool (label ^ ": htrace") true (Htrace.equal h_c h_i))

(* --- executor ---------------------------------------------------------- *)

let measure_with prog =
  let cfg = Target.fuzzer_config ~seed:1L Contract.ct_seq Target.target5 in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let executor = Executor.create cpu cfg.Fuzzer.executor in
  let prng = Prng.create ~seed:3L in
  let inputs = Input.generate_many prng ~entropy:2 ~n:20 in
  (Executor.measure executor prog inputs, executor, inputs)

let executor_identical () =
  each_case (fun ~label ~flat:_ ~compiled ~interp ->
      let mc, exec_c, inputs = measure_with compiled in
      let mi, exec_i, _ = measure_with interp in
      check int (label ^ ": measurement count") (Array.length mi)
        (Array.length mc);
      Array.iteri
        (fun idx (m : Executor.measurement) ->
          let m' = mi.(idx) in
          check bool
            (Printf.sprintf "%s input %d: htrace" label idx)
            true
            (Htrace.equal m.Executor.htrace m'.Executor.htrace);
          check bool
            (Printf.sprintf "%s input %d: kinds+events" label idx)
            true
            (Stdlib.compare
               (m.Executor.kinds, m.Executor.events)
               (m'.Executor.kinds, m'.Executor.events)
            = 0))
        mc;
      (* the swap check must agree too: it re-measures three sequences *)
      check bool (label ^ ": swap check")
        (Executor.swap_check exec_i interp inputs 0 1)
        (Executor.swap_check exec_c compiled inputs 0 1))

(* --- batched model ----------------------------------------------------- *)

let batch_inputs n seed =
  Input.generate_many (Prng.create ~seed) ~entropy:2 ~n

(* [Model.batch] — superinstruction fusion, dead-flag elision and arena
   scratch states — against per-input [Model.run]: same ctraces, faults
   and streams for every contract, engine, template source and stream
   mode. *)
let batch_identical () =
  each_case (fun ~label ~flat:_ ~compiled ~interp ->
      let inputs = batch_inputs 12 7L in
      List.iter
        (fun contract ->
          let cname = Contract.name contract in
          let seq = List.map (Model.run contract compiled) inputs in
          let check_one ~what ~stream_mode i (b : Model.result)
              (r : Model.result) =
            let here s =
              Printf.sprintf "%s %s %s input %d: %s" label cname what i s
            in
            check bool (here "ctrace") true
              (Ctrace.equal b.Model.ctrace r.Model.ctrace);
            check bool (here "faulted") r.Model.faulted b.Model.faulted;
            match stream_mode with
            | `All ->
                check bool (here "stream") true
                  (Stdlib.compare b.Model.stream r.Model.stream = 0)
            | `First ->
                if i = 0 then
                  check bool (here "stream") true
                    (Stdlib.compare b.Model.stream r.Model.stream = 0)
                else
                  check int (here "stream empty") 0 (List.length b.Model.stream)
          in
          let compare_all ~what ~stream_mode batched =
            List.iteri
              (fun i (b, r) -> check_one ~what ~stream_mode i b r)
              (List.combine batched seq)
          in
          compare_all ~what:"batch/all" ~stream_mode:`All
            (Model.batch contract compiled inputs);
          compare_all ~what:"batch/first" ~stream_mode:`First
            (Model.batch ~stream:`First contract compiled inputs);
          (* the reference interpreter through the same batched walk *)
          compare_all ~what:"batch/interp" ~stream_mode:`All
            (Model.batch contract interp inputs);
          (* arena-pooled templates instead of per-input derivation *)
          let arena = Arena.create () in
          compare_all ~what:"batch/arena" ~stream_mode:`All
            (Model.batch contract compiled
               ~templates:(Arena.templates arena inputs)
               inputs))
        contracts)

(* The batched walk fanned over a model pool: results identical to the
   sequential batch for every pool size. *)
let batch_pool_identical () =
  each_case (fun ~label ~flat:_ ~compiled ~interp:_ ->
      let inputs = batch_inputs 12 7L in
      List.iter
        (fun contract ->
          let seq = Model.batch contract compiled inputs in
          List.iter
            (fun size ->
              let pool = Pool.create size in
              Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
              let par = Model.batch ~pool contract compiled inputs in
              List.iteri
                (fun i ((b : Model.result), (r : Model.result)) ->
                  let here s =
                    Printf.sprintf "%s %s pool=%d input %d: %s" label
                      (Contract.name contract) size i s
                  in
                  check bool (here "ctrace") true
                    (Ctrace.equal b.Model.ctrace r.Model.ctrace);
                  check bool (here "faulted") r.Model.faulted b.Model.faulted;
                  check bool (here "stream") true
                    (Stdlib.compare b.Model.stream r.Model.stream = 0))
                (List.combine par seq))
            [ 1; 2; 4 ])
        [ Contract.ct_seq; Contract.ct_cond; Contract.ct_bpas ])

(* --- arena template pool ----------------------------------------------- *)

(* Refilled pooled templates vs freshly allocated ones, across input sets
   that shrink and grow to exercise pool reuse and growth. *)
let arena_reuse_identical () =
  let arena = Arena.create () in
  List.iteri
    (fun i n ->
      let seed = Int64.of_int (i + 1) in
      let inputs = batch_inputs n seed in
      let fresh = Input.templates inputs in
      let pooled = Arena.templates arena inputs in
      check int (Printf.sprintf "round %d: count" i) (Array.length fresh)
        (Array.length pooled);
      Array.iteri
        (fun idx t ->
          check bool
            (Printf.sprintf "round %d template %d" i idx)
            true
            (State.equal_arch t pooled.(idx)))
        fresh)
    [ 10; 4; 12; 3; 16 ]

(* --- sparse input fill -------------------------------------------------- *)

(* The reachable-word plan must make the sparse fill observation-
   equivalent to the full fill: model ctraces and executor measurements
   over sparsely refilled, deliberately polluted arena templates agree
   with freshly allocated fully-filled ones. Pollution uses maximum
   entropy from unrelated seeds, so every unlisted word holds garbage
   the plan claims is unreachable. *)
let sparse_fill_equivalent () =
  let cfg = Target.fuzzer_config ~seed:1L Contract.ct_seq Target.target5 in
  each_case (fun ~label ~flat ~compiled ~interp:_ ->
      match Input.fill_plan flat with
      | None -> () (* unprovable (e.g. a VAR memory division): full fill *)
      | Some plan ->
          let inputs = batch_inputs 16 9L in
          let fresh = Input.templates inputs in
          let arena = Arena.create () in
          ignore
            (Arena.templates arena
               (List.init 16 (fun i ->
                    { Input.seed = Int64.of_int (1000 + i); entropy = 16 })));
          let pooled = Arena.templates ~plan arena inputs in
          (* the plan words themselves carry identical bytes *)
          List.iteri
            (fun i (t : State.t) ->
              let araw = Memory.raw t.State.mem
              and braw = Memory.raw pooled.(i).State.mem in
              Array.iter
                (fun w ->
                  check bool
                    (Printf.sprintf "%s input %d word %d" label i w)
                    true
                    (Bytes.sub araw (8 * w) 8 = Bytes.sub braw (8 * w) 8))
                plan)
            (Array.to_list fresh);
          List.iter
            (fun contract ->
              let a = Model.batch contract compiled ~templates:fresh inputs in
              let b = Model.batch contract compiled ~templates:pooled inputs in
              List.iteri
                (fun i ((x : Model.result), (y : Model.result)) ->
                  let here s =
                    Printf.sprintf "%s %s input %d: %s" label
                      (Contract.name contract) i s
                  in
                  check bool (here "ctrace") true
                    (Ctrace.equal x.Model.ctrace y.Model.ctrace);
                  check bool (here "faulted") x.Model.faulted y.Model.faulted;
                  check bool (here "stream") true
                    (Stdlib.compare x.Model.stream y.Model.stream = 0))
                (List.combine a b))
            [ Contract.ct_seq; Contract.ct_cond; Contract.ct_bpas ];
          let measure templates =
            let cpu = Cpu.create cfg.Fuzzer.uarch in
            let executor = Executor.create cpu cfg.Fuzzer.executor in
            Executor.measure ~templates executor compiled inputs
          in
          let ma = measure fresh and mb = measure pooled in
          Array.iteri
            (fun i (m : Executor.measurement) ->
              let m' = mb.(i) in
              let here s = Printf.sprintf "%s input %d: %s" label i s in
              check bool (here "htrace") true
                (Htrace.equal m.Executor.htrace m'.Executor.htrace);
              check bool (here "kinds+events") true
                (Stdlib.compare
                   (m.Executor.kinds, m.Executor.events)
                   (m'.Executor.kinds, m'.Executor.events)
                = 0))
            ma)

(* Programs without memory operands need only the fill-buffer seed word:
   the plan collapses to the last data word, which is what makes the
   AR-heavy throughput configurations O(1) per input. *)
let sparse_plan_shape () =
  List.iter
    (fun seed ->
      let p = gen_program ~seed [ Catalog.AR ] in
      let flat = Program.flatten_exn p in
      match Input.fill_plan flat with
      | Some [| 1023 |] -> ()
      | Some plan ->
          Alcotest.failf "AR/seed %Ld: expected [1023], got %d words" seed
            (Array.length plan)
      | None -> Alcotest.failf "AR/seed %Ld: expected a plan" seed)
    seeds;
  (* masked memory programs must be provable too *)
  List.iter
    (fun seed ->
      let p = gen_program ~seed [ Catalog.AR; Catalog.MEM; Catalog.CB ] in
      let flat = Program.flatten_exn p in
      match Input.fill_plan flat with
      | Some plan ->
          check bool
            (Printf.sprintf "AR+MEM+CB/seed %Ld: seed word included" seed)
            true
            (Array.exists (fun w -> w = 1023) plan)
      | None -> Alcotest.failf "AR+MEM+CB/seed %Ld: expected a plan" seed)
    seeds

(* --- executor measurement-buffer reuse --------------------------------- *)

(* One executor measuring input sets that shrink and grow must agree with
   a fresh executor per call: the cached count matrix and event
   accumulator are reset in place. *)
let executor_reuse_identical () =
  let g = Gadgets.spectre_v1 in
  let flat = Program.flatten_exn g.Gadgets.program in
  let prog = Compiled.of_flat flat in
  let cfg = Target.fuzzer_config ~seed:1L Contract.ct_seq Target.target5 in
  let fresh_measure inputs =
    let cpu = Cpu.create cfg.Fuzzer.uarch in
    let executor = Executor.create cpu cfg.Fuzzer.executor in
    Executor.measure executor prog inputs
  in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let reused = Executor.create cpu cfg.Fuzzer.executor in
  List.iteri
    (fun i n ->
      let inputs = batch_inputs n (Int64.of_int ((2 * i) + 3)) in
      let a = fresh_measure inputs in
      let b = Executor.measure reused prog inputs in
      check int (Printf.sprintf "round %d: count" i) (Array.length a)
        (Array.length b);
      Array.iteri
        (fun idx (m : Executor.measurement) ->
          let m' = a.(idx) in
          check bool
            (Printf.sprintf "round %d input %d: htrace" i idx)
            true
            (Htrace.equal m.Executor.htrace m'.Executor.htrace);
          check bool
            (Printf.sprintf "round %d input %d: kinds+events" i idx)
            true
            (Stdlib.compare
               (m.Executor.kinds, m.Executor.events)
               (m'.Executor.kinds, m'.Executor.events)
            = 0))
        b)
    [ 20; 7; 31; 20 ]

(* --- whole fuzzer ------------------------------------------------------ *)

let outcome_fingerprint = function
  | Fuzzer.No_violation -> "no violation"
  | Fuzzer.Violation v ->
      Format.asprintf "%s @ (%d,%d) ctrace %s" v.Violation.label
        v.Violation.index_a v.Violation.index_b
        (Ctrace.to_string v.Violation.ctrace)

let stats_fingerprint (s : Fuzzer.stats) =
  (* every counter except wall-clock time *)
  Printf.sprintf "tc=%d in=%d eff=%d ineff=%d faulted=%d cand=%d swap=%d nest=%d rounds=%d growths=%d"
    s.Fuzzer.test_cases s.Fuzzer.inputs_tested s.Fuzzer.effective_inputs
    s.Fuzzer.ineffective_test_cases s.Fuzzer.faulted_test_cases
    s.Fuzzer.candidates s.Fuzzer.dismissed_by_swap s.Fuzzer.dismissed_by_nesting
    s.Fuzzer.rounds s.Fuzzer.growths

let fuzz_with ~seed ~engine ~model_domains =
  let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target5 in
  let cfg = { cfg with Fuzzer.engine; Fuzzer.model_domains } in
  Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 25)

let fuzzer_identical () =
  List.iter
    (fun seed ->
      List.iter
        (fun model_domains ->
          let oc, sc =
            fuzz_with ~seed ~engine:Fuzzer.Compiled ~model_domains
          in
          let oi, si =
            fuzz_with ~seed ~engine:Fuzzer.Interpreted ~model_domains
          in
          let here s =
            Printf.sprintf "seed %Ld, %d domain(s): %s" seed model_domains s
          in
          check string (here "outcome") (outcome_fingerprint oi)
            (outcome_fingerprint oc);
          check string (here "stats") (stats_fingerprint si)
            (stats_fingerprint sc))
        [ 1; 2; 4 ])
    seeds

(* check_test_case on a known-violating gadget, both engines *)
let check_test_case_identical () =
  let g = Gadgets.spectre_v1 in
  List.iter
    (fun seed ->
      let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target5 in
      let prng = Prng.create ~seed in
      let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
      let run engine =
        let cfg = { cfg with Fuzzer.engine } in
        let cpu = Cpu.create cfg.Fuzzer.uarch in
        let executor = Executor.create cpu cfg.Fuzzer.executor in
        Fuzzer.check_test_case cfg executor g.Gadgets.program inputs
      in
      let fp = function
        | Error e -> "error: " ^ e
        | Ok None -> "ok"
        | Ok (Some v) -> outcome_fingerprint (Fuzzer.Violation v)
      in
      check string
        (Printf.sprintf "seed %Ld: spectre-v1 check" seed)
        (fp (run Fuzzer.Interpreted))
        (fp (run Fuzzer.Compiled)))
    seeds

let () =
  Alcotest.run "compiled"
    [
      ( "differential",
        [
          tc "descriptor metadata matches the ISA layer" `Quick desc_metadata;
          tc "bare emulation is bit-identical" `Quick emulation_identical;
          tc "contract model is bit-identical" `Quick model_identical;
          tc "CPU simulator is bit-identical" `Quick cpu_identical;
          tc "batched model equals per-input runs" `Quick batch_identical;
          tc "batched model equals sequential across pool sizes" `Quick
            batch_pool_identical;
          tc "arena templates equal fresh templates" `Quick
            arena_reuse_identical;
          tc "sparse fill is observation-equivalent" `Quick
            sparse_fill_equivalent;
          tc "fill plans have the expected shape" `Quick sparse_plan_shape;
          tc "executor buffer reuse is bit-identical" `Quick
            executor_reuse_identical;
          tc "executor measurements are bit-identical" `Quick
            executor_identical;
          tc "fuzzer outcomes and stats are bit-identical" `Slow
            fuzzer_identical;
          tc "check_test_case agrees on spectre-v1" `Quick
            check_test_case_identical;
        ] );
    ]
