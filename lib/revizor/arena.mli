open Revizor_emu

(** Reusable pool of input template states.

    A fuzzing campaign materializes tens of template states per test case
    ({!Input.templates}); this arena refills the same pool of states
    instead, which is bit-identical to fresh allocation because
    {!Input.apply} rewrites every field a previous fill could have
    changed and templates are never executed on (the model and executor
    copy them into scratch states first).

    Not thread-safe: one arena per campaign loop (the parallel model
    stage only reads the returned templates). *)

type t

val create : unit -> t

val templates : ?plan:int array -> t -> Input.t list -> State.t array
(** Materialize the inputs into pooled template states. The returned
    array is owned by the arena and valid until the next [templates]
    call; callers must not mutate the states.

    [plan] (from {!Input.fill_plan} for the program these templates will
    run) restricts the data fill to the words that program can read;
    unlisted words keep a previous test case's values, which the plan
    proves unobservable. Omit it to fill the whole sandbox. *)
