open Revizor_isa
open Revizor_emu

type step_record = {
  s_pc : int;
  s_inst : Instruction.t;
  s_accesses : Semantics.access list;
}

type result = { ctrace : Ctrace.t; stream : step_record list; faulted : bool }

let max_nesting_depth = 4

let run_state ?(max_steps = 4096) ?(watchdog = Watchdog.default)
    (contract : Contract.t) prog (state : State.t) =
  let code_len = Compiled.length prog in
  let descs = prog.Compiled.descs in
  (* Watchdog fuel: counts every walked instruction including nested
     speculative re-explorations, which is exactly the quantity that
     blows up on pathological programs while [max_steps] (per-walk) does
     not. *)
  let fuel = Watchdog.start watchdog in
  let obs = ref [] in
  let stream = ref [] in
  let faulted = ref false in
  let emit o = obs := o :: !obs in
  let record_access ~speculative (a : Semantics.access) =
    match a.Semantics.kind with
    | `Load ->
        emit (Ctrace.Addr a.Semantics.addr);
        if contract.Contract.obs = Contract.Arch then
          emit (Ctrace.Value a.Semantics.value)
    | `Store ->
        if (not speculative) || contract.Contract.expose_speculative_stores then
          emit (Ctrace.Addr a.Semantics.addr)
  in
  let record_control next =
    match contract.Contract.obs with
    | Contract.Ct | Contract.Arch -> emit (Ctrace.Pc next)
    | Contract.Mem -> ()
  in
  (* [walk] executes up to [budget] instructions from the current state.
     [depth] counts nested explorations: 0 is the architectural path. *)
  let rec walk ~depth budget =
    let speculative = depth > 0 in
    let budget = ref budget in
    let stop = ref false in
    while (not !stop) && !budget > 0 && state.State.pc < code_len do
      decr budget;
      Watchdog.tick fuel;
      let pc = state.State.pc in
      let d = descs.(pc) in
      if d.Compiled.d_serializing then
        if speculative then stop := true
        else state.State.pc <- pc + 1
      else begin
        let may_nest =
          depth = 0 || (contract.Contract.nesting && depth < max_nesting_depth)
        in
        (* Execution clause: conditional-branch misprediction. *)
        (match d.Compiled.d_cond with
        | Some c when Contract.has_cond contract && may_nest ->
            let actual = Flags.eval_cond state.State.flags c in
            let inverted =
              if actual then pc + 1 else Compiled.target prog pc
            in
            let snap = State.snapshot state in
            state.State.pc <- inverted;
            record_control inverted;
            walk ~depth:(depth + 1)
              (min !budget contract.Contract.speculation_window);
            State.restore state snap
        | Some _ | None -> ());
        (* Execution clause: store bypass (the store is skipped and
           execution continues speculatively). *)
        (if Contract.has_bpas contract && may_nest && d.Compiled.d_stores then
           match d.Compiled.d_mem with
           | Some mr ->
               let addr = mr.Compiled.mr_addr state in
               let w = mr.Compiled.mr_width in
               let snap = State.snapshot state in
               (try
                  let old = Memory.read state.State.mem ~addr w in
                  let outcome = Compiled.step prog state in
                  (* Undo the write: the store is bypassed. *)
                  Memory.write state.State.mem ~addr w old;
                  List.iter
                    (fun (a : Semantics.access) ->
                      if a.Semantics.kind = `Load then
                        record_access ~speculative:true a)
                    outcome.Semantics.accesses;
                  walk ~depth:(depth + 1)
                    (min !budget contract.Contract.speculation_window)
                with Semantics.Division_fault | Memory.Fault _ -> ());
               State.restore state snap
           | None -> ());
        (* Architectural (or in-exploration) step. *)
        match Compiled.step prog state with
        | outcome ->
            List.iter (record_access ~speculative) outcome.Semantics.accesses;
            if d.Compiled.d_control_flow then
              record_control outcome.Semantics.next;
            if not speculative then
              stream :=
                { s_pc = pc;
                  s_inst = d.Compiled.d_inst;
                  s_accesses = outcome.Semantics.accesses }
                :: !stream
        | exception (Semantics.Division_fault | Memory.Fault _) ->
            if speculative then stop := true
            else begin
              faulted := true;
              stop := true
            end
      end
    done
  in
  walk ~depth:0 max_steps;
  { ctrace = List.rev !obs; stream = List.rev !stream; faulted = !faulted }

let run ?max_steps ?watchdog contract prog input =
  run_state ?max_steps ?watchdog contract prog (Input.to_state input)

(* Per-input model cost: one counter increment and a log2 histogram
   sample per contract trace, updated from whichever domain ran it. *)
let m_inputs = Revizor_obs.Metrics.counter "model.inputs"
let m_total_ns = Revizor_obs.Metrics.counter "model.input_total_ns"
let h_input_ns = Revizor_obs.Metrics.histogram "model.input_ns"

(* Fault point for the model stage: an armed schedule makes a contract
   trace blow up like a real model bug would, so the fuzz loop's
   absorb-and-record path is exercised by tests. *)
let fp_model = Revizor_obs.Faultpoint.point "model.ctrace"

let timed_run_state ?max_steps ?watchdog contract prog state =
  Revizor_obs.Faultpoint.fire fp_model;
  let t0 = Revizor_obs.Clock.now_ns () in
  let r = run_state ?max_steps ?watchdog contract prog state in
  let dt = Revizor_obs.Clock.now_ns () - t0 in
  Revizor_obs.Metrics.incr m_inputs;
  Revizor_obs.Metrics.add m_total_ns dt;
  Revizor_obs.Metrics.observe h_input_ns dt;
  r

let ctraces ?max_steps ?watchdog ?templates contract prog inputs =
  match templates with
  | None ->
      List.map
        (fun input ->
          timed_run_state ?max_steps ?watchdog contract prog
            (Input.to_state input))
        inputs
  | Some tpl ->
      (* One scratch state, restored from each input's template by a flat
         blit instead of regenerating the PRNG stream. *)
      let scratch = State.create () in
      List.mapi
        (fun i _ ->
          State.copy_into tpl.(i) ~dst:scratch;
          timed_run_state ?max_steps ?watchdog contract prog scratch)
        inputs

let ctraces_par ?max_steps ?watchdog ?templates pool contract prog inputs =
  if Pool.size pool <= 1 then
    ctraces ?max_steps ?watchdog ?templates contract prog inputs
  else
    let arr = Array.of_list inputs in
    let indices = Array.init (Array.length arr) Fun.id in
    let results =
      Pool.map_array pool
        (fun i ->
          (* Each task gets a private state: templates are shared read-only
             across domains, never executed on directly. *)
          let state =
            match templates with
            | Some tpl -> State.copy tpl.(i)
            | None -> Input.to_state arr.(i)
          in
          timed_run_state ?max_steps ?watchdog contract prog state)
        indices
    in
    Array.to_list results
