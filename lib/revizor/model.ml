open Revizor_isa
open Revizor_emu

type step_record = {
  s_pc : int;
  s_inst : Instruction.t;
  s_accesses : Semantics.access list;
}

type result = { ctrace : Ctrace.t; stream : step_record list; faulted : bool }

let max_nesting_depth = 4

(* ------------------------------------------------------------------ *)
(* Per-domain scratch arenas                                           *)
(* ------------------------------------------------------------------ *)

(* The batched model stage executes every input of a test case on the
   same preallocated machinery: one scratch state reset in place from
   the input's template (a flat blit), one access buffer shared by all
   raw actions, and one snapshot buffer per speculation depth for the
   exploration clauses. One arena per domain (via [Domain.DLS]) makes
   the same fast path serve both the sequential and the pooled walker
   without locking. *)
type arena = {
  a_scratch : State.t;
  a_blank : State.t;
      (* pristine [State.create] image: resetting scratch from it before
         [Input.apply] makes scratch reuse bit-identical to a fresh
         state even after a previous input executed stores outside the
         data area (stack pushes) or moved non-pool registers *)
  a_ab : Compiled.abuf;
  a_snaps : State.snapshot option array;  (* indexed by clause depth *)
}

let make_arena () =
  {
    a_scratch = State.create ();
    a_blank = State.create ();
    a_ab = Compiled.abuf_create ();
    a_snaps = Array.make (max_nesting_depth + 2) None;
  }

let dls_arena = Domain.DLS.new_key make_arena

let snap_save snaps depth state =
  match snaps.(depth) with
  | Some s ->
      State.snapshot_into state s;
      s
  | None ->
      let s = State.snapshot state in
      snaps.(depth) <- Some s;
      s

(* ------------------------------------------------------------------ *)
(* The walker                                                          *)
(* ------------------------------------------------------------------ *)

(* [run_state_in] is the single execution engine behind both the public
   per-input API and the batched stage.

   [~fuse:true] enables basic-block superinstruction execution: at any
   pc that starts a straight-line run (precomputed by [Compiled.analyze]
   as [run_len], or [nostore_len] under store-bypass contracts, so no
   speculation clause can fire inside the run), up to [budget]
   instructions are executed back-to-back through the [fused] action
   array — no clause re-checks, no per-step observation flush, and
   provably-dead flag computation elided. The watchdog still ticks and
   the budget still decrements per instruction, so fuel accounting and
   speculation windows are bit-identical to the per-step walk. A fault
   inside a fused block truncates the access buffer to the last
   completed instruction (the per-step engine never records a faulting
   instruction's accesses) and stops exactly like the per-step fault
   clause.

   [~record_stream:false] skips materializing per-step access lists for
   the instruction stream — the fuzzer only reads the stream of the
   first input (for coverage patterns), so all other inputs run
   allocation-free. Architectural steps of a stream-recorded input are
   executed per-step (fusion stays on inside speculative explorations,
   whose steps are never in the stream). *)
let run_state_in ~arena ~fuse ~record_stream ~max_steps ~watchdog
    (contract : Contract.t) prog (state : State.t) =
  let code_len = Compiled.length prog in
  let descs = prog.Compiled.descs in
  let raws = prog.Compiled.raws in
  let fused = prog.Compiled.fused in
  let has_cond = Contract.has_cond contract in
  let has_bpas = Contract.has_bpas contract in
  let fuse_len =
    if has_bpas then prog.Compiled.nostore_len else prog.Compiled.run_len
  in
  let arch_values = contract.Contract.obs = Contract.Arch in
  let expose_stores = contract.Contract.expose_speculative_stores in
  let pc_obs =
    match contract.Contract.obs with
    | Contract.Ct | Contract.Arch -> true
    | Contract.Mem -> false
  in
  let ab = arena.a_ab in
  let snaps = arena.a_snaps in
  (* Watchdog fuel: counts every walked instruction including nested
     speculative re-explorations, which is exactly the quantity that
     blows up on pathological programs while [max_steps] (per-walk) does
     not. *)
  let fuel = Watchdog.start watchdog in
  let obs = ref [] in
  let stream = ref [] in
  let faulted = ref false in
  let emit o = obs := o :: !obs in
  let record_control next = if pc_obs then emit (Ctrace.Pc next) in
  (* Flush buffer entries [0, hi) into the observation list, matching
     the per-access record order of the reference walk. *)
  let record_abuf ~speculative hi =
    for k = 0 to hi - 1 do
      if ab.Compiled.ab_store.(k) then begin
        if (not speculative) || expose_stores then
          emit (Ctrace.Addr ab.Compiled.ab_addr.(k))
      end
      else begin
        emit (Ctrace.Addr ab.Compiled.ab_addr.(k));
        if arch_values then emit (Ctrace.Value ab.Compiled.ab_value.(k))
      end
    done
  in
  (* [walk] executes up to [budget] instructions from the current state.
     [depth] counts nested explorations: 0 is the architectural path. *)
  let rec walk ~depth budget =
    let speculative = depth > 0 in
    let budget = ref budget in
    let stop = ref false in
    while (not !stop) && !budget > 0 && state.State.pc < code_len do
      let pc = state.State.pc in
      let fl =
        if fuse && (speculative || not record_stream) then fuse_len.(pc) else 0
      in
      if fl >= 2 then begin
        (* Fused straight-line block. *)
        let n = if fl < !budget then fl else !budget in
        Compiled.abuf_clear ab;
        let mark = ref 0 in
        match
          for j = 0 to n - 1 do
            decr budget;
            Watchdog.tick fuel;
            mark := ab.Compiled.ab_len;
            fused.(pc + j) state ab
          done
        with
        | () -> record_abuf ~speculative ab.Compiled.ab_len
        | exception (Semantics.Division_fault | Memory.Fault _) ->
            record_abuf ~speculative !mark;
            if not speculative then faulted := true;
            stop := true
      end
      else begin
        decr budget;
        Watchdog.tick fuel;
        let d = descs.(pc) in
        if d.Compiled.d_serializing then
          if speculative then stop := true
          else state.State.pc <- pc + 1
        else begin
          let may_nest =
            depth = 0 || (contract.Contract.nesting && depth < max_nesting_depth)
          in
          (* Execution clause: conditional-branch misprediction. *)
          (match d.Compiled.d_cond with
          | Some c when has_cond && may_nest ->
              let actual = Flags.eval_cond state.State.flags c in
              let inverted =
                if actual then pc + 1 else Compiled.target prog pc
              in
              let snap = snap_save snaps depth state in
              state.State.pc <- inverted;
              record_control inverted;
              walk ~depth:(depth + 1)
                (min !budget contract.Contract.speculation_window);
              State.restore state snap
          | Some _ | None -> ());
          (* Execution clause: store bypass (the store is skipped and
             execution continues speculatively). *)
          (if has_bpas && may_nest && d.Compiled.d_stores then
             match d.Compiled.d_mem with
             | Some mr ->
                 let addr = mr.Compiled.mr_addr state in
                 let w = mr.Compiled.mr_width in
                 let snap = snap_save snaps depth state in
                 (try
                    let old = Memory.read state.State.mem ~addr w in
                    Compiled.abuf_clear ab;
                    raws.(pc) state ab;
                    (* Undo the write: the store is bypassed. *)
                    Memory.write state.State.mem ~addr w old;
                    for k = 0 to ab.Compiled.ab_len - 1 do
                      if not ab.Compiled.ab_store.(k) then begin
                        emit (Ctrace.Addr ab.Compiled.ab_addr.(k));
                        if arch_values then
                          emit (Ctrace.Value ab.Compiled.ab_value.(k))
                      end
                    done;
                    walk ~depth:(depth + 1)
                      (min !budget contract.Contract.speculation_window)
                  with Semantics.Division_fault | Memory.Fault _ -> ());
                 State.restore state snap
             | None -> ());
          (* Architectural (or in-exploration) step. *)
          Compiled.abuf_clear ab;
          match raws.(pc) state ab with
          | () ->
              record_abuf ~speculative ab.Compiled.ab_len;
              if d.Compiled.d_control_flow then record_control state.State.pc;
              if record_stream && not speculative then
                stream :=
                  {
                    s_pc = pc;
                    s_inst = d.Compiled.d_inst;
                    s_accesses = Compiled.abuf_accesses ab;
                  }
                  :: !stream
          | exception (Semantics.Division_fault | Memory.Fault _) ->
              if speculative then stop := true
              else begin
                faulted := true;
                stop := true
              end
        end
      end
    done
  in
  walk ~depth:0 max_steps;
  { ctrace = List.rev !obs; stream = List.rev !stream; faulted = !faulted }

let run_state ?(max_steps = 4096) ?(watchdog = Watchdog.default)
    (contract : Contract.t) prog (state : State.t) =
  (* The public per-input walk stays unfused: its final state (including
     flags elided by the fused variants) is part of the interface. *)
  let arena = Domain.DLS.get dls_arena in
  run_state_in ~arena ~fuse:false ~record_stream:true ~max_steps ~watchdog
    contract prog state

let run ?max_steps ?watchdog contract prog input =
  run_state ?max_steps ?watchdog contract prog (Input.to_state input)

(* ------------------------------------------------------------------ *)
(* Batched execution                                                   *)
(* ------------------------------------------------------------------ *)

(* Per-input model cost. The input counter stays exact (it feeds the
   dashboards and the deterministic-snapshot test); the clock reads and
   histogram sample are taken for one input in 16, by input index, so
   the instrumentation of the hot loop is allocation-free and
   deterministic across domain counts. *)
let m_inputs = Revizor_obs.Metrics.counter "model.inputs"
let m_total_ns = Revizor_obs.Metrics.counter "model.input_total_ns"
let h_input_ns = Revizor_obs.Metrics.histogram "model.input_ns"

(* Fault point for the model stage: an armed schedule makes a contract
   trace blow up like a real model bug would, so the fuzz loop's
   absorb-and-record path is exercised by tests. *)
let fp_model = Revizor_obs.Faultpoint.point "model.ctrace"

let timed_trace ~arena ~idx ~record_stream ~max_steps ~watchdog contract prog
    state =
  Revizor_obs.Faultpoint.fire fp_model;
  Revizor_obs.Metrics.incr m_inputs;
  if idx land 15 = 0 then begin
    let t0 = Revizor_obs.Clock.now_ns () in
    let r =
      run_state_in ~arena ~fuse:true ~record_stream ~max_steps ~watchdog
        contract prog state
    in
    let dt = Revizor_obs.Clock.now_ns () - t0 in
    Revizor_obs.Metrics.add m_total_ns dt;
    Revizor_obs.Metrics.observe h_input_ns dt;
    r
  end
  else
    run_state_in ~arena ~fuse:true ~record_stream ~max_steps ~watchdog contract
      prog state

(* Reset the arena scratch to exactly the state [Input.to_state] would
   build: template blit when available, else pristine blit + fill. *)
let reset_scratch ~arena ~templates input i =
  let scratch = arena.a_scratch in
  (match templates with
  | Some tpl -> State.copy_into tpl.(i) ~dst:scratch
  | None ->
      State.copy_into arena.a_blank ~dst:scratch;
      (* The blank blit restored all-zero data memory. *)
      Input.apply ~data_hi_zero:true input scratch);
  scratch

let batch ?(max_steps = 4096) ?(watchdog = Watchdog.default) ?pool
    ?(stream = `All) contract prog =
  (* Specialize the per-test-case closure once: contract dispatch,
     fused-run metadata and the pool decision are resolved here, and the
     closure is then invoked once with the full input set. *)
  let record_stream = match stream with `All -> fun _ -> true | `First -> fun i -> i = 0 in
  let seq ?templates inputs =
    let arena = Domain.DLS.get dls_arena in
    List.mapi
      (fun i input ->
        let scratch = reset_scratch ~arena ~templates input i in
        timed_trace ~arena ~idx:i ~record_stream:(record_stream i) ~max_steps
          ~watchdog contract prog scratch)
      inputs
  in
  match pool with
  | Some pool when Pool.size pool > 1 ->
      fun ?templates inputs ->
        let arr = Array.of_list inputs in
        let indices = Array.init (Array.length arr) Fun.id in
        let results =
          Pool.map_array pool
            (fun i ->
              (* Each worker executes on its domain-local arena;
                 templates are shared read-only across domains, never
                 executed on directly. *)
              let arena = Domain.DLS.get dls_arena in
              let scratch = reset_scratch ~arena ~templates arr.(i) i in
              timed_trace ~arena ~idx:i ~record_stream:(record_stream i)
                ~max_steps ~watchdog contract prog scratch)
            indices
        in
        Array.to_list results
  | _ -> seq

let ctraces ?max_steps ?watchdog ?templates ?stream contract prog inputs =
  (batch ?max_steps ?watchdog ?stream contract prog) ?templates inputs

let ctraces_par ?max_steps ?watchdog ?templates ?stream pool contract prog
    inputs =
  (batch ?max_steps ?watchdog ~pool ?stream contract prog) ?templates inputs
