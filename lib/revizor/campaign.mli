(** Campaign checkpointing (DESIGN.md §8): serialize a {!Fuzzer.snapshot}
    to a versioned JSON file and restore it, so an interrupted fuzzing
    campaign resumes bit-identically — same violations, same statistics
    (wall time excepted) — as the uninterrupted run.

    A checkpoint embeds a fingerprint of the configuration it was taken
    under; {!load} rejects checkpoints whose fingerprint does not match
    the current configuration, because resuming a PRNG mid-stream under
    different parameters would silently produce a run that corresponds to
    no seed at all. [model_domains] is excluded from the fingerprint:
    results are pool-size-independent, so a checkpoint may be resumed
    with a different [-j]. *)

val schema : string
(** ["revizor.checkpoint.v1"]. *)

val version : int

val fingerprint : Fuzzer.config -> string
(** 16-hex-digit FNV-1a digest of the canonical configuration
    rendering. *)

val to_json : Fuzzer.config -> Fuzzer.snapshot -> Revizor_obs.Json.t
val of_json :
  Fuzzer.config -> Revizor_obs.Json.t -> (Fuzzer.snapshot, string) result
(** Fails on schema/version/fingerprint mismatch or missing fields. *)

val save : path:string -> Fuzzer.config -> Fuzzer.snapshot -> unit
(** Atomic publication (write-tmp-then-rename via
    {!Revizor_obs.Atomic_file}): a crash mid-write leaves the previous
    checkpoint intact, never a torn file. *)

val load : path:string -> Fuzzer.config -> (Fuzzer.snapshot, string) result
