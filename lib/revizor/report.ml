let render_table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value (List.nth_opt row c) ~default:"" in
           cell ^ String.make (max 0 (w - String.length cell)) ' ')
         widths)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let t3_outcome_to_string = function
  | Experiments.Detected { label; test_cases } ->
      Printf.sprintf "V (%s, %d tcs)" label test_cases
  | Experiments.Not_detected { test_cases } -> Printf.sprintf "x (%d tcs)" test_cases
  | Experiments.Skipped -> "x*"
  | Experiments.Gadget_demo { label } -> Printf.sprintf "V (%s, gadget)" label

let table3 cells =
  let contracts = List.map Contract.name Contract.standard_ladder in
  let by_target = Hashtbl.create 8 in
  List.iter
    (fun (c : Experiments.t3_cell) ->
      let key = c.Experiments.target.Target.name in
      Hashtbl.replace by_target key
        (c :: (try Hashtbl.find by_target key with Not_found -> [])))
    cells;
  let rows =
    List.filter_map
      (fun (t : Target.t) ->
        match Hashtbl.find_opt by_target t.Target.name with
        | None -> None
        | Some cs ->
            let cs = List.rev cs in
            Some
              (t.Target.name
               :: List.concat_map
                    (fun (c : Experiments.t3_cell) ->
                      [ t3_outcome_to_string c.Experiments.outcome;
                        "paper: " ^ c.Experiments.paper ])
                    cs))
      Target.all
  in
  let header =
    "Target"
    :: List.concat_map (fun c -> [ c; "(paper)" ]) contracts
  in
  render_table ~header rows

let table4 ~runs cells =
  let rows_of = [ "None"; "V4"; "V1" ] and cols_of = [ "V4"; "V1"; "MDS"; "LVI" ] in
  let lookup row column =
    List.find_map
      (function
        | Some (c : Experiments.t4_cell)
          when c.Experiments.row = row && c.Experiments.column = column ->
            Some c
        | Some _ | None -> None)
      cells
  in
  let rows =
    List.map
      (fun row ->
        ("permitted: " ^ row)
        :: List.map
             (fun column ->
               match lookup row column with
               | None -> "N/A"
               | Some c ->
                   if c.Experiments.detected = 0 then "not found"
                   else
                     Printf.sprintf "%.1f tcs / %.2fs (cov %.1f) [%d/%d]"
                       c.Experiments.mean_test_cases c.Experiments.mean_seconds
                       c.Experiments.cov c.Experiments.detected runs)
             cols_of)
      rows_of
  in
  render_table ~header:("Contract" :: List.map (fun c -> c ^ "-type") cols_of) rows

let table5 rows =
  render_table
    ~header:[ "Gadget"; "Ref"; "Found"; "Mean inputs"; "Median"; "Min"; "Max" ]
    (List.map
       (fun (r : Experiments.t5_row) ->
         [
           r.Experiments.gadget.Gadgets.name;
           r.Experiments.gadget.Gadgets.reference;
           Printf.sprintf "%d/%d" r.Experiments.found r.Experiments.runs;
           Printf.sprintf "%.1f" r.Experiments.mean_inputs;
           string_of_int r.Experiments.median_inputs;
           string_of_int r.Experiments.min_inputs;
           string_of_int r.Experiments.max_inputs;
         ])
       rows)

let store_eviction results =
  render_table ~header:[ "CPU"; "CT-COND(noSpecStore)"; "Label" ]
    (List.map
       (fun (r : Experiments.store_eviction_result) ->
         [
           r.Experiments.cpu_name;
           (if r.Experiments.violated then "VIOLATED" else "compliant");
           Option.value r.Experiments.label ~default:"-";
         ])
       results)

let sensitivity results =
  render_table ~header:[ "Gadget"; "Contract"; "Result" ]
    (List.map
       (fun (g, c, v) -> [ g; c; (if v then "VIOLATED" else "compliant") ])
       results)

let throughput (t : Experiments.throughput) =
  Printf.sprintf
    "%d test cases, %d inputs in %.1fs -> %.0f test cases/hour" t.Experiments.test_cases
    t.Experiments.inputs t.Experiments.seconds t.Experiments.cases_per_hour

let ablation (a : Experiments.ablation) =
  Printf.sprintf "%s\n  with:    %s\n  without: %s\n  => %s" a.Experiments.name
    a.Experiments.with_feature a.Experiments.without_feature
    a.Experiments.conclusion

let entropy_sweep rows =
  render_table ~header:[ "Entropy bits"; "Input effectiveness" ]
    (List.map
       (fun (e, f) -> [ string_of_int e; Printf.sprintf "%.1f%%" (100. *. f) ])
       rows)

(* --- telemetry renderers (DESIGN.md §7) ----------------------------- *)

module Metrics = Revizor_obs.Metrics

let stage_table (s : Metrics.summary) ~elapsed_s =
  let stages = Metrics.stage_breakdown s in
  let wall_ns = elapsed_s *. 1e9 in
  let accounted =
    List.fold_left (fun acc st -> acc + st.Metrics.st_total_ns) 0 stages
  in
  let row (st : Metrics.stage) =
    [
      st.Metrics.st_name;
      string_of_int st.Metrics.st_calls;
      Printf.sprintf "%.1f" (float_of_int st.Metrics.st_total_ns /. 1e6);
      (if wall_ns > 0. then
         Printf.sprintf "%.1f%%" (100. *. float_of_int st.Metrics.st_total_ns /. wall_ns)
       else "-");
      (if st.Metrics.st_calls > 0 then
         Printf.sprintf "%.1f"
           (float_of_int st.Metrics.st_total_ns
           /. float_of_int st.Metrics.st_calls /. 1e3)
       else "-");
    ]
  in
  let footer =
    [
      "(accounted)";
      "";
      Printf.sprintf "%.1f" (float_of_int accounted /. 1e6);
      (if wall_ns > 0. then
         Printf.sprintf "%.1f%%" (100. *. float_of_int accounted /. wall_ns)
       else "-");
      "";
    ]
  in
  render_table
    ~header:[ "Stage"; "Calls"; "Total ms"; "% wall"; "Mean us" ]
    (List.map row stages @ [ footer ])

let metrics_table (s : Metrics.summary) =
  let counter_rows =
    List.map (fun (n, v) -> [ n; "counter"; string_of_int v ]) s.Metrics.counters
  in
  let gauge_rows =
    List.map (fun (n, v) -> [ n; "gauge"; Printf.sprintf "%g" v ]) s.Metrics.gauges
  in
  let hist_rows =
    List.map
      (fun (n, (h : Metrics.hist_summary)) ->
        [
          n;
          "histogram";
          Printf.sprintf "count=%d sum=%d mean=%.1f" h.Metrics.h_count
            h.Metrics.h_sum
            (if h.Metrics.h_count = 0 then 0.
             else float_of_int h.Metrics.h_sum /. float_of_int h.Metrics.h_count);
        ])
      s.Metrics.histograms
  in
  render_table ~header:[ "Metric"; "Kind"; "Value" ]
    (counter_rows @ gauge_rows @ hist_rows)
