open Revizor_uarch
module Json = Revizor_obs.Json

(** The microarchitectural coverage atlas: the campaign's second coverage
    dimension, next to {!Coverage}'s instruction-pattern coverage.

    Pattern coverage (§5.6 of the paper) is a black-box proxy — it counts
    the speculation {e opportunities} the generator put in front of the
    CPU. The atlas measures what the CPU under test {e actually did} with
    them: it harvests the speculation-event record the executor already
    collects during normal measurement and buckets it into a bounded
    feature space — speculation mechanism × origin-instruction pattern,
    log2-bucketed speculation-window lengths (transient loads that beat
    the squash), transient cache-set footprints, squash-cause
    transitions, and speculative burst depth — remembering for each
    feature the first test case that covered it.

    Collection is pure bookkeeping over data the measurement produced
    anyway: no extra simulation runs, and nothing feeds back into
    generation or detection, so fuzzing outcomes are bit-identical with
    collection on or off (and for any [--executor-domains] count — the
    harvest is a pure function of the measurement). *)

val schema : string
(** ["revizor.ucoverage.v1"]. *)

val set_enabled : bool -> unit
(** Master switch (default on) for collection, mirroring
    {!Executor.set_memo}: process-global because campaigns construct
    their atlas internally. Off, {!register} and {!note_round} are
    no-ops; the campaign's outcome is unchanged either way. *)

val enabled : unit -> bool

(** {1 Feature space} *)

(** Pattern class of the instruction that triggered a speculation
    episode, classified from the compiled program's descriptors. *)
type origin =
  | O_cond_branch
  | O_ret
  | O_ind_jump
  | O_call
  | O_store  (** a store's address resolving late (store bypass) *)
  | O_load  (** an assisted load *)
  | O_other

type feature =
  | Kind_origin of Cpu.speculation_kind * origin
  | Window of Cpu.speculation_kind * int
      (** log2 bucket ({!Revizor_obs.Metrics.bucket_of}) of the episode's
          transient-load count — how much work beat the squash *)
  | Footprint of Cpu.speculation_kind * int
      (** log2 bucket of the number of cache sets touched transiently *)
  | Transition of Cpu.speculation_kind * Cpu.speculation_kind
      (** consecutive episodes within one run: squash-cause transitions *)
  | Depth of int
      (** log2 bucket of episodes per run — the speculative burst depth.
          The simulated CPU never nests transient episodes, so this
          counts the burst, not a nesting level. *)

val feature_to_string : feature -> string
(** Stable textual form, e.g. ["window:store-bypass:2"] or
    ["transition:branch-mispredict>return-mispredict"] — the JSON key and
    the CSV/diff identifier. *)

val feature_of_string : string -> feature option
(** Inverse of {!feature_to_string}. *)

val feature_kind : feature -> Cpu.speculation_kind option
(** The mechanism a feature belongs to ([None] for {!Depth}; a
    {!Transition} belongs to its first mechanism). *)

(** {1 Harvesting} *)

val features_of_runs :
  descs:Revizor_emu.Compiled.desc array ->
  Cpu.event list list ->
  feature list
(** Sorted distinct features of a set of per-repetition event records
    (as in {!Executor.measurement.runs}). Pure. *)

val features_of_measurements :
  descs:Revizor_emu.Compiled.desc array ->
  Executor.measurement array ->
  feature list
(** Sorted distinct features across every measured repetition of every
    input of one test case. Pure — safe to compute on worker domains. *)

(** {1 Accumulator} *)

type t

val create : unit -> t
val copy : t -> t

val assign : t -> from:t -> unit
(** Overwrite [t]'s contents with [from]'s (checkpoint resume into a
    caller-owned atlas). *)

val register : t -> tc:int -> feature list -> unit
(** Fold one test case's features into the atlas. First-covered features
    record [tc] as their first hit, advance the frontier curve, update
    the [ucov.*] metrics and emit a [coverage.frontier] telemetry event
    each. No-op when collection is {!set_enabled} off. *)

val note_round : t -> round:int -> unit
(** Round-boundary saturation analytics: after 3 consecutive rounds that
    covered nothing new, emit one [coverage.saturation] telemetry event
    (re-armed by the next frontier advance). *)

(** {1 Queries} *)

val distinct : t -> int
(** Number of distinct features covered. *)

val first_hits : t -> (feature * int) list
(** Every covered feature with the test case that first covered it, in
    deterministic feature order. *)

val frontier : t -> (int * int) list
(** The saturation curve: [(tc, cumulative distinct features)] at every
    test case that covered something new, ascending — monotone in both
    components by construction. *)

val kind_features : t -> Cpu.speculation_kind -> (feature * int) list
val kind_first_hit : t -> Cpu.speculation_kind -> int option

val rate_per_1k : t -> test_cases:int -> float
(** Distinct features per thousand test cases (0 if [test_cases <= 0]). *)

val equal : t -> t -> bool
(** Bit-identity of coverage content (first hits and frontier curve) —
    what the determinism and resume tests compare. *)

val diff : t -> t -> feature list * feature list
(** [(only_in_a, only_in_b)]: the differential view across two campaigns
    (e.g. which mechanisms a patched target never exercises). *)

val merge : t -> t -> t
(** Atlas union for the fleet's central corpus merge: per-feature first
    hits take the minimum test-case index, making the operation
    commutative, associative and idempotent — folding shard atlases in
    any completion order (or re-committing one after a crash) yields
    the same merged atlas. The merged atlas carries no saturation-curve
    state (frontier empty, round counters zeroed): that timeline
    belongs to individual campaigns, not their union. *)

(** {1 Serialization} *)

val to_json : t -> Json.t
(** The versioned ["revizor.ucoverage.v1"] document embedded in
    checkpoints, [stats.json] and [forensics.json]. *)

val of_json : Json.t -> (t, string) result
(** Exact inverse of {!to_json} (round-trips bit-identically). *)

val summary_json : t -> test_cases:int -> Json.t
(** Compact totals for the monitor's [coverage] query and heartbeat
    events: distinct features, features per 1k test cases, per-mechanism
    counts and first hits, saturation state. *)

(** {1 Rendering} *)

val render_kind_table : t -> string
(** Per-mechanism table (features covered, first-hit test case) — shared
    by [revizor coverage report] and the forensics report. *)

val render_report : ?test_cases:int -> t -> string
(** The full [revizor coverage report] body: totals, per-mechanism
    table, per-bucket feature listings with first hits, and the
    saturation curve. *)
