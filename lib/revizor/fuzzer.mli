open Revizor_uarch

(** The end-to-end MRT loop (Fig. 2): generate → model → execute →
    analyze, round by round, with diversity-guided growth of the
    generator configuration (§5.6) and the two false-positive filters —
    the priming swap check (§5.3) and the nesting re-check (§5.4). *)

(** Which execution engine runs the test programs. [Compiled] (the
    default) decodes each test case once into per-instruction descriptors
    and closure-compiled semantic actions, shared by the contract model
    and the CPU simulator; [Interpreted] routes every step through
    {!Revizor_emu.Semantics.step}. The two are bit-identical — fuzzer
    outcomes, traces and statistics do not depend on the choice (the
    differential test suite asserts this); [Interpreted] exists as the
    reference and to rule the compiler out of a surprising result. *)
type engine = Compiled | Interpreted

type config = {
  contract : Contract.t;
  uarch : Uarch_config.t;
  executor : Executor.config;
  gen_cfg : Generator.cfg;
  n_inputs : int;  (** inputs per test case (grows with the rounds) *)
  entropy : int;  (** PRNG entropy bits for input generation *)
  round_length : int;  (** test cases per round *)
  seed : int64;
  model_domains : int;
      (** size of the domain pool for the model stage: the contract traces
          of a test case's inputs are computed in parallel when [> 1].
          The executor stage stays sequential regardless (priming makes
          the measurement order-dependent). Results are identical for
          every value; 1 (the default) runs the plain sequential path
          with no pool at all. *)
  executor_domains : int;
      (** size of the whole-pipeline domain pool: when [> 1] the loop is
          {e pipelined} — the calling domain generates and compiles test
          cases in order while the pool's domains run the rest of each
          test case (materialize, model, execute, analyze) on their own
          replicated CPU/executor/arena. Noise and fault-injection draws
          are keyed on the test-case index and the executor canonicalizes
          all carried state per measurement, so outcomes, traces, stats
          and checkpoints are bit-identical for every value (including 1,
          the plain sequential loop). Mutually exclusive with
          [model_domains] (the model pool is only created when this
          is [<= 1]). *)
  pipeline_depth : int;
      (** extra test cases generated ahead of the executor pool (beyond
          one per domain) when [executor_domains > 1]; 0 disables the
          generate/execute overlap. No effect on results. *)
  engine : engine;
  watchdog : Watchdog.t;
      (** per-test-case step/time budgets for the model stage; the default
          ceiling is far above any legitimate trace, so default results
          are unchanged (see {!Watchdog.default}) *)
}

val compile_with : engine -> Revizor_isa.Program.flat -> Revizor_emu.Compiled.t
(** Compile a flat program with the given engine (what
    {!check_test_case} does internally, for callers that drive
    {!Model} / {!Executor} directly). *)

val default_config :
  ?seed:int64 ->
  ?model_domains:int ->
  ?executor_domains:int ->
  ?pipeline_depth:int ->
  Contract.t ->
  Uarch_config.t ->
  Executor.config ->
  config
(** Paper's starting point: 8 instructions / 2 blocks / 2 memory accesses,
    2 entropy bits, 50 inputs, rounds of 25 test cases, sequential model
    and execute stages ([model_domains = executor_domains = 1],
    [pipeline_depth = 1]). *)

type stats = {
  mutable test_cases : int;
  mutable inputs_tested : int;
  mutable effective_inputs : int;
  mutable ineffective_test_cases : int;  (** no multi-input class *)
  mutable faulted_test_cases : int;
  mutable skipped_pathological : int;
      (** test cases abandoned by the {!Watchdog} budgets *)
  mutable candidates : int;  (** trace divergences before filtering *)
  mutable dismissed_by_swap : int;
  mutable dismissed_by_nesting : int;
  mutable rounds : int;
  mutable growths : int;  (** generator reconfigurations *)
  mutable elapsed_s : float;
}

type outcome = Violation of Violation.t | No_violation

type budget = Test_cases of int | Seconds of float

type snapshot = {
  sn_prng : int64;  (** main campaign PRNG state *)
  sn_noise : int64 option;
      (** always [None]: noise draws are keyed on test-case coordinates
          (not a sequential stream), so there is nothing to rewind. The
          field survives for checkpoint-codec compatibility with pre-PR7
          snapshots, whose stored stream position is ignored. *)
  sn_gen_cfg : Generator.cfg;
  sn_n_inputs : int;
  sn_in_round : int;
  sn_combos_at_round_start : int;
  sn_stats : stats;
  sn_coverage : Coverage.t;
  sn_ucoverage : Ucoverage.t;
      (** the microarchitectural coverage atlas, so a resumed campaign's
          atlas (first hits, frontier curve, saturation counters) is
          bit-identical to the uninterrupted run's *)
}
(** The campaign loop's complete mutable state at a test-case boundary.
    Resuming from a snapshot continues the interrupted run bit for bit —
    same violations, same statistics — except [sn_stats.elapsed_s], which
    accumulates wall time across segments. Serialization, config
    fingerprinting and file handling live in {!Campaign}. *)

val fuzz :
  ?on_progress:(stats -> unit) ->
  ?should_stop:(unit -> bool) ->
  ?resume:snapshot ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(snapshot -> unit) ->
  ?monitor:Revizor_obs.Monitor.t ->
  ?heartbeat_every:int ->
  ?ucoverage:Ucoverage.t ->
  config ->
  budget:budget ->
  outcome * stats
(** Run until a (filtered) violation is found or the budget is exhausted.
    Deterministic for a given [config.seed] under [Test_cases] budgets.
    [should_stop] is polled between test cases (used for cooperative
    cancellation by {!fuzz_parallel} and graceful shutdown by the CLI).

    [resume] restarts the loop from a snapshot (the budget still counts
    total test cases, so a resumed [Test_cases n] campaign stops at the
    same point as the uninterrupted one). [on_checkpoint] is called with
    a fresh snapshot every [checkpoint_every] test cases (0, the default,
    disables periodic checkpoints) and once more when the loop exits
    without a violation — so an interrupted campaign always has a
    boundary snapshot to resume from.

    [monitor] attaches a live {!Revizor_obs.Monitor} endpoint: the loop
    installs [status]/[health] provider closures over its campaign state
    (round, throughput, coverage, pool degradation, watchdog trips,
    checkpoint age) and calls {!Revizor_obs.Monitor.poll} at every
    test-case boundary. [heartbeat_every] (default 50, 0 disables) emits
    a [fuzz.heartbeat] telemetry event — test cases, rounds, throughput,
    coverage size, atlas totals — every N committed test cases. Neither
    feature draws from any PRNG or writes campaign state, so fuzzing
    outcomes are bit-identical with them on or off (asserted by the
    observatory test suite). The monitor stays open when [fuzz] returns:
    the caller may keep polling it (draining late clients) and is
    responsible for {!Revizor_obs.Monitor.close}.

    [ucoverage] supplies a caller-owned {!Ucoverage} atlas for the
    campaign to accumulate into (so the caller can save or render it
    afterwards); omitted, the loop keeps a private one. The atlas feeds
    nothing back into generation or detection — outcomes, traces, stats
    and checkpoints' result-bearing state are bit-identical whether
    collection is on or off ({!Ucoverage.set_enabled}). On [resume] the
    snapshot's atlas contents overwrite the supplied one. *)

val fuzz_parallel :
  ?domains:int -> config -> budget:budget -> outcome * stats list
(** §7: "tests in different adversarial scenarios can easily run in
    parallel". Runs independent fuzzing campaigns (seeds
    [config.seed + i]) on OCaml 5 domains, splitting the budget; the
    first domain to find a violation cancels the others. Returns the
    winning violation (if any) and the per-domain statistics. *)

val check_test_case :
  ?pool:Pool.t ->
  config ->
  Executor.t ->
  Revizor_isa.Program.t ->
  Input.t list ->
  (Violation.t option, string) result
(** The per-test-case pipeline on its own (used by the postprocessor, the
    gadget experiments of Table 5, and the tests). [Error] means the test
    case faulted architecturally. [pool] parallelizes the model stage
    (see {!type:config}[.model_domains]); {!fuzz} manages its own pool. *)

val pp_stats : Format.formatter -> stats -> unit

val stats_to_json : stats -> Revizor_obs.Json.t
(** Flat object keyed by field name, as stored in [stats.json] by
    {!Results.save_violation}. *)

val stats_of_json : Revizor_obs.Json.t -> (stats, string) result
(** Inverse of {!stats_to_json}. Missing fields other than [test_cases]
    default to zero, so the format can grow fields. *)
