(** Plain-text rendering of experiment results, used by the benchmark
    harness and the CLI to print paper-style tables. *)

val render_table : header:string list -> string list list -> string
(** Column-aligned ASCII table. *)

val t3_outcome_to_string : Experiments.t3_outcome -> string
(** "V (V1, 122 tcs)", "x (400 tcs)", "x*", "V (V1-var, gadget)". *)

val table3 : Experiments.t3_cell list -> string
(** Paper-vs-measured rendering of Table 3. *)

val table4 : runs:int -> Experiments.t4_cell option list -> string
val table5 : Experiments.t5_row list -> string
val store_eviction : Experiments.store_eviction_result list -> string
val sensitivity : (string * string * bool) list -> string
val throughput : Experiments.throughput -> string
val ablation : Experiments.ablation -> string
val entropy_sweep : (int * float) list -> string

val stage_table : Revizor_obs.Metrics.summary -> elapsed_s:float -> string
(** Per-stage time breakdown (calls, total ms, share of [elapsed_s]
    wall time, mean call cost) from the [stage.*] metrics, plus an
    "accounted" footer row — the ≥95% wall-time accounting check of the
    telemetry layer reads that row. *)

val metrics_table : Revizor_obs.Metrics.summary -> string
(** Every registered counter, gauge and histogram as an aligned table
    (histograms as count/sum/mean). *)
