open Revizor_isa
open Revizor_uarch

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

(* Gadget detection needs a violating input pair in the random sequence;
   a single unlucky draw of 50 inputs can miss it, so sample a few input
   seeds (deterministically derived) before concluding compliance. *)
let run_gadget ?(seed = 42L) ?(n_inputs = 50) ?(attempts = 3) contract
    (target : Target.t) (g : Gadgets.t) =
  let cfg = Target.fuzzer_config ~seed contract target in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let executor = Executor.create cpu cfg.Fuzzer.executor in
  let rec try_seed k =
    if k >= attempts then None
    else
      let prng = Prng.create ~seed:(Int64.add seed (Int64.of_int (1 + (k * 100)))) in
      let inputs = Input.generate_many prng ~entropy:2 ~n:n_inputs in
      match Fuzzer.check_test_case cfg executor g.Gadgets.program inputs with
      | Ok (Some v) -> Some v
      | Ok None | Error _ -> try_seed (k + 1)
  in
  try_seed 0

let check_gadget = run_gadget

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

type t3_outcome =
  | Detected of { label : string; test_cases : int }
  | Not_detected of { test_cases : int }
  | Skipped
  | Gadget_demo of { label : string }

type t3_cell = {
  target : Target.t;
  contract : Contract.t;
  outcome : t3_outcome;
  paper : string;
}

(* The paper's Table 3, row-major per target (CT-SEQ, CT-BPAS, CT-COND,
   CT-COND-BPAS). *)
let paper_table3 =
  [
    ("Target 1", [ "x"; "x*"; "x*"; "x*" ]);
    ("Target 2", [ "V4"; "x"; "V4"; "x*" ]);
    ("Target 3", [ "V4"; "V4-var"; "V4"; "V4-var" ]);
    ("Target 4", [ "x"; "x*"; "x*"; "x*" ]);
    ("Target 5", [ "V1"; "V1"; "x"; "x*" ]);
    ("Target 6", [ "V1"; "V1"; "V1-var"; "V1-var" ]);
    ("Target 7", [ "MDS"; "MDS"; "MDS"; "MDS" ]);
    ("Target 8", [ "LVI-Null"; "LVI-Null"; "LVI-Null"; "LVI-Null" ]);
  ]

let var_gadget_for (target : Target.t) =
  let has s = List.mem s target.Target.subsets in
  if has Catalog.CB && has Catalog.VAR then Some Gadgets.spectre_v1_var
  else if has Catalog.VAR then Some Gadgets.spectre_v4_var
  else None

let table3 ?(budget = 400) ?(seed = 1L) () =
  List.concat_map
    (fun (target : Target.t) ->
      let paper_row =
        try List.assoc target.Target.name paper_table3 with Not_found -> []
      in
      let satisfied = ref [] in
      List.mapi
        (fun i contract ->
          let paper = try List.nth paper_row i with _ -> "?" in
          let outcome =
            if
              List.exists
                (fun stronger -> Contract.permits_at_least contract stronger)
                !satisfied
            then Skipped
            else
              let cfg = Target.fuzzer_config ~seed contract target in
              match Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases budget) with
              | Fuzzer.Violation v, stats ->
                  Detected
                    { label = v.Violation.label;
                      test_cases = stats.Fuzzer.test_cases }
              | Fuzzer.No_violation, stats -> (
                  (* The "-var" leaks need a rare double-latency-race; show
                     the mechanism on the §6.3 gadget when the paper expects
                     one here. *)
                  let expect_var =
                    String.length paper > 4
                    && String.sub paper (String.length paper - 4) 4 = "-var"
                  in
                  match (expect_var, var_gadget_for target) with
                  | true, Some g -> (
                      match run_gadget ~seed contract target g with
                      | Some v -> Gadget_demo { label = v.Violation.label }
                      | None ->
                          Not_detected { test_cases = stats.Fuzzer.test_cases })
                  | _ ->
                      let r =
                        Not_detected { test_cases = stats.Fuzzer.test_cases }
                      in
                      satisfied := contract :: !satisfied;
                      ignore r;
                      r)
          in
          { target; contract; outcome; paper })
        Contract.standard_ladder)
    Target.all

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)
(* ------------------------------------------------------------------ *)

type t4_cell = {
  row : string;
  column : string;
  detected : int;
  mean_test_cases : float;
  mean_seconds : float;
  cov : float;
}

let sky ~v4 subsets ~assist =
  {
    Target.name = "custom";
    uarch = Uarch_config.skylake ~v4_patch:v4;
    subsets;
    threat = (if assist then Attack.prime_probe_assist else Attack.prime_probe);
    mem_pages = (if assist then 2 else 1);
  }

let coffee subsets =
  {
    Target.name = "custom";
    uarch = Uarch_config.coffee_lake;
    subsets;
    threat = Attack.prime_probe_assist;
    mem_pages = 2;
  }

let ar_mem = [ Catalog.AR; Catalog.MEM ]
let ar_mem_cb = [ Catalog.AR; Catalog.MEM; Catalog.CB ]

(* (row, column, contract, target) or None for the N/A cells. *)
let table4_setups : (string * string * Contract.t * Target.t) option list =
  [
    Some ("None", "V4", Contract.ct_seq, Target.target2);
    Some ("None", "V1", Contract.ct_seq, Target.target5);
    Some ("None", "MDS", Contract.ct_seq, Target.target7);
    Some ("None", "LVI", Contract.ct_seq, Target.target8);
    None (* V4 permitted, V4-type: N/A *);
    Some ("V4", "V1", Contract.ct_bpas, sky ~v4:false ar_mem_cb ~assist:false);
    Some ("V4", "MDS", Contract.ct_bpas, sky ~v4:false ar_mem ~assist:true);
    Some ("V4", "LVI", Contract.ct_bpas, coffee ar_mem);
    Some ("V1", "V4", Contract.ct_cond, sky ~v4:false ar_mem_cb ~assist:false);
    None (* V1 permitted, V1-type: N/A *);
    Some ("V1", "MDS", Contract.ct_cond, sky ~v4:true ar_mem_cb ~assist:true);
    Some ("V1", "LVI", Contract.ct_cond, coffee ar_mem_cb);
  ]

let mean l = List.fold_left ( +. ) 0. l /. float_of_int (max 1 (List.length l))

let coefficient_of_variation l =
  match l with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean l in
      if m = 0. then 0.
      else
        let var = mean (List.map (fun x -> (x -. m) ** 2.) l) in
        sqrt var /. m

let table4 ?(runs = 10) ?(budget = 600) ?(seed = 1L) () =
  List.map
    (Option.map (fun (row, column, contract, target) ->
         let times = ref [] and cases = ref [] and detected = ref 0 in
         for r = 1 to runs do
           let cfg =
             Target.fuzzer_config
               ~seed:(Int64.add seed (Int64.of_int (r * 7919)))
               contract target
           in
           match Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases budget) with
           | Fuzzer.Violation _, stats ->
               incr detected;
               times := stats.Fuzzer.elapsed_s :: !times;
               cases := float_of_int stats.Fuzzer.test_cases :: !cases
           | Fuzzer.No_violation, _ -> ()
         done;
         {
           row;
           column;
           detected = !detected;
           mean_test_cases = mean !cases;
           mean_seconds = mean !times;
           cov = coefficient_of_variation !times;
         }))
    table4_setups

(* ------------------------------------------------------------------ *)
(* Table 5                                                             *)
(* ------------------------------------------------------------------ *)

type t5_row = {
  gadget : Gadgets.t;
  runs : int;
  found : int;
  mean_inputs : float;
  median_inputs : int;
  min_inputs : int;
  max_inputs : int;
}

let gadget_target (g : Gadgets.t) =
  if g.Gadgets.needs_assist then
    if g.Gadgets.name = "lvi-null" then Target.target8 else Target.target7
  else if g.Gadgets.name = "spectre-v4" then Target.target2
  else Target.target5

let minimal_inputs ?(max_inputs = 32) ~seed contract target (g : Gadgets.t) =
  let cfg = Target.fuzzer_config ~seed contract target in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let executor = Executor.create cpu cfg.Fuzzer.executor in
  let prng = Prng.create ~seed in
  let inputs = Input.generate_many prng ~entropy:2 ~n:max_inputs in
  let rec search n =
    if n > max_inputs then None
    else
      let prefix = List.filteri (fun i _ -> i < n) inputs in
      match Fuzzer.check_test_case cfg executor g.Gadgets.program prefix with
      | Ok (Some _) -> Some n
      | Ok None | Error _ -> search (n + 1)
  in
  search 2

let table5 ?(runs = 50) ?(max_inputs = 32) ?(seed = 1L) () =
  List.map
    (fun g ->
      let target = gadget_target g in
      let results =
        List.init runs (fun r ->
            minimal_inputs ~max_inputs
              ~seed:(Int64.add seed (Int64.of_int ((r * 31) + 5)))
              Contract.ct_seq target g)
      in
      let found = List.filter_map Fun.id results in
      let sorted = List.sort compare found in
      let n = List.length sorted in
      {
        gadget = g;
        runs;
        found = n;
        mean_inputs = mean (List.map float_of_int sorted);
        median_inputs = (if n = 0 then 0 else List.nth sorted (n / 2));
        min_inputs = (match sorted with [] -> 0 | x :: _ -> x);
        max_inputs = (match List.rev sorted with [] -> 0 | x :: _ -> x);
      })
    Gadgets.table5

(* ------------------------------------------------------------------ *)
(* §6.4 — speculative store eviction                                   *)
(* ------------------------------------------------------------------ *)

type store_eviction_result = {
  cpu_name : string;
  violated : bool;
  label : string option;
}

let store_eviction_check ?(seed = 3L) () =
  let setups =
    [
      {
        Target.name = "Skylake";
        uarch = Uarch_config.skylake ~v4_patch:true;
        subsets = ar_mem_cb;
        threat = Attack.prime_probe;
        mem_pages = 1;
      };
      {
        Target.name = "Coffee Lake";
        uarch = { Uarch_config.coffee_lake with Uarch_config.name = "Coffee Lake" };
        subsets = ar_mem_cb;
        threat = Attack.prime_probe;
        mem_pages = 1;
      };
    ]
  in
  List.map
    (fun (target : Target.t) ->
      match
        run_gadget ~seed Contract.ct_cond_no_spec_store target
          Gadgets.spec_store_eviction
      with
      | Some v ->
          {
            cpu_name = target.Target.uarch.Uarch_config.name;
            violated = true;
            label = Some v.Violation.label;
          }
      | None ->
          {
            cpu_name = target.Target.uarch.Uarch_config.name;
            violated = false;
            label = None;
          })
    setups

(* ------------------------------------------------------------------ *)
(* §6.6 — contract sensitivity                                         *)
(* ------------------------------------------------------------------ *)

let contract_sensitivity ?(seed = 4L) () =
  List.concat_map
    (fun (g : Gadgets.t) ->
      List.map
        (fun contract ->
          let v = run_gadget ~seed contract Target.target5 g in
          (g.Gadgets.name, Contract.name contract, v <> None))
        [ Contract.ct_seq; Contract.arch_seq ])
    [ Gadgets.stt_nonspeculative; Gadgets.stt_speculative ]

(* ------------------------------------------------------------------ *)
(* §A.5.3 — throughput                                                 *)
(* ------------------------------------------------------------------ *)

type throughput = {
  seconds : float;
  test_cases : int;
  inputs : int;
  cases_per_hour : float;
}

let throughput ?(seconds = 10.) ?(seed = 5L) ?(executor_domains = 1) () =
  let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target1 in
  let cfg = { cfg with Fuzzer.executor_domains } in
  let _, stats = Fuzzer.fuzz cfg ~budget:(Fuzzer.Seconds seconds) in
  {
    seconds = stats.Fuzzer.elapsed_s;
    test_cases = stats.Fuzzer.test_cases;
    inputs = stats.Fuzzer.inputs_tested;
    cases_per_hour =
      float_of_int stats.Fuzzer.test_cases /. stats.Fuzzer.elapsed_s *. 3600.;
  }

(* ------------------------------------------------------------------ *)
(* Port-contention channel (extension)                                 *)
(* ------------------------------------------------------------------ *)

let port_channel_demo ?(seed = 12L) () =
  let with_threat threat = { Target.target5 with Target.threat } in
  List.map
    (fun ((g : Gadgets.t), threat) ->
      let v = run_gadget ~seed Contract.ct_seq (with_threat threat) g in
      (g.Gadgets.name, Attack.threat_to_string threat, v <> None))
    [
      (Gadgets.spectre_v1_ports, Attack.prime_probe);
      (Gadgets.spectre_v1_ports, Attack.port_contention);
      (Gadgets.spectre_v1, Attack.prime_probe);
    ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

type ablation = {
  name : string;
  with_feature : string;
  without_feature : string;
  conclusion : string;
}

let describe = function
  | Some (v : Violation.t) -> "violation (" ^ v.Violation.label ^ ")"
  | None -> "no violation"

let check_gadget_with_executor ?(seed = 6L) contract (target : Target.t)
    executor_cfg g =
  let cfg = Target.fuzzer_config ~seed contract target in
  let cfg = { cfg with Fuzzer.executor = executor_cfg } in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let executor = Executor.create cpu executor_cfg in
  let prng = Prng.create ~seed:(Int64.add seed 1L) in
  let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
  match Fuzzer.check_test_case cfg executor g.Gadgets.program inputs with
  | Ok v -> v
  | Error _ -> None

let ablation_priming ?(seed = 6L) () =
  let base = Executor.default_config () in
  let cold = { base with Executor.reset_between_inputs = true } in
  let with_priming =
    check_gadget_with_executor ~seed Contract.ct_seq Target.target5 base
      Gadgets.spectre_v1_taken
  in
  let without =
    check_gadget_with_executor ~seed Contract.ct_seq Target.target5 cold
      Gadgets.spectre_v1_taken
  in
  {
    name = "priming (sequence context) vs cold state per input";
    with_feature = describe with_priming;
    without_feature = describe without;
    conclusion =
      "without priming the cold predictor never speculates into the taken \
       side, so the V1 leak goes undetected";
  }

let ablation_entropy ?(seed = 7L) () =
  List.map
    (fun entropy ->
      let prng = Prng.create ~seed in
      let gen_cfg =
        { Generator.default_cfg with Generator.subsets = ar_mem_cb }
      in
      let contract = Contract.ct_seq in
      let samples = 30 in
      let total = ref 0 and effective = ref 0 in
      for _ = 1 to samples do
        let prog = Generator.generate prng gen_cfg in
        let inputs = Input.generate_many prng ~entropy ~n:30 in
        match Program.flatten prog with
        | Error _ -> ()
        | Ok flat ->
            let prog = Revizor_emu.Compiled.of_flat flat in
            let results = Model.ctraces contract prog inputs in
            if not (List.exists (fun (r : Model.result) -> r.Model.faulted) results)
            then begin
              let ctraces =
                Array.of_list
                  (List.map (fun (r : Model.result) -> r.Model.ctrace) results)
              in
              let classes = Analyzer.input_classes ctraces in
              total := !total + List.length inputs;
              effective := !effective + Analyzer.effective_inputs classes
            end
      done;
      (entropy, float_of_int !effective /. float_of_int (max 1 !total)))
    [ 1; 2; 4; 8; 16 ]

let ablation_noise_filtering ?(seed = 8L) () =
  (* A compliant target (Target 1) under injected measurement noise: count
     raw trace divergences with and without the union/outlier machinery. *)
  let count_divergences executor_cfg =
    let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target1 in
    let cpu = Cpu.create cfg.Fuzzer.uarch in
    let executor = Executor.create cpu executor_cfg in
    let prng = Prng.create ~seed in
    let divergences = ref 0 in
    for _ = 1 to 30 do
      let prog = Generator.generate prng cfg.Fuzzer.gen_cfg in
      let inputs = Input.generate_many prng ~entropy:2 ~n:20 in
      match Program.flatten prog with
      | Error _ -> ()
      | Ok flat -> (
          let prog = Revizor_emu.Compiled.of_flat flat in
          let results = Model.ctraces Contract.ct_seq prog inputs in
          if not (List.exists (fun (r : Model.result) -> r.Model.faulted) results)
          then
            let ctraces =
              Array.of_list
                (List.map (fun (r : Model.result) -> r.Model.ctrace) results)
            in
            let classes = Analyzer.input_classes ctraces in
            let htraces = Executor.htraces executor prog inputs in
            match Analyzer.find_violation classes htraces with
            | Some _ -> incr divergences
            | None -> ())
    done;
    !divergences
  in
  let noise () = Some { Executor.flip_probability = 0.4; seed = 99L } in
  let filtered =
    { (Executor.default_config ()) with
      Executor.noise = noise (); measurement_reps = 7; outlier_min = 3 }
  in
  let unfiltered =
    { (Executor.default_config ()) with
      Executor.noise = noise (); measurement_reps = 1; outlier_min = 1 }
  in
  let with_f = count_divergences filtered in
  let without_f = count_divergences unfiltered in
  {
    name = "trace union + outlier discard vs single noisy measurement";
    with_feature = Printf.sprintf "%d/30 false divergences" with_f;
    without_feature = Printf.sprintf "%d/30 false divergences" without_f;
    conclusion =
      "repetition with outlier discard suppresses measurement noise that \
       otherwise produces spurious trace divergences on a compliant CPU";
  }

let ablation_equivalence ?(seed = 9L) () =
  (* V1 gadget under CT-COND: speculation is contract-permitted, but it
     executes inconsistently across priming contexts. The subset relation
     absorbs that; strict equality reports a false violation. *)
  let cfg = Target.fuzzer_config ~seed Contract.ct_cond Target.target5 in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let executor = Executor.create cpu cfg.Fuzzer.executor in
  let prng = Prng.create ~seed in
  let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
  let g = Gadgets.spectre_v1 in
  let prog = Revizor_emu.Compiled.of_program_exn g.Gadgets.program in
  let results = Model.ctraces Contract.ct_cond prog inputs in
  let ctraces =
    Array.of_list (List.map (fun (r : Model.result) -> r.Model.ctrace) results)
  in
  let classes = Analyzer.input_classes ctraces in
  let htraces = Executor.htraces executor prog inputs in
  let subset = Analyzer.find_violation ~equivalence:`Subset classes htraces in
  let equal = Analyzer.find_violation ~equivalence:`Equal classes htraces in
  {
    name = "subset-relation trace equivalence vs strict equality";
    with_feature =
      (match subset with Some _ -> "false violation" | None -> "no violation");
    without_feature =
      (match equal with Some _ -> "false violation" | None -> "no violation");
    conclusion =
      "inconsistent speculation across contexts yields subset-related \
       traces; strict equality misreports them as violations";
  }

let ablation_swap_check ?(seed = 10L) () =
  (* Manufacture a context artifact: under strict trace equality the V1
     gadget's mispredict-or-not difference between same-data inputs looks
     like a violation; the swap check recognizes it as context-caused. *)
  let cfg = Target.fuzzer_config ~seed Contract.ct_cond Target.target5 in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let executor = Executor.create cpu cfg.Fuzzer.executor in
  let prng = Prng.create ~seed in
  let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
  let g = Gadgets.spectre_v1 in
  let prog = Revizor_emu.Compiled.of_program_exn g.Gadgets.program in
  let results = Model.ctraces Contract.ct_cond prog inputs in
  let ctraces =
    Array.of_list (List.map (fun (r : Model.result) -> r.Model.ctrace) results)
  in
  let classes = Analyzer.input_classes ctraces in
  let htraces = Executor.htraces executor prog inputs in
  match Analyzer.find_violation ~equivalence:`Equal classes htraces with
  | None ->
      {
        name = "priming swap check vs none";
        with_feature = "no candidate to filter";
        without_feature = "no candidate to filter";
        conclusion = "no context artifact was produced in this run";
      }
  | Some cand ->
      let real =
        Executor.swap_check executor prog inputs cand.Analyzer.index_a
          cand.Analyzer.index_b
      in
      {
        name = "priming swap check vs none";
        with_feature =
          (if real then "kept (unexpected)" else "artifact dismissed");
        without_feature = "false violation reported";
        conclusion =
          "the divergence disappears when the two inputs exchange their \
           positions in the priming sequence, proving it was caused by the \
           microarchitectural context rather than the data";
      }

let ablation_speculation_window ?(seed = 13L) () =
  List.map
    (fun window ->
      let contract =
        Contract.make ~speculation_window:window Contract.Ct Contract.Cond
      in
      let v = run_gadget ~seed contract Target.target5 Gadgets.spectre_v1 in
      (window, v <> None))
    [ 0; 1; 2; 4; 8; 64; 250 ]

let ablation_feedback ?(seed = 11L) () =
  (* Start from a configuration too small to express V1 (a single basic
     block). Only the diversity-feedback growth can reach a detecting
     configuration. *)
  let tiny =
    {
      Generator.default_cfg with
      Generator.n_insts = 4;
      n_blocks = 1;
      subsets = ar_mem_cb;
    }
  in
  let run ~feedback =
    let cfg = Target.fuzzer_config ~seed Contract.ct_seq Target.target5 in
    let cfg =
      {
        cfg with
        Fuzzer.gen_cfg = tiny;
        round_length = (if feedback then 15 else 10_000);
      }
    in
    match Fuzzer.fuzz cfg ~budget:(Fuzzer.Test_cases 400) with
    | Fuzzer.Violation v, stats ->
        Printf.sprintf "violation (%s) after %d test cases" v.Violation.label
          stats.Fuzzer.test_cases
    | Fuzzer.No_violation, stats ->
        Printf.sprintf "no violation in %d test cases" stats.Fuzzer.test_cases
  in
  {
    name = "diversity-guided generator growth vs fixed-size generation";
    with_feature = run ~feedback:true;
    without_feature = run ~feedback:false;
    conclusion =
      "a single-block configuration cannot contain a conditional branch; \
       only the coverage-driven growth reaches programs that can leak";
  }
