open Revizor_isa
open Revizor_uarch
module Json = Revizor_obs.Json
module Metrics = Revizor_obs.Metrics
module Telemetry = Revizor_obs.Telemetry

(* The microarchitectural coverage atlas: the second coverage dimension
   next to {!Coverage}'s instruction patterns. Where pattern coverage is
   a black-box proxy ("did we give the CPU opportunities to speculate"),
   the atlas reads the simulator's own speculation-event record — which
   the executor already collects during normal measurement — and buckets
   it into a bounded feature space. Collection is pure bookkeeping over
   data the measurement produced anyway: no extra simulation runs, and
   nothing feeds back into generation, so fuzzing outcomes are
   bit-identical with collection on or off. *)

let schema = "revizor.ucoverage.v1"
let version = 1

(* Process-global collection switch (mirrors [Executor.set_memo]): the
   atlas never influences the campaign, so the switch only controls
   whether features are harvested and recorded. *)
let collect = ref true
let set_enabled b = collect := b
let enabled () = !collect

(* --- feature space --------------------------------------------------- *)

type origin =
  | O_cond_branch
  | O_ret
  | O_ind_jump
  | O_call
  | O_store
  | O_load
  | O_other

let all_origins =
  [ O_cond_branch; O_ret; O_ind_jump; O_call; O_store; O_load; O_other ]

let origin_to_string = function
  | O_cond_branch -> "cond-branch"
  | O_ret -> "ret"
  | O_ind_jump -> "ind-jump"
  | O_call -> "call"
  | O_store -> "store"
  | O_load -> "load"
  | O_other -> "other"

let origin_of_string s =
  List.find_opt (fun o -> origin_to_string o = s) all_origins

type feature =
  | Kind_origin of Cpu.speculation_kind * origin
  | Window of Cpu.speculation_kind * int
  | Footprint of Cpu.speculation_kind * int
  | Transition of Cpu.speculation_kind * Cpu.speculation_kind
  | Depth of int

let feature_to_string = function
  | Kind_origin (k, o) ->
      Printf.sprintf "kind-origin:%s:%s" (Cpu.kind_to_string k)
        (origin_to_string o)
  | Window (k, b) -> Printf.sprintf "window:%s:%d" (Cpu.kind_to_string k) b
  | Footprint (k, b) ->
      Printf.sprintf "footprint:%s:%d" (Cpu.kind_to_string k) b
  | Transition (a, b) ->
      Printf.sprintf "transition:%s>%s" (Cpu.kind_to_string a)
        (Cpu.kind_to_string b)
  | Depth b -> Printf.sprintf "depth:%d" b

let feature_of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
      let cls = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let split_last_colon r =
        match String.rindex_opt r ':' with
        | None -> None
        | Some j ->
            Some
              ( String.sub r 0 j,
                String.sub r (j + 1) (String.length r - j - 1) )
      in
      match cls with
      | "kind-origin" -> (
          match split_last_colon rest with
          | Some (ks, os) -> (
              match (Cpu.kind_of_string ks, origin_of_string os) with
              | Some k, Some o -> Some (Kind_origin (k, o))
              | _ -> None)
          | None -> None)
      | "window" | "footprint" -> (
          match split_last_colon rest with
          | Some (ks, bs) -> (
              match (Cpu.kind_of_string ks, int_of_string_opt bs) with
              | Some k, Some b ->
                  Some (if cls = "window" then Window (k, b) else Footprint (k, b))
              | _ -> None)
          | None -> None)
      | "transition" -> (
          match String.index_opt rest '>' with
          | None -> None
          | Some j -> (
              let a = String.sub rest 0 j in
              let b = String.sub rest (j + 1) (String.length rest - j - 1) in
              match (Cpu.kind_of_string a, Cpu.kind_of_string b) with
              | Some ka, Some kb -> Some (Transition (ka, kb))
              | _ -> None))
      | "depth" -> Option.map (fun b -> Depth b) (int_of_string_opt rest)
      | _ -> None)

let feature_kind = function
  | Kind_origin (k, _) | Window (k, _) | Footprint (k, _) | Transition (k, _)
    ->
      Some k
  | Depth _ -> None

(* --- harvesting ------------------------------------------------------- *)

(* Classify the instruction that triggered a speculation episode. The
   origin PC indexes the compiled program's descriptors; anything outside
   the listing (should not happen) degrades to [O_other]. *)
let origin_of descs pc =
  if pc < 0 || pc >= Array.length descs then O_other
  else
    let d = descs.(pc) in
    match d.Revizor_emu.Compiled.d_inst.Instruction.opcode with
    | Opcode.Jcc _ -> O_cond_branch
    | Opcode.Ret -> O_ret
    | Opcode.JmpInd -> O_ind_jump
    | Opcode.Call -> O_call
    | _ ->
        if d.Revizor_emu.Compiled.d_stores then O_store
        else if d.Revizor_emu.Compiled.d_loads then O_load
        else O_other

(* Features of one run's event record (in execution order): per episode
   the kind×origin pair, the log2-bucketed speculation-window length
   (transient loads that beat the squash) and transient cache-set
   footprint; per consecutive episode pair the squash-cause transition;
   and the run's speculative burst depth (episodes per run,
   log2-bucketed — the simulated CPU never nests transient episodes, so
   depth here counts the burst, not a nesting level). *)
let features_of_run descs (run : Cpu.event list) acc =
  match run with
  | [] -> acc
  | _ ->
      let rec go acc = function
        | [] -> acc
        | (e : Cpu.event) :: rest ->
            let k = e.Cpu.kind in
            let acc =
              Kind_origin (k, origin_of descs e.Cpu.origin_pc)
              :: Window (k, Metrics.bucket_of e.Cpu.transient_loads)
              :: Footprint (k, Metrics.bucket_of (List.length e.Cpu.touched_sets))
              :: acc
            in
            let acc =
              match rest with
              | (n : Cpu.event) :: _ -> Transition (k, n.Cpu.kind) :: acc
              | [] -> acc
            in
            go acc rest
      in
      go (Depth (Metrics.bucket_of (List.length run)) :: acc) run

let features_of_runs ~descs runs =
  List.sort_uniq Stdlib.compare
    (List.fold_left (fun acc run -> features_of_run descs run acc) [] runs)

let features_of_measurements ~descs (ms : Executor.measurement array) =
  let acc =
    Array.fold_left
      (fun acc (m : Executor.measurement) ->
        List.fold_left
          (fun acc run -> features_of_run descs run acc)
          acc m.Executor.runs)
      [] ms
  in
  List.sort_uniq Stdlib.compare acc

(* --- accumulator ------------------------------------------------------ *)

module FMap = Map.Make (struct
  type t = feature

  let compare = Stdlib.compare
end)

type t = {
  mutable first_hit : int FMap.t;  (** feature -> first-covering test case *)
  mutable frontier : (int * int) list;
      (** (tc, cumulative distinct) at every test case that covered
          something new; most recent first *)
  mutable last_round_distinct : int;
  mutable barren_rounds : int;
  mutable saturation_emitted : bool;
}

let create () =
  {
    first_hit = FMap.empty;
    frontier = [];
    last_round_distinct = 0;
    barren_rounds = 0;
    saturation_emitted = false;
  }

let copy t =
  {
    first_hit = t.first_hit;
    frontier = t.frontier;
    last_round_distinct = t.last_round_distinct;
    barren_rounds = t.barren_rounds;
    saturation_emitted = t.saturation_emitted;
  }

let assign dst ~from =
  dst.first_hit <- from.first_hit;
  dst.frontier <- from.frontier;
  dst.last_round_distinct <- from.last_round_distinct;
  dst.barren_rounds <- from.barren_rounds;
  dst.saturation_emitted <- from.saturation_emitted

let distinct t = FMap.cardinal t.first_hit
let first_hits t = FMap.bindings t.first_hit
let frontier t = List.rev t.frontier

let equal a b =
  FMap.equal ( = ) a.first_hit b.first_hit
  && a.frontier = b.frontier
  && a.last_round_distinct = b.last_round_distinct
  && a.barren_rounds = b.barren_rounds

let rate_per_1k t ~test_cases =
  if test_cases <= 0 then 0.
  else 1000. *. float_of_int (distinct t) /. float_of_int test_cases

let kind_features t k =
  FMap.fold
    (fun f tc acc -> if feature_kind f = Some k then (f, tc) :: acc else acc)
    t.first_hit []
  |> List.rev

(* Per-kind first hit: the earliest test case whose measurement produced
   any feature of that mechanism. *)
let kind_first_hit t k =
  FMap.fold
    (fun f tc acc ->
      if feature_kind f = Some k then
        match acc with Some best when best <= tc -> acc | _ -> Some tc
      else acc)
    t.first_hit None

(* --- metrics / telemetry --------------------------------------------- *)

let g_features = Metrics.gauge "ucov.features"
let g_frontier_tc = Metrics.gauge "ucov.frontier_tc"
let m_frontier = Metrics.counter "ucov.frontier_events"
let m_saturations = Metrics.counter "ucov.saturations"

let kind_gauges =
  List.map
    (fun k -> (k, Metrics.gauge ("ucov.kind." ^ Cpu.kind_to_string k)))
    Cpu.all_kinds

let set_gauges t =
  Metrics.set_gauge g_features (float_of_int (distinct t));
  List.iter
    (fun (k, g) ->
      Metrics.set_gauge g (float_of_int (List.length (kind_features t k))))
    kind_gauges

let register t ~tc features =
  if !collect && features <> [] then begin
    let fresh =
      List.filter (fun f -> not (FMap.mem f t.first_hit)) features
    in
    if fresh <> [] then begin
      List.iter (fun f -> t.first_hit <- FMap.add f tc t.first_hit) fresh;
      t.frontier <- (tc, distinct t) :: t.frontier;
      Metrics.add m_frontier (List.length fresh);
      Metrics.set_gauge g_frontier_tc (float_of_int tc);
      set_gauges t;
      if Telemetry.enabled () then
        List.iter
          (fun f ->
            Telemetry.event "coverage.frontier"
              [
                ("feature", Json.String (feature_to_string f));
                ("tc", Json.Int tc);
                ("features", Json.Int (distinct t));
              ])
          fresh
    end
  end

(* Round-boundary saturation analytics: count consecutive rounds that
   covered nothing new; after [window] barren rounds emit one
   [coverage.saturation] event, re-armed by the next frontier advance. *)
let saturation_window = 3

let note_round t ~round =
  if !collect then begin
    let d = distinct t in
    if d = t.last_round_distinct then
      t.barren_rounds <- t.barren_rounds + 1
    else begin
      t.barren_rounds <- 0;
      t.saturation_emitted <- false
    end;
    t.last_round_distinct <- d;
    if t.barren_rounds >= saturation_window && not t.saturation_emitted then begin
      t.saturation_emitted <- true;
      Metrics.incr m_saturations;
      if Telemetry.enabled () then
        Telemetry.event "coverage.saturation"
          [
            ("round", Json.Int round);
            ("barren_rounds", Json.Int t.barren_rounds);
            ("features", Json.Int d);
          ]
    end
  end

(* --- JSON codec ------------------------------------------------------- *)

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("version", Json.Int version);
      ( "features",
        Json.Obj
          (List.map
             (fun (f, tc) -> (feature_to_string f, Json.Int tc))
             (first_hits t)) );
      ( "frontier",
        Json.List
          (List.map
             (fun (tc, n) -> Json.List [ Json.Int tc; Json.Int n ])
             (frontier t)) );
      ("last_round_distinct", Json.Int t.last_round_distinct);
      ("barren_rounds", Json.Int t.barren_rounds);
      ("saturation_emitted", Json.Bool t.saturation_emitted);
    ]

let ( let* ) = Result.bind

let of_json j =
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_str with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "ucoverage: unknown schema %S" s)
    | None -> Error "ucoverage: missing schema"
  in
  let* first_hit =
    match Json.member "features" j with
    | Some (Json.Obj kvs) ->
        List.fold_left
          (fun acc (name, v) ->
            let* acc = acc in
            match (feature_of_string name, Json.to_int v) with
            | Some f, Some tc -> Ok (FMap.add f tc acc)
            | None, _ -> Error (Printf.sprintf "ucoverage: bad feature %S" name)
            | _, None ->
                Error (Printf.sprintf "ucoverage: bad first-hit for %S" name))
          (Ok FMap.empty) kvs
    | _ -> Error "ucoverage: missing features"
  in
  let* frontier =
    match Json.member "frontier" j with
    | Some (Json.List pts) ->
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            match p with
            | Json.List [ a; b ] -> (
                match (Json.to_int a, Json.to_int b) with
                | Some tc, Some n -> Ok ((tc, n) :: acc)
                | _ -> Error "ucoverage: bad frontier point")
            | _ -> Error "ucoverage: bad frontier point")
          (Ok []) pts
    | _ -> Error "ucoverage: missing frontier"
  in
  let int k ~default =
    Option.value (Option.bind (Json.member k j) Json.to_int) ~default
  in
  Ok
    {
      first_hit;
      frontier;
      last_round_distinct = int "last_round_distinct" ~default:0;
      barren_rounds = int "barren_rounds" ~default:0;
      saturation_emitted =
        (match Json.member "saturation_emitted" j with
        | Some (Json.Bool b) -> b
        | _ -> false);
    }

(* Compact summary for the monitor's [coverage] query and heartbeats. *)
let summary_json t ~test_cases =
  Json.Obj
    [
      ("features", Json.Int (distinct t));
      ("features_per_1k_tc", Json.Float (rate_per_1k t ~test_cases));
      ( "kinds",
        Json.Obj
          (List.filter_map
             (fun k ->
               match kind_first_hit t k with
               | None -> None
               | Some tc ->
                   Some
                     ( Cpu.kind_to_string k,
                       Json.Obj
                         [
                           ( "features",
                             Json.Int (List.length (kind_features t k)) );
                           ("first_hit_tc", Json.Int tc);
                         ] ))
             Cpu.all_kinds) );
      ("barren_rounds", Json.Int t.barren_rounds);
      ("saturated", Json.Bool t.saturation_emitted);
    ]

(* --- merge ------------------------------------------------------------ *)

(* Fleet-side atlas union. First hits take the minimum test-case index
   per feature, which makes the operation commutative, associative and
   idempotent — the orchestrator can fold shard atlases in completion
   order (or re-commit one after a crash) and always land on the same
   merged atlas as a sequential fold over the same shards. The
   saturation-curve state (frontier, barren-round counters) is a
   property of one campaign's timeline and has no cross-shard meaning,
   so the merged atlas carries none: its frontier is empty and its
   round counters are zeroed, with [last_round_distinct] pinned to the
   merged feature count so the result is a pure function of the inputs'
   first-hit maps. *)
let merge a b =
  let first_hit =
    FMap.union (fun _ ta tb -> Some (min ta tb)) a.first_hit b.first_hit
  in
  {
    first_hit;
    frontier = [];
    last_round_distinct = FMap.cardinal first_hit;
    barren_rounds = 0;
    saturation_emitted = false;
  }

(* --- diff ------------------------------------------------------------- *)

(* Features one atlas covers that the other does not — the differential
   CPU-matrix view: which speculation behaviours one config exercises
   that another (e.g. a patched variant) never shows. *)
let diff a b =
  let only l r =
    FMap.fold
      (fun f _ acc -> if FMap.mem f r.first_hit then acc else f :: acc)
      l.first_hit []
    |> List.rev
  in
  (only a b, only b a)

(* --- rendering -------------------------------------------------------- *)

let bucket_range b =
  if b <= 0 then "0"
  else if b = 1 then "1"
  else Printf.sprintf "%d-%d" (Metrics.bucket_lower b) ((1 lsl b) - 1)

let render_kind_table t =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "  %-22s %9s %13s\n" "mechanism" "features" "first hit tc";
  List.iter
    (fun k ->
      match kind_first_hit t k with
      | None -> add "  %-22s %9s %13s\n" (Cpu.kind_to_string k) "-" "-"
      | Some tc ->
          add "  %-22s %9d %13d\n" (Cpu.kind_to_string k)
            (List.length (kind_features t k))
            tc)
    Cpu.all_kinds;
  Buffer.contents buf

let render_report ?test_cases t =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let section name = add "== %s ==\n" name in
  add "Microarchitectural coverage atlas: %d distinct features\n" (distinct t);
  (match test_cases with
  | Some n when n > 0 ->
      add "  %.2f features per 1k test cases (%d test cases)\n"
        (rate_per_1k t ~test_cases:n) n
  | _ -> ());
  if t.barren_rounds > 0 then
    add "  %d consecutive round(s) without new coverage%s\n" t.barren_rounds
      (if t.saturation_emitted then " (saturated)" else "");
  add "\n";
  section "Per-mechanism coverage";
  Buffer.add_string buf (render_kind_table t);
  add "\n";
  let by_class pred name render_row =
    let rows =
      List.filter (fun (f, _) -> pred f) (first_hits t)
    in
    if rows <> [] then begin
      section name;
      List.iter (fun (f, tc) -> render_row f tc) rows;
      add "\n"
    end
  in
  by_class
    (function Kind_origin _ -> true | _ -> false)
    "Mechanism x origin pattern"
    (fun f tc ->
      match f with
      | Kind_origin (k, o) ->
          add "  %-22s at %-12s first tc %d\n" (Cpu.kind_to_string k)
            (origin_to_string o) tc
      | _ -> ());
  by_class
    (function Window _ -> true | _ -> false)
    "Speculation-window buckets (transient loads)"
    (fun f tc ->
      match f with
      | Window (k, b) ->
          add "  %-22s window %-8s first tc %d\n" (Cpu.kind_to_string k)
            (bucket_range b) tc
      | _ -> ());
  by_class
    (function Footprint _ -> true | _ -> false)
    "Transient cache-set footprint buckets"
    (fun f tc ->
      match f with
      | Footprint (k, b) ->
          add "  %-22s sets %-10s first tc %d\n" (Cpu.kind_to_string k)
            (bucket_range b) tc
      | _ -> ());
  by_class
    (function Transition _ -> true | _ -> false)
    "Squash-cause transitions"
    (fun f tc ->
      match f with
      | Transition (a, b) ->
          add "  %-22s -> %-22s first tc %d\n" (Cpu.kind_to_string a)
            (Cpu.kind_to_string b) tc
      | _ -> ());
  by_class
    (function Depth _ -> true | _ -> false)
    "Speculative burst depth buckets (episodes per run)"
    (fun f tc ->
      match f with
      | Depth b -> add "  %-10s episodes  first tc %d\n" (bucket_range b) tc
      | _ -> ());
  section "Saturation curve";
  (match frontier t with
  | [] -> add "  (no coverage recorded)\n"
  | pts ->
      add "  %-12s %s\n" "test case" "cumulative features";
      List.iter (fun (tc, n) -> add "  %-12d %d\n" tc n) pts);
  Buffer.contents buf
