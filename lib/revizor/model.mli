open Revizor_isa
open Revizor_emu

(** The executable contract model (§5.4).

    Executes a test case on the architectural emulator, instrumented with
    a SpecFuzz-style checkpoint stack: instructions with a non-empty
    execution clause trigger an exploration of the mis-speculated path
    (bounded by the contract's speculation window, stopped by serializing
    instructions), after which the state rolls back and normal execution
    resumes. Observations are recorded according to the observation
    clause, on both normal and explored paths. *)

type step_record = {
  s_pc : int;
  s_inst : Instruction.t;
  s_accesses : Semantics.access list;
}
(** One architectural step, kept for the pattern-coverage analysis
    (§5.6) — speculative explorations are not part of the stream. *)

type result = {
  ctrace : Ctrace.t;
  stream : step_record list;  (** architectural execution order *)
  faulted : bool;
      (** the architectural path raised #DE or a sandbox fault; the test
          case must be discarded (CH1 instrumentation failed) *)
}

val run :
  ?max_steps:int ->
  ?watchdog:Watchdog.t ->
  Contract.t ->
  Compiled.t ->
  Input.t ->
  result
(** Collect the contract trace of one (program, input) pair. Faults during
    speculative exploration merely end the exploration; faults on the
    architectural path set [faulted]. [watchdog] (default
    {!Watchdog.default}) bounds the total walked steps — including nested
    speculative re-explorations — and raises {!Watchdog.Pathological} on
    exhaustion. *)

val run_state :
  ?max_steps:int ->
  ?watchdog:Watchdog.t ->
  Contract.t ->
  Compiled.t ->
  State.t ->
  result
(** Like {!run}, but on an already-materialized initial state (mutated in
    place). [run contract prog input] is
    [run_state contract prog (Input.to_state input)]. *)

val batch :
  ?max_steps:int ->
  ?watchdog:Watchdog.t ->
  ?pool:Pool.t ->
  ?stream:[ `All | `First ] ->
  Contract.t ->
  Compiled.t ->
  ?templates:State.t array ->
  Input.t list ->
  result list
(** The batched model stage: specialize a per-test-case closure once
    (contract dispatch, fused straight-line-run metadata, pool decision),
    then invoke it with the full input set. Every input executes on a
    preallocated per-domain scratch state reset in place from its
    template (arena allocation: no per-input state, access-list or
    outcome allocation), with basic-block superinstruction fusion and
    dead-flag elision on the hot path. Results are bit-identical to
    mapping {!run_state} over the inputs — same ctraces, same faults,
    same order — for every pool size.

    [stream] selects instruction-stream recording: [`All] (default)
    records every input's stream like {!run}; [`First] records only
    input 0 (all the fuzzer's pattern analysis needs) and runs the rest
    allocation-free. *)

val ctraces :
  ?max_steps:int ->
  ?watchdog:Watchdog.t ->
  ?templates:State.t array ->
  ?stream:[ `All | `First ] ->
  Contract.t ->
  Compiled.t ->
  Input.t list ->
  result list
(** Contract traces for each input in order ([batch] without a pool).
    When [templates] (from {!Input.templates} or {!Arena.templates},
    indexed like the list) is given, each run starts from a blit-restore
    of the corresponding template instead of re-deriving the state from
    the input's PRNG seed. *)

val ctraces_par :
  ?max_steps:int ->
  ?watchdog:Watchdog.t ->
  ?templates:State.t array ->
  ?stream:[ `All | `First ] ->
  Pool.t ->
  Contract.t ->
  Compiled.t ->
  Input.t list ->
  result list
(** {!ctraces} with the independent per-input runs fanned out over a
    domain pool. The result is identical (same values, same order) for
    every pool size; a pool of size 1 takes the exact sequential
    {!ctraces} path. *)
