open Revizor_uarch
module Metrics = Revizor_obs.Metrics
module Telemetry = Revizor_obs.Telemetry
module Faultpoint = Revizor_obs.Faultpoint
module Json = Revizor_obs.Json

(* Measurement-volume and noise-filter attribution counters: how many
   hardware runs a campaign really paid for, and how often the injected
   noise model perturbed a trace (the counts the outlier filter has to
   absorb). *)
let m_measures = Metrics.counter "executor.measures"
let m_reps = Metrics.counter "executor.measurement_reps"
let m_warmups = Metrics.counter "executor.warmup_rounds"
let m_sequences = Metrics.counter "executor.sequences"
let m_input_runs = Metrics.counter "executor.input_runs"
let m_memo_hits = Metrics.counter "executor.memo_hits"
let m_swap_measures = Metrics.counter "executor.swap_measurements"
let m_noise_added = Metrics.counter "executor.noise.added"
let m_noise_dropped = Metrics.counter "executor.noise.dropped"
let m_noise_storms = Metrics.counter "executor.noise.storms"
let m_adaptive = Metrics.counter "executor.adaptive_escalations"

(* Fault points (DESIGN.md §8): [executor.measure] makes a whole
   measurement blow up (the fuzz loop absorbs it); [executor.noise_storm]
   sprays deterministic spurious observations into individual traces so
   the outlier filter and the adaptive-repetition ladder are exercised. *)
let fp_measure = Faultpoint.point "executor.measure"
let fp_storm = Faultpoint.point "executor.noise_storm"

(* Keyed noise (DESIGN.md §6): instead of drawing from one sequential
   PRNG — whose draw positions would couple every measurement to every
   measurement before it — each perturbation decision is drawn from a
   stream derived with splitmix64 from [seed] and the measurement's
   coordinates (test case, measurement epoch within the test case,
   sequence pass, input index). A draw is addressed, not consumed from a
   shared sequence, so traces are bit-identical for any executor domain
   count, any scheduling order, and independent of how many measurements
   were skipped by memoization. *)
type noise = { flip_probability : float; seed : int64 }

(* Bounded adaptive retry (§5.3 spirit: the executor buys signal with
   repetitions): when the outlier filter is rejecting more than
   [reject_ratio] of the distinct observations, double the repetitions —
   capped at [max_total_reps] — before settling. Off by default; with it
   off, measurement behavior is bit-identical to the pre-adaptive
   executor. *)
type adaptive = { reject_ratio : float; max_total_reps : int }

type config = {
  threat : Attack.threat;
  warmup_rounds : int;
  measurement_reps : int;
  outlier_min : int;
  noise : noise option;
  adaptive : adaptive option;
  max_steps : int;
  reset_between_inputs : bool;
}

let default_config ?(threat = Attack.prime_probe) () =
  {
    threat;
    warmup_rounds = 1;
    measurement_reps = 3;
    outlier_min = 2;
    noise = None;
    adaptive = None;
    max_steps = 20000;
    reset_between_inputs = false;
  }

(* Master switch for measurement memoization (below). Global because the
   differential tests need to compare whole fuzzing campaigns — which
   build their executors internally — with the optimization on and off. *)
let memo_enabled = ref true
let set_memo b = memo_enabled := b

type t = {
  cpu : Cpu.t;
  cfg : config;
  scratch : Revizor_emu.State.t;
  (* Per-measurement scratch reused across [measure] calls: the occurrence
     count matrix and the per-input event accumulator. Grown on demand and
     reset in place, so the steady-state measurement loop allocates
     nothing per call. Row width is fixed by the config's threat mode. *)
  mutable counts : int array array;
  mutable ev_acc : Cpu.event list list array;
  (* Measurement coordinates for keyed noise: the current test case, the
     measurement epoch within it, and the sequence pass within the
     current measurement. Set by the fuzz loop via [set_context]; a
     standalone executor keeps tc 0, which is just as deterministic. *)
  mutable ctx_tc : int;
  mutable ctx_measure : int;
  mutable ctx_seq : int;
  (* Measurement memoization (sound replay of repeated runs): a run of
     input slot [idx] can be skipped when (a) the same physical template
     is in that slot, (b) the predictor mark now equals the mark before
     the recorded run, and (c) the recorded run itself left the mark
     unchanged — together these guarantee the run would start from
     bit-identical microarchitectural state and reproduce the recorded
     trace exactly (the cache, fill buffer and page bits are
     re-established canonically before every real run; predictors are the
     only cross-run carrier, see [Cpu.mark]). Only entries whose run did
     NOT move the mark are ever saved, so a hit also needs no state
     installation. Valid flags are cleared at every [measure] entry:
     entries never survive into a different measurement (arena-pooled
     states are refilled between test cases, swap checks permute the
     template array). Restricted to Prime+Probe / Evict+Reload, whose
     preparation canonicalizes the whole cache; Flush+Reload only evicts
     the monitored lines and Port+Contention leaves the cache untouched,
     so for those the cache does carry cross-run state. *)
  memo_ok : bool;
  mutable memo_valid : bool array;
  mutable memo_tpl : Revizor_emu.State.t array;
  mutable memo_mark : Cpu.mark array;
  mutable memo_trace : Htrace.t array;
  mutable memo_events : Cpu.event list array;
}

let create cpu cfg =
  {
    cpu;
    cfg;
    scratch = Revizor_emu.State.create ();
    counts = [||];
    ev_acc = [||];
    ctx_tc = 0;
    ctx_measure = 0;
    ctx_seq = 0;
    memo_ok =
      (match cfg.threat.Attack.mode with
      | Attack.Prime_probe | Attack.Evict_reload -> true
      | Attack.Flush_reload | Attack.Port_contention -> false)
      && not cfg.reset_between_inputs;
    memo_valid = [||];
    memo_tpl = [||];
    memo_mark = [||];
    memo_trace = [||];
    memo_events = [||];
  }

let cpu t = t.cpu
let config t = t.cfg

let set_context t ~tc =
  t.ctx_tc <- tc;
  t.ctx_measure <- 0

type measurement = {
  htrace : Htrace.t;
  kinds : Cpu.speculation_kind list;
  events : (Cpu.speculation_kind * Htrace.t) list;
  runs : Cpu.event list list;
}

let apply_noise t ~idx trace =
  match t.cfg.noise with
  | None -> trace
  | Some n ->
      let rng =
        Prng.derive n.seed
          [
            Int64.of_int t.ctx_tc;
            Int64.of_int t.ctx_measure;
            Int64.of_int t.ctx_seq;
            Int64.of_int idx;
          ]
      in
      let domain = Attack.trace_domain t.cfg.threat.Attack.mode in
      let trace = ref trace in
      (* Possibly add one spurious observation... *)
      if Float.of_int (Prng.int rng 1_000_000) /. 1_000_000. < n.flip_probability
      then begin
        Metrics.incr m_noise_added;
        trace := Htrace.add (Prng.int rng domain) !trace
      end;
      (* ... and possibly drop one real one. *)
      if
        (not (Htrace.is_empty !trace))
        && Float.of_int (Prng.int rng 1_000_000) /. 1_000_000.
           < n.flip_probability
      then begin
        Metrics.incr m_noise_dropped;
        (* k-th smallest element straight off the bitset: no element-list
           materialization, no O(n²) [List.nth] walk. *)
        let victim = Htrace.nth !trace (Prng.int rng (Htrace.cardinal !trace)) in
        trace := Htrace.diff !trace (Htrace.singleton victim)
      end;
      !trace

(* Synthetic noise storm: when the armed schedule fires, spray a burst of
   spurious observations derived from the hit's own hash — deterministic
   under the fault seed, different across repetitions, so the outlier
   filter sees exactly the kind of transient garbage a noisy co-tenant
   produces. *)
let apply_storm cfg trace =
  match Faultpoint.fire_value fp_storm with
  | None -> trace
  | Some bits ->
      Metrics.incr m_noise_storms;
      let domain = Attack.trace_domain cfg.threat.Attack.mode in
      let t = ref trace in
      for j = 0 to 5 do
        let chunk =
          Int64.to_int (Int64.logand (Int64.shift_right_logical bits (j * 10)) 0x3FFL)
        in
        t := Htrace.add (chunk mod domain) !t
      done;
      !t

let last_data_word =
  Int64.add Revizor_emu.Layout.sandbox_base
    (Int64.of_int
       ((Revizor_emu.Layout.data_pages * Revizor_emu.Layout.page_size) - 8))

(* One pass over the input sequence; the CPU session is NOT reset, so
   predictors carry over from input to input (priming). Each input's
   state was materialized once into [templates]; every run blit-restores
   the template into the executor's scratch state instead of re-deriving
   the PRNG stream (a sequence runs many times: warm-up rounds,
   measurement repetitions and swap-check re-measurements).

   When [memo] is on, a run whose preconditions provably match a recorded
   run of the same slot is replayed from the memo instead of executed —
   see the soundness argument on the memo fields above. The [record]
   callback receives the RAW trace; perturbations (noise, storms) are the
   caller's business, which keeps memoized and real runs on the same
   path. Events are computed even for event-discarding passes on a memoed
   miss, so a later hit can replay them. *)
let run_sequence ?(with_events = true) ?(memo = false) t flat
    (templates : Revizor_emu.State.t array) ~record =
  Metrics.incr m_sequences;
  t.ctx_seq <- t.ctx_seq + 1;
  let hits = ref 0 in
  Array.iteri
    (fun idx template ->
      if
        memo
        && t.memo_valid.(idx)
        && t.memo_tpl.(idx) == template
        && Cpu.mark_matches t.cpu t.memo_mark.(idx)
      then begin
        incr hits;
        record idx t.memo_trace.(idx) t.memo_events.(idx)
      end
      else begin
        if t.cfg.reset_between_inputs then Cpu.reset_session t.cpu;
        Revizor_emu.State.copy_into template ~dst:t.scratch;
        (* Loading the input into the sandbox moves the input's own data
           through the memory system: the fill buffers hold it
           afterwards. *)
        Cpu.set_fill_buffer t.cpu
          (Revizor_emu.Memory.read template.Revizor_emu.State.mem
             ~addr:last_data_word Revizor_isa.Width.W64);
        (* Cheap: two version ints plus the RSB list head. *)
        let before = Cpu.mark t.cpu in
        let trace =
          Attack.observe t.cpu t.cfg.threat (fun () ->
              Cpu.run ~max_steps:t.cfg.max_steps t.cpu flat t.scratch)
        in
        let events =
          (* keep every episode whole — kind, origin PC, transient-load
             count, touched sets — for mechanism labelling and the
             coverage atlas; the measurement result collapses them to
             (kind, touched-set) pairs at the end. Skipped for rounds
             whose record callback discards them (warm-up) — unless the
             memo may need to replay them later. *)
          if with_events || memo then Cpu.events t.cpu else []
        in
        (if memo then
           if Cpu.mark_matches t.cpu before then begin
             t.memo_valid.(idx) <- true;
             t.memo_tpl.(idx) <- template;
             t.memo_mark.(idx) <- before;
             t.memo_trace.(idx) <- trace;
             t.memo_events.(idx) <- events
           end
           else t.memo_valid.(idx) <- false);
        record idx trace events
      end)
    templates;
  Metrics.add m_input_runs (Array.length templates - !hits);
  if !hits > 0 then Metrics.add m_memo_hits !hits

let templates_of inputs = function
  | Some tpl -> tpl
  | None -> Input.templates inputs

(* Make rows [0, n) of the cached measurement buffers available and
   zeroed. Only those rows are ever read afterwards. *)
let ensure_buffers t ~n ~domain =
  let cap = Array.length t.counts in
  if cap < n then begin
    let ncap = max n (max 8 (2 * cap)) in
    t.counts <-
      Array.init ncap (fun i ->
          if i < cap then t.counts.(i) else Array.make domain 0);
    t.ev_acc <- Array.make ncap []
  end;
  for i = 0 to n - 1 do
    Array.fill t.counts.(i) 0 domain 0;
    t.ev_acc.(i) <- []
  done;
  if t.memo_ok then begin
    if Array.length t.memo_valid < n then begin
      let ncap = Array.length t.counts in
      t.memo_valid <- Array.make ncap false;
      t.memo_tpl <- Array.make ncap t.scratch;
      t.memo_mark <- Array.make ncap (Cpu.mark t.cpu);
      t.memo_trace <- Array.make ncap Htrace.empty;
      t.memo_events <- Array.make ncap []
    end;
    (* No memo entry survives into a new measurement. *)
    Array.fill t.memo_valid 0 (Array.length t.memo_valid) false
  end

let measure ?templates t flat inputs =
  Faultpoint.fire fp_measure;
  t.ctx_measure <- t.ctx_measure + 1;
  t.ctx_seq <- 0;
  let templates = templates_of inputs templates in
  let n = Array.length templates in
  Metrics.incr m_measures;
  Metrics.add m_warmups t.cfg.warmup_rounds;
  Cpu.reset_session t.cpu;
  let domain = Attack.trace_domain t.cfg.threat.Attack.mode in
  ensure_buffers t ~n ~domain;
  let memo = t.memo_ok && !memo_enabled in
  for _ = 1 to t.cfg.warmup_rounds do
    run_sequence ~with_events:false ~memo t flat templates
      ~record:(fun _ _ _ -> ())
  done;
  (* Per-input occurrence counts over the (small, dense) trace domain: a
     flat increment per observation instead of an assoc-list rebuild. *)
  let counts = t.counts in
  (* Per-rep event lists are consed and concatenated once at the end;
     appending with [@] here would rebuild the accumulated list on every
     repetition (quadratic in reps). *)
  let events = t.ev_acc in
  let base_reps = max 1 t.cfg.measurement_reps in
  let reps_done = ref 0 in
  let run_reps k =
    Metrics.add m_reps k;
    for _ = 1 to k do
      run_sequence ~memo t flat templates ~record:(fun idx trace evs ->
          (* Perturbations apply to recorded repetitions only, after the
             memo: a warm-up trace is discarded anyway, and keyed draws
             don't need the historical draw order preserved. *)
          let trace = apply_noise t ~idx trace in
          let trace = apply_storm t.cfg trace in
          let row = counts.(idx) in
          Htrace.iter (fun o -> row.(o) <- row.(o) + 1) trace;
          events.(idx) <- evs :: events.(idx))
    done;
    reps_done := !reps_done + k
  in
  run_reps base_reps;
  (* The outlier threshold scales with the repetitions actually run, so
     escalation raises the bar for sparse (noise-like) observations while
     genuine signals — present every rep — sail over it. At the base rep
     count this reduces exactly to the fixed pre-adaptive threshold. *)
  let threshold_for r =
    if t.cfg.measurement_reps >= 3 then
      max t.cfg.outlier_min (r * t.cfg.outlier_min / base_reps)
    else 1
  in
  (match t.cfg.adaptive with
  | None -> ()
  | Some a ->
      let reject_ratio () =
        let thr = threshold_for !reps_done in
        let observed = ref 0 and rejected = ref 0 in
        (* Only the first [n] rows belong to this measurement — the cached
           matrix may be wider than the current input set. *)
        for i = 0 to n - 1 do
          Array.iter
            (fun c ->
              if c > 0 then begin
                incr observed;
                if c < thr then incr rejected
              end)
            counts.(i)
        done;
        if !observed = 0 then 0.
        else float_of_int !rejected /. float_of_int !observed
      in
      let continue_ = ref true in
      while
        !continue_
        && !reps_done < a.max_total_reps
        && reject_ratio () > a.reject_ratio
      do
        (* Capped doubling: each escalation re-runs as many reps as have
           been run so far, until the total cap. *)
        let extra = min !reps_done (a.max_total_reps - !reps_done) in
        if extra <= 0 then continue_ := false
        else begin
          Metrics.incr m_adaptive;
          if Telemetry.enabled () then
            Telemetry.event "executor.adaptive_reps"
              [
                ("reps_done", Json.Int !reps_done);
                ("extra", Json.Int extra);
              ];
          run_reps extra
        end
      done);
  let threshold = threshold_for !reps_done in
  Array.init n (fun idx ->
      let htrace = ref Htrace.empty in
      Array.iteri
        (fun o c -> if c >= threshold then htrace := Htrace.add o !htrace)
        counts.(idx);
      let runs = events.(idx) in
      let evs =
        List.sort_uniq Stdlib.compare
          (List.concat_map
             (List.map (fun (e : Cpu.event) ->
                  (e.Cpu.kind, Htrace.of_list e.Cpu.touched_sets)))
             runs)
      in
      let ks = List.sort_uniq Stdlib.compare (List.map fst evs) in
      { htrace = !htrace; kinds = ks; events = evs; runs })

let htraces ?templates t flat inputs =
  Array.map (fun m -> m.htrace) (measure ?templates t flat inputs)

(* Forensic replay: one primed pass capturing the full speculation-event
   record per input. Mirrors [measure]'s structure (session reset,
   warm-up passes, then one recorded pass) but keeps [Cpu.event] whole —
   origin PC and transient-load counts included — where the measurement
   path collapses events to (kind, touched-set) pairs. No noise, no
   storms, no memoization: the flight recorder wants the mechanism
   timeline, not a faithful reproduction of the measurement pipeline,
   and it runs on a fresh executor after the campaign has already
   decided the verdict. *)
let record_events ?templates t flat inputs =
  let templates = templates_of inputs templates in
  Cpu.reset_session t.cpu;
  let run_pass record =
    Array.iteri
      (fun idx template ->
        if t.cfg.reset_between_inputs then Cpu.reset_session t.cpu;
        Revizor_emu.State.copy_into template ~dst:t.scratch;
        Cpu.set_fill_buffer t.cpu
          (Revizor_emu.Memory.read template.Revizor_emu.State.mem
             ~addr:last_data_word Revizor_isa.Width.W64);
        let trace =
          Attack.observe t.cpu t.cfg.threat (fun () ->
              Cpu.run ~max_steps:t.cfg.max_steps t.cpu flat t.scratch)
        in
        record idx trace (Cpu.events t.cpu))
      templates
  in
  for _ = 1 to t.cfg.warmup_rounds do
    run_pass (fun _ _ _ -> ())
  done;
  let out = Array.make (Array.length templates) (Htrace.empty, []) in
  run_pass (fun idx trace events -> out.(idx) <- (trace, events));
  out

let swap_check ?templates ?base t flat inputs a b =
  Metrics.incr m_swap_measures;
  let templates = templates_of inputs templates in
  (* Every measurement — noisy or not — is a pure function of (templates,
     session reset, measurement coordinates) now that noise draws are
     keyed rather than sequential, so the unswapped baseline the caller
     has already measured can always be reused verbatim, and the second
     swapped measurement can be skipped as soon as the first one refutes
     the artifact hypothesis. *)
  let base =
    match base with
    | Some h -> h
    | None -> htraces ~templates t flat inputs
  in
  (* i_b measured in i_a's context slot... *)
  let seq_b_at_a = Array.copy templates in
  seq_b_at_a.(a) <- templates.(b);
  let m1 = htraces ~templates:seq_b_at_a t flat inputs in
  (* ... and i_a measured in i_b's context slot. *)
  let m2_agrees () =
    let seq_a_at_b = Array.copy templates in
    seq_a_at_b.(b) <- templates.(a);
    let m2 = htraces ~templates:seq_a_at_b t flat inputs in
    Htrace.comparable m2.(b) base.(b)
  in
  (* Artifact iff swapping contexts makes the traces agree both ways. *)
  let artifact = Htrace.comparable m1.(a) base.(a) && m2_agrees () in
  not artifact
