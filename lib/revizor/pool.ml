(* A small reusable domain pool for intra-test-case parallelism, with
   supervision (DESIGN.md §8).

   [size - 1] worker domains block on a task queue; the submitting domain
   participates in the work itself, so a pool of size 1 spawns nothing and
   degenerates to plain sequential execution. Work items are index ranges
   handed out through an atomic counter, which keeps the scheduling
   deterministic-by-index: results land in slot [i] no matter which domain
   computed them.

   Supervision: a participant that crashes in the pool harness itself
   (modelled by the [pool.worker] fault point; in real life a domain
   blowing up outside the user function) parks its claimed index on a
   failure list and stops draining. The submitting domain doubles as the
   supervisor — after its own drain it retries parked indices itself (a
   surviving worker), so every item completes and [map_array]'s result is
   identical to the sequential map. After [max_failures] crashes the pool
   permanently degrades to sequential execution; the degradation is a
   metrics counter and telemetry event, not a campaign abort. *)

module Metrics = Revizor_obs.Metrics
module Telemetry = Revizor_obs.Telemetry
module Faultpoint = Revizor_obs.Faultpoint
module Json = Revizor_obs.Json

type t = {
  size : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  failures : int Atomic.t;  (* worker crashes over the pool's lifetime *)
  max_failures : int;
  degraded : bool Atomic.t;
  task_counters : Metrics.counter array;
      (* per-participant utilization: slot 0 is the submitting domain,
         slots 1.. are the workers; [pool.domain<i>.tasks] in the
         registry. Inherently scheduling-dependent, hence excluded from
         the cross-domain determinism guarantees. *)
}

(* Which pool slot the current domain occupies, for utilization
   accounting: workers set their slot once at spawn; the submitting
   domain re-asserts slot 0 on every [map_array]. *)
let slot_key = Domain.DLS.new_key (fun () -> 0)

let m_map_calls = Metrics.counter "pool.map_calls"
let m_items = Metrics.counter "pool.items"
let m_crashes = Metrics.counter "pool.worker_crashes"
let m_retried = Metrics.counter "pool.retried_items"
let m_degradations = Metrics.counter "pool.degradations"

let fp_worker = Faultpoint.point "pool.worker"

let record_crash p =
  Metrics.incr m_crashes;
  let n = Atomic.fetch_and_add p.failures 1 + 1 in
  if Telemetry.enabled () then
    Telemetry.event "pool.worker_crash" [ ("failures", Json.Int n) ];
  if n >= p.max_failures && not (Atomic.exchange p.degraded true) then begin
    Metrics.incr m_degradations;
    if Telemetry.enabled () then
      Telemetry.event "pool.degraded" [ ("after_failures", Json.Int n) ]
  end

let worker p =
  let rec loop () =
    Mutex.lock p.lock;
    while Queue.is_empty p.queue && not p.stopped do
      Condition.wait p.nonempty p.lock
    done;
    if Queue.is_empty p.queue then Mutex.unlock p.lock (* stopped *)
    else begin
      let task = Queue.pop p.queue in
      Mutex.unlock p.lock;
      (* A drain task never lets exceptions escape (crashes are parked on
         the failure list), but an unexpected one must not kill the
         domain: the pool would silently lose parallelism. *)
      (try task () with _ -> record_crash p);
      loop ()
    end
  in
  loop ()

let create ?(max_failures = 8) size =
  let size = max 1 size in
  let p =
    {
      size;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      workers = [];
      failures = Atomic.make 0;
      max_failures = max 1 max_failures;
      degraded = Atomic.make false;
      task_counters =
        Array.init size (fun i ->
            Metrics.counter (Printf.sprintf "pool.domain%d.tasks" i));
    }
  in
  if size > 1 then
    p.workers <-
      List.init (size - 1) (fun i ->
          Domain.spawn (fun () ->
              Domain.DLS.set slot_key (i + 1);
              worker p));
  p

let size p = p.size
let failures p = Atomic.get p.failures
let is_degraded p = Atomic.get p.degraded

let submit p task =
  Mutex.lock p.lock;
  Queue.push task p.queue;
  Condition.signal p.nonempty;
  Mutex.unlock p.lock

let map_array p f arr =
  let n = Array.length arr in
  if p.size <= 1 || n <= 1 || Atomic.get p.degraded then Array.map f arr
  else begin
    Domain.DLS.set slot_key 0;
    Metrics.incr m_map_calls;
    Metrics.add m_items n;
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let remaining = Atomic.make n in
    (* Completion barrier: the last finisher signals instead of every
       waiter spinning on [remaining] (a large model stage would otherwise
       burn a core busy-waiting). The same lock/condition also wakes the
       supervisor when a crashed participant parks an index. *)
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    let parked = ref [] in
    let complete i outcome =
      results.(i) <- Some outcome;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_lock;
        Condition.signal all_done;
        Mutex.unlock done_lock
      end
    in
    let park i =
      Mutex.lock done_lock;
      parked := i :: !parked;
      Condition.signal all_done;
      Mutex.unlock done_lock
    in
    (* [f]'s own exceptions are captured per item and re-raised after the
       barrier so a failing task cannot deadlock the pool; a harness
       crash instead parks the claimed index for the supervisor. *)
    let process i =
      complete i (match f arr.(i) with v -> Ok v | exception e -> Error e);
      Metrics.incr p.task_counters.(Domain.DLS.get slot_key)
    in
    (* Every participant drains indices until none are left or it
       crashes. *)
    let drain () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else if Faultpoint.should_fire fp_worker then begin
          (* Simulated domain crash: the claimed item is recovered by the
             supervisor; this participant is gone for the rest of the
             call. *)
          record_crash p;
          park i;
          continue := false
        end
        else process i
      done
    in
    (* Recovery drain for the supervisor: claims like [drain] but never
       consults the fault point — the supervisor context is the recovery
       path, and it must make progress even when every schedule entry
       says "crash". *)
    let drain_unclaimed () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false else process i
      done
    in
    for _ = 1 to min (p.size - 1) (n - 1) do
      submit p drain
    done;
    drain ();
    (* Supervision loop: retry parked indices and adopt any indices left
       unclaimed by crashed participants (including this domain's own
       simulated crash), until every slot is filled. *)
    Mutex.lock done_lock;
    while Atomic.get remaining > 0 do
      match !parked with
      | [] ->
          if Atomic.get next < n then begin
            (* Participants died before claiming everything: the
               supervisor finishes the sweep itself. *)
            Mutex.unlock done_lock;
            drain_unclaimed ();
            Mutex.lock done_lock
          end
          else Condition.wait all_done done_lock
      | is ->
          parked := [];
          Mutex.unlock done_lock;
          List.iter
            (fun i ->
              Metrics.incr m_retried;
              process i)
            (List.rev is);
          Mutex.lock done_lock
    done;
    Mutex.unlock done_lock;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let shutdown p =
  if p.workers <> [] then begin
    Mutex.lock p.lock;
    p.stopped <- true;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.lock;
    List.iter Domain.join p.workers;
    p.workers <- []
  end
