(* A small reusable domain pool for intra-test-case parallelism.

   [size - 1] worker domains block on a task queue; the submitting domain
   participates in the work itself, so a pool of size 1 spawns nothing and
   degenerates to plain sequential execution. Work items are index ranges
   handed out through an atomic counter, which keeps the scheduling
   deterministic-by-index: results land in slot [i] no matter which domain
   computed them. *)

type t = {
  size : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  task_counters : Revizor_obs.Metrics.counter array;
      (* per-participant utilization: slot 0 is the submitting domain,
         slots 1.. are the workers; [pool.domain<i>.tasks] in the
         registry. Inherently scheduling-dependent, hence excluded from
         the cross-domain determinism guarantees. *)
}

(* Which pool slot the current domain occupies, for utilization
   accounting: workers set their slot once at spawn; the submitting
   domain re-asserts slot 0 on every [map_array]. *)
let slot_key = Domain.DLS.new_key (fun () -> 0)

let m_map_calls = Revizor_obs.Metrics.counter "pool.map_calls"
let m_items = Revizor_obs.Metrics.counter "pool.items"

let worker p =
  let rec loop () =
    Mutex.lock p.lock;
    while Queue.is_empty p.queue && not p.stopped do
      Condition.wait p.nonempty p.lock
    done;
    if Queue.is_empty p.queue then Mutex.unlock p.lock (* stopped *)
    else begin
      let task = Queue.pop p.queue in
      Mutex.unlock p.lock;
      task ();
      loop ()
    end
  in
  loop ()

let create size =
  let size = max 1 size in
  let p =
    {
      size;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      workers = [];
      task_counters =
        Array.init size (fun i ->
            Revizor_obs.Metrics.counter (Printf.sprintf "pool.domain%d.tasks" i));
    }
  in
  if size > 1 then
    p.workers <-
      List.init (size - 1) (fun i ->
          Domain.spawn (fun () ->
              Domain.DLS.set slot_key (i + 1);
              worker p));
  p

let size p = p.size

let submit p task =
  Mutex.lock p.lock;
  Queue.push task p.queue;
  Condition.signal p.nonempty;
  Mutex.unlock p.lock

let map_array p f arr =
  let n = Array.length arr in
  if p.size <= 1 || n <= 1 then Array.map f arr
  else begin
    Domain.DLS.set slot_key 0;
    Revizor_obs.Metrics.incr m_map_calls;
    Revizor_obs.Metrics.add m_items n;
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let remaining = Atomic.make n in
    (* Completion barrier: the last finisher signals instead of every
       waiter spinning on [remaining] (a large model stage would otherwise
       burn a core busy-waiting). *)
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    (* Every participant drains indices until none are left; exceptions
       are captured per item and re-raised after the barrier so a failing
       task cannot deadlock the pool. *)
    let drain () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else begin
          (results.(i) <-
             (match f arr.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error e)));
          Revizor_obs.Metrics.incr p.task_counters.(Domain.DLS.get slot_key);
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            Mutex.lock done_lock;
            Condition.signal all_done;
            Mutex.unlock done_lock
          end
        end
      done
    in
    for _ = 1 to min (p.size - 1) (n - 1) do
      submit p drain
    done;
    drain ();
    Mutex.lock done_lock;
    while Atomic.get remaining > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let shutdown p =
  if p.workers <> [] then begin
    Mutex.lock p.lock;
    p.stopped <- true;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.lock;
    List.iter Domain.join p.workers;
    p.workers <- []
  end
