(* A small reusable domain pool for intra-test-case parallelism, with
   supervision (DESIGN.md §8).

   [size - 1] worker domains block on a task queue; the submitting domain
   participates in the work itself, so a pool of size 1 spawns nothing and
   degenerates to plain sequential execution. Work items are index ranges
   handed out through an atomic counter, which keeps the scheduling
   deterministic-by-index: results land in slot [i] no matter which domain
   computed them.

   Supervision: a participant that crashes in the pool harness itself
   (modelled by the [pool.worker] fault point; in real life a domain
   blowing up outside the user function) parks its claimed index on a
   failure list and stops draining. The submitting domain doubles as the
   supervisor — after its own drain it retries parked indices itself (a
   surviving worker), so every item completes and [map_array]'s result is
   identical to the sequential map. After [max_failures] crashes the pool
   permanently degrades to sequential execution; the degradation is a
   metrics counter and telemetry event, not a campaign abort. *)

module Metrics = Revizor_obs.Metrics
module Telemetry = Revizor_obs.Telemetry
module Faultpoint = Revizor_obs.Faultpoint
module Json = Revizor_obs.Json
module Clock = Revizor_obs.Clock

(* The per-call work state lives in one record reused across [map_array]
   calls, so the hot path allocates no fresh atomics, locks or drain
   closures per call — only the single [j_run] closure binding the call's
   own [f]/input array/result slots. The claim counter [j_next] packs the
   job epoch in its high bits (see [drain]) so stale drain tasks left in
   the queue by a previous call can never steal indices from the current
   one. *)
type job = {
  j_epoch : int Atomic.t;  (* bumped at the start of every map_array *)
  j_next : int Atomic.t;  (* packed [epoch lsl epoch_bits lor index] *)
  j_remaining : int Atomic.t;
  j_lock : Mutex.t;
  j_done : Condition.t;
  mutable j_parked : int list;
  mutable j_n : int;
  mutable j_run : int -> unit;
}

type t = {
  size : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  failures : int Atomic.t;  (* worker crashes over the pool's lifetime *)
  max_failures : int;
  degraded : bool Atomic.t;
  job : job;
  mutable drain_task : unit -> unit;
      (* the one drain closure every map_array submits *)
  task_counters : Metrics.counter array;
      (* per-participant utilization: slot 0 is the submitting domain,
         slots 1.. are the workers; [pool.domain<i>.tasks] in the
         registry. Inherently scheduling-dependent, hence excluded from
         the cross-domain determinism guarantees. *)
}

(* Which pool slot the current domain occupies, for utilization
   accounting: workers set their slot once at spawn; the submitting
   domain re-asserts slot 0 on every [map_array]. *)
let slot_key = Domain.DLS.new_key (fun () -> 0)

let m_map_calls = Metrics.counter "pool.map_calls"
let m_items = Metrics.counter "pool.items"
let m_crashes = Metrics.counter "pool.worker_crashes"
let m_retried = Metrics.counter "pool.retried_items"
let m_degradations = Metrics.counter "pool.degradations"
let h_task_ns = Metrics.histogram "pool.task_ns"

let fp_worker = Faultpoint.point "pool.worker"

let epoch_bits = 32
let index_mask = (1 lsl epoch_bits) - 1

let record_crash p =
  Metrics.incr m_crashes;
  let n = Atomic.fetch_and_add p.failures 1 + 1 in
  if Telemetry.enabled () then
    Telemetry.event "pool.worker_crash" [ ("failures", Json.Int n) ];
  if n >= p.max_failures && not (Atomic.exchange p.degraded true) then begin
    Metrics.incr m_degradations;
    if Telemetry.enabled () then
      Telemetry.event "pool.degraded" [ ("after_failures", Json.Int n) ]
  end

let park j i =
  Mutex.lock j.j_lock;
  j.j_parked <- i :: j.j_parked;
  Condition.signal j.j_done;
  Mutex.unlock j.j_lock

(* One participant's claim loop over the pool's current job. Validation
   order matters for staleness: a claim decoding an epoch other than the
   live one is from a previous job's counter and is discarded; a claim
   with the live epoch but an index beyond [j_n] means the counter is
   exhausted. [map_array] bumps the epoch before touching [j_n]/[j_run]
   and publishes the reset counter last, so every claim that passes both
   checks belongs to the current job — and a participant holding such a
   claim blocks job completion (the item can only be finished by that
   participant), which keeps [j_run]/[j_n] stable underneath it.

   The per-item bookkeeping is allocation- and DLS-lookup-free: the
   participant's utilization counter is resolved once per drain and
   flushed in one [Metrics.add]; task latency goes to the [pool.task_ns]
   histogram on every 16th item by index (deterministic sampling, and the
   name is excluded from cross-domain determinism checks like every other
   wall-clock metric). *)
let drain p =
  let j = p.job in
  let counter = p.task_counters.(Domain.DLS.get slot_key) in
  let done_here = ref 0 in
  let continue = ref true in
  while !continue do
    let v = Atomic.fetch_and_add j.j_next 1 in
    let e = v lsr epoch_bits and i = v land index_mask in
    if e <> Atomic.get j.j_epoch || i >= j.j_n then continue := false
    else if Faultpoint.should_fire fp_worker then begin
      (* Simulated domain crash: the claimed item is recovered by the
         supervisor; this participant is gone for the rest of the
         call. *)
      record_crash p;
      park j i;
      continue := false
    end
    else begin
      (if i land 15 = 0 then begin
         let t0 = Clock.now_ns () in
         j.j_run i;
         Metrics.observe h_task_ns (Clock.now_ns () - t0)
       end
       else j.j_run i);
      incr done_here
    end
  done;
  if !done_here > 0 then Metrics.add counter !done_here

(* Recovery drain for the supervisor: claims like [drain] but never
   consults the fault point — the supervisor context is the recovery
   path, and it must make progress even when every schedule entry says
   "crash". Only ever runs inside the supervisor's own [map_array], so no
   epoch check is needed. *)
let drain_unclaimed p =
  let j = p.job in
  let counter = p.task_counters.(Domain.DLS.get slot_key) in
  let done_here = ref 0 in
  let continue = ref true in
  while !continue do
    let v = Atomic.fetch_and_add j.j_next 1 in
    let i = v land index_mask in
    if i >= j.j_n then continue := false
    else begin
      j.j_run i;
      incr done_here
    end
  done;
  if !done_here > 0 then Metrics.add counter !done_here

let worker p =
  let rec loop () =
    Mutex.lock p.lock;
    while Queue.is_empty p.queue && not p.stopped do
      Condition.wait p.nonempty p.lock
    done;
    if Queue.is_empty p.queue then Mutex.unlock p.lock (* stopped *)
    else begin
      let task = Queue.pop p.queue in
      Mutex.unlock p.lock;
      (* A drain task never lets exceptions escape (crashes are parked on
         the failure list), but an unexpected one must not kill the
         domain: the pool would silently lose parallelism. *)
      (try task () with _ -> record_crash p);
      loop ()
    end
  in
  loop ()

let create ?(max_failures = 8) size =
  let size = max 1 size in
  let p =
    {
      size;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      workers = [];
      failures = Atomic.make 0;
      max_failures = max 1 max_failures;
      degraded = Atomic.make false;
      job =
        {
          j_epoch = Atomic.make 0;
          j_next = Atomic.make 0;
          j_remaining = Atomic.make 0;
          j_lock = Mutex.create ();
          j_done = Condition.create ();
          j_parked = [];
          j_n = 0;
          j_run = ignore;
        };
      drain_task = ignore;
      task_counters =
        Array.init size (fun i ->
            Metrics.counter (Printf.sprintf "pool.domain%d.tasks" i));
    }
  in
  p.drain_task <- (fun () -> drain p);
  if size > 1 then
    p.workers <-
      List.init (size - 1) (fun i ->
          Domain.spawn (fun () ->
              Domain.DLS.set slot_key (i + 1);
              worker p));
  p

let size p = p.size
let failures p = Atomic.get p.failures
let is_degraded p = Atomic.get p.degraded

let submit p task =
  Mutex.lock p.lock;
  Queue.push task p.queue;
  Condition.signal p.nonempty;
  Mutex.unlock p.lock

let map_array p f arr =
  let n = Array.length arr in
  if p.size <= 1 || n <= 1 || Atomic.get p.degraded then Array.map f arr
  else begin
    Domain.DLS.set slot_key 0;
    Metrics.incr m_map_calls;
    Metrics.add m_items n;
    let results = Array.make n None in
    let j = p.job in
    (* Initialize the reused job record for this call. The epoch bump
       comes first and the claim-counter reset last: a stale drain task
       waking mid-reset either decodes the old epoch (discarded) or sees
       the fully-published new job (legitimate participation). *)
    let epoch = Atomic.get j.j_epoch + 1 in
    Atomic.set j.j_epoch epoch;
    j.j_n <- n;
    j.j_parked <- [];
    Atomic.set j.j_remaining n;
    (* [f]'s own exceptions are captured per item and re-raised after the
       barrier so a failing task cannot deadlock the pool; a harness
       crash instead parks the claimed index for the supervisor. The last
       finisher signals the completion barrier instead of every waiter
       spinning on [j_remaining]. *)
    j.j_run <-
      (fun i ->
        let outcome =
          match f arr.(i) with v -> Ok v | exception e -> Error e
        in
        results.(i) <- Some outcome;
        if Atomic.fetch_and_add j.j_remaining (-1) = 1 then begin
          Mutex.lock j.j_lock;
          Condition.signal j.j_done;
          Mutex.unlock j.j_lock
        end);
    Atomic.set j.j_next (epoch lsl epoch_bits);
    for _ = 1 to min (p.size - 1) (n - 1) do
      submit p p.drain_task
    done;
    drain p;
    (* Supervision loop: retry parked indices and adopt any indices left
       unclaimed by crashed participants (including this domain's own
       simulated crash), until every slot is filled. *)
    Mutex.lock j.j_lock;
    while Atomic.get j.j_remaining > 0 do
      match j.j_parked with
      | [] ->
          if Atomic.get j.j_next land index_mask < n then begin
            (* Participants died before claiming everything: the
               supervisor finishes the sweep itself. *)
            Mutex.unlock j.j_lock;
            drain_unclaimed p;
            Mutex.lock j.j_lock
          end
          else Condition.wait j.j_done j.j_lock
      | is ->
          j.j_parked <- [];
          Mutex.unlock j.j_lock;
          let counter = p.task_counters.(Domain.DLS.get slot_key) in
          List.iter
            (fun i ->
              Metrics.incr m_retried;
              j.j_run i;
              Metrics.incr counter)
            (List.rev is);
          Mutex.lock j.j_lock
    done;
    Mutex.unlock j.j_lock;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

(* ------------------------------------------------------------------ *)
(* Futures: whole-task parallelism for the pipelined fuzz loop         *)
(* ------------------------------------------------------------------ *)

(* A future completes exactly once; the result cell is an atomic so the
   fast path of [await] is one load, with the mutex/condition pair only
   for blocking. The completion order is set-then-signal with the waiter
   rechecking under the lock, so a wakeup can never be missed. Task
   exceptions are captured into the cell and re-raised at [await] — a
   failing task cannot kill a worker or strand a waiter. *)
type 'a future = {
  f_result : ('a, exn) result option Atomic.t;
  f_lock : Mutex.t;
  f_done : Condition.t;
}

let m_spawns = Metrics.counter "pool.spawns"
let m_helped = Metrics.counter "pool.helped_tasks"

let spawn p task =
  let fut =
    {
      f_result = Atomic.make None;
      f_lock = Mutex.create ();
      f_done = Condition.create ();
    }
  in
  let run () =
    let outcome = match task () with v -> Ok v | exception e -> Error e in
    Atomic.set fut.f_result (Some outcome);
    Mutex.lock fut.f_lock;
    Condition.broadcast fut.f_done;
    Mutex.unlock fut.f_lock
  in
  Metrics.incr m_spawns;
  if p.size <= 1 || Atomic.get p.degraded then run ()
  else
    submit p (fun () ->
        if Faultpoint.should_fire fp_worker then begin
          (* Simulated domain crash while holding a future: record it,
             then complete the future anyway — the supervision contract
             is that injected pool faults degrade throughput, never
             strand a waiter (cf. the parked-index recovery above). *)
          record_crash p;
          run ()
        end
        else run ());
  fut

let rec await p fut =
  match Atomic.get fut.f_result with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None ->
      (* Help instead of idling: the awaiting domain drains queued tasks
         (other futures) while its own is still being computed — with a
         deep pipeline the submitting domain is a full participant, not
         a coordinator. Every queued task is a [spawn] wrapper, which
         never lets an exception escape. *)
      let stolen =
        Mutex.lock p.lock;
        let t =
          if Queue.is_empty p.queue then None else Some (Queue.pop p.queue)
        in
        Mutex.unlock p.lock;
        t
      in
      (match stolen with
      | Some t ->
          Metrics.incr m_helped;
          t ()
      | None ->
          Mutex.lock fut.f_lock;
          while Atomic.get fut.f_result = None do
            Condition.wait fut.f_done fut.f_lock
          done;
          Mutex.unlock fut.f_lock);
      await p fut

let poll fut = Atomic.get fut.f_result <> None

let shutdown p =
  if p.workers <> [] then begin
    Mutex.lock p.lock;
    p.stopped <- true;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.lock;
    List.iter Domain.join p.workers;
    p.workers <- []
  end
