open Revizor_isa

type result = { program : Program.t; inputs : Input.t list; fenced : Program.t }

let still_violates config executor program inputs =
  match Program.validate program with
  | Error _ -> false
  | Ok () -> (
      match Fuzzer.check_test_case config executor program inputs with
      | Ok (Some _) -> true
      | Ok None | Error _ -> false)

(* Stage 1: drop inputs greedily (halves first, then singles), keeping a
   sequence that still violates. *)
let minimize_inputs config executor program inputs =
  let rec drop_chunks inputs chunk =
    if chunk = 0 then inputs
    else
      let rec try_at start inputs =
        if start >= List.length inputs then inputs
        else
          let candidate =
            List.filteri (fun i _ -> i < start || i >= start + chunk) inputs
          in
          if List.length candidate >= 2
             && still_violates config executor program candidate
          then try_at start candidate
          else try_at (start + chunk) inputs
      in
      let reduced = try_at 0 inputs in
      drop_chunks reduced (if chunk > List.length reduced then List.length reduced / 2 else chunk / 2)
  in
  let n = List.length inputs in
  drop_chunks inputs (max 1 (n / 2))

(* Stage 2: remove instructions one at a time (from the end, so that the
   indices of earlier candidates stay valid). *)
let remove_nth program n =
  let count = ref (-1) in
  Program.map_insts
    (fun i ->
      incr count;
      if !count = n then [] else [ i ])
    program

let minimize_instructions config executor program inputs =
  let rec go program n =
    if n < 0 then program
    else
      let candidate = remove_nth program n in
      if still_violates config executor candidate inputs then go candidate (n - 1)
      else go program (n - 1)
  in
  go program (Program.num_insts program - 1)

(* Stage 3: insert LFENCE after each position, last first; keep the fences
   that do not kill the violation. The unfenced region localizes the
   leak. *)
let fence_after program n =
  let count = ref (-1) in
  Program.map_insts
    (fun i ->
      incr count;
      if !count = n then [ i; Instruction.lfence ] else [ i ])
    program

let add_fences config executor program inputs =
  let rec go program n =
    if n < 0 then program
    else
      let candidate = fence_after program n in
      if still_violates config executor candidate inputs then
        (* Fence position is harmless: keep it (it narrows the region). *)
        go candidate (n - 1)
      else go program (n - 1)
  in
  go program (Program.num_insts program - 1)

(* Fence localization without minimization: the flight recorder wants
   the leaking region of the ORIGINAL program (the listing the forensics
   artifact shows), not of a reduced one. *)
let fence_localize config executor program inputs =
  add_fences config executor program inputs

let minimize config executor (v : Violation.t) =
  let program = v.Violation.program in
  let inputs = minimize_inputs config executor program v.Violation.inputs in
  let program = minimize_instructions config executor program inputs in
  let fenced = add_fences config executor program inputs in
  { program; inputs; fenced }
