open Revizor_uarch

(** The executor (§5.3): collects hardware traces from the CPU under test.

    Responsibilities, mirroring the paper:
    - run the whole input sequence back-to-back on one CPU session so that
      each input primes the microarchitectural context of the next
      ({e priming});
    - repeat the measurement after warm-up rounds, discard observations
      seen in too few repetitions (noise outliers) and take the union of
      the rest;
    - on demand, re-measure with a pair of inputs swapped in the sequence
      to tell real leaks from priming artifacts (the swap check);
    - optionally inject synthetic measurement noise, so the
      noise-filtering machinery can be exercised deterministically. *)

(** Synthetic measurement noise. Perturbation decisions are drawn from
    splitmix64 streams derived from [seed] and the measurement's
    coordinates — (test case, measurement epoch, sequence pass, input
    index) — not from one sequential PRNG. A draw is addressed by where
    it happens rather than by how many draws preceded it, so noisy
    campaigns are bit-identical for any [executor_domains] count and need
    no PRNG state in checkpoints. *)
type noise = {
  flip_probability : float;  (** chance to add/remove one observation *)
  seed : int64;  (** key of the derived per-measurement noise streams *)
}

(** Bounded adaptive retry (DESIGN.md §8): when the outlier filter is
    rejecting more than [reject_ratio] of the distinct observations (a
    noise storm), the executor doubles its repetitions — capped at
    [max_total_reps] — buying signal with repetitions the way the paper's
    executor does. The outlier threshold scales with the repetitions
    actually run. *)
type adaptive = { reject_ratio : float; max_total_reps : int }

type config = {
  threat : Attack.threat;
  warmup_rounds : int;  (** un-recorded passes over the input sequence *)
  measurement_reps : int;  (** recorded passes (the paper uses 50) *)
  outlier_min : int;
      (** keep an observation only if seen in at least this many reps *)
  noise : noise option;
  adaptive : adaptive option;
      (** [None] (the default) keeps measurement bit-identical to the
          fixed-repetition executor *)
  max_steps : int;
  reset_between_inputs : bool;
      (** ablation switch: wipe the microarchitectural state before every
          input, disabling priming (default [false]) *)
}

val default_config : ?threat:Attack.threat -> unit -> config
(** Prime+Probe, 1 warm-up round, 3 reps, outlier threshold 2, no noise,
    no adaptive escalation. *)

type t

val create : Cpu.t -> config -> t
val cpu : t -> Cpu.t
val config : t -> config

val set_context : t -> tc:int -> unit
(** Tell the executor which test case it is measuring. The test-case
    number seeds the coordinates of the keyed noise streams (see
    {!noise}) and resets the per-test-case measurement-epoch counter, so
    a test case's measurements are a pure function of the campaign
    configuration and its own number — wherever and on whatever domain
    they run. The fuzz loop calls this once per test case; standalone
    callers that never call it get a fixed test-case number 0, which is
    just as deterministic. *)

val set_memo : bool -> unit
(** Master switch (default on) for measurement memoization: replaying a
    repetition from its recorded trace when the predictor mark proves the
    run would start from bit-identical microarchitectural state (see
    DESIGN.md §6). Memoized and non-memoized measurements are identical
    by construction; the switch exists so differential tests can assert
    exactly that. Process-global because fuzzing campaigns build their
    executors internally. *)

(** Per-input measurement result. *)
type measurement = {
  htrace : Htrace.t;  (** union across reps, outliers removed *)
  kinds : Cpu.speculation_kind list;
      (** speculation mechanisms that produced transient cache touches for
          this input (for post-hoc labelling only) *)
  events : (Cpu.speculation_kind * Htrace.t) list;
      (** the same mechanisms with the cache sets they touched, so that a
          violation can be attributed to the mechanism responsible for the
          diverging observations *)
  runs : Cpu.event list list;
      (** the raw per-repetition speculation record: one entry per
          measured repetition (most recent first), each the complete
          {!Cpu.event} list of that run in execution order. This is what
          the executor already collects to compute [kinds]/[events]; it
          is surfaced whole so the coverage atlas can harvest event
          features (window lengths, squash transitions, footprints)
          without any extra simulation runs. *)
}

val measure :
  ?templates:Revizor_emu.State.t array ->
  t ->
  Revizor_emu.Compiled.t ->
  Input.t list ->
  measurement array
(** Reset the CPU session, run warm-ups, then the measured reps. The
    result is indexed like the input list.

    [templates] (from {!Input.templates}, indexed like the input list)
    lets the caller materialize each input's architectural state once per
    test case; every warm-up round and repetition then restores the
    template with a flat blit instead of regenerating the input's PRNG
    stream. Omitted, the templates are built internally (one state per
    input per call). *)

val htraces :
  ?templates:Revizor_emu.State.t array ->
  t ->
  Revizor_emu.Compiled.t ->
  Input.t list ->
  Htrace.t array

val record_events :
  ?templates:Revizor_emu.State.t array ->
  t ->
  Revizor_emu.Compiled.t ->
  Input.t list ->
  (Htrace.t * Cpu.event list) array
(** Forensic replay for the violation flight recorder: reset the session,
    run the config's warm-up passes, then one recorded primed pass,
    returning per input the raw hardware trace of that pass together
    with the complete speculation-event record — each {!Cpu.event} with
    its mechanism, origin PC, transient-load count and transiently
    touched cache sets, in execution order. Unlike {!measure} there is
    no repetition, no outlier filter and no noise injection: this is a
    post-hoc diagnostic pass on a dedicated executor, not a measurement
    (the campaign's verdict is already final when it runs). *)

val swap_check :
  ?templates:Revizor_emu.State.t array ->
  ?base:Htrace.t array ->
  t ->
  Revizor_emu.Compiled.t ->
  Input.t list ->
  int ->
  int ->
  bool
(** [swap_check t prog inputs a b] re-measures with inputs [a] and [b]
    exchanged in the priming sequence. Returns [true] if the trace
    divergence persists under the swapped contexts (a genuine violation),
    [false] if it was a priming artifact.

    [base] is the unswapped baseline measurement, if the caller already
    has it (from {!measure} over the same [templates]); re-measuring
    would reproduce it bit for bit — keyed noise included — so it is
    always reused. *)
