open Revizor_isa
open Revizor_emu

type t = { seed : int64; entropy : int }

let generate prng ~entropy = { seed = Prng.next prng; entropy }

let generate_many prng ~entropy ~n =
  List.init n (fun _ -> generate prng ~entropy)

(* Values land in bits 6..11: the cache-line-index bits selected by the
   sandbox masking instrumentation. *)
let value_of sub entropy = Int64.shift_left (Prng.bits sub entropy) 6

let flags_of sub entropy =
  let raw = Prng.bits sub (min entropy 6) in
  let b n = Int64.logand (Int64.shift_right_logical raw n) 1L = 1L in
  {
    Flags.cf = b 0;
    zf = b 1;
    sf = b 2;
    o_f = b 3;
    pf = b 4;
    af = b 5;
  }

let apply t (state : State.t) =
  let sub = Prng.create ~seed:t.seed in
  List.iter
    (fun r -> State.set_reg state r Width.W64 (value_of sub t.entropy))
    Reg.gen_pool;
  state.State.flags <- flags_of sub t.entropy;
  let words = Layout.data_pages * Layout.page_size / 8 in
  (* Aligned word writes by offset: this fills 8 KiB per input per test
     case, so it skips the [Memory.write] Int64 address arithmetic. *)
  for w = 0 to words - 1 do
    Memory.write_data_word state.State.mem ~word:w (value_of sub t.entropy)
  done

let to_state t =
  let state = State.create () in
  apply t state;
  state

let templates inputs = Array.of_list (List.map to_state inputs)

let equal (a : t) (b : t) = a = b
let pp fmt t = Format.fprintf fmt "input(seed=0x%Lx, entropy=%d)" t.seed t.entropy
