open Revizor_isa
open Revizor_emu

type t = { seed : int64; entropy : int }

let generate prng ~entropy = { seed = Prng.next prng; entropy }

let generate_many prng ~entropy ~n =
  List.init n (fun _ -> generate prng ~entropy)

(* Values land in bits 6..11: the cache-line-index bits selected by the
   sandbox masking instrumentation. *)
let value_of sub entropy = Int64.shift_left (Prng.bits sub entropy) 6

let flags_of sub entropy =
  let raw = Prng.bits sub (min entropy 6) in
  let b n = Int64.logand (Int64.shift_right_logical raw n) 1L = 1L in
  {
    Flags.cf = b 0;
    zf = b 1;
    sf = b 2;
    o_f = b 3;
    pf = b 4;
    af = b 5;
  }

(* The data-word fill dominates input materialization: 1024 words × 8
   bytes per input, ~50+ inputs per test case. Without flambda every
   [Prng.next] round-trips through boxed Int64 arithmetic, so the hot
   path below simulates xorshift64* on two unboxed 32-bit native-int
   limbs and writes through [Bytes.set_uint16_le]. The limb recurrence
   reproduces the generator's bit stream exactly, and because a data
   word is [bits entropy << 6] with entropy ≤ 16, only the low 16 bits
   of the final [* 0x2545F4914F6CDD1D] multiply can reach the value —
   one untagged 16×16-bit multiply replaces the boxed 64-bit one.
   Differentially verified against [Prng.bits] (and guarded by the
   compiled-vs-interpreted suites downstream). *)
let mask32 = 0xFFFFFFFF

(* Unchecked 16-bit store: the fill loop writes fixed offsets [0, 8*words)
   into a buffer whose length the caller guarantees, so the per-store
   bounds checks of [Bytes.set_uint16_le] are pure overhead. The %
   primitive stores in native byte order; fall back to the checked
   little-endian accessor on big-endian platforms. *)
external unsafe_set_16 : bytes -> int -> int -> unit = "%caml_bytes_set16u"

let[@inline] set16_le buf off v =
  if Sys.big_endian then Bytes.set_uint16_le buf off v
  else unsafe_set_16 buf off v

let fill_words_fast mem ~state ~entropy ~hi_zero ~mid_zero ~words =
  let buf = Memory.raw mem in
  (* One bounds check for the whole fill instead of one per store. *)
  if 8 * words > Bytes.length buf then invalid_arg "Input.fill_words_fast";
  (* With entropy ≤ 10 the shifted value never reaches past bit 15, so
     bytes 2..3 are written as zero too — skippable on the same caller
     guarantee as the high half. *)
  let skip_mid = mid_zero && entropy <= 10 in
  let hi = ref (Int64.to_int (Int64.shift_right_logical state 32))
  and lo = ref (Int64.to_int (Int64.logand state 0xFFFF_FFFFL)) in
  let mul_lo16 = 0x2545F4914F6CDD1D land 0xFFFF in
  let vmask = (1 lsl entropy) - 1 in
  for w = 0 to words - 1 do
    (* s ^= s >>> 12 *)
    let h = !hi and l = !lo in
    let l = l lxor (((l lsr 12) lor (h lsl 20)) land mask32)
    and h = h lxor (h lsr 12) in
    (* s ^= s << 25 *)
    let h = h lxor (((h lsl 25) lor (l lsr 7)) land mask32)
    and l = l lxor ((l lsl 25) land mask32) in
    (* s ^= s >>> 27 *)
    let l = l lxor (((l lsr 27) lor (h lsl 5)) land mask32)
    and h = h lxor (h lsr 27) in
    hi := h;
    lo := l;
    (* low 16 bits of s * 0x2545F4914F6CDD1D, masked to [entropy] bits,
       shifted into the cache-line-index window (bits 6..21) *)
    let v = ((l land 0xFFFF) * mul_lo16) land vmask in
    let off = w * 8 in
    set16_le buf off ((v lsl 6) land 0xFFFF);
    if not skip_mid then set16_le buf (off + 2) (v lsr 10);
    (* With entropy ≤ 16 the value never reaches past bit 21, so bytes
       4..7 of every data word are written as zero. When the caller
       guarantees they are zero already ([hi_zero]), skip the stores —
       half the writes of an 8 KiB fill. *)
    if not hi_zero then begin
      set16_le buf (off + 4) 0;
      set16_le buf (off + 6) 0
    end
  done

(* Sparse fill: write only the data words listed in [plan] (ascending),
   with exactly the bytes the full fill would have given them — word [w]'s
   value is drawn from the PRNG state advanced [w + 1] steps, so the
   stream is positioned with {!Prng.jump} over skipped runs (sequential
   stepping for short gaps, where the matrix application would cost more
   than it saves). The plan is small, so boxed int64 stepping is fine. *)
let fill_words_sparse mem ~state ~entropy ~hi_zero ~mid_zero ~plan =
  let buf = Memory.raw mem in
  let mul_lo16 = 0x2545F4914F6CDD1D land 0xFFFF in
  let vmask = (1 lsl entropy) - 1 in
  let skip_mid = mid_zero && entropy <= 10 in
  let s = ref state and pos = ref 0 in
  Array.iter
    (fun w ->
      if w < !pos || 8 * w + 8 > Bytes.length buf then
        invalid_arg "Input.fill_words_sparse";
      let gap = w + 1 - !pos in
      if gap >= 64 then s := Prng.jump !s ~steps:gap
      else
        for _ = 1 to gap do
          s := Prng.xorshift_step !s
        done;
      pos := w + 1;
      let v = Int64.to_int !s land 0xFFFF * mul_lo16 land vmask in
      let off = w * 8 in
      set16_le buf off ((v lsl 6) land 0xFFFF);
      if not skip_mid then set16_le buf (off + 2) (v lsr 10);
      if not hi_zero then begin
        set16_le buf (off + 4) 0;
        set16_le buf (off + 6) 0
      end)
    plan

exception Unprovable

(* Static reachable-word analysis of a flat test program, justifying the
   sparse fill. A data word may be read (architecturally or speculatively)
   only through a sandbox memory operand, and the generator's masking
   instrumentation pins every such access: the operand is
   [sandbox_base + index + disp] with scale 1, and the instruction
   immediately before it is [AND index, mask] with a line-aligned mask —
   so the reachable addresses are exactly {L + disp | L submask of mask}.
   The adjacency argument needs the access to be entered only by
   fall-through from its AND: flat branch targets are always block
   starts, so it suffices that the access is not itself a block start.
   Speculative execution preserves this — mispredicted paths still run
   instructions in sequence from a block start or a fall-through point,
   and the AND masks whatever (possibly stale or forwarded) value the
   index register holds on the wrong path.

   Anything outside that shape — CALL/RET (implicit stack words inside
   the data pages), indirect jumps (dynamic targets), a DIV/IDIV memory
   form (its zero-divisor prefix sits between the AND and the access), an
   unmasked or oddly shaped operand — makes the program unprovable and
   the caller falls back to the full fill. Correctness never depends on
   the generator's conventions: the plan is derived from the program
   text alone. *)
let fill_plan (flat : Program.flat) : int array option =
  let code = flat.Program.code in
  let n = Array.length code in
  let words = Layout.data_pages * Layout.page_size / 8 in
  let starts = Array.make (max n 1) false in
  List.iter
    (fun (_, i) -> if i < n then starts.(i) <- true)
    flat.Program.block_starts;
  let marked = Array.make words false in
  let mark_access ~mask ~disp ~bytes =
    let mark_addr l =
      let lo = (l + disp) / 8 and hi = (l + disp + bytes - 1) / 8 in
      (* Addresses past the data words were never filled anyway. *)
      for w = lo to min hi (words - 1) do
        marked.(w) <- true
      done
    in
    mark_addr 0;
    let l = ref mask in
    while !l <> 0 do
      mark_addr !l;
      l := (!l - 1) land mask
    done
  in
  match
    Array.iteri
      (fun i (inst : Instruction.t) ->
        (match inst.Instruction.opcode with
        | Opcode.Call | Opcode.Ret | Opcode.JmpInd -> raise_notrace Unprovable
        | _ -> ());
        match Instruction.mem_operand inst with
        | None -> ()
        | Some (m, w) ->
            let r =
              match m with
              | { Operand.base = Some b; index = Some r; scale = 1; disp }
                when Reg.equal b Reg.sandbox_base
                     && (not (Reg.equal r Reg.sandbox_base))
                     && disp >= 0 ->
                  r
              | _ -> raise_notrace Unprovable
            in
            if i = 0 || starts.(i) then raise_notrace Unprovable;
            let mask =
              match code.(i - 1) with
              | {
               Instruction.opcode = Opcode.And;
               operands = [ Operand.Reg (r', Width.W64); Operand.Imm mask ];
               target = None;
               _;
              }
                when Reg.equal r' r
                     && mask >= 0L
                     && Int64.logand mask 63L = 0L
                     && mask < Int64.of_int (words * 8) ->
                  Int64.to_int mask
              | _ -> raise_notrace Unprovable
            in
            mark_access ~mask ~disp:m.Operand.disp ~bytes:(Width.bits w / 8))
      code
  with
  | exception Unprovable -> None
  | () ->
      (* The executor seeds its fill-buffer model from the last data word
         of every template, so it is always live. *)
      marked.(words - 1) <- true;
      let count =
        Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 marked
      in
      if 2 * count > words then None
        (* dense plan: the unboxed full fill is cheaper per word *)
      else begin
        let plan = Array.make count 0 in
        let k = ref 0 in
        Array.iteri
          (fun w m ->
            if m then begin
              plan.(!k) <- w;
              incr k
            end)
          marked;
        Some plan
      end

let apply ?(data_hi_zero = false) ?(data_mid_zero = false) ?plan t
    (state : State.t) =
  let sub = Prng.create ~seed:t.seed in
  List.iter
    (fun r -> State.set_reg state r Width.W64 (value_of sub t.entropy))
    Reg.gen_pool;
  state.State.flags <- flags_of sub t.entropy;
  let words = Layout.data_pages * Layout.page_size / 8 in
  if t.entropy >= 0 && t.entropy <= 16 then begin
    match plan with
    | Some p ->
        fill_words_sparse state.State.mem ~state:(Prng.state sub)
          ~entropy:t.entropy ~hi_zero:data_hi_zero ~mid_zero:data_mid_zero
          ~plan:p
    | None ->
        fill_words_fast state.State.mem ~state:(Prng.state sub)
          ~entropy:t.entropy ~hi_zero:data_hi_zero ~mid_zero:data_mid_zero
          ~words
  end
  else
    (* [plan] is ignored: the full fill is a safe superset and the slow
       path is not worth a sparse variant. *)
    (* Aligned word writes by offset: this fills 8 KiB per input per test
       case, so it skips the [Memory.write] Int64 address arithmetic. *)
    for w = 0 to words - 1 do
      Memory.write_data_word state.State.mem ~word:w (value_of sub t.entropy)
    done

let to_state t =
  let state = State.create () in
  (* Fresh states are all-zero, so the high-half (and, at low entropy,
     mid-byte) stores are redundant. *)
  apply ~data_hi_zero:true ~data_mid_zero:true t state;
  state

let templates inputs = Array.of_list (List.map to_state inputs)

let equal (a : t) (b : t) = a = b
let pp fmt t = Format.fprintf fmt "input(seed=0x%Lx, entropy=%d)" t.seed t.entropy
