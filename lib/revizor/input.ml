open Revizor_isa
open Revizor_emu

type t = { seed : int64; entropy : int }

let generate prng ~entropy = { seed = Prng.next prng; entropy }

let generate_many prng ~entropy ~n =
  List.init n (fun _ -> generate prng ~entropy)

(* Values land in bits 6..11: the cache-line-index bits selected by the
   sandbox masking instrumentation. *)
let value_of sub entropy = Int64.shift_left (Prng.bits sub entropy) 6

let flags_of sub entropy =
  let raw = Prng.bits sub (min entropy 6) in
  let b n = Int64.logand (Int64.shift_right_logical raw n) 1L = 1L in
  {
    Flags.cf = b 0;
    zf = b 1;
    sf = b 2;
    o_f = b 3;
    pf = b 4;
    af = b 5;
  }

(* The data-word fill dominates input materialization: 1024 words × 8
   bytes per input, ~50+ inputs per test case. Without flambda every
   [Prng.next] round-trips through boxed Int64 arithmetic, so the hot
   path below simulates xorshift64* on two unboxed 32-bit native-int
   limbs and writes through [Bytes.set_uint16_le]. The limb recurrence
   reproduces the generator's bit stream exactly, and because a data
   word is [bits entropy << 6] with entropy ≤ 16, only the low 16 bits
   of the final [* 0x2545F4914F6CDD1D] multiply can reach the value —
   one untagged 16×16-bit multiply replaces the boxed 64-bit one.
   Differentially verified against [Prng.bits] (and guarded by the
   compiled-vs-interpreted suites downstream). *)
let mask32 = 0xFFFFFFFF

(* Unchecked 16-bit store: the fill loop writes fixed offsets [0, 8*words)
   into a buffer whose length the caller guarantees, so the per-store
   bounds checks of [Bytes.set_uint16_le] are pure overhead. The %
   primitive stores in native byte order; fall back to the checked
   little-endian accessor on big-endian platforms. *)
external unsafe_set_16 : bytes -> int -> int -> unit = "%caml_bytes_set16u"

let[@inline] set16_le buf off v =
  if Sys.big_endian then Bytes.set_uint16_le buf off v
  else unsafe_set_16 buf off v

let fill_words_fast mem ~state ~entropy ~hi_zero ~words =
  let buf = Memory.raw mem in
  (* One bounds check for the whole fill instead of one per store. *)
  if 8 * words > Bytes.length buf then invalid_arg "Input.fill_words_fast";
  let hi = ref (Int64.to_int (Int64.shift_right_logical state 32))
  and lo = ref (Int64.to_int (Int64.logand state 0xFFFF_FFFFL)) in
  let mul_lo16 = 0x2545F4914F6CDD1D land 0xFFFF in
  let vmask = (1 lsl entropy) - 1 in
  for w = 0 to words - 1 do
    (* s ^= s >>> 12 *)
    let h = !hi and l = !lo in
    let l = l lxor (((l lsr 12) lor (h lsl 20)) land mask32)
    and h = h lxor (h lsr 12) in
    (* s ^= s << 25 *)
    let h = h lxor (((h lsl 25) lor (l lsr 7)) land mask32)
    and l = l lxor ((l lsl 25) land mask32) in
    (* s ^= s >>> 27 *)
    let l = l lxor (((l lsr 27) lor (h lsl 5)) land mask32)
    and h = h lxor (h lsr 27) in
    hi := h;
    lo := l;
    (* low 16 bits of s * 0x2545F4914F6CDD1D, masked to [entropy] bits,
       shifted into the cache-line-index window (bits 6..21) *)
    let v = ((l land 0xFFFF) * mul_lo16) land vmask in
    let off = w * 8 in
    set16_le buf off ((v lsl 6) land 0xFFFF);
    set16_le buf (off + 2) (v lsr 10);
    (* With entropy ≤ 16 the value never reaches past bit 21, so bytes
       4..7 of every data word are written as zero. When the caller
       guarantees they are zero already ([hi_zero]), skip the stores —
       half the writes of an 8 KiB fill. *)
    if not hi_zero then begin
      set16_le buf (off + 4) 0;
      set16_le buf (off + 6) 0
    end
  done

let apply ?(data_hi_zero = false) t (state : State.t) =
  let sub = Prng.create ~seed:t.seed in
  List.iter
    (fun r -> State.set_reg state r Width.W64 (value_of sub t.entropy))
    Reg.gen_pool;
  state.State.flags <- flags_of sub t.entropy;
  let words = Layout.data_pages * Layout.page_size / 8 in
  if t.entropy >= 0 && t.entropy <= 16 then
    fill_words_fast state.State.mem ~state:(Prng.state sub) ~entropy:t.entropy
      ~hi_zero:data_hi_zero ~words
  else
    (* Aligned word writes by offset: this fills 8 KiB per input per test
       case, so it skips the [Memory.write] Int64 address arithmetic. *)
    for w = 0 to words - 1 do
      Memory.write_data_word state.State.mem ~word:w (value_of sub t.entropy)
    done

let to_state t =
  let state = State.create () in
  (* Fresh states are all-zero, so the high-half stores are redundant. *)
  apply ~data_hi_zero:true t state;
  state

let templates inputs = Array.of_list (List.map to_state inputs)

let equal (a : t) (b : t) = a = b
let pp fmt t = Format.fprintf fmt "input(seed=0x%Lx, entropy=%d)" t.seed t.entropy
