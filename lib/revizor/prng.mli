(** Deterministic pseudo-random number generator (xorshift64-star).

    All randomness in the framework flows through explicit [Prng.t] values
    so that every experiment is reproducible from its seed, as required
    for the artifact-style reruns of Tables 4 and 5. *)

type t

val create : seed:int64 -> t
(** A zero seed is remapped to a fixed nonzero constant. *)

val copy : t -> t
val next : t -> int64
val bits : t -> int -> int64
(** [bits t n] draws [n] low-entropy bits (0 <= n <= 63). *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool
val choose : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val split : t -> t
(** Derive an independent generator (for per-input streams). *)

(** {1 Checkpointing}

    The generator's full state is one 64-bit word; capturing and
    restoring it resumes the stream at the exact position, which is what
    makes campaign checkpoints bit-identical to uninterrupted runs. *)

val state : t -> int64
val of_state : int64 -> t
(** [of_state (state t)] continues [t]'s stream exactly. *)

val set_state : t -> int64 -> unit
(** Restore a live generator in place (used to rewind the executor's
    noise stream on resume). *)
