(** Deterministic pseudo-random number generator (xorshift64-star).

    All randomness in the framework flows through explicit [Prng.t] values
    so that every experiment is reproducible from its seed, as required
    for the artifact-style reruns of Tables 4 and 5. *)

type t

val create : seed:int64 -> t
(** A zero seed is remapped to a fixed nonzero constant. *)

val copy : t -> t
val next : t -> int64
val bits : t -> int -> int64
(** [bits t n] draws [n] low-entropy bits (0 <= n <= 63). *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool
val choose : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val split : t -> t
(** Derive an independent generator (for per-input streams). *)

(** {1 Checkpointing}

    The generator's full state is one 64-bit word; capturing and
    restoring it resumes the stream at the exact position, which is what
    makes campaign checkpoints bit-identical to uninterrupted runs. *)

val state : t -> int64
val of_state : int64 -> t
(** [of_state (state t)] continues [t]'s stream exactly. *)

val set_state : t -> int64 -> unit
(** Restore a live generator in place (used to rewind the executor's
    noise stream on resume). *)

(** {1 Stream jumps}

    The xorshift64 state transition is linear over GF(2), so a stream can
    be advanced by [k] steps in O(log k) matrix applications instead of
    [k] sequential steps. Used by the sparse input fill to skip over data
    words a test program provably never reads. *)

val xorshift_step : int64 -> int64
(** One raw state transition (no output multiply, no normalization):
    [state (let t = of_state s in ignore (next t); t) = xorshift_step s]
    for every nonzero [s]. *)

val jump : int64 -> steps:int -> int64
(** [jump s ~steps] is [xorshift_step] iterated [steps] times.
    @raise Invalid_argument unless [0 <= steps < 2048]. *)

(** {1 Keyed streams}

    Splitmix64-based derivation of a generator from a key plus a
    coordinate vector, e.g. [(campaign_seed, test_case, input, rep)].
    Unlike [split], the result depends only on the coordinates — not on
    how many draws any other stream has made — so measurement noise keyed
    this way is bit-identical for any executor domain count and any
    scheduling order. *)

val mix64 : int64 -> int64
(** The splitmix64 finalizer (a bijective 64-bit mixer). *)

val derive : int64 -> int64 list -> t
(** [derive key coords] is a fresh generator fully determined by
    [key] and [coords]. *)
