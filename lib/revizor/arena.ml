open Revizor_emu

(* Reusable pool of template states for input materialization.

   [Input.templates] allocates a fresh 8 KiB [State.t] per input per test
   case; at fuzzing throughput that is hundreds of megabytes of garbage
   per minute. Template states are only ever (a) rewritten by
   [Input.apply] and (b) read — the model and the executor copy them into
   their own scratch states before executing — so the same pool of states
   can be refilled for every test case.

   Reuse is bit-identical to fresh allocation because [Input.apply]
   rewrites everything a previous fill could have changed: all generator
   pool registers, the flag word and every data word. The remaining state
   (pc, non-pool registers, the guard/stack tail of the sandbox) keeps
   its [State.create] values forever, since templates are never executed
   on.

   With a sparse fill plan ([Input.fill_plan]) the invariant weakens to
   "rewrites everything the test program can read": unlisted data words
   keep a previous test case's values, which is observation-equivalent
   because the plan proves they are unreachable — speculatively included
   — for the program these templates will run.

   [mids_dirty] tracks whether any pooled data word may hold nonzero
   bytes 2..3. Fills only write those bytes nonzero at entropy > 10, and
   a full fill at entropy ≤ 10 rewrites them all to zero; while clean,
   fills skip the mid stores the way they already skip the high half. *)

type t = {
  mutable pool : State.t array;
  mutable view : State.t array;
  mutable mids_dirty : bool;
}

let create () = { pool = [||]; view = [||]; mids_dirty = false }

let ensure t n =
  let cap = Array.length t.pool in
  if cap < n then begin
    let ncap = max n (max 8 (2 * cap)) in
    t.pool <-
      Array.init ncap (fun i -> if i < cap then t.pool.(i) else State.create ())
  end

let templates ?plan t inputs =
  let n = List.length inputs in
  ensure t n;
  (* The cached view aliases pool entries, so it survives pool growth
     (growth preserves the existing State values by reference). *)
  if Array.length t.view <> n then t.view <- Array.sub t.pool 0 n;
  (* [~data_hi_zero] holds inductively: pool states start as all-zero
     [State.create] memory and are only ever rewritten by this fill,
     which never stores a nonzero byte into the high half of a data
     word (input values sit in bits 6..21). *)
  let mid_zero = not t.mids_dirty in
  List.iteri
    (fun i input ->
      Input.apply ~data_hi_zero:true ~data_mid_zero:mid_zero ?plan input
        t.pool.(i))
    inputs;
  (match inputs with
  | [] -> ()
  | { Input.entropy; _ } :: _ ->
      if entropy > 10 then t.mids_dirty <- true
      else if plan = None then t.mids_dirty <- false
      (* sparse fill at low entropy: unlisted words may stay dirty *));
  t.view
