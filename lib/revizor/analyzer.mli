open Revizor_uarch

(** The relational analyzer (§4, §5.5).

    Inputs are partitioned into classes by contract-trace equality;
    singleton ("ineffective") classes are discarded. Within each class,
    hardware traces must be pairwise {e comparable} (one a subset of the
    other — the union-of-contexts relaxation of equality); an incomparable
    pair is a counterexample to contract compliance. *)

type input_class = {
  ctrace : Ctrace.t;
  members : int list;  (** indices into the input list, ascending *)
}

type candidate = {
  cls : input_class;
  index_a : int;
  index_b : int;  (** the incomparable pair (indices into the inputs) *)
  htrace_a : Htrace.t;
  htrace_b : Htrace.t;
}

val input_classes : Ctrace.t array -> input_class list
(** Classes with at least two members, in order of first appearance.
    Also feeds the [analyzer.class_size] histogram and class counters of
    the metrics registry (singletons included in the histogram). *)

val record_htraces : Htrace.t array -> unit
(** Observe each trace's cardinality into the [analyzer.htrace_density]
    histogram — called by the fuzzer once per measured test case, so the
    distribution is not skewed by swap-check re-measurements. *)

val effective_inputs : input_class list -> int
(** Total number of inputs that belong to a multi-member class. *)

val check_class :
  ?equivalence:[ `Subset | `Equal ] ->
  ?excluding:(int * int) list ->
  input_class ->
  Htrace.t array ->
  (int * int) option
(** First pair of members with inequivalent hardware traces. The default
    [`Subset] equivalence is the paper's relaxation; [`Equal] (strict
    equality) exists for the ablation study — it reports false positives
    whenever speculation executes inconsistently across contexts. *)

val find_violation :
  ?equivalence:[ `Subset | `Equal ] ->
  ?excluding:(int * int) list ->
  input_class list ->
  Htrace.t array ->
  candidate option
(** [excluding] skips pairs already dismissed as priming artifacts, so the
    caller can look for further independent divergences. *)

val pp_candidate : Format.formatter -> candidate -> unit
