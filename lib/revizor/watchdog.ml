(* Per-test-case watchdogs (DESIGN.md §8).

   A pathological generated program — e.g. a dense divider chain under a
   nested contract, whose speculative re-explorations multiply — must not
   stall a round: the model stage runs under a step budget ("fuel") and
   an optional wall-clock deadline, and blowing either raises
   [Pathological], which the fuzz loop records as a skipped test case
   instead of hanging.

   The step budget is deterministic (a pure function of the program and
   contract), so it is on by default with a ceiling far above anything a
   legitimate test case reaches; the time budget depends on the host and
   is opt-in, for operators who care more about liveness than
   bit-reproducibility. *)

exception Pathological of string

type t = {
  max_model_steps : int;
      (* fuel per contract trace, counting every walked instruction
         including speculative re-explorations *)
  max_input_millis : int option;  (* wall-clock deadline per contract trace *)
}

let default = { max_model_steps = 50_000_000; max_input_millis = None }

let m_skipped = Revizor_obs.Metrics.counter "watchdog.skipped_pathological"

(* Mutable per-trace budget handed to the model's walk loop. The deadline
   is only consulted every [check_mask + 1] steps, so the common path
   costs one decrement and compare. *)
type fuel = {
  mutable steps_left : int;
  deadline_ns : int;  (* max_int = no deadline *)
}

let check_mask = 0xFFFF

let start t =
  {
    steps_left = t.max_model_steps;
    deadline_ns =
      (match t.max_input_millis with
      | None -> max_int
      | Some ms -> Revizor_obs.Clock.now_ns () + (ms * 1_000_000));
  }

let tick f =
  let left = f.steps_left - 1 in
  f.steps_left <- left;
  (* [max_model_steps = n] admits exactly [n] ticks; the (n+1)-th trips. *)
  if left < 0 then raise (Pathological "model step budget exhausted");
  if
    left land check_mask = 0
    && f.deadline_ns <> max_int
    && Revizor_obs.Clock.now_ns () > f.deadline_ns
  then raise (Pathological "model time budget exhausted")
