open Revizor_isa
open Revizor_emu

type pattern =
  | Store_after_store
  | Load_after_store
  | Store_after_load
  | Load_after_load
  | Reg_dependency
  | Flags_dependency
  | Cond_dependency
  | Uncond_dependency

let all_patterns =
  [
    Store_after_store;
    Load_after_store;
    Store_after_load;
    Load_after_load;
    Reg_dependency;
    Flags_dependency;
    Cond_dependency;
    Uncond_dependency;
  ]

let pattern_to_string = function
  | Store_after_store -> "store-after-store"
  | Load_after_store -> "load-after-store"
  | Store_after_load -> "store-after-load"
  | Load_after_load -> "load-after-load"
  | Reg_dependency -> "reg-dependency"
  | Flags_dependency -> "flags-dependency"
  | Cond_dependency -> "cond-dependency"
  | Uncond_dependency -> "uncond-dependency"

let pattern_of_string s =
  List.find_opt (fun p -> pattern_to_string p = s) all_patterns

let line_of addr = Int64.div addr (Int64.of_int Layout.cache_line)

let mem_patterns (a : Model.step_record) (b : Model.step_record) =
  let kinds accesses =
    List.map
      (fun (x : Semantics.access) -> (x.Semantics.kind, line_of x.Semantics.addr))
      accesses
  in
  let first = kinds a.Model.s_accesses and second = kinds b.Model.s_accesses in
  List.concat_map
    (fun (k1, l1) ->
      List.filter_map
        (fun (k2, l2) ->
          if l1 <> l2 then None
          else
            match (k1, k2) with
            | `Store, `Store -> Some Store_after_store
            | `Store, `Load -> Some Load_after_store
            | `Load, `Store -> Some Store_after_load
            | `Load, `Load -> Some Load_after_load)
        second)
    first

let dep_patterns (a : Model.step_record) (b : Model.step_record) =
  let written = Instruction.regs_written a.Model.s_inst in
  let read = Instruction.regs_read b.Model.s_inst in
  let reg_dep = List.exists (fun r -> List.mem r read) written in
  let flags_dep =
    Opcode.writes_flags a.Model.s_inst.Instruction.opcode
    && Opcode.reads_flags b.Model.s_inst.Instruction.opcode
  in
  (if reg_dep then [ Reg_dependency ] else [])
  @ if flags_dep then [ Flags_dependency ] else []

let control_patterns (a : Model.step_record) _ =
  match a.Model.s_inst.Instruction.opcode with
  | Opcode.Jcc _ -> [ Cond_dependency ]
  | Opcode.Jmp | Opcode.JmpInd | Opcode.Call | Opcode.Ret -> [ Uncond_dependency ]
  | _ -> []

let patterns_of_stream stream =
  let rec pairs acc = function
    | a :: (b :: _ as rest) ->
        pairs (control_patterns a b @ dep_patterns a b @ mem_patterns a b @ acc) rest
    | [ _ ] | [] -> acc
  in
  List.sort_uniq Stdlib.compare (pairs [] stream)

module PSet = Set.Make (struct
  type t = pattern list

  let compare = Stdlib.compare
end)

type t = {
  mutable singles : pattern list;
  mutable combos : PSet.t;  (** covered pattern sets (one per test case) *)
}

let create () = { singles = []; combos = PSet.empty }
let copy t = { singles = t.singles; combos = t.combos }

(* Checkpoint serialization: the accumulator is fully described by its
   covered singles and combination sets, both stored as pattern-name
   lists so the format survives constructor reordering. *)
module Json = Revizor_obs.Json

let to_json t =
  let names ps = Json.List (List.map (fun p -> Json.String (pattern_to_string p)) ps) in
  Json.Obj
    [
      ("singles", names t.singles);
      ("combos", Json.List (List.map names (PSet.elements t.combos)));
    ]

let of_json j =
  let pattern_list = function
    | Json.List items ->
        List.fold_left
          (fun acc item ->
            match (acc, item) with
            | Error _, _ -> acc
            | Ok ps, Json.String s -> (
                match pattern_of_string s with
                | Some p -> Ok (ps @ [ p ])
                | None -> Error (Printf.sprintf "unknown pattern %S" s))
            | Ok _, _ -> Error "pattern list holds a non-string")
          (Ok []) items
    | _ -> Error "expected a pattern list"
  in
  match (Json.member "singles" j, Json.member "combos" j) with
  | Some singles, Some (Json.List combos) -> (
      match pattern_list singles with
      | Error e -> Error e
      | Ok singles ->
          List.fold_left
            (fun acc combo ->
              match acc with
              | Error _ -> acc
              | Ok t -> (
                  match pattern_list combo with
                  | Error e -> Error e
                  | Ok ps -> Ok { t with combos = PSet.add ps t.combos }))
            (Ok { singles; combos = PSet.empty })
            combos)
  | _ -> Error "coverage object missing singles/combos"

let g_singles = Revizor_obs.Metrics.gauge "coverage.singles"
let g_combos = Revizor_obs.Metrics.gauge "coverage.combinations"
let m_new_combos = Revizor_obs.Metrics.counter "coverage.new_combinations"

let register t ~patterns ~effective =
  if effective && patterns <> [] then begin
    let sorted = List.sort_uniq Stdlib.compare patterns in
    t.singles <- List.sort_uniq Stdlib.compare (sorted @ t.singles);
    let fresh = not (PSet.mem sorted t.combos) in
    t.combos <- PSet.add sorted t.combos;
    if fresh then begin
      Revizor_obs.Metrics.incr m_new_combos;
      Revizor_obs.Metrics.set_gauge g_singles
        (float_of_int (List.length t.singles));
      Revizor_obs.Metrics.set_gauge g_combos
        (float_of_int (PSet.cardinal t.combos));
      if Revizor_obs.Telemetry.enabled () then
        Revizor_obs.Telemetry.event "coverage.combo"
          [
            ( "patterns",
              Revizor_obs.Json.String
                (String.concat "+" (List.map pattern_to_string sorted)) );
            ("combinations", Revizor_obs.Json.Int (PSet.cardinal t.combos));
            ("singles", Revizor_obs.Json.Int (List.length t.singles));
          ]
    end
  end

let covered t p = List.mem p t.singles
let all_singles_covered t = List.for_all (covered t) all_patterns

let combinations_covered t ~k =
  (* Count distinct k-subsets contained in any covered combination. *)
  let rec subsets k l =
    if k = 0 then [ [] ]
    else
      match l with
      | [] -> []
      | x :: rest ->
          List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest
  in
  let all =
    PSet.fold
      (fun combo acc -> PSet.union acc (PSet.of_list (subsets k combo)))
      t.combos PSet.empty
  in
  PSet.cardinal all

let total_combinations t = PSet.cardinal t.combos

let pp fmt t =
  Format.fprintf fmt "@[<v>singles: %d/%d [%s]@,combinations: %d@]"
    (List.length t.singles)
    (List.length all_patterns)
    (String.concat ", " (List.map pattern_to_string t.singles))
    (PSet.cardinal t.combos)

let should_grow t ~previous_combinations ~round_length =
  let fresh = PSet.cardinal t.combos - previous_combinations in
  fresh * 5 < round_length
