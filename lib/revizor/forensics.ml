open Revizor_isa
open Revizor_uarch
module Json = Revizor_obs.Json

type event = {
  ev_kind : string;
  ev_origin_pc : int;
  ev_transient_loads : int;
  ev_touched_sets : int list;
}

type timeline = { tl_input : int; tl_events : event list }

type t = {
  f_label : string;
  f_program_asm : string;
  f_index_a : int;
  f_index_b : int;
  f_inputs : Input.t list;
  f_ctrace : string;
  f_htrace_a : int list;
  f_htrace_b : int list;
  f_only_a : int list;
  f_only_b : int list;
  f_timelines : timeline list;
  f_fenced_asm : string;
  f_fence_positions : int list;
  f_leak_region : (int * int) option;
  f_ucoverage : Ucoverage.t option;
}

(* Recover which original positions carry a surviving fence by walking
   the fenced listing with a cursor into the original one: an
   instruction matching the cursor consumes it; anything else must be an
   inserted LFENCE, recorded against the last consumed position. *)
let fence_positions ~original ~fenced =
  let rec go orig idx fen acc =
    match (orig, fen) with
    | o :: orest, f :: frest when Instruction.equal o f ->
        go orest (idx + 1) frest acc
    | _, f :: frest when Instruction.equal f Instruction.lfence ->
        go orig idx frest ((idx - 1) :: acc)
    | _ ->
        (* Mismatch that is not an inserted fence: the listings diverged
           (should not happen for fence_localize output); report what was
           recovered. *)
        List.rev acc
  in
  go (Program.instructions original) 0 (Program.instructions fenced) []

let leak_region ~num_insts ~fences =
  let unfenced =
    List.filter
      (fun i -> not (List.mem i fences))
      (List.init num_insts Fun.id)
  in
  match unfenced with
  | [] -> None
  | first :: _ ->
      Some (first, List.fold_left max first unfenced)

let event_of_cpu (e : Cpu.event) =
  {
    ev_kind = Cpu.kind_to_string e.Cpu.kind;
    ev_origin_pc = e.Cpu.origin_pc;
    ev_transient_loads = e.Cpu.transient_loads;
    ev_touched_sets = e.Cpu.touched_sets;
  }

let capture ?ucoverage (cfg : Fuzzer.config) (v : Violation.t) =
  let flat = Program.flatten_exn v.Violation.program in
  let compiled = Fuzzer.compile_with cfg.Fuzzer.engine flat in
  (* Noise-free replay: the timeline should show what the program does,
     not what the campaign's synthetic noise model injected on top. *)
  let replay_cfg = { cfg.Fuzzer.executor with Executor.noise = None } in
  let cpu = Cpu.create cfg.Fuzzer.uarch in
  let exec = Executor.create cpu replay_cfg in
  let recorded = Executor.record_events exec compiled v.Violation.inputs in
  let timeline_of idx =
    let _, events = recorded.(idx) in
    { tl_input = idx; tl_events = List.map event_of_cpu events }
  in
  (* Fence localization re-runs the full per-test-case pipeline, so it
     gets its own executor under the campaign's measurement config. *)
  let fence_exec = Executor.create (Cpu.create cfg.Fuzzer.uarch) cfg.Fuzzer.executor in
  let fenced =
    Postprocessor.fence_localize cfg fence_exec v.Violation.program
      v.Violation.inputs
  in
  let fences = fence_positions ~original:v.Violation.program ~fenced in
  let only_a =
    Htrace.elements (Htrace.diff v.Violation.htrace_a v.Violation.htrace_b)
  in
  let only_b =
    Htrace.elements (Htrace.diff v.Violation.htrace_b v.Violation.htrace_a)
  in
  {
    f_label = v.Violation.label;
    f_program_asm = Program.to_string v.Violation.program;
    f_index_a = v.Violation.index_a;
    f_index_b = v.Violation.index_b;
    f_inputs = v.Violation.inputs;
    f_ctrace = Ctrace.to_string v.Violation.ctrace;
    f_htrace_a = Htrace.elements v.Violation.htrace_a;
    f_htrace_b = Htrace.elements v.Violation.htrace_b;
    f_only_a = only_a;
    f_only_b = only_b;
    f_timelines =
      [ timeline_of v.Violation.index_a; timeline_of v.Violation.index_b ];
    f_fenced_asm = Program.to_string fenced;
    f_fence_positions = fences;
    f_leak_region =
      leak_region ~num_insts:(Program.num_insts v.Violation.program) ~fences;
    f_ucoverage = Option.map Ucoverage.copy ucoverage;
  }

(* --- JSON codec ------------------------------------------------------ *)

let ints l = Json.List (List.map (fun i -> Json.Int i) l)

let input_json (i : Input.t) =
  Json.Obj
    [
      ("seed", Json.String (Printf.sprintf "0x%Lx" i.Input.seed));
      ("entropy", Json.Int i.Input.entropy);
    ]

let event_json e =
  Json.Obj
    [
      ("kind", Json.String e.ev_kind);
      ("origin_pc", Json.Int e.ev_origin_pc);
      ("transient_loads", Json.Int e.ev_transient_loads);
      ("touched_sets", ints e.ev_touched_sets);
    ]

let timeline_json tl =
  Json.Obj
    [
      ("input", Json.Int tl.tl_input);
      ("events", Json.List (List.map event_json tl.tl_events));
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "revizor.forensics.v1");
      ("label", Json.String t.f_label);
      ("program", Json.String t.f_program_asm);
      ("index_a", Json.Int t.f_index_a);
      ("index_b", Json.Int t.f_index_b);
      ("inputs", Json.List (List.map input_json t.f_inputs));
      ("ctrace", Json.String t.f_ctrace);
      ("htrace_a", ints t.f_htrace_a);
      ("htrace_b", ints t.f_htrace_b);
      ("only_a", ints t.f_only_a);
      ("only_b", ints t.f_only_b);
      ("timelines", Json.List (List.map timeline_json t.f_timelines));
      ("fenced_program", Json.String t.f_fenced_asm);
      ("fence_positions", ints t.f_fence_positions);
      ( "leak_region",
        match t.f_leak_region with
        | None -> Json.Null
        | Some (first, last) ->
            Json.Obj [ ("first", Json.Int first); ("last", Json.Int last) ] );
      ( "ucoverage",
        match t.f_ucoverage with
        | None -> Json.Null
        | Some u -> Ucoverage.to_json u );
    ]

let ( let* ) = Result.bind

let req name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "forensics: missing or bad %S" name)

let to_ints j =
  match j with
  | Json.List l ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | x :: rest -> (
            match Json.to_int x with
            | Some i -> go (i :: acc) rest
            | None -> None)
      in
      go [] l
  | _ -> None

let to_list j = match j with Json.List l -> Some l | _ -> None

let input_of_json j =
  match
    ( Option.bind (Json.member "seed" j) Json.to_str,
      Option.bind (Json.member "entropy" j) Json.to_int )
  with
  | Some seed_s, Some entropy -> (
      match Int64.of_string_opt seed_s with
      | Some seed -> Ok { Input.seed; entropy }
      | None -> Error (Printf.sprintf "forensics: bad input seed %S" seed_s))
  | _ -> Error "forensics: malformed input"

let event_of_json j =
  let* ev_kind = req "kind" Json.to_str j in
  let* ev_origin_pc = req "origin_pc" Json.to_int j in
  let* ev_transient_loads = req "transient_loads" Json.to_int j in
  let* ev_touched_sets = req "touched_sets" to_ints j in
  Ok { ev_kind; ev_origin_pc; ev_transient_loads; ev_touched_sets }

let timeline_of_json j =
  let* tl_input = req "input" Json.to_int j in
  let* raw = req "events" to_list j in
  let* tl_events =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* ev = event_of_json e in
        Ok (ev :: acc))
      (Ok []) raw
    |> Result.map List.rev
  in
  Ok { tl_input; tl_events }

let of_json j =
  let* schema = req "schema" Json.to_str j in
  if schema <> "revizor.forensics.v1" then
    Error (Printf.sprintf "forensics: unknown schema %S" schema)
  else
    let* f_label = req "label" Json.to_str j in
    let* f_program_asm = req "program" Json.to_str j in
    let* f_index_a = req "index_a" Json.to_int j in
    let* f_index_b = req "index_b" Json.to_int j in
    let* raw_inputs = req "inputs" to_list j in
    let* f_inputs =
      List.fold_left
        (fun acc i ->
          let* acc = acc in
          let* input = input_of_json i in
          Ok (input :: acc))
        (Ok []) raw_inputs
      |> Result.map List.rev
    in
    let* f_ctrace = req "ctrace" Json.to_str j in
    let* f_htrace_a = req "htrace_a" to_ints j in
    let* f_htrace_b = req "htrace_b" to_ints j in
    let* f_only_a = req "only_a" to_ints j in
    let* f_only_b = req "only_b" to_ints j in
    let* raw_timelines = req "timelines" to_list j in
    let* f_timelines =
      List.fold_left
        (fun acc t ->
          let* acc = acc in
          let* tl = timeline_of_json t in
          Ok (tl :: acc))
        (Ok []) raw_timelines
      |> Result.map List.rev
    in
    let* f_fenced_asm = req "fenced_program" Json.to_str j in
    let* f_fence_positions = req "fence_positions" to_ints j in
    let f_leak_region =
      match Json.member "leak_region" j with
      | Some (Json.Obj _ as r) -> (
          match
            ( Option.bind (Json.member "first" r) Json.to_int,
              Option.bind (Json.member "last" r) Json.to_int )
          with
          | Some first, Some last -> Some (first, last)
          | _ -> None)
      | _ -> None
    in
    (* Additive key: forensics files from before the atlas load fine. *)
    let* f_ucoverage =
      match Json.member "ucoverage" j with
      | None | Some Json.Null -> Ok None
      | Some u -> Result.map Option.some (Ucoverage.of_json u)
    in
    Ok
      {
        f_label;
        f_program_asm;
        f_index_a;
        f_index_b;
        f_inputs;
        f_ctrace;
        f_htrace_a;
        f_htrace_b;
        f_only_a;
        f_only_b;
        f_timelines;
        f_fenced_asm;
        f_fence_positions;
        f_leak_region;
        f_ucoverage;
      }

let file ~dir = Filename.concat dir "forensics.json"

let save ~dir t =
  Results.mkdir_p dir;
  Revizor_obs.Atomic_file.write (file ~dir)
    (Json.to_string_pretty (to_json t) ^ "\n")

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> In_channel.input_all ic)
  with
  | exception Sys_error e -> Error e
  | contents -> (
      match Json.parse contents with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j -> of_json j)

(* --- rendering -------------------------------------------------------- *)

let render t =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let section name = add "== %s ==\n" name in
  add "Violation forensics: %s\n" t.f_label;
  add "Violating pair: input %d vs input %d (of %d in sequence)\n\n"
    t.f_index_a t.f_index_b (List.length t.f_inputs);
  section "Program";
  add "%s\n\n" (String.trim t.f_program_asm);
  section "Violating inputs";
  List.iteri
    (fun i input ->
      if i = t.f_index_a || i = t.f_index_b then
        add "  [%d] %s\n" i (Results.input_to_line input))
    t.f_inputs;
  add "\n";
  section "Contract trace (shared by the pair)";
  add "  %s\n\n" t.f_ctrace;
  section "Hardware trace divergence";
  let show_trace name es =
    add "  %-10s {%s}\n" name (String.concat ", " (List.map string_of_int es))
  in
  show_trace "htrace A" t.f_htrace_a;
  show_trace "htrace B" t.f_htrace_b;
  show_trace "only in A" t.f_only_a;
  show_trace "only in B" t.f_only_b;
  add "\n";
  section "Speculation timeline (diagnostic replay)";
  List.iter
    (fun tl ->
      add "  input %d:\n" tl.tl_input;
      if tl.tl_events = [] then add "    (no transient episodes)\n"
      else
        List.iter
          (fun e ->
            add "    %-22s pc=%-3d transient_loads=%-2d sets={%s}\n" e.ev_kind
              e.ev_origin_pc e.ev_transient_loads
              (String.concat "," (List.map string_of_int e.ev_touched_sets)))
          tl.tl_events)
    t.f_timelines;
  add "\n";
  section "Leak localization (surviving fences)";
  (match t.f_leak_region with
  | Some (first, last) ->
      add "  leaking region: instructions %d..%d " first last;
      add "(an LFENCE anywhere in this range kills the violation)\n"
  | None -> add "  no unfenced region recovered\n");
  add "\n%s\n" (String.trim t.f_fenced_asm);
  (match t.f_ucoverage with
  | None -> ()
  | Some u ->
      add "\n";
      section "Campaign coverage atlas at detection";
      add "  %d distinct microarchitectural features covered\n"
        (Ucoverage.distinct u);
      Buffer.add_string buf (Ucoverage.render_kind_table u));
  Buffer.contents buf
