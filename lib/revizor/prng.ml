type t = { mutable s : int64 }

let normalize seed = if seed = 0L then 0x9E3779B97F4A7C15L else seed
let create ~seed = { s = normalize seed }
let copy t = { s = t.s }

let next t =
  let s = t.s in
  let s = Int64.logxor s (Int64.shift_right_logical s 12) in
  let s = Int64.logxor s (Int64.shift_left s 25) in
  let s = Int64.logxor s (Int64.shift_right_logical s 27) in
  t.s <- s;
  Int64.mul s 0x2545F4914F6CDD1DL

let bits t n =
  if n <= 0 then 0L
  else Int64.logand (next t) (Int64.sub (Int64.shift_left 1L (min n 63)) 1L)

let int t n =
  if n <= 0 then invalid_arg "Prng.int";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int n))

let bool t = Int64.logand (next t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let split t = create ~seed:(next t)

(* Checkpoint support: the whole generator is its 64-bit state word, so a
   campaign snapshot can capture and restore the exact stream position.
   [normalize] only remaps 0, which xorshift64* never reaches from a
   nonzero state, so restoring is lossless. *)
let state t = t.s
let of_state s = { s = normalize s }
let set_state t s = t.s <- normalize s

(* The raw xorshift64 state transition (the three shift-xor lines of
   [next] without the output multiply). Exposed so the input-fill fast
   paths can advance the stream without drawing, and as the linear map
   that [jump] exponentiates. *)
let xorshift_step s =
  let s = Int64.logxor s (Int64.shift_right_logical s 12) in
  let s = Int64.logxor s (Int64.shift_left s 25) in
  Int64.logxor s (Int64.shift_right_logical s 27)

(* O(log k) stream jump. The state transition is linear over GF(2) — each
   output bit is a xor of input bits — so advancing k steps is
   multiplication by the k-th power of the 64×64 transition matrix M.
   Matrices are stored column-wise (column j = image of the j-th basis
   state, one int64 per column); applying one costs at most 64 xors, and
   M^(2^i) for i = 0..10 is precomputed lazily by repeated squaring.
   Sparse input fills use this to skip the PRNG over runs of data words
   the test program provably never reads. *)
let apply_mat cols s =
  let acc = ref 0L in
  for j = 0 to 63 do
    if Int64.logand (Int64.shift_right_logical s j) 1L <> 0L then
      acc := Int64.logxor !acc cols.(j)
  done;
  !acc

let jump_mats =
  lazy
    (let m1 = Array.init 64 (fun j -> xorshift_step (Int64.shift_left 1L j)) in
     let square m = Array.map (fun col -> apply_mat m col) m in
     let mats = Array.make 11 m1 in
     for i = 1 to 10 do
       mats.(i) <- square mats.(i - 1)
     done;
     mats)

let jump s ~steps =
  if steps < 0 || steps >= 2048 then invalid_arg "Prng.jump";
  let mats = Lazy.force jump_mats in
  let s = ref s in
  for i = 0 to 10 do
    if steps land (1 lsl i) <> 0 then s := apply_mat mats.(i) !s
  done;
  !s

(* Splitmix64 finalizer: a strong 64-bit bijective mixer. Used to build
   keyed streams — a draw addressed by coordinates rather than by its
   position in a sequential stream — which is what makes the parallel
   executor's noise injection independent of domain count and execution
   order. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let golden = 0x9E3779B97F4A7C15L

let derive key coords =
  let acc =
    List.fold_left
      (fun acc c -> mix64 (Int64.add (Int64.mul acc golden) c))
      (mix64 key) coords
  in
  of_state acc
