type t = { mutable s : int64 }

let normalize seed = if seed = 0L then 0x9E3779B97F4A7C15L else seed
let create ~seed = { s = normalize seed }
let copy t = { s = t.s }

let next t =
  let s = t.s in
  let s = Int64.logxor s (Int64.shift_right_logical s 12) in
  let s = Int64.logxor s (Int64.shift_left s 25) in
  let s = Int64.logxor s (Int64.shift_right_logical s 27) in
  t.s <- s;
  Int64.mul s 0x2545F4914F6CDD1DL

let bits t n =
  if n <= 0 then 0L
  else Int64.logand (next t) (Int64.sub (Int64.shift_left 1L (min n 63)) 1L)

let int t n =
  if n <= 0 then invalid_arg "Prng.int";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int n))

let bool t = Int64.logand (next t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let split t = create ~seed:(next t)

(* Checkpoint support: the whole generator is its 64-bit state word, so a
   campaign snapshot can capture and restore the exact stream position.
   [normalize] only remaps 0, which xorshift64* never reaches from a
   nonzero state, so restoring is lossless. *)
let state t = t.s
let of_state s = { s = normalize s }
let set_state t s = t.s <- normalize s
