open Revizor_isa

(** Persistence of detected violations, mirroring the artifact's results
    directories (§A.5): each violation is stored as an assembly listing of
    the test case, the input seeds of the priming sequence, and a
    human-readable report. Saved test cases can be reloaded and re-checked
    with {!Fuzzer.check_test_case}. *)

val save_violation :
  ?stats:Fuzzer.stats ->
  ?ucoverage:Ucoverage.t ->
  ?metrics:Revizor_obs.Metrics.summary ->
  dir:string ->
  Violation.t ->
  unit
(** Writes [dir/violation.asm], [dir/inputs.txt], [dir/report.txt] and
    [dir/stats.json] (creating [dir] if needed). [stats.json] captures
    the fuzzing statistics at detection time ([stats], omitted as [null]
    when not given), the campaign's microarchitectural coverage atlas
    ([ucoverage], omitted entirely when not given) and a
    metrics-registry snapshot ([metrics], defaulting to a fresh
    {!Revizor_obs.Metrics.snapshot}). *)

val save_stats :
  ?stats:Fuzzer.stats ->
  ?ucoverage:Ucoverage.t ->
  ?metrics:Revizor_obs.Metrics.summary ->
  path:string ->
  unit ->
  unit
(** Write just the [revizor.stats.v1] document to [path] (creating the
    parent directory if needed) — what [revizor fuzz --stats-out] uses
    so compliant campaigns, which never produce a violation directory,
    still leave a stats/coverage artifact for [revizor coverage]. *)

val mkdir_p : string -> unit
(** Recursive directory creation (shared by the artifact writers,
    including the {!Forensics} flight recorder). *)

type saved_stats = {
  stats : Fuzzer.stats option;
  metrics : Revizor_obs.Json.t;  (** as produced by {!Revizor_obs.Metrics.to_json} *)
  ucoverage : Ucoverage.t option;
      (** the coverage atlas, when the file has one (absent in stats
          files written before the atlas existed) *)
}

val load_stats : string -> (saved_stats, string) result
(** Read back a [stats.json]. *)

val load_program : string -> (Program.t, string) result
(** Parse a saved [*.asm] file. *)

val save_inputs : string -> Input.t list -> unit
val load_inputs : string -> (Input.t list, string) result

val input_to_line : Input.t -> string
(** ["seed=0x... entropy=N"]. *)

val input_of_line : string -> (Input.t, string) result
