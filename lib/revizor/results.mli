open Revizor_isa

(** Persistence of detected violations, mirroring the artifact's results
    directories (§A.5): each violation is stored as an assembly listing of
    the test case, the input seeds of the priming sequence, and a
    human-readable report. Saved test cases can be reloaded and re-checked
    with {!Fuzzer.check_test_case}. *)

val save_violation :
  ?stats:Fuzzer.stats ->
  ?metrics:Revizor_obs.Metrics.summary ->
  dir:string ->
  Violation.t ->
  unit
(** Writes [dir/violation.asm], [dir/inputs.txt], [dir/report.txt] and
    [dir/stats.json] (creating [dir] if needed). [stats.json] captures
    the fuzzing statistics at detection time ([stats], omitted as [null]
    when not given) together with a metrics-registry snapshot
    ([metrics], defaulting to a fresh {!Revizor_obs.Metrics.snapshot}). *)

val mkdir_p : string -> unit
(** Recursive directory creation (shared by the artifact writers,
    including the {!Forensics} flight recorder). *)

type saved_stats = {
  stats : Fuzzer.stats option;
  metrics : Revizor_obs.Json.t;  (** as produced by {!Revizor_obs.Metrics.to_json} *)
}

val load_stats : string -> (saved_stats, string) result
(** Read back a [stats.json]. *)

val load_program : string -> (Program.t, string) result
(** Parse a saved [*.asm] file. *)

val save_inputs : string -> Input.t list -> unit
val load_inputs : string -> (Input.t list, string) result

val input_to_line : Input.t -> string
(** ["seed=0x... entropy=N"]. *)

val input_of_line : string -> (Input.t, string) result
