(** Per-test-case watchdogs: step and time budgets for the model stage,
    so a pathological generated program (worst-case nesting blowup,
    divider chains) is skipped and recorded rather than stalling a
    campaign round (DESIGN.md §8).

    The step budget counts every walked instruction, including nested
    speculative re-explorations, and is deterministic — it is on by
    default with a generous ceiling and does not perturb results below
    it. The wall-clock budget is host-dependent and therefore opt-in;
    enabling it trades bit-reproducibility for liveness. *)

exception Pathological of string
(** Raised from inside the model walk when a budget is exhausted; the
    fuzz loop catches it and counts the test case as
    [skipped_pathological]. *)

type t = {
  max_model_steps : int;  (** fuel per contract trace *)
  max_input_millis : int option;  (** wall-clock deadline per trace *)
}

val default : t
(** 50M steps per contract trace, no time budget. *)

val m_skipped : Revizor_obs.Metrics.counter
(** The [watchdog.skipped_pathological] registry counter. *)

(** {1 Model-side plumbing} *)

type fuel

val start : t -> fuel
(** Begin one contract trace's budget. *)

val tick : fuel -> unit
(** Consume one step; raises {!Pathological} on exhaustion. The deadline
    is polled every 65536 steps, so the common path is one decrement. *)
