
(** Pattern coverage (§5.6): the black-box proxy for "did we give the CPU
    opportunities to speculate".

    A pattern is a property of two {e consecutive} instructions in the
    architectural instruction stream: a memory dependency (same address),
    a register or FLAGS dependency, or a control dependency. A pattern is
    {e covered} once a test case whose stream matches it has two inputs in
    the same input class. Combinations of patterns within one test case
    are tracked too; the fuzzer widens the generator configuration when a
    round stops improving combination coverage. *)

type pattern =
  | Store_after_store
  | Load_after_store
  | Store_after_load
  | Load_after_load
  | Reg_dependency
  | Flags_dependency
  | Cond_dependency
  | Uncond_dependency

val all_patterns : pattern list
val pattern_to_string : pattern -> string
val pattern_of_string : string -> pattern option

val patterns_of_stream : Model.step_record list -> pattern list
(** Distinct patterns matched by consecutive instruction pairs. *)

(** Mutable coverage accumulator. *)
type t

val create : unit -> t

val copy : t -> t
(** Snapshot the accumulator (campaign checkpoints store a copy so the
    live one keeps mutating). *)

val to_json : t -> Revizor_obs.Json.t
val of_json : Revizor_obs.Json.t -> (t, string) result
(** Round-trip for checkpoint files: [of_json (to_json t)] covers exactly
    the same patterns and combinations as [t]. *)

val register : t -> patterns:pattern list -> effective:bool -> unit
(** Record one test case's matched patterns. Only test cases with at least
    one multi-input class ([effective]) count as covering (a single input
    cannot form a counterexample). *)

val covered : t -> pattern -> bool
val all_singles_covered : t -> bool

val combinations_covered : t -> k:int -> int
(** Number of distinct covered pattern combinations of size [k]. *)

val total_combinations : t -> int
(** Distinct covered combinations of any size. *)

val pp : Format.formatter -> t -> unit

(** Feedback decision for the fuzzer. *)
val should_grow : t -> previous_combinations:int -> round_length:int -> bool
(** Grow the generator when the round's yield of new covered combinations
    dropped below 20% of its test cases — the diversity of the current
    configuration is exhausted and new speculative paths are unlikely
    (§5.6). *)
