open Revizor_uarch
module Json = Revizor_obs.Json

let schema = "revizor.checkpoint.v1"
let version = 1

(* FNV-1a over the canonical configuration rendering: cheap, stable
   across runs (no Hashtbl.hash involvement), and any change to a field
   that influences the deterministic result stream changes the digest. *)
let fnv1a64 (s : string) =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let subset_names subsets =
  String.concat "+" (List.map Revizor_isa.Catalog.subset_to_string subsets)

(* Canonical rendering of every config field that shapes the result
   stream. [model_domains], [executor_domains] and [pipeline_depth] are
   deliberately absent: pool scheduling is deterministic-by-index and the
   pipelined loop commits in generation order with per-test-case keyed
   noise/fault draws, so results are identical for every pool size and
   overlap depth (asserted by the test suite) and a checkpoint taken with
   [--executor-domains 4] may be resumed with [-j 1] on a smaller
   machine. The noise seed, by contrast, is rendered: keyed draws make it
   part of the deterministic result stream. *)
let canonical (c : Fuzzer.config) =
  let e = c.Fuzzer.executor in
  let g = c.Fuzzer.gen_cfg in
  let w = c.Fuzzer.watchdog in
  Printf.sprintf
    "contract=%s;uarch=%s;threat=%s;warmup=%d;reps=%d;outlier=%d;noise=%s;\
     adaptive=%s;exec_max_steps=%d;reset_between=%b;gen=%d,%d,%d,%d,%d,%s;\
     n_inputs=%d;entropy=%d;round_length=%d;seed=0x%Lx;engine=%s;\
     watchdog=%d,%s"
    (Contract.name c.Fuzzer.contract)
    c.Fuzzer.uarch.Uarch_config.name
    (Attack.threat_to_string e.Executor.threat)
    e.Executor.warmup_rounds e.Executor.measurement_reps e.Executor.outlier_min
    (match e.Executor.noise with
    | None -> "none"
    | Some n ->
        Printf.sprintf "%g@0x%Lx" n.Executor.flip_probability n.Executor.seed)
    (match e.Executor.adaptive with
    | None -> "none"
    | Some a ->
        Printf.sprintf "%g,%d" a.Executor.reject_ratio a.Executor.max_total_reps)
    e.Executor.max_steps e.Executor.reset_between_inputs g.Generator.n_insts
    g.Generator.n_blocks g.Generator.n_functions g.Generator.max_mem_accesses
    g.Generator.mem_pages
    (subset_names g.Generator.subsets)
    c.Fuzzer.n_inputs c.Fuzzer.entropy c.Fuzzer.round_length c.Fuzzer.seed
    (match c.Fuzzer.engine with
    | Fuzzer.Compiled -> "compiled"
    | Fuzzer.Interpreted -> "interpreted")
    w.Watchdog.max_model_steps
    (match w.Watchdog.max_input_millis with
    | None -> "none"
    | Some ms -> string_of_int ms)

let fingerprint c = Printf.sprintf "%016Lx" (fnv1a64 (canonical c))

let gen_cfg_to_json (g : Generator.cfg) =
  Json.Obj
    [
      ("n_insts", Json.Int g.Generator.n_insts);
      ("n_blocks", Json.Int g.Generator.n_blocks);
      ("n_functions", Json.Int g.Generator.n_functions);
      ("max_mem_accesses", Json.Int g.Generator.max_mem_accesses);
      ( "subsets",
        Json.List
          (List.map
             (fun s ->
               Json.String (Revizor_isa.Catalog.subset_to_string s))
             g.Generator.subsets) );
      ("mem_pages", Json.Int g.Generator.mem_pages);
    ]

let gen_cfg_of_json j =
  let ( let* ) = Result.bind in
  let int k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "checkpoint gen_cfg: missing %s" k)
  in
  let* n_insts = int "n_insts" in
  let* n_blocks = int "n_blocks" in
  let* n_functions = int "n_functions" in
  let* max_mem_accesses = int "max_mem_accesses" in
  let* mem_pages = int "mem_pages" in
  let* subsets =
    match Json.member "subsets" j with
    | Some (Json.List ss) ->
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            match Option.map Revizor_isa.Catalog.subset_of_string (Json.to_str s) with
            | Some (Ok sub) -> Ok (sub :: acc)
            | Some (Error e) -> Error e
            | None -> Error "checkpoint gen_cfg: non-string subset")
          (Ok []) ss
        |> Result.map List.rev
    | _ -> Error "checkpoint gen_cfg: missing subsets"
  in
  Ok
    {
      Generator.n_insts;
      n_blocks;
      n_functions;
      max_mem_accesses;
      subsets;
      mem_pages;
    }

let hex64 v = Json.String (Printf.sprintf "0x%Lx" v)

let parse_hex64 = function
  | Json.String s -> (
      match Int64.of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "checkpoint: bad int64 %S" s))
  | _ -> Error "checkpoint: expected hex string"

let to_json config (s : Fuzzer.snapshot) =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("version", Json.Int version);
      ("fingerprint", Json.String (fingerprint config));
      ("prng", hex64 s.Fuzzer.sn_prng);
      ( "noise_prng",
        match s.Fuzzer.sn_noise with None -> Json.Null | Some v -> hex64 v );
      ("gen_cfg", gen_cfg_to_json s.Fuzzer.sn_gen_cfg);
      ("n_inputs", Json.Int s.Fuzzer.sn_n_inputs);
      ("in_round", Json.Int s.Fuzzer.sn_in_round);
      ("combos_at_round_start", Json.Int s.Fuzzer.sn_combos_at_round_start);
      ("stats", Fuzzer.stats_to_json s.Fuzzer.sn_stats);
      ("coverage", Coverage.to_json s.Fuzzer.sn_coverage);
      ("ucoverage", Ucoverage.to_json s.Fuzzer.sn_ucoverage);
    ]

let of_json config j =
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_str with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "checkpoint: unknown schema %S" s)
    | None -> Error "checkpoint: missing schema"
  in
  let* () =
    match Option.bind (Json.member "version" j) Json.to_int with
    | Some v when v = version -> Ok ()
    | Some v -> Error (Printf.sprintf "checkpoint: unsupported version %d" v)
    | None -> Error "checkpoint: missing version"
  in
  let* () =
    match Option.bind (Json.member "fingerprint" j) Json.to_str with
    | Some fp when fp = fingerprint config -> Ok ()
    | Some fp ->
        Error
          (Printf.sprintf
             "checkpoint: config fingerprint mismatch (checkpoint %s, \
              current config %s) — resume with the same configuration it \
              was taken under"
             fp (fingerprint config))
    | None -> Error "checkpoint: missing fingerprint"
  in
  let* sn_prng =
    match Json.member "prng" j with
    | Some v -> parse_hex64 v
    | None -> Error "checkpoint: missing prng"
  in
  let* sn_noise =
    match Json.member "noise_prng" j with
    | None | Some Json.Null -> Ok None
    | Some v -> Result.map Option.some (parse_hex64 v)
  in
  let* sn_gen_cfg =
    match Json.member "gen_cfg" j with
    | Some g -> gen_cfg_of_json g
    | None -> Error "checkpoint: missing gen_cfg"
  in
  let int k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "checkpoint: missing %s" k)
  in
  let* sn_n_inputs = int "n_inputs" in
  let* sn_in_round = int "in_round" in
  let* sn_combos_at_round_start = int "combos_at_round_start" in
  let* sn_stats =
    match Json.member "stats" j with
    | Some s -> Fuzzer.stats_of_json s
    | None -> Error "checkpoint: missing stats"
  in
  let* sn_coverage =
    match Json.member "coverage" j with
    | Some c -> Coverage.of_json c
    | None -> Error "checkpoint: missing coverage"
  in
  (* The atlas section is additive: checkpoints written before it existed
     still load (with an empty atlas), and the checkpoint version stays
     at 1 because the result-bearing state is unchanged. *)
  let* sn_ucoverage =
    match Json.member "ucoverage" j with
    | Some u -> Ucoverage.of_json u
    | None -> Ok (Ucoverage.create ())
  in
  Ok
    {
      Fuzzer.sn_prng;
      sn_noise;
      sn_gen_cfg;
      sn_n_inputs;
      sn_in_round;
      sn_combos_at_round_start;
      sn_stats;
      sn_coverage;
      sn_ucoverage;
    }

let save ~path config snapshot =
  Revizor_obs.Atomic_file.write path
    (Json.to_string_pretty (to_json config snapshot) ^ "\n")

let load ~path config =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error (Printf.sprintf "checkpoint: %s" e)
  | contents -> (
      match Json.parse contents with
      | Error e -> Error (Printf.sprintf "checkpoint: parse error: %s" e)
      | Ok j -> of_json config j)
