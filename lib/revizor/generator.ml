open Revizor_isa
open Revizor_emu

type cfg = {
  n_insts : int;
  n_blocks : int;
  n_functions : int;
  max_mem_accesses : int;
  subsets : Catalog.subset list;
  mem_pages : int;
}

let default_cfg =
  {
    n_insts = 8;
    n_blocks = 2;
    n_functions = 0;
    max_mem_accesses = 2;
    subsets = [ Catalog.AR; Catalog.MEM; Catalog.CB ];
    mem_pages = 1;
  }

(* Growth is capped: unbounded growth makes late rounds of a non-detecting
   campaign arbitrarily slow without improving the speculation surface. *)
let grow cfg =
  let cfg' =
    {
      cfg with
      n_insts = min 48 (cfg.n_insts + 8);
      n_blocks = min 8 (cfg.n_blocks + 1);
      max_mem_accesses = min 12 (cfg.max_mem_accesses + 2);
    }
  in
  if Revizor_obs.Telemetry.enabled () then
    Revizor_obs.Telemetry.event "generator.grow"
      [
        ("n_insts", Revizor_obs.Json.Int cfg'.n_insts);
        ("n_blocks", Revizor_obs.Json.Int cfg'.n_blocks);
        ("max_mem_accesses", Revizor_obs.Json.Int cfg'.max_mem_accesses);
      ];
  cfg'

let has_subset cfg s = List.mem s cfg.subsets

let random_imm prng =
  (* Mostly small values, occasionally a wide one, like nanoBench-based
     generation produces. *)
  if Prng.int prng 8 = 0 then Prng.next prng
  else Int64.of_int (Prng.int prng 65536)

let spec_has_mem (s : Catalog.spec) = List.mem Catalog.KMem s.Catalog.shape

let instantiate prng (spec : Catalog.spec) ~offset =
  let operand pos kind =
    (* width-converting forms read their source at a narrower width *)
    let w =
      match (pos, spec.Catalog.src_width) with
      | 1, Some ws -> ws
      | _ -> spec.Catalog.width
    in
    match kind with
    | Catalog.KReg -> Operand.reg ~w (Prng.choose prng Reg.gen_pool)
    | Catalog.KImm -> Operand.imm64 (random_imm prng)
    | Catalog.KMem -> Operand.sandbox ~w ~disp:offset (Prng.choose prng Reg.gen_pool)
    | Catalog.KCl -> Operand.Reg (Reg.RCX, Width.W8)
  in
  let lock = spec.Catalog.lock_ok && Prng.int prng 8 = 0 in
  Instruction.make ~operands:(List.mapi operand spec.Catalog.shape) ~lock
    spec.Catalog.opcode

(* ------------------------------------------------------------------ *)
(* Raw generation                                                      *)
(* ------------------------------------------------------------------ *)

let body_instruction prng ~all ~offset ~mem_budget ~functions =
  (* A CALL to a leaf function occasionally replaces a body instruction. *)
  if functions <> [] && Prng.int prng 10 = 0 then
    (Instruction.call (Prng.choose prng functions), false)
  else
    let pool =
      if !mem_budget > 0 then all
      else List.filter (fun s -> not (spec_has_mem s)) all
    in
    let pool = if pool = [] then all else pool in
    let spec = Prng.choose prng pool in
    if spec_has_mem spec then decr mem_budget;
    (instantiate prng spec ~offset, spec_has_mem spec)

let block_label i = Printf.sprintf "bb%d" i
let fn_label i = Printf.sprintf "fn%d" i
let exit_label = "exit"

let generate_raw prng cfg =
  let offset = Prng.int prng Layout.cache_line in
  let mem_budget = ref (max 0 cfg.max_mem_accesses) in
  let n_blocks = max 1 cfg.n_blocks in
  let n_functions = if has_subset cfg Catalog.IND then cfg.n_functions else 0 in
  let functions = List.init n_functions fn_label in
  (* Distribute body instructions over main blocks and functions. *)
  let n_units = n_blocks + n_functions in
  let counts = Array.make n_units 0 in
  for _ = 1 to cfg.n_insts do
    let u = Prng.int prng n_units in
    counts.(u) <- counts.(u) + 1
  done;
  let all = Catalog.body_specs cfg.subsets in
  let body u =
    (* function bodies are leaves: no calls from them (keeps the static
       call graph forward-only) *)
    let callable = if u < n_blocks then functions else [] in
    List.init counts.(u) (fun _ ->
        fst (body_instruction prng ~all ~offset ~mem_budget ~functions:callable))
  in
  let needs_exit = n_functions > 0 in
  let terminator i =
    (* Last main block: jump over the functions if there are any. *)
    if i = n_blocks - 1 then if needs_exit then [ Instruction.jmp exit_label ] else []
    else
      let candidates = List.init (n_blocks - 1 - i) (fun k -> i + 1 + k) in
      let far = block_label (Prng.choose prng candidates) in
      if has_subset cfg Catalog.CB && Prng.int prng 10 < 6 then
        [ Instruction.jcc (Prng.choose prng Cond.all) far ]
      else if Prng.bool prng then [ Instruction.jmp far ]
      else []
  in
  let main_blocks =
    List.init n_blocks (fun i ->
        Program.block (block_label i) (body i @ terminator i))
  in
  let fn_blocks =
    List.init n_functions (fun k ->
        Program.block (fn_label k) (body (n_blocks + k) @ [ Instruction.ret ]))
  in
  let exit_blocks = if needs_exit then [ Program.block exit_label [] ] else [] in
  Program.make (main_blocks @ fn_blocks @ exit_blocks)

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

let mask_for cfg =
  if cfg.mem_pages >= 2 then Layout.line_mask_two_pages
  else Layout.line_mask_one_page

let masking_prefix cfg (i : Instruction.t) =
  match Instruction.mem_operand i with
  | Some ({ Operand.index = Some r; _ }, _) when not (Reg.equal r Reg.sandbox_base)
    ->
      [ Instruction.binop Opcode.And (Operand.reg r) (Operand.imm64 (mask_for cfg)) ]
  | Some _ | None -> []

(* A register divisor must not be RDX: RDX is the high half of the
   dividend, and any value that makes it a nonzero divisor also makes the
   quotient overflow. The instrumentation substitutes RBX. *)
let fix_rdx_divisor (i : Instruction.t) =
  match (i.Instruction.opcode, i.Instruction.operands) with
  | (Opcode.Div | Opcode.Idiv), [ Operand.Reg (Reg.RDX, w) ] ->
      { i with Instruction.operands = [ Operand.Reg (Reg.RBX, w) ] }
  | _ -> i

let division_prefix (i : Instruction.t) =
  match (i.Instruction.opcode, i.Instruction.operands) with
  | (Opcode.Div | Opcode.Idiv), [ divisor ] ->
      let w =
        match Operand.width divisor with Some w -> w | None -> Width.W64
      in
      let zero_rdx =
        Instruction.mov (Operand.reg ~w Reg.RDX) (Operand.imm 0)
      in
      let halve_rax =
        if i.Instruction.opcode = Opcode.Idiv then
          [ Instruction.binop Opcode.Shr (Operand.reg ~w Reg.RAX) (Operand.imm 1) ]
        else []
      in
      let odd_divisor = Instruction.binop Opcode.Or divisor (Operand.imm 1) in
      (zero_rdx :: halve_rax) @ [ odd_divisor ]
  | _ -> []

let instrument cfg prog =
  Program.map_insts
    (fun i ->
      match i.Instruction.opcode with
      | Opcode.Div | Opcode.Idiv ->
          let i = fix_rdx_divisor i in
          masking_prefix cfg i @ division_prefix i @ [ i ]
      | _ -> masking_prefix cfg i @ [ i ])
    prog

let generate prng cfg =
  let prog = instrument cfg (generate_raw prng cfg) in
  match Program.validate prog with
  | Ok () -> prog
  | Error msg -> invalid_arg ("Generator.generate produced invalid program: " ^ msg)
