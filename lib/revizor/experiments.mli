(** Drivers for every experiment of the paper's evaluation (§6 and the
    artifact appendix). The benchmark executable and the CLI print these
    results; the integration tests assert their shape against the paper's
    Table 3/4/5 expectations. All drivers are deterministic in their
    seeds. *)

val check_gadget :
  ?seed:int64 ->
  ?n_inputs:int ->
  ?attempts:int ->
  Contract.t ->
  Target.t ->
  Gadgets.t ->
  Violation.t option
(** Run the full per-test-case pipeline on a hand-written gadget,
    sampling up to [attempts] (default 3) deterministic input sequences
    before concluding compliance. *)

(** {1 Table 3 — contract violations per target} *)

type t3_outcome =
  | Detected of { label : string; test_cases : int }
  | Not_detected of { test_cases : int }
  | Skipped  (** a stronger contract was already satisfied (the ×* cells) *)
  | Gadget_demo of { label : string }
      (** the "-var" leaks are too rare for random discovery within a small
          budget (the paper's artifact notes the same); the mechanism is
          demonstrated on the §6.3 gadget instead *)

type t3_cell = {
  target : Target.t;
  contract : Contract.t;
  outcome : t3_outcome;
  paper : string;  (** what the paper's Table 3 reports for this cell *)
}

val table3 : ?budget:int -> ?seed:int64 -> unit -> t3_cell list
(** All 8 × 4 cells, fuzzing each for at most [budget] test cases
    (default 400). *)

(** {1 Table 4 — detection time} *)

type t4_cell = {
  row : string;  (** contract-permitted leakage: "None" / "V4" / "V1" *)
  column : string;  (** leak to detect: "V4" / "V1" / "MDS" / "LVI" *)
  detected : int;  (** runs (out of [runs]) that found the violation *)
  mean_test_cases : float;
  mean_seconds : float;
  cov : float;  (** coefficient of variation of the detection time *)
}

val table4 :
  ?runs:int -> ?budget:int -> ?seed:int64 -> unit -> t4_cell option list
(** The 12 cells of Table 4 in row-major order ([None] for the two N/A
    cells). Default 10 runs per cell, as in the paper. *)

(** {1 Table 5 — inputs to violation on hand-written gadgets} *)

type t5_row = {
  gadget : Gadgets.t;
  runs : int;
  found : int;
  mean_inputs : float;
  median_inputs : int;
  min_inputs : int;
  max_inputs : int;
}

val table5 : ?runs:int -> ?max_inputs:int -> ?seed:int64 -> unit -> t5_row list

val minimal_inputs :
  ?max_inputs:int -> seed:int64 -> Contract.t -> Target.t -> Gadgets.t ->
  int option
(** Smallest prefix of a random input sequence that surfaces a violation. *)

(** {1 §6.4 — speculative-store-eviction assumption} *)

type store_eviction_result = {
  cpu_name : string;
  violated : bool;
  label : string option;
}

val store_eviction_check : ?seed:int64 -> unit -> store_eviction_result list
(** The §6.4 gadget against CT-COND(noSpecStore) on Skylake and Coffee
    Lake under plain Prime+Probe. *)

(** {1 §6.6 — contract sensitivity (STT)} *)

val contract_sensitivity :
  ?seed:int64 -> unit -> (string * string * bool) list
(** (gadget, contract, violated) for Fig. 6a/6b × CT-SEQ/ARCH-SEQ. *)

(** {1 §A.5.3 — fuzzing throughput} *)

type throughput = {
  seconds : float;
  test_cases : int;
  inputs : int;
  cases_per_hour : float;
}

val throughput :
  ?seconds:float -> ?seed:int64 -> ?executor_domains:int -> unit -> throughput
(** Fuzz a non-detecting configuration (Target 1 × CT-SEQ) and report the
    processing rate. [executor_domains] (default 1, the sequential loop)
    selects the pipelined whole-pipeline pool; results are bit-identical
    for every value, so the knob only moves the rate. *)

(** {1 Port-contention channel (extension, §7 future work)} *)

val port_channel_demo : ?seed:int64 -> unit -> (string * string * bool) list
(** (gadget, channel, violated): the memory-free V1 gadget is invisible to
    Prime+Probe but detected by the port-contention channel. *)

(** {1 Ablations (DESIGN.md §5)} *)

type ablation = {
  name : string;
  with_feature : string;  (** outcome with the design feature enabled *)
  without_feature : string;  (** outcome with it disabled *)
  conclusion : string;
}

val ablation_priming : ?seed:int64 -> unit -> ablation
(** Priming vs cold microarchitectural state per input (V1 detection). *)

val ablation_entropy : ?seed:int64 -> unit -> (int * float) list
(** Input-entropy bits vs input effectiveness (fraction of inputs in
    multi-member classes), on generated test cases. *)

val ablation_noise_filtering : ?seed:int64 -> unit -> ablation
(** Trace union + outlier discard vs single noisy measurement: false
    violations on a compliant target under injected noise. *)

val ablation_equivalence : ?seed:int64 -> unit -> ablation
(** Subset-relation vs strict trace equality: false positives from
    inconsistent speculation (V1 gadget under CT-COND). *)

val ablation_swap_check : ?seed:int64 -> unit -> ablation
(** The priming swap check vs none: a purely context-dependent divergence
    must be dismissed. *)

val ablation_feedback : ?seed:int64 -> unit -> ablation
(** Diversity-guided growth vs fixed-size generation: detection when the
    initial configuration is too small to express the leak. *)

val ablation_speculation_window : ?seed:int64 -> unit -> (int * bool) list
(** Contract speculation window vs. violation of CT-COND by the V1 gadget:
    a window shorter than the hardware's transient reach makes even a
    COND contract report violations, because the model under-approximates
    the permitted leakage (footnote 3 of the paper sizes the window to
    the ROB for this reason). *)
