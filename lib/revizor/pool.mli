(** A small reusable pool of OCaml 5 domains for intra-test-case
    parallelism (the contract traces of a test case's N inputs are
    independent, so the model stage fans them out across idle cores while
    the executor stage — whose priming sequence is order-dependent — stays
    sequential).

    A pool of size [n] spawns [n - 1] worker domains; the caller's domain
    participates in every {!map_array}, so [create 1] spawns nothing and
    behaves exactly like sequential execution. Pools are cheap to keep
    around and are meant to live for a whole fuzzing campaign; call
    {!shutdown} when done.

    The pool is {e supervised} (DESIGN.md §8): a participant crashing in
    the pool harness (exercised deterministically by the [pool.worker]
    fault point) parks its claimed item for the submitting domain to
    retry, so {!map_array} still returns the full, bit-identical result.
    After [max_failures] crashes the pool permanently degrades to
    sequential execution — surfaced as the [pool.degradations] metrics
    counter and a [pool.degraded] telemetry event, never as a campaign
    abort. *)

type t

val create : ?max_failures:int -> int -> t
(** [create n] starts a pool of parallelism [n] (clamped to at least 1),
    spawning [n - 1] worker domains. [max_failures] (default 8, clamped
    to at least 1) bounds worker crashes before the pool degrades to
    sequential. *)

val size : t -> int

val failures : t -> int
(** Worker crashes recorded over the pool's lifetime. *)

val is_degraded : t -> bool
(** [true] once the pool has fallen back to sequential execution. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array p f arr] computes [Array.map f arr] with the elements
    distributed over the pool's domains. Results are placed by index, so
    the output is identical to the sequential map regardless of pool size
    (provided [f] is pure up to its index). If [f] raises on some element,
    the first such exception (in index order) is re-raised after all
    elements have been attempted. Worker crashes are supervised: parked
    items are retried on the submitting domain. Do not call concurrently
    from multiple domains on the same pool. *)

(** {1 Futures}

    Whole-task parallelism for the pipelined fuzz loop: where
    {!map_array} fans one array out and barriers, futures let the
    submitting domain keep several independent tasks (whole test cases)
    in flight and collect them in its own order. *)

type 'a future

val spawn : t -> (unit -> 'a) -> 'a future
(** Queue [task] for a pool domain and return its future. On a pool of
    size 1 — or one degraded to sequential — the task runs inline before
    [spawn] returns. A task exception is captured and re-raised by
    {!await}, never killing a worker. An injected [pool.worker] crash on
    the task is recorded (counting toward degradation) and the task then
    runs anyway: supervised futures always complete. *)

val await : t -> 'a future -> 'a
(** Block until the future completes and return its value (re-raising
    the task's exception). While the result is pending, the awaiting
    domain {e helps}: it drains other queued tasks instead of idling, so
    every domain including the submitter does pipeline work. Awaiting
    the same future twice returns the same result. *)

val poll : 'a future -> bool
(** [true] once {!await} would return without blocking. *)

val shutdown : t -> unit
(** Join the worker domains. The pool must not be used afterwards;
    idempotent. *)
