open Revizor_isa

(* All result artifacts go through the shared write-tmp-then-rename
   helper: a crash (or injected writer fault) mid-write never leaves a
   torn file where a previous good one stood. *)
let write_file path contents = Revizor_obs.Atomic_file.write path contents

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let input_to_line (i : Input.t) =
  Printf.sprintf "seed=0x%Lx entropy=%d" i.Input.seed i.Input.entropy

let input_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ seed_part; entropy_part ] -> (
      let strip prefix s =
        if String.length s > String.length prefix
           && String.sub s 0 (String.length prefix) = prefix
        then Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
        else None
      in
      match (strip "seed=" seed_part, strip "entropy=" entropy_part) with
      | Some seed_s, Some entropy_s -> (
          match (Int64.of_string_opt seed_s, int_of_string_opt entropy_s) with
          | Some seed, Some entropy -> Ok { Input.seed; entropy }
          | _ -> Error (Printf.sprintf "malformed input line %S" line))
      | _ -> Error (Printf.sprintf "malformed input line %S" line))
  | _ -> Error (Printf.sprintf "malformed input line %S" line)

let save_inputs path inputs =
  write_file path
    (String.concat "\n" (List.map input_to_line inputs) ^ "\n")

let load_inputs path =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then collect acc rest
        else (
          match input_of_line line with
          | Ok i -> collect (i :: acc) rest
          | Error e -> Error e)
  in
  match read_file path with
  | contents -> collect [] (String.split_on_char '\n' contents)
  | exception Sys_error e -> Error e

let load_program path =
  match read_file path with
  | contents -> Asm_parser.parse_program contents
  | exception Sys_error e -> Error e

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

module Json = Revizor_obs.Json

type saved_stats = {
  stats : Fuzzer.stats option;
  metrics : Json.t;
  ucoverage : Ucoverage.t option;
}

let stats_json ?stats ?ucoverage ~metrics () =
  Json.Obj
    ([
       ("schema", Json.String "revizor.stats.v1");
       ( "stats",
         match stats with Some s -> Fuzzer.stats_to_json s | None -> Json.Null
       );
       ("metrics", Revizor_obs.Metrics.to_json metrics);
     ]
    @
    match ucoverage with
    | Some u -> [ ("ucoverage", Ucoverage.to_json u) ]
    | None -> [])

let save_stats ?stats ?ucoverage ?metrics ~path () =
  let metrics =
    match metrics with Some m -> m | None -> Revizor_obs.Metrics.snapshot ()
  in
  mkdir_p (Filename.dirname path);
  write_file path
    (Json.to_string_pretty (stats_json ?stats ?ucoverage ~metrics ()) ^ "\n")

let save_violation ?stats ?ucoverage ?metrics ~dir (v : Violation.t) =
  mkdir_p dir;
  write_file
    (Filename.concat dir "violation.asm")
    (Program.to_string v.Violation.program ^ "\n");
  save_inputs (Filename.concat dir "inputs.txt") v.Violation.inputs;
  write_file
    (Filename.concat dir "report.txt")
    (Format.asprintf "%a@." Violation.pp v);
  save_stats ?stats ?ucoverage ?metrics
    ~path:(Filename.concat dir "stats.json")
    ()

let load_stats path =
  match read_file path with
  | exception Sys_error e -> Error e
  | contents -> (
      match Json.parse contents with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j -> (
          let metrics = Option.value (Json.member "metrics" j) ~default:Json.Null in
          let ucoverage =
            (* Additive section: stats files from before the atlas existed
               load with [None]; a malformed section is an error, not a
               silent [None]. *)
            match Json.member "ucoverage" j with
            | None | Some Json.Null -> Ok None
            | Some u -> Result.map Option.some (Ucoverage.of_json u)
          in
          match ucoverage with
          | Error e -> Error (Printf.sprintf "%s: %s" path e)
          | Ok ucoverage -> (
              match Json.member "stats" j with
              | None -> Error (Printf.sprintf "%s: missing stats key" path)
              | Some Json.Null -> Ok { stats = None; metrics; ucoverage }
              | Some sj -> (
                  match Fuzzer.stats_of_json sj with
                  | Ok s -> Ok { stats = Some s; metrics; ucoverage }
                  | Error e -> Error (Printf.sprintf "%s: %s" path e)))))
