open Revizor_emu

(** Test-case inputs: the architectural state a measurement starts from —
    registers, FLAGS and the memory sandbox (§5.2).

    An input is represented by its PRNG seed plus the entropy mask width;
    the concrete state is derived deterministically. Low entropy
    (2–4 bits) is the paper's lever for input effectiveness (CH2): fewer
    distinct values make colliding contract traces likelier. Derived
    values are shifted into the cache-line-index bits so that masked
    addressing maps different values to different cache lines. *)

type t = { seed : int64; entropy : int }

val generate : Prng.t -> entropy:int -> t
val generate_many : Prng.t -> entropy:int -> n:int -> t list

val apply :
  ?data_hi_zero:bool -> ?data_mid_zero:bool -> ?plan:int array -> t ->
  State.t -> unit
(** Overwrite registers (generator pool), FLAGS and sandbox memory.
    [~data_hi_zero:true] (default [false]) asserts that bytes 4..7 of
    every data word in [state] are already zero — true for fresh states
    and for states only ever filled by [apply] — letting the fill skip
    the redundant zero stores (half the writes of the 8 KiB fill).
    [~data_mid_zero:true] makes the same assertion for bytes 2..3 (the
    fill only writes them nonzero when [entropy > 10]).

    [plan] restricts the data fill to the listed words (ascending), each
    receiving exactly the bytes the full fill would have written — the
    PRNG stream is jumped over the gaps, not re-keyed. Sound only for a
    plan from {!fill_plan} covering every program that will read the
    state: unlisted words keep whatever a previous fill left there. *)

val fill_plan : Revizor_isa.Program.flat -> int array option
(** The sorted set of data words the program can read — architecturally
    or speculatively — derived from the program text alone ([None] when
    unprovable, e.g. CALL/RET/indirect jumps or an access not covered by
    an adjacent masking [AND]). Filling only these words (plus the last
    data word, which seeds the executor's fill-buffer model and is always
    included) is observation-equivalent to the full fill: for a
    mask-instrumented straight-line/branching program the reachable
    addresses of each access are exactly the submasks of its AND mask
    plus displacement, on speculative paths included. Typically a few
    dozen words out of 1024, and empty-but-one for programs with no
    memory operands — the main lever that makes input materialization
    O(program footprint) instead of O(sandbox size). *)

val to_state : t -> State.t
(** Fresh architectural state initialized from the input. *)

val templates : t list -> State.t array
(** Materialize each input's state once, indexed like the list. The model
    and executor restore these templates into scratch states with
    {!State.copy_into} (a flat blit) instead of regenerating the PRNG
    stream for every warm-up round, measurement repetition and swap-check
    re-measurement. Templates must not be mutated by callers. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
