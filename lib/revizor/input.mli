open Revizor_emu

(** Test-case inputs: the architectural state a measurement starts from —
    registers, FLAGS and the memory sandbox (§5.2).

    An input is represented by its PRNG seed plus the entropy mask width;
    the concrete state is derived deterministically. Low entropy
    (2–4 bits) is the paper's lever for input effectiveness (CH2): fewer
    distinct values make colliding contract traces likelier. Derived
    values are shifted into the cache-line-index bits so that masked
    addressing maps different values to different cache lines. *)

type t = { seed : int64; entropy : int }

val generate : Prng.t -> entropy:int -> t
val generate_many : Prng.t -> entropy:int -> n:int -> t list

val apply : ?data_hi_zero:bool -> t -> State.t -> unit
(** Overwrite registers (generator pool), FLAGS and sandbox memory.
    [~data_hi_zero:true] (default [false]) asserts that bytes 4..7 of
    every data word in [state] are already zero — true for fresh states
    and for states only ever filled by [apply] — letting the fill skip
    the redundant zero stores (half the writes of the 8 KiB fill). *)

val to_state : t -> State.t
(** Fresh architectural state initialized from the input. *)

val templates : t list -> State.t array
(** Materialize each input's state once, indexed like the list. The model
    and executor restore these templates into scratch states with
    {!State.copy_into} (a flat blit) instead of regenerating the PRNG
    stream for every warm-up round, measurement repetition and swap-check
    re-measurement. Templates must not be mutated by callers. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
