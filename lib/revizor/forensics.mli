(** Violation flight recorder (DESIGN.md §7).

    A detected violation already gets [violation.asm] / [inputs.txt] /
    [report.txt] from {!Results.save_violation}; the flight recorder
    adds the {e why}: one self-contained [forensics.json] holding the
    program listing, the violating input pair, the contract trace the
    inputs shared, the diverging hardware traces with their symmetric
    difference, the full speculation-event timeline of a diagnostic
    replay (every transient episode with its mechanism, origin PC,
    transient-load count and touched cache sets), and the
    fence-localized leaking region of the original listing. The capture
    runs {e after} the campaign on a dedicated CPU/executor, so fuzzing
    outcomes are bit-identical with the recorder on or off. *)

(** One speculation episode of the diagnostic replay, in execution
    order. *)
type event = {
  ev_kind : string;  (** {!Revizor_uarch.Cpu.kind_to_string} name *)
  ev_origin_pc : int;
  ev_transient_loads : int;
  ev_touched_sets : int list;
}

(** The episodes one input's replay produced. *)
type timeline = { tl_input : int; tl_events : event list }

type t = {
  f_label : string;  (** the violation's vulnerability label *)
  f_program_asm : string;
  f_index_a : int;
  f_index_b : int;  (** violating pair, indices into [f_inputs] *)
  f_inputs : Input.t list;  (** the full priming sequence *)
  f_ctrace : string;  (** the shared contract trace, rendered *)
  f_htrace_a : int list;
  f_htrace_b : int list;
  f_only_a : int list;  (** observations in A's htrace but not B's *)
  f_only_b : int list;
  f_timelines : timeline list;  (** for [f_index_a] and [f_index_b] *)
  f_fenced_asm : string;  (** original listing with surviving LFENCEs *)
  f_fence_positions : int list;
      (** instruction indices after which an LFENCE survived *)
  f_leak_region : (int * int) option;
      (** first/last unfenced instruction index — the leaking region *)
  f_ucoverage : Ucoverage.t option;
      (** snapshot of the campaign's microarchitectural coverage atlas at
          detection time — how broadly the campaign had exercised the
          CPU's speculation machinery before this violation surfaced *)
}

val capture : ?ucoverage:Ucoverage.t -> Fuzzer.config -> Violation.t -> t
(** Build the artifact: compile the violation's program, replay the
    priming sequence once on a fresh noise-free CPU/executor recording
    the complete speculation-event log ({!Executor.record_events}),
    and fence-localize the leak on the original listing
    ({!Postprocessor.fence_localize}). Deterministic for a given
    violation and config. [ucoverage] embeds a copy of the campaign's
    coverage atlas in the artifact. *)

val to_json : t -> Revizor_obs.Json.t
(** Schema ["revizor.forensics.v1"]. *)

val of_json : Revizor_obs.Json.t -> (t, string) result

val save : dir:string -> t -> unit
(** Write [dir/forensics.json] (atomically, like the other result
    artifacts), creating [dir] if needed. *)

val file : dir:string -> string
(** [dir/forensics.json]. *)

val load : string -> (t, string) result

val render : t -> string
(** Human-readable multi-section report — what [revizor forensics show]
    prints. *)
