open Revizor_uarch
module Metrics = Revizor_obs.Metrics

(* Distribution telemetry: how many observations a hardware trace
   carries (htrace density) and how the inputs partition into contract
   classes (class sizes, singletons included). Both are deterministic
   per seed, so they participate in the snapshot-determinism tests. *)
let h_class_size = Metrics.histogram "analyzer.class_size"
let m_partitions = Metrics.counter "analyzer.partitions"
let m_classes = Metrics.counter "analyzer.classes"
let h_htrace_density = Metrics.histogram "analyzer.htrace_density"

let record_htraces htraces =
  Array.iter (fun h -> Metrics.observe h_htrace_density (Htrace.cardinal h)) htraces

type input_class = { ctrace : Ctrace.t; members : int list }

type candidate = {
  cls : input_class;
  index_a : int;
  index_b : int;
  htrace_a : Htrace.t;
  htrace_b : Htrace.t;
}

(* Mutable accumulator: members are consed in reverse and the bucket is
   never rebuilt — one hash lookup and one cons per input. *)
type acc = { a_ctrace : Ctrace.t; mutable rev_members : int list }

let input_classes ctraces =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Array.iteri
    (fun idx ct ->
      let key = Ctrace.hash ct in
      let bucket = try Hashtbl.find tbl key with Not_found -> [] in
      (* Hash collisions are resolved by trace equality. *)
      match List.find_opt (fun a -> Ctrace.equal a.a_ctrace ct) bucket with
      | Some a -> a.rev_members <- idx :: a.rev_members
      | None ->
          let a = { a_ctrace = ct; rev_members = [ idx ] } in
          Hashtbl.replace tbl key (a :: bucket);
          order := a :: !order)
    ctraces;
  Metrics.incr m_partitions;
  List.filter_map
    (fun a ->
      Metrics.incr m_classes;
      Metrics.observe h_class_size (List.length a.rev_members);
      match a.rev_members with
      | [] | [ _ ] -> None
      | ms -> Some { ctrace = a.a_ctrace; members = List.rev ms })
    (List.rev !order)

let effective_inputs classes =
  List.fold_left (fun acc c -> acc + List.length c.members) 0 classes

(* Linear-time screen for the all-pairs scan below. Pairwise
   comparability of a finite family of bitsets is equivalent to the
   family forming a subset chain: sort by cardinality and check adjacent
   inclusions (an adjacent non-inclusion with |a| <= |b| is itself an
   incomparable pair, and a full chain makes every pair comparable by
   transitivity). On a compliant target every class passes, so the
   common case costs O(k log k) instead of the O(k^2) pair scan — with
   low-entropy inputs one class can hold most of the input set. *)
let class_is_chain cls htraces equivalence =
  match cls.members with
  | [] | [ _ ] -> true
  | m0 :: _ as ms -> (
      match equivalence with
      | `Equal ->
          let h0 = htraces.(m0) in
          List.for_all (fun i -> Htrace.equal htraces.(i) h0) ms
      | `Subset ->
          let arr = Array.of_list (List.map (fun i -> htraces.(i)) ms) in
          Array.sort
            (fun a b -> Int.compare (Htrace.cardinal a) (Htrace.cardinal b))
            arr;
          let ok = ref true in
          for k = 0 to Array.length arr - 2 do
            if not (Htrace.subset arr.(k) arr.(k + 1)) then ok := false
          done;
          !ok)

let check_class ?(equivalence = `Subset) ?(excluding = []) cls htraces =
  let equivalent a b =
    match equivalence with
    | `Subset -> Htrace.comparable a b
    | `Equal -> Htrace.equal a b
  in
  let excluded =
    (* the common case is no exclusions; skip the per-pair tuple then *)
    match excluding with
    | [] -> fun _ _ -> false
    | ex -> fun a b -> List.mem (a, b) ex || List.mem (b, a) ex
  in
  (* The chain screen only ever skips scans that would return [None]; an
     exclusion list means some pair must be ignored, so the screen (which
     knows nothing of exclusions) stays off and the scan preserves the
     historical pair-selection order exactly. *)
  if excluding = [] && class_is_chain cls htraces equivalence then None
  else
    let rec pairs = function
      | [] -> None
      | a :: rest -> (
          match
            List.find_opt
              (fun b ->
                (not (excluded a b)) && not (equivalent htraces.(a) htraces.(b)))
              rest
          with
          | Some b -> Some (a, b)
          | None -> pairs rest)
    in
    pairs cls.members

let find_violation ?equivalence ?excluding classes htraces =
  List.find_map
    (fun cls ->
      match check_class ?equivalence ?excluding cls htraces with
      | Some (a, b) ->
          Some
            {
              cls;
              index_a = a;
              index_b = b;
              htrace_a = htraces.(a);
              htrace_b = htraces.(b);
            }
      | None -> None)
    classes

let pp_candidate fmt c =
  Format.fprintf fmt
    "@[<v>inputs #%d vs #%d@,ctrace: %a@,htrace A: %a@,htrace B: %a@]" c.index_a
    c.index_b Ctrace.pp c.cls.ctrace Htrace.pp c.htrace_a Htrace.pp c.htrace_b
