open Revizor_uarch
module Metrics = Revizor_obs.Metrics

(* Distribution telemetry: how many observations a hardware trace
   carries (htrace density) and how the inputs partition into contract
   classes (class sizes, singletons included). Both are deterministic
   per seed, so they participate in the snapshot-determinism tests. *)
let h_class_size = Metrics.histogram "analyzer.class_size"
let m_partitions = Metrics.counter "analyzer.partitions"
let m_classes = Metrics.counter "analyzer.classes"
let h_htrace_density = Metrics.histogram "analyzer.htrace_density"

let record_htraces htraces =
  Array.iter (fun h -> Metrics.observe h_htrace_density (Htrace.cardinal h)) htraces

type input_class = { ctrace : Ctrace.t; members : int list }

type candidate = {
  cls : input_class;
  index_a : int;
  index_b : int;
  htrace_a : Htrace.t;
  htrace_b : Htrace.t;
}

(* Mutable accumulator: members are consed in reverse and the bucket is
   never rebuilt — one hash lookup and one cons per input. *)
type acc = { a_ctrace : Ctrace.t; mutable rev_members : int list }

let input_classes ctraces =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Array.iteri
    (fun idx ct ->
      let key = Ctrace.hash ct in
      let bucket = try Hashtbl.find tbl key with Not_found -> [] in
      (* Hash collisions are resolved by trace equality. *)
      match List.find_opt (fun a -> Ctrace.equal a.a_ctrace ct) bucket with
      | Some a -> a.rev_members <- idx :: a.rev_members
      | None ->
          let a = { a_ctrace = ct; rev_members = [ idx ] } in
          Hashtbl.replace tbl key (a :: bucket);
          order := a :: !order)
    ctraces;
  Metrics.incr m_partitions;
  List.filter_map
    (fun a ->
      Metrics.incr m_classes;
      Metrics.observe h_class_size (List.length a.rev_members);
      match a.rev_members with
      | [] | [ _ ] -> None
      | ms -> Some { ctrace = a.a_ctrace; members = List.rev ms })
    (List.rev !order)

let effective_inputs classes =
  List.fold_left (fun acc c -> acc + List.length c.members) 0 classes

let check_class ?(equivalence = `Subset) ?(excluding = []) cls htraces =
  let equivalent a b =
    match equivalence with
    | `Subset -> Htrace.comparable a b
    | `Equal -> Htrace.equal a b
  in
  let excluded a b = List.mem (a, b) excluding || List.mem (b, a) excluding in
  let rec pairs = function
    | [] -> None
    | a :: rest -> (
        match
          List.find_opt
            (fun b -> (not (excluded a b)) && not (equivalent htraces.(a) htraces.(b)))
            rest
        with
        | Some b -> Some (a, b)
        | None -> pairs rest)
  in
  pairs cls.members

let find_violation ?equivalence ?excluding classes htraces =
  List.find_map
    (fun cls ->
      match check_class ?equivalence ?excluding cls htraces with
      | Some (a, b) ->
          Some
            {
              cls;
              index_a = a;
              index_b = b;
              htrace_a = htraces.(a);
              htrace_b = htraces.(b);
            }
      | None -> None)
    classes

let pp_candidate fmt c =
  Format.fprintf fmt
    "@[<v>inputs #%d vs #%d@,ctrace: %a@,htrace A: %a@,htrace B: %a@]" c.index_a
    c.index_b Ctrace.pp c.cls.ctrace Htrace.pp c.htrace_a Htrace.pp c.htrace_b
