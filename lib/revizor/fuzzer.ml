open Revizor_isa
open Revizor_uarch
module Metrics = Revizor_obs.Metrics
module Probe = Revizor_obs.Probe
module Telemetry = Revizor_obs.Telemetry
module Json = Revizor_obs.Json
module Monitor = Revizor_obs.Monitor

(* Per-stage probes (§"Observability", DESIGN.md §7): each names a
   [stage.<name>.*] metric triple and emits a JSONL span when the
   telemetry sink is enabled. Together the stages account for the
   pipeline's wall time, so the dashboards and the bench stage-breakdown
   table are computed from these. *)
let sp_generate = Probe.create "generate"
let sp_checkpoint = Probe.create "checkpoint"
let sp_compile = Probe.create "compile"
let sp_materialize = Probe.create "materialize"
let sp_model = Probe.create "model"
let sp_execute = Probe.create "execute"
let sp_analyze = Probe.create "analyze"
let sp_swap_check = Probe.create "swap_check"
let sp_nesting = Probe.create "nesting_recheck"

(* The sequential loop's inter-stage residual: per-iteration wall time
   not covered by any stage span above (input-list generation, stats and
   coverage bookkeeping, GC pauses landing between stages). Attributed
   via [Probe.add_ns] so the stage breakdown accounts for ≥95% of the
   campaign's wall time by construction. Not recorded by the pipelined
   loop, whose stage spans overlap across domains (their sum is
   cross-domain work, not main-thread wall time). *)
let sp_loop_other = Probe.create "loop.other"

let stage_probes =
  [
    sp_generate; sp_checkpoint; sp_compile; sp_materialize; sp_model;
    sp_execute; sp_analyze; sp_swap_check; sp_nesting;
  ]

let stages_total_ns () =
  List.fold_left (fun acc p -> acc + Probe.time_ns p) 0 stage_probes

(* Registry mirrors of [stats]: same totals, but process-wide (parallel
   campaigns sum into them) and snapshotable mid-run by dashboards. *)
let m_test_cases = Metrics.counter "fuzzer.test_cases"
let m_inputs_tested = Metrics.counter "fuzzer.inputs_tested"
let m_effective = Metrics.counter "fuzzer.effective_inputs"
let m_ineffective_tc = Metrics.counter "fuzzer.ineffective_test_cases"
let m_faulted = Metrics.counter "fuzzer.faulted_test_cases"
let m_candidates = Metrics.counter "fuzzer.candidates"
let m_dismissed_swap = Metrics.counter "fuzzer.dismissed_by_swap"
let m_dismissed_nesting = Metrics.counter "fuzzer.dismissed_by_nesting"
let m_rounds = Metrics.counter "fuzzer.rounds"
let m_growths = Metrics.counter "fuzzer.growths"
let m_absorbed = Metrics.counter "fault.absorbed"
let m_checkpoints = Metrics.counter "fuzzer.checkpoints"
let g_n_insts = Metrics.gauge "gen.n_insts"
let g_n_blocks = Metrics.gauge "gen.n_blocks"
let g_max_mem = Metrics.gauge "gen.max_mem_accesses"
let g_n_inputs = Metrics.gauge "gen.n_inputs"
let g_elapsed = Metrics.gauge "fuzzer.elapsed_s"

(* Runtime-health gauges, sampled at round boundaries (and once at
   campaign start): cheap [Gc.quick_stat] reads, so dashboards and the
   monitor endpoint can watch allocator pressure without the campaign
   paying for a full heap walk. Gauges, not counters: they mirror the
   runtime's own cumulative numbers. *)
let g_gc_minor = Metrics.gauge "gc.minor_collections"
let g_gc_major = Metrics.gauge "gc.major_collections"
let g_gc_compactions = Metrics.gauge "gc.compactions"
let g_gc_heap_words = Metrics.gauge "gc.heap_words"
let g_gc_minor_words = Metrics.gauge "gc.minor_words"
let g_domain_count = Metrics.gauge "runtime.domain_count"

let sample_runtime () =
  let st = Gc.quick_stat () in
  Metrics.set_gauge g_gc_minor (float_of_int st.Gc.minor_collections);
  Metrics.set_gauge g_gc_major (float_of_int st.Gc.major_collections);
  Metrics.set_gauge g_gc_compactions (float_of_int st.Gc.compactions);
  Metrics.set_gauge g_gc_heap_words (float_of_int st.Gc.heap_words);
  Metrics.set_gauge g_gc_minor_words st.Gc.minor_words

(* Which execution engine runs the test programs. [Compiled] is the
   decode-once closure engine; [Interpreted] routes every step through
   [Semantics.step]. The two are bit-identical by construction (and by the
   differential test suite); [Interpreted] exists to rule the compiler out
   of a surprising result and as the differential-testing reference. *)
type engine = Compiled | Interpreted

type config = {
  contract : Contract.t;
  uarch : Uarch_config.t;
  executor : Executor.config;
  gen_cfg : Generator.cfg;
  n_inputs : int;
  entropy : int;
  round_length : int;
  seed : int64;
  model_domains : int;
  executor_domains : int;
  pipeline_depth : int;
  engine : engine;
  watchdog : Watchdog.t;
}

let default_config ?(seed = 1L) ?(model_domains = 1) ?(executor_domains = 1)
    ?(pipeline_depth = 1) contract uarch executor =
  {
    contract;
    uarch;
    executor;
    gen_cfg = Generator.default_cfg;
    n_inputs = 50;
    entropy = 2;
    round_length = 25;
    seed;
    model_domains;
    executor_domains;
    pipeline_depth;
    engine = Compiled;
    watchdog = Watchdog.default;
  }

let compile_with engine flat =
  match engine with
  | Compiled -> Revizor_emu.Compiled.of_flat flat
  | Interpreted -> Revizor_emu.Compiled.interpreted flat

type stats = {
  mutable test_cases : int;
  mutable inputs_tested : int;
  mutable effective_inputs : int;
  mutable ineffective_test_cases : int;
  mutable faulted_test_cases : int;
  mutable skipped_pathological : int;
  mutable candidates : int;
  mutable dismissed_by_swap : int;
  mutable dismissed_by_nesting : int;
  mutable rounds : int;
  mutable growths : int;
  mutable elapsed_s : float;
}

let fresh_stats () =
  {
    test_cases = 0;
    inputs_tested = 0;
    effective_inputs = 0;
    ineffective_test_cases = 0;
    faulted_test_cases = 0;
    skipped_pathological = 0;
    candidates = 0;
    dismissed_by_swap = 0;
    dismissed_by_nesting = 0;
    rounds = 0;
    growths = 0;
    elapsed_s = 0.;
  }

let copy_stats s = { s with test_cases = s.test_cases }

type outcome = Violation of Violation.t | No_violation
type budget = Test_cases of int | Seconds of float

(* Everything the campaign loop mutates, captured at a test-case
   boundary. Restoring a snapshot and continuing reproduces the
   uninterrupted run bit for bit: the PRNGs are single-int64-state
   xorshift generators, the generator growth schedule is a pure function
   of the coverage set and round counters, and checkpoints are only taken
   between test cases, never inside one. [sn_stats.elapsed_s] carries the
   accumulated wall time (the one field excluded from bit-identity). *)
type snapshot = {
  sn_prng : int64;  (** main campaign PRNG *)
  sn_noise : int64 option;
      (** always [None] since noise went keyed (kept for checkpoint-codec
          compatibility with pre-PR7 snapshots) *)
  sn_gen_cfg : Generator.cfg;
  sn_n_inputs : int;
  sn_in_round : int;
  sn_combos_at_round_start : int;
  sn_stats : stats;
  sn_coverage : Coverage.t;
  sn_ucoverage : Ucoverage.t;
}

(* Contract traces, fanned out over the model pool when one is given. A
   missing pool (or a pool of size 1) is the exact sequential path. *)
let model_ctraces ?pool ?watchdog ?templates ?stream contract prog inputs =
  match pool with
  | Some p -> Model.ctraces_par ?watchdog ?templates ?stream p contract prog inputs
  | None -> Model.ctraces ?watchdog ?templates ?stream contract prog inputs

(* The nesting re-check (§5.4): recompute contract traces with nested
   speculation enabled; the violating pair must still share a class and
   still diverge. *)
let nesting_recheck ?pool ?templates config prog inputs measurements
    (cand : Analyzer.candidate) =
  if config.contract.Contract.nesting then true
  else begin
    let nested = Contract.with_nesting config.contract in
    let results =
      Probe.with_span sp_nesting (fun () ->
          model_ctraces ?pool ~watchdog:config.watchdog ?templates
            ~stream:`First nested prog inputs)
    in
    if List.exists (fun (r : Model.result) -> r.Model.faulted) results then false
    else
      let ctraces =
        Array.of_list (List.map (fun (r : Model.result) -> r.Model.ctrace) results)
      in
      let classes = Analyzer.input_classes ctraces in
      let htraces =
        Array.map (fun (m : Executor.measurement) -> m.Executor.htrace) measurements
      in
      (* The original pair must still witness a violation under the more
         permissive (nested) contract. *)
      List.exists
        (fun cls ->
          List.mem cand.Analyzer.index_a cls.Analyzer.members
          && List.mem cand.Analyzer.index_b cls.Analyzer.members
          && not
               (Htrace.comparable htraces.(cand.Analyzer.index_a)
                  htraces.(cand.Analyzer.index_b)))
        classes
  end

type checked = {
  violation : Violation.t option;
  effective : int;
  patterns : Coverage.pattern list;
  ucov_features : Ucoverage.feature list;
      (* atlas features harvested from this test case's measurements — a
         pure function of the measurement, so computing it on a worker
         domain is deterministic; [] when collection is off or nothing
         was measured *)
  candidate_seen : bool;
  dismissed_swap : bool;
  dismissed_nesting : bool;
}

(* The per-test-case pipeline after the front-end: materialize, model,
   analyze, measure, hunt. Takes the already-compiled program so the
   pipelined loop can compile on the coordinating domain (keeping the
   main PRNG there) while this runs on a worker. *)
let check_compiled ?pool ?arena config executor program prog inputs :
    (checked, string) result =
  (
      (* Materialize each input's architectural state exactly once per
         test case; the model passes, the executor's warm-up/measurement
         repetitions and the swap-check re-measurements all blit-restore
         these templates. A campaign-owned arena refills the same pooled
         states per test case instead of allocating fresh ones. *)
      let templates =
        Probe.with_span sp_materialize (fun () ->
            match arena with
            | Some a ->
                (* Sparse fill: only the data words this program can read
                   (plus the fill-buffer seed word) need fresh values;
                   the rest of the pooled 8 KiB sandboxes keeps provably
                   unobservable leftovers. *)
                let plan = Input.fill_plan prog.Revizor_emu.Compiled.flat in
                Arena.templates ?plan a inputs
            | None -> Input.templates inputs)
      in
      let results =
        Probe.with_span sp_model (fun () ->
            model_ctraces ?pool ~watchdog:config.watchdog ~templates
              ~stream:`First config.contract prog inputs)
      in
      if List.exists (fun (r : Model.result) -> r.Model.faulted) results then
        Error "architectural fault"
      else
        let ctraces =
          Array.of_list
            (List.map (fun (r : Model.result) -> r.Model.ctrace) results)
        in
        let patterns =
          match results with
          | first :: _ -> Coverage.patterns_of_stream first.Model.stream
          | [] -> []
        in
        let classes, effective =
          Probe.with_span sp_analyze (fun () ->
              let classes = Analyzer.input_classes ctraces in
              (classes, Analyzer.effective_inputs classes))
        in
        let no_violation ?(ucov_features = []) ?(candidate_seen = false)
            ?(dismissed_swap = false) ?(dismissed_nesting = false) () =
          Ok
            {
              violation = None;
              effective;
              patterns;
              ucov_features;
              candidate_seen;
              dismissed_swap;
              dismissed_nesting;
            }
        in
        if classes = [] then no_violation ()
        else
          let measurements =
            Probe.with_span sp_execute (fun () ->
                Executor.measure ~templates executor prog inputs)
          in
          (* Harvest the coverage atlas's features from the measurement's
             speculation record — bookkeeping over data the measurement
             already produced, never an extra run. *)
          let ucov_features =
            if Ucoverage.enabled () then
              Ucoverage.features_of_measurements
                ~descs:prog.Revizor_emu.Compiled.descs measurements
            else []
          in
          let htraces =
            Array.map
              (fun (m : Executor.measurement) -> m.Executor.htrace)
              measurements
          in
          Analyzer.record_htraces htraces;
          (* A dismissed pair does not clear the test case: another pair of
             the same measurement set may witness a genuine (data-caused)
             divergence, so retry a bounded number of candidates. *)
          let rec hunt excluding attempts ~swapped ~nested =
            if attempts <= 0 then
              no_violation ~ucov_features ~candidate_seen:true
                ~dismissed_swap:swapped ~dismissed_nesting:nested ()
            else
              match Analyzer.find_violation ~excluding classes htraces with
              | None ->
                  no_violation ~ucov_features ~candidate_seen:(excluding <> [])
                    ~dismissed_swap:swapped ~dismissed_nesting:nested ()
              | Some cand ->
                  let pair = (cand.Analyzer.index_a, cand.Analyzer.index_b) in
                  if
                    not
                      (Probe.with_span sp_swap_check (fun () ->
                           Executor.swap_check ~templates ~base:htraces executor
                             prog inputs
                             cand.Analyzer.index_a cand.Analyzer.index_b))
                  then
                    hunt (pair :: excluding) (attempts - 1) ~swapped:true ~nested
                  else if
                    not
                      (nesting_recheck ?pool ~templates config prog inputs
                         measurements cand)
                  then
                    hunt (pair :: excluding) (attempts - 1) ~swapped ~nested:true
                  else confirm cand
          and confirm cand =
                (* Attribute the violation to the mechanisms whose
                   transient touches appear in the trace difference. *)
                let diff_sets =
                  let a = htraces.(cand.Analyzer.index_a)
                  and b = htraces.(cand.Analyzer.index_b) in
                  let d = Htrace.union (Htrace.diff a b) (Htrace.diff b a) in
                  match config.executor.Executor.threat.Attack.mode with
                  | Attack.Prime_probe -> d
                  | Attack.Flush_reload | Attack.Evict_reload ->
                      (* observations are lines; events record sets *)
                      Htrace.of_list
                        (List.map (fun l -> l mod 64) (Htrace.elements d))
                  | Attack.Port_contention ->
                      (* port observations do not map to cache sets: fall
                         back to the unfiltered mechanism list *)
                      Htrace.empty
                in
                let relevant idx =
                  List.filter_map
                    (fun (k, sets) ->
                      if Htrace.is_empty (Htrace.inter sets diff_sets) then None
                      else Some k)
                    measurements.(idx).Executor.events
                in
                let mechanisms =
                  match
                    List.sort_uniq Stdlib.compare
                      (relevant cand.Analyzer.index_a
                      @ relevant cand.Analyzer.index_b)
                  with
                  | [] ->
                      List.sort_uniq Stdlib.compare
                        (measurements.(cand.Analyzer.index_a).Executor.kinds
                        @ measurements.(cand.Analyzer.index_b).Executor.kinds)
                  | ms -> ms
                in
                let violation =
                  Violation.make ~contract:config.contract
                    ~mds_patch:config.uarch.Uarch_config.mds_patch
                    ~program ~inputs cand ~mechanisms
                in
                Ok
                  {
                    violation = Some violation;
                    effective;
                    patterns;
                    ucov_features;
                    candidate_seen = true;
                    dismissed_swap = false;
                    dismissed_nesting = false;
                  }
          in
          hunt [] 5 ~swapped:false ~nested:false)

let check_test_case_full ?pool ?arena config executor program inputs :
    (checked, string) result =
  match Program.flatten program with
  | Error msg -> Error msg
  | Ok flat ->
      (* Compile the program exactly once per test case: the model passes
         (including the nesting re-check), every executor warm-up round,
         measurement repetition and swap-check re-measurement all reuse
         the same decoded descriptors, raw closures and fused
         superinstruction blocks. *)
      let prog =
        Probe.with_span sp_compile (fun () -> compile_with config.engine flat)
      in
      check_compiled ?pool ?arena config executor program prog inputs

let check_test_case ?pool config executor program inputs =
  Result.map (fun c -> c.violation)
    (check_test_case_full ?pool config executor program inputs)

(* Everything a test case can come back as. Folding the two absorbable
   exceptions into a value lets the pipelined loop ship outcomes across
   domains as data and lets both loops share one commit path. *)
type tc_outcome =
  | O_ok of checked
  | O_error of string
  | O_pathological of string
  | O_injected of string

let classify f =
  match f () with
  | Ok checked -> O_ok checked
  | Error msg -> O_error msg
  | exception Watchdog.Pathological reason -> O_pathological reason
  | exception Revizor_obs.Faultpoint.Injected point -> O_injected point

(* A generated-but-not-yet-committed test case in the pipelined loop.
   [p_prng] is the main PRNG's state right after this test case was
   generated: committing in generation order and snapshotting that state
   makes checkpoints bit-identical to the sequential loop's. *)
type tc_job = Job_ready of tc_outcome | Job_fut of tc_outcome Pool.future

type tc_pending = {
  p_tc : int;
  p_prng : int64;
  p_inputs : int;
  p_job : tc_job;
}

let set_gen_gauges (cfg : Generator.cfg) ~n_inputs =
  Metrics.set_gauge g_n_insts (float_of_int cfg.Generator.n_insts);
  Metrics.set_gauge g_n_blocks (float_of_int cfg.Generator.n_blocks);
  Metrics.set_gauge g_max_mem (float_of_int cfg.Generator.max_mem_accesses);
  Metrics.set_gauge g_n_inputs (float_of_int n_inputs)

let fuzz ?on_progress ?(should_stop = fun () -> false) ?resume
    ?(checkpoint_every = 0) ?on_checkpoint ?monitor ?(heartbeat_every = 50)
    ?ucoverage config ~budget =
  (* Campaign GC tuning: the loop allocates a steady stream of short-lived
     values (model results, event lists, analyzer classes); the default
     256 KiB minor heap forces a minor collection every few test cases and
     promotes values that die moments later. A larger nursery lets whole
     test cases live and die within it. Only ever grows the setting, so a
     caller's own tuning wins. *)
  (let g = Gc.get () in
   if g.Gc.minor_heap_size < 8 * 1024 * 1024 then
     Gc.set { g with Gc.minor_heap_size = 8 * 1024 * 1024 });
  let prng =
    match resume with
    | Some s -> Prng.of_state s.sn_prng
    | None -> Prng.create ~seed:config.seed
  in
  (* Noise draws are keyed on (noise seed, test-case coordinates) —
     there is no sequential noise stream to rewind on resume anymore, so
     snapshots carry [sn_noise = None] (old checkpoints with a stored
     stream position are still decodable; the position is ignored). *)
  let cpu = Cpu.create config.uarch in
  let executor = Executor.create cpu config.executor in
  (* One template arena per campaign: every test case refills the same
     pooled input states (bit-identical to fresh allocation, see
     {!Arena}). *)
  let arena = Arena.create () in
  let exec_domains = max 1 config.executor_domains in
  (* The two pools are alternatives, not layers: with a whole-pipeline
     executor pool each test case runs single-threaded on its domain, so
     an inner model pool would only oversubscribe. *)
  let pool =
    if exec_domains < 2 && config.model_domains > 1 then
      Some (Pool.create config.model_domains)
    else None
  in
  let epool = if exec_domains > 1 then Some (Pool.create exec_domains) else None in
  let stats =
    match resume with
    | Some s -> copy_stats s.sn_stats
    | None -> fresh_stats ()
  in
  let coverage =
    match resume with
    | Some s -> Coverage.copy s.sn_coverage
    | None -> Coverage.create ()
  in
  (* The atlas is caller-owned when given (so the CLI can read it after
     the campaign); on resume the snapshot's contents win either way. *)
  let ucov = match ucoverage with Some u -> u | None -> Ucoverage.create () in
  (match resume with
  | Some s -> Ucoverage.assign ucov ~from:(Ucoverage.copy s.sn_ucoverage)
  | None -> ());
  let base_elapsed = stats.elapsed_s in
  let started = Unix.gettimeofday () in
  let gen_cfg =
    ref (match resume with Some s -> s.sn_gen_cfg | None -> config.gen_cfg)
  in
  let n_inputs =
    ref (match resume with Some s -> s.sn_n_inputs | None -> config.n_inputs)
  in
  set_gen_gauges !gen_cfg ~n_inputs:!n_inputs;
  Metrics.set_gauge g_domain_count
    (float_of_int
       (if exec_domains > 1 then exec_domains else max 1 config.model_domains));
  sample_runtime ();
  if Telemetry.enabled () then
    Telemetry.event "fuzz.start"
      [
        ("seed", Json.String (Printf.sprintf "0x%Lx" config.seed));
        ("contract", Json.String (Contract.name config.contract));
        ("uarch", Json.String config.uarch.Uarch_config.name);
        ("n_inputs", Json.Int config.n_inputs);
        ("model_domains", Json.Int config.model_domains);
        ("executor_domains", Json.Int exec_domains);
        ("pipeline_depth", Json.Int (max 0 config.pipeline_depth));
      ];
  let combos_at_round_start =
    ref (match resume with Some s -> s.sn_combos_at_round_start | None -> 0)
  in
  let in_round =
    ref (match resume with Some s -> s.sn_in_round | None -> 0)
  in
  let elapsed_now () = base_elapsed +. (Unix.gettimeofday () -. started) in
  let throughput_per_hour () =
    let e = elapsed_now () in
    if e <= 0. then 0. else float_of_int stats.test_cases /. e *. 3600.
  in
  (* Monitor endpoint state: the provider closures below are consulted
     from [Monitor.poll] — which only ever runs on this domain, at
     test-case boundaries — so they can read the loop's mutable state
     without synchronization. *)
  let campaign_state = ref "running" in
  let last_checkpoint = ref None in
  let pool_health () =
    let info p = (Pool.is_degraded p, Pool.failures p) in
    match (epool, pool) with
    | Some p, _ | None, Some p -> info p
    | None, None -> (false, 0)
  in
  (match monitor with
  | None -> ()
  | Some mon ->
      Monitor.set_provider mon (fun cmd ->
          let base =
            [
              ("schema", Json.String "revizor.monitor.v1");
              ("state", Json.String !campaign_state);
            ]
          in
          match cmd with
          | "status" ->
              Some
                (Json.Obj
                   (base
                   @ [
                       ("test_cases", Json.Int stats.test_cases);
                       ("rounds", Json.Int stats.rounds);
                       ("inputs_tested", Json.Int stats.inputs_tested);
                       ( "coverage_combinations",
                         Json.Int (Coverage.total_combinations coverage) );
                       ( "throughput_per_hour",
                         Json.Float (throughput_per_hour ()) );
                       ("gen_insts", Json.Int (!gen_cfg).Generator.n_insts);
                       ("gen_blocks", Json.Int (!gen_cfg).Generator.n_blocks);
                       ("n_inputs", Json.Int !n_inputs);
                       ("elapsed_s", Json.Float (elapsed_now ()));
                       ("ucov_features", Json.Int (Ucoverage.distinct ucov));
                       ( "ucov_per_1k_tc",
                         Json.Float
                           (Ucoverage.rate_per_1k ucov
                              ~test_cases:stats.test_cases) );
                     ]))
          | "coverage" ->
              (* The atlas in one query: totals, per-mechanism counts and
                 first hits, saturation state. *)
              Some
                (match
                   Ucoverage.summary_json ucov ~test_cases:stats.test_cases
                 with
                | Json.Obj kvs -> Json.Obj (base @ kvs)
                | j -> j)
          | "health" ->
              let degraded, failures = pool_health () in
              Some
                (Json.Obj
                   (base
                   @ [
                       ("pool_degraded", Json.Bool degraded);
                       ("pool_failures", Json.Int failures);
                       ( "watchdog_trips",
                         Json.Int (Metrics.value Watchdog.m_skipped) );
                       ( "faulted_test_cases",
                         Json.Int stats.faulted_test_cases );
                       ( "skipped_pathological",
                         Json.Int stats.skipped_pathological );
                       ( "checkpoint_age_s",
                         match !last_checkpoint with
                         | None -> Json.Null
                         | Some t ->
                             Json.Float (Unix.gettimeofday () -. t) );
                     ]))
          | _ -> None));
  let exhausted () =
    should_stop ()
    ||
    match budget with
    | Test_cases n -> stats.test_cases >= n
    | Seconds s -> base_elapsed +. (Unix.gettimeofday () -. started) >= s
  in
  (* [prng_state] is the main PRNG as of the last committed test case's
     generation. The sequential loop passes the live state (no draws
     happen after generation within a test case); the pipelined loop has
     generated ahead of the commit point, so it passes the recorded
     per-test-case state instead. *)
  let take_snapshot ~prng_state =
    {
      sn_prng = prng_state;
      sn_noise = None;
      sn_gen_cfg = !gen_cfg;
      sn_n_inputs = !n_inputs;
      sn_in_round = !in_round;
      sn_combos_at_round_start = !combos_at_round_start;
      sn_stats =
        (let s = copy_stats stats in
         s.elapsed_s <- base_elapsed +. (Unix.gettimeofday () -. started);
         s);
      sn_coverage = Coverage.copy coverage;
      sn_ucoverage = Ucoverage.copy ucov;
    }
  in
  let emit_checkpoint ~prng_state =
    match on_checkpoint with
    | None -> ()
    | Some emit ->
        Probe.with_span sp_checkpoint (fun () ->
            Metrics.incr m_checkpoints;
            emit (take_snapshot ~prng_state);
            last_checkpoint := Some (Unix.gettimeofday ()))
  in
  let result = ref No_violation in
  (* Shared commit path: both loops fold a test case's outcome into the
     stats, coverage and the campaign result in test-case order. *)
  let commit_outcome outcome =
    match outcome with
    | O_pathological reason ->
        (* A step/time budget tripped mid-model: skip the test case,
           count it, and keep the campaign alive. *)
        stats.skipped_pathological <- stats.skipped_pathological + 1;
        Metrics.incr Watchdog.m_skipped;
        if Telemetry.enabled () then
          Telemetry.event "fuzz.skipped_pathological"
            [ ("reason", Json.String reason) ]
    | O_injected point ->
        (* An armed fault fired inside the pipeline (model stage or
           executor measurement): absorb it like a faulted test case and
           record the degradation. *)
        stats.faulted_test_cases <- stats.faulted_test_cases + 1;
        Metrics.incr m_faulted;
        Metrics.incr m_absorbed;
        if Telemetry.enabled () then
          Telemetry.event "fault.absorbed" [ ("point", Json.String point) ]
    | O_error _ ->
        stats.faulted_test_cases <- stats.faulted_test_cases + 1;
        Metrics.incr m_faulted
    | O_ok checked ->
        stats.effective_inputs <- stats.effective_inputs + checked.effective;
        Metrics.add m_effective checked.effective;
        if checked.effective = 0 then begin
          stats.ineffective_test_cases <- stats.ineffective_test_cases + 1;
          Metrics.incr m_ineffective_tc
        end;
        if checked.candidate_seen then begin
          stats.candidates <- stats.candidates + 1;
          Metrics.incr m_candidates
        end;
        if checked.dismissed_swap then begin
          stats.dismissed_by_swap <- stats.dismissed_by_swap + 1;
          Metrics.incr m_dismissed_swap
        end;
        if checked.dismissed_nesting then begin
          stats.dismissed_by_nesting <- stats.dismissed_by_nesting + 1;
          Metrics.incr m_dismissed_nesting
        end;
        Coverage.register coverage ~patterns:checked.patterns
          ~effective:(checked.effective > 0);
        (* [stats.test_cases] is this test case's index in both loops:
           the sequential loop increments it before checking, the
           pipelined commit sets it to [p_tc] before committing. *)
        Ucoverage.register ucov ~tc:stats.test_cases checked.ucov_features;
        (match checked.violation with
        | Some v ->
            result := Violation v;
            if Telemetry.enabled () then
              Telemetry.event "fuzz.violation"
                [ ("summary", Json.String (Violation.summary v)) ]
        | None -> ())
  in
  (* Round accounting, generator growth and the periodic checkpoint, run
     after each committed test case. [prng_state] as in {!take_snapshot}. *)
  let round_boundary ~prng_state =
    if !in_round >= config.round_length && !result = No_violation then begin
      stats.rounds <- stats.rounds + 1;
      Metrics.incr m_rounds;
      in_round := 0;
      if
        Coverage.should_grow coverage
          ~previous_combinations:!combos_at_round_start
          ~round_length:config.round_length
      then begin
        stats.growths <- stats.growths + 1;
        Metrics.incr m_growths;
        gen_cfg := Generator.grow !gen_cfg;
        n_inputs := min 400 (!n_inputs + (!n_inputs / 2));
        set_gen_gauges !gen_cfg ~n_inputs:!n_inputs
      end;
      combos_at_round_start := Coverage.total_combinations coverage;
      Ucoverage.note_round ucov ~round:stats.rounds;
      sample_runtime ();
      if Telemetry.enabled () then
        Telemetry.event "fuzz.round"
          [
            ("round", Json.Int stats.rounds);
            ("combinations", Json.Int !combos_at_round_start);
          ]
    end;
    if
      checkpoint_every > 0
      && stats.test_cases mod checkpoint_every = 0
      && !result = No_violation
    then emit_checkpoint ~prng_state;
    (* Heartbeat and monitor service ride the same boundary. Neither
       draws from any PRNG nor touches campaign state, so outcomes are
       bit-identical with them on or off. *)
    if
      heartbeat_every > 0
      && Telemetry.enabled ()
      && stats.test_cases mod heartbeat_every = 0
    then
      Telemetry.event "fuzz.heartbeat"
        [
          ("test_cases", Json.Int stats.test_cases);
          ("rounds", Json.Int stats.rounds);
          ("throughput_per_hour", Json.Float (throughput_per_hour ()));
          ( "coverage_combinations",
            Json.Int (Coverage.total_combinations coverage) );
          ("ucov_features", Json.Int (Ucoverage.distinct ucov));
          ( "ucov_per_1k_tc",
            Json.Float (Ucoverage.rate_per_1k ucov ~test_cases:stats.test_cases)
          );
        ];
    (match monitor with Some m -> Monitor.poll m | None -> ());
    match on_progress with Some f -> f stats | None -> ()
  in
  (* PRNG state after the last committed test case's generation — what a
     final boundary snapshot must record. *)
  let last_prng = ref (Prng.state prng) in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Pool.shutdown pool;
      Option.iter Pool.shutdown epool;
      Revizor_obs.Faultpoint.clear_context ())
  @@ fun () ->
  (match epool with
  | None ->
      (* Sequential loop: one test case at a time on the calling domain,
         the exact PR6 pipeline. Noise draws and fault schedules are
         nevertheless keyed per test case, so this path is bit-identical
         to the pipelined loop below at any domain count. *)
      while !result = No_violation && not (exhausted ()) do
        let iter_start = Revizor_obs.Clock.now_ns () in
        let stages_before = stages_total_ns () in
        stats.test_cases <- stats.test_cases + 1;
        Metrics.incr m_test_cases;
        if Telemetry.enabled () then
          Telemetry.set_context [ ("tc", Json.Int stats.test_cases) ];
        Revizor_obs.Faultpoint.set_context
          ~salt:(Int64.of_int stats.test_cases);
        Executor.set_context executor ~tc:stats.test_cases;
        in_round := !in_round + 1;
        let program, inputs =
          Probe.with_span sp_generate (fun () ->
              let program = Generator.generate prng !gen_cfg in
              let inputs =
                Input.generate_many prng ~entropy:config.entropy ~n:!n_inputs
              in
              (program, inputs))
        in
        last_prng := Prng.state prng;
        stats.inputs_tested <- stats.inputs_tested + List.length inputs;
        Metrics.add m_inputs_tested (List.length inputs);
        commit_outcome
          (classify (fun () ->
               check_test_case_full ?pool ~arena config executor program inputs));
        round_boundary ~prng_state:!last_prng;
        (* Attribute this iteration's wall time not covered by any stage
           span (input-list plumbing, stats/coverage bookkeeping,
           inter-stage GC) to the loop.other pseudo-stage, so the stage
           breakdown accounts for the loop's full wall time. *)
        let iter_ns = Revizor_obs.Clock.now_ns () - iter_start in
        let stage_ns = stages_total_ns () - stages_before in
        Probe.add_ns sp_loop_other (max 0 (iter_ns - stage_ns))
      done
  | Some ep ->
      (* Pipelined loop. The coordinating domain owns the campaign PRNG:
         it generates and compiles test cases in order (up to [window]
         ahead), ships each compiled test case to the executor pool, and
         commits outcomes strictly in generation order. Workers replicate
         their own CPU/executor/arena lazily (domain-local); since the
         executor canonicalizes all carried state at the head of every
         measurement and noise/fault draws are keyed on the test-case
         number, a test case's outcome is a pure function of the campaign
         seed and its index — independent of which domain runs it. *)
      let dls_state =
        Domain.DLS.new_key (fun () ->
            let cpu = Cpu.create config.uarch in
            (Executor.create cpu config.executor, Arena.create ()))
      in
      let window = exec_domains + max 0 config.pipeline_depth in
      let pending : tc_pending Queue.t = Queue.create () in
      (* Generation runs ahead of the committed [stats.test_cases], but
         never across a round boundary: growth decisions depend on the
         round's committed coverage, so the generator stalls at the
         boundary until the round fully commits (at which point [pending]
         is provably empty). *)
      let next_tc = ref stats.test_cases in
      let gen_in_round = ref !in_round in
      let can_generate () =
        !result = No_violation
        && !gen_in_round < config.round_length
        && (not (should_stop ()))
        &&
        match budget with
        | Test_cases n -> !next_tc < n
        | Seconds s -> base_elapsed +. (Unix.gettimeofday () -. started) < s
      in
      let generate_one () =
        let tc = !next_tc + 1 in
        next_tc := tc;
        gen_in_round := !gen_in_round + 1;
        Revizor_obs.Faultpoint.set_context ~salt:(Int64.of_int tc);
        let program, inputs =
          Probe.with_span sp_generate (fun () ->
              let program = Generator.generate prng !gen_cfg in
              let inputs =
                Input.generate_many prng ~entropy:config.entropy ~n:!n_inputs
              in
              (program, inputs))
        in
        let p_prng = Prng.state prng in
        let compiled =
          try
            match Program.flatten program with
            | Error msg -> Error (O_error msg)
            | Ok flat ->
                Ok
                  (Probe.with_span sp_compile (fun () ->
                       compile_with config.engine flat))
          with
          | Watchdog.Pathological reason -> Error (O_pathological reason)
          | Revizor_obs.Faultpoint.Injected point -> Error (O_injected point)
        in
        Revizor_obs.Faultpoint.clear_context ();
        let p_job =
          match compiled with
          | Error outcome -> Job_ready outcome
          | Ok prog ->
              Job_fut
                (Pool.spawn ep (fun () ->
                     let exec, warena = Domain.DLS.get dls_state in
                     Executor.set_context exec ~tc;
                     Revizor_obs.Faultpoint.set_context
                       ~salt:(Int64.of_int tc);
                     Fun.protect
                       ~finally:Revizor_obs.Faultpoint.clear_context
                     @@ fun () ->
                     classify (fun () ->
                         check_compiled ~arena:warena config exec program prog
                           inputs)))
        in
        Queue.add
          { p_tc = tc; p_prng; p_inputs = List.length inputs; p_job }
          pending
      in
      let commit_front () =
        let p = Queue.pop pending in
        let outcome =
          match p.p_job with
          | Job_ready o -> o
          | Job_fut f -> Pool.await ep f
        in
        stats.test_cases <- p.p_tc;
        Metrics.incr m_test_cases;
        if Telemetry.enabled () then
          Telemetry.set_context [ ("tc", Json.Int p.p_tc) ];
        in_round := !in_round + 1;
        stats.inputs_tested <- stats.inputs_tested + p.p_inputs;
        Metrics.add m_inputs_tested p.p_inputs;
        last_prng := p.p_prng;
        commit_outcome outcome;
        round_boundary ~prng_state:p.p_prng;
        if !in_round = 0 then gen_in_round := 0
      in
      while
        !result = No_violation
        && ((not (Queue.is_empty pending)) || can_generate ())
      do
        while Queue.length pending < window && can_generate () do
          generate_one ()
        done;
        if not (Queue.is_empty pending) then commit_front ()
      done;
      (* A violation (or stop) leaves generated-ahead test cases in
         flight; they are discarded — never committed, never visible in
         stats or checkpoints — but must finish before the pool joins. *)
      Queue.iter
        (fun p ->
          match p.p_job with
          | Job_fut f -> ( try ignore (Pool.await ep f) with _ -> ())
          | Job_ready _ -> ())
        pending;
      Queue.clear pending);
  (* A final boundary snapshot lets an interrupted (should_stop) campaign
     be resumed exactly where it left off. *)
  if !result = No_violation then emit_checkpoint ~prng_state:!last_prng;
  (campaign_state :=
     match !result with Violation _ -> "violation" | No_violation -> "done");
  sample_runtime ();
  (* One final poll so clients that asked during the last test case get
     their answer even if the campaign exits immediately after; the
     endpoint (and the provider closures, which only read captured
     state) stay valid for the caller's own post-campaign drain. *)
  (match monitor with Some m -> Monitor.poll m | None -> ());
  stats.elapsed_s <- base_elapsed +. (Unix.gettimeofday () -. started);
  Metrics.set_gauge g_elapsed
    (Metrics.gauge_value g_elapsed +. stats.elapsed_s);
  if Telemetry.enabled () then begin
    Telemetry.set_context [];
    Telemetry.event "fuzz.end"
      [
        ("test_cases", Json.Int stats.test_cases);
        ("elapsed_s", Json.Float stats.elapsed_s);
        ( "outcome",
          Json.String
            (match !result with Violation _ -> "violation" | No_violation -> "none")
        );
      ]
  end;
  (!result, stats)

let fuzz_parallel ?(domains = 4) config ~budget =
  let domains = max 1 domains in
  let found = Atomic.make false in
  let split_budget =
    match budget with
    | Test_cases n -> Test_cases (max 1 ((n + domains - 1) / domains))
    | Seconds _ -> budget
  in
  let campaign i =
    let cfg =
      { config with seed = Int64.add config.seed (Int64.of_int (i * 6271)) }
    in
    let outcome, stats =
      fuzz ~should_stop:(fun () -> Atomic.get found) cfg ~budget:split_budget
    in
    (match outcome with Violation _ -> Atomic.set found true | No_violation -> ());
    (outcome, stats)
  in
  let workers =
    List.init (domains - 1) (fun i -> Domain.spawn (fun () -> campaign (i + 1)))
  in
  let first = campaign 0 in
  let results = first :: List.map Domain.join workers in
  let outcome =
    match
      List.find_opt (function Violation _, _ -> true | No_violation, _ -> false) results
    with
    | Some (o, _) -> o
    | None -> No_violation
  in
  (outcome, List.map snd results)

let stats_to_json s =
  Json.Obj
    [
      ("test_cases", Json.Int s.test_cases);
      ("inputs_tested", Json.Int s.inputs_tested);
      ("effective_inputs", Json.Int s.effective_inputs);
      ("ineffective_test_cases", Json.Int s.ineffective_test_cases);
      ("faulted_test_cases", Json.Int s.faulted_test_cases);
      ("skipped_pathological", Json.Int s.skipped_pathological);
      ("candidates", Json.Int s.candidates);
      ("dismissed_by_swap", Json.Int s.dismissed_by_swap);
      ("dismissed_by_nesting", Json.Int s.dismissed_by_nesting);
      ("rounds", Json.Int s.rounds);
      ("growths", Json.Int s.growths);
      ("elapsed_s", Json.Float s.elapsed_s);
    ]

let stats_of_json j =
  let geti k = Option.bind (Json.member k j) Json.to_int in
  match geti "test_cases" with
  | None -> Error "stats object missing test_cases"
  | Some test_cases ->
      let i k = Option.value (geti k) ~default:0 in
      Ok
        {
          test_cases;
          inputs_tested = i "inputs_tested";
          effective_inputs = i "effective_inputs";
          ineffective_test_cases = i "ineffective_test_cases";
          faulted_test_cases = i "faulted_test_cases";
          skipped_pathological = i "skipped_pathological";
          candidates = i "candidates";
          dismissed_by_swap = i "dismissed_by_swap";
          dismissed_by_nesting = i "dismissed_by_nesting";
          rounds = i "rounds";
          growths = i "growths";
          elapsed_s =
            Option.value
              (Option.bind (Json.member "elapsed_s" j) Json.to_float)
              ~default:0.;
        }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>test cases: %d@,inputs: %d (effective: %d)@,ineffective test \
     cases: %d@,faulted: %d@,skipped (pathological): %d@,candidates: %d \
     (swap-dismissed: %d, nesting-dismissed: %d)@,rounds: %d (growths: \
     %d)@,elapsed: %.2fs@]"
    s.test_cases s.inputs_tested s.effective_inputs s.ineffective_test_cases
    s.faulted_test_cases s.skipped_pathological s.candidates
    s.dismissed_by_swap s.dismissed_by_nesting s.rounds s.growths s.elapsed_s
