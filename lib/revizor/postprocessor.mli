open Revizor_isa

(** The postprocessor (§5.7): shrink a detected violation in three stages.

    1. {b Input minimization}: find a smaller input sequence that still
       primes the microarchitectural state for the violation.
    2. {b Instruction minimization}: remove instructions one at a time
       while the violation persists.
    3. {b Fence insertion}: add LFENCEs from the end backwards; positions
       where an LFENCE kills the violation delimit the leaking region
       (cf. Fig. 4's highlighted region). *)

type result = {
  program : Program.t;  (** minimized test case *)
  inputs : Input.t list;  (** minimized priming sequence *)
  fenced : Program.t;
      (** the minimized test case with the surviving LFENCEs inserted —
          the unfenced region is the location of the leak *)
}

val still_violates :
  Fuzzer.config -> Executor.t -> Program.t -> Input.t list -> bool
(** One full pipeline check (model, classes, measurement, analysis,
    filters) on a candidate reduction. *)

val fence_localize :
  Fuzzer.config -> Executor.t -> Program.t -> Input.t list -> Program.t
(** Stage 3 alone, applied to the given (unminimized) program: insert
    LFENCEs from the end backwards and keep those that do not kill the
    violation. The returned program is the input program with the
    surviving fences; the fence-free stretch delimits the leaking
    region. Used by the violation flight recorder, which reports on the
    original listing rather than a minimized one. *)

val minimize :
  Fuzzer.config -> Executor.t -> Violation.t -> result
(** Deterministic greedy minimization. The result is guaranteed to still
    violate the contract. *)
