(** A minimal JSON value type with a printer and a parser.

    The telemetry layer needs machine-readable output (metrics summaries,
    JSONL event lines, saved [stats.json]) and a way to read it back in
    tests, the [telemetry-check] validator, and {!Results}-style loaders —
    without adding a JSON dependency to the build. The subset is full
    JSON; object key order is preserved by both the printer and the
    parser, so values round-trip structurally. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (valid JSON; floats keep enough digits
    to round-trip). *)

val to_string_pretty : t -> string
(** Two-space indented rendering for files meant to be read by humans. *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed). Integers
    without fraction/exponent parse as [Int], everything else numeric as
    [Float]. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the first binding of [k]; [None] on other
    constructors. *)

val to_int : t -> int option
(** [Int] directly, or an integral [Float]. *)

val to_float : t -> float option
val to_str : t -> string option
