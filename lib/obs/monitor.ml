(* Pollable Unix-domain monitor endpoint. Everything here must be safe
   to run on the fuzz loop's critical path: no blocking syscalls, no
   waiting on clients, bounded work per poll. *)

let m_connections = Metrics.counter "monitor.connections"
let m_requests = Metrics.counter "monitor.requests"
let m_client_lost = Metrics.counter "monitor.client_lost"

(* A client that closes mid-reply turns the server's next write into a
   delivered SIGPIPE, whose default disposition kills the whole campaign
   process. Ignoring the signal turns that write into an EPIPE error,
   which the per-client error handling below absorbs (the client is
   dropped and counted, nothing else happens). Forced once, on the first
   [create] — the fleet's heartbeat client shares the same guard. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

type client = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out : string;  (* response bytes not yet written *)
  mutable out_off : int;
  mutable close_after_flush : bool;  (* one-shot responses (prom) *)
}

type t = {
  sock : Unix.file_descr;
  sock_path : string;
  mutable clients : client list;
  mutable provider : (string -> Json.t option) option;
  mutable closed : bool;
}

(* Keep the endpoint bounded: a stuck or hostile peer cannot make the
   fuzz loop accumulate unbounded buffers. *)
let max_clients = 16
let max_request_len = 4096

let create ~path =
  Lazy.force ignore_sigpipe;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock sock;
  (try
     Unix.bind sock (Unix.ADDR_UNIX path);
     Unix.listen sock 8
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  { sock; sock_path = path; clients = []; provider = None; closed = false }

let path t = t.sock_path
let set_provider t f = t.provider <- Some f
let clear_provider t = t.provider <- None

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* --- Prometheus text exposition ------------------------------------- *)

let sanitize name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch
      | _ -> '_')
    name

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let prometheus (s : Metrics.summary) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, v) ->
      let n = "revizor_" ^ sanitize name in
      add "# TYPE %s counter\n%s %d\n" n n v)
    s.Metrics.counters;
  List.iter
    (fun (name, v) ->
      let n = "revizor_" ^ sanitize name in
      add "# TYPE %s gauge\n%s %s\n" n n (prom_float v))
    s.Metrics.gauges;
  List.iter
    (fun (name, (h : Metrics.hist_summary)) ->
      let n = "revizor_" ^ sanitize name in
      add "# TYPE %s histogram\n" n;
      (* Registry buckets are (lower bound, count); Prometheus wants
         cumulative counts keyed by inclusive upper bound. A bucket
         whose lower bound is [l >= 1] spans [l, 2l-1]; bucket 0 is the
         single value 0. *)
      let cum = ref 0 in
      List.iter
        (fun (lower, count) ->
          cum := !cum + count;
          let le = if lower = 0 then 0 else (2 * lower) - 1 in
          add "%s_bucket{le=\"%d\"} %d\n" n le !cum)
        h.Metrics.h_buckets;
      add "%s_bucket{le=\"+Inf\"} %d\n" n h.Metrics.h_count;
      add "%s_sum %d\n" n h.Metrics.h_sum;
      add "%s_count %d\n" n h.Metrics.h_count)
    s.Metrics.histograms;
  Buffer.contents buf

(* --- request handling ------------------------------------------------ *)

let parse_command line =
  let line = String.trim line in
  if String.length line > 0 && line.[0] = '{' then
    match Json.parse line with
    | Ok j -> (
        match Option.bind (Json.member "cmd" j) Json.to_str with
        | Some cmd -> Ok cmd
        | None -> Error "request object missing \"cmd\"")
    | Error e -> Error ("bad request: " ^ e)
  else Ok line

(* Response bytes for one request line; [`Oneshot] responses close the
   connection after the flush (Prometheus text has no line framing). *)
let respond t line =
  Metrics.incr m_requests;
  let json j = `Line (Json.to_string j ^ "\n") in
  let error msg = json (Json.Obj [ ("error", Json.String msg) ]) in
  match parse_command line with
  | Error msg -> error msg
  | Ok "" -> error "empty command"
  | Ok "metrics" ->
      json
        (Json.Obj
           [
             ("schema", Json.String "revizor.monitor.v1");
             ("metrics", Metrics.to_json (Metrics.snapshot ()));
           ])
  | Ok ("prom" | "prometheus" | "metrics.prom") ->
      `Oneshot (prometheus (Metrics.snapshot ()))
  | Ok cmd -> (
      match t.provider with
      | Some f -> (
          match f cmd with
          | Some j -> json j
          | None -> error (Printf.sprintf "unknown command %S" cmd))
      | None -> (
          (* Minimal provider-less answers, so a monitor outlives the
             campaign that installed the provider and a bare endpoint is
             still probeable. *)
          match cmd with
          | "status" | "health" ->
              json
                (Json.Obj
                   [
                     ("schema", Json.String "revizor.monitor.v1");
                     ("state", Json.String "idle");
                   ])
          | _ -> error (Printf.sprintf "unknown command %S" cmd)))

(* Drain complete request lines out of the client's input buffer. *)
let serve_lines t c =
  let data = Buffer.contents c.inbuf in
  match String.rindex_opt data '\n' with
  | None ->
      if Buffer.length c.inbuf > max_request_len then Error () else Ok ()
  | Some last_nl ->
      Buffer.clear c.inbuf;
      Buffer.add_string c.inbuf
        (String.sub data (last_nl + 1) (String.length data - last_nl - 1));
      let complete = String.sub data 0 last_nl in
      let lines = String.split_on_char '\n' complete in
      let closing = ref false in
      let out = Buffer.create 256 in
      List.iter
        (fun line ->
          if (not !closing) && String.trim line <> "" then
            match respond t line with
            | `Line s -> Buffer.add_string out s
            | `Oneshot s ->
                Buffer.add_string out s;
                closing := true)
        lines;
      c.out <- c.out ^ Buffer.contents out;
      if !closing then c.close_after_flush <- true;
      Ok ()

(* Push pending response bytes; [Ok ()] means keep the client. *)
let flush_out c =
  let len = String.length c.out - c.out_off in
  if len = 0 then
    if c.close_after_flush then Error () else Ok ()
  else
    match
      Unix.write_substring c.fd c.out c.out_off len
    with
    | n ->
        c.out_off <- c.out_off + n;
        if c.out_off = String.length c.out then begin
          c.out <- "";
          c.out_off <- 0;
          if c.close_after_flush then Error () else Ok ()
        end
        else Ok ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Ok ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        (* Peer vanished with a reply in flight: swallow, count, drop. *)
        Metrics.incr m_client_lost;
        Error ()
    | exception Unix.Unix_error _ -> Error ()

let step_client t c =
  (* Allocated per step, not shared: polls may come from whichever
     domain owns the campaign loop. Clients are rare; the allocation is
     irrelevant next to the syscall. *)
  let read_buf = Bytes.create 1024 in
  match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
  | 0 ->
      (* Peer closed its write side: answer what is already buffered,
         then drop. *)
      ignore (serve_lines t c);
      ignore (flush_out c);
      Error ()
  | n ->
      Buffer.add_subbytes c.inbuf read_buf 0 n;
      Result.bind (serve_lines t c) (fun () -> flush_out c)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Result.bind (serve_lines t c) (fun () -> flush_out c)
  | exception Unix.Unix_error _ ->
      Metrics.incr m_client_lost;
      Error ()

let accept_pending t =
  let continue_ = ref true in
  while !continue_ do
    match Unix.accept ~cloexec:true t.sock with
    | fd, _ ->
        Unix.set_nonblock fd;
        Metrics.incr m_connections;
        if List.length t.clients >= max_clients then
          (try Unix.close fd with Unix.Unix_error _ -> ())
        else
          t.clients <-
            {
              fd;
              inbuf = Buffer.create 128;
              out = "";
              out_off = 0;
              close_after_flush = false;
            }
            :: t.clients
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue_ := false
    | exception Unix.Unix_error _ -> continue_ := false
  done

let poll t =
  if not t.closed then begin
    accept_pending t;
    t.clients <-
      List.filter
        (fun c ->
          match step_client t c with
          | Ok () -> true
          | Error () ->
              close_client c;
              false)
        t.clients
  end

(* Post-campaign drain: serve clients that connected during the final
   test case, without ever blocking shutdown. Polls until [timeout]
   elapses, returning early once no client is connected and nothing is
   buffered — the common no-client case costs one poll, a worker fleet
   tearing down dozens of endpoints pays microseconds, and a stuck
   client can hold the endpoint open for at most [timeout]. *)
let drain ?(timeout = 0.2) t =
  if not t.closed then begin
    let deadline = Unix.gettimeofday () +. timeout in
    let continue_ = ref true in
    while !continue_ do
      poll t;
      if t.clients = [] || Unix.gettimeofday () >= deadline then
        continue_ := false
      else ignore (Unix.select [] [] [] 0.01)
    done
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter close_client t.clients;
    t.clients <- [];
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    try Unix.unlink t.sock_path with Unix.Unix_error _ -> ()
  end
