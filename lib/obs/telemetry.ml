type target = To_channel of out_channel | To_buffer of Buffer.t

type sink = {
  target : target;
  t0 : int;  (* Clock.now_ns at enable time *)
  lock : Mutex.t;
  mutable context : (string * Json.t) list;
}

(* The sink is installed/removed rarely and read on every emit guard:
   an Atomic read keeps the disabled check one load with no lock. *)
let current : sink option Atomic.t = Atomic.make None

let enabled () = Atomic.get current <> None

let install target =
  Atomic.set current
    (Some { target; t0 = Clock.now_ns (); lock = Mutex.create (); context = [] })

let disable () =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      Atomic.set current None;
      (match s.target with
      | To_channel oc -> close_out oc
      | To_buffer _ -> ())

let enable_file path =
  disable ();
  install (To_channel (open_out path))

let enable_buffer buf =
  disable ();
  install (To_buffer buf)

let set_context fields =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      Mutex.lock s.lock;
      s.context <- fields;
      Mutex.unlock s.lock

type line = {
  l_ts : int;
  l_kind : string;
  l_name : string;
  l_fields : (string * Json.t) list;
}

let render_line l =
  Json.to_string
    (Json.Obj
       (("ts", Json.Int l.l_ts)
       :: ("kind", Json.String l.l_kind)
       :: ("name", Json.String l.l_name)
       :: l.l_fields))

let parse_line s =
  match Json.parse s with
  | Error e -> Error e
  | Ok (Json.Obj kvs) -> (
      let rest =
        List.filter (fun (k, _) -> k <> "ts" && k <> "kind" && k <> "name") kvs
      in
      match
        ( Option.bind (List.assoc_opt "ts" kvs) Json.to_int,
          Option.bind (List.assoc_opt "kind" kvs) Json.to_str,
          Option.bind (List.assoc_opt "name" kvs) Json.to_str )
      with
      | Some ts, Some kind, Some name ->
          Ok { l_ts = ts; l_kind = kind; l_name = name; l_fields = rest }
      | _ -> Error "line missing ts/kind/name")
  | Ok _ -> Error "line is not a JSON object"

let emit kind name fields =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      let ts = Clock.now_ns () - s.t0 in
      Mutex.lock s.lock;
      let text =
        render_line
          { l_ts = ts; l_kind = kind; l_name = name; l_fields = s.context @ fields }
      in
      (match s.target with
      | To_channel oc ->
          output_string oc text;
          output_char oc '\n'
      | To_buffer buf ->
          Buffer.add_string buf text;
          Buffer.add_char buf '\n');
      Mutex.unlock s.lock

let event name fields = emit "event" name fields

let flush () =
  match Atomic.get current with
  | None -> ()
  | Some s -> (
      Mutex.lock s.lock;
      (match s.target with
      | To_channel oc -> ( try Stdlib.flush oc with Sys_error _ -> ())
      | To_buffer _ -> ());
      Mutex.unlock s.lock)

(* Tolerant whole-trace scan for the [telemetry-check] validator: a run
   killed mid-write (SIGKILL, torn pipe) legitimately leaves one
   truncated final line, which must not fail the whole validation — it is
   detected, reported and tolerated. Unparseable lines anywhere else are
   real corruption and stay errors. *)
type scan = {
  sc_spans : int;
  sc_events : int;
  sc_truncated_tail : bool;
  sc_error : (int * string) option;  (* first non-tail bad line *)
}

let scan_lines lines =
  let last_nonempty =
    List.fold_left
      (fun (i, last) line -> (i + 1, if String.trim line <> "" then i else last))
      (1, 0) lines
    |> snd
  in
  let spans = ref 0 and events = ref 0 and lineno = ref 0 in
  let truncated = ref false and error = ref None in
  List.iter
    (fun line ->
      incr lineno;
      if String.trim line <> "" && !error = None then
        match parse_line line with
        | Ok l ->
            if l.l_kind = "span" then incr spans
            else if l.l_kind = "event" then incr events
            else if !lineno = last_nonempty then truncated := true
            else
              error :=
                Some (!lineno, Printf.sprintf "unknown kind %S" l.l_kind)
        | Error e ->
            if !lineno = last_nonempty then truncated := true
            else error := Some (!lineno, e))
    lines;
  {
    sc_spans = !spans;
    sc_events = !events;
    sc_truncated_tail = !truncated;
    sc_error = !error;
  }

let span name ~start_ns ~dur_ns =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      (* [dom] attributes the span to the OCaml domain that ran it: the
         trace-analytics toolkit groups spans per domain before nesting
         them (spans from different domains of the pipelined engine
         legitimately overlap in time) and computes per-domain
         utilization from the groups. *)
      emit "span" name
        [
          ("start", Json.Int (start_ns - s.t0));
          ("dur_ns", Json.Int dur_ns);
          ("dom", Json.Int (Domain.self () :> int));
        ]
