(** Monotonic process clock, nanosecond resolution.

    Wraps the CLOCK_MONOTONIC stub shipped with bechamel (already a
    project dependency) so span durations are immune to wall-clock
    adjustments. Values are raw kernel nanoseconds; only differences and
    offsets from {!now_ns} are meaningful. *)

val now_ns : unit -> int
(** Current monotonic time in nanoseconds (fits an OCaml 63-bit int for
    ~146 years of uptime). *)
