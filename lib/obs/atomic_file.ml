(* Crash-safe artifact writes (DESIGN.md §8).

   Every result artifact — violation.asm, inputs.txt, stats.json,
   --metrics-out, campaign checkpoints — goes through this one helper: the
   contents land in a sibling temp file first and only an atomic rename
   publishes them, so a SIGKILL mid-write leaves either the old file or
   the new one, never a torn hybrid.

   Transient I/O failures (and the [writer.io] fault point, which models
   them deterministically in tests) are retried a bounded number of
   times before the last exception is re-raised. *)

let m_writes = Metrics.counter "obs.atomic_writes"
let m_retries = Metrics.counter "obs.atomic_write_retries"

let fp_writer = Faultpoint.point "writer.io"

let attempt path contents =
  Faultpoint.fire fp_writer;
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match
     output_string oc contents;
     flush oc
   with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

let write ?(retries = 3) path contents =
  Metrics.incr m_writes;
  let rec go n =
    match attempt path contents with
    | () -> ()
    | exception ((Sys_error _ | Faultpoint.Injected _) as e) ->
        if n >= retries then raise e
        else begin
          Metrics.incr m_retries;
          if Telemetry.enabled () then
            Telemetry.event "writer.retry"
              [
                ("path", Json.String path);
                ("attempt", Json.Int (n + 1));
                ( "error",
                  Json.String
                    (match e with
                    | Sys_error m -> m
                    | Faultpoint.Injected p -> "injected: " ^ p
                    | _ -> "?") );
              ];
          go (n + 1)
        end
  in
  go 0
