(* Crash-safe artifact writes (DESIGN.md §8).

   Every result artifact — violation.asm, inputs.txt, stats.json,
   --metrics-out, campaign checkpoints — goes through this one helper: the
   contents land in a sibling temp file first and only an atomic rename
   publishes them, so a SIGKILL mid-write leaves either the old file or
   the new one, never a torn hybrid.

   Transient I/O failures (and the [writer.io] fault point, which models
   them deterministically in tests) are retried a bounded number of
   times — with capped exponential backoff and deterministic jitter
   keyed on the target path ({!Backoff}, the same policy the fleet
   orchestrator uses for shard re-adoption) — before the last exception
   is re-raised. *)

let m_writes = Metrics.counter "obs.atomic_writes"
let m_retries = Metrics.counter "obs.atomic_write_retries"

let fp_writer = Faultpoint.point "writer.io"

let attempt path contents =
  Faultpoint.fire fp_writer;
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match
     output_string oc contents;
     flush oc
   with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

let write ?(retries = 3) ?(backoff = Backoff.default) path contents =
  Metrics.incr m_writes;
  let key = Backoff.key_of_string path in
  let rec go n =
    match attempt path contents with
    | () -> ()
    | exception ((Sys_error _ | Faultpoint.Injected _) as e) ->
        if n >= retries then raise e
        else begin
          Metrics.incr m_retries;
          let delay_ms = Backoff.delay_ms backoff ~key ~attempt:n in
          if Telemetry.enabled () then
            Telemetry.event "writer.retry"
              [
                ("path", Json.String path);
                ("attempt", Json.Int (n + 1));
                ("delay_ms", Json.Float delay_ms);
                ( "error",
                  Json.String
                    (match e with
                    | Sys_error m -> m
                    | Faultpoint.Injected p -> "injected: " ^ p
                    | _ -> "?") );
              ];
          Backoff.sleep_ms delay_ms;
          go (n + 1)
        end
  in
  go 0
