(* Pure analyses over parsed telemetry lines. Nothing here touches the
   live sink or the registry: the toolkit must run on traces recorded by
   other processes (possibly killed mid-write). *)

type span = {
  sp_name : string;
  sp_start : int;
  sp_dur : int;
  sp_dom : int;
  sp_tc : int option;
}

let span_end s = s.sp_start + s.sp_dur

let spans_of_lines lines =
  List.filter_map
    (fun (l : Telemetry.line) ->
      if l.Telemetry.l_kind <> "span" then None
      else
        let field k = List.assoc_opt k l.Telemetry.l_fields in
        match
          ( Option.bind (field "start") Json.to_int,
            Option.bind (field "dur_ns") Json.to_int )
        with
        | Some start, Some dur ->
            Some
              {
                sp_name = l.Telemetry.l_name;
                sp_start = start;
                sp_dur = dur;
                sp_dom =
                  Option.value ~default:0
                    (Option.bind (field "dom") Json.to_int);
                sp_tc = Option.bind (field "tc") Json.to_int;
              }
        | _ -> None)
    lines

let load_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> In_channel.input_all ic)
  with
  | exception Sys_error e -> Error e
  | data -> (
      let raw = String.split_on_char '\n' data in
      let scan = Telemetry.scan_lines raw in
      match scan.Telemetry.sc_error with
      | Some (lineno, msg) ->
          Error (Printf.sprintf "%s:%d: %s" path lineno msg)
      | None ->
          (* Re-parse keeping only the good lines; the truncated tail (if
             any) was already classified by the scan and is dropped. *)
          let lines =
            List.filter_map
              (fun s ->
                if String.trim s = "" then None
                else Result.to_option (Telemetry.parse_line s))
              raw
          in
          Ok (lines, scan))

(* --- span trees ----------------------------------------------------- *)

type node = { n_span : span; n_children : node list }

let by_domain spans =
  let doms =
    List.sort_uniq compare (List.map (fun s -> s.sp_dom) spans)
  in
  List.map (fun d -> (d, List.filter (fun s -> s.sp_dom = d) spans)) doms

let contains outer inner =
  outer.sp_start <= inner.sp_start && span_end inner <= span_end outer

(* Sort by (start asc, end desc): an enclosing span sorts before
   everything it contains, so a single stack pass builds the forest. *)
let tree_order a b =
  match compare a.sp_start b.sp_start with
  | 0 -> compare (span_end b) (span_end a)
  | c -> c

let span_forest spans =
  let sorted = List.sort tree_order spans in
  (* Stack of open (span, children-so-far-reversed) frames. *)
  let roots = ref [] in
  let stack = ref [] in
  let close_into child =
    match !stack with
    | [] -> roots := child :: !roots
    | (p, kids) :: rest -> stack := (p, child :: kids) :: rest
  in
  let rec pop_until s =
    match !stack with
    | (p, kids) :: rest when not (contains p s) ->
        stack := rest;
        close_into { n_span = p; n_children = List.rev kids };
        pop_until s
    | _ -> ()
  in
  List.iter
    (fun s ->
      pop_until s;
      stack := (s, []) :: !stack)
    sorted;
  (* Close everything still open. *)
  let rec drain () =
    match !stack with
    | [] -> ()
    | (p, kids) :: rest ->
        stack := rest;
        close_into { n_span = p; n_children = List.rev kids };
        drain ()
  in
  drain ();
  List.rev !roots

let rec depth n =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 n.n_children

(* --- nesting validation --------------------------------------------- *)

type nesting = {
  nst_spans : int;
  nst_max_depth : int;
  nst_orphans : (span * span) list;
}

let max_reported_orphans = 8

let check_nesting spans =
  let sorted = List.sort tree_order spans in
  (* Walk with an open-span stack; a span that starts inside the top of
     stack but ends outside it partially overlaps — an orphan pair. *)
  let orphans = ref [] in
  let stack = ref [] in
  let rec pop_until s =
    match !stack with
    | top :: rest when not (contains top s) ->
        if s.sp_start < span_end top then
          (* s starts inside [top] but is not contained: overlap. *)
          if List.length !orphans < max_reported_orphans then
            orphans := (top, s) :: !orphans;
        stack := rest;
        pop_until s
    | _ -> ()
  in
  List.iter
    (fun s ->
      pop_until s;
      stack := s :: !stack)
    sorted;
  let forest = span_forest spans in
  let max_depth = List.fold_left (fun acc n -> max acc (depth n)) 0 forest in
  {
    nst_spans = List.length spans;
    nst_max_depth = max_depth;
    nst_orphans = List.rev !orphans;
  }

(* --- gap analysis ---------------------------------------------------- *)

type gap = { g_start : int; g_dur : int; g_after : string; g_before : string }

let deepest_gap spans =
  match List.sort tree_order spans with
  | [] | [ _ ] -> None
  | first :: _ as sorted ->
      (* Sweep the sorted spans keeping the furthest end seen so far; a
         span starting past it opens a gap. *)
      let best = ref None in
      let frontier = ref (span_end first) in
      let frontier_name = ref first.sp_name in
      List.iter
        (fun s ->
          if s.sp_start > !frontier then begin
            let g =
              {
                g_start = !frontier;
                g_dur = s.sp_start - !frontier;
                g_after = !frontier_name;
                g_before = s.sp_name;
              }
            in
            match !best with
            | Some b when b.g_dur >= g.g_dur -> ()
            | _ -> best := Some g
          end;
          if span_end s >= !frontier then begin
            frontier := span_end s;
            frontier_name := s.sp_name
          end)
        sorted;
      !best

(* --- per-stage and per-domain summaries ------------------------------ *)

type stage_stat = {
  st_stage : string;
  st_calls : int;
  st_total_ns : int;
  st_max_ns : int;
}

let stage_stats spans =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let calls, total, mx =
        Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl s.sp_name)
      in
      Hashtbl.replace tbl s.sp_name
        (calls + 1, total + s.sp_dur, max mx s.sp_dur))
    spans;
  Hashtbl.fold
    (fun name (calls, total, mx) acc ->
      { st_stage = name; st_calls = calls; st_total_ns = total; st_max_ns = mx }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare b.st_total_ns a.st_total_ns with
         | 0 -> compare a.st_stage b.st_stage
         | c -> c)

type domain_stat = {
  d_dom : int;
  d_spans : int;
  d_busy_ns : int;
  d_stall_ns : int;
  d_top_stage : string;
}

(* Length of the union of the span intervals (they nest or are disjoint
   in a valid trace, but the sweep is correct for arbitrary input). *)
let busy_ns spans =
  let sorted = List.sort tree_order spans in
  let busy = ref 0 and frontier = ref min_int in
  List.iter
    (fun s ->
      let e = span_end s in
      if s.sp_start >= !frontier then begin
        busy := !busy + s.sp_dur;
        frontier := e
      end
      else if e > !frontier then begin
        busy := !busy + (e - !frontier);
        frontier := e
      end)
    sorted;
  !busy

let domain_stats spans =
  match spans with
  | [] -> []
  | _ ->
      let wall_start =
        List.fold_left (fun acc s -> min acc s.sp_start) max_int spans
      in
      let wall_end =
        List.fold_left (fun acc s -> max acc (span_end s)) min_int spans
      in
      let wall = wall_end - wall_start in
      List.map
        (fun (dom, group) ->
          let busy = busy_ns group in
          let top =
            match stage_stats group with
            | [] -> ""
            | top :: _ -> top.st_stage
          in
          {
            d_dom = dom;
            d_spans = List.length group;
            d_busy_ns = busy;
            d_stall_ns = max 0 (wall - busy);
            d_top_stage = top;
          })
        (by_domain spans)

(* --- Chrome trace-event export --------------------------------------- *)

let to_chrome lines =
  let us ns = Json.Float (float_of_int ns /. 1000.) in
  let events =
    List.filter_map
      (fun (l : Telemetry.line) ->
        let field k = List.assoc_opt k l.Telemetry.l_fields in
        let dom =
          Option.value ~default:0 (Option.bind (field "dom") Json.to_int)
        in
        let args =
          List.filter
            (fun (k, _) -> k <> "start" && k <> "dur_ns" && k <> "dom")
            l.Telemetry.l_fields
        in
        let base name ph ts =
          [
            ("name", Json.String name);
            ("ph", Json.String ph);
            ("ts", ts);
            ("pid", Json.Int 1);
            ("tid", Json.Int dom);
          ]
        in
        match l.Telemetry.l_kind with
        | "span" -> (
            match
              ( Option.bind (field "start") Json.to_int,
                Option.bind (field "dur_ns") Json.to_int )
            with
            | Some start, Some dur ->
                Some
                  (Json.Obj
                     (base l.Telemetry.l_name "X" (us start)
                     @ [ ("dur", us dur); ("args", Json.Obj args) ]))
            | _ -> None)
        | "event" ->
            Some
              (Json.Obj
                 (base l.Telemetry.l_name "i" (us l.Telemetry.l_ts)
                 @ [ ("s", Json.String "t"); ("args", Json.Obj args) ]))
        | _ -> None)
      lines
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
    ]

(* --- run-to-run diff -------------------------------------------------- *)

type diff_row = {
  dr_stage : string;
  dr_calls_a : int;
  dr_calls_b : int;
  dr_total_a_ns : int;
  dr_total_b_ns : int;
  dr_mean_a_ns : float;
  dr_mean_b_ns : float;
  dr_mean_ratio : float;
}

let diff spans_a spans_b =
  let stats_a = stage_stats spans_a and stats_b = stage_stats spans_b in
  let names =
    List.sort_uniq compare
      (List.map (fun s -> s.st_stage) stats_a
      @ List.map (fun s -> s.st_stage) stats_b)
  in
  let find stats name =
    List.find_opt (fun s -> s.st_stage = name) stats
  in
  List.map
    (fun name ->
      let calls st = match st with Some s -> s.st_calls | None -> 0 in
      let total st = match st with Some s -> s.st_total_ns | None -> 0 in
      let a = find stats_a name and b = find stats_b name in
      let mean c t = if c = 0 then Float.nan else float_of_int t /. float_of_int c in
      let mean_a = mean (calls a) (total a) in
      let mean_b = mean (calls b) (total b) in
      {
        dr_stage = name;
        dr_calls_a = calls a;
        dr_calls_b = calls b;
        dr_total_a_ns = total a;
        dr_total_b_ns = total b;
        dr_mean_a_ns = mean_a;
        dr_mean_b_ns = mean_b;
        dr_mean_ratio = mean_b /. mean_a;
      })
    names
  |> List.sort (fun x y ->
         compare
           (max y.dr_total_a_ns y.dr_total_b_ns)
           (max x.dr_total_a_ns x.dr_total_b_ns))
