(** Trace analytics over the JSONL telemetry (DESIGN.md §7).

    Pure analyses of recorded [--trace-out] files: span-tree
    reconstruction, per-stage and per-domain utilization summaries,
    span-nesting validation, unaccounted-gap hunting, Chrome
    trace-event (Perfetto-loadable) export and run-to-run diffing.
    Everything operates on parsed {!Telemetry.line} lists, so the CLI,
    the [telemetry-check] validator and the tests share one
    implementation. *)

type span = {
  sp_name : string;
  sp_start : int;  (** ns, sink-relative *)
  sp_dur : int;
  sp_dom : int;  (** emitting domain id (0 for pre-PR8 traces) *)
  sp_tc : int option;  (** test-case context, when recorded *)
}

val spans_of_lines : Telemetry.line list -> span list
(** Every [kind:"span"] line, in file order. Lines missing the
    [start]/[dur_ns] fields are skipped. *)

val load_file : string -> (Telemetry.line list * Telemetry.scan, string) result
(** Read a JSONL trace. Tolerates the one truncated final line of a
    killed campaign exactly like [telemetry-check] does (the partial
    line is dropped; [scan.sc_truncated_tail] reports it); any other
    malformed line is an [Error]. *)

(** {1 Span trees} *)

type node = { n_span : span; n_children : node list }

val span_forest : span list -> node list
(** Reconstruct the span trees of one domain's spans by interval
    containment: a span is a child of the innermost span whose
    [start, start+dur] interval contains it. Spans are emitted at their
    {e end} (children precede parents in the file), so this is the
    inverse of emission order. The input must be single-domain
    (see {!by_domain}); top-level nodes come back in start order. *)

val by_domain : span list -> (int * span list) list
(** Group spans by emitting domain, ascending domain id, file order
    preserved within a group. *)

val depth : node -> int
(** 1 for a leaf. *)

(** {1 Nesting validation}

    A well-formed trace's spans, per domain, either nest or are
    disjoint — a pair that {e partially} overlaps means a span ended
    inside a sibling it did not contain: an orphaned end, the telemetry
    bug [telemetry-check] hunts for. *)

type nesting = {
  nst_spans : int;
  nst_max_depth : int;
  nst_orphans : (span * span) list;
      (** partially-overlapping pairs (first few), empty when valid *)
}

val check_nesting : span list -> nesting
(** Validate one domain's spans (single-domain input, as
    {!span_forest}). *)

(** {1 Gap analysis} *)

type gap = {
  g_start : int;  (** ns, sink-relative *)
  g_dur : int;
  g_after : string;  (** span preceding the gap ("start" at t=0) *)
  g_before : string;  (** span following it *)
}

val deepest_gap : span list -> gap option
(** The longest interval between the first span start and the last span
    end not covered by any span (single-domain input). [None] when
    there are fewer than two spans or no gap at all. This is the
    precise version of [accounted_share]: not just how much wall time
    the stages missed in aggregate, but {e where} the biggest hole
    is. *)

(** {1 Per-stage and per-domain summaries} *)

type stage_stat = {
  st_stage : string;
  st_calls : int;
  st_total_ns : int;
  st_max_ns : int;
}

val stage_stats : span list -> stage_stat list
(** Aggregate spans by name, descending total time. Counts {e every}
    span including nested ones — same convention as the metrics
    registry's [stage.*] counters. *)

type domain_stat = {
  d_dom : int;
  d_spans : int;
  d_busy_ns : int;  (** union of the domain's span intervals *)
  d_stall_ns : int;  (** trace wall span minus busy *)
  d_top_stage : string;  (** stage with the most total time *)
}

val domain_stats : span list -> domain_stat list
(** Per-domain utilization over the whole trace's wall interval
    ([min start, max end] across all domains): how busy each domain of
    the pipelined engine was, and what it mostly ran. Stall time on the
    executor domains is time spent waiting for generate/compile (or for
    commit); stall on the coordinating domain is the converse. *)

(** {1 Chrome trace-event export} *)

val to_chrome : Telemetry.line list -> Json.t
(** Render spans as complete ("ph":"X") trace events and telemetry
    events as instants ("ph":"i") in the Chrome trace-event JSON
    format, loadable by Perfetto / chrome://tracing. Domains map to
    thread ids; timestamps are microseconds. *)

(** {1 Run-to-run diff} *)

type diff_row = {
  dr_stage : string;
  dr_calls_a : int;
  dr_calls_b : int;
  dr_total_a_ns : int;
  dr_total_b_ns : int;
  dr_mean_a_ns : float;
  dr_mean_b_ns : float;
  dr_mean_ratio : float;  (** B mean / A mean; [nan] when A has no calls *)
}

val diff : span list -> span list -> diff_row list
(** Per-stage comparison of two recorded runs, sorted by descending
    [max total_a total_b] — the perf-triage table behind
    [revizor trace diff]. Stages present in only one run appear with
    zero calls on the other side. *)
