(** Append-only JSONL span/event sink.

    One global sink per process, disabled by default. When disabled,
    {!enabled} is [false] and every emit is a no-op — hot paths guard
    with [if Telemetry.enabled () then ...] so the disabled path builds
    no field lists and allocates nothing. When enabled, each span/event
    becomes one JSON object per line:

    {v
    {"ts":182734,"kind":"span","name":"stage.model","tc":17,"dur_ns":812345}
    {"ts":190021,"kind":"event","name":"coverage.grow","tc":25,"combos":14}
    v}

    [ts] is monotonic nanoseconds since the sink was enabled. Context
    fields (e.g. the current test-case number) are merged into every
    line. Emission is serialized by a mutex, so pool domains can emit
    concurrently. *)

val enabled : unit -> bool

val enable_file : string -> unit
(** Open [path] for writing (truncating) and direct all events to it.
    Replaces any previous sink. *)

val enable_buffer : Buffer.t -> unit
(** Direct events to an in-memory buffer (tests). *)

val disable : unit -> unit
(** Flush and close the current sink (if any); return to no-op mode. *)

val flush : unit -> unit
(** Flush the current sink's channel without closing it (graceful
    shutdown checkpoints call this so the trace survives a later kill). *)

val set_context : (string * Json.t) list -> unit
(** Fields merged into every subsequent line (e.g. [[("tc", Int n)]]).
    No-op while disabled, so the fuzz loop can set it unconditionally
    guarded by {!enabled}. *)

val event : string -> (string * Json.t) list -> unit
(** Emit a [kind:"event"] line. No-op while disabled. *)

val span : string -> start_ns:int -> dur_ns:int -> unit
(** Emit a [kind:"span"] line; [start_ns] is a {!Clock.now_ns} value and
    is translated to sink-relative time. The line carries a [dom] field
    identifying the emitting OCaml domain, so the trace-analytics
    toolkit can group spans per domain before nesting them (spans of
    different domains legitimately overlap under the pipelined engine).
    No-op while disabled. *)

(** {1 Parsing}

    The reader half, used by the round-trip tests and the
    [telemetry-check] validator. *)

type line = {
  l_ts : int;
  l_kind : string;  (** ["span"] or ["event"] *)
  l_name : string;
  l_fields : (string * Json.t) list;  (** everything else, in order *)
}

val parse_line : string -> (line, string) result
val render_line : line -> string
(** Inverse of {!parse_line}: [parse_line (render_line l) = Ok l]. *)

(** Result of scanning a whole JSONL trace. A malformed {e final}
    non-empty line is the signature of a run killed mid-write and is
    tolerated (reported via [sc_truncated_tail]); malformed lines
    anywhere else are corruption ([sc_error]). *)
type scan = {
  sc_spans : int;
  sc_events : int;
  sc_truncated_tail : bool;
  sc_error : (int * string) option;  (** (line number, message) *)
}

val scan_lines : string list -> scan
(** Scan the lines of a trace file (as split on ['\n']). Used by the
    [telemetry-check] validator. *)
