(** Capped exponential backoff with deterministic seeded jitter.

    The shared retry policy of every site that re-attempts transient
    failures: {!Atomic_file.write}'s I/O retries and the fleet
    orchestrator's shard re-adoption schedule. The delay for attempt
    [k] is drawn uniformly from [0, min(cap_ms, base_ms * 2^k)] ("full
    jitter"); the draw is a pure function of [(key, attempt)], so retry
    schedules are reproducible under a seed. *)

type policy = { base_ms : float; cap_ms : float }

val default : policy
(** 1 ms base, 16 ms cap — sized for local filesystem retries. Fleet
    shard re-adoption uses its own, much coarser policy. *)

val delay_ms : policy -> key:int64 -> attempt:int -> float
(** Deterministic jittered delay, in milliseconds, for the given retry
    attempt (0-based). Monotone in expectation and capped at
    [policy.cap_ms]. *)

val key_of_string : string -> int64
(** FNV-1a of a stable identifier (a file path, a shard name) — the
    conventional way to derive a jitter key. *)

val sleep_ms : float -> unit
(** Sleep for the given delay; no-op for non-positive values. *)
