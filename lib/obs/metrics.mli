(** Process-wide metrics registry.

    Counters, gauges and log2-bucketed histograms, registered once by
    name and updated lock-free from any domain ([Atomic] cells — the
    model pool and parallel fuzzing campaigns all write into the same
    registry). Handles are meant to be hoisted to module level so the hot
    path pays one atomic operation per update and never takes the
    registry lock.

    Naming convention (relied on by the determinism tests and the stage
    tables): metrics measuring {e time} end in ["ns"] (excluded from
    cross-domain determinism comparisons), per-domain metrics start with
    ["pool."], and per-stage probes populate ["stage.<name>.ns"] /
    ["stage.<name>.calls"] / ["stage.<name>.hist_ns"] (see {!Probe}). *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Register (or look up) a counter. Same name ⇒ same cell. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record one sample into its log2 bucket (negative samples clamp to
    bucket 0). *)

(** {1 Bucketing}

    Bucket 0 holds samples [<= 0]; bucket [b >= 1] holds samples in
    [[2^(b-1), 2^b - 1]]. So 1 lands in bucket 1, 2..3 in bucket 2, and
    [max_int] in bucket 62. *)

val bucket_of : int -> int
val bucket_lower : int -> int
(** Smallest sample value belonging to a bucket (0 for bucket 0). *)

(** {1 Snapshots} *)

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_buckets : (int * int) list;
      (** (bucket lower bound, count), ascending, non-zero buckets only *)
}

type summary = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}

val snapshot : unit -> summary
(** Consistent-enough read of every registered metric (each cell is read
    atomically; the set is not a cross-metric transaction). Sorted by
    name, so equal workloads produce equal snapshots. *)

val reset : unit -> unit
(** Zero every registered metric (registrations persist). For tests and
    for scoping a measurement window. *)

val to_json : summary -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {"count":..,"sum":..,"buckets":{"<lower>":count,..}}}}]. *)

type stage = {
  st_name : string;  (** e.g. ["model"] for [stage.model.*] *)
  st_calls : int;
  st_total_ns : int;
}

val stage_breakdown : summary -> stage list
(** Every ["stage.<name>.ns"] / ["stage.<name>.calls"] counter pair,
    sorted by descending total time. *)
