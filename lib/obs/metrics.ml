type counter = int Atomic.t

type gauge = float Atomic.t

let n_buckets = 64

type histogram = {
  buckets : int Atomic.t array;  (* length n_buckets *)
  count : int Atomic.t;
  sum : int Atomic.t;
}

(* The registry itself is only locked on registration and snapshot;
   metric updates touch their own Atomic cells. *)
let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let registered tbl name make =
  Mutex.lock lock;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
        let v = make () in
        Hashtbl.replace tbl name v;
        v
  in
  Mutex.unlock lock;
  v

let counter name = registered counters name (fun () -> Atomic.make 0)

let incr c = Atomic.incr c

let add c n = ignore (Atomic.fetch_and_add c n)

let value c = Atomic.get c

let gauge name = registered gauges name (fun () -> Atomic.make 0.)
let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram name =
  registered histograms name (fun () ->
      {
        buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
        count = Atomic.make 0;
        sum = Atomic.make 0;
      })

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* number of significant bits: 1 -> 1, 2..3 -> 2, ... *)
    let b = ref 0 and v = ref v in
    while !v <> 0 do
      Stdlib.incr b;
      v := !v lsr 1
    done;
    !b
  end

let bucket_lower b = if b <= 0 then 0 else 1 lsl (b - 1)

let observe h v =
  Atomic.incr h.buckets.(bucket_of v);
  Atomic.incr h.count;
  ignore (Atomic.fetch_and_add h.sum (max 0 v))

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_summary = { h_count : int; h_sum : int; h_buckets : (int * int) list }

type summary = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}

let sorted_bindings tbl read =
  Hashtbl.fold (fun name v acc -> (name, read v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_read h =
  let buckets = ref [] in
  for b = n_buckets - 1 downto 0 do
    let c = Atomic.get h.buckets.(b) in
    if c > 0 then buckets := (bucket_lower b, c) :: !buckets
  done;
  { h_count = Atomic.get h.count; h_sum = Atomic.get h.sum; h_buckets = !buckets }

let snapshot () =
  Mutex.lock lock;
  let s =
    {
      counters = sorted_bindings counters Atomic.get;
      gauges = sorted_bindings gauges Atomic.get;
      histograms = sorted_bindings histograms hist_read;
    }
  in
  Mutex.unlock lock;
  s

let reset () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun b -> Atomic.set b 0) h.buckets;
      Atomic.set h.count 0;
      Atomic.set h.sum 0)
    histograms;
  Mutex.unlock lock

let to_json s =
  let hist (name, h) =
    ( name,
      Json.Obj
        [
          ("count", Json.Int h.h_count);
          ("sum", Json.Int h.h_sum);
          ( "buckets",
            Json.Obj
              (List.map
                 (fun (lower, c) -> (string_of_int lower, Json.Int c))
                 h.h_buckets) );
        ] )
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.gauges));
      ("histograms", Json.Obj (List.map hist s.histograms));
    ]

(* ------------------------------------------------------------------ *)
(* Stage breakdown                                                     *)
(* ------------------------------------------------------------------ *)

type stage = { st_name : string; st_calls : int; st_total_ns : int }

let stage_breakdown s =
  let prefix = "stage." and suffix = ".ns" in
  let stage_of name =
    let pl = String.length prefix and sl = String.length suffix in
    let l = String.length name in
    if
      l > pl + sl
      && String.sub name 0 pl = prefix
      && String.sub name (l - sl) sl = suffix
    then Some (String.sub name pl (l - pl - sl))
    else None
  in
  List.filter_map
    (fun (name, total) ->
      match stage_of name with
      | None -> None
      | Some st ->
          let calls =
            Option.value
              (List.assoc_opt (prefix ^ st ^ ".calls") s.counters)
              ~default:0
          in
          Some { st_name = st; st_calls = calls; st_total_ns = total })
    s.counters
  |> List.sort (fun a b -> compare b.st_total_ns a.st_total_ns)
