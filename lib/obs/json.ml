type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest representation that still round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write ~indent level buf v =
  let nl pad =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * pad) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          write ~indent (level + 1) buf item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape buf k;
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          write ~indent (level + 1) buf item)
        kvs;
      nl level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  write ~indent 0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   pos := !pos + 4;
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* our emitter only escapes control characters; decode
                      the ASCII range and keep anything else as UTF-8 *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape %C" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' -> is_float := true; true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let kvs = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            kvs := field () :: !kvs;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !kvs)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
