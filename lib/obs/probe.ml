type t = {
  name : string;
  total_ns : Metrics.counter;
  calls : Metrics.counter;
  hist : Metrics.histogram;
}

let create name =
  {
    name = "stage." ^ name;
    total_ns = Metrics.counter ("stage." ^ name ^ ".ns");
    calls = Metrics.counter ("stage." ^ name ^ ".calls");
    hist = Metrics.histogram ("stage." ^ name ^ ".hist_ns");
  }

let record t start_ns =
  let dur = Clock.now_ns () - start_ns in
  Metrics.add t.total_ns dur;
  Metrics.incr t.calls;
  Metrics.observe t.hist dur;
  if Telemetry.enabled () then Telemetry.span t.name ~start_ns ~dur_ns:dur

let with_span t f =
  let start_ns = Clock.now_ns () in
  match f () with
  | r ->
      record t start_ns;
      r
  | exception e ->
      record t start_ns;
      raise e

(* Attribute an externally-measured duration to the stage (used for the
   fuzz loop's inter-stage residual, which has no bracketing call site).
   No telemetry span: the residual is derived, not observed. *)
let add_ns t dur =
  Metrics.add t.total_ns dur;
  Metrics.incr t.calls;
  Metrics.observe t.hist dur

let time_ns t = Metrics.value t.total_ns
