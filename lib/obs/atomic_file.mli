(** Crash-safe file writes: temp file + atomic rename, with bounded
    retry on transient I/O errors.

    All result artifacts (saved violations, [stats.json],
    [--metrics-out], campaign checkpoints) go through {!write}, so a kill
    at any instant leaves either the previous file or the complete new
    one — never a torn write. The [writer.io] fault point is checked on
    every attempt; injected failures are retried like real ones and
    surface as [obs.atomic_write_retries] plus a [writer.retry] telemetry
    event. *)

val write : ?retries:int -> ?backoff:Backoff.policy -> string -> string -> unit
(** [write path contents] atomically replaces [path]. Retries up to
    [retries] (default 3) times on [Sys_error] or an injected writer
    fault — sleeping a {!Backoff} delay (capped exponential,
    deterministic jitter keyed on [path]; default {!Backoff.default})
    between attempts — then re-raises the last exception. *)
