(** Scoped timing probes.

    A probe names a pipeline stage and owns three registry metrics —
    ["stage.<name>.ns"] (cumulative time), ["stage.<name>.calls"] and
    ["stage.<name>.hist_ns"] (log2 latency histogram) — which
    {!Metrics.stage_breakdown} and the CLI dashboards aggregate into the
    per-stage time accounting. {!with_span} additionally emits a JSONL
    span when the telemetry sink is enabled; when it is disabled the cost
    is two monotonic-clock reads and three atomic updates, with no
    allocation. *)

type t

val create : string -> t
(** [create "model"] registers the [stage.model.*] metrics. Probes are
    meant to be hoisted to module level. *)

val with_span : t -> (unit -> 'a) -> 'a
(** Time [f ()], record into the probe's metrics, and (when enabled)
    emit a telemetry span. The duration is recorded even if [f]
    raises. *)

val add_ns : t -> int -> unit
(** Attribute an externally-measured duration to the stage (counts one
    call, feeds the histogram). For durations with no bracketing call
    site — e.g. the fuzz loop's inter-stage residual — where
    {!with_span} cannot be used. Emits no telemetry span. *)

val time_ns : t -> int
(** Cumulative nanoseconds recorded so far. *)
