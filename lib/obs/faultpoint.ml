(* Deterministic, seeded fault injection (DESIGN.md §8).

   A fault point is a named site in the pipeline (model stage, executor
   measurement loop, pool workers, artifact writers) that can be armed to
   fail on a seeded schedule. The firing decision for the k-th hit of a
   point is a pure function of (campaign fault seed, point name, k): a
   splitmix64 hash of the triple compared against the configured rate.
   This makes schedules reproducible under a fault seed without any
   cross-point ordering requirement — concurrent domains hitting
   different points never perturb each other's streams, and a point's own
   stream depends only on how many times it was hit.

   Discipline mirrors [Telemetry]: disabled (the default) costs one
   atomic load per hit and allocates nothing, so production campaigns pay
   nothing for the machinery. *)

exception Injected of string

type cfg = {
  rate : float;  (* firing probability per hit, in [0,1] *)
  after : int;  (* skip the first [after] hits entirely *)
  max_fires : int;  (* stop firing after this many fires; 0 = unlimited *)
}

type point = {
  name : string;
  hits : int Atomic.t;
  fires : int Atomic.t;
  fired_total : Metrics.counter;
  armed : cfg option Atomic.t;
}

let lock = Mutex.create ()
let registry : (string, point) Hashtbl.t = Hashtbl.create 16

(* Spec retained so points registered after [enable] still get armed. *)
let active : (int64 * (string * cfg) list) option ref = ref None

let point name =
  Mutex.lock lock;
  let p =
    match Hashtbl.find_opt registry name with
    | Some p -> p
    | None ->
        let p =
          {
            name;
            hits = Atomic.make 0;
            fires = Atomic.make 0;
            fired_total = Metrics.counter ("fault." ^ name ^ ".fired");
            armed = Atomic.make None;
          }
        in
        (match !active with
        | Some (_, spec) -> Atomic.set p.armed (List.assoc_opt name spec)
        | None -> ());
        Hashtbl.replace registry name p;
        p
  in
  Mutex.unlock lock;
  p

let seed_ref = ref 0L

let enable ~seed spec =
  Mutex.lock lock;
  active := Some (seed, spec);
  seed_ref := seed;
  Hashtbl.iter
    (fun name p ->
      Atomic.set p.hits 0;
      Atomic.set p.fires 0;
      Atomic.set p.armed (List.assoc_opt name spec))
    registry;
  Mutex.unlock lock

let disable () =
  Mutex.lock lock;
  active := None;
  Hashtbl.iter (fun _ p -> Atomic.set p.armed None) registry;
  Mutex.unlock lock

let enabled () = !active <> None

(* splitmix64: the standard finalizer, good avalanche for hash-based
   schedules. *)
let splitmix64 x =
  let x = Int64.add x 0x9E3779B97F4A7C15L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let name_salt name =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    name;
  !h

let uniform h =
  (* 53 high bits -> [0,1) *)
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

(* Per-domain schedule context. Without one (the pre-PR7 behavior, and
   still the behavior of every standalone tool), a point's hit index is
   its process-global atomic counter — fine sequentially, but dependent
   on domain interleaving once test cases run concurrently. The fuzz
   loop therefore scopes each test case with [set_context ~salt]: the
   hit index becomes local to (context, point) and the salt — derived
   from (campaign fault seed, test case number) — is mixed into the
   draw, so a test case's fault schedule is a pure function of the fault
   seed and its own number, identical for any executor domain count.
   Stored in domain-local storage so concurrent domains, each fuzzing
   its own test case, never share a context. *)
type ctx = { c_salt : int64; c_hits : (string, int ref) Hashtbl.t }

let ctx_key : ctx option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_context ~salt =
  Domain.DLS.get ctx_key
  := Some { c_salt = splitmix64 salt; c_hits = Hashtbl.create 8 }

let clear_context () = Domain.DLS.get ctx_key := None

(* The k-th hit's draw: hash(seed [, context salt], name, k). With no
   context the salt is zero and the expression reduces bit-for-bit to
   the historical hash(seed, name, k). *)
let draw p ~salt k =
  splitmix64
    (Int64.logxor
       (Int64.logxor (Int64.add !seed_ref (Int64.of_int k)) salt)
       (name_salt p.name))

let decide p =
  match Atomic.get p.armed with
  | None -> None
  | Some cfg ->
      let salt, k =
        match !(Domain.DLS.get ctx_key) with
        | None -> (0L, Atomic.fetch_and_add p.hits 1)
        | Some c ->
            (* Global counter still advances so [hits]/[fired] reporting
               stays meaningful; the schedule uses the context-local
               index. *)
            ignore (Atomic.fetch_and_add p.hits 1);
            let r =
              match Hashtbl.find_opt c.c_hits p.name with
              | Some r -> r
              | None ->
                  let r = ref 0 in
                  Hashtbl.replace c.c_hits p.name r;
                  r
            in
            let k = !r in
            incr r;
            (c.c_salt, k)
      in
      if k < cfg.after then None
      else if cfg.max_fires > 0 && Atomic.get p.fires >= cfg.max_fires then None
      else
        let h = draw p ~salt k in
        if uniform h < cfg.rate then begin
          Atomic.incr p.fires;
          Metrics.incr p.fired_total;
          Some h
        end
        else None

let should_fire p = decide p <> None

(* [fire_value] is for points that perturb data instead of raising: the
   returned 64 bits are the hit's own hash, so the perturbation is as
   reproducible as the schedule. *)
let fire_value p = decide p

let fire p = if should_fire p then raise (Injected p.name)

let fired p = Atomic.get p.fires
let hits p = Atomic.get p.hits

(* --- spec parsing ----------------------------------------------------- *)

(* "name:rate", "name:rate@after", "name:rate#max", combined
   "name:rate@after#max"; entries separated by commas. *)
let parse_entry s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "fault spec %S: expected name:rate" s)
  | Some i -> (
      let name = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let rest, max_fires =
        match String.index_opt rest '#' with
        | None -> (rest, Ok 0)
        | Some j ->
            ( String.sub rest 0 j,
              match int_of_string_opt (String.sub rest (j + 1) (String.length rest - j - 1)) with
              | Some v when v >= 0 -> Ok v
              | _ -> Error (Printf.sprintf "fault spec %S: bad #max" s) )
      in
      let rest, after =
        match String.index_opt rest '@' with
        | None -> (rest, Ok 0)
        | Some j ->
            ( String.sub rest 0 j,
              match int_of_string_opt (String.sub rest (j + 1) (String.length rest - j - 1)) with
              | Some v when v >= 0 -> Ok v
              | _ -> Error (Printf.sprintf "fault spec %S: bad @after" s) )
      in
      match (float_of_string_opt rest, after, max_fires) with
      | _, Error e, _ | _, _, Error e -> Error e
      | Some rate, Ok after, Ok max_fires when rate >= 0. && rate <= 1. ->
          Ok (name, { rate; after; max_fires })
      | _ -> Error (Printf.sprintf "fault spec %S: rate must be in [0,1]" s))

let parse_spec s =
  let entries =
    List.filter (fun e -> String.trim e <> "") (String.split_on_char ',' s)
  in
  if entries = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc e ->
        match (acc, parse_entry (String.trim e)) with
        | Error _, _ -> acc
        | _, Error e -> Error e
        | Ok l, Ok kv -> Ok (l @ [ kv ]))
      (Ok []) entries
