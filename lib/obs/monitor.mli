(** Live campaign monitor endpoint (DESIGN.md §7).

    A Unix-domain stream socket on which an external client — a human
    with the [revizor monitor] CLI, a CI smoke job, or eventually the
    fleet orchestrator — can watch a running fuzzing campaign. The
    server is {e pollable}, not threaded: the owning loop (the fuzzer)
    calls {!poll} at test-case boundaries; each poll non-blockingly
    accepts pending connections, reads complete request lines and
    writes responses, and never waits for a slow or absent client. With
    no client connected a poll is a single non-blocking [accept], so
    the endpoint's campaign overhead is measured in microseconds per
    test case (BENCH_PR8.json bounds it below 1%).

    {b Protocol}: line-delimited request/response. A request is one
    line — either a bare command word ([status], [metrics], [health],
    [prom]) or a JSON object [{"cmd": "status"}]. The response to
    [status]/[metrics]/[health] is exactly one JSON object on one line;
    a connection may issue any number of such requests. [prom] is a
    one-shot Prometheus-style text exposition of the whole metrics
    registry: the server writes the multi-line text and closes the
    connection (the text format has no line-oriented framing of its
    own). Unknown commands answer [{"error": ...}] and keep the
    connection open.

    [metrics] and [prom] are served from the process-wide
    {!Metrics} registry by the monitor itself; [status] and [health]
    come from the installed {!set_provider} callback (the fuzz loop
    closes over its live campaign state), falling back to a minimal
    registry-derived answer when no provider is installed. *)

type t

val create : path:string -> t
(** Bind and listen on [path] (an existing socket file at [path] is
    removed first — stale sockets from killed campaigns must not block
    a restart). The listening socket and every accepted client are
    non-blocking.

    @raise Unix.Unix_error if the path cannot be bound. *)

val path : t -> string

val set_provider : t -> (string -> Json.t option) -> unit
(** Install the command handler consulted for non-built-in commands
    ([status], [health], anything future). Returning [None] yields an
    [{"error": "unknown command"}] response. Replaces any previous
    provider; the fuzz loop installs one per campaign. *)

val clear_provider : t -> unit

val poll : t -> unit
(** Serve whatever is ready without blocking: accept pending
    connections, read available request bytes, answer complete lines,
    flush pending response bytes, drop closed or misbehaving clients.
    Called by the fuzz loop at every test-case boundary; safe to call
    after the campaign ends (a final drain loop can keep serving). *)

val drain : ?timeout:float -> t -> unit
(** Post-campaign drain: keep polling so clients that connected during
    the final test case still get their answers, but never block
    shutdown — returns as soon as no client is connected (the common
    case costs a single poll) and unconditionally after [timeout]
    seconds (default 0.2). Call before {!close}. *)

val close : t -> unit
(** Close every client and the listening socket and unlink the socket
    path. Idempotent. *)

(** {1 Prometheus text exposition} *)

val prometheus : Metrics.summary -> string
(** Render a metrics snapshot in the Prometheus text exposition format:
    counters and gauges as single samples, log2-bucketed histograms as
    cumulative [_bucket{le="..."}] series plus [_sum]/[_count]. Metric
    names are prefixed with [revizor_] and sanitized (every character
    outside [[A-Za-z0-9_]] becomes [_]). *)

(** {1 Registry metrics} *)

val m_connections : Metrics.counter
(** [monitor.connections] — clients accepted over the endpoint's
    lifetime. *)

val m_requests : Metrics.counter
(** [monitor.requests] — request lines answered. *)

val m_client_lost : Metrics.counter
(** [monitor.client_lost] — clients that vanished with a reply in
    flight ([EPIPE]/[ECONNRESET] on write, or a hard read error). The
    first {!create} ignores [SIGPIPE] process-wide, so a client closing
    mid-reply surfaces as this counter, never as a fatal signal. *)
