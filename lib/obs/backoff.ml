(* Capped exponential backoff with deterministic, seeded full jitter.

   One policy shared by every retry site that must not stampede —
   [Atomic_file.write]'s transient-I/O retries and the fleet
   orchestrator's shard re-adoption schedule both draw their delays
   here. The delay for attempt [k] is uniform in
   [0, min(cap_ms, base_ms * 2^k)] ("full jitter"), and the draw is a
   pure function of (key, attempt): retry schedules are reproducible
   under a seed, which is what lets the fleet chaos tests replay a
   fault storm bit-for-bit. *)

type policy = { base_ms : float; cap_ms : float }

let default = { base_ms = 1.; cap_ms = 16. }

(* splitmix64, same finalizer as [Faultpoint]'s schedule hash. *)
let splitmix64 x =
  let x = Int64.add x 0x9E3779B97F4A7C15L in
  let x =
    Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xBF58476D1CE4E5B9L
  in
  let x =
    Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL
  in
  Int64.logxor x (Int64.shift_right_logical x 31)

let key_of_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let uniform h =
  (* 53 high bits -> [0,1) *)
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

let delay_ms policy ~key ~attempt =
  let attempt = max 0 attempt in
  (* 2^attempt without overflow: past the cap the ceiling saturates. *)
  let ceiling =
    if attempt >= 60 then policy.cap_ms
    else Float.min policy.cap_ms (policy.base_ms *. Float.of_int (1 lsl attempt))
  in
  if ceiling <= 0. then 0.
  else
    let h =
      splitmix64 (Int64.add key (Int64.mul (Int64.of_int (attempt + 1)) 0x9E3779B97F4A7C15L))
    in
    uniform h *. ceiling

let sleep_ms ms = if ms > 0. then Unix.sleepf (ms /. 1000.)
