(** Deterministic, seeded fault injection (DESIGN.md §8 "Robustness").

    Named fault points are threaded into the pipeline's failure-prone
    sites (model stage, executor measurement loop, pool workers, artifact
    writers). Arming them with {!enable} makes each point fail on a
    schedule that is a pure function of (fault seed, point name, hit
    index) — reproducible under a seed, independent of domain
    interleaving across points.

    Disabled (the default), a hit is one atomic load and no allocation,
    the same zero-cost discipline as {!Telemetry}. *)

exception Injected of string
(** Raised by {!fire} when the point's schedule says to fail; the payload
    is the point name. *)

type cfg = {
  rate : float;  (** firing probability per hit, in [0,1] *)
  after : int;  (** skip the first [after] hits *)
  max_fires : int;  (** stop after this many fires; 0 = unlimited *)
}

type point

val point : string -> point
(** Register (or look up) the fault point with this name. Points register
    a [fault.<name>.fired] metrics counter. *)

val enable : seed:int64 -> (string * cfg) list -> unit
(** Arm the named points and reset all hit/fire counts. Points not in the
    list stay disarmed; points registered later are armed on creation. *)

val disable : unit -> unit
val enabled : unit -> bool

val set_context : salt:int64 -> unit
(** Open a schedule context on the calling domain (domain-local). Until
    {!clear_context}, every point's hit index is counted within this
    context and [salt] is mixed into the draw, making the schedule a
    pure function of (fault seed, salt, point name, context-local hit
    index) — independent of what other domains or earlier contexts did.
    The fuzz loop opens one context per test case, salted with the test
    case number, so fault schedules are bit-identical for any executor
    domain count. [cfg.after] then counts per context; [cfg.max_fires]
    still caps fires globally (a cross-context property by design).
    Without a context, scheduling is exactly the historical global-
    counter behavior. *)

val clear_context : unit -> unit

val should_fire : point -> bool
(** Count one hit; [true] if the schedule fires. *)

val fire : point -> unit
(** Count one hit; raise {!Injected} if the schedule fires. *)

val fire_value : point -> int64 option
(** Count one hit; [Some bits] if the schedule fires, where [bits] is the
    hit's own deterministic hash — for points that perturb data (e.g.
    synthetic noise storms) rather than raise. *)

val fired : point -> int
val hits : point -> int

val parse_spec : string -> ((string * cfg) list, string) result
(** Parse a CLI spec: comma-separated [name:rate], with optional
    [@after] (skip the first N hits) and [#max] (cap the fire count),
    e.g. ["pool.worker:0.05,writer.io:1.0@10#2"]. *)
