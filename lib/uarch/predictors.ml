module Pht = struct
  type t = { counters : int array; mutable version : int }

  let create ?(size = 512) () = { counters = Array.make size 1; version = 0 }
  let slot t pc = pc land (Array.length t.counters - 1)
  let predict t ~pc = t.counters.(slot t pc) >= 2

  (* [version] counts {e effective} changes only: an update that rewrites
     a counter with its current value (the common case once the table has
     saturated under a repeated input sequence) leaves the version alone.
     Two equal versions therefore guarantee bit-identical tables, which is
     what lets the executor's measurement memoization detect a predictor
     fixed point with one integer compare (see {!Cpu.mark}). *)
  let update t ~pc ~taken =
    let i = slot t pc in
    let c = t.counters.(i) in
    let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
    if c' <> c then begin
      t.counters.(i) <- c';
      t.version <- t.version + 1
    end

  let reset t =
    Array.fill t.counters 0 (Array.length t.counters) 1;
    (* A reset is an effective change (saturated counters go back to 1),
       so stale fingerprints taken before it can never match. *)
    t.version <- t.version + 1

  let version t = t.version
  let copy t = { counters = Array.copy t.counters; version = t.version }
end

module Btb = struct
  type t = { targets : int array (* -1 = no entry *); mutable version : int }

  let create ?(size = 256) () = { targets = Array.make size (-1); version = 0 }
  let slot t pc = pc land (Array.length t.targets - 1)

  let predict t ~pc =
    let v = t.targets.(slot t pc) in
    if v < 0 then None else Some v

  (* Same effective-change discipline as {!Pht.update}: re-recording the
     already-predicted target does not advance the version. *)
  let update t ~pc ~target =
    let i = slot t pc in
    if t.targets.(i) <> target then begin
      t.targets.(i) <- target;
      t.version <- t.version + 1
    end

  let reset t =
    Array.fill t.targets 0 (Array.length t.targets) (-1);
    t.version <- t.version + 1

  let version t = t.version
  let copy t = { targets = Array.copy t.targets; version = t.version }
end

module Rsb = struct
  type t = { depth : int; mutable entries : int list }

  let create ?(depth = 16) () = { depth; entries = [] }

  let push t v =
    let cut l = if List.length l > t.depth then List.filteri (fun i _ -> i < t.depth) l else l in
    t.entries <- cut (v :: t.entries)

  let pop t =
    match t.entries with
    | [] -> None
    | v :: rest ->
        t.entries <- rest;
        Some v

  (* The stack contents as an immutable snapshot: [push]/[pop] replace
     [entries] with a new list and never mutate the old one, so the
     returned value stays valid. Compared structurally by {!Cpu.mark} —
     the list is at most [depth] (16) ints, and a balanced call/return
     program restores it exactly, so no version counter is needed. *)
  let entries t = t.entries

  let reset t = t.entries <- []
  let copy t = { t with entries = t.entries }
end
