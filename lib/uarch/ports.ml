(* The port model moved to the ISA layer (it is pure instruction
   classification) so that the decode-once compiled layer can precompute
   per-instruction port arrays; re-exported here for compatibility with
   the historical [Revizor_uarch.Ports] path. *)
include Revizor_isa.Ports
