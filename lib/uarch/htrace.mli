(** Hardware traces: the set of side-channel observations (cache sets or
    cache lines, depending on the measurement mode) left by one execution
    of a test case with one input.

    Traces are sets rather than sequences because the executor probes the
    final cache state once, after the execution (§7 "Granularity of
    measurements"). The analyzer compares them with the subset relation
    (§5.5).

    Representation: a fixed-width 128-bit bitset (immutable native-int
    words), sized to the largest {!Attack.trace_domain} (128
    Flush/Evict+Reload lines; Prime+Probe and port-contention use 64).
    Set algebra is a handful of machine logical ops — this is the hottest
    data structure of the whole pipeline. Observations must lie in
    [0, 128): {!singleton}, {!add} and {!of_list} raise [Invalid_argument]
    otherwise. *)

type t

val width : int
(** Bitset capacity (128). Valid observations are [0 .. width - 1]. *)

val empty : t
val singleton : int -> t
val of_list : int list -> t
val add : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val is_empty : t -> bool
val cardinal : t -> int
val elements : t -> int list

val nth : t -> int -> int
(** [nth t k] is the k-th smallest element (0-based) — equal to
    [List.nth (elements t) k] without building the list.
    @raise Invalid_argument unless [0 <= k < cardinal t]. *)

val mem : int -> t -> bool
val diff : t -> t -> t

val iter : (int -> unit) -> t -> unit
(** Apply to each element in increasing order (no intermediate list). *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val comparable : t -> t -> bool
(** [comparable a b] iff [subset a b || subset b a]: the analyzer's
    equivalence heuristic for union-of-contexts traces. *)

val pp : Format.formatter -> t -> unit
(** Bit-string rendering over 64 positions, as in §5.3's example. *)

val pp_wide : width:int -> Format.formatter -> t -> unit
