open Revizor_emu

(** The simulated CPU under test.

    This is the repository's stand-in for the black-box silicon of the
    paper (see DESIGN.md §2): a dataflow-timing engine that executes a
    program architecturally while modelling the transient behaviour of an
    out-of-order speculative core. Transient execution leaves traces in
    the {!Cache.t}, which the measurement layer observes exactly as a
    cache side-channel attack would.

    Modelled leak mechanisms:
    - conditional-branch misprediction (PHT-driven) — Spectre V1;
    - speculative store bypass when a store's address resolves late —
      Spectre V4 (disabled by the V4/SSBD patch);
    - return- and indirect-target misprediction (RSB/BTB) — ret2spec / V2;
    - microcode-assisted loads transiently forwarding stale fill-buffer
      data — MDS (zeros when the MDS patch is present);
    - microcode-assisted stores breaking store-to-load forwarding — the
      LVI-class leak on MDS-patched parts;
    - the dataflow timing model gates every transient cache touch on the
      access's address being ready before the squash, which reproduces the
      variable-latency races of §6.3 (V1-var, V4-var).

    The predictors and the cache persist across {!run} calls; this is what
    makes the paper's priming technique (§5.3) meaningful. *)

type t

(** Why a transient episode happened — used only for post-hoc labelling of
    violations (the analyzer itself never looks at this: detection stays
    black-box). *)
type speculation_kind =
  | Branch_mispredict
  | Return_mispredict
  | Indirect_mispredict
  | Store_bypass
  | Assist_load_forward
  | Assist_store_forward

type event = {
  kind : speculation_kind;
  origin_pc : int;  (** instruction that triggered the speculation *)
  transient_loads : int;  (** transient memory accesses that executed *)
  touched_sets : int list;  (** cache sets touched transiently *)
}

val create : Uarch_config.t -> t
val config : t -> Uarch_config.t
val cache : t -> Cache.t
val pages : t -> Page_table.t

val reset_session : t -> unit
(** Forget all microarchitectural state: predictors, cache, fill buffer,
    page bits. Used between test cases. *)

val fill_buffer : t -> int64

val set_fill_buffer : t -> int64 -> unit
(** Model the data movement of loading an input into the sandbox: on real
    hardware the executor's input-setup writes leave the victim's own data
    in the fill buffers, which is what MDS-class assists then leak. The
    executor calls this after materializing each input. *)

val run : ?max_steps:int -> t -> Compiled.t -> State.t -> unit
(** Execute the compiled program to completion. On return the
    architectural state is exactly what {!Semantics.run} would produce;
    the microarchitectural state (cache, predictors, fill buffer)
    additionally reflects both the committed and the transient behaviour.
    All per-instruction metadata (register indices, ports, latency class,
    memory accessor) comes from the precomputed {!Compiled.desc}s.

    @raise Semantics.Division_fault, Memory.Fault as the emulator does. *)

type mark
(** Fingerprint of the cross-run microarchitectural state — the predictor
    tables (PHT/BTB version counters plus an RSB snapshot). The cache,
    fill buffer and page bits are deliberately absent: within a
    measurement session they are re-established canonically before every
    run (cache priming, per-input fill-buffer load, assist-bit clearing),
    so the predictors are the only state one run can leak into the next.
    Used by the executor's measurement memoization: if the mark before a
    run equals the mark before an earlier run of the same input template,
    and that earlier run did not change the mark, the new run is
    guaranteed to reproduce the earlier trace bit for bit. *)

val mark : t -> mark
val mark_matches : t -> mark -> bool

val events : t -> event list
(** Speculation episodes of the most recent {!run}, in execution order. *)

val port_counts : t -> int array
(** µops issued per execution port during the most recent {!run},
    including transient µops that beat the squash — the observable of the
    port-contention channel (extension, cf. §7). *)

val all_kinds : speculation_kind list
(** Every mechanism, in declaration order (coverage enumerations). *)

val kind_to_string : speculation_kind -> string

val kind_of_string : string -> speculation_kind option
(** Inverse of {!kind_to_string}. *)

val pp_event : Format.formatter -> event -> unit
