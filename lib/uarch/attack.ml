open Revizor_emu

type mode = Prime_probe | Flush_reload | Evict_reload | Port_contention
type threat = { mode : mode; assist_page : int option }

let prime_probe = { mode = Prime_probe; assist_page = None }
let prime_probe_assist = { mode = Prime_probe; assist_page = Some 0 }
let flush_reload = { mode = Flush_reload; assist_page = None }
let evict_reload = { mode = Evict_reload; assist_page = None }
let port_contention = { mode = Port_contention; assist_page = None }

let mode_to_string = function
  | Prime_probe -> "Prime+Probe"
  | Flush_reload -> "Flush+Reload"
  | Evict_reload -> "Evict+Reload"
  | Port_contention -> "Port-Contention"

let threat_to_string t =
  mode_to_string t.mode ^ match t.assist_page with Some _ -> "+Assist" | None -> ""

let monitored_lines = Layout.data_pages * Layout.page_size / Layout.cache_line

let line_addr line =
  Int64.add Layout.sandbox_base (Int64.of_int (line * Layout.cache_line))

let observe cpu threat run =
  let cache = Cpu.cache cpu in
  (match threat.assist_page with
  | Some page -> Page_table.clear_accessed (Cpu.pages cpu) ~page
  | None -> ());
  (match threat.mode with
  | Prime_probe | Evict_reload -> Cache.prime cache
  | Flush_reload ->
      for line = 0 to monitored_lines - 1 do
        Cache.flush_line cache (line_addr line)
      done
  | Port_contention -> ());
  run ();
  match threat.mode with
  | Prime_probe ->
      let acc = ref Htrace.empty in
      Cache.probe_evicted cache (fun set -> acc := Htrace.add set !acc);
      !acc
  | Flush_reload | Evict_reload ->
      let acc = ref Htrace.empty in
      for line = 0 to monitored_lines - 1 do
        if Cache.contains cache (line_addr line) then acc := Htrace.add line !acc
      done;
      !acc
  | Port_contention ->
      let counts = Cpu.port_counts cpu in
      let acc = ref Htrace.empty in
      Array.iteri
        (fun port count ->
          if count > 0 then
            acc := Htrace.add (Ports.observation ~port ~count) !acc)
        counts;
      !acc

let trace_domain = function
  | Prime_probe -> Layout.l1d_sets
  | Flush_reload | Evict_reload -> monitored_lines
  | Port_contention -> Ports.n_ports * Ports.buckets
