open Revizor_emu

type t = {
  n_sets : int;
  ways : int;
  (* [lines.(set).(way)] is a line tag; [lru.(set).(way)] is the recency
     rank (0 = most recent). Empty ways hold [empty_tag]. Tags are native
     ints (sandbox addresses are far below 2^62), so the way-scan compares
     unboxed ints instead of structurally comparing boxed Int64 values —
     this loop runs ~1k times per Prime+Probe observation. *)
  lines : int array array;
  lru : int array array;
  (* Dirty-set tracking for Prime+Probe: once a full {!prime} has put
     every set into its canonical primed state ([primed]), only the sets
     mutated since then (recorded in [dirty.(0..n_dirty-1)], deduplicated
     by [dirty_mark]) can deviate from it. Re-priming and probing then
     visit just those sets instead of the whole cache — the bracketing
     prime/probe pair around every single hardware run is the executor's
     hottest loop, and a short test program touches a handful of sets. *)
  dirty : int array;
  dirty_mark : Bytes.t;
  mutable n_dirty : int;
  mutable primed : bool;
}

let empty_tag = min_int
let attacker_tag way = -1 - way

let create ?(sets = Layout.l1d_sets) ?(ways = Layout.l1d_ways) () =
  {
    n_sets = sets;
    ways;
    lines = Array.init sets (fun _ -> Array.make ways empty_tag);
    lru = Array.init sets (fun _ -> Array.init ways (fun w -> w));
    dirty = Array.make sets 0;
    dirty_mark = Bytes.make sets '\000';
    n_dirty = 0;
    primed = false;
  }

let sets t = t.n_sets

(* Record that [set] may now deviate from the canonical primed state.
   Only meaningful (and only paid for) inside a primed window; outside
   one, [primed = false] forces the next prime/probe to do a full pass
   anyway. *)
let[@inline] mark_dirty t set =
  if t.primed && Bytes.unsafe_get t.dirty_mark set = '\000' then begin
    Bytes.unsafe_set t.dirty_mark set '\001';
    t.dirty.(t.n_dirty) <- set;
    t.n_dirty <- t.n_dirty + 1
  end

let line_of_addr addr = Int64.to_int addr / Layout.cache_line

let set_of_addr t addr = line_of_addr addr mod t.n_sets land (t.n_sets - 1)

let find_way t set tag =
  let ways = t.lines.(set) in
  let rec go w =
    if w >= t.ways then -1 else if ways.(w) = tag then w else go (w + 1)
  in
  go 0

let promote t set way =
  let lru = t.lru.(set) in
  let old_rank = lru.(way) in
  for w = 0 to t.ways - 1 do
    if lru.(w) < old_rank then lru.(w) <- lru.(w) + 1
  done;
  lru.(way) <- 0

let victim_way t set =
  let lru = t.lru.(set) in
  let worst = ref 0 in
  for w = 1 to t.ways - 1 do
    if lru.(w) > lru.(!worst) then worst := w
  done;
  !worst

let touch_tag t set tag =
  mark_dirty t set;
  match find_way t set tag with
  | -1 ->
      let w = victim_way t set in
      t.lines.(set).(w) <- tag;
      promote t set w;
      `Miss
  | w ->
      promote t set w;
      `Hit

let touch t addr =
  let tag = line_of_addr addr in
  touch_tag t (set_of_addr t addr) tag

let contains t addr =
  find_way t (set_of_addr t addr) (line_of_addr addr) >= 0

let flush_line t addr =
  let set = set_of_addr t addr in
  match find_way t set (line_of_addr addr) with
  | -1 -> ()
  | w ->
      mark_dirty t set;
      t.lines.(set).(w) <- empty_tag

let flush_all t =
  Array.iter (fun set -> Array.fill set 0 t.ways empty_tag) t.lines;
  (* No set is canonical any more; the next prime does a full pass. *)
  t.primed <- false;
  Bytes.fill t.dirty_mark 0 t.n_sets '\000';
  t.n_dirty <- 0

(* Priming touches attacker tags 0..ways-1 in order. Whatever the prior
   contents, the set ends up holding exactly the attacker tags with tag w
   at recency rank [ways-1-w] (victims of the pass are always untouched
   ways, so a touched attacker line is never re-evicted). Since every
   cache operation depends only on the tag->rank mapping — never on which
   physical way holds a tag — we write that canonical end state directly
   instead of simulating the ~sets*ways touches: prime/probe bracket every
   single hardware measurement, making this the executor's hottest loop. *)
let prime_set t set =
  let lines = t.lines.(set) and lru = t.lru.(set) in
  for w = 0 to t.ways - 1 do
    lines.(w) <- attacker_tag w;
    lru.(w) <- t.ways - 1 - w
  done

let prime t =
  if t.primed then begin
    (* Everything outside the dirty list is already canonical. *)
    for k = 0 to t.n_dirty - 1 do
      let set = t.dirty.(k) in
      Bytes.unsafe_set t.dirty_mark set '\000';
      prime_set t set
    done;
    t.n_dirty <- 0
  end
  else begin
    for set = 0 to t.n_sets - 1 do
      prime_set t set
    done;
    Bytes.fill t.dirty_mark 0 t.n_sets '\000';
    t.n_dirty <- 0;
    t.primed <- true
  end

(* The probe pass re-touches every attacker tag; at least one misses iff
   some way no longer holds an attacker line (a victim access evicted it).
   Equivalent single scan, followed by the canonical re-prime the real
   probe loop leaves behind. *)
let probe_set t set =
  let lines = t.lines.(set) in
  let evicted = ref false in
  for w = 0 to t.ways - 1 do
    let tag = lines.(w) in
    (* attacker tags are -1 .. -ways; anything else is a victim line or an
       empty way *)
    if tag >= 0 || tag < -t.ways then evicted := true
  done;
  prime_set t set;
  !evicted

let probe = probe_set

let probe_evicted t f =
  if t.primed then begin
    (* Only dirty sets can deviate from the canonical primed state, so
       the full-cache probe reduces to probing those; re-priming them
       restores the invariant. *)
    for k = 0 to t.n_dirty - 1 do
      let set = t.dirty.(k) in
      Bytes.unsafe_set t.dirty_mark set '\000';
      if probe_set t set then f set
    done;
    t.n_dirty <- 0
  end
  else
    for set = 0 to t.n_sets - 1 do
      if probe_set t set then f set
    done

let copy t =
  {
    t with
    lines = Array.map Array.copy t.lines;
    lru = Array.map Array.copy t.lru;
    dirty = Array.copy t.dirty;
    dirty_mark = Bytes.copy t.dirty_mark;
  }
