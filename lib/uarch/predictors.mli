(** Branch-direction, indirect-target and return predictors.

    These hold the cross-input microarchitectural context that the paper's
    priming technique (§5.3) exploits: they are {e not} reset between
    inputs of a priming sequence, so earlier inputs train them for later
    ones. *)

(** Bimodal pattern history table: per-address 2-bit saturating counters. *)
module Pht : sig
  type t

  val create : ?size:int -> unit -> t
  (** Default size 512 entries; counters start weakly not-taken, matching
      static forward-branch prediction. *)

  val predict : t -> pc:int -> bool
  val update : t -> pc:int -> taken:bool -> unit
  val reset : t -> unit
  val copy : t -> t

  val version : t -> int
  (** Monotone counter of {e effective} table changes: bumped by [reset]
      and by any [update] that writes a value different from the one
      already stored, and by nothing else. Equal versions on the same
      table therefore guarantee bit-identical counters — the cheap
      fixed-point test behind {!Cpu.mark}. *)
end

(** Branch target buffer for indirect jumps: predicts the last observed
    target; predicts "fall through" for a never-seen jump. *)
module Btb : sig
  type t

  val create : ?size:int -> unit -> t
  val predict : t -> pc:int -> int option
  val update : t -> pc:int -> target:int -> unit
  val reset : t -> unit
  val copy : t -> t

  val version : t -> int
  (** Same effective-change counter as {!Pht.version}. *)
end

(** Return stack buffer of bounded depth. On underflow (more returns than
    calls in the buffer) prediction falls back to [None], which the engine
    treats as an unpredicted (hence mispredicted) return. *)
module Rsb : sig
  type t

  val create : ?depth:int -> unit -> t
  (** Default depth 16, as on Skylake. *)

  val push : t -> int -> unit
  (** Push a return target on CALL; on overflow the oldest entry is lost. *)

  val pop : t -> int option
  (** Predicted return target on RET. *)

  val entries : t -> int list
  (** Current stack contents, newest first, as an immutable snapshot
      ([push]/[pop] never mutate a list they have handed out). At most
      [depth] ints, so structural comparison of two snapshots is cheap —
      the RSB's contribution to {!Cpu.mark}. *)

  val reset : t -> unit
  val copy : t -> t
end
