(* Fixed-width bitset over the observation domain [0, 128).

   Traces are the single most-executed data structure of the pipeline:
   every probe, every noise flip, every analyzer pair comparison and every
   swap-check goes through [union]/[inter]/[subset]/[comparable]/[equal].
   The previous balanced-tree representation (Set.Make (Int)) made each of
   those a tree walk with allocation; here they are 2-4 machine logical
   ops on immutable native-int words.

   Layout: three 63-bit OCaml ints cover bits 0..62 (w0), 63..125 (w1) and
   126..127 (w2). 128 bits is exactly the largest trace domain in use
   (Attack.trace_domain: 64 Prime+Probe sets, 128 Flush/Evict+Reload
   lines, 64 port-contention buckets). *)

type t = { w0 : int; w1 : int; w2 : int }

let width = 128

let empty = { w0 = 0; w1 = 0; w2 = 0 }

let check i =
  if i < 0 || i >= width then
    invalid_arg (Printf.sprintf "Htrace: observation %d outside [0, %d)" i width)

let singleton i =
  check i;
  if i < 63 then { empty with w0 = 1 lsl i }
  else if i < 126 then { empty with w1 = 1 lsl (i - 63) }
  else { empty with w2 = 1 lsl (i - 126) }

let add i t =
  check i;
  if i < 63 then { t with w0 = t.w0 lor (1 lsl i) }
  else if i < 126 then { t with w1 = t.w1 lor (1 lsl (i - 63)) }
  else { t with w2 = t.w2 lor (1 lsl (i - 126)) }

let mem i t =
  i >= 0 && i < width
  &&
  if i < 63 then t.w0 land (1 lsl i) <> 0
  else if i < 126 then t.w1 land (1 lsl (i - 63)) <> 0
  else t.w2 land (1 lsl (i - 126)) <> 0

let of_list l = List.fold_left (fun acc i -> add i acc) empty l
let union a b = { w0 = a.w0 lor b.w0; w1 = a.w1 lor b.w1; w2 = a.w2 lor b.w2 }
let inter a b = { w0 = a.w0 land b.w0; w1 = a.w1 land b.w1; w2 = a.w2 land b.w2 }

let diff a b =
  {
    w0 = a.w0 land lnot b.w0;
    w1 = a.w1 land lnot b.w1;
    w2 = a.w2 land lnot b.w2;
  }

let subset a b =
  a.w0 land lnot b.w0 = 0 && a.w1 land lnot b.w1 = 0 && a.w2 land lnot b.w2 = 0

let equal a b = a.w0 = b.w0 && a.w1 = b.w1 && a.w2 = b.w2
let is_empty t = t.w0 = 0 && t.w1 = 0 && t.w2 = 0
let comparable a b = subset a b || subset b a

(* Any total order works: no caller depends on the ordering itself. *)
let compare a b =
  let c = Int.compare a.w0 b.w0 in
  if c <> 0 then c
  else
    let c = Int.compare a.w1 b.w1 in
    if c <> 0 then c else Int.compare a.w2 b.w2

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal t = popcount t.w0 + popcount t.w1 + popcount t.w2

let iter_word f base w =
  let w = ref w in
  while !w <> 0 do
    let low = !w land - !w in
    (* index of the lowest set bit *)
    let rec idx bit n = if bit = 1 then n else idx (bit lsr 1) (n + 1) in
    f (base + idx low 0);
    w := !w land lnot low
  done

let iter f t =
  iter_word f 0 t.w0;
  iter_word f 63 t.w1;
  iter_word f 126 t.w2

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

(* k-th smallest element without materializing the element list: walk the
   three words lowest-bit-first, counting down. *)
let nth t k =
  if k < 0 || k >= cardinal t then
    invalid_arg (Printf.sprintf "Htrace.nth: index %d out of bounds" k);
  let k = ref k in
  let found = ref (-1) in
  (try
     iter
       (fun i ->
         if !k = 0 then begin
           found := i;
           raise Exit
         end
         else decr k)
       t
   with Exit -> ());
  !found

let max_elt_opt t =
  fold (fun i _ -> Some i) t None

let pp_wide ~width fmt t =
  for i = 0 to width - 1 do
    Format.pp_print_char fmt (if mem i t then '1' else '0')
  done

let pp fmt t =
  let width = match max_elt_opt t with Some m when m >= 64 -> 128 | _ -> 64 in
  pp_wide ~width fmt t
