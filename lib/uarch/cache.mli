(** Set-associative L1D cache model with LRU replacement.

    Lines are identified by their tag (address divided by line size). The
    attacker's priming lines use reserved negative tags so that
    Prime+Probe can be simulated exactly: priming fills every way of every
    set with attacker lines; any victim access evicts one, and the probe
    step detects the eviction. *)

type t

val create : ?sets:int -> ?ways:int -> unit -> t
(** Defaults: {!Layout.l1d_sets} × {!Layout.l1d_ways}. *)

val sets : t -> int

val set_of_addr : t -> int64 -> int

val touch : t -> int64 -> [ `Hit | `Miss ]
(** Access the line containing the address: update LRU, fill on miss. *)

val contains : t -> int64 -> bool
(** Whether the line of this address is currently cached (no LRU update). *)

val flush_line : t -> int64 -> unit
(** CLFLUSH-like invalidation of one line. *)

val flush_all : t -> unit

val prime : t -> unit
(** Fill every way of every set with attacker lines (Prime phase). *)

val probe : t -> int -> bool
(** [probe t set] is [true] iff at least one attacker line was evicted from
    the set since the last {!prime} (Probe phase). Probing re-primes the
    inspected set, as the real attack's probe loop does. *)

val probe_evicted : t -> (int -> unit) -> unit
(** Probe phase over the whole cache: calls the callback once for every
    set from which at least one attacker line was evicted since the last
    {!prime}, and re-primes every such set. Equivalent to {!probe} on
    each set in turn, but after a full prime only the sets actually
    touched since are physically inspected (the rest are still in their
    canonical primed state and would probe [false]). Callback order is
    unspecified. *)

val copy : t -> t
