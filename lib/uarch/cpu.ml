open Revizor_isa
open Revizor_emu

type speculation_kind =
  | Branch_mispredict
  | Return_mispredict
  | Indirect_mispredict
  | Store_bypass
  | Assist_load_forward
  | Assist_store_forward

type event = {
  kind : speculation_kind;
  origin_pc : int;
  transient_loads : int;
  touched_sets : int list;
}

type pending_store = {
  ps_addr : int64;
  ps_width : Width.t;
  ps_old : int64;  (** memory value before the store executed *)
  ps_ready : int;  (** cycle at which the store's address resolves *)
  ps_assist : bool;
}

type timing = {
  mutable fetch_pos : int;
  reg_ready : int array;
  mutable flags_ready : int;
}

type t = {
  cfg : Uarch_config.t;
  cache : Cache.t;
  pht : Predictors.Pht.t;
  btb : Predictors.Btb.t;
  rsb : Predictors.Rsb.t;
  pages : Page_table.t;
  mutable fill_buffer : int64;
  mutable events : event list;
  port_counts : int array;  (** µops issued per execution port, per run *)
  (* Preallocated per-run scratch, reset in place: the executor runs the
     same program thousands of times per test case (warm-up, repetitions,
     swap checks), so none of this may allocate per run — let alone per
     instruction. *)
  tm : timing;
  ab : Compiled.abuf;  (* access buffer shared by all raw actions *)
  saved_regs : int array;  (* reg_ready rollback for transient episodes *)
  saved_arch : int64 array;  (* architectural-register rollback buffer *)
}

let create cfg =
  {
    cfg;
    cache = Cache.create ();
    pht = Predictors.Pht.create ~size:cfg.Uarch_config.pht_size ();
    btb = Predictors.Btb.create ~size:cfg.Uarch_config.btb_size ();
    rsb = Predictors.Rsb.create ~depth:cfg.Uarch_config.rsb_depth ();
    pages = Page_table.create ();
    fill_buffer = 0L;
    events = [];
    port_counts = Array.make Ports.n_ports 0;
    tm = { fetch_pos = 0; reg_ready = Array.make 16 0; flags_ready = 0 };
    ab = Compiled.abuf_create ();
    saved_regs = Array.make 16 0;
    saved_arch = Array.make 16 0L;
  }

let config t = t.cfg
let cache t = t.cache
let pages t = t.pages

let reset_session t =
  Cache.flush_all t.cache;
  Predictors.Pht.reset t.pht;
  Predictors.Btb.reset t.btb;
  Predictors.Rsb.reset t.rsb;
  Page_table.set_all t.pages;
  t.fill_buffer <- 0L;
  t.events <- []

(* Predictor-state fingerprint. The PHT/BTB contribution is the tables'
   effective-change version counters (equal version on the same table =>
   bit-identical contents, see Predictors); the RSB is small enough to
   snapshot structurally. Everything else the executor observes across
   runs of one measurement session — cache prime state, fill buffer,
   page accessed bits — is re-established canonically before each run by
   Attack.observe / the executor itself, so two runs whose marks match
   start from provably identical microarchitectural state. *)
type mark = { mk_pht : int; mk_btb : int; mk_rsb : int list }

let mark t =
  {
    mk_pht = Predictors.Pht.version t.pht;
    mk_btb = Predictors.Btb.version t.btb;
    mk_rsb = Predictors.Rsb.entries t.rsb;
  }

let mark_matches t m =
  Predictors.Pht.version t.pht = m.mk_pht
  && Predictors.Btb.version t.btb = m.mk_btb
  && Predictors.Rsb.entries t.rsb = m.mk_rsb

let events t = List.rev t.events
let fill_buffer t = t.fill_buffer
let set_fill_buffer t v = t.fill_buffer <- v
let port_counts t = Array.copy t.port_counts

let count_ports t (d : Compiled.desc) =
  let ports = d.Compiled.d_ports in
  for k = 0 to Array.length ports - 1 do
    let p = ports.(k) in
    t.port_counts.(p) <- t.port_counts.(p) + 1
  done

let all_kinds =
  [
    Branch_mispredict;
    Return_mispredict;
    Indirect_mispredict;
    Store_bypass;
    Assist_load_forward;
    Assist_store_forward;
  ]

let kind_to_string = function
  | Branch_mispredict -> "branch-mispredict"
  | Return_mispredict -> "return-mispredict"
  | Indirect_mispredict -> "indirect-mispredict"
  | Store_bypass -> "store-bypass"
  | Assist_load_forward -> "assist-load-forward"
  | Assist_store_forward -> "assist-store-forward"

let kind_of_string s =
  List.find_opt (fun k -> kind_to_string k = s) all_kinds

let pp_event fmt e =
  Format.fprintf fmt "%s@pc=%d (transient loads: %d, sets: %s)"
    (kind_to_string e.kind) e.origin_pc e.transient_loads
    (String.concat "," (List.map string_of_int e.touched_sets))

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let fetch_time t tm = tm.fetch_pos / t.cfg.Uarch_config.fetch_width

let src_ready tm (d : Compiled.desc) =
  let srcs = d.Compiled.d_srcs in
  let r = ref 0 in
  for k = 0 to Array.length srcs - 1 do
    let v = tm.reg_ready.(srcs.(k)) in
    if v > !r then r := v
  done;
  if d.Compiled.d_reads_flags && tm.flags_ready > !r then tm.flags_ready else !r

let addr_regs_ready t tm (mr : Compiled.mem_ref) =
  let r i = if i < 0 then 0 else tm.reg_ready.(i) in
  max (r mr.Compiled.mr_base) (r mr.Compiled.mr_index)
  + t.cfg.Uarch_config.lat.Uarch_config.agu

(* Base execution latency, including the operand-dependent division time.
   The memory latency is added separately by the caller, which knows
   whether the access hit. *)
let exec_latency t (state : State.t) (d : Compiled.desc) =
  match d.Compiled.d_lat with
  | Compiled.Lat_div ->
      let dividend = State.get_reg state Reg.RAX d.Compiled.d_div_width in
      Uarch_config.div_latency t.cfg ~dividend
  | Compiled.Lat_mul -> t.cfg.Uarch_config.lat.Uarch_config.mul
  | Compiled.Lat_branch -> t.cfg.Uarch_config.lat.Uarch_config.branch_resolve
  | Compiled.Lat_alu -> t.cfg.Uarch_config.lat.Uarch_config.alu

let overlaps a1 w1 a2 w2 =
  let open Int64 in
  let e1 = add a1 (of_int (Width.bytes w1)) and e2 = add a2 (of_int (Width.bytes w2)) in
  compare a1 e2 < 0 && compare a2 e1 < 0

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let run ?(max_steps = 20000) t prog (state : State.t) =
  t.events <- [];
  Array.fill t.port_counts 0 Ports.n_ports 0;
  let code_len = Compiled.length prog in
  let descs = prog.Compiled.descs in
  let raws = prog.Compiled.raws in
  let ab = t.ab in
  (* One raw step of the instruction at [spc]: architectural effects on
     the state, memory accesses into the shared buffer. *)
  let exec spc =
    Compiled.abuf_clear ab;
    raws.(spc) state ab
  in
  let tm = t.tm in
  tm.fetch_pos <- 0;
  Array.fill tm.reg_ready 0 16 0;
  tm.flags_ready <- 0;
  let pending : pending_store list ref = ref [] in
  let steps = ref 0 in

  (* Run a transient episode: execute from [start_pc] until the squash
     time, the ROB fills, a serializing instruction, a fault, or the end
     of the program. Architectural effects are rolled back; cache touches
     of accesses whose issue time beats the squash remain — that gating is
     what creates the latency races of §6.3. [poison] optionally rewrites
     one memory location first (stale-value forwarding). *)
  let run_transient ~kind ~origin_pc ~start_pc ~squash_time ~poison =
    if start_pc >= 0 && start_pc <= code_len then begin
      (* Episode rollback buffers are reused across episodes and runs;
         episodes never nest, so one of each suffices. Architectural
         rollback is a register blit plus a store-undo journal — a
         transient window executes a handful of stores, so undoing them
         in reverse beats snapshotting the whole sandbox out and back. *)
      Array.blit state.State.regs 0 t.saved_arch 0 16;
      let saved_aflags = state.State.flags in
      let saved_pc = state.State.pc in
      let mark = Memory.journal_begin state.State.mem in
      Array.blit tm.reg_ready 0 t.saved_regs 0 16;
      let saved_flags = tm.flags_ready in
      let saved_fetch = tm.fetch_pos in
      let saved_fill = t.fill_buffer in
      (match poison with
      | Some (addr, w, v) -> Memory.write state.State.mem ~addr w v
      | None -> ());
      state.State.pc <- start_pc;
      let touched = ref [] in
      let loads = ref 0 in
      let budget = ref t.cfg.Uarch_config.rob_size in
      (try
         while state.State.pc < code_len && !budget > 0 do
           let ft = fetch_time t tm in
           if ft >= squash_time then raise Exit;
           let spc = state.State.pc in
           let d = descs.(spc) in
           if d.Compiled.d_serializing then raise Exit;
           tm.fetch_pos <- tm.fetch_pos + 1;
           decr budget;
           let start = max ft (src_ready tm d) in
           if start < squash_time then count_ports t d;
           let lat = exec_latency t state d in
           exec spc;
           let mem_lat = ref 0 in
           for k = 0 to ab.Compiled.ab_len - 1 do
             let addr = ab.Compiled.ab_addr.(k) in
             if start < squash_time then begin
               let hit = Cache.contains t.cache addr in
               let is_store = ab.Compiled.ab_store.(k) in
               let observable =
                 (not is_store) || t.cfg.Uarch_config.speculative_store_eviction
               in
               if observable then begin
                 ignore (Cache.touch t.cache addr);
                 touched := Cache.set_of_addr t.cache addr :: !touched;
                 t.fill_buffer <- ab.Compiled.ab_value.(k)
               end;
               incr loads;
               if not is_store then
                 mem_lat := max !mem_lat (Uarch_config.mem_latency t.cfg ~hit)
             end
             else
               (* the access never issued: dependents stay unready *)
               mem_lat := max !mem_lat (squash_time - start + 1)
           done;
           let completion = start + lat + !mem_lat in
           let dsts = d.Compiled.d_dsts in
           for k = 0 to Array.length dsts - 1 do
             tm.reg_ready.(dsts.(k)) <- completion
           done;
           if d.Compiled.d_writes_flags then tm.flags_ready <- completion
         done
       with
      | Exit -> ()
      | Semantics.Division_fault | Memory.Fault _ -> ());
      Memory.journal_rollback state.State.mem ~mark;
      Memory.journal_end state.State.mem;
      Array.blit t.saved_arch 0 state.State.regs 0 16;
      state.State.flags <- saved_aflags;
      state.State.pc <- saved_pc;
      Array.blit t.saved_regs 0 tm.reg_ready 0 16;
      tm.flags_ready <- saved_flags;
      tm.fetch_pos <- saved_fetch;
      t.fill_buffer <- saved_fill;
      t.events <-
        {
          kind;
          origin_pc;
          transient_loads = !loads;
          touched_sets = List.sort_uniq Stdlib.compare !touched;
        }
        :: t.events
    end
  in

  while state.State.pc >= 0 && state.State.pc < code_len && !steps < max_steps do
    incr steps;
    let pc = state.State.pc in
    let d = descs.(pc) in
    let ft = fetch_time t tm in
    tm.fetch_pos <- tm.fetch_pos + 1;
    if d.Compiled.d_serializing then begin
      (* Full barrier: every earlier instruction completes, every pending
         store resolves, the front end stalls until then. *)
      let horizon = Array.fold_left max tm.flags_ready tm.reg_ready in
      Array.fill tm.reg_ready 0 16 horizon;
      tm.flags_ready <- horizon;
      tm.fetch_pos <- max tm.fetch_pos (horizon * t.cfg.Uarch_config.fetch_width);
      pending := [];
      state.State.pc <- pc + 1
    end
    else begin
      let start = max ft (src_ready tm d) in
      count_ports t d;
      (match !pending with
      | [] -> ()
      | _ -> pending := List.filter (fun ps -> ps.ps_ready > ft) !pending);
      (* Memory-operand resolution, flattened from the previous
         per-instruction [Some (addr, width, ready)] tuple into plain
         locals ([d_mem] carries the shape; [mem_addr]/[mem_ready] are
         only meaningful when it is [Some]). *)
      let mem = d.Compiled.d_mem in
      let mem_addr =
        match mem with Some mr -> mr.Compiled.mr_addr state | None -> 0L
      in
      let mem_ready =
        match mem with Some mr -> addr_regs_ready t tm mr | None -> 0
      in
      (* Microcode assist: first access to a page with a cleared Accessed
         bit. Loads transiently forward stale fill-buffer data (MDS) or
         zeros (MDS patch); stores resolve late and may be bypassed below
         (the LVI-class forwarding failure). *)
      let assist_fired =
        match mem with
        | Some _ when Layout.in_sandbox mem_addr ->
            let page = Layout.page_of_offset (Layout.offset_of_addr mem_addr) in
            Page_table.access t.pages ~page
        | Some _ | None -> false
      in
      let assist_resolve = start + t.cfg.Uarch_config.lat.Uarch_config.assist in
      (if assist_fired && d.Compiled.d_loads then
         match mem with
         | Some mr ->
             let tv = if t.cfg.Uarch_config.mds_patch then 0L else t.fill_buffer in
             (* The assist forwards the bogus value quickly — dependents of
                the poisoned load must not stall on a cache miss. *)
             ignore (Cache.touch t.cache mem_addr);
             run_transient ~kind:Assist_load_forward ~origin_pc:pc ~start_pc:pc
               ~squash_time:assist_resolve
               ~poison:(Some (mem_addr, mr.Compiled.mr_width, tv))
         | None -> ());
      (* Speculative store bypass: a load issuing before an older store's
         address has resolved transiently reads the stale memory value. *)
      (if d.Compiled.d_loads then
         match mem with
         | Some mr ->
             let candidate =
               List.find_opt
                 (fun ps ->
                   ps.ps_ready > start
                   && overlaps mem_addr mr.Compiled.mr_width ps.ps_addr
                        ps.ps_width
                   &&
                   if ps.ps_assist then t.cfg.Uarch_config.assist_forwarding_leak
                   else not t.cfg.Uarch_config.v4_patch)
                 !pending
             in
             (match candidate with
             | Some ps ->
                 let kind =
                   if ps.ps_assist then Assist_store_forward else Store_bypass
                 in
                 run_transient ~kind ~origin_pc:pc ~start_pc:pc
                   ~squash_time:ps.ps_ready
                   ~poison:(Some (ps.ps_addr, ps.ps_width, ps.ps_old))
             | None -> ())
         | None -> ());
      (* Record the pre-store value for the store buffer. *)
      let store_pending =
        d.Compiled.d_stores
        && match mem with Some _ -> true | None -> false
      in
      let store_old =
        if store_pending then
          match mem with
          | Some mr -> Memory.read state.State.mem ~addr:mem_addr mr.Compiled.mr_width
          | None -> 0L
        else 0L
      in
      let lat = exec_latency t state d in
      let load_hit_known =
        d.Compiled.d_loads
        && match mem with Some _ -> true | None -> false
      in
      let load_hit = load_hit_known && Cache.contains t.cache mem_addr in
      (* Branch-prediction bookkeeping around the architectural step (the
         pc after [exec] is the architectural branch target). *)
      (match d.Compiled.d_inst.Instruction.opcode with
      | Opcode.Jcc c ->
          let actual = Flags.eval_cond state.State.flags c in
          let predicted = Predictors.Pht.predict t.pht ~pc in
          let resolve =
            max ft tm.flags_ready + t.cfg.Uarch_config.lat.Uarch_config.branch_resolve
          in
          exec pc;
          if predicted <> actual then begin
            let wrong_pc = if actual then pc + 1 else Compiled.target prog pc in
            run_transient ~kind:Branch_mispredict ~origin_pc:pc ~start_pc:wrong_pc
              ~squash_time:resolve ~poison:None
          end;
          Predictors.Pht.update t.pht ~pc ~taken:actual
      | Opcode.Ret ->
          let predicted = Predictors.Rsb.pop t.rsb in
          let rsp = State.get_reg state Reg.stack_pointer Width.W64 in
          let stack_hit = Cache.contains t.cache rsp in
          exec pc;
          let next = state.State.pc in
          let resolve =
            start + Uarch_config.mem_latency t.cfg ~hit:stack_hit
            + t.cfg.Uarch_config.lat.Uarch_config.branch_resolve
          in
          (match predicted with
          | Some p when p <> next ->
              run_transient ~kind:Return_mispredict ~origin_pc:pc ~start_pc:p
                ~squash_time:resolve ~poison:None
          | Some _ | None -> ())
      | Opcode.JmpInd ->
          let predicted = Predictors.Btb.predict t.btb ~pc in
          exec pc;
          let next = state.State.pc in
          let resolve =
            start + t.cfg.Uarch_config.lat.Uarch_config.branch_resolve
          in
          (match predicted with
          | Some p when p <> next ->
              run_transient ~kind:Indirect_mispredict ~origin_pc:pc ~start_pc:p
                ~squash_time:resolve ~poison:None
          | Some _ | None -> ());
          Predictors.Btb.update t.btb ~pc ~target:next
      | Opcode.Call ->
          exec pc;
          Predictors.Rsb.push t.rsb (pc + 1)
      | _ -> exec pc);
      (* Committed memory effects: cache fills and fill-buffer updates. *)
      let mem_lat = ref 0 in
      if load_hit_known then
        mem_lat := Uarch_config.mem_latency t.cfg ~hit:load_hit;
      (match mem with
      | Some mr ->
          ignore (Cache.touch t.cache mem_addr);
          t.fill_buffer <-
            Memory.read state.State.mem ~addr:mem_addr mr.Compiled.mr_width
      | None -> ());
      (* Implicit stack accesses of CALL/RET also fill the cache. *)
      (match d.Compiled.d_inst.Instruction.opcode with
      | Opcode.Call | Opcode.Ret ->
          let rsp = State.get_reg state Reg.stack_pointer Width.W64 in
          ignore (Cache.touch t.cache rsp)
      | _ -> ());
      (* Register the store in the store buffer for bypass detection. *)
      (if store_pending then
         match mem with
         | Some mr ->
             let ready =
               if assist_fired && not d.Compiled.d_loads then
                 max mem_ready assist_resolve
               else mem_ready
             in
             let ps_assist = assist_fired && not d.Compiled.d_loads in
             pending :=
               {
                 ps_addr = mem_addr;
                 ps_width = mr.Compiled.mr_width;
                 ps_old = store_old;
                 ps_ready = ready;
                 ps_assist;
               }
               :: !pending
         | None -> ());
      let completion = start + lat + !mem_lat + (if assist_fired then t.cfg.Uarch_config.lat.Uarch_config.assist else 0) in
      let dsts = d.Compiled.d_dsts in
      for k = 0 to Array.length dsts - 1 do
        tm.reg_ready.(dsts.(k)) <- completion
      done;
      if d.Compiled.d_writes_flags then tm.flags_ready <- completion
    end
  done
