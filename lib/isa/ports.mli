(** Execution-port model (extension; the paper lists port-contention
    channels as future work in §7).

    A simplified Skylake-like port map: ALU µops issue on ports 0/1/5/6,
    multiplies on port 1, divides on port 0, loads on ports 2/3, stores
    on port 4 (store-data) and 7 (store-address). The simulator counts
    issued µops per port; the port-contention attack observes bucketized
    counts — an SMT sibling measuring its own slowdown. *)

val n_ports : int (* 8 *)

val of_instruction : Instruction.t -> int list
(** Ports used by one dynamic instance of the instruction (one entry per
    µop; duplicates allowed). *)

val buckets : int
(** Observation granularity of the port channel: counts are reported in
    [buckets] logarithmic buckets. *)

val bucket_of_count : int -> int
(** Monotone, 0 for a zero count. *)

val observation : port:int -> count:int -> int
(** Encode (port, bucketized count) into an {!Htrace} element. *)
