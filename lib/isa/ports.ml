let n_ports = 8
let alu_port = 0 (* rotate over 0,1,5,6 is overkill; keep deterministic *)
let mul_port = 1
let div_port = 0
let load_port = 2
let store_data_port = 4
let store_addr_port = 7
let branch_port = 6

let of_instruction (i : Instruction.t) =
  let mem_ports =
    (if Instruction.loads i then [ load_port ] else [])
    @ if Instruction.stores i then [ store_data_port; store_addr_port ] else []
  in
  let exec_ports =
    match i.Instruction.opcode with
    | Opcode.Imul -> [ mul_port ]
    | Opcode.Div | Opcode.Idiv -> [ div_port; div_port; div_port ]
    | Opcode.Jcc _ | Opcode.Jmp | Opcode.JmpInd | Opcode.Call | Opcode.Ret ->
        [ branch_port ]
    | Opcode.Lfence | Opcode.Mfence | Opcode.Nop -> []
    | Opcode.Add | Opcode.Adc | Opcode.Sub | Opcode.Sbb | Opcode.And
    | Opcode.Or | Opcode.Xor | Opcode.Cmp | Opcode.Test | Opcode.Mov
    | Opcode.Inc | Opcode.Dec | Opcode.Neg | Opcode.Not | Opcode.Shl
    | Opcode.Shr | Opcode.Sar | Opcode.Rol | Opcode.Ror | Opcode.Movzx
    | Opcode.Movsx | Opcode.Xchg | Opcode.Cmov _ | Opcode.Setcc _ ->
        [ alu_port ]
  in
  exec_ports @ mem_ports

let buckets = 8

let bucket_of_count c =
  if c <= 0 then 0
  else
    let rec log2 n acc = if n <= 1 then acc else log2 (n / 2) (acc + 1) in
    min (buckets - 1) (1 + log2 c 0)

let observation ~port ~count = (port * buckets) + bucket_of_count count
