open Revizor_isa

type t = {
  regs : int64 array;
  mutable flags : Flags.t;
  mem : Memory.t;
  mutable pc : int;
}

let create () =
  let regs = Array.make 16 0L in
  regs.(Reg.index Reg.sandbox_base) <- Layout.sandbox_base;
  regs.(Reg.index Reg.stack_pointer) <- Layout.stack_top;
  { regs; flags = Flags.empty; mem = Memory.create (); pc = 0 }

let get_reg t r w = Word.zext w t.regs.(Reg.index r)

let set_reg t r w v =
  let i = Reg.index r in
  t.regs.(i) <- Word.merge w ~old:t.regs.(i) v

type snapshot = {
  s_regs : int64 array;
  mutable s_flags : Flags.t;
  s_mem : bytes;
  mutable s_pc : int;
}

let snapshot t =
  { s_regs = Array.copy t.regs;
    s_flags = t.flags;
    s_mem = Memory.snapshot t.mem;
    s_pc = t.pc }

(* Refill an existing snapshot in place: the speculative-exploration hot
   loop takes a snapshot per clause, and reusing per-depth buffers keeps
   that allocation-free. *)
let snapshot_into t s =
  Array.blit t.regs 0 s.s_regs 0 16;
  s.s_flags <- t.flags;
  Memory.snapshot_into t.mem s.s_mem;
  s.s_pc <- t.pc

let restore t s =
  Array.blit s.s_regs 0 t.regs 0 16;
  t.flags <- s.s_flags;
  Memory.restore t.mem s.s_mem;
  t.pc <- s.s_pc

let copy t =
  { regs = Array.copy t.regs; flags = t.flags; mem = Memory.copy t.mem; pc = t.pc }

let copy_into src ~dst =
  Array.blit src.regs 0 dst.regs 0 16;
  dst.flags <- src.flags;
  Memory.blit_into src.mem ~dst:dst.mem;
  dst.pc <- src.pc

let equal_arch a b =
  a.regs = b.regs && Flags.equal a.flags b.flags && Memory.equal a.mem b.mem

let pp fmt t =
  Format.fprintf fmt "@[<v>pc=%d flags=%a" t.pc Flags.pp t.flags;
  List.iter
    (fun r ->
      Format.fprintf fmt "@,%s = 0x%Lx" (Reg.name r Width.W64)
        t.regs.(Reg.index r))
    Reg.gen_pool;
  Format.fprintf fmt "@]"
