open Revizor_isa

type t = { data : bytes }

exception Fault of int64

let create () = { data = Bytes.make Layout.sandbox_size '\000' }

let check t addr width =
  let off = Int64.sub addr Layout.sandbox_base in
  if
    Int64.compare off 0L < 0
    || Int64.compare
         (Int64.add off (Int64.of_int (Width.bytes width)))
         (Int64.of_int (Bytes.length t.data))
       > 0
  then raise (Fault addr);
  Int64.to_int off

(* Little-endian accessors: single (unaligned) machine loads and stores
   instead of per-byte Int64 shifting — these run on every emulated memory
   access of both the model and the executor. *)

let read t ~addr width =
  let off = check t addr width in
  match width with
  | Width.W8 -> Int64.of_int (Bytes.get_uint8 t.data off)
  | Width.W16 -> Int64.of_int (Bytes.get_uint16_le t.data off)
  | Width.W32 ->
      Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data off)) 0xFFFF_FFFFL
  | Width.W64 -> Bytes.get_int64_le t.data off

let write t ~addr width v =
  let off = check t addr width in
  match width with
  | Width.W8 -> Bytes.set_uint8 t.data off (Int64.to_int v land 0xFF)
  | Width.W16 -> Bytes.set_uint16_le t.data off (Int64.to_int v land 0xFFFF)
  | Width.W32 -> Bytes.set_int32_le t.data off (Int64.to_int32 v)
  | Width.W64 -> Bytes.set_int64_le t.data off v

let read_byte t off = Char.code (Bytes.get t.data off)
let write_data_word t ~word v = Bytes.set_int64_le t.data (word * 8) v
let write_byte t off v = Bytes.set t.data off (Char.chr (v land 0xFF))

let fill t ~f =
  for off = 0 to Bytes.length t.data - 1 do
    let v = if off < Layout.data_pages * Layout.page_size then f off land 0xFF else 0 in
    Bytes.set t.data off (Char.chr v)
  done

let snapshot t = Bytes.copy t.data
let restore t snap = Bytes.blit snap 0 t.data 0 (Bytes.length t.data)
let copy t = { data = Bytes.copy t.data }
let blit_into src ~dst = Bytes.blit src.data 0 dst.data 0 (Bytes.length src.data)
let equal a b = Bytes.equal a.data b.data
