open Revizor_isa

type t = {
  data : bytes;
  (* Store-undo journal: while [j_on], every {!write} first saves the
     overwritten bytes, so a transient episode can be rolled back by
     undoing its few stores in reverse instead of blitting the whole
     sandbox out and back (2 × 8 KiB per speculation episode, on the
     executor's hottest path). Entries pack [off lsl 4 lor len] in
     [j_meta] with the old bytes at [j_old.(8k..)]. Reverse-order replay
     makes duplicate entries for the same location harmless. *)
  mutable j_on : bool;
  mutable j_n : int;
  mutable j_meta : int array;
  mutable j_old : bytes;
}

exception Fault of int64

let create () =
  {
    data = Bytes.make Layout.sandbox_size '\000';
    j_on = false;
    j_n = 0;
    j_meta = Array.make 32 0;
    j_old = Bytes.create (8 * 32);
  }

let journal_note t off len =
  if t.j_n >= Array.length t.j_meta then begin
    let n = 2 * Array.length t.j_meta in
    let meta = Array.make n 0 in
    Array.blit t.j_meta 0 meta 0 t.j_n;
    t.j_meta <- meta;
    let old = Bytes.create (8 * n) in
    Bytes.blit t.j_old 0 old 0 (8 * t.j_n);
    t.j_old <- old
  end;
  Bytes.blit t.data off t.j_old (8 * t.j_n) len;
  t.j_meta.(t.j_n) <- (off lsl 4) lor len;
  t.j_n <- t.j_n + 1

let journal_begin t =
  t.j_on <- true;
  t.j_n

let journal_rollback t ~mark =
  for k = t.j_n - 1 downto mark do
    let e = t.j_meta.(k) in
    Bytes.blit t.j_old (8 * k) t.data (e lsr 4) (e land 0xF)
  done;
  t.j_n <- mark

let journal_end t =
  t.j_on <- false;
  t.j_n <- 0

let check t addr width =
  let off = Int64.sub addr Layout.sandbox_base in
  if
    Int64.compare off 0L < 0
    || Int64.compare
         (Int64.add off (Int64.of_int (Width.bytes width)))
         (Int64.of_int (Bytes.length t.data))
       > 0
  then raise (Fault addr);
  Int64.to_int off

(* Little-endian accessors: single (unaligned) machine loads and stores
   instead of per-byte Int64 shifting — these run on every emulated memory
   access of both the model and the executor. *)

let read t ~addr width =
  let off = check t addr width in
  match width with
  | Width.W8 -> Int64.of_int (Bytes.get_uint8 t.data off)
  | Width.W16 -> Int64.of_int (Bytes.get_uint16_le t.data off)
  | Width.W32 ->
      Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data off)) 0xFFFF_FFFFL
  | Width.W64 -> Bytes.get_int64_le t.data off

let write t ~addr width v =
  let off = check t addr width in
  if t.j_on then journal_note t off (Width.bytes width);
  match width with
  | Width.W8 -> Bytes.set_uint8 t.data off (Int64.to_int v land 0xFF)
  | Width.W16 -> Bytes.set_uint16_le t.data off (Int64.to_int v land 0xFFFF)
  | Width.W32 -> Bytes.set_int32_le t.data off (Int64.to_int32 v)
  | Width.W64 -> Bytes.set_int64_le t.data off v

let read_byte t off = Char.code (Bytes.get t.data off)
let write_data_word t ~word v = Bytes.set_int64_le t.data (word * 8) v
let write_byte t off v = Bytes.set t.data off (Char.chr (v land 0xFF))

let fill t ~f =
  for off = 0 to Bytes.length t.data - 1 do
    let v = if off < Layout.data_pages * Layout.page_size then f off land 0xFF else 0 in
    Bytes.set t.data off (Char.chr v)
  done

let snapshot t = Bytes.copy t.data
let snapshot_into t buf = Bytes.blit t.data 0 buf 0 (Bytes.length t.data)
let restore t snap = Bytes.blit snap 0 t.data 0 (Bytes.length t.data)
let raw t = t.data

let copy t =
  let c = create () in
  Bytes.blit t.data 0 c.data 0 (Bytes.length t.data);
  c
let blit_into src ~dst = Bytes.blit src.data 0 dst.data 0 (Bytes.length src.data)
let equal a b = Bytes.equal a.data b.data
