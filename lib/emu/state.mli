open Revizor_isa

(** Architectural machine state: register file, status flags, sandbox
    memory and program counter (an index into the flattened program). *)

type t = {
  regs : int64 array;  (** indexed by {!Reg.index} *)
  mutable flags : Flags.t;
  mem : Memory.t;
  mutable pc : int;
}

val create : unit -> t
(** Fresh state: registers zero except R14 = sandbox base and
    RSP = stack top; empty flags; zeroed memory; pc = 0. *)

val get_reg : t -> Reg.t -> Width.t -> int64
(** Zero-extended read of the register at the given width. *)

val set_reg : t -> Reg.t -> Width.t -> int64 -> unit
(** x86 merge semantics (32-bit writes zero the upper half). *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val snapshot_into : t -> snapshot -> unit
(** Refill an existing snapshot in place (no allocation) — the buffer
    reuse path for the per-depth snapshot arenas of the speculative
    walkers. *)

val copy : t -> t

val copy_into : t -> dst:t -> unit
(** Overwrite [dst] with [src] (registers, flags, memory, pc) without
    allocating: blits into [dst]'s existing buffers. This is the
    fast-restore path for cached input-state templates — materialize a
    state once (e.g. from an input's PRNG stream), then restore it into a
    scratch state before every measurement instead of re-deriving it. *)

val equal_arch : t -> t -> bool
(** Equality of registers, flags and memory (pc ignored). *)

val pp : Format.formatter -> t -> unit
(** Registers of the generator pool, flags and pc (diagnostics). *)
