open Revizor_isa

(** Decode-once compiled programs.

    A fuzzing campaign executes each flat program hundreds of times (model
    pass, nesting re-check, warm-up, measurement repetitions, swap-check
    re-measurements over the whole input sequence), and the interpreted
    path re-derives per-instruction metadata on every step. {!of_flat}
    performs that decoding once, producing per-instruction {!desc}
    metadata plus the semantic action compiled to a closure (threaded-code
    style), so a step is one indirect call instead of a match cascade.

    Execution through a compiled program is bit-identical to
    {!Semantics.step}: same state mutation, same memory-access records in
    the same order, same faults at the same points. {!interpreted} builds
    the same descriptors but routes the action through [Semantics.step] —
    the reference for differential testing and for ruling the compiler
    itself out of a result.

    Values of type {!t} are immutable after construction and the action
    closures keep no shared mutable scratch, so one compiled program is
    safely shared read-only across domains. *)

type abuf = {
  mutable ab_len : int;
  mutable ab_store : bool array;
  mutable ab_addr : int64 array;
  mutable ab_width : Width.t array;
  mutable ab_value : int64 array;
}
(** Reusable, caller-owned memory-access buffer. Raw actions append the
    accesses of one instruction (in occurrence order, [`Store] entries
    flagged in [ab_store]); batched walkers accumulate a whole fused
    block before consuming entries [0 .. ab_len-1]. Entries of a faulting
    instruction may be partially present — consumers must truncate to the
    mark taken before the instruction (see {!abuf_accesses}). *)

type raw = State.t -> abuf -> unit
(** Allocation-free semantic action: mutates the state (including pc) and
    appends memory accesses to the buffer. Raises exactly what
    {!Semantics.step} raises, at the same points, with the same partial
    state mutation. *)

type lat_class =
  | Lat_alu
  | Lat_mul
  | Lat_div  (** latency is dividend-dependent; resolved by the uarch layer *)
  | Lat_branch

type mem_ref = {
  mr_width : Width.t;
  mr_addr : State.t -> int64;  (** pre-resolved effective address *)
  mr_base : int;  (** {!Reg.index} of the base register, or -1 *)
  mr_index : int;  (** {!Reg.index} of the index register, or -1 *)
}

type desc = {
  d_inst : Instruction.t;
  d_serializing : bool;
  d_control_flow : bool;
  d_loads : bool;
  d_stores : bool;
  d_reads_flags : bool;
  d_writes_flags : bool;
  d_cond : Cond.t option;  (** [Some c] iff the instruction is [Jcc c] *)
  d_srcs : int array;  (** {!Reg.index} of every register read *)
  d_dsts : int array;  (** {!Reg.index} of every register written *)
  d_ports : int array;  (** one entry per µop, cf. {!Ports.of_instruction} *)
  d_lat : lat_class;
  d_div_width : Width.t;  (** operand width of a division (else [W64]) *)
  d_mem : mem_ref option;  (** first memory operand, pre-resolved *)
}

type t = private {
  flat : Program.flat;
  descs : desc array;
  actions : (State.t -> Semantics.outcome) array;
      (** legacy outcome-returning actions, layered over {!raws} *)
  raws : raw array;  (** primary allocation-free actions *)
  fused : raw array;
      (** {!raws} with provably-dead flag computation elided; only safe
          inside batched walks whose final flag word is never observed *)
  run_len : int array;
      (** length of the maximal straight-line run starting at each pc
          (no control flow, no serializing instruction) *)
  nostore_len : int array;
      (** like [run_len] but 0 at stores, for store-bypass contracts *)
}

val abuf_create : unit -> abuf
val abuf_clear : abuf -> unit

val abuf_accesses : abuf -> Semantics.access list
(** Materialize entries [0 .. ab_len-1] as an access list, in occurrence
    order. Cold-path only (legacy outcomes, contract stream recording). *)

val of_flat : Program.flat -> t
(** Compile every instruction to a specialised closure. *)

val interpreted : Program.flat -> t
(** Same descriptors, but every action defers to {!Semantics.step} — the
    reference engine for differential tests. *)

val of_program : Program.t -> (t, string) result
val of_program_exn : Program.t -> t
val length : t -> int
val code : t -> Instruction.t array
val target : t -> int -> int
(** Static branch target of the instruction at the given pc. *)

val step : t -> State.t -> Semantics.outcome
(** Execute the instruction at [state.pc]. Raises exactly what
    {!Semantics.step} raises, at the same points, with the same partial
    state mutation. *)

val run : ?max_steps:int -> t -> State.t -> Semantics.outcome list
(** Compiled analogue of {!Semantics.run}. *)
