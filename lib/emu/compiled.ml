open Revizor_isa

(* Decode-once compiled program representation.

   A flat program is executed hundreds of times per test case (model
   pass, nesting re-check, executor warm-up, measurement repetitions and
   swap-check re-measurements over the whole input sequence), and the
   interpreted path re-derives every piece of per-instruction metadata on
   every single step: [Semantics.step] re-matches the opcode and operand
   shape, [Instruction.regs_read]/[regs_written] rebuild and re-sort
   register lists, [Opcode.reads_flags]/[is_serializing] re-classify, and
   [Ports.of_instruction] allocates a fresh list per µop.

   [of_flat] performs all of that work exactly once, producing for each
   instruction (a) a {!desc} of precomputed metadata — register indices
   as int arrays, classification bits as bools, the port list as an int
   array, the memory operand with its effective-address computation
   pre-resolved to a closure — and (b) the semantic action compiled to an
   OCaml closure (threaded-code style), so the per-step dispatch is one
   indirect call instead of a match cascade.

   The primary execution interface is the allocation-free {!raw} form:
   the action mutates the state and appends its memory accesses to a
   caller-owned reusable {!abuf} instead of consing an access list and an
   outcome record per step. The legacy outcome-returning [actions] are a
   thin wrapper over the raw form, kept for the differential tests and
   ad-hoc callers.

   On top of the raw actions, [of_flat] performs two static analyses that
   enable basic-block superinstruction execution in the model:

   - [run_len]/[nostore_len]: for every pc, the length of the maximal
     straight-line run starting there (no control flow, no serializing
     instruction; [nostore_len] additionally stops before stores, for
     contracts with store-bypass clauses). A batched walker can execute
     such a run as one fused block without re-checking any speculation
     clause in between.

   - dead-flag elimination: an instruction's flag computation is elided
     in the [fused] action array when, on every path that continues past
     it, the flags are fully overwritten (ADD/SUB/CMP/AND/OR/XOR/TEST/
     IMUL/NEG) before any instruction can observe them. Observers are
     the flag readers (ADC/SBB/CMOV/SETcc/Jcc) plus the partial flag
     writers that merge old bits (INC/DEC preserve CF; shifts and
     rotates preserve everything when the dynamic count is zero). DIV
     and IDIV neither read nor write flags in the emulator. The analysis
     is a suffix property of the straight-line run, so it holds for any
     entry pc into the run.

   [interpreted] builds the same descriptors but keeps the semantic
   action as a call into {!Semantics.step}; it is the reference the
   compiled engine is differentially tested against (the two must be
   bit-identical: same traces, same faults, same mutated state).

   A compiled program is immutable after construction and holds no
   execution state, so one value is safely shared read-only across
   domains (the parallel model stage). *)

type abuf = {
  mutable ab_len : int;
  mutable ab_store : bool array;
  mutable ab_addr : int64 array;
  mutable ab_width : Width.t array;
  mutable ab_value : int64 array;
}

type raw = State.t -> abuf -> unit
type action = State.t -> Semantics.outcome

(* Latency classification mirroring [Uarch_config.inst_latency]; the
   uarch layer maps a class to cycles for its configuration once per run
   instead of re-matching the opcode per step. [Lat_div] is resolved
   operand-dependently (the dividend's magnitude) by the caller. *)
type lat_class = Lat_alu | Lat_mul | Lat_div | Lat_branch

type mem_ref = {
  mr_width : Width.t;
  mr_addr : State.t -> int64;  (** pre-resolved effective address *)
  mr_base : int;  (** {!Reg.index} of the base register, or -1 *)
  mr_index : int;  (** {!Reg.index} of the index register, or -1 *)
}

type desc = {
  d_inst : Instruction.t;
  d_serializing : bool;
  d_control_flow : bool;
  d_loads : bool;
  d_stores : bool;
  d_reads_flags : bool;
  d_writes_flags : bool;
  d_cond : Cond.t option;  (** [Some c] iff the instruction is [Jcc c] *)
  d_srcs : int array;  (** {!Reg.index} of every register read *)
  d_dsts : int array;  (** {!Reg.index} of every register written *)
  d_ports : int array;  (** one entry per µop, cf. {!Ports.of_instruction} *)
  d_lat : lat_class;
  d_div_width : Width.t;  (** operand width of a division (else W64) *)
  d_mem : mem_ref option;  (** first memory operand, pre-resolved *)
}

type t = {
  flat : Program.flat;
  descs : desc array;
  actions : action array;
  raws : raw array;
  fused : raw array;
  run_len : int array;
  nostore_len : int array;
}

(* ------------------------------------------------------------------ *)
(* Access buffers                                                      *)
(* ------------------------------------------------------------------ *)

let abuf_create () =
  {
    ab_len = 0;
    ab_store = Array.make 8 false;
    ab_addr = Array.make 8 0L;
    ab_width = Array.make 8 Width.W64;
    ab_value = Array.make 8 0L;
  }

let abuf_clear ab = ab.ab_len <- 0

let abuf_grow ab =
  let cap = Array.length ab.ab_store in
  let ncap = 2 * cap in
  let grow a zero =
    let a' = Array.make ncap zero in
    Array.blit a 0 a' 0 cap;
    a'
  in
  ab.ab_store <- grow ab.ab_store false;
  ab.ab_addr <- grow ab.ab_addr 0L;
  ab.ab_width <- grow ab.ab_width Width.W64;
  ab.ab_value <- grow ab.ab_value 0L

let[@inline] abuf_push ab ~is_store ~addr ~width ~value =
  let n = ab.ab_len in
  if n = Array.length ab.ab_store then abuf_grow ab;
  ab.ab_store.(n) <- is_store;
  ab.ab_addr.(n) <- addr;
  ab.ab_width.(n) <- width;
  ab.ab_value.(n) <- value;
  ab.ab_len <- n + 1

(* Materialize the recorded accesses as a [Semantics.access] list, in
   occurrence order. Only used on cold paths (legacy outcomes, contract
   stream recording). *)
let abuf_accesses ab =
  let rec go k acc =
    if k < 0 then acc
    else
      go (k - 1)
        ({
           Semantics.kind = (if ab.ab_store.(k) then `Store else `Load);
           addr = ab.ab_addr.(k);
           width = ab.ab_width.(k);
           value = ab.ab_value.(k);
         }
        :: acc)
  in
  go (ab.ab_len - 1) []

(* ------------------------------------------------------------------ *)
(* Operand accessors                                                   *)
(* ------------------------------------------------------------------ *)

(* Effective address, specialised on the operand shape present. The
   arithmetic is kept associatively identical to [Semantics.mem_addr]:
   (base + index*scale) + disp over wrapping Int64. *)
let compile_addr (m : Operand.mem) : State.t -> int64 =
  let disp = Int64.of_int m.Operand.disp in
  match (m.Operand.base, m.Operand.index, m.Operand.scale) with
  | Some b, Some x, 1 ->
      let bi = Reg.index b and xi = Reg.index x in
      fun st ->
        Int64.add (Int64.add st.State.regs.(bi) st.State.regs.(xi)) disp
  | Some b, Some x, s ->
      let bi = Reg.index b and xi = Reg.index x and sc = Int64.of_int s in
      fun st ->
        Int64.add
          (Int64.add st.State.regs.(bi) (Int64.mul st.State.regs.(xi) sc))
          disp
  | Some b, None, _ ->
      let bi = Reg.index b in
      fun st -> Int64.add (Int64.add st.State.regs.(bi) 0L) disp
  | None, Some x, s ->
      let xi = Reg.index x and sc = Int64.of_int s in
      fun st -> Int64.add (Int64.mul st.State.regs.(xi) sc) disp
  | None, None, _ -> fun _ -> disp

(* Accesses are recorded only after the memory operation succeeded, so a
   faulting access never appears in the buffer (matching the interpreter,
   whose outcome never materializes on a fault). *)
let[@inline] load (st : State.t) ab addr width =
  let value = Memory.read st.State.mem ~addr width in
  abuf_push ab ~is_store:false ~addr ~width ~value;
  value

let[@inline] store (st : State.t) ab addr width value =
  Memory.write st.State.mem ~addr width value;
  abuf_push ab ~is_store:true ~addr ~width ~value

(* Zero-extended register read at a fixed width. *)
let compile_reg_read r w : State.t -> int64 =
  let i = Reg.index r in
  match w with
  | Width.W64 -> fun st -> st.State.regs.(i)
  | _ ->
      let mask = Width.mask w in
      fun st -> Int64.logand st.State.regs.(i) mask

(* Register write with x86 merge semantics at a fixed width. *)
let compile_reg_write r w : State.t -> int64 -> unit =
  let i = Reg.index r in
  match w with
  | Width.W64 -> fun st v -> st.State.regs.(i) <- v
  | Width.W32 ->
      fun st v -> st.State.regs.(i) <- Int64.logand v 0xFFFF_FFFFL
  | Width.W8 | Width.W16 ->
      let mask = Width.mask w in
      let keep = Int64.lognot mask in
      fun st v ->
        st.State.regs.(i) <-
          Int64.logor (Int64.logand st.State.regs.(i) keep) (Int64.logand v mask)

let bad_dst () : 'a = invalid_arg "Semantics: immediate destination"

(* Source operand read (zero-extended), cf. [Semantics.read_src]. [w] is
   the instruction's operand width, used only for immediates. *)
let compile_read_src w (op : Operand.t) : State.t -> abuf -> int64 =
  match op with
  | Operand.Reg (r, w') ->
      let f = compile_reg_read r w' in
      fun st _ -> f st
  | Operand.Imm v ->
      let c = Word.zext w v in
      fun _ _ -> c
  | Operand.Mem (m, w') ->
      let af = compile_addr m in
      fun st ab -> load st ab (af st) w'

(* Destination read for read-modify-write, cf. [Semantics.read_dst]. *)
let compile_read_dst (op : Operand.t) : State.t -> abuf -> int64 =
  match op with
  | Operand.Reg (r, w) ->
      let f = compile_reg_read r w in
      fun st _ -> f st
  | Operand.Mem (m, w) ->
      let af = compile_addr m in
      fun st ab -> load st ab (af st) w
  | Operand.Imm _ -> fun _ _ -> bad_dst ()

let compile_write_dst (op : Operand.t) : State.t -> abuf -> int64 -> unit =
  match op with
  | Operand.Reg (r, w) ->
      let f = compile_reg_write r w in
      fun st _ v -> f st v
  | Operand.Mem (m, w) ->
      let af = compile_addr m in
      fun st ab v -> store st ab (af st) w (Word.zext w v)
  | Operand.Imm _ -> fun _ _ _ -> bad_dst ()

let operand_width (i : Instruction.t) =
  match List.find_map (fun op -> Operand.width op) i.Instruction.operands with
  | Some w -> w
  | None -> Width.W64

(* ------------------------------------------------------------------ *)
(* Semantic-action compilation                                         *)
(* ------------------------------------------------------------------ *)

(* Each compiled body performs the instruction's register/flag/memory
   effects against [(state, abuf)]; the shared wrapper advances pc.
   [~flags:false] compiles the dead-flag variant: identical register and
   memory effects (same loads and stores, in the same order, faulting at
   the same points) but without computing or writing the flag word. It
   is only ever requested for positions the liveness analysis proved
   unobservable, so eliding it cannot change any trace. *)

let compile_binop ~flags (i : Instruction.t) dst src : State.t -> abuf -> unit =
  let w = operand_width i in
  let rd = compile_read_dst dst in
  let rs = compile_read_src w src in
  let wr = compile_write_dst dst in
  match i.Instruction.opcode with
  | Opcode.Mov -> fun st ab -> wr st ab (rs st ab)
  | Opcode.Add ->
      if flags then fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        let r = Word.zext w (Int64.add a b) in
        st.State.flags <- Flags.after_add w ~a ~b ~carry_in:false ~r;
        wr st ab r
      else fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        wr st ab (Word.zext w (Int64.add a b))
  | Opcode.Adc ->
      if flags then fun st ab ->
        let flags = st.State.flags in
        let a = rd st ab in
        let b = rs st ab in
        let c = if flags.Flags.cf then 1L else 0L in
        let r = Word.zext w (Int64.add (Int64.add a b) c) in
        st.State.flags <- Flags.after_add w ~a ~b ~carry_in:flags.Flags.cf ~r;
        wr st ab r
      else fun st ab ->
        let c = if st.State.flags.Flags.cf then 1L else 0L in
        let a = rd st ab in
        let b = rs st ab in
        wr st ab (Word.zext w (Int64.add (Int64.add a b) c))
  | Opcode.Sub ->
      if flags then fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        let r = Word.zext w (Int64.sub a b) in
        st.State.flags <- Flags.after_sub w ~a ~b ~borrow_in:false ~r;
        wr st ab r
      else fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        wr st ab (Word.zext w (Int64.sub a b))
  | Opcode.Sbb ->
      if flags then fun st ab ->
        let flags = st.State.flags in
        let a = rd st ab in
        let b = rs st ab in
        let c = if flags.Flags.cf then 1L else 0L in
        let r = Word.zext w (Int64.sub (Int64.sub a b) c) in
        st.State.flags <- Flags.after_sub w ~a ~b ~borrow_in:flags.Flags.cf ~r;
        wr st ab r
      else fun st ab ->
        let c = if st.State.flags.Flags.cf then 1L else 0L in
        let a = rd st ab in
        let b = rs st ab in
        wr st ab (Word.zext w (Int64.sub (Int64.sub a b) c))
  | Opcode.Cmp ->
      if flags then fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        let r = Word.zext w (Int64.sub a b) in
        st.State.flags <- Flags.after_sub w ~a ~b ~borrow_in:false ~r
      else fun st ab ->
        (* Loads (and their faults) must still happen, in order. *)
        let _ = rd st ab in
        let _ = rs st ab in
        ()
  | Opcode.And ->
      if flags then fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        let r = Word.zext w (Int64.logand a b) in
        st.State.flags <- Flags.after_logic w ~r;
        wr st ab r
      else fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        wr st ab (Word.zext w (Int64.logand a b))
  | Opcode.Or ->
      if flags then fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        let r = Word.zext w (Int64.logor a b) in
        st.State.flags <- Flags.after_logic w ~r;
        wr st ab r
      else fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        wr st ab (Word.zext w (Int64.logor a b))
  | Opcode.Xor ->
      if flags then fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        let r = Word.zext w (Int64.logxor a b) in
        st.State.flags <- Flags.after_logic w ~r;
        wr st ab r
      else fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        wr st ab (Word.zext w (Int64.logxor a b))
  | Opcode.Test ->
      if flags then fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        let r = Word.zext w (Int64.logand a b) in
        st.State.flags <- Flags.after_logic w ~r
      else fun st ab ->
        let _ = rd st ab in
        let _ = rs st ab in
        ()
  | Opcode.Imul ->
      if flags then fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        let sa = Word.sext w a and sb = Word.sext w b in
        let full = Int64.mul sa sb in
        let r = Word.zext w full in
        let full_overflow =
          match w with
          | Width.W64 ->
              sa <> 0L
              && (Int64.div full sa <> sb || (sa = -1L && sb = Int64.min_int))
          | Width.W8 | Width.W16 | Width.W32 -> Word.sext w full <> full
        in
        st.State.flags <- Flags.after_imul w ~full_overflow ~r;
        wr st ab r
      else fun st ab ->
        let a = rd st ab in
        let b = rs st ab in
        wr st ab (Word.zext w (Int64.mul (Word.sext w a) (Word.sext w b)))
  | Opcode.Cmov c -> (
      match dst with
      | Operand.Reg (r, w') ->
          let rold = compile_reg_read r w' in
          fun st ab ->
            let b = rs st ab in
            let old = rold st in
            let v = if Flags.eval_cond st.State.flags c then b else old in
            wr st ab v
      | Operand.Mem _ | Operand.Imm _ ->
          fun _ _ -> invalid_arg "CMOV destination")
  | Opcode.Movzx -> fun st ab -> wr st ab (rs st ab)
  | Opcode.Movsx ->
      let ws = match Operand.width src with Some w' -> w' | None -> w in
      fun st ab -> wr st ab (Word.sext ws (rs st ab))
  | Opcode.Xchg -> (
      match (dst, src) with
      | Operand.Reg (ra, wa), Operand.Reg (rb, _) ->
          let ra_rd = compile_reg_read ra wa
          and rb_rd = compile_reg_read rb wa
          and ra_wr = compile_reg_write ra wa
          and rb_wr = compile_reg_write rb wa in
          fun st _ ->
            let va = ra_rd st and vb = rb_rd st in
            ra_wr st vb;
            rb_wr st va
      | (Operand.Mem _ as mop), Operand.Reg (r, wr')
      | Operand.Reg (r, wr'), (Operand.Mem _ as mop) ->
          let m_rd = compile_read_dst mop and m_wr = compile_write_dst mop in
          let r_rd = compile_reg_read r wr' and r_wr = compile_reg_write r wr' in
          fun st ab ->
            let vm = m_rd st ab in
            let vr = r_rd st in
            m_wr st ab vr;
            r_wr st vm
      | _ -> fun _ _ -> invalid_arg "XCHG operands")
  | Opcode.Rol | Opcode.Ror ->
      let op = if i.Instruction.opcode = Opcode.Rol then `Rol else `Ror in
      let count_mask = if Width.equal w Width.W64 then 63L else 31L in
      let bits = Width.bits w in
      let result a' eff =
        if eff = 0 then a'
        else
          match op with
          | `Rol ->
              Word.zext w
                (Int64.logor (Int64.shift_left a' eff)
                   (Int64.shift_right_logical a' (bits - eff)))
          | `Ror ->
              Word.zext w
                (Int64.logor
                   (Int64.shift_right_logical a' eff)
                   (Int64.shift_left a' (bits - eff)))
      in
      if flags then
        (fun st ab ->
          let flags = st.State.flags in
          let a = rd st ab in
          let raw_count = rs st ab in
          let count = Int64.to_int (Int64.logand raw_count count_mask) in
          let eff = count mod bits in
          let a' = Word.zext w a in
          let r = result a' eff in
          st.State.flags <- Flags.after_rotate w flags ~op ~count ~r;
          if count <> 0 then wr st ab r)
      else
        fun st ab ->
          let a = rd st ab in
          let raw_count = rs st ab in
          let count = Int64.to_int (Int64.logand raw_count count_mask) in
          if count <> 0 then wr st ab (result (Word.zext w a) (count mod bits))
  | Opcode.Shl | Opcode.Shr | Opcode.Sar ->
      let op =
        match i.Instruction.opcode with
        | Opcode.Shl -> `Shl
        | Opcode.Shr -> `Shr
        | _ -> `Sar
      in
      let count_mask = if Width.equal w Width.W64 then 63L else 31L in
      let bits = Width.bits w in
      let result a count =
        match op with
        | `Shl ->
            if count >= bits then 0L
            else Word.zext w (Int64.shift_left (Word.zext w a) count)
        | `Shr ->
            if count >= bits then 0L
            else Int64.shift_right_logical (Word.zext w a) count
        | `Sar ->
            let sa = Word.sext w a in
            let c = min count 63 in
            Word.zext w (Int64.shift_right sa c)
      in
      if flags then
        (fun st ab ->
          let flags = st.State.flags in
          let a = rd st ab in
          let raw_count = rs st ab in
          let count = Int64.to_int (Int64.logand raw_count count_mask) in
          let r = if count = 0 then Word.zext w a else result a count in
          st.State.flags <- Flags.after_shift w flags ~op ~a ~count ~r;
          if count <> 0 then wr st ab r)
      else
        fun st ab ->
          let a = rd st ab in
          let raw_count = rs st ab in
          let count = Int64.to_int (Int64.logand raw_count count_mask) in
          if count <> 0 then wr st ab (result a count)
  | _ -> fun _ _ -> invalid_arg "Semantics.exec_binop"

let compile_unop ~flags (i : Instruction.t) dst : State.t -> abuf -> unit =
  let w = operand_width i in
  let rd = compile_read_dst dst in
  let wr = compile_write_dst dst in
  match i.Instruction.opcode with
  | Opcode.Inc ->
      if flags then fun st ab ->
        let flags = st.State.flags in
        let a = rd st ab in
        let r = Word.zext w (Int64.add a 1L) in
        st.State.flags <- Flags.after_inc w flags ~a ~r;
        wr st ab r
      else fun st ab ->
        let a = rd st ab in
        wr st ab (Word.zext w (Int64.add a 1L))
  | Opcode.Dec ->
      if flags then fun st ab ->
        let flags = st.State.flags in
        let a = rd st ab in
        let r = Word.zext w (Int64.sub a 1L) in
        st.State.flags <- Flags.after_dec w flags ~a ~r;
        wr st ab r
      else fun st ab ->
        let a = rd st ab in
        wr st ab (Word.zext w (Int64.sub a 1L))
  | Opcode.Neg ->
      if flags then fun st ab ->
        let a = rd st ab in
        let r = Word.zext w (Int64.neg a) in
        st.State.flags <- Flags.after_neg w ~a ~r;
        wr st ab r
      else fun st ab ->
        let a = rd st ab in
        wr st ab (Word.zext w (Int64.neg a))
  | Opcode.Not ->
      fun st ab ->
        let a = rd st ab in
        wr st ab (Word.zext w (Int64.lognot a))
  | Opcode.Setcc c ->
      fun st ab ->
        wr st ab (if Flags.eval_cond st.State.flags c then 1L else 0L)
  | _ -> fun _ _ -> invalid_arg "Semantics.exec_unop"

let compile_div (i : Instruction.t) src : State.t -> abuf -> unit =
  let w = operand_width i in
  let rs = compile_read_src w src in
  let rax_rd = compile_reg_read Reg.RAX w
  and rdx_rd = compile_reg_read Reg.RDX w
  and rax_wr = compile_reg_write Reg.RAX w
  and rdx_wr = compile_reg_write Reg.RDX w in
  let signed = i.Instruction.opcode = Opcode.Idiv in
  fun st ab ->
    let divisor = rs st ab in
    let rax = rax_rd st in
    let rdx = rdx_rd st in
    if Word.zext w divisor = 0L then raise Semantics.Division_fault;
    let quotient, remainder =
      if not signed then
        match w with
        | Width.W64 ->
            if rdx <> 0L then raise Semantics.Division_fault
            else (Int64.unsigned_div rax divisor, Int64.unsigned_rem rax divisor)
        | Width.W8 | Width.W16 | Width.W32 ->
            let bits = Width.bits w in
            let dividend = Int64.logor (Int64.shift_left rdx bits) rax in
            let q = Int64.unsigned_div dividend divisor in
            if Int64.unsigned_compare q (Width.mask w) > 0 then
              raise Semantics.Division_fault;
            (q, Int64.unsigned_rem dividend divisor)
      else
        let sd = Word.sext w divisor in
        match w with
        | Width.W64 ->
            let high_ok = rdx = Int64.shift_right rax 63 in
            if not high_ok then raise Semantics.Division_fault;
            if rax = Int64.min_int && sd = -1L then
              raise Semantics.Division_fault;
            (Int64.div rax sd, Int64.rem rax sd)
        | Width.W8 | Width.W16 | Width.W32 ->
            let bits = Width.bits w in
            let dividend = Int64.logor (Int64.shift_left rdx bits) rax in
            let q = Int64.div dividend sd in
            let half = Int64.shift_left 1L (bits - 1) in
            if
              Int64.compare q (Int64.neg half) < 0 || Int64.compare q half >= 0
            then raise Semantics.Division_fault;
            (q, Int64.rem dividend sd)
    in
    rax_wr st quotient;
    rdx_wr st remainder

let compile_raw (flat : Program.flat) pc (i : Instruction.t) ~flags : raw =
  let code_len = Array.length flat.Program.code in
  let fall = pc + 1 in
  let seq (body : State.t -> abuf -> unit) : raw =
   fun st ab ->
    body st ab;
    st.State.pc <- fall
  in
  match (i.Instruction.opcode, i.Instruction.operands) with
  | (Opcode.Lfence | Opcode.Mfence | Opcode.Nop), _ ->
      fun st _ -> st.State.pc <- fall
  | Opcode.Jmp, _ ->
      let target = flat.Program.target.(pc) in
      fun st _ -> st.State.pc <- target
  | Opcode.Jcc c, _ ->
      let target = flat.Program.target.(pc) in
      fun st _ ->
        st.State.pc <-
          (if Flags.eval_cond st.State.flags c then target else fall)
  | Opcode.JmpInd, [ Operand.Reg (r, _) ] ->
      let rd = compile_reg_read r Width.W64 in
      fun st _ -> st.State.pc <- Semantics.mask_code_index ~code_len (rd st)
  | Opcode.Call, _ ->
      let target = flat.Program.target.(pc) in
      let rsp_rd = compile_reg_read Reg.stack_pointer Width.W64
      and rsp_wr = compile_reg_write Reg.stack_pointer Width.W64 in
      let ret_pc = Int64.of_int fall in
      fun st ab ->
        let rsp = Int64.sub (rsp_rd st) 8L in
        rsp_wr st rsp;
        store st ab rsp Width.W64 ret_pc;
        st.State.pc <- target
  | Opcode.Ret, _ ->
      let rsp_rd = compile_reg_read Reg.stack_pointer Width.W64
      and rsp_wr = compile_reg_write Reg.stack_pointer Width.W64 in
      fun st ab ->
        let rsp = rsp_rd st in
        let v = load st ab rsp Width.W64 in
        rsp_wr st (Int64.add rsp 8L);
        st.State.pc <- Semantics.mask_code_index ~code_len v
  | (Opcode.Div | Opcode.Idiv), [ src ] -> seq (compile_div i src)
  | ( ( Opcode.Add | Opcode.Adc | Opcode.Sub | Opcode.Sbb | Opcode.And
      | Opcode.Or | Opcode.Xor | Opcode.Cmp | Opcode.Test | Opcode.Mov
      | Opcode.Imul | Opcode.Cmov _ | Opcode.Shl | Opcode.Shr | Opcode.Sar
      | Opcode.Rol | Opcode.Ror | Opcode.Movzx | Opcode.Movsx | Opcode.Xchg ),
      [ dst; src ] ) ->
      seq (compile_binop ~flags i dst src)
  | (Opcode.Inc | Opcode.Dec | Opcode.Neg | Opcode.Not | Opcode.Setcc _), [ dst ]
    ->
      seq (compile_unop ~flags i dst)
  | op, _ ->
      (* Unsupported shapes fault at execution time, like the interpreter:
         a program containing one on a never-executed path still
         compiles. *)
      fun _ _ ->
        invalid_arg
          (Printf.sprintf "Semantics.step: unsupported %s form"
             (Opcode.mnemonic op))

(* Legacy outcome-returning action, layered over the raw form. The pc
   after the raw action is the outcome's [next] for every opcode shape
   (straight-line actions set it to the fall-through). *)
let action_of_raw pc (i : Instruction.t) (raw : raw) : action =
  let cond =
    match i.Instruction.opcode with Opcode.Jcc c -> Some c | _ -> None
  in
  fun st ->
    let ab = abuf_create () in
    let taken =
      match cond with
      | Some c -> Some (Flags.eval_cond st.State.flags c)
      | None -> None
    in
    raw st ab;
    {
      Semantics.inst = i;
      pc;
      accesses = abuf_accesses ab;
      taken;
      next = st.State.pc;
    }

(* ------------------------------------------------------------------ *)
(* Descriptors                                                         *)
(* ------------------------------------------------------------------ *)

let lat_class_of (op : Opcode.t) =
  match op with
  | Opcode.Imul -> Lat_mul
  | Opcode.Div | Opcode.Idiv -> Lat_div
  | Opcode.Jcc _ | Opcode.Jmp | Opcode.JmpInd | Opcode.Call | Opcode.Ret ->
      Lat_branch
  | _ -> Lat_alu

let desc_of (i : Instruction.t) : desc =
  let mem =
    match Instruction.mem_operand i with
    | None -> None
    | Some (m, w) ->
        Some
          {
            mr_width = w;
            mr_addr = compile_addr m;
            mr_base =
              (match m.Operand.base with Some r -> Reg.index r | None -> -1);
            mr_index =
              (match m.Operand.index with Some r -> Reg.index r | None -> -1);
          }
  in
  let div_width =
    match i.Instruction.opcode with
    | Opcode.Div | Opcode.Idiv -> (
        match Instruction.mem_operand i with
        | Some (_, w) -> w
        | None -> (
            match i.Instruction.operands with
            | [ Operand.Reg (_, w) ] -> w
            | _ -> Width.W64))
    | _ -> Width.W64
  in
  {
    d_inst = i;
    d_serializing = Opcode.is_serializing i.Instruction.opcode;
    d_control_flow = Opcode.is_control_flow i.Instruction.opcode;
    d_loads = Instruction.loads i;
    d_stores = Instruction.stores i;
    d_reads_flags = Opcode.reads_flags i.Instruction.opcode;
    d_writes_flags = Opcode.writes_flags i.Instruction.opcode;
    d_cond = (match i.Instruction.opcode with Opcode.Jcc c -> Some c | _ -> None);
    d_srcs = Array.of_list (List.map Reg.index (Instruction.regs_read i));
    d_dsts = Array.of_list (List.map Reg.index (Instruction.regs_written i));
    d_ports = Array.of_list (Ports.of_instruction i);
    d_lat = lat_class_of i.Instruction.opcode;
    d_div_width = div_width;
    d_mem = mem;
  }

(* ------------------------------------------------------------------ *)
(* Static analyses: straight-line runs and dead flags                  *)
(* ------------------------------------------------------------------ *)

(* Emulator-level flag effects. These deliberately differ from the
   architectural tables in [Opcode]: DIV/IDIV are listed as flag writers
   there (architecturally they leave flags undefined) but the emulator
   gives them no flag effect at all, and the partial writers (INC/DEC,
   shifts, rotates) merge old flag bits so they both observe and write. *)
let emu_writes_flags (op : Opcode.t) =
  match op with
  | Opcode.Add | Opcode.Adc | Opcode.Sub | Opcode.Sbb | Opcode.And | Opcode.Or
  | Opcode.Xor | Opcode.Cmp | Opcode.Test | Opcode.Imul | Opcode.Inc
  | Opcode.Dec | Opcode.Neg | Opcode.Shl | Opcode.Shr | Opcode.Sar | Opcode.Rol
  | Opcode.Ror ->
      true
  | _ -> false

(* Full overwrite with no flag read: executing one of these makes the
   incoming flag word unobservable. ADC/SBB overwrite fully but read CF
   first, so they are observers, not killers. *)
let flag_killer (op : Opcode.t) =
  match op with
  | Opcode.Add | Opcode.Sub | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Cmp
  | Opcode.Test | Opcode.Imul | Opcode.Neg ->
      true
  | _ -> false

let flag_observer (op : Opcode.t) =
  Opcode.reads_flags op
  ||
  match op with
  | Opcode.Inc | Opcode.Dec | Opcode.Shl | Opcode.Shr | Opcode.Sar | Opcode.Rol
  | Opcode.Ror ->
      true
  | _ -> false

(* One backward pass computes, for every pc:
   - [run_len]: length of the maximal straight-line (plain) run starting
     at pc — no control flow, no serializing instruction;
   - [nostore_len]: ditto, additionally 0 at stores (store-bypass
     contracts need their clause checked at every store);
   - [dead]: the instruction writes flags in the emulator and the flag
     word it produces is overwritten by a killer before any observer can
     read it, within the same plain run. Deadness of pc depends only on
     the instructions after pc (a suffix property), so it is valid for
     any entry point into the run, including mid-run entry after a
     store-bypass clause. *)
let analyze (descs : desc array) =
  let n = Array.length descs in
  let run_len = Array.make n 0 in
  let nostore_len = Array.make n 0 in
  let dead = Array.make n false in
  (* kill_ahead.(pc): flags live at entry to pc die before observation. *)
  let kill_ahead = Array.make (n + 1) false in
  for pc = n - 1 downto 0 do
    let d = descs.(pc) in
    let plain = not (d.d_serializing || d.d_control_flow) in
    if plain then begin
      run_len.(pc) <- (1 + if pc + 1 < n then run_len.(pc + 1) else 0);
      if not d.d_stores then
        nostore_len.(pc) <- (1 + if pc + 1 < n then nostore_len.(pc + 1) else 0)
    end;
    let op = d.d_inst.Instruction.opcode in
    kill_ahead.(pc) <-
      plain
      && (if flag_observer op then false
          else if flag_killer op then true
          else kill_ahead.(pc + 1));
    dead.(pc) <- plain && emu_writes_flags op && kill_ahead.(pc + 1)
  done;
  (run_len, nostore_len, dead)

(* ------------------------------------------------------------------ *)
(* Construction and execution                                          *)
(* ------------------------------------------------------------------ *)

let of_flat (flat : Program.flat) : t =
  let descs = Array.map desc_of flat.Program.code in
  let run_len, nostore_len, dead = analyze descs in
  let raws =
    Array.mapi (fun pc i -> compile_raw flat pc i ~flags:true) flat.Program.code
  in
  let fused =
    Array.mapi
      (fun pc i ->
        if dead.(pc) then compile_raw flat pc i ~flags:false else raws.(pc))
      flat.Program.code
  in
  let actions =
    Array.mapi (fun pc i -> action_of_raw pc i raws.(pc)) flat.Program.code
  in
  { flat; descs; actions; raws; fused; run_len; nostore_len }

let interpreted (flat : Program.flat) : t =
  let descs = Array.map desc_of flat.Program.code in
  let run_len, nostore_len, _dead = analyze descs in
  let raw : raw =
   fun st ab ->
    let o = Semantics.step flat st in
    List.iter
      (fun (a : Semantics.access) ->
        abuf_push ab ~is_store:(a.Semantics.kind = `Store) ~addr:a.Semantics.addr
          ~width:a.Semantics.width ~value:a.Semantics.value)
      o.Semantics.accesses
  in
  let raws = Array.map (fun _ -> raw) flat.Program.code in
  {
    flat;
    descs;
    actions = Array.map (fun _ st -> Semantics.step flat st) flat.Program.code;
    raws;
    (* The interpreted engine never elides flags; the differential suite
       exercises exactly the claim that elision is unobservable. *)
    fused = raws;
    run_len;
    nostore_len;
  }

let of_program p = Result.map of_flat (Program.flatten p)
let of_program_exn p = of_flat (Program.flatten_exn p)
let length t = Array.length t.actions
let code t = t.flat.Program.code
let target t pc = t.flat.Program.target.(pc)

let step (t : t) (state : State.t) : Semantics.outcome =
  let pc = state.State.pc in
  if pc < 0 || pc >= Array.length t.actions then
    invalid_arg "Semantics.step: pc out of range";
  t.actions.(pc) state

let run ?(max_steps = 4096) t state =
  let code_len = length t in
  let rec go acc steps =
    if state.State.pc >= code_len || state.State.pc < 0 || steps >= max_steps
    then List.rev acc
    else
      let o = step t state in
      go (o :: acc) (steps + 1)
  in
  go [] 0
