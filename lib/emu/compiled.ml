open Revizor_isa

(* Decode-once compiled program representation.

   A flat program is executed hundreds of times per test case (model
   pass, nesting re-check, executor warm-up, measurement repetitions and
   swap-check re-measurements over the whole input sequence), and the
   interpreted path re-derives every piece of per-instruction metadata on
   every single step: [Semantics.step] re-matches the opcode and operand
   shape, [Instruction.regs_read]/[regs_written] rebuild and re-sort
   register lists, [Opcode.reads_flags]/[is_serializing] re-classify, and
   [Ports.of_instruction] allocates a fresh list per µop.

   [of_flat] performs all of that work exactly once, producing for each
   instruction (a) a {!desc} of precomputed metadata — register indices
   as int arrays, classification bits as bools, the port list as an int
   array, the memory operand with its effective-address computation
   pre-resolved to a closure — and (b) the semantic action compiled to an
   OCaml closure (threaded-code style), so the per-step dispatch is one
   indirect call instead of a match cascade.

   [interpreted] builds the same descriptors but keeps the semantic
   action as a call into {!Semantics.step}; it is the reference the
   compiled engine is differentially tested against (the two must be
   bit-identical: same traces, same faults, same mutated state).

   A compiled program is immutable after construction and holds no
   execution state, so one value is safely shared read-only across
   domains (the parallel model stage). *)

type ectx = { st : State.t; mutable acc : Semantics.access list }

type action = State.t -> Semantics.outcome

(* Latency classification mirroring [Uarch_config.inst_latency]; the
   uarch layer maps a class to cycles for its configuration once per run
   instead of re-matching the opcode per step. [Lat_div] is resolved
   operand-dependently (the dividend's magnitude) by the caller. *)
type lat_class = Lat_alu | Lat_mul | Lat_div | Lat_branch

type mem_ref = {
  mr_width : Width.t;
  mr_addr : State.t -> int64;  (** pre-resolved effective address *)
  mr_base : int;  (** {!Reg.index} of the base register, or -1 *)
  mr_index : int;  (** {!Reg.index} of the index register, or -1 *)
}

type desc = {
  d_inst : Instruction.t;
  d_serializing : bool;
  d_control_flow : bool;
  d_loads : bool;
  d_stores : bool;
  d_reads_flags : bool;
  d_writes_flags : bool;
  d_cond : Cond.t option;  (** [Some c] iff the instruction is [Jcc c] *)
  d_srcs : int array;  (** {!Reg.index} of every register read *)
  d_dsts : int array;  (** {!Reg.index} of every register written *)
  d_ports : int array;  (** one entry per µop, cf. {!Ports.of_instruction} *)
  d_lat : lat_class;
  d_div_width : Width.t;  (** operand width of a division (else W64) *)
  d_mem : mem_ref option;  (** first memory operand, pre-resolved *)
}

type t = {
  flat : Program.flat;
  descs : desc array;
  actions : action array;
}

(* ------------------------------------------------------------------ *)
(* Operand accessors                                                   *)
(* ------------------------------------------------------------------ *)

(* Effective address, specialised on the operand shape present. The
   arithmetic is kept associatively identical to [Semantics.mem_addr]:
   (base + index*scale) + disp over wrapping Int64. *)
let compile_addr (m : Operand.mem) : State.t -> int64 =
  let disp = Int64.of_int m.Operand.disp in
  match (m.Operand.base, m.Operand.index, m.Operand.scale) with
  | Some b, Some x, 1 ->
      let bi = Reg.index b and xi = Reg.index x in
      fun st ->
        Int64.add (Int64.add st.State.regs.(bi) st.State.regs.(xi)) disp
  | Some b, Some x, s ->
      let bi = Reg.index b and xi = Reg.index x and sc = Int64.of_int s in
      fun st ->
        Int64.add
          (Int64.add st.State.regs.(bi) (Int64.mul st.State.regs.(xi) sc))
          disp
  | Some b, None, _ ->
      let bi = Reg.index b in
      fun st -> Int64.add (Int64.add st.State.regs.(bi) 0L) disp
  | None, Some x, s ->
      let xi = Reg.index x and sc = Int64.of_int s in
      fun st -> Int64.add (Int64.mul st.State.regs.(xi) sc) disp
  | None, None, _ -> fun _ -> disp

let load ectx addr width =
  let value = Memory.read ectx.st.State.mem ~addr width in
  ectx.acc <- { Semantics.kind = `Load; addr; width; value } :: ectx.acc;
  value

let store ectx addr width value =
  Memory.write ectx.st.State.mem ~addr width value;
  ectx.acc <- { Semantics.kind = `Store; addr; width; value } :: ectx.acc

(* Zero-extended register read at a fixed width. *)
let compile_reg_read r w : State.t -> int64 =
  let i = Reg.index r in
  match w with
  | Width.W64 -> fun st -> st.State.regs.(i)
  | _ ->
      let mask = Width.mask w in
      fun st -> Int64.logand st.State.regs.(i) mask

(* Register write with x86 merge semantics at a fixed width. *)
let compile_reg_write r w : State.t -> int64 -> unit =
  let i = Reg.index r in
  match w with
  | Width.W64 -> fun st v -> st.State.regs.(i) <- v
  | Width.W32 ->
      fun st v -> st.State.regs.(i) <- Int64.logand v 0xFFFF_FFFFL
  | Width.W8 | Width.W16 ->
      let mask = Width.mask w in
      let keep = Int64.lognot mask in
      fun st v ->
        st.State.regs.(i) <-
          Int64.logor (Int64.logand st.State.regs.(i) keep) (Int64.logand v mask)

let bad_dst () : 'a = invalid_arg "Semantics: immediate destination"

(* Source operand read (zero-extended), cf. [Semantics.read_src]. [w] is
   the instruction's operand width, used only for immediates. *)
let compile_read_src w (op : Operand.t) : ectx -> int64 =
  match op with
  | Operand.Reg (r, w') ->
      let f = compile_reg_read r w' in
      fun ectx -> f ectx.st
  | Operand.Imm v ->
      let c = Word.zext w v in
      fun _ -> c
  | Operand.Mem (m, w') ->
      let af = compile_addr m in
      fun ectx -> load ectx (af ectx.st) w'

(* Destination read for read-modify-write, cf. [Semantics.read_dst]. *)
let compile_read_dst (op : Operand.t) : ectx -> int64 =
  match op with
  | Operand.Reg (r, w) ->
      let f = compile_reg_read r w in
      fun ectx -> f ectx.st
  | Operand.Mem (m, w) ->
      let af = compile_addr m in
      fun ectx -> load ectx (af ectx.st) w
  | Operand.Imm _ -> fun _ -> bad_dst ()

let compile_write_dst (op : Operand.t) : ectx -> int64 -> unit =
  match op with
  | Operand.Reg (r, w) ->
      let f = compile_reg_write r w in
      fun ectx v -> f ectx.st v
  | Operand.Mem (m, w) ->
      let af = compile_addr m in
      fun ectx v -> store ectx (af ectx.st) w (Word.zext w v)
  | Operand.Imm _ -> fun _ _ -> bad_dst ()

let operand_width (i : Instruction.t) =
  match List.find_map (fun op -> Operand.width op) i.Instruction.operands with
  | Some w -> w
  | None -> Width.W64

(* ------------------------------------------------------------------ *)
(* Semantic-action compilation                                         *)
(* ------------------------------------------------------------------ *)

(* Each compiled body receives an [ectx] and performs the instruction's
   register/flag/memory effects; the shared wrapper advances pc and
   packages the outcome exactly like [Semantics.step] does. *)

let compile_binop (i : Instruction.t) dst src : ectx -> unit =
  let w = operand_width i in
  let rd = compile_read_dst dst in
  let rs = compile_read_src w src in
  let wr = compile_write_dst dst in
  match i.Instruction.opcode with
  | Opcode.Mov -> fun ectx -> wr ectx (rs ectx)
  | Opcode.Add ->
      fun ectx ->
        let a = rd ectx in
        let b = rs ectx in
        let r = Word.zext w (Int64.add a b) in
        ectx.st.State.flags <- Flags.after_add w ~a ~b ~carry_in:false ~r;
        wr ectx r
  | Opcode.Adc ->
      fun ectx ->
        let flags = ectx.st.State.flags in
        let a = rd ectx in
        let b = rs ectx in
        let c = if flags.Flags.cf then 1L else 0L in
        let r = Word.zext w (Int64.add (Int64.add a b) c) in
        ectx.st.State.flags <- Flags.after_add w ~a ~b ~carry_in:flags.Flags.cf ~r;
        wr ectx r
  | Opcode.Sub ->
      fun ectx ->
        let a = rd ectx in
        let b = rs ectx in
        let r = Word.zext w (Int64.sub a b) in
        ectx.st.State.flags <- Flags.after_sub w ~a ~b ~borrow_in:false ~r;
        wr ectx r
  | Opcode.Sbb ->
      fun ectx ->
        let flags = ectx.st.State.flags in
        let a = rd ectx in
        let b = rs ectx in
        let c = if flags.Flags.cf then 1L else 0L in
        let r = Word.zext w (Int64.sub (Int64.sub a b) c) in
        ectx.st.State.flags <-
          Flags.after_sub w ~a ~b ~borrow_in:flags.Flags.cf ~r;
        wr ectx r
  | Opcode.Cmp ->
      fun ectx ->
        let a = rd ectx in
        let b = rs ectx in
        let r = Word.zext w (Int64.sub a b) in
        ectx.st.State.flags <- Flags.after_sub w ~a ~b ~borrow_in:false ~r
  | Opcode.And ->
      fun ectx ->
        let a = rd ectx in
        let b = rs ectx in
        let r = Word.zext w (Int64.logand a b) in
        ectx.st.State.flags <- Flags.after_logic w ~r;
        wr ectx r
  | Opcode.Or ->
      fun ectx ->
        let a = rd ectx in
        let b = rs ectx in
        let r = Word.zext w (Int64.logor a b) in
        ectx.st.State.flags <- Flags.after_logic w ~r;
        wr ectx r
  | Opcode.Xor ->
      fun ectx ->
        let a = rd ectx in
        let b = rs ectx in
        let r = Word.zext w (Int64.logxor a b) in
        ectx.st.State.flags <- Flags.after_logic w ~r;
        wr ectx r
  | Opcode.Test ->
      fun ectx ->
        let a = rd ectx in
        let b = rs ectx in
        let r = Word.zext w (Int64.logand a b) in
        ectx.st.State.flags <- Flags.after_logic w ~r
  | Opcode.Imul ->
      fun ectx ->
        let a = rd ectx in
        let b = rs ectx in
        let sa = Word.sext w a and sb = Word.sext w b in
        let full = Int64.mul sa sb in
        let r = Word.zext w full in
        let full_overflow =
          match w with
          | Width.W64 ->
              sa <> 0L
              && (Int64.div full sa <> sb || (sa = -1L && sb = Int64.min_int))
          | Width.W8 | Width.W16 | Width.W32 -> Word.sext w full <> full
        in
        ectx.st.State.flags <- Flags.after_imul w ~full_overflow ~r;
        wr ectx r
  | Opcode.Cmov c -> (
      match dst with
      | Operand.Reg (r, w') ->
          let rold = compile_reg_read r w' in
          fun ectx ->
            let b = rs ectx in
            let old = rold ectx.st in
            let v = if Flags.eval_cond ectx.st.State.flags c then b else old in
            wr ectx v
      | Operand.Mem _ | Operand.Imm _ ->
          fun _ -> invalid_arg "CMOV destination")
  | Opcode.Movzx -> fun ectx -> wr ectx (rs ectx)
  | Opcode.Movsx ->
      let ws = match Operand.width src with Some w' -> w' | None -> w in
      fun ectx -> wr ectx (Word.sext ws (rs ectx))
  | Opcode.Xchg -> (
      match (dst, src) with
      | Operand.Reg (ra, wa), Operand.Reg (rb, _) ->
          let ra_rd = compile_reg_read ra wa
          and rb_rd = compile_reg_read rb wa
          and ra_wr = compile_reg_write ra wa
          and rb_wr = compile_reg_write rb wa in
          fun ectx ->
            let va = ra_rd ectx.st and vb = rb_rd ectx.st in
            ra_wr ectx.st vb;
            rb_wr ectx.st va
      | (Operand.Mem _ as mop), Operand.Reg (r, wr')
      | Operand.Reg (r, wr'), (Operand.Mem _ as mop) ->
          let m_rd = compile_read_dst mop and m_wr = compile_write_dst mop in
          let r_rd = compile_reg_read r wr' and r_wr = compile_reg_write r wr' in
          fun ectx ->
            let vm = m_rd ectx in
            let vr = r_rd ectx.st in
            m_wr ectx vr;
            r_wr ectx.st vm
      | _ -> fun _ -> invalid_arg "XCHG operands")
  | Opcode.Rol | Opcode.Ror ->
      let op = if i.Instruction.opcode = Opcode.Rol then `Rol else `Ror in
      let count_mask = if Width.equal w Width.W64 then 63L else 31L in
      let bits = Width.bits w in
      fun ectx ->
        let flags = ectx.st.State.flags in
        let a = rd ectx in
        let raw_count = rs ectx in
        let count = Int64.to_int (Int64.logand raw_count count_mask) in
        let eff = count mod bits in
        let a' = Word.zext w a in
        let r =
          if eff = 0 then a'
          else
            match op with
            | `Rol ->
                Word.zext w
                  (Int64.logor (Int64.shift_left a' eff)
                     (Int64.shift_right_logical a' (bits - eff)))
            | `Ror ->
                Word.zext w
                  (Int64.logor
                     (Int64.shift_right_logical a' eff)
                     (Int64.shift_left a' (bits - eff)))
        in
        ectx.st.State.flags <- Flags.after_rotate w flags ~op ~count ~r;
        if count <> 0 then wr ectx r
  | Opcode.Shl | Opcode.Shr | Opcode.Sar ->
      let op =
        match i.Instruction.opcode with
        | Opcode.Shl -> `Shl
        | Opcode.Shr -> `Shr
        | _ -> `Sar
      in
      let count_mask = if Width.equal w Width.W64 then 63L else 31L in
      let bits = Width.bits w in
      fun ectx ->
        let flags = ectx.st.State.flags in
        let a = rd ectx in
        let raw_count = rs ectx in
        let count = Int64.to_int (Int64.logand raw_count count_mask) in
        let r =
          if count = 0 then Word.zext w a
          else
            match op with
            | `Shl ->
                if count >= bits then 0L
                else Word.zext w (Int64.shift_left (Word.zext w a) count)
            | `Shr ->
                if count >= bits then 0L
                else Int64.shift_right_logical (Word.zext w a) count
            | `Sar ->
                let sa = Word.sext w a in
                let c = min count 63 in
                Word.zext w (Int64.shift_right sa c)
        in
        ectx.st.State.flags <- Flags.after_shift w flags ~op ~a ~count ~r;
        if count <> 0 then wr ectx r
  | _ -> fun _ -> invalid_arg "Semantics.exec_binop"

let compile_unop (i : Instruction.t) dst : ectx -> unit =
  let w = operand_width i in
  let rd = compile_read_dst dst in
  let wr = compile_write_dst dst in
  match i.Instruction.opcode with
  | Opcode.Inc ->
      fun ectx ->
        let flags = ectx.st.State.flags in
        let a = rd ectx in
        let r = Word.zext w (Int64.add a 1L) in
        ectx.st.State.flags <- Flags.after_inc w flags ~a ~r;
        wr ectx r
  | Opcode.Dec ->
      fun ectx ->
        let flags = ectx.st.State.flags in
        let a = rd ectx in
        let r = Word.zext w (Int64.sub a 1L) in
        ectx.st.State.flags <- Flags.after_dec w flags ~a ~r;
        wr ectx r
  | Opcode.Neg ->
      fun ectx ->
        let a = rd ectx in
        let r = Word.zext w (Int64.neg a) in
        ectx.st.State.flags <- Flags.after_neg w ~a ~r;
        wr ectx r
  | Opcode.Not ->
      fun ectx ->
        let a = rd ectx in
        wr ectx (Word.zext w (Int64.lognot a))
  | Opcode.Setcc c ->
      fun ectx ->
        wr ectx (if Flags.eval_cond ectx.st.State.flags c then 1L else 0L)
  | _ -> fun _ -> invalid_arg "Semantics.exec_unop"

let compile_div (i : Instruction.t) src : ectx -> unit =
  let w = operand_width i in
  let rs = compile_read_src w src in
  let rax_rd = compile_reg_read Reg.RAX w
  and rdx_rd = compile_reg_read Reg.RDX w
  and rax_wr = compile_reg_write Reg.RAX w
  and rdx_wr = compile_reg_write Reg.RDX w in
  let signed = i.Instruction.opcode = Opcode.Idiv in
  fun ectx ->
    let divisor = rs ectx in
    let rax = rax_rd ectx.st in
    let rdx = rdx_rd ectx.st in
    if Word.zext w divisor = 0L then raise Semantics.Division_fault;
    let quotient, remainder =
      if not signed then
        match w with
        | Width.W64 ->
            if rdx <> 0L then raise Semantics.Division_fault
            else (Int64.unsigned_div rax divisor, Int64.unsigned_rem rax divisor)
        | Width.W8 | Width.W16 | Width.W32 ->
            let bits = Width.bits w in
            let dividend = Int64.logor (Int64.shift_left rdx bits) rax in
            let q = Int64.unsigned_div dividend divisor in
            if Int64.unsigned_compare q (Width.mask w) > 0 then
              raise Semantics.Division_fault;
            (q, Int64.unsigned_rem dividend divisor)
      else
        let sd = Word.sext w divisor in
        match w with
        | Width.W64 ->
            let high_ok = rdx = Int64.shift_right rax 63 in
            if not high_ok then raise Semantics.Division_fault;
            if rax = Int64.min_int && sd = -1L then
              raise Semantics.Division_fault;
            (Int64.div rax sd, Int64.rem rax sd)
        | Width.W8 | Width.W16 | Width.W32 ->
            let bits = Width.bits w in
            let dividend = Int64.logor (Int64.shift_left rdx bits) rax in
            let q = Int64.div dividend sd in
            let half = Int64.shift_left 1L (bits - 1) in
            if
              Int64.compare q (Int64.neg half) < 0 || Int64.compare q half >= 0
            then raise Semantics.Division_fault;
            (q, Int64.rem dividend sd)
    in
    rax_wr ectx.st quotient;
    rdx_wr ectx.st remainder

let compile_action (flat : Program.flat) pc (i : Instruction.t) : action =
  let code_len = Array.length flat.Program.code in
  let fall = pc + 1 in
  (* Straight-line body: run effects, fall through, package outcome. *)
  let seq (body : ectx -> unit) : action =
   fun st ->
    let ectx = { st; acc = [] } in
    body ectx;
    st.State.pc <- fall;
    {
      Semantics.inst = i;
      pc;
      accesses = List.rev ectx.acc;
      taken = None;
      next = fall;
    }
  in
  match (i.Instruction.opcode, i.Instruction.operands) with
  | (Opcode.Lfence | Opcode.Mfence | Opcode.Nop), _ ->
      fun st ->
        st.State.pc <- fall;
        { Semantics.inst = i; pc; accesses = []; taken = None; next = fall }
  | Opcode.Jmp, _ ->
      let target = flat.Program.target.(pc) in
      fun st ->
        st.State.pc <- target;
        { Semantics.inst = i; pc; accesses = []; taken = None; next = target }
  | Opcode.Jcc c, _ ->
      let target = flat.Program.target.(pc) in
      fun st ->
        let b = Flags.eval_cond st.State.flags c in
        let next = if b then target else fall in
        st.State.pc <- next;
        { Semantics.inst = i; pc; accesses = []; taken = Some b; next }
  | Opcode.JmpInd, [ Operand.Reg (r, _) ] ->
      let rd = compile_reg_read r Width.W64 in
      fun st ->
        let next = Semantics.mask_code_index ~code_len (rd st) in
        st.State.pc <- next;
        { Semantics.inst = i; pc; accesses = []; taken = None; next }
  | Opcode.Call, _ ->
      let target = flat.Program.target.(pc) in
      let rsp_rd = compile_reg_read Reg.stack_pointer Width.W64
      and rsp_wr = compile_reg_write Reg.stack_pointer Width.W64 in
      let ret_pc = Int64.of_int fall in
      fun st ->
        let ectx = { st; acc = [] } in
        let rsp = Int64.sub (rsp_rd st) 8L in
        rsp_wr st rsp;
        store ectx rsp Width.W64 ret_pc;
        st.State.pc <- target;
        {
          Semantics.inst = i;
          pc;
          accesses = List.rev ectx.acc;
          taken = None;
          next = target;
        }
  | Opcode.Ret, _ ->
      let rsp_rd = compile_reg_read Reg.stack_pointer Width.W64
      and rsp_wr = compile_reg_write Reg.stack_pointer Width.W64 in
      fun st ->
        let ectx = { st; acc = [] } in
        let rsp = rsp_rd st in
        let v = load ectx rsp Width.W64 in
        rsp_wr st (Int64.add rsp 8L);
        let next = Semantics.mask_code_index ~code_len v in
        st.State.pc <- next;
        {
          Semantics.inst = i;
          pc;
          accesses = List.rev ectx.acc;
          taken = None;
          next;
        }
  | (Opcode.Div | Opcode.Idiv), [ src ] -> seq (compile_div i src)
  | ( ( Opcode.Add | Opcode.Adc | Opcode.Sub | Opcode.Sbb | Opcode.And
      | Opcode.Or | Opcode.Xor | Opcode.Cmp | Opcode.Test | Opcode.Mov
      | Opcode.Imul | Opcode.Cmov _ | Opcode.Shl | Opcode.Shr | Opcode.Sar
      | Opcode.Rol | Opcode.Ror | Opcode.Movzx | Opcode.Movsx | Opcode.Xchg ),
      [ dst; src ] ) ->
      seq (compile_binop i dst src)
  | (Opcode.Inc | Opcode.Dec | Opcode.Neg | Opcode.Not | Opcode.Setcc _), [ dst ]
    ->
      seq (compile_unop i dst)
  | op, _ ->
      (* Unsupported shapes fault at execution time, like the interpreter:
         a program containing one on a never-executed path still
         compiles. *)
      fun _ ->
        invalid_arg
          (Printf.sprintf "Semantics.step: unsupported %s form"
             (Opcode.mnemonic op))

(* ------------------------------------------------------------------ *)
(* Descriptors                                                         *)
(* ------------------------------------------------------------------ *)

let lat_class_of (op : Opcode.t) =
  match op with
  | Opcode.Imul -> Lat_mul
  | Opcode.Div | Opcode.Idiv -> Lat_div
  | Opcode.Jcc _ | Opcode.Jmp | Opcode.JmpInd | Opcode.Call | Opcode.Ret ->
      Lat_branch
  | _ -> Lat_alu

let desc_of (i : Instruction.t) : desc =
  let mem =
    match Instruction.mem_operand i with
    | None -> None
    | Some (m, w) ->
        Some
          {
            mr_width = w;
            mr_addr = compile_addr m;
            mr_base =
              (match m.Operand.base with Some r -> Reg.index r | None -> -1);
            mr_index =
              (match m.Operand.index with Some r -> Reg.index r | None -> -1);
          }
  in
  let div_width =
    match i.Instruction.opcode with
    | Opcode.Div | Opcode.Idiv -> (
        match Instruction.mem_operand i with
        | Some (_, w) -> w
        | None -> (
            match i.Instruction.operands with
            | [ Operand.Reg (_, w) ] -> w
            | _ -> Width.W64))
    | _ -> Width.W64
  in
  {
    d_inst = i;
    d_serializing = Opcode.is_serializing i.Instruction.opcode;
    d_control_flow = Opcode.is_control_flow i.Instruction.opcode;
    d_loads = Instruction.loads i;
    d_stores = Instruction.stores i;
    d_reads_flags = Opcode.reads_flags i.Instruction.opcode;
    d_writes_flags = Opcode.writes_flags i.Instruction.opcode;
    d_cond = (match i.Instruction.opcode with Opcode.Jcc c -> Some c | _ -> None);
    d_srcs = Array.of_list (List.map Reg.index (Instruction.regs_read i));
    d_dsts = Array.of_list (List.map Reg.index (Instruction.regs_written i));
    d_ports = Array.of_list (Ports.of_instruction i);
    d_lat = lat_class_of i.Instruction.opcode;
    d_div_width = div_width;
    d_mem = mem;
  }

(* ------------------------------------------------------------------ *)
(* Construction and execution                                          *)
(* ------------------------------------------------------------------ *)

let of_flat (flat : Program.flat) : t =
  {
    flat;
    descs = Array.map desc_of flat.Program.code;
    actions = Array.mapi (fun pc i -> compile_action flat pc i) flat.Program.code;
  }

let interpreted (flat : Program.flat) : t =
  {
    flat;
    descs = Array.map desc_of flat.Program.code;
    actions =
      Array.map (fun _ -> fun st -> Semantics.step flat st) flat.Program.code;
  }

let of_program p = Result.map of_flat (Program.flatten p)
let of_program_exn p = of_flat (Program.flatten_exn p)
let length t = Array.length t.actions
let code t = t.flat.Program.code
let target t pc = t.flat.Program.target.(pc)

let step (t : t) (state : State.t) : Semantics.outcome =
  let pc = state.State.pc in
  if pc < 0 || pc >= Array.length t.actions then
    invalid_arg "Semantics.step: pc out of range";
  t.actions.(pc) state

let run ?(max_steps = 4096) t state =
  let code_len = length t in
  let rec go acc steps =
    if state.State.pc >= code_len || state.State.pc < 0 || steps >= max_steps
    then List.rev acc
    else
      let o = step t state in
      go (o :: acc) (steps + 1)
  in
  go [] 0
