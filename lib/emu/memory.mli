open Revizor_isa

(** The sandbox memory: a little-endian byte array mapped at
    {!Layout.sandbox_base}. Accesses outside it raise {!Fault} — generated
    test cases can never fault thanks to the masking instrumentation, but
    hand-written gadgets are checked. *)

type t

exception Fault of int64
(** Access outside the sandbox (the faulting virtual address). *)

val create : unit -> t
(** Zero-initialized sandbox. *)

val read : t -> addr:int64 -> Width.t -> int64
val write : t -> addr:int64 -> Width.t -> int64 -> unit

val read_byte : t -> int -> int
(** Read by sandbox offset (for input setup and inspection). *)

val write_byte : t -> int -> int -> unit

val write_data_word : t -> word:int -> int64 -> unit
(** [write_data_word t ~word v] writes the [word]-th aligned 64-bit word
    of the data area — equal to
    [write t ~addr:(sandbox_base + 8 * word) W64 v] without the
    address arithmetic. Input materialization fills the whole sandbox
    through this on every test case. *)

val fill : t -> f:(int -> int) -> unit
(** Initialize every data byte from its offset ([f] returns 0–255); the
    guard tail is zeroed. *)

val snapshot : t -> bytes
val restore : t -> bytes -> unit
val copy : t -> t

val blit_into : t -> dst:t -> unit
(** Overwrite [dst] with [src]'s contents: one flat blit, the fast-restore
    path for cached input-state templates. *)

val equal : t -> t -> bool
