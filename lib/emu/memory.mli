open Revizor_isa

(** The sandbox memory: a little-endian byte array mapped at
    {!Layout.sandbox_base}. Accesses outside it raise {!Fault} — generated
    test cases can never fault thanks to the masking instrumentation, but
    hand-written gadgets are checked. *)

type t

exception Fault of int64
(** Access outside the sandbox (the faulting virtual address). *)

val create : unit -> t
(** Zero-initialized sandbox. *)

val read : t -> addr:int64 -> Width.t -> int64
val write : t -> addr:int64 -> Width.t -> int64 -> unit

val read_byte : t -> int -> int
(** Read by sandbox offset (for input setup and inspection). *)

val write_byte : t -> int -> int -> unit

val write_data_word : t -> word:int -> int64 -> unit
(** [write_data_word t ~word v] writes the [word]-th aligned 64-bit word
    of the data area — equal to
    [write t ~addr:(sandbox_base + 8 * word) W64 v] without the
    address arithmetic. Input materialization fills the whole sandbox
    through this on every test case. *)

val fill : t -> f:(int -> int) -> unit
(** Initialize every data byte from its offset ([f] returns 0–255); the
    guard tail is zeroed. *)

val journal_begin : t -> int
(** Start (or continue) recording store undo information; every
    subsequent {!write} saves the bytes it overwrites. Returns a mark
    for {!journal_rollback}. Cheap: a flag plus a few saved bytes per
    store, vs. the full-sandbox blits of {!snapshot}/{!restore} — this
    is how transient episodes roll back their stores. *)

val journal_rollback : t -> mark:int -> unit
(** Undo every journaled write since [mark] (most recent first),
    restoring the memory image at {!journal_begin}. *)

val journal_end : t -> unit
(** Stop recording and discard the journal. *)

val snapshot : t -> bytes
val restore : t -> bytes -> unit

val snapshot_into : t -> bytes -> unit
(** Refill a buffer previously returned by {!snapshot} in place. *)

val raw : t -> bytes
(** The backing byte array (offset 0 = {!Layout.sandbox_base}). Escape
    hatch for the input-materialization fast path, which fills the data
    words with an unboxed PRNG loop; all other code must go through the
    checked accessors. *)

val copy : t -> t

val blit_into : t -> dst:t -> unit
(** Overwrite [dst] with [src]'s contents: one flat blit, the fast-restore
    path for cached input-state templates. *)

val equal : t -> t -> bool
