(** The fleet orchestrator: a single-domain control loop that hands
    shards to forked worker processes under time-bounded leases, probes
    their liveness over their monitor sockets, revokes and re-adopts
    crashed/hung shards from their checkpoints, and folds finished
    shards into the central merge document (DESIGN.md §9).

    Also serves a pollable [revizor.monitor.v1] status endpoint on the
    fleet directory's [fleet.sock] ([status], [shards], [health],
    [metrics], [prom]). *)

type outcome =
  | Completed  (** every shard [Done] or [Quarantined] *)
  | Interrupted  (** [should_stop] fired; leases revoked cleanly *)

val fp_spawn : Revizor_obs.Faultpoint.point
(** [fleet.spawn] — an adoption attempt that never produces a worker. *)

val fp_heartbeat : Revizor_obs.Faultpoint.point
(** [fleet.heartbeat] — one liveness probe silently lost. *)

val run :
  dir:string ->
  ?log:(string -> unit) ->
  ?should_stop:(unit -> bool) ->
  Ledger.spec ->
  (outcome, string) result
(** Run a fleet campaign in [dir] (created if needed). An existing
    ledger with the same spec fingerprint resumes it; a different
    fingerprint is refused. Blocks until completion or [should_stop]. *)

val resume :
  dir:string ->
  ?log:(string -> unit) ->
  ?should_stop:(unit -> bool) ->
  unit ->
  (outcome, string) result
(** Reconstruct fleet state from the ledger and shard checkpoints alone
    (after orchestrator death, even by SIGKILL): stale leaseholders are
    killed best-effort, their finished results committed, unfinished
    shards revoked back to [Pending] with no attempt escalation, and
    the control loop re-entered. The resumed campaign's merged output
    is byte-identical to an uninterrupted run's. *)

val reference :
  dir:string -> ?log:(string -> unit) -> Ledger.spec -> (unit, string) result
(** In-process sequential reference: the same shards through the same
    merge code with no forking and no fault points armed — the
    byte-identity baseline chaos runs are diffed against. *)

(**/**)

val heartbeat_alive : sock_path:string -> timeout:float -> bool
