(** The central corpus merge: shard results fold into one
    [revizor.merged.v1] document — violations, summed statistics and
    the union of the per-shard coverage atlases.

    Commits are {e idempotent} (a journal of committed shard ids makes
    re-committing a shard a no-op, so a crash between the merged-doc
    write and the ledger update never duplicates results) and {e order
    independent} (sorted by shard id; {!Revizor.Ucoverage.merge} is a
    commutative/associative/idempotent union) — any completion order
    over the same shards yields byte-identical [merged.json]. *)

val schema : string
(** ["revizor.merged.v1"]. *)

val fp_merge : Revizor_obs.Faultpoint.point
(** [fleet.merge] — fires per merged-doc write attempt. *)

type violation = {
  mv_shard : int;
  mv_seed : int64;
  mv_entry : Worker.violation_entry;
}

type t

val create : spec:Ledger.spec -> t
(** Empty merge document for this campaign (carries the spec's
    {!Ledger.fingerprint}). *)

val commit : t -> Worker.result -> bool
(** Fold one shard result in; [false] (and no mutation) if the shard is
    already journaled. In-memory only — call {!save} to persist. *)

val committed : t -> int -> bool
val shards : t -> int list
val violations : t -> violation list
val stats : t -> Revizor.Fuzzer.stats
val atlas : t -> Revizor.Ucoverage.t

val save : dir:string -> spec:Ledger.spec -> t -> unit
(** Atomic write of [merged.json], retried under the fleet backoff
    policy ([fleet.merge] fires per attempt); raises on persistent
    failure — the caller requeues the shard and the journal absorbs the
    eventual duplicate commit. *)

val load : dir:string -> spec:Ledger.spec -> (t, string) result
(** Parse [merged.json] back (the empty document if the file does not
    exist yet); fingerprint-checked against [spec]. *)

val to_json : t -> Revizor_obs.Json.t
val of_json : Revizor_obs.Json.t -> (t, string) result

val render : t -> string
(** The exact bytes {!save} writes. *)
