(** One shard's campaign: the existing fuzz loop under the fleet's
    per-shard checkpoint, result and monitor-socket files.

    The same {!run_shard} body serves the forked worker process
    ({!child_main}), re-adoption after a crash (same call, higher
    [attempt] — the on-disk checkpoint makes it continue bit-for-bit),
    and the in-process sequential reference runner that fleet output is
    diffed against. *)

val schema : string
(** ["revizor.shard-result.v1"]. *)

val fp_crash : Revizor_obs.Faultpoint.point
(** [fleet.worker_crash] — abrupt [Unix._exit 70] at a test-case
    boundary, as if the worker were SIGKILLed. *)

val fp_hang : Revizor_obs.Faultpoint.point
(** [fleet.worker_hang] — the worker stops polling forever, so its
    lease expires and the orchestrator kills and re-adopts it. *)

type violation_entry = {
  v_tc : int;  (** [stats.test_cases] at detection *)
  v_label : string;
  v_summary : string;
  v_program : string;  (** violation program's asm text *)
  v_inputs : string list;  (** {!Revizor.Results.input_to_line} lines *)
}

type result = {
  r_shard : int;
  r_seed : int64;
  r_attempt : int;  (** adoption attempt that completed the shard *)
  r_violation : violation_entry option;
  r_stats : Revizor.Fuzzer.stats;  (** [elapsed_s] zeroed for determinism *)
  r_atlas : Revizor.Ucoverage.t;
}

val config_of_spec :
  Ledger.spec -> seed:int64 -> (Revizor.Fuzzer.config, string) Stdlib.result

val run_shard :
  ?monitor_path:string ->
  ?chaos:bool ->
  dir:string ->
  spec:Ledger.spec ->
  shard_id:int ->
  seed:int64 ->
  attempt:int ->
  unit ->
  (result, string) Stdlib.result
(** Run (or, when the shard's checkpoint file exists, resume) one
    shard's campaign to completion. [chaos] (worker processes only)
    arms the [fleet.worker_crash]/[fleet.worker_hang] points, salted by
    (seed, attempt, test case) so a crash schedule never replays
    identically after re-adoption. *)

val to_json : result -> Revizor_obs.Json.t
val of_json : Revizor_obs.Json.t -> (result, string) Stdlib.result
val violation_to_json : violation_entry -> Revizor_obs.Json.t

val violation_of_json :
  Revizor_obs.Json.t -> (violation_entry, string) Stdlib.result

val save_result : dir:string -> result -> unit
(** Atomic write of the shard's [revizor.shard-result.v1] document. *)

val load_result : dir:string -> int -> (result, string) Stdlib.result
val result_exists : dir:string -> int -> bool

val child_main :
  dir:string -> spec:Ledger.spec -> shard_id:int -> seed:int64 -> attempt:int -> 'a
(** Entry point for the freshly forked worker. Serves the shard's
    monitor socket, runs the shard, writes the result file and
    [Unix._exit]s — 0 on success, 70 on an injected crash, 71 on any
    error. Never returns. *)
